// Package gunfu is the public API of GuNFu-Go, a reproduction of
// "Interleaved Function Stream Execution Model for Cache-Aware
// High-Speed Stateful Packet Processing" (ICDCS 2024).
//
// GuNFu is a network function platform built on two ideas:
//
//   - Granular Decomposition: NFs are decomposed into NFStates,
//     NFActions and NFEvents wired by a control-logic FSM, so the
//     runtime knows which state every action will touch before it runs.
//   - Interleaved function-stream execution: a per-core scheduler keeps
//     many packet streams in flight, prefetches the next action's state
//     for each, and switches streams instead of stalling on cache
//     misses.
//
// Because Go exposes no hardware prefetch or PMU control, state
// accesses are charged to a deterministic simulated cache hierarchy
// (see DESIGN.md); throughput and cache metrics are reported in
// simulated cycles at a 2.7 GHz clock.
//
// The quickest path: build an NF (or take one from the included
// library), compile it to a Program, and run it under the interleaved
// Worker or the run-to-completion baseline:
//
//	as := gunfu.NewAddressSpace()
//	n, _ := gunfu.NewNAT(as, gunfu.NATConfig{MaxFlows: 65536})
//	prog, _ := n.Program()
//	core, _ := gunfu.NewCore(gunfu.DefaultSimConfig())
//	w, _ := gunfu.NewWorker(core, as, prog, gunfu.DefaultWorkerConfig())
//	res, _ := w.Run(src, 1_000_000)
//	fmt.Println(res.Gbps())
package gunfu

import (
	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/director"
	"github.com/gunfu-nfv/gunfu/internal/exp"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/nf/amf"
	"github.com/gunfu-nfv/gunfu/internal/nf/fw"
	"github.com/gunfu-nfv/gunfu/internal/nf/lb"
	"github.com/gunfu-nfv/gunfu/internal/nf/monitor"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/nf/upf"
	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// Simulated hardware (see internal/sim).
type (
	// SimConfig describes the simulated core and cache hierarchy.
	SimConfig = sim.Config
	// Core is one simulated CPU core with caches and a PMU.
	Core = sim.Core
	// Counters is the PMU counter block.
	Counters = sim.Counters
)

// DefaultSimConfig models the paper's Xeon 8168 testbed core.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// NewCore builds a simulated core.
func NewCore(cfg SimConfig) (*Core, error) { return sim.NewCore(cfg) }

// Simulated memory (see internal/mem).
type (
	// AddressSpace hands out simulated addresses for NF state.
	AddressSpace = mem.AddressSpace
	// Layout maps record fields to offsets (the data-packing target).
	Layout = mem.Layout
	// Field is one named state variable in a Layout.
	Field = mem.Field
	// Pool is a pre-allocated per-flow datablock table.
	Pool = mem.Pool
)

// NewAddressSpace creates a fresh simulated address space.
func NewAddressSpace() *AddressSpace { return mem.NewAddressSpace() }

// The NF model (see internal/model): granular decomposition's parts.
type (
	// Program is a compiled network function or SFC.
	Program = model.Program
	// Builder assembles Programs from modules, states and transitions.
	Builder = model.Builder
	// Action is one NFAction with its declared state accesses.
	Action = model.Action
	// Exec is the per-stream execution context (the NFTask payload).
	Exec = model.Exec
	// EventID identifies an interned NFEvent.
	EventID = model.EventID
	// FieldRef symbolically names the state an action accesses.
	FieldRef = model.FieldRef
	// Binding resolves a module's state pools.
	Binding = model.Binding
	// Layouts maps state kinds to record layouts for one module.
	Layouts = model.Layouts
)

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder { return model.NewBuilder(name) }

// Packets and flows (see internal/pkt).
type (
	// Packet is one frame with real header bytes and a simulated
	// buffer address.
	Packet = pkt.Packet
	// FiveTuple is the classic flow key.
	FiveTuple = pkt.FiveTuple
)

// Runtimes.
type (
	// Worker is the interleaved function-stream executor (the paper's
	// contribution).
	Worker = rt.Worker
	// WorkerConfig tunes interleaving depth, batching and prefetching.
	WorkerConfig = rt.Config
	// Result summarizes a run (throughput, PMU deltas).
	Result = rt.Result
	// Source supplies packets to a worker.
	Source = rt.Source
	// Engine runs share-nothing workers across simulated cores.
	Engine = rt.Engine
	// CoreSetup builds one engine core's worker.
	CoreSetup = rt.CoreSetup
	// RTCWorker is the per-packet run-to-completion baseline.
	RTCWorker = rtc.Worker
	// RTCConfig tunes the baseline worker.
	RTCConfig = rtc.Config
)

// DefaultWorkerConfig returns the evaluation's tuning (16 NFTasks).
func DefaultWorkerConfig() WorkerConfig { return rt.DefaultConfig() }

// NewWorker builds an interleaved worker for prog on core.
func NewWorker(core *Core, as *AddressSpace, prog *Program, cfg WorkerConfig) (*Worker, error) {
	return rt.NewWorker(core, as, prog, cfg)
}

// DefaultRTCConfig returns baseline I/O settings matched to the
// interleaved worker's.
func DefaultRTCConfig() RTCConfig { return rtc.DefaultConfig() }

// NewRTCWorker builds the run-to-completion baseline worker.
func NewRTCWorker(core *Core, as *AddressSpace, prog *Program, cfg RTCConfig) (*RTCWorker, error) {
	return rtc.NewWorker(core, as, prog, cfg)
}

// NewEngine builds a multi-core engine over per-core setups.
func NewEngine(cfg SimConfig, setups []CoreSetup) (*Engine, error) {
	return rt.NewEngine(cfg, setups)
}

// AggregateResults combines per-core results into a fleet view.
func AggregateResults(results []Result) Result { return rt.Aggregate(results) }

// The NF library: the paper's evaluated network functions.
type (
	// NAT is the stateful network address translator.
	NAT = nat.NAT
	// NATConfig parametrizes a NAT.
	NATConfig = nat.Config
	// UPF is the 5G user plane function.
	UPF = upf.UPF
	// UPFConfig parametrizes a UPF.
	UPFConfig = upf.Config
	// AMF is the 5G access and mobility management function.
	AMF = amf.AMF
	// AMFConfig parametrizes an AMF.
	AMFConfig = amf.Config
	// LB is the stateful load balancer.
	LB = lb.LB
	// LBConfig parametrizes an LB.
	LBConfig = lb.Config
	// FW is the stateful firewall.
	FW = fw.FW
	// FWConfig parametrizes a firewall.
	FWConfig = fw.Config
	// FWRule is one firewall policy rule.
	FWRule = fw.Rule
	// Monitor is the per-flow network monitor.
	Monitor = monitor.Monitor
	// MonitorConfig parametrizes a monitor.
	MonitorConfig = monitor.Config
	// States bundles an NF's per-flow state objects.
	States = nf.States
)

// NewNAT builds a NAT instance.
func NewNAT(as *AddressSpace, cfg NATConfig) (*NAT, error) { return nat.New(as, cfg) }

// NewUPF builds a fully configured UPF instance.
func NewUPF(as *AddressSpace, cfg UPFConfig) (*UPF, error) { return upf.New(as, cfg) }

// NewAMF builds an AMF with its UE population registered.
func NewAMF(as *AddressSpace, cfg AMFConfig) (*AMF, error) { return amf.New(as, cfg) }

// NewLB builds a load balancer instance.
func NewLB(as *AddressSpace, cfg LBConfig) (*LB, error) { return lb.New(as, cfg) }

// NewFW builds a firewall instance.
func NewFW(as *AddressSpace, cfg FWConfig) (*FW, error) { return fw.New(as, cfg) }

// NewMonitor builds a monitor instance.
func NewMonitor(as *AddressSpace, cfg MonitorConfig) (*Monitor, error) { return monitor.New(as, cfg) }

// FWDefaultPolicy builds an n-rule policy ending in a catch-all allow.
func FWDefaultPolicy(n int) []FWRule { return fw.DefaultPolicy(n) }

// The compiler (see internal/compile).
type (
	// Chainable is an NF that composes into service function chains.
	Chainable = compile.Chainable
	// SFCOptions selects the chain compilation optimizations.
	SFCOptions = compile.SFCOptions
	// FuseMember describes one NF's records for fused data packing.
	FuseMember = compile.FuseMember
)

// BuildSFC compiles a chain of NFs into one Program.
func BuildSFC(name string, chain []Chainable, opts SFCOptions) (*Program, error) {
	return compile.BuildSFC(name, chain, opts)
}

// PopulateFlows installs a shared flow-index assignment into a chain.
func PopulateFlows(chain []Chainable, tuples []FiveTuple) error {
	return compile.PopulateFlows(chain, tuples)
}

// PackLayout is the data-packing optimization: co-accessed fields into
// shared cache lines.
func PackLayout(fields []Field, groups [][]string) (*Layout, error) {
	return compile.PackLayout(fields, groups)
}

// FuseStates builds one fused, packed per-flow pool for a whole chain.
func FuseStates(as *AddressSpace, name string, members []FuseMember, maxFlows int) (map[string]*States, error) {
	return compile.FuseStates(as, name, members, maxFlows)
}

// RemoveRedundantPrefetches runs the PRR dataflow pass over a Program.
func RemoveRedundantPrefetches(p *Program) error {
	return compile.RemoveRedundantPrefetches(p)
}

// BuildChain constructs the paper's LB→NAT→NM→FW… chain of the given
// length over fresh state.
func BuildChain(as *AddressSpace, length, flows int) ([]Chainable, error) {
	return director.BuildChain(as, length, flows)
}

// Traffic generation (see internal/traffic).
type (
	// FlowGenConfig parametrizes a synthetic flow workload.
	FlowGenConfig = traffic.FlowGenConfig
	// FlowGen emits packets over a flow population.
	FlowGen = traffic.FlowGen
	// MGWConfig parametrizes the Telco-benchmark MGW (UPF) workload.
	MGWConfig = traffic.MGWConfig
	// MGWGen emits MGW downlink traffic.
	MGWGen = traffic.MGWGen
	// AMFTrafficConfig parametrizes the UE registration workload.
	AMFTrafficConfig = traffic.AMFConfig
	// AMFGen emits NAS registration messages.
	AMFGen = traffic.AMFGen
	// CaidaConfig parametrizes the CAIDA-like synthetic trace.
	CaidaConfig = traffic.CaidaConfig
	// CaidaGen emits the heavy-tailed IMIX trace.
	CaidaGen = traffic.CaidaGen
)

// Flow orders for FlowGenConfig.Order.
const (
	OrderUniform    = traffic.OrderUniform
	OrderZipf       = traffic.OrderZipf
	OrderRoundRobin = traffic.OrderRoundRobin
)

// NewFlowGen builds a synthetic flow workload generator.
func NewFlowGen(cfg FlowGenConfig) (*FlowGen, error) { return traffic.NewFlowGen(cfg) }

// NewMGWGen builds the UPF downlink workload generator.
func NewMGWGen(cfg MGWConfig) (*MGWGen, error) { return traffic.NewMGWGen(cfg) }

// NewAMFGen builds the registration call-flow generator.
func NewAMFGen(cfg AMFTrafficConfig) (*AMFGen, error) { return traffic.NewAMFGen(cfg) }

// NewCaidaGen builds the CAIDA-like trace generator.
func NewCaidaGen(cfg CaidaConfig) (*CaidaGen, error) { return traffic.NewCaidaGen(cfg) }

// LimitSource bounds a source to n packets.
func LimitSource(src Source, n uint64) Source { return traffic.NewLimited(src, n) }

// Experiments (see internal/exp): the paper's figures as runnable
// table generators.
type (
	// ExpOptions tunes an experiment run.
	ExpOptions = exp.Options
	// ResultTable is one rendered experiment table.
	ResultTable = stats.Table
)

// RunExperiment regenerates one figure by id ("fig2" … "fig15",
// "ablation"), rendering tables to opts.Out.
func RunExperiment(name string, opts ExpOptions) ([]*ResultTable, error) {
	return exp.Run(name, opts)
}

// ExperimentNames lists the available experiment ids.
func ExperimentNames() []string { return exp.Names() }

// Observability (see internal/obs): tracing is observation-only — a
// traced run's counters are byte-identical to an untraced run's — and
// the disabled hook costs one nil check with zero allocations.
type (
	// Tracer receives the simulated core's event stream
	// (Core.SetTracer).
	Tracer = sim.Tracer
	// TraceEvent is one cycle-stamped simulation event.
	TraceEvent = sim.TraceEvent
	// ObsCollector folds the event stream into per-NFAction /
	// per-NFState attribution tables and latency quantiles.
	ObsCollector = obs.Collector
	// ObsTraceWriter exports the event stream as Chrome trace-event
	// JSON for ui.perfetto.dev.
	ObsTraceWriter = obs.TraceWriter
	// LatencyHistogram is the log-bucketed quantile histogram behind
	// the latency tables.
	LatencyHistogram = stats.Histogram
	// FlightRecorder is the always-on fixed-size event ring, dumpable
	// as a Perfetto trace after the fact.
	FlightRecorder = obs.FlightRecorder
	// LatencyProbe tracks only the rx→done latency distribution, cheap
	// enough for serving deployments.
	LatencyProbe = obs.LatencyProbe
	// MetricsRegistry is the stdlib-only OpenMetrics text-exposition
	// registry (mount it at /metrics).
	MetricsRegistry = obs.Registry
)

// NewObsCollector builds an attribution collector for prog at freqHz.
func NewObsCollector(prog *Program, freqHz float64) *ObsCollector {
	return obs.NewCollector(prog, freqHz)
}

// NewObsTraceWriter builds a Chrome trace exporter for prog at freqHz.
func NewObsTraceWriter(prog *Program, freqHz float64) *ObsTraceWriter {
	return obs.NewTraceWriter(prog, freqHz)
}

// MultiTracer fans one event stream out to several tracers (nils are
// dropped; an all-nil call returns nil, keeping the fast path).
func MultiTracer(tracers ...Tracer) Tracer { return obs.Multi(tracers...) }

// NewFlightRecorder builds an event ring holding the newest `size`
// events (rounded up to a power of two, minimum 64).
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewFlightRecorder(size) }

// NewLatencyProbe builds an rx→done latency tracer.
func NewLatencyProbe() *LatencyProbe { return obs.NewLatencyProbe() }

// NewMetricsRegistry builds an empty OpenMetrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }
