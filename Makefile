GO ?= go

.PHONY: build test verify lint bench-smoke bench-compile bench-paired bench-sched profile quick trace-demo metrics-demo fuzz chaos chaos-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full pre-merge gate: build, vet, and the test suite
# under the race detector (which also exercises the parallel sweep
# determinism test with real concurrency).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# lint runs go vet always, and staticcheck when it is on PATH (CI
# installs a pinned version; local environments without it still get
# the vet pass instead of a hard failure).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it pinned)"; \
	fi

# bench-smoke runs one short iteration of every hot-path benchmark —
# enough to catch a benchmark that no longer compiles or allocates,
# not enough to produce stable numbers (use bench for those).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 100x ./internal/sim/ ./internal/rt/

# bench-compile builds and runs every benchmark in the module exactly
# once — the CI smoke that catches a benchmark a refactor broke without
# paying measurement time.
bench-compile:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench runs the hot-path benchmarks at measurement length; pipe two
# runs through benchstat to compare (see EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 10 ./internal/sim/ ./internal/rt/

# bench-paired compares the working tree against a baseline commit with
# the paired-minimum methodology (alternated binaries, per-side minimums
# — see scripts/bench_paired.sh and BENCH_hotpath.json). Override knobs:
#   make bench-paired BASE=<commit> PKG=./internal/sim/ BENCH='Benchmark.*' ROUNDS=5
BASE ?= HEAD
PKG ?= ./internal/rt/
BENCH ?= BenchmarkWorkerSteadyState$$
ROUNDS ?= 10
bench-paired:
	BASE=$(BASE) PKG=$(PKG) BENCH='$(BENCH)' ROUNDS=$(ROUNDS) scripts/bench_paired.sh

# bench-sched A/Bs the interleave scheduler on the same binary: the
# round-robin loop against the fill-clock wakeup loop, on the worker
# steady state and the multi-core engine (see BENCH_hotpath.json
# wakeup_scheduler and the EXPERIMENTS.md walkthrough).
bench-sched:
	$(GO) test -run '^$$' -bench 'BenchmarkWorkerSteadyState$$|BenchmarkWorkerSteadyStateWakeup$$|BenchmarkEngineMultiCore' \
		-benchmem -count 6 ./internal/rt/

# profile runs a measured NAT window with host pprof attached — warmup
# packets are excluded from the CPU profile, so it shows only the
# steady-state simulator hot path. See EXPERIMENTS.md "Profiling
# workflow" for reading the output and pairing it with bench-paired.
profile:
	$(GO) run ./cmd/gunfu-bench -attr -nf nat -flows 32768 \
		-warmup 20000 -packets 200000 -tasks 16 \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "inspect with:"
	@echo "  $(GO) tool pprof -top cpu.pprof"
	@echo "  $(GO) tool pprof -top -sample_index=alloc_space mem.pprof"

# quick regenerates every figure with reduced populations.
quick:
	$(GO) run ./cmd/gunfu-bench -exp all -quick -parallel 4

# trace-demo smoke-tests the trace exporter end to end: a small traced
# NAT run producing attribution tables plus a Chrome trace JSON to load
# in ui.perfetto.dev (see EXPERIMENTS.md).
trace-demo:
	$(GO) run ./cmd/gunfu-bench -trace trace_demo.json -attr \
		-nf nat -flows 4096 -packets 8000 -warmup 2000 -tasks 16

# fuzz runs the control-plane wire-protocol fuzz targets for a short
# active burst each (the seed corpus in internal/director/testdata/fuzz
# also runs on every plain `go test`). Override FUZZTIME for longer
# campaigns: make fuzz FUZZTIME=5m
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzProtocolReadMsg$$' -fuzztime $(FUZZTIME) ./internal/director/
	$(GO) test -run '^$$' -fuzz 'FuzzProtocolRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/director/

# chaos runs the control-plane fault drill under the race detector: a
# director and two reconnecting agents behind the deterministic faultnet
# injector, three fixed seeds, goroutine-leak checked.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosSoak' -v ./internal/director/

# chaos-demo boots a real director (-chaos) and two reconnecting
# workers on loopback and lets the fault injector cut connections
# mid-run: the deployment still completes via backoff redials and
# deduped deploy retries. See EXPERIMENTS.md "Chaos walkthrough".
chaos-demo:
	scripts/chaos_demo.sh

# metrics-demo boots a one-worker cluster on loopback, scrapes the
# worker's OpenMetrics endpoint mid-run, breaches an impossible SLO,
# and collects the resulting flight-recorder dump (ui.perfetto.dev).
# Artifacts land in metrics_demo_out/; see EXPERIMENTS.md.
metrics-demo:
	scripts/metrics_demo.sh
