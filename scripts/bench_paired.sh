#!/usr/bin/env bash
# Paired-minimum benchmark comparison (the BENCH_hotpath.json
# methodology). This host is a shared VM whose absolute ns/op drifts by
# double-digit percent between runs; single before/after runs are
# meaningless. This script cancels the drift by building two test
# binaries — one at a baseline commit, one from the working tree — and
# alternating them baseline,new,baseline,new,... within the same time
# window, then reporting the per-side MINIMUM for each benchmark (the
# least-disturbed execution) and the ratio of minimums.
#
# Every round's raw `go test -bench` output is also kept, per side, in
# benchstat-compatible form ($OUT/base.txt and $OUT/new.txt, one sample
# per round), so distribution and variance are inspectable alongside the
# paired-min ratios:
#   benchstat <out>/base.txt <out>/new.txt
#
# Usage:
#   scripts/bench_paired.sh
#   BASE=<commit> PKG=./internal/sim/ BENCH='BenchmarkCacheLookup$' ROUNDS=5 scripts/bench_paired.sh
#
# Knobs (environment):
#   BASE      baseline commit (default: HEAD — compare working tree vs HEAD)
#   PKG       package whose test binary to build (default ./internal/rt/)
#   BENCH     -test.bench regex (default BenchmarkWorkerSteadyState$)
#   ROUNDS    alternation rounds (default 10)
#   BENCHTIME go -benchtime per run (default 1s)
#   OUT       directory for the per-round benchstat files
#             (default bench_paired.out, overwritten per invocation)
#
# Benchmarks that exist on only one side are reported without a ratio.
set -euo pipefail

BASE=${BASE:-HEAD}
PKG=${PKG:-./internal/rt/}
BENCH=${BENCH:-BenchmarkWorkerSteadyState$}
ROUNDS=${ROUNDS:-10}
BENCHTIME=${BENCHTIME:-1s}
OUT=${OUT:-bench_paired.out}

root=$(git rev-parse --show-toplevel)
tmp=$(mktemp -d)
cleanup() {
	git -C "$root" worktree remove --force "$tmp/base" >/dev/null 2>&1 || true
	rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building baseline ($BASE) and working-tree test binaries for $PKG" >&2
if ! git -C "$root" worktree add --detach "$tmp/base" "$BASE" >"$tmp/worktree.log" 2>&1; then
	echo "bench_paired: cannot create a worktree at baseline '$BASE':" >&2
	cat "$tmp/worktree.log" >&2
	exit 1
fi
if ! (cd "$tmp/base" && go test -c -o "$tmp/base.test" "$PKG") >"$tmp/base_build.log" 2>&1; then
	echo "bench_paired: baseline test binary failed to build at $BASE for $PKG:" >&2
	cat "$tmp/base_build.log" >&2
	echo "bench_paired: the baseline side builds from the seed worktree alone — if $PKG" >&2
	echo "bench_paired: (or its benchmarks) did not exist at $BASE, choose an older PKG" >&2
	echo "bench_paired: or a newer BASE; working-tree-only benchmarks cannot be paired." >&2
	exit 1
fi
if ! (cd "$root" && go test -c -o "$tmp/new.test" "$PKG") >"$tmp/new_build.log" 2>&1; then
	echo "bench_paired: working-tree test binary failed to build for $PKG:" >&2
	cat "$tmp/new_build.log" >&2
	exit 1
fi

mkdir -p "$OUT"
: >"$OUT/base.txt"
: >"$OUT/new.txt"

run() { # side binary — append one benchstat sample per benchmark
	if ! "$2" -test.run '^$' -test.bench "$BENCH" -test.benchtime "$BENCHTIME" -test.benchmem >>"$OUT/$1.txt" 2>"$tmp/run.log"; then
		echo "bench_paired: $1 benchmark binary failed:" >&2
		cat "$tmp/run.log" >&2
		exit 1
	fi
}

for i in $(seq "$ROUNDS"); do
	echo "== round $i/$ROUNDS" >&2
	run base "$tmp/base.test"
	run new "$tmp/new.test"
done

for side in base new; do
	if ! grep -q 'ns/op' "$OUT/$side.txt"; then
		echo "bench_paired: the $side binary produced no benchmark samples —" >&2
		echo "bench_paired: does the regex '$BENCH' match a benchmark in $PKG on that side?" >&2
		exit 1
	fi
done

parse() { # side — normalize the side's raw file into "side bench ns"
	awk -v side="$1" '$2 ~ /^[0-9]+$/ && $4 == "ns/op" { sub(/-[0-9]+$/, "", $1); print side, $1, $3 }' "$OUT/$1.txt"
}
parse base >"$tmp/results.txt"
parse new >>"$tmp/results.txt"

awk '
	{
		v = $3 + 0
		if (!(($1, $2) in min) || v < min[$1, $2]) min[$1, $2] = v
		benches[$2] = 1
	}
	END {
		for (b in benches) {
			bm = (("base", b) in min) ? min["base", b] : -1
			nm = (("new", b) in min) ? min["new", b] : -1
			if (bm > 0 && nm > 0)
				printf "%-40s base_min=%9.1f ns/op  new_min=%9.1f ns/op  speedup=%.3fx\n", b, bm, nm, bm / nm
			else if (bm > 0)
				printf "%-40s base_min=%9.1f ns/op  (absent in working tree)\n", b, bm
			else
				printf "%-40s new_min=%9.1f ns/op  (absent at baseline)\n", b, nm
		}
	}
' "$tmp/results.txt" | sort

echo "== per-round samples: benchstat $OUT/base.txt $OUT/new.txt" >&2
