#!/usr/bin/env bash
# metrics_demo.sh — end-to-end tour of the production metrics plane.
#
# Boots a one-worker cluster on loopback, deploys a NAT with telemetry
# and latency probing, and exercises every serving surface while the
# deployment runs:
#
#   1. scrapes OpenMetrics from the worker's /metrics,
#   2. shows the expvar mirror at /debug/vars,
#   3. lets the director's SLO watcher breach (the demo SLO demands an
#      impossible throughput), which requests a flight-recorder dump
#      from the worker,
#   4. fetches the dump from /debug/flight — load it in
#      ui.perfetto.dev to see the moments before the breach.
#
# Artifacts land in $OUT (default ./metrics_demo_out). Knobs: PORT,
# HTTP, OUT, PACKETS.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${PORT:-7731}
HTTP=${HTTP:-127.0.0.1:8731}
OUT=${OUT:-metrics_demo_out}
PACKETS=${PACKETS:-5000000}

mkdir -p "$OUT"
go build -o "$OUT/gunfu-director" ./cmd/gunfu-director
go build -o "$OUT/gunfu-worker" ./cmd/gunfu-worker

# An SLO no simulated core can meet: every window breaches, so the run
# demonstrates the breach -> flight-dump path without a fault injector.
"$OUT/gunfu-director" -listen "127.0.0.1:$PORT" -agents 1 \
  -nf nat -flows 8192 -packets "$PACKETS" -warmup 20000 -tasks 16 \
  -stats-every "$((PACKETS / 20))" -latency -slo-min-mpps 1000000 \
  >"$OUT/director.log" 2>&1 &
DIRECTOR_PID=$!
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then break; fi
  sleep 0.1
done
"$OUT/gunfu-worker" -connect "127.0.0.1:$PORT" -name demo-worker \
  -metrics "$HTTP" -dump-dir "$OUT" >"$OUT/worker.log" 2>&1 &
WORKER_PID=$!
trap 'kill "$DIRECTOR_PID" "$WORKER_PID" 2>/dev/null || true' EXIT

echo "== waiting for the worker's metrics plane on http://$HTTP =="
for _ in $(seq 1 100); do
  if curl -sf "http://$HTTP/metrics" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

# Give the deployment a moment to stream a few telemetry windows.
sleep 2

echo
echo "== /metrics (OpenMetrics text exposition, first 40 lines) =="
curl -s "http://$HTTP/metrics" -o "$OUT/metrics.txt"
head -40 "$OUT/metrics.txt"

echo
echo "== /debug/vars (expvar mirror of the same registry) =="
curl -s "http://$HTTP/debug/vars" >"$OUT/expvar.json"
head -c 600 "$OUT/expvar.json"; echo

echo
echo "== /debug/flight (SLO breach triggered a flight dump) =="
for _ in $(seq 1 100); do
  if curl -sf "http://$HTTP/debug/flight" -o "$OUT/flight.json" 2>/dev/null; then break; fi
  sleep 0.1
done
if [ -s "$OUT/flight.json" ]; then
  echo "flight dump: $OUT/flight.json ($(wc -c <"$OUT/flight.json") bytes) — open in ui.perfetto.dev"
else
  echo "no dump served yet; see $OUT/gunfu-flight-*.json once the run breaches"
fi

wait "$DIRECTOR_PID" || true
echo
echo "== director output =="
cat "$OUT/director.log"
echo
echo "artifacts in $OUT/: metrics.txt expvar.json flight.json director.log worker.log"
