#!/usr/bin/env bash
# chaos_demo.sh — interactive tour of the fault-tolerant control plane.
#
# Boots a director with the faultnet injector armed (-chaos) and two
# workers in reconnect mode, then deploys a NAT with streaming
# telemetry. The injector cuts agent connections mid-frame on a
# deterministic script (same CHAOS_SEED, same faults), and the run
# still completes because:
#
#   1. workers redial with capped jittered exponential backoff,
#   2. the director resends timed-out deploys (-deploy-retries) and
#      workers dedupe the replays by sequence ID,
#   3. heartbeat liveness (-liveness-window/-liveness-missed) flags
#      agents that stay silent and clears them when they return.
#
# Artifacts land in $OUT (default ./chaos_demo_out). Knobs: PORT, OUT,
# PACKETS, CHAOS_SEED.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${PORT:-7741}
OUT=${OUT:-chaos_demo_out}
PACKETS=${PACKETS:-200000}
CHAOS_SEED=${CHAOS_SEED:-1}

mkdir -p "$OUT"
go build -o "$OUT/gunfu-director" ./cmd/gunfu-director
go build -o "$OUT/gunfu-worker" ./cmd/gunfu-worker

"$OUT/gunfu-director" -listen "127.0.0.1:$PORT" -agents 2 \
  -chaos -chaos-seed "$CHAOS_SEED" -deploy-retries 8 \
  -liveness-window 500ms -liveness-missed 4 \
  -nf nat -flows 8192 -packets "$PACKETS" -warmup 10000 -tasks 16 \
  -stats-every "$((PACKETS / 10))" -deploy-timeout 5m \
  >"$OUT/director.log" 2>&1 &
DIRECTOR_PID=$!
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then break; fi
  sleep 0.1
done

WORKER_PIDS=()
for i in 1 2; do
  "$OUT/gunfu-worker" -connect "127.0.0.1:$PORT" -name "chaos-worker-$i" \
    -reconnect -backoff-min 20ms -backoff-max 500ms \
    >"$OUT/worker-$i.log" 2>&1 &
  WORKER_PIDS+=($!)
done
trap 'kill "$DIRECTOR_PID" "${WORKER_PIDS[@]}" 2>/dev/null || true' EXIT

echo "== chaos run in flight: injector seed $CHAOS_SEED, 2 reconnecting workers =="
wait "$DIRECTOR_PID" && STATUS=0 || STATUS=$?

echo
echo "== director output (fault and liveness events on stderr) =="
cat "$OUT/director.log"
echo
echo "== worker redials =="
for i in 1 2; do
  echo "--- chaos-worker-$i ---"
  tail -5 "$OUT/worker-$i.log"
done
echo
if [ "$STATUS" -eq 0 ]; then
  echo "deployment completed despite injected faults; logs in $OUT/"
else
  echo "director exited $STATUS — see $OUT/director.log" >&2
  exit "$STATUS"
fi
