package gunfu_test

import (
	"testing"

	gunfu "github.com/gunfu-nfv/gunfu"
)

// TestPublicAPIQuickstart exercises the documented happy path end to
// end through the facade only: build a NAT, run it under both
// execution models, and confirm the headline property (interleaving
// beats RTC on a large flow population).
func TestPublicAPIQuickstart(t *testing.T) {
	const flows, packets = 16384, 20000

	build := func() (*gunfu.Program, *gunfu.FlowGen, *gunfu.AddressSpace) {
		as := gunfu.NewAddressSpace()
		n, err := gunfu.NewNAT(as, gunfu.NATConfig{MaxFlows: flows})
		if err != nil {
			t.Fatal(err)
		}
		g, err := gunfu.NewFlowGen(gunfu.FlowGenConfig{
			Flows: flows, PacketBytes: 64, Order: gunfu.OrderUniform, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < flows; i++ {
			if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
				t.Fatal(err)
			}
		}
		prog, err := n.Program()
		if err != nil {
			t.Fatal(err)
		}
		return prog, g, as
	}

	prog, g, as := build()
	core, err := gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	rtcW, err := gunfu.NewRTCWorker(core, as, prog, gunfu.DefaultRTCConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := rtcW.Run(g, packets)
	if err != nil {
		t.Fatal(err)
	}

	prog, g, as = build()
	core, err = gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := gunfu.NewWorker(core, as, prog, gunfu.DefaultWorkerConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(g, packets)
	if err != nil {
		t.Fatal(err)
	}

	if res.Packets != packets || base.Packets != packets {
		t.Fatalf("packet counts: il=%d rtc=%d", res.Packets, base.Packets)
	}
	if res.Gbps() <= base.Gbps() {
		t.Fatalf("interleaved (%.2f Gbps) not above RTC (%.2f Gbps)", res.Gbps(), base.Gbps())
	}
}

// TestPublicAPISFC drives chain composition and the compiler
// optimizations through the facade.
func TestPublicAPISFC(t *testing.T) {
	const flows = 1024
	as := gunfu.NewAddressSpace()
	chain, err := gunfu.BuildChain(as, 4, flows)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gunfu.NewFlowGen(gunfu.FlowGenConfig{Flows: flows, PacketBytes: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]gunfu.FiveTuple, flows)
	for i := range tuples {
		tuples[i] = g.FlowTuple(i)
	}
	if err := gunfu.PopulateFlows(chain, tuples); err != nil {
		t.Fatal(err)
	}
	prog, err := gunfu.BuildSFC("sfc", chain, gunfu.SFCOptions{
		RemoveRedundantMatching: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gunfu.RemoveRedundantPrefetches(prog); err != nil {
		t.Fatal(err)
	}
	core, err := gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := gunfu.NewWorker(core, as, prog, gunfu.DefaultWorkerConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(g, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 3000 {
		t.Fatalf("packets = %d", res.Packets)
	}
}

// TestPublicAPIExperiments confirms the experiment runner is reachable
// from the facade.
func TestPublicAPIExperiments(t *testing.T) {
	names := gunfu.ExperimentNames()
	if len(names) < 9 {
		t.Fatalf("ExperimentNames = %v", names)
	}
	tables, err := gunfu.RunExperiment("fig9", gunfu.ExpOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || tables[0].NumRows() == 0 {
		t.Fatal("fig9 produced no rows")
	}
}

// TestPublicAPIDataPacking exercises layout packing via the facade.
func TestPublicAPIDataPacking(t *testing.T) {
	fields := []gunfu.Field{
		{Name: "hot_a", Size: 8},
		{Name: "cold", Size: 200},
		{Name: "hot_b", Size: 8},
	}
	layout, err := gunfu.PackLayout(fields, [][]string{{"hot_a", "hot_b"}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := layout.LinesTouched([]string{"hot_a", "hot_b"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("packed hot fields span %d lines", n)
	}
}
