module github.com/gunfu-nfv/gunfu

go 1.22
