// NF-C pipeline: the paper's §IV-B workflow end to end. The module
// specifications of Listings 1 and 2 (YAML), the NF composition of
// Listing 3, and the NF-C flow-mapper implementation of Listing 4 are
// compiled by the director compiler into a runnable NAT, configured,
// and executed under both execution models.
//
//	go run ./examples/nfc-pipeline
package main

import (
	"fmt"
	"os"

	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/nfc"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/spec"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// Listing 1 — flow classifier module specification.
const classifierSpec = `
name: flow_classifier
category: StatefulClassifier
parameters:
  - header_type
transitions:
  - Start,packet->get_key
  - get_key,get_key_done->hash_1
  - hash_1,hash_done->check_1
  - check_1,MATCH_SUCCESS->End
  - check_1,check_failure->hash_2
  - hash_2,sec_hash_done->check_2
  - check_2,MATCH_SUCCESS->End
  - check_2,MATCH_FAIL->End
fetch:
  check_1:
    - bucket # match state
  check_2:
    - bucket
`

// Listing 2 — flow mapper module specification.
const mapperSpec = `
name: flow_mapper
category: StatefulNF
transitions:
  - Start,MATCH_SUCCESS->flow_mapper
  - flow_mapper,packet->End
states:
  flow_mapper:
    - ip # mapped ip
    - port # mapped port
`

// Listing 3 — the NAT composition.
const natSpec = `
name: nat
chain:
  - flow_classifier
  - flow_mapper
optimize:
  - redundant_prefetch_removal
`

// Listing 4 — the flow mapper implementation in NF-C.
const mapperImpl = `
// Implementation Using NF-C
NFAction(flow_mapper) {
  Packet.src_ip = PerFlowState.ip;
  Packet.src_port = PerFlowState.port;
  Emit(Event_Packet);
}
`

const (
	flows   = 32768
	packets = 60000
	natIP   = 0xC6336401 // 198.51.100.1
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nfc-pipeline: %v\n", err)
		os.Exit(1)
	}
}

func build() (*compile.SpecResult, *mem.AddressSpace, *traffic.FlowGen, error) {
	cls, err := spec.ParseModule(classifierSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	mapper, err := spec.ParseModule(mapperSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	nat, err := spec.ParseNF(natSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	as := mem.NewAddressSpace()
	res, err := compile.FromSpec(as, compile.SpecUnit{
		Modules:   map[string]*spec.Module{cls.Name: cls, mapper.Name: mapper},
		NF:        nat,
		NFCSource: mapperImpl,
		MaxFlows:  flows,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: flows, PacketBytes: 64, Order: traffic.OrderUniform, Seed: 13,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// Operator configuration: register flows and their NAT mappings.
	store := res.Stores["flow_mapper"]
	for i := 0; i < flows; i++ {
		if err := res.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			return nil, nil, nil, err
		}
		if err := store.Set(i, 0, natIP); err != nil { // ip
			return nil, nil, nil, err
		}
		if err := store.Set(i, 1, uint64(1024+i%60000)); err != nil { // port
			return nil, nil, nil, err
		}
	}
	return res, as, g, nil
}

func run() error {
	// Show the visibility the compiler extracted from the NF-C source.
	actions, err := nfc.Parse(mapperImpl)
	if err != nil {
		return err
	}
	compiled, err := nfc.Compile(actions[0], nfc.Schema{nfc.RootPerFlow: {"ip", "port"}})
	if err != nil {
		return err
	}
	fmt.Printf("NF-C action %q compiled:\n", compiled.Name)
	fmt.Printf("  reads:  PerFlowState%v\n", compiled.Reads[nfc.RootPerFlow])
	fmt.Printf("  writes: Packet%v\n", compiled.Writes[nfc.RootPacket])
	fmt.Printf("  emits:  %v\n\n", compiled.Events)

	res, as, g, err := build()
	if err != nil {
		return err
	}
	fmt.Printf("compiled program %q: %d control states, %d actions\n\n",
		res.Program.Name(), res.Program.NumCS(), res.Program.NumActions())

	// RTC baseline.
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		return err
	}
	rtcW, err := rtc.NewWorker(core, as, res.Program, rtc.DefaultConfig())
	if err != nil {
		return err
	}
	if _, err := rtcW.Run(g, packets/10); err != nil {
		return err
	}
	base, err := rtcW.Run(g, packets)
	if err != nil {
		return err
	}

	// Interleaved — fresh state so the comparison is cold-for-cold.
	res, as, g, err = build()
	if err != nil {
		return err
	}
	core, err = sim.NewCore(sim.DefaultConfig())
	if err != nil {
		return err
	}
	w, err := rt.NewWorker(core, as, res.Program, rt.DefaultConfig())
	if err != nil {
		return err
	}
	if _, err := w.Run(g, packets/10); err != nil {
		return err
	}
	il, err := w.Run(g, packets)
	if err != nil {
		return err
	}

	fmt.Printf("spec-compiled NAT, %d flows, 64B packets:\n", flows)
	fmt.Printf("  %-24s %8.2f Gbps\n", "per-packet RTC:", base.Gbps())
	fmt.Printf("  %-24s %8.2f Gbps  (%.2fx)\n", "interleaved x16:", il.Gbps(), il.Gbps()/base.Gbps())
	return nil
}
