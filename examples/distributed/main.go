// Distributed: the paper's §III control-plane architecture in one
// process. A director comes up, three runtime agents register with it
// over TCP, the director deploys the same NAT twice — once per
// execution model — to every agent in parallel, and the per-agent
// results come back over the wire.
//
// The same protocol drives the standalone binaries:
//
//	gunfu-director -agents 3 -nf nat &
//	gunfu-worker -name w1 & gunfu-worker -name w2 & gunfu-worker -name w3
//
// This example wires them in-process so it runs with one command:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/gunfu-nfv/gunfu/internal/director"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	d := director.New()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("director listening on %s\n", addr)

	var wg sync.WaitGroup
	for _, name := range []string{"edge-1", "edge-2", "edge-3"} {
		agent, err := director.NewAgent(name, director.DefaultRegistry())
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Run returns once the director shuts the cluster down.
			if err := agent.Run(addr); err != nil {
				fmt.Fprintf(os.Stderr, "agent: %v\n", err)
			}
		}()
	}
	// Shut the cluster down (and only then reap the agents — Close is
	// what unblocks their Run loops).
	defer func() {
		_ = d.Close()
		wg.Wait()
	}()
	if err := d.WaitAgents(3, 10*time.Second); err != nil {
		return err
	}
	fmt.Printf("agents registered: %v\n\n", d.Agents())

	deploy := director.DeploySpec{
		NF:          "nat",
		Flows:       32768,
		Packets:     60000,
		Warmup:      6000,
		PacketBytes: 64,
		Seed:        5,
	}

	for _, cfg := range []struct {
		label string
		tasks int
	}{
		{"per-packet RTC", 0},
		{"interleaved x16", 16},
	} {
		deploy.Tasks = cfg.tasks
		results, err := d.DeployAll(deploy, 5*time.Minute)
		if err != nil {
			return err
		}
		var total float64
		fmt.Printf("%s:\n", cfg.label)
		for _, r := range results {
			fmt.Printf("  %-8s %8.2f Gbps  ipc=%.2f  l1=%5.1f%%\n",
				r.Agent, r.Gbps(), r.Counters.IPC(), 100*r.Counters.L1HitRate())
			total += r.Gbps()
		}
		fmt.Printf("  aggregate: %.2f Gbps\n\n", total)
	}
	return nil
}
