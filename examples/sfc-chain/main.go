// SFC chain: compose LB → NAT → NM → FW into one service function
// chain and walk the compiler-optimization ladder of the paper's §VI —
// interleaving, redundant prefetch removal, fused data packing, and
// redundant matching removal.
//
//	go run ./examples/sfc-chain
package main

import (
	"fmt"
	"os"

	gunfu "github.com/gunfu-nfv/gunfu"
)

const (
	flows   = 65536
	packets = 80000
	length  = 4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "sfc-chain: %v\n", err)
		os.Exit(1)
	}
}

// setup builds a populated chain and compiles it with opts.
func setup(opts gunfu.SFCOptions) (*gunfu.Program, *gunfu.FlowGen, *gunfu.AddressSpace, error) {
	as := gunfu.NewAddressSpace()
	chain, err := gunfu.BuildChain(as, length, flows)
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := gunfu.NewFlowGen(gunfu.FlowGenConfig{
		Flows: flows, PacketBytes: 64, Order: gunfu.OrderUniform, Seed: 3,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	tuples := make([]gunfu.FiveTuple, flows)
	for i := range tuples {
		tuples[i] = g.FlowTuple(i)
	}
	if err := gunfu.PopulateFlows(chain, tuples); err != nil {
		return nil, nil, nil, err
	}
	prog, err := gunfu.BuildSFC("sfc", chain, opts)
	return prog, g, as, err
}

func measure(prog *gunfu.Program, g *gunfu.FlowGen, as *gunfu.AddressSpace, tasks int) (gunfu.Result, error) {
	core, err := gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		return gunfu.Result{}, err
	}
	if tasks == 0 {
		w, err := gunfu.NewRTCWorker(core, as, prog, gunfu.DefaultRTCConfig())
		if err != nil {
			return gunfu.Result{}, err
		}
		if _, err := w.Run(g, packets/10); err != nil {
			return gunfu.Result{}, err
		}
		return w.Run(g, packets)
	}
	cfg := gunfu.DefaultWorkerConfig()
	cfg.Tasks = tasks
	w, err := gunfu.NewWorker(core, as, prog, cfg)
	if err != nil {
		return gunfu.Result{}, err
	}
	if _, err := w.Run(g, packets/10); err != nil {
		return gunfu.Result{}, err
	}
	return w.Run(g, packets)
}

func run() error {
	fmt.Printf("service function chain LB->NAT->NM->FW, %d flows, 64B packets, one core\n\n", flows)

	steps := []struct {
		name  string
		opts  gunfu.SFCOptions
		tasks int
	}{
		{"RTC baseline", gunfu.SFCOptions{}, 0},
		{"interleaved (16 streams)", gunfu.SFCOptions{}, 16},
		{"+ redundant matching removal", gunfu.SFCOptions{RemoveRedundantMatching: true}, 16},
	}

	var base float64
	for i, s := range steps {
		prog, g, as, err := setup(s.opts)
		if err != nil {
			return err
		}
		res, err := measure(prog, g, as, s.tasks)
		if err != nil {
			return err
		}
		if i == 0 {
			base = res.Gbps()
		}
		fmt.Printf("%-32s %8.2f Gbps  IPC %.2f  (%.2fx)\n",
			s.name, res.Gbps(), res.Counters.IPC(), res.Gbps()/base)
	}
	fmt.Println("\n(run gunfu-bench -exp fig13 for the full ladder incl. fused data packing)")
	return nil
}
