// UPF downlink: the paper's headline network function. A 5G user
// plane with 32K PFCP sessions × 16 packet detection rules receives
// downlink traffic; every packet is matched through the MDI tree
// (UE IP → session, source port → PDR), has its FAR applied, and is
// GTP-U encapsulated toward the RAN. The example sweeps the
// interleaving depth to show where memory-level parallelism saturates.
//
//	go run ./examples/upf-downlink
package main

import (
	"fmt"
	"os"

	gunfu "github.com/gunfu-nfv/gunfu"
)

const (
	sessions = 32768
	pdrs     = 16
	packets  = 100000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "upf-downlink: %v\n", err)
		os.Exit(1)
	}
}

func build() (*gunfu.Program, *gunfu.MGWGen, *gunfu.AddressSpace, *gunfu.UPF, error) {
	as := gunfu.NewAddressSpace()
	u, err := gunfu.NewUPF(as, gunfu.UPFConfig{Sessions: sessions, PDRsPerSession: pdrs})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	prog, err := u.DownlinkProgram()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	g, err := gunfu.NewMGWGen(gunfu.MGWConfig{
		Sessions: sessions, PDRs: pdrs, PacketBytes: 128, Seed: 7,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return prog, g, as, u, nil
}

func run() error {
	prog, g, as, u, err := build()
	if err != nil {
		return err
	}
	fmt.Printf("5G UPF downlink: %d sessions x %d PDRs (MDI tree depth %d), 128B packets\n\n",
		sessions, pdrs, u.Tree().Depth())

	// RTC baseline first.
	core, err := gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		return err
	}
	rtcW, err := gunfu.NewRTCWorker(core, as, prog, gunfu.DefaultRTCConfig())
	if err != nil {
		return err
	}
	if _, err := rtcW.Run(g, packets/10); err != nil {
		return err
	}
	base, err := rtcW.Run(g, packets)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %8.2f Gbps  %7.1f cyc/pkt  L1 %5.1f%%\n",
		"RTC", base.Gbps(), base.CyclesPerPacket(), 100*base.Counters.L1HitRate())

	for _, tasks := range []int{1, 4, 16, 64} {
		prog, g, as, _, err := build()
		if err != nil {
			return err
		}
		core, err := gunfu.NewCore(gunfu.DefaultSimConfig())
		if err != nil {
			return err
		}
		cfg := gunfu.DefaultWorkerConfig()
		cfg.Tasks = tasks
		w, err := gunfu.NewWorker(core, as, prog, cfg)
		if err != nil {
			return err
		}
		if _, err := w.Run(g, packets/10); err != nil {
			return err
		}
		res, err := w.Run(g, packets)
		if err != nil {
			return err
		}
		fmt.Printf("IL-%-7d %8.2f Gbps  %7.1f cyc/pkt  L1 %5.1f%%  (%.2fx RTC)\n",
			tasks, res.Gbps(), res.CyclesPerPacket(),
			100*res.Counters.L1HitRate(), res.Gbps()/base.Gbps())
	}

	// Show the data plane is real: sessions carry usage counters.
	s, err := u.Session(0)
	if err != nil {
		return err
	}
	fmt.Printf("\nsession 0: TEID=%#x usage=%d pkts / %d bytes\n",
		s.TEIDOut, s.UsagePkts, s.UsageBytes)
	return nil
}
