// Quickstart: run a 64K-flow stateful NAT under both execution models
// and compare — the one-minute tour of what GuNFu is about.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	gunfu "github.com/gunfu-nfv/gunfu"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const flows = 65536
	const packets = 100000

	// build constructs a fresh NAT with its flow table pre-populated
	// and a matching uniform 64B workload.
	build := func() (*gunfu.Program, *gunfu.FlowGen, *gunfu.AddressSpace, error) {
		as := gunfu.NewAddressSpace()
		n, err := gunfu.NewNAT(as, gunfu.NATConfig{MaxFlows: flows})
		if err != nil {
			return nil, nil, nil, err
		}
		g, err := gunfu.NewFlowGen(gunfu.FlowGenConfig{
			Flows: flows, PacketBytes: 64, Order: gunfu.OrderUniform, Seed: 1,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < flows; i++ {
			if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
				return nil, nil, nil, err
			}
		}
		prog, err := n.Program()
		return prog, g, as, err
	}

	// Baseline: per-packet run-to-completion, the execution model of
	// BESS/FastClick/L25GC.
	prog, g, as, err := build()
	if err != nil {
		return err
	}
	core, err := gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		return err
	}
	rtcW, err := gunfu.NewRTCWorker(core, as, prog, gunfu.DefaultRTCConfig())
	if err != nil {
		return err
	}
	if _, err := rtcW.Run(g, packets/10); err != nil { // warm the caches
		return err
	}
	rtcRes, err := rtcW.Run(g, packets)
	if err != nil {
		return err
	}

	// GuNFu: 16 interleaved function streams with prefetching.
	prog, g, as, err = build()
	if err != nil {
		return err
	}
	core, err = gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		return err
	}
	ilW, err := gunfu.NewWorker(core, as, prog, gunfu.DefaultWorkerConfig())
	if err != nil {
		return err
	}
	if _, err := ilW.Run(g, packets/10); err != nil {
		return err
	}
	ilRes, err := ilW.Run(g, packets)
	if err != nil {
		return err
	}

	fmt.Printf("stateful NAT, %d concurrent flows, 64B packets, one simulated core\n\n", flows)
	fmt.Printf("%-28s %8.2f Gbps  %6.2f Mpps  L1 hit %5.1f%%  IPC %.2f\n",
		"per-packet RTC (baseline):", rtcRes.Gbps(), rtcRes.Mpps(),
		100*rtcRes.Counters.L1HitRate(), rtcRes.Counters.IPC())
	fmt.Printf("%-28s %8.2f Gbps  %6.2f Mpps  L1 hit %5.1f%%  IPC %.2f\n",
		"interleaved streams (GuNFu):", ilRes.Gbps(), ilRes.Mpps(),
		100*ilRes.Counters.L1HitRate(), ilRes.Counters.IPC())
	fmt.Printf("\nspeedup: %.2fx\n", ilRes.Gbps()/rtcRes.Gbps())
	return nil
}
