// AMF registration: the state-complexity story. A 5G AMF holds a UE
// context of more than 20 cache lines; each NAS message of the initial
// registration call flow touches a different slice of it. The example
// runs the full call flow under both execution models and shows the
// extra gain from data-packing the UE context layout.
//
//	go run ./examples/amf-registration
package main

import (
	"fmt"
	"os"

	gunfu "github.com/gunfu-nfv/gunfu"
	"github.com/gunfu-nfv/gunfu/internal/nf/amf"
)

const (
	ues      = 1 << 15
	messages = 60000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "amf-registration: %v\n", err)
		os.Exit(1)
	}
}

func build(layout *gunfu.Layout) (*gunfu.Program, *gunfu.AMFGen, *gunfu.AddressSpace, *gunfu.AMF, error) {
	as := gunfu.NewAddressSpace()
	a, err := gunfu.NewAMF(as, gunfu.AMFConfig{MaxUEs: ues, Layout: layout})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	prog, err := a.Program()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	g, err := gunfu.NewAMFGen(gunfu.AMFTrafficConfig{UEs: ues, Seed: 11})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return prog, g, as, a, nil
}

func run() error {
	prog, g, as, a, err := build(nil)
	if err != nil {
		return err
	}
	fmt.Printf("5G AMF initial registration, %d UEs, UE context = %d cache lines\n\n",
		ues, a.ContextLines())

	// RTC baseline.
	core, err := gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		return err
	}
	rtcW, err := gunfu.NewRTCWorker(core, as, prog, gunfu.DefaultRTCConfig())
	if err != nil {
		return err
	}
	if _, err := rtcW.Run(g, messages/10); err != nil {
		return err
	}
	base, err := rtcW.Run(g, messages)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %9.1f kmsg/s  LLC misses/msg %.2f\n",
		"RTC:", base.Mpps()*1000, llcPerMsg(base))

	// Interleaved.
	prog, g, as, _, err = build(nil)
	if err != nil {
		return err
	}
	core, err = gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		return err
	}
	w, err := gunfu.NewWorker(core, as, prog, gunfu.DefaultWorkerConfig())
	if err != nil {
		return err
	}
	if _, err := w.Run(g, messages/10); err != nil {
		return err
	}
	il, err := w.Run(g, messages)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %9.1f kmsg/s  LLC misses/msg %.2f  (%.2fx)\n",
		"interleaved (16 streams):", il.Mpps()*1000, llcPerMsg(il), il.Mpps()/base.Mpps())

	// Interleaved + data-packed UE context: the compiler groups each
	// handler's co-accessed fields into adjacent cache lines.
	packed, err := gunfu.PackLayout(amf.Fields(), amf.AccessGroups())
	if err != nil {
		return err
	}
	prog, g, as, _, err = build(packed)
	if err != nil {
		return err
	}
	core, err = gunfu.NewCore(gunfu.DefaultSimConfig())
	if err != nil {
		return err
	}
	w, err = gunfu.NewWorker(core, as, prog, gunfu.DefaultWorkerConfig())
	if err != nil {
		return err
	}
	if _, err := w.Run(g, messages/10); err != nil {
		return err
	}
	dp, err := w.Run(g, messages)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %9.1f kmsg/s  LLC misses/msg %.2f  (+%.1f%% over interleaved)\n",
		"interleaved + data packing:", dp.Mpps()*1000, llcPerMsg(dp),
		100*(dp.Mpps()/il.Mpps()-1))
	return nil
}

func llcPerMsg(r gunfu.Result) float64 {
	_, _, llc := r.MissesPerPacket()
	return llc
}
