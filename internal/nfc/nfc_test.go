package nfc

import (
	"strings"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// mapperSrc is the paper's Listing 4 flow mapper.
const mapperSrc = `
// Implementation Using NF-C
NFAction(flow_mapper) {
  Packet.src_ip = PerFlowState.ip;
  Packet.src_port = PerFlowState.port;
  Emit(Event_Packet);
}
`

func TestParseMapper(t *testing.T) {
	actions, err := Parse(mapperSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Name != "flow_mapper" {
		t.Fatalf("actions = %+v", actions)
	}
	if len(actions[0].Body) != 3 {
		t.Fatalf("body = %d statements, want 3", len(actions[0].Body))
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"empty", "  // nothing\n"},
		{"not action", "foo(bar){}"},
		{"missing paren", "NFAction flow {}"},
		{"unterminated block", "NFAction(a) { Emit(Event_X);"},
		{"missing semicolon", "NFAction(a) { Emit(Event_X) }"},
		{"bad assign op", "NFAction(a) { Packet.src_ip * 2; }"},
		{"duplicate action", "NFAction(a) { Emit(Event_X); } NFAction(a) { Emit(Event_X); }"},
		{"bad char", "NFAction(a) { Packet.src_ip = $; }"},
		{"missing field", "NFAction(a) { Packet = 1; }"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Fatalf("Parse accepted %q", tt.src)
			}
		})
	}
}

func TestEventNameMapping(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Event_Packet", "packet"},
		{"Event_MATCH_SUCCESS", "match_success"},
		{"done", "done"},
	}
	for _, tt := range tests {
		if got := eventName(tt.in); got != tt.want {
			t.Errorf("eventName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func mapperSchema() Schema {
	return Schema{RootPerFlow: {"ip", "port"}}
}

func compileMapper(t *testing.T) *Compiled {
	t.Helper()
	actions, err := Parse(mapperSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(actions[0], mapperSchema())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileExtractsAccessSets(t *testing.T) {
	c := compileMapper(t)
	if got := c.Reads[RootPerFlow]; len(got) != 2 || got[0] != "ip" || got[1] != "port" {
		t.Fatalf("per-flow reads = %v", got)
	}
	if got := c.Writes[RootPacket]; len(got) != 2 {
		t.Fatalf("packet writes = %v", got)
	}
	if len(c.Events) != 1 || c.Events[0] != "packet" {
		t.Fatalf("events = %v", c.Events)
	}
	if c.Cost == 0 {
		t.Fatal("cost estimate is zero")
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"unknown packet field", "NFAction(a) { Packet.warp = 1; Emit(Event_X); }"},
		{"unknown perflow field", "NFAction(a) { PerFlowState.zzz = 1; Emit(Event_X); }"},
		{"no schema root", "NFAction(a) { SubFlowState.x = 1; Emit(Event_X); }"},
		{"undeclared local", "NFAction(a) { x = 1; Emit(Event_X); }"},
		{"undeclared local read", "NFAction(a) { var y = x; Emit(Event_X); }"},
		{"redeclared local", "NFAction(a) { var x = 1; var x = 2; Emit(Event_X); }"},
		{"too many locals", "NFAction(a) { var a0=0; var a1=0; var a2=0; var a3=0; var a4=0; var a5=0; var a6=0; var a7=0; var a8=0; Emit(Event_X); }"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			actions, err := Parse(tt.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := Compile(actions[0], mapperSchema()); err == nil {
				t.Fatalf("Compile accepted %q", tt.src)
			}
		})
	}
}

func newTestEnv(t *testing.T) (*Env, *Store) {
	t.Helper()
	store, err := NewStore([]string{"ip", "port"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(Stores{PerFlow: store}), store
}

func TestMapperExecution(t *testing.T) {
	c := compileMapper(t)
	env, store := newTestEnv(t)
	if err := store.Set(3, 0, 0x01020304); err != nil { // ip
		t.Fatal(err)
	}
	if err := store.Set(3, 1, 4242); err != nil { // port
		t.Fatal(err)
	}
	e := &model.Exec{FlowIdx: 3, Pkt: &pkt.Packet{}}
	ev := c.run(e, env)
	if ev != 0 {
		t.Fatalf("emitted event index %d", ev)
	}
	if e.Pkt.Tuple.SrcIP != 0x01020304 || e.Pkt.Tuple.SrcPort != 4242 {
		t.Fatalf("packet not rewritten: %+v", e.Pkt.Tuple)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
NFAction(calc) {
  var x = 10;
  var y = x * 3 + 2;     // 32
  y -= 2;                // 30
  PerFlowState.ip = y / 3; // 10
  if (PerFlowState.ip == 10) {
    PerFlowState.port = (1 << 4) | 3; // 19
    Emit(Event_Hit);
  } else {
    Emit(Event_Miss);
  }
}
`
	actions, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(actions[0], mapperSchema())
	if err != nil {
		t.Fatal(err)
	}
	env, store := newTestEnv(t)
	e := &model.Exec{FlowIdx: 0, Pkt: &pkt.Packet{}}
	ev := c.run(e, env)
	if c.Events[ev] != "hit" {
		t.Fatalf("emitted %q, want hit", c.Events[ev])
	}
	ip, _ := store.Get(0, 0)
	port, _ := store.Get(0, 1)
	if ip != 10 || port != 19 {
		t.Fatalf("state = ip %d port %d, want 10/19", ip, port)
	}
}

func TestElseBranchAndComparisons(t *testing.T) {
	src := `
NFAction(cmp) {
  if (Packet.src_port >= 1000 && Packet.src_port != 2000) {
    Emit(Event_High);
  } else {
    Emit(Event_Low);
  }
}
`
	actions, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(actions[0], Schema{})
	if err != nil {
		t.Fatal(err)
	}
	env, _ := newTestEnv(t)
	for _, tt := range []struct {
		port uint16
		want string
	}{{1500, "high"}, {500, "low"}, {2000, "low"}} {
		e := &model.Exec{Pkt: &pkt.Packet{Tuple: pkt.FiveTuple{SrcPort: tt.port}}}
		ev := c.run(e, env)
		if c.Events[ev] != tt.want {
			t.Fatalf("port %d emitted %q, want %q", tt.port, c.Events[ev], tt.want)
		}
	}
}

func TestDivModByZeroSafe(t *testing.T) {
	src := `
NFAction(z) {
  var a = 10 / 0;
  var b = 10 % 0;
  PerFlowState.ip = a + b;
  Emit(Event_X);
}
`
	actions, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(actions[0], mapperSchema())
	if err != nil {
		t.Fatal(err)
	}
	env, store := newTestEnv(t)
	e := &model.Exec{FlowIdx: 0, Pkt: &pkt.Packet{}}
	c.run(e, env) // must not panic
	if v, _ := store.Get(0, 0); v != 0 {
		t.Fatalf("division by zero yielded %d", v)
	}
}

func TestCompoundAssignOnState(t *testing.T) {
	src := `NFAction(acc) { PerFlowState.ip += 5; Emit(Event_X); }`
	actions, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(actions[0], mapperSchema())
	if err != nil {
		t.Fatal(err)
	}
	// A compound assignment both reads and writes the field.
	if got := c.Reads[RootPerFlow]; len(got) != 1 || got[0] != "ip" {
		t.Fatalf("reads = %v", got)
	}
	if got := c.Writes[RootPerFlow]; len(got) != 1 || got[0] != "ip" {
		t.Fatalf("writes = %v", got)
	}
	env, store := newTestEnv(t)
	e := &model.Exec{FlowIdx: 1, Pkt: &pkt.Packet{}}
	c.run(e, env)
	c.run(e, env)
	if v, _ := store.Get(1, 0); v != 10 {
		t.Fatalf("accumulator = %d, want 10", v)
	}
}

func TestToActionIntegration(t *testing.T) {
	c := compileMapper(t)
	env, store := newTestEnv(t)
	if err := store.Set(0, 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := store.Set(0, 1, 8); err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder("p")
	act, err := ToAction(c, env, b)
	if err != nil {
		t.Fatal(err)
	}
	if act.Name != "flow_mapper" || act.Kind != model.ActionData {
		t.Fatalf("action = %+v", act)
	}
	if len(act.Reads) == 0 || len(act.Writes) == 0 {
		t.Fatal("access declarations missing")
	}
	e := &model.Exec{FlowIdx: 0, Pkt: &pkt.Packet{}}
	ev := act.Fn(e)
	if ev != b.Event("packet") {
		t.Fatalf("Fn returned event %d", ev)
	}
	if e.Pkt.Tuple.SrcIP != 7 {
		t.Fatal("Fn did not execute body")
	}
}

func TestControlWritesMakeConfigAction(t *testing.T) {
	src := `NFAction(cfg) { ControlState.mode = 1; Emit(Event_X); }`
	actions, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(actions[0], Schema{RootControl: {"mode"}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewStore([]string{"mode"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(Stores{Control: ctrl})
	b := model.NewBuilder("p")
	act, err := ToAction(c, env, b)
	if err != nil {
		t.Fatal(err)
	}
	if act.Kind != model.ActionConfig {
		t.Fatalf("kind = %v, want config", act.Kind)
	}
	e := &model.Exec{Pkt: &pkt.Packet{}}
	act.Fn(e)
	if v, _ := ctrl.Get(0, 0); v != 1 {
		t.Fatal("control state not written")
	}
}

func TestNoEmitDefaultsToDone(t *testing.T) {
	src := `NFAction(quiet) { PerFlowState.ip = 1; }`
	actions, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(actions[0], mapperSchema())
	if err != nil {
		t.Fatal(err)
	}
	env, _ := newTestEnv(t)
	b := model.NewBuilder("p")
	act, err := ToAction(c, env, b)
	if err != nil {
		t.Fatal(err)
	}
	e := &model.Exec{FlowIdx: 0, Pkt: &pkt.Packet{}}
	if ev := act.Fn(e); ev != model.EvDone {
		t.Fatalf("event = %d, want done", ev)
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(nil, 4); err == nil {
		t.Fatal("empty fields accepted")
	}
	if _, err := NewStore([]string{"a"}, 0); err == nil {
		t.Fatal("zero records accepted")
	}
	s, err := NewStore([]string{"a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(5, 0); err == nil {
		t.Fatal("out-of-range Get accepted")
	}
	if err := s.Set(0, 9, 1); err == nil {
		t.Fatal("out-of-range Set accepted")
	}
	if got := s.Fields(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Fields = %v", got)
	}
}

func TestTempStateRoundTrips(t *testing.T) {
	src := `
NFAction(a) { TempState.t0 = 42; Emit(Event_X); }
NFAction(b) { PerFlowState.ip = TempState.t0; Emit(Event_X); }
`
	actions, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	schema := Schema{RootPerFlow: {"ip", "port"}, RootTemp: {"t0"}}
	ca, err := Compile(actions[0], schema)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Compile(actions[1], schema)
	if err != nil {
		t.Fatal(err)
	}
	env, store := newTestEnv(t)
	e := &model.Exec{FlowIdx: 0, Pkt: &pkt.Packet{}}
	ca.run(e, env)
	cb.run(e, env)
	if v, _ := store.Get(0, 0); v != 42 {
		t.Fatalf("temp state did not carry across actions: %d", v)
	}
}

func TestPacketFieldNamesSorted(t *testing.T) {
	names := PacketFieldNames()
	if len(names) < 5 {
		t.Fatalf("names = %v", names)
	}
	if !strings.Contains(strings.Join(names, ","), "src_ip") {
		t.Fatal("src_ip missing")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}
