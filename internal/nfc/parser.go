package nfc

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads NF-C source into its action definitions.
func Parse(src string) ([]*ActionAST, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var actions []*ActionAST
	for !p.at(tokEOF, "") {
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		actions = append(actions, a)
	}
	if len(actions) == 0 {
		return nil, fmt.Errorf("nfc: no NFAction definitions")
	}
	seen := make(map[string]bool, len(actions))
	for _, a := range actions {
		if seen[a.Name] {
			return nil, fmt.Errorf("nfc: duplicate NFAction %q", a.Name)
		}
		seen[a.Name] = true
	}
	return actions, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		t := p.cur()
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, fmt.Errorf("nfc: line %d: expected %q, found %q", t.line, want, t.text)
	}
	t := p.cur()
	p.pos++
	return t, nil
}

func (p *parser) parseAction() (*ActionAST, error) {
	kw, err := p.eat(tokIdent, "NFAction")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tokPunct, "("); err != nil {
		return nil, err
	}
	name, err := p.eat(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ActionAST{Name: name.text, Body: body, Line: kw.line}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.eat(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, fmt.Errorf("nfc: unexpected end of input inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.pos++ // consume }
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent && t.text == "if":
		return p.parseIf()
	case t.kind == tokIdent && t.text == "Emit":
		p.pos++
		if _, err := p.eat(tokPunct, "("); err != nil {
			return nil, err
		}
		ev, err := p.eat(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &EmitStmt{Event: eventName(ev.text), Line: t.line}, nil
	case t.kind == tokIdent && t.text == "var":
		p.pos++
		name, err := p.eat(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.text, Expr: e, Line: t.line}, nil
	default:
		return p.parseAssign()
	}
}

// eventName maps Emit's identifier to an NFEvent name: the Event_
// prefix is stripped and the remainder lowercased, so Emit(Event_Packet)
// raises "packet" (Listings 2 and 4 pair exactly this way).
func eventName(ident string) string {
	return strings.ToLower(strings.TrimPrefix(ident, "Event_"))
}

func (p *parser) parseIf() (Stmt, error) {
	t, err := p.eat(tokIdent, "if")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.at(tokIdent, "else") {
		p.pos++
		els, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.line}, nil
}

func (p *parser) parseAssign() (Stmt, error) {
	t := p.cur()
	lv, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	op := p.cur()
	if op.kind != tokPunct || (op.text != "=" && op.text != "+=" && op.text != "-=") {
		return nil, fmt.Errorf("nfc: line %d: expected assignment operator, found %q", op.line, op.text)
	}
	p.pos++
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.eat(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &AssignStmt{LV: lv, Op: op.text, Expr: e, Line: t.line}, nil
}

func (p *parser) parseLValue() (LValue, error) {
	name, err := p.eat(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if root, ok := rootByName(name.text); ok {
		if _, err := p.eat(tokPunct, "."); err != nil {
			return nil, err
		}
		field, err := p.eat(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &RefLV{Root: root, Field: field.text}, nil
	}
	return &VarLV{Name: name.text}, nil
}

// Expression parsing: precedence climbing.
var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binaryPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseUint(t.text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("nfc: line %d: %w", t.line, err)
		}
		return &NumberLit{Val: v}, nil
	case t.kind == tokPunct && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.pos++
		if root, ok := rootByName(t.text); ok {
			if _, err := p.eat(tokPunct, "."); err != nil {
				return nil, err
			}
			field, err := p.eat(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &RefExpr{Root: root, Field: field.text}, nil
		}
		return &VarExpr{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("nfc: line %d: unexpected token %q in expression", t.line, t.text)
	}
}
