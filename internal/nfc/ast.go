package nfc

import "fmt"

// Root names an NFState family addressable from NF-C.
type Root int

// The NF-C state roots.
const (
	// RootPacket addresses packet-state fields (Packet.src_ip, …).
	RootPacket Root = iota + 1
	// RootPerFlow addresses the matched per-flow record.
	RootPerFlow
	// RootSubFlow addresses the matched sub-flow record.
	RootSubFlow
	// RootControl addresses the module's control state.
	RootControl
	// RootTemp addresses cross-action temporary state.
	RootTemp
)

// String names the root as it appears in source.
func (r Root) String() string {
	switch r {
	case RootPacket:
		return "Packet"
	case RootPerFlow:
		return "PerFlowState"
	case RootSubFlow:
		return "SubFlowState"
	case RootControl:
		return "ControlState"
	case RootTemp:
		return "TempState"
	default:
		return fmt.Sprintf("Root(%d)", int(r))
	}
}

// rootByName resolves the extended keywords.
func rootByName(name string) (Root, bool) {
	switch name {
	case "Packet":
		return RootPacket, true
	case "PerFlowState":
		return RootPerFlow, true
	case "SubFlowState":
		return RootSubFlow, true
	case "ControlState":
		return RootControl, true
	case "TempState":
		return RootTemp, true
	default:
		return 0, false
	}
}

// ActionAST is one parsed NFAction definition.
type ActionAST struct {
	// Name is the action name from NFAction(name).
	Name string
	// Body is the statement list.
	Body []Stmt
	// Line is the source line of the definition.
	Line int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// AssignStmt is "lvalue op expr;" with op one of =, +=, -=.
type AssignStmt struct {
	LV   LValue
	Op   string
	Expr Expr
	Line int
}

// IfStmt is "if (cond) {…} else {…}".
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// EmitStmt is "Emit(Event_X);" — it ends the action with the event.
type EmitStmt struct {
	Event string
	Line  int
}

// VarStmt declares a local: "var x = expr;".
type VarStmt struct {
	Name string
	Expr Expr
	Line int
}

func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*EmitStmt) stmt()   {}
func (*VarStmt) stmt()    {}

// Expr is an expression node; all values are uint64.
type Expr interface{ expr() }

// BinaryExpr applies Op to L and R.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies Op (- or !) to X.
type UnaryExpr struct {
	Op string
	X  Expr
}

// NumberLit is an integer literal.
type NumberLit struct{ Val uint64 }

// RefExpr reads a state field.
type RefExpr struct {
	Root  Root
	Field string
}

// VarExpr reads a local variable.
type VarExpr struct{ Name string }

func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*NumberLit) expr()  {}
func (*RefExpr) expr()    {}
func (*VarExpr) expr()    {}

// LValue is an assignable location.
type LValue interface{ lvalue() }

// RefLV assigns a state field.
type RefLV struct {
	Root  Root
	Field string
}

// VarLV assigns a local variable.
type VarLV struct{ Name string }

func (*RefLV) lvalue() {}
func (*VarLV) lvalue() {}
