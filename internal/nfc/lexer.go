// Package nfc implements NF-C, the paper's C-like DSL for NFAction
// logic (§IV-B, Listing 4). NF-C code names NFStates through the
// extended keywords Packet, PerFlowState, SubFlowState, ControlState
// and TempState; the compiler extracts each action's read and write
// sets — the deep visibility granular decomposition requires — and
// produces an executable model.ActionFunc whose temporary variables
// live in the NFTask's temp fields, exactly as §VI-A describes.
package nfc

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind discriminates lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // single- or double-character operator/punctuation
)

type token struct {
	kind tokenKind
	text string
	line int
}

// lex tokenizes src. Comments use // to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == 'x' || src[j] == 'X' ||
				(src[j] >= 'a' && src[j] <= 'f') || (src[j] >= 'A' && src[j] <= 'F')) {
				j++
			}
			text := src[i:j]
			if _, err := strconv.ParseUint(text, 0, 64); err != nil {
				return nil, fmt.Errorf("nfc: line %d: bad number %q", line, text)
			}
			toks = append(toks, token{tokNumber, text, line})
			i = j
		default:
			// Two-character operators first.
			if i+1 < len(src) {
				two := src[i : i+2]
				switch two {
				case "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "<<", ">>":
					toks = append(toks, token{tokPunct, two, line})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', '{', '}', ';', '.', '=', '+', '-', '*', '/', '%', '<', '>', '&', '|', '^', '!', ',':
				toks = append(toks, token{tokPunct, string(c), line})
				i++
			default:
				return nil, fmt.Errorf("nfc: line %d: unexpected character %q", line, string(c))
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}
