package nfc

import (
	"fmt"
	"sort"

	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// maxLocals is the per-action temporary variable budget: NF-C locals
// are allocated into the NFTask's temp word array by the compiler
// (§VI-A), which has eight slots.
const maxLocals = 8

// Schema declares the fields addressable under each state root, in
// order; the compiler resolves field names to indexes against it.
// RootPacket is implicitly schema'd by the builtin packet field table.
type Schema map[Root][]string

// Compiled is one NF-C action lowered to executable form, carrying the
// read/write visibility granular decomposition extracts.
type Compiled struct {
	// Name is the NFAction name.
	Name string
	// Reads and Writes list the fields accessed per root, sorted.
	Reads, Writes map[Root][]string
	// Events are the event names the action can emit, in first-emission
	// source order (the interpreter returns indexes into this list).
	Events []string
	// NumLocals is the count of temp-word slots used.
	NumLocals int
	// Cost is the instruction-count estimate charged per execution.
	Cost uint64
	run  func(e *model.Exec, env *Env) int // returns event index or -1
}

// Env supplies the runtime storage NF-C references resolve against.
type Env struct {
	// Get loads field idx of root for the current task.
	Get func(root Root, idx int, e *model.Exec) uint64
	// Set stores field idx of root for the current task.
	Set func(root Root, idx int, e *model.Exec, v uint64)
}

// packetField describes a builtin Packet.* accessor.
type packetField struct {
	get  func(p *pkt.Packet) uint64
	set  func(p *pkt.Packet, v uint64)
	off  uint64 // wire offset for the FieldRef span
	size uint64
}

// packetFields is the builtin packet schema: name → accessor + wire
// span (for prefetch/charging declarations).
var packetFields = map[string]packetField{
	"src_ip": {
		get: func(p *pkt.Packet) uint64 { return uint64(p.Tuple.SrcIP) },
		set: func(p *pkt.Packet, v uint64) { p.Tuple.SrcIP = uint32(v) },
		off: pkt.EthLen + 12, size: 4,
	},
	"dst_ip": {
		get: func(p *pkt.Packet) uint64 { return uint64(p.Tuple.DstIP) },
		set: func(p *pkt.Packet, v uint64) { p.Tuple.DstIP = uint32(v) },
		off: pkt.EthLen + 16, size: 4,
	},
	"src_port": {
		get: func(p *pkt.Packet) uint64 { return uint64(p.Tuple.SrcPort) },
		set: func(p *pkt.Packet, v uint64) { p.Tuple.SrcPort = uint16(v) },
		off: pkt.EthLen + pkt.IPv4Len, size: 2,
	},
	"dst_port": {
		get: func(p *pkt.Packet) uint64 { return uint64(p.Tuple.DstPort) },
		set: func(p *pkt.Packet, v uint64) { p.Tuple.DstPort = uint16(v) },
		off: pkt.EthLen + pkt.IPv4Len + 2, size: 2,
	},
	"proto": {
		get: func(p *pkt.Packet) uint64 { return uint64(p.Tuple.Proto) },
		set: func(p *pkt.Packet, v uint64) { p.Tuple.Proto = uint8(v) },
		off: pkt.EthLen + 9, size: 1,
	},
	"wire_len": {
		get: func(p *pkt.Packet) uint64 { return uint64(p.WireLen) },
		set: func(p *pkt.Packet, v uint64) { p.WireLen = int(v) },
		off: pkt.EthLen + 2, size: 2,
	},
	"teid": {
		get: func(p *pkt.Packet) uint64 { return uint64(p.TEID) },
		set: func(p *pkt.Packet, v uint64) { p.TEID = uint32(v) },
		off: pkt.EthLen + pkt.IPv4Len + pkt.UDPLen + 4, size: 4,
	},
}

// PacketFieldNames returns the builtin Packet.* field names, sorted.
func PacketFieldNames() []string {
	names := make([]string, 0, len(packetFields))
	for n := range packetFields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// compiler carries per-action lowering state.
type compiler struct {
	schema Schema
	locals map[string]int
	reads  map[Root]map[string]bool
	writes map[Root]map[string]bool
	events []string
	evIdx  map[string]int
	cost   uint64
}

// Compile lowers one parsed action against the schema.
func Compile(a *ActionAST, schema Schema) (*Compiled, error) {
	c := &compiler{
		schema: schema,
		locals: make(map[string]int),
		reads:  make(map[Root]map[string]bool),
		writes: make(map[Root]map[string]bool),
		evIdx:  make(map[string]int),
	}
	body, err := c.stmts(a.Body)
	if err != nil {
		return nil, fmt.Errorf("nfc: action %s: %w", a.Name, err)
	}
	out := &Compiled{
		Name:      a.Name,
		Reads:     flatten(c.reads),
		Writes:    flatten(c.writes),
		Events:    append([]string(nil), c.events...),
		NumLocals: len(c.locals),
		Cost:      c.cost + 5,
		run: func(e *model.Exec, env *Env) int {
			for _, s := range body {
				if ev := s(e, env); ev >= 0 {
					return ev
				}
			}
			return -1
		},
	}
	return out, nil
}

func flatten(m map[Root]map[string]bool) map[Root][]string {
	out := make(map[Root][]string, len(m))
	for root, set := range m {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		out[root] = names
	}
	return out
}

// stmtFn executes one statement; a return ≥ 0 is an emitted event index.
type stmtFn func(e *model.Exec, env *Env) int

// exprFn evaluates one expression.
type exprFn func(e *model.Exec, env *Env) uint64

func (c *compiler) stmts(list []Stmt) ([]stmtFn, error) {
	out := make([]stmtFn, 0, len(list))
	for _, s := range list {
		fn, err := c.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, fn)
	}
	return out, nil
}

func (c *compiler) stmt(s Stmt) (stmtFn, error) {
	switch s := s.(type) {
	case *EmitStmt:
		idx, ok := c.evIdx[s.Event]
		if !ok {
			idx = len(c.events)
			c.events = append(c.events, s.Event)
			c.evIdx[s.Event] = idx
		}
		c.cost++
		return func(e *model.Exec, env *Env) int { return idx }, nil

	case *VarStmt:
		if _, dup := c.locals[s.Name]; dup {
			return nil, fmt.Errorf("line %d: redeclared local %q", s.Line, s.Name)
		}
		if len(c.locals) >= maxLocals {
			return nil, fmt.Errorf("line %d: more than %d locals", s.Line, maxLocals)
		}
		val, err := c.expr(s.Expr)
		if err != nil {
			return nil, err
		}
		slot := len(c.locals)
		c.locals[s.Name] = slot
		c.cost++
		return func(e *model.Exec, env *Env) int {
			e.Temp[slot] = val(e, env)
			return -1
		}, nil

	case *AssignStmt:
		val, err := c.expr(s.Expr)
		if err != nil {
			return nil, err
		}
		c.cost += 2
		switch lv := s.LV.(type) {
		case *VarLV:
			slot, ok := c.locals[lv.Name]
			if !ok {
				return nil, fmt.Errorf("line %d: undeclared local %q (use var)", s.Line, lv.Name)
			}
			op := s.Op
			return func(e *model.Exec, env *Env) int {
				applyOp(&e.Temp[slot], op, val(e, env))
				return -1
			}, nil
		case *RefLV:
			idx, err := c.resolve(lv.Root, lv.Field, s.Line, true)
			if err != nil {
				return nil, err
			}
			if s.Op != "=" {
				// Compound assignment also reads.
				if _, err := c.resolve(lv.Root, lv.Field, s.Line, false); err != nil {
					return nil, err
				}
			}
			root, op := lv.Root, s.Op
			return func(e *model.Exec, env *Env) int {
				if op == "=" {
					env.Set(root, idx, e, val(e, env))
				} else {
					cur := env.Get(root, idx, e)
					applyOp(&cur, op, val(e, env))
					env.Set(root, idx, e, cur)
				}
				return -1
			}, nil
		default:
			return nil, fmt.Errorf("line %d: bad lvalue", s.Line)
		}

	case *IfStmt:
		cond, err := c.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.stmts(s.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.stmts(s.Else)
		if err != nil {
			return nil, err
		}
		c.cost += 2
		return func(e *model.Exec, env *Env) int {
			branch := els
			if cond(e, env) != 0 {
				branch = then
			}
			for _, fn := range branch {
				if ev := fn(e, env); ev >= 0 {
					return ev
				}
			}
			return -1
		}, nil

	default:
		return nil, fmt.Errorf("unknown statement %T", s)
	}
}

func applyOp(dst *uint64, op string, v uint64) {
	switch op {
	case "=":
		*dst = v
	case "+=":
		*dst += v
	case "-=":
		*dst -= v
	}
}

// resolve maps (root, field) to a runtime index and records the access.
func (c *compiler) resolve(root Root, field string, line int, write bool) (int, error) {
	var idx int
	if root == RootPacket {
		if _, ok := packetFields[field]; !ok {
			return 0, fmt.Errorf("line %d: unknown packet field %q", line, field)
		}
		idx = packetFieldIndex(field)
	} else {
		fields, ok := c.schema[root]
		if !ok {
			return 0, fmt.Errorf("line %d: no %s schema declared", line, root)
		}
		idx = -1
		for i, f := range fields {
			if f == field {
				idx = i
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("line %d: unknown %s field %q", line, root, field)
		}
	}
	set := c.reads
	if write {
		set = c.writes
	}
	if set[root] == nil {
		set[root] = make(map[string]bool)
	}
	set[root][field] = true
	return idx, nil
}

// packetFieldIndex gives every builtin packet field a stable index.
func packetFieldIndex(name string) int {
	names := PacketFieldNames()
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

func (c *compiler) expr(x Expr) (exprFn, error) {
	switch x := x.(type) {
	case *NumberLit:
		v := x.Val
		return func(*model.Exec, *Env) uint64 { return v }, nil
	case *VarExpr:
		slot, ok := c.locals[x.Name]
		if !ok {
			return nil, fmt.Errorf("undeclared local %q", x.Name)
		}
		return func(e *model.Exec, env *Env) uint64 { return e.Temp[slot] }, nil
	case *RefExpr:
		idx, err := c.resolve(x.Root, x.Field, 0, false)
		if err != nil {
			return nil, err
		}
		root := x.Root
		c.cost++
		return func(e *model.Exec, env *Env) uint64 { return env.Get(root, idx, e) }, nil
	case *UnaryExpr:
		inner, err := c.expr(x.X)
		if err != nil {
			return nil, err
		}
		c.cost++
		switch x.Op {
		case "-":
			return func(e *model.Exec, env *Env) uint64 { return -inner(e, env) }, nil
		case "!":
			return func(e *model.Exec, env *Env) uint64 {
				if inner(e, env) == 0 {
					return 1
				}
				return 0
			}, nil
		default:
			return nil, fmt.Errorf("unknown unary %q", x.Op)
		}
	case *BinaryExpr:
		l, err := c.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(x.R)
		if err != nil {
			return nil, err
		}
		c.cost++
		op := x.Op
		return func(e *model.Exec, env *Env) uint64 {
			a, b := l(e, env), r(e, env)
			switch op {
			case "+":
				return a + b
			case "-":
				return a - b
			case "*":
				return a * b
			case "/":
				if b == 0 {
					return 0
				}
				return a / b
			case "%":
				if b == 0 {
					return 0
				}
				return a % b
			case "&":
				return a & b
			case "|":
				return a | b
			case "^":
				return a ^ b
			case "<<":
				return a << (b & 63)
			case ">>":
				return a >> (b & 63)
			case "==":
				return b2u(a == b)
			case "!=":
				return b2u(a != b)
			case "<":
				return b2u(a < b)
			case ">":
				return b2u(a > b)
			case "<=":
				return b2u(a <= b)
			case ">=":
				return b2u(a >= b)
			case "&&":
				return b2u(a != 0 && b != 0)
			case "||":
				return b2u(a != 0 || b != 0)
			default:
				return 0
			}
		}, nil
	default:
		return nil, fmt.Errorf("unknown expression %T", x)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
