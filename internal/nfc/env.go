package nfc

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/model"
)

// Store is word-per-field backing storage for a state root whose
// records are selected by the task's match result: per-flow and
// sub-flow NF-C state compiled from spec `states` declarations lives
// here (the simulated cache footprint is declared separately through
// the module layout).
type Store struct {
	fields []string
	vals   [][]uint64 // vals[record][field]
}

// NewStore builds storage for n records of the given fields.
func NewStore(fields []string, n int) (*Store, error) {
	if len(fields) == 0 || n <= 0 {
		return nil, fmt.Errorf("nfc: store needs fields and a positive record count")
	}
	vals := make([][]uint64, n)
	backing := make([]uint64, n*len(fields))
	for i := range vals {
		vals[i] = backing[i*len(fields) : (i+1)*len(fields)]
	}
	return &Store{fields: append([]string(nil), fields...), vals: vals}, nil
}

// Fields returns the store's field names in index order.
func (s *Store) Fields() []string { return append([]string(nil), s.fields...) }

// Get reads field idx of record rec.
func (s *Store) Get(rec, idx int) (uint64, error) {
	if rec < 0 || rec >= len(s.vals) || idx < 0 || idx >= len(s.fields) {
		return 0, fmt.Errorf("nfc: store access (%d,%d) out of range", rec, idx)
	}
	return s.vals[rec][idx], nil
}

// Set writes field idx of record rec.
func (s *Store) Set(rec, idx int, v uint64) error {
	if rec < 0 || rec >= len(s.vals) || idx < 0 || idx >= len(s.fields) {
		return fmt.Errorf("nfc: store access (%d,%d) out of range", rec, idx)
	}
	s.vals[rec][idx] = v
	return nil
}

// Stores bundles the per-root storage an Env dispatches to.
type Stores struct {
	// PerFlow and SubFlow are indexed by the task's match results.
	PerFlow, SubFlow *Store
	// Control is record 0 of a one-record store.
	Control *Store
}

// NewEnv builds the runtime environment: Packet.* fields resolve
// through the builtin accessor table against the task's packet, other
// roots through the supplied stores, and TempState through the task's
// temp words.
func NewEnv(stores Stores) *Env {
	packetByIdx := make([]packetField, len(packetFields))
	for i, name := range PacketFieldNames() {
		packetByIdx[i] = packetFields[name]
	}
	get := func(root Root, idx int, e *model.Exec) uint64 {
		switch root {
		case RootPacket:
			return packetByIdx[idx].get(e.Pkt)
		case RootPerFlow:
			return stores.PerFlow.vals[e.FlowIdx][idx]
		case RootSubFlow:
			return stores.SubFlow.vals[e.SubIdx][idx]
		case RootControl:
			return stores.Control.vals[0][idx]
		case RootTemp:
			return e.Temp[idx&7]
		default:
			return 0
		}
	}
	set := func(root Root, idx int, e *model.Exec, v uint64) {
		switch root {
		case RootPacket:
			packetByIdx[idx].set(e.Pkt, v)
		case RootPerFlow:
			stores.PerFlow.vals[e.FlowIdx][idx] = v
		case RootSubFlow:
			stores.SubFlow.vals[e.SubIdx][idx] = v
		case RootControl:
			stores.Control.vals[0][idx] = v
		case RootTemp:
			e.Temp[idx&7] = v
		}
	}
	return &Env{Get: get, Set: set}
}

// FieldRefs translates a compiled action's access sets for one root
// into model FieldRefs: packet fields become wire-offset spans, stored
// roots become layout field references (the module layout must name
// the same fields).
func FieldRefs(accesses map[Root][]string) ([]model.FieldRef, error) {
	var refs []model.FieldRef
	for root, fields := range accesses {
		switch root {
		case RootPacket:
			for _, f := range fields {
				pf, ok := packetFields[f]
				if !ok {
					return nil, fmt.Errorf("nfc: unknown packet field %q", f)
				}
				refs = append(refs, model.Raw(model.KindPacket, model.BasePacket, pf.off, pf.size))
			}
		case RootPerFlow:
			refs = append(refs, model.Fields(model.KindPerFlow, fields...))
		case RootSubFlow:
			refs = append(refs, model.Fields(model.KindSubFlow, fields...))
		case RootControl:
			refs = append(refs, model.Fields(model.KindControl, fields...))
		case RootTemp:
			// Temp words live in the task's scratch line.
			refs = append(refs, model.Raw(model.KindTemp, model.BaseTemp, 0, 64))
		default:
			return nil, fmt.Errorf("nfc: unmappable root %v", root)
		}
	}
	return refs, nil
}

// ToAction assembles a runnable model.Action from a compiled NF-C
// action: the extracted read/write sets become the declared (and hence
// prefetched and charged) state spans, and the interpreter body becomes
// the Fn. Events are interned on b; emitting no event yields "done".
func ToAction(c *Compiled, env *Env, b *model.Builder) (model.Action, error) {
	reads, err := FieldRefs(c.Reads)
	if err != nil {
		return model.Action{}, err
	}
	writes, err := FieldRefs(c.Writes)
	if err != nil {
		return model.Action{}, err
	}
	evByRunIdx := make([]model.EventID, len(c.Events))
	for i, ev := range c.Events {
		evByRunIdx[i] = b.Event(ev)
	}
	kind := model.ActionData
	if len(c.Writes[RootControl]) > 0 {
		kind = model.ActionConfig
	}
	run := c.run
	return model.Action{
		Name:   c.Name,
		Kind:   kind,
		Cost:   c.Cost,
		Reads:  reads,
		Writes: writes,
		Fn: func(e *model.Exec) model.EventID {
			idx := run(e, env)
			if idx < 0 || idx >= len(evByRunIdx) {
				return model.EvDone
			}
			return evByRunIdx[idx]
		},
	}, nil
}
