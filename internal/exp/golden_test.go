package exp

import (
	"fmt"
	"strings"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// The golden-counters tests pin the *simulated* behavior of the engine
// bit-exactly: a fixed seeded workload must produce exactly the same
// PMU counter block, packet count and access-cycle split, forever.
// Host-side optimizations (cache scan kernels, allocation removal,
// parallel sweep execution) must never move a single counter; if one of
// these tests fails, a "performance" change silently altered the
// reproduced numbers and must be fixed, not re-golded.
//
// The golden strings were captured from the seed engine (PR 0) with
// Seed=42 and quick-mode populations.

// goldenCase runs one seeded scenario and returns its fingerprint.
type goldenCase struct {
	name string
	want string
	run  func(o Options) (string, error)
}

// fingerprint renders every simulated quantity a hot-path rewrite could
// disturb: the full counter block (all fields, exact integers — %#v
// bypasses the rounding String method) plus the window totals.
func fingerprint(packets, cycles, accessCycles uint64, ctr sim.Counters) string {
	fields := strings.TrimPrefix(fmt.Sprintf("%#v", ctr), "sim.")
	return fmt.Sprintf("packets=%d cycles=%d access=%d %s", packets, cycles, accessCycles, fields)
}

func goldenCases() []goldenCase {
	const (
		natFlows    = 1 << 13
		upfSessions = 1 << 11
		warm        = 2000
		window      = 8000
	)
	natIL := func(tasks int) func(Options) (string, error) {
		return func(o Options) (string, error) {
			as, prog, src, err := buildNAT(natFlows, 64, o.Seed)
			if err != nil {
				return "", err
			}
			res, err := runIL(o, as, prog, src, tasks, warm, window)
			if err != nil {
				return "", err
			}
			return fingerprint(res.Packets, res.Cycles, res.AccessCycles, res.Counters), nil
		}
	}
	return []goldenCase{
		{
			name: "nat-rtc",
			run: func(o Options) (string, error) {
				as, prog, src, err := buildNAT(natFlows, 64, o.Seed)
				if err != nil {
					return "", err
				}
				res, err := runRTC(o, as, prog, src, warm, window)
				if err != nil {
					return "", err
				}
				return fingerprint(res.Packets, res.Cycles, res.AccessCycles, res.Counters), nil
			},
			want: "packets=8000 cycles=2175288 access=1677440 Counters{Cycles:0x213138, Instructions:0xfafa4, Reads:0x7e34, Writes:0x3e80, L1Hits:0x61f4, L1Misses:0x5ac0, L2Hits:0x2fc0, L2Misses:0x2b00, LLCHits:0x14b8, LLCMisses:0x1648, PrefetchIssued:0x0, PrefetchDropped:0x0, PrefetchRedundant:0x0, PrefetchUseful:0x0, PrefetchLate:0x0, StallCycles:0x1810b0, TaskSwitches:0x0}",
		},
		{
			name: "nat-il16",
			run:  natIL(16),
			want: "packets=8000 cycles=1379326 access=248638 Counters{Cycles:0x150bfe, Instructions:0x18de82, Reads:0x7e34, Writes:0x3e80, L1Hits:0xb357, L1Misses:0x95d, L2Hits:0x7a6, L2Misses:0x1b7, LLCHits:0x1b5, LLCMisses:0x2, PrefetchIssued:0x63d9, PrefetchDropped:0x5, PrefetchRedundant:0x154c, PrefetchUseful:0x6096, PrefetchLate:0x6e, StallCycles:0xfde2, TaskSwitches:0xb9cf}",
		},
		{
			name: "nat-il64",
			run:  natIL(64),
			want: "packets=8000 cycles=1602288 access=467978 Counters{Cycles:0x1872f0, Instructions:0x18eae7, Reads:0x7e34, Writes:0x3e80, L1Hits:0x7f0c, L1Misses:0x3da8, L2Hits:0x319d, L2Misses:0xc0b, LLCHits:0xc08, LLCMisses:0x3, PrefetchIssued:0x7982, PrefetchDropped:0x29, PrefetchRedundant:0x140, PrefetchUseful:0x3c10, PrefetchLate:0x3d, StallCycles:0x527da, TaskSwitches:0xbab2}",
		},
		{
			name: "upf-rtc",
			run: func(o Options) (string, error) {
				as, prog, src, err := buildUPF(upfSessions, 16, 64, o.Seed)
				if err != nil {
					return "", err
				}
				res, err := runRTC(o, as, prog, src, warm, window)
				if err != nil {
					return "", err
				}
				return fingerprint(res.Packets, res.Cycles, res.AccessCycles, res.Counters), nil
			},
			want: "packets=8000 cycles=7650362 access=6677082 Counters{Cycles:0x74bc3a, Instructions:0x1ff338, Reads:0x200f8, Writes:0x5dc0, L1Hits:0xdb53, L1Misses:0x18365, L2Hits:0xe65b, L2Misses:0x9d0a, LLCHits:0x3eda, LLCMisses:0x5e30, PrefetchIssued:0x0, PrefetchDropped:0x0, PrefetchRedundant:0x0, PrefetchUseful:0x0, PrefetchLate:0x0, StallCycles:0x62750e, TaskSwitches:0x0}",
		},
		{
			name: "upf-il16",
			run: func(o Options) (string, error) {
				as, prog, src, err := buildUPF(upfSessions, 16, 64, o.Seed)
				if err != nil {
					return "", err
				}
				res, err := runIL(o, as, prog, src, 16, warm, window)
				if err != nil {
					return "", err
				}
				return fingerprint(res.Packets, res.Cycles, res.AccessCycles, res.Counters), nil
			},
			want: "packets=8000 cycles=4611199 access=737147 Counters{Cycles:0x465c7f, Instructions:0x4a8f3e, Reads:0x200f8, Writes:0x5dc0, L1Hits:0x25e17, L1Misses:0xa1, L2Hits:0x10, L2Misses:0x91, LLCHits:0x90, LLCMisses:0x1, PrefetchIssued:0x1a3c2, PrefetchDropped:0x2, PrefetchRedundant:0x35a, PrefetchUseful:0x19963, PrefetchLate:0xa5a, StallCycles:0x1c71f, TaskSwitches:0x369be}",
		},
	}
}

func TestGoldenCounters(t *testing.T) {
	o := Options{Quick: true, Seed: 42}
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.run(o)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("simulated counters drifted from the seed engine\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// countTracer consumes every trace event, proving emission actually
// happened without perturbing anything.
type countTracer struct {
	events uint64
	stall  uint64
}

func (c *countTracer) Event(ev sim.TraceEvent) {
	c.events++
	if ev.Kind == sim.TraceStall {
		c.stall += ev.A
	}
}

// TestGoldenCountersTraced pins counter-neutrality of the tracing
// subsystem: with a tracer attached (which routes every hot path
// through its traced twin — stepTraced, rx/done emission, stall
// emission), every golden case must still fingerprint to the exact
// same pinned string, while the tracer demonstrably observes events.
func TestGoldenCountersTraced(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			ct := &countTracer{}
			o := Options{Quick: true, Seed: 42, Tracer: ct}
			got, err := tc.run(o)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("tracing perturbed the simulation\n got: %s\nwant: %s", got, tc.want)
			}
			if ct.events == 0 {
				t.Fatal("tracer attached but no events observed")
			}
			// The stall events must decompose the counter exactly; the
			// window's StallCycles is a hex field of the fingerprint, but
			// the tracer saw warmup too, so only sanity-check non-zero
			// coverage here (exact equality is pinned in internal/obs).
			if ct.stall == 0 {
				t.Fatal("no stall cycles attributed")
			}
		})
	}
}

// TestGoldenRepeatable guards against hidden global state: the same
// scenario built twice from the same seed must fingerprint identically
// within one process.
func TestGoldenRepeatable(t *testing.T) {
	o := Options{Quick: true, Seed: 42}
	tc := goldenCases()[1] // nat-il16
	a, err := tc.run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tc.run(o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different counters:\n first: %s\nsecond: %s", a, b)
	}
}
