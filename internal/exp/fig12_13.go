package exp

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/director"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/amf"
	"github.com/gunfu-nfv/gunfu/internal/nf/fw"
	"github.com/gunfu-nfv/gunfu/internal/nf/lb"
	"github.com/gunfu-nfv/gunfu/internal/nf/monitor"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/stats"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// Fig12 reproduces Figure 12: the granularly decomposed AMF with 16
// interleaved NFTasks against the RTC baseline, per registration
// message type, plus the extra gain from data-packing the UE context
// (packing each handler's co-accessed fields into adjacent lines).
func Fig12(o Options) ([]*stats.Table, error) {
	ues := o.pick(1<<17, 1<<12)
	warm := o.pickU(10000, 1000)
	window := o.pickU(60000, 5000)

	packed, err := compile.PackLayout(amf.Fields(), amf.AccessGroups())
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		"Figure 12 — AMF registration messages: RTC vs 16 interleaved NFTasks vs +data packing (UEs=2^17)",
		"message", "rtc-kmsg/s", "il16-kmsg/s", "il16-speedup", "dp-kmsg/s", "dp-gain", "rtc-llcm/msg", "il16-llcm/msg")
	// Message type 0 runs the full interleaved call flow — the
	// cycle-weighted aggregate, where the state-heaviest messages
	// dominate and data packing shows its net effect.
	rows := make([][]string, traffic.NumAMFMessages+1)
	if err := o.forEach(len(rows), func(i int) error {
		m := uint8(i)
		as, prog, src, _, err := buildAMF(ues, m, o.Seed, nil)
		if err != nil {
			return err
		}
		rtcRes, err := runRTC(o, as, prog, src, warm, window)
		if err != nil {
			return err
		}
		as2, prog2, src2, _, err := buildAMF(ues, m, o.Seed, nil)
		if err != nil {
			return err
		}
		ilRes, err := runIL(o, as2, prog2, src2, 16, warm, window)
		if err != nil {
			return err
		}
		as3, prog3, src3, _, err := buildAMF(ues, m, o.Seed, packed)
		if err != nil {
			return err
		}
		dpRes, err := runIL(o, as3, prog3, src3, 16, warm, window)
		if err != nil {
			return err
		}
		_, _, rtcLLC := rtcRes.MissesPerPacket()
		_, _, ilLLC := ilRes.MissesPerPacket()
		label := traffic.AMFMessageName(m)
		if m == 0 {
			label = "FullCallFlow"
		}
		rows[i] = []string{
			label,
			stats.F(rtcRes.Mpps()*1000, 1),
			stats.F(ilRes.Mpps()*1000, 1),
			stats.F(ilRes.Mpps()/rtcRes.Mpps(), 2),
			stats.F(dpRes.Mpps()*1000, 1),
			stats.F(dpRes.Mpps()/ilRes.Mpps(), 2),
			stats.F(rtcLLC, 2),
			stats.F(ilLLC, 2),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*stats.Table{t}, nil
}

// sfcSetup builds one SFC configuration: chain of the given length,
// optionally over fused (data-packed) per-flow pools, compiled with the
// given options, pre-populated, with its generator.
func sfcSetup(length, flows int, fused bool, opts compile.SFCOptions, seed int64) (*mem.AddressSpace, *model.Program, rt.Source, error) {
	as := mem.NewAddressSpace()
	var chain []compile.Chainable
	var err error
	if fused {
		chain, err = buildFusedChain(as, length, flows)
	} else {
		chain, err = director.BuildChain(as, length, flows)
	}
	if err != nil {
		return nil, nil, nil, err
	}

	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: flows, PacketBytes: 64, Order: traffic.OrderUniform, Seed: seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	tuples := make([]pkt.FiveTuple, flows)
	for i := range tuples {
		tuples[i] = g.FlowTuple(i)
	}
	if err := compile.PopulateFlows(chain, tuples); err != nil {
		return nil, nil, nil, err
	}
	prog, err := compile.BuildSFC(fmt.Sprintf("sfc%d", length), chain, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	return as, prog, g, nil
}

// buildFusedChain constructs the paper's SFC with every NF's per-flow
// record placed in one fused, co-access-packed pool — the DP-for-SFC
// optimization.
func buildFusedChain(as *mem.AddressSpace, length, flows int) ([]compile.Chainable, error) {
	if length < 2 || length > 6 {
		return nil, fmt.Errorf("exp: SFC length %d outside [2,6]", length)
	}
	members := []compile.FuseMember{
		{Name: "lb", Fields: lb.FlowFields(), Hot: lb.HotFields()},
		{Name: "nat", Fields: nat.FlowFields(), Hot: nat.HotFields()},
		{Name: "nm", Fields: monitor.FlowFields(), Hot: monitor.HotFields()},
	}
	for i := 4; i <= length; i++ {
		members = append(members, compile.FuseMember{
			Name: fmt.Sprintf("fw%d", i-3), Fields: fw.FlowFields(), Hot: fw.HotFields(),
		})
	}
	if length < len(members) {
		members = members[:length]
	}
	states, err := compile.FuseStates(as, "sfc", members, flows)
	if err != nil {
		return nil, err
	}
	l, err := lb.New(as, lb.Config{MaxFlows: flows, States: states["lb"]})
	if err != nil {
		return nil, err
	}
	n, err := nat.New(as, nat.Config{MaxFlows: flows, States: states["nat"]})
	if err != nil {
		return nil, err
	}
	chain := []compile.Chainable{l, n}
	if length >= 3 {
		m, err := monitor.New(as, monitor.Config{MaxFlows: flows, States: states["nm"]})
		if err != nil {
			return nil, err
		}
		chain = append(chain, m)
	}
	for i := 4; i <= length; i++ {
		name := fmt.Sprintf("fw%d", i-3)
		f, err := fw.New(as, fw.Config{
			Name: name, MaxFlows: flows,
			Policy: fw.DefaultPolicy(8 * (i - 2)),
			States: states[name],
		})
		if err != nil {
			return nil, err
		}
		chain = append(chain, f)
	}
	return chain, nil
}

// Fig13 reproduces Figure 13: SFCs of length 2–6 under RTC, the
// interleaved model, +data packing (fused per-flow pools), and
// +redundant matching removal — the full compiler-optimization ladder,
// with MR's ~6x at length 6 coming from eliminating five of the six
// pointer-chasing classifier walks.
func Fig13(o Options) ([]*stats.Table, error) {
	flows := o.pick(1<<17, 1<<12)
	warm := o.pickU(15000, 1500)
	window := o.pickU(80000, 6000)

	lengths := []int{2, 3, 4, 5, 6}
	if o.Quick {
		lengths = []int{2, 4, 6}
	}

	t := stats.NewTable(
		"Figure 13(a,b) — SFC throughput by chain length (130K flows, 64B, 1 core, 16 NFTasks)",
		"len", "rtc-gbps", "il16-gbps", "il+dp-gbps", "il+dp+mr-gbps", "mr-speedup-vs-rtc")
	t2 := stats.NewTable(
		"Figure 13(c) — SFC IPC by configuration",
		"len", "rtc-ipc", "il16-ipc", "il+dp-ipc", "il+dp+mr-ipc")

	rows := make([][]string, len(lengths))
	rows2 := make([][]string, len(lengths))
	if err := o.forEach(len(lengths), func(i int) error {
		length := lengths[i]
		// RTC baseline (plain chain, no optimizations).
		as, prog, src, err := sfcSetup(length, flows, false, compile.SFCOptions{}, o.Seed)
		if err != nil {
			return err
		}
		rtcRes, err := runRTC(o, as, prog, src, warm, window)
		if err != nil {
			return err
		}
		// Interleaved.
		as, prog, src, err = sfcSetup(length, flows, false, compile.SFCOptions{}, o.Seed)
		if err != nil {
			return err
		}
		ilRes, err := runIL(o, as, prog, src, 16, warm, window)
		if err != nil {
			return err
		}
		// Interleaved + data packing (fused pools).
		as, prog, src, err = sfcSetup(length, flows, true, compile.SFCOptions{}, o.Seed)
		if err != nil {
			return err
		}
		dpRes, err := runIL(o, as, prog, src, 16, warm, window)
		if err != nil {
			return err
		}
		// Interleaved + DP + redundant matching removal.
		as, prog, src, err = sfcSetup(length, flows, true, compile.SFCOptions{RemoveRedundantMatching: true}, o.Seed)
		if err != nil {
			return err
		}
		mrRes, err := runIL(o, as, prog, src, 16, warm, window)
		if err != nil {
			return err
		}

		rows[i] = []string{
			stats.I(length),
			stats.F(rtcRes.Gbps(), 2),
			stats.F(ilRes.Gbps(), 2),
			stats.F(dpRes.Gbps(), 2),
			stats.F(mrRes.Gbps(), 2),
			stats.F(mrRes.Gbps()/rtcRes.Gbps(), 2),
		}
		rows2[i] = []string{
			stats.I(length),
			stats.F(rtcRes.Counters.IPC(), 2),
			stats.F(ilRes.Counters.IPC(), 2),
			stats.F(dpRes.Counters.IPC(), 2),
			stats.F(mrRes.Counters.IPC(), 2),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for i := range lengths {
		t.AddRow(rows[i]...)
		t2.AddRow(rows2[i]...)
	}
	return []*stats.Table{t, t2}, nil
}
