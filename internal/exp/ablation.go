package exp

import (
	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// Ablations isolates the design choices DESIGN.md calls out, beyond
// the paper's own figures: the prefetching step of Algorithm 1, the
// P-state resident check, the MSHR budget, and the NFTask switch cost.
// All run the 130K-flow NAT at 16 interleaved NFTasks.
func Ablations(o Options) ([]*stats.Table, error) {
	flows := o.pick(1<<17, 1<<13)
	warm := o.pickU(20000, 2000)
	window := o.pickU(100000, 8000)

	run := func(simCfg sim.Config, mutate func(*rt.Config)) (rt.Result, error) {
		as, prog, src, err := buildNAT(flows, 64, o.Seed)
		if err != nil {
			return rt.Result{}, err
		}
		core, err := sim.NewCore(simCfg)
		if err != nil {
			return rt.Result{}, err
		}
		cfg := rt.DefaultConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		w, err := rt.NewWorker(core, as, prog, cfg)
		if err != nil {
			return rt.Result{}, err
		}
		if _, err := w.Run(src, warm); err != nil {
			return rt.Result{}, err
		}
		return w.Run(src, window)
	}

	// (a) Scheduler feature ladder.
	t1 := stats.NewTable(
		"Ablation A — scheduler features (NAT, 130K flows, 16 NFTasks)",
		"config", "gbps", "cyc/pkt", "l1hit", "pf-useful/pkt")
	features := []struct {
		name   string
		mutate func(*rt.Config)
	}{
		{"interleave only (no prefetch)", func(c *rt.Config) { c.Prefetch = false }},
		{"prefetch, no resident check", func(c *rt.Config) { c.ResidentCheck = false }},
		{"full (prefetch + P-state check)", nil},
	}
	rows1 := make([][]string, len(features))
	if err := o.forEach(len(features), func(i int) error {
		f := features[i]
		res, err := run(o.simCfg(), f.mutate)
		if err != nil {
			return err
		}
		rows1[i] = []string{f.name, stats.F(res.Gbps(), 2), stats.F(res.CyclesPerPacket(), 1),
			stats.Pct(res.Counters.L1HitRate()),
			stats.F(float64(res.Counters.PrefetchUseful)/float64(res.Packets), 2)}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows1 {
		t1.AddRow(row...)
	}

	// (b) MSHR budget: memory-level parallelism available to the
	// prefetcher caps how many streams' fills can be in flight.
	t2 := stats.NewTable(
		"Ablation B — MSHR budget (NAT, 130K flows, 16 NFTasks)",
		"mshrs", "gbps", "pf-dropped/pkt")
	mshrSweep := []int{2, 4, 8, 12, 16, 32}
	rows2 := make([][]string, len(mshrSweep))
	if err := o.forEach(len(mshrSweep), func(i int) error {
		simCfg := o.simCfg()
		simCfg.MSHRs = mshrSweep[i]
		res, err := run(simCfg, nil)
		if err != nil {
			return err
		}
		rows2[i] = []string{stats.I(mshrSweep[i]), stats.F(res.Gbps(), 2),
			stats.F(float64(res.Counters.PrefetchDropped)/float64(res.Packets), 2)}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows2 {
		t2.AddRow(row...)
	}

	// (b2) Redundant prefetch removal on the length-4 SFC: PRR saves
	// prefetch-issue instructions but gives up re-prefetching lines the
	// interleaving pressure may have evicted — a wash-to-slight-loss in
	// this model, documented in EXPERIMENTS.md.
	t2b := stats.NewTable(
		"Ablation B2 — redundant prefetch removal (SFC-4, 16 NFTasks)",
		"config", "gbps", "pf-issued/pkt")
	prrSweep := []bool{false, true}
	rows2b := make([][]string, len(prrSweep))
	if err := o.forEach(len(prrSweep), func(i int) error {
		prr := prrSweep[i]
		sfcFlows := o.pick(1<<15, 1<<12)
		as, prog, src, err := sfcSetup(4, sfcFlows, false, prrOptions(prr), o.Seed)
		if err != nil {
			return err
		}
		res, err := runIL(o, as, prog, src, 16, warm, window)
		if err != nil {
			return err
		}
		name := "PRR off"
		if prr {
			name = "PRR on"
		}
		rows2b[i] = []string{name, stats.F(res.Gbps(), 2),
			stats.F(float64(res.Counters.PrefetchIssued)/float64(res.Packets), 2)}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows2b {
		t2b.AddRow(row...)
	}

	// (c) NFTask switch cost: how light the runtime must be for
	// interleaving to pay (Figure 9's motivation).
	t3 := stats.NewTable(
		"Ablation C — NFTask switch cost (NAT, 130K flows, 16 NFTasks)",
		"switch-cycles", "gbps", "cyc/pkt")
	costSweep := []uint64{4, 12, 24, 48, 96}
	rows3 := make([][]string, len(costSweep))
	if err := o.forEach(len(costSweep), func(i int) error {
		simCfg := o.simCfg()
		simCfg.SwitchCost = costSweep[i]
		res, err := run(simCfg, nil)
		if err != nil {
			return err
		}
		rows3[i] = []string{stats.U(costSweep[i]), stats.F(res.Gbps(), 2), stats.F(res.CyclesPerPacket(), 1)}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows3 {
		t3.AddRow(row...)
	}

	// (d) Interleave scheduler mode: the round-robin loop re-pays a
	// probe lap per pending visit, the fill-clock wakeup loop parks the
	// task until its fills land. Simulated results legitimately differ
	// (the schedule changes which lines are hot); the packet-level
	// results are pinned equal by the rt differential twins.
	t4 := stats.NewTable(
		"Ablation D — interleave scheduler (NAT, 130K flows, 16 NFTasks)",
		"scheduler", "gbps", "cyc/pkt", "switch/pkt", "stall-cyc/pkt", "parks/pkt")
	schedSweep := []string{rt.SchedulerRR, rt.SchedulerWakeup}
	rows4 := make([][]string, len(schedSweep))
	if err := o.forEach(len(schedSweep), func(i int) error {
		sched := schedSweep[i]
		res, err := run(o.simCfg(), func(c *rt.Config) { c.Scheduler = sched })
		if err != nil {
			return err
		}
		n := float64(res.Packets)
		rows4[i] = []string{sched, stats.F(res.Gbps(), 2), stats.F(res.CyclesPerPacket(), 1),
			stats.F(float64(res.Counters.TaskSwitches)/n, 2),
			stats.F(float64(res.Counters.StallCycles)/n, 1),
			stats.F(float64(res.Parks)/n, 2)}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows4 {
		t4.AddRow(row...)
	}

	return []*stats.Table{t1, t2, t2b, t3, t4}, nil
}

func prrOptions(on bool) compile.SFCOptions {
	return compile.SFCOptions{RemoveRedundantPrefetches: on}
}
