package exp

import (
	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// Ablations isolates the design choices DESIGN.md calls out, beyond
// the paper's own figures: the prefetching step of Algorithm 1, the
// P-state resident check, the MSHR budget, and the NFTask switch cost.
// All run the 130K-flow NAT at 16 interleaved NFTasks.
func Ablations(o Options) ([]*stats.Table, error) {
	flows := o.pick(1<<17, 1<<13)
	warm := o.pickU(20000, 2000)
	window := o.pickU(100000, 8000)

	run := func(simCfg sim.Config, mutate func(*rt.Config)) (rt.Result, error) {
		as, prog, src, err := buildNAT(flows, 64, o.Seed)
		if err != nil {
			return rt.Result{}, err
		}
		core, err := sim.NewCore(simCfg)
		if err != nil {
			return rt.Result{}, err
		}
		cfg := rt.DefaultConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		w, err := rt.NewWorker(core, as, prog, cfg)
		if err != nil {
			return rt.Result{}, err
		}
		if _, err := w.Run(src, warm); err != nil {
			return rt.Result{}, err
		}
		return w.Run(src, window)
	}

	// (a) Scheduler feature ladder.
	t1 := stats.NewTable(
		"Ablation A — scheduler features (NAT, 130K flows, 16 NFTasks)",
		"config", "gbps", "cyc/pkt", "l1hit", "pf-useful/pkt")
	features := []struct {
		name   string
		mutate func(*rt.Config)
	}{
		{"interleave only (no prefetch)", func(c *rt.Config) { c.Prefetch = false }},
		{"prefetch, no resident check", func(c *rt.Config) { c.ResidentCheck = false }},
		{"full (prefetch + P-state check)", nil},
	}
	for _, f := range features {
		res, err := run(o.simCfg(), f.mutate)
		if err != nil {
			return nil, err
		}
		t1.AddRow(f.name, stats.F(res.Gbps(), 2), stats.F(res.CyclesPerPacket(), 1),
			stats.Pct(res.Counters.L1HitRate()),
			stats.F(float64(res.Counters.PrefetchUseful)/float64(res.Packets), 2))
	}

	// (b) MSHR budget: memory-level parallelism available to the
	// prefetcher caps how many streams' fills can be in flight.
	t2 := stats.NewTable(
		"Ablation B — MSHR budget (NAT, 130K flows, 16 NFTasks)",
		"mshrs", "gbps", "pf-dropped/pkt")
	for _, mshrs := range []int{2, 4, 8, 12, 16, 32} {
		simCfg := o.simCfg()
		simCfg.MSHRs = mshrs
		res, err := run(simCfg, nil)
		if err != nil {
			return nil, err
		}
		t2.AddRow(stats.I(mshrs), stats.F(res.Gbps(), 2),
			stats.F(float64(res.Counters.PrefetchDropped)/float64(res.Packets), 2))
	}

	// (b2) Redundant prefetch removal on the length-4 SFC: PRR saves
	// prefetch-issue instructions but gives up re-prefetching lines the
	// interleaving pressure may have evicted — a wash-to-slight-loss in
	// this model, documented in EXPERIMENTS.md.
	t2b := stats.NewTable(
		"Ablation B2 — redundant prefetch removal (SFC-4, 16 NFTasks)",
		"config", "gbps", "pf-issued/pkt")
	for _, prr := range []bool{false, true} {
		sfcFlows := o.pick(1<<15, 1<<12)
		as, prog, src, err := sfcSetup(4, sfcFlows, false, prrOptions(prr), o.Seed)
		if err != nil {
			return nil, err
		}
		res, err := runIL(o, as, prog, src, 16, warm, window)
		if err != nil {
			return nil, err
		}
		name := "PRR off"
		if prr {
			name = "PRR on"
		}
		t2b.AddRow(name, stats.F(res.Gbps(), 2),
			stats.F(float64(res.Counters.PrefetchIssued)/float64(res.Packets), 2))
	}

	// (c) NFTask switch cost: how light the runtime must be for
	// interleaving to pay (Figure 9's motivation).
	t3 := stats.NewTable(
		"Ablation C — NFTask switch cost (NAT, 130K flows, 16 NFTasks)",
		"switch-cycles", "gbps", "cyc/pkt")
	for _, cost := range []uint64{4, 12, 24, 48, 96} {
		simCfg := o.simCfg()
		simCfg.SwitchCost = cost
		res, err := run(simCfg, nil)
		if err != nil {
			return nil, err
		}
		t3.AddRow(stats.U(cost), stats.F(res.Gbps(), 2), stats.F(res.CyclesPerPacket(), 1))
	}

	return []*stats.Table{t1, t2, t2b, t3}, nil
}

func prrOptions(on bool) compile.SFCOptions {
	return compile.SFCOptions{RemoveRedundantPrefetches: on}
}
