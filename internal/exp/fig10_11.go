package exp

import (
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/stats"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// taskSweep is the interleaving-depth axis of Figures 10 and 11.
var taskSweep = []int{1, 2, 4, 8, 16, 32, 64}

// Fig10 reproduces Figure 10: single-core UPF downlink under the
// interleaved model — throughput across NFTask counts and rule counts,
// and the L1/L2/IPC micro-architecture story at 16 NFTasks.
func Fig10(o Options) ([]*stats.Table, error) {
	sessions := o.pick(1<<15, 1<<11)
	warm := o.pickU(20000, 2000)
	window := o.pickU(120000, 8000)

	// (a) Throughput vs interleaved NFTasks, PDRs fixed at 16. Point 0
	// is the RTC baseline; speedups are computed once all points are in.
	t1 := stats.NewTable(
		"Figure 10(a) — UPF downlink throughput vs interleaved NFTasks (PDRs=16, 64B, 1 core)",
		"config", "gbps", "mpps", "cyc/pkt", "speedup-vs-rtc")
	results := make([]rt.Result, 1+len(taskSweep))
	if err := o.forEach(len(results), func(i int) error {
		as, prog, src, err := buildUPF(sessions, 16, 64, o.Seed)
		if err != nil {
			return err
		}
		if i == 0 {
			results[0], err = runRTC(o, as, prog, src, warm, window)
		} else {
			results[i], err = runIL(o, as, prog, src, taskSweep[i-1], warm, window)
		}
		return err
	}); err != nil {
		return nil, err
	}
	base := results[0]
	t1.AddRow("RTC", stats.F(base.Gbps(), 2), stats.F(base.Mpps(), 2),
		stats.F(base.CyclesPerPacket(), 1), "1.00")
	for i, tasks := range taskSweep {
		res := results[i+1]
		t1.AddRow("IL-"+stats.I(tasks), stats.F(res.Gbps(), 2), stats.F(res.Mpps(), 2),
			stats.F(res.CyclesPerPacket(), 1), stats.F(res.Gbps()/base.Gbps(), 2))
	}

	// (b,c,d) Micro-architecture metrics vs rule count, RTC vs IL-16.
	pdrSweep := []int{2, 8, 16, 32, 64}
	if o.Quick {
		pdrSweep = []int{2, 16, 64}
	}
	t2 := stats.NewTable(
		"Figure 10(b,c,d) — UPF cache utilization and IPC vs PDRs (16 NFTasks vs RTC)",
		"pdrs", "rtc-l1hit", "il16-l1hit", "rtc-l2hit", "il16-l2hit", "rtc-ipc", "il16-ipc")
	rows := make([][]string, len(pdrSweep))
	if err := o.forEach(len(pdrSweep), func(i int) error {
		pdrs := pdrSweep[i]
		as, prog, src, err := buildUPF(sessions, pdrs, 64, o.Seed)
		if err != nil {
			return err
		}
		rtcRes, err := runRTC(o, as, prog, src, warm, window)
		if err != nil {
			return err
		}
		as2, prog2, src2, err := buildUPF(sessions, pdrs, 64, o.Seed)
		if err != nil {
			return err
		}
		ilRes, err := runIL(o, as2, prog2, src2, 16, warm, window)
		if err != nil {
			return err
		}
		rows[i] = []string{
			stats.I(pdrs),
			stats.Pct(rtcRes.Counters.L1HitRate()),
			stats.Pct(ilRes.Counters.L1HitRate()),
			stats.Pct(rtcRes.Counters.L2HitRate()),
			stats.Pct(ilRes.Counters.L2HitRate()),
			stats.F(rtcRes.Counters.IPC(), 2),
			stats.F(ilRes.Counters.IPC(), 2),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows {
		t2.AddRow(row...)
	}
	return []*stats.Table{t1, t2}, nil
}

// buildNAT assembles a pre-populated NAT program plus its workload.
func buildNAT(flows, packetBytes int, seed int64) (*mem.AddressSpace, *model.Program, rt.Source, error) {
	as := mem.NewAddressSpace()
	n, err := nat.New(as, nat.Config{MaxFlows: flows})
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: flows, PacketBytes: packetBytes, Order: traffic.OrderUniform, Seed: seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	for i := 0; i < flows; i++ {
		if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			return nil, nil, nil, err
		}
	}
	prog, err := n.Program()
	if err != nil {
		return nil, nil, nil, err
	}
	return as, prog, g, nil
}

// Fig11 reproduces Figure 11: the NAT under granular decomposition —
// one NFTask is slower than RTC (scheduler overhead with nothing to
// overlap), the benefit appears from 4 streams, peaks near 16, and
// degrades at 64 when prefetched lines start being evicted before use.
func Fig11(o Options) ([]*stats.Table, error) {
	flows := o.pick(1<<17, 1<<13)
	warm := o.pickU(20000, 2000)
	window := o.pickU(150000, 10000)

	t := stats.NewTable(
		"Figure 11 — NAT throughput and cache utilization vs interleaved NFTasks (130K flows, 64B, 1 core)",
		"config", "gbps", "mpps", "l1hit", "l2hit", "ipc", "speedup-vs-rtc")

	results := make([]rt.Result, 1+len(taskSweep))
	if err := o.forEach(len(results), func(i int) error {
		as, prog, src, err := buildNAT(flows, 64, o.Seed)
		if err != nil {
			return err
		}
		if i == 0 {
			results[0], err = runRTC(o, as, prog, src, warm, window)
		} else {
			results[i], err = runIL(o, as, prog, src, taskSweep[i-1], warm, window)
		}
		return err
	}); err != nil {
		return nil, err
	}
	base := results[0]
	t.AddRow("RTC", stats.F(base.Gbps(), 2), stats.F(base.Mpps(), 2),
		stats.Pct(base.Counters.L1HitRate()), stats.Pct(base.Counters.L2HitRate()),
		stats.F(base.Counters.IPC(), 2), "1.00")
	for i, tasks := range taskSweep {
		res := results[i+1]
		t.AddRow("IL-"+stats.I(tasks), stats.F(res.Gbps(), 2), stats.F(res.Mpps(), 2),
			stats.Pct(res.Counters.L1HitRate()), stats.Pct(res.Counters.L2HitRate()),
			stats.F(res.Counters.IPC(), 2), stats.F(res.Gbps()/base.Gbps(), 2))
	}
	return []*stats.Table{t}, nil
}
