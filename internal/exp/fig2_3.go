package exp

import (
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/amf"
	"github.com/gunfu-nfv/gunfu/internal/nf/upf"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/stats"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// buildUPF assembles a UPF downlink program plus its MGW workload.
func buildUPF(sessions, pdrs, packetBytes int, seed int64) (*mem.AddressSpace, *model.Program, rt.Source, error) {
	as := mem.NewAddressSpace()
	u, err := upf.New(as, upf.Config{Sessions: sessions, PDRsPerSession: pdrs})
	if err != nil {
		return nil, nil, nil, err
	}
	prog, err := u.DownlinkProgram()
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := traffic.NewMGWGen(traffic.MGWConfig{
		Sessions: sessions, PDRs: pdrs, PacketBytes: packetBytes, Seed: seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return as, prog, g, nil
}

// Fig2 reproduces EXP A (Figure 2): the per-packet RTC UPF degrading as
// concurrency grows — more PFCP sessions and more PDRs mean more
// matching state, colder caches, and a higher per-packet cost.
func Fig2(o Options) ([]*stats.Table, error) {
	warm := o.pickU(20000, 2000)
	window := o.pickU(120000, 8000)

	sessionsSweep := []int{1 << 10, 1 << 13, 1 << 15, 1 << 17}
	if o.Quick {
		sessionsSweep = []int{1 << 9, 1 << 11, 1 << 13}
	}
	t1 := stats.NewTable(
		"Figure 2(a) — RTC UPF vs PFCP session count (PDRs=16, 64B packets, 1 core)",
		"sessions", "gbps", "mpps", "cyc/pkt", "l1miss/pkt", "llcmiss/pkt", "state-access%")
	rows1 := make([][]string, len(sessionsSweep))
	if err := o.forEach(len(sessionsSweep), func(i int) error {
		sessions := sessionsSweep[i]
		as, prog, src, err := buildUPF(sessions, 16, 64, o.Seed)
		if err != nil {
			return err
		}
		res, err := runRTC(o, as, prog, src, warm, window)
		if err != nil {
			return err
		}
		l1, _, llc := res.MissesPerPacket()
		rows1[i] = []string{
			stats.I(sessions),
			stats.F(res.Gbps(), 2),
			stats.F(res.Mpps(), 2),
			stats.F(res.CyclesPerPacket(), 1),
			stats.F(l1, 2),
			stats.F(llc, 2),
			stats.Pct(float64(res.AccessCycles) / float64(res.Cycles)),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows1 {
		t1.AddRow(row...)
	}

	pdrSweep := []int{2, 8, 16, 32, 64}
	if o.Quick {
		pdrSweep = []int{2, 16, 64}
	}
	fixedSessions := o.pick(1<<15, 1<<11)
	t2 := stats.NewTable(
		"Figure 2(b) — RTC UPF vs PDRs per session (sessions=2^15, 64B packets, 1 core)",
		"pdrs", "gbps", "mpps", "cyc/pkt", "l1miss/pkt", "llcmiss/pkt")
	rows2 := make([][]string, len(pdrSweep))
	if err := o.forEach(len(pdrSweep), func(i int) error {
		pdrs := pdrSweep[i]
		as, prog, src, err := buildUPF(fixedSessions, pdrs, 64, o.Seed)
		if err != nil {
			return err
		}
		res, err := runRTC(o, as, prog, src, warm, window)
		if err != nil {
			return err
		}
		l1, _, llc := res.MissesPerPacket()
		rows2[i] = []string{
			stats.I(pdrs),
			stats.F(res.Gbps(), 2),
			stats.F(res.Mpps(), 2),
			stats.F(res.CyclesPerPacket(), 1),
			stats.F(l1, 2),
			stats.F(llc, 2),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows2 {
		t2.AddRow(row...)
	}
	return []*stats.Table{t1, t2}, nil
}

// buildAMF assembles an AMF program plus a single-message workload.
func buildAMF(ues int, msg uint8, seed int64, layout *mem.Layout) (*mem.AddressSpace, *model.Program, rt.Source, *amf.AMF, error) {
	as := mem.NewAddressSpace()
	a, err := amf.New(as, amf.Config{MaxUEs: ues, Layout: layout})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	prog, err := a.Program()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	g, err := traffic.NewAMFGen(traffic.AMFConfig{UEs: ues, MsgType: msg, Seed: seed})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return as, prog, g, a, nil
}

// Fig3 reproduces EXP B (Figure 3): the state-complexity cost of the
// RTC AMF — per message type of the UE initial registration, the share
// of time in state access and the cache misses per message against a
// >20-cache-line UE context.
func Fig3(o Options) ([]*stats.Table, error) {
	ues := o.pick(1<<17, 1<<12)
	warm := o.pickU(10000, 1000)
	window := o.pickU(60000, 5000)

	t := stats.NewTable(
		"Figure 3 — RTC AMF state-intensive registration messages (UEs=2^17, 1 core)",
		"message", "kmsg/s", "cyc/msg", "state-access%", "l1miss/msg", "l2miss/msg", "llcmiss/msg")
	rows := make([][]string, traffic.NumAMFMessages)
	if err := o.forEach(traffic.NumAMFMessages, func(i int) error {
		m := uint8(i + 1)
		as, prog, src, _, err := buildAMF(ues, m, o.Seed, nil)
		if err != nil {
			return err
		}
		res, err := runRTC(o, as, prog, src, warm, window)
		if err != nil {
			return err
		}
		l1, l2, llc := res.MissesPerPacket()
		rows[i] = []string{
			traffic.AMFMessageName(m),
			stats.F(res.Mpps()*1000, 1),
			stats.F(res.CyclesPerPacket(), 1),
			stats.Pct(float64(res.AccessCycles) / float64(res.Cycles)),
			stats.F(l1, 2),
			stats.F(l2, 2),
			stats.F(llc, 2),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*stats.Table{t}, nil
}
