package exp

import (
	"bytes"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// TestGoldenCountersPooled replays every golden case on one shared core
// pool, twice — so from the second case onward each runs on a core
// dirtied and Reset by a *different* workload — and requires the exact
// pinned fingerprints. This is the sweep-level form of the sim
// package's reset-vs-fresh differential: core recycling must never
// move a counter.
func TestGoldenCountersPooled(t *testing.T) {
	o := Options{Quick: true, Seed: 42, pool: sim.NewCorePool(sim.DefaultConfig())}
	for round := 0; round < 2; round++ {
		for _, tc := range goldenCases() {
			got, err := tc.run(o)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, tc.name, err)
			}
			if got != tc.want {
				t.Errorf("round %d %s: pooled core drifted from the seed engine\n got: %s\nwant: %s", round, tc.name, got, tc.want)
			}
		}
	}
	if news, reuses := o.pool.Stats(); news != 1 || reuses == 0 {
		t.Fatalf("pool stats (news=%d, reuses=%d): sequential golden replay should reuse one core", news, reuses)
	}
}

// TestFig10PooledCoreReuse asserts the pooling claim for a whole figure
// sweep: a sequential quick fig10 run builds exactly one core and
// recycles it across every sweep point, and its tables are
// byte-identical to the unpooled run.
func TestFig10PooledCoreReuse(t *testing.T) {
	var unpooled, pooled bytes.Buffer
	if _, err := Fig10(Options{Quick: true, Seed: 42, Out: &unpooled}); err != nil {
		t.Fatal(err)
	}
	o := Options{Quick: true, Seed: 42, Out: &pooled, pool: sim.NewCorePool(sim.DefaultConfig())}
	if _, err := Fig10(o); err != nil {
		t.Fatal(err)
	}
	news, reuses := o.pool.Stats()
	if news != 1 {
		t.Fatalf("sequential pooled fig10 built %d cores, want 1 (reuses %d)", news, reuses)
	}
	if reuses == 0 {
		t.Fatal("pooled fig10 never recycled a core")
	}
	if !bytes.Equal(unpooled.Bytes(), pooled.Bytes()) {
		t.Errorf("pooled output differs from unpooled:\n--- unpooled ---\n%s\n--- pooled ---\n%s",
			unpooled.String(), pooled.String())
	}
}

// BenchmarkFig10Quick measures a full quick fig10 sweep with and
// without core pooling; the B/op column is the allocation the pool
// removes (BENCH_hotpath.json records the paired numbers).
func BenchmarkFig10Quick(b *testing.B) {
	run := func(b *testing.B, pool *sim.CorePool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Fig10(Options{Quick: true, Seed: 42, pool: pool}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unpooled", func(b *testing.B) { run(b, nil) })
	b.Run("pooled", func(b *testing.B) { run(b, sim.NewCorePool(sim.DefaultConfig())) })
}
