package exp

import (
	"time"

	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// Fig9 reproduces Figure 9(b): the context-switch rate of NFTasks
// against the kernel-thread-style alternative. NFTask switching is a
// pointer bump inside one execution stream; the heavyweight comparison
// on this platform is goroutine hand-off through a channel (the Go
// analogue of the paper's pthread switching, and already far cheaper
// than a real kernel thread switch — the measured gap is therefore a
// lower bound on the paper's).
//
// Both rates are measured in host wall-clock time, not simulated time.
func Fig9(o Options) ([]*stats.Table, error) {
	nfTaskRate, err := measureNFTaskSwitches(o)
	if err != nil {
		return nil, err
	}
	goroutineRate := measureGoroutineSwitches(o)

	t := stats.NewTable(
		"Figure 9 — context switches per second on one core (host time)",
		"mechanism", "switches/sec", "relative")
	t.AddRow("NFTask (GuNFu scheduler)", stats.F(nfTaskRate, 0), stats.F(nfTaskRate/goroutineRate, 1)+"x")
	t.AddRow("goroutine channel hand-off", stats.F(goroutineRate, 0), "1.0x")

	t2, err := schedSwitchTable(o)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{t, t2}, nil
}

// schedSwitchTable extends Figure 9 with simulated switch rates: the
// same NAT workload under the round-robin interleave loop and the
// fill-clock wakeup scheduler. Round-robin's switch count includes one
// switch per probe lap over a pending task; the wakeup scheduler parks
// instead, trading those laps for attributed wake-wait stalls.
func schedSwitchTable(o Options) (*stats.Table, error) {
	flows := o.pick(1<<17, 1<<13)
	warm := o.pickU(20000, 2000)
	window := o.pickU(100000, 8000)

	t := stats.NewTable(
		"Figure 9b+ — scheduler switch/stall rates (NAT, simulated)",
		"scheduler", "switch/pkt", "stall-cyc/pkt", "wake-wait/pkt", "parks/pkt")
	for _, sched := range []string{rt.SchedulerRR, rt.SchedulerWakeup} {
		as, prog, src, err := buildNAT(flows, 64, o.Seed)
		if err != nil {
			return nil, err
		}
		res, err := runILSched(o, as, prog, src, 16, sched, warm, window)
		if err != nil {
			return nil, err
		}
		n := float64(res.Packets)
		t.AddRow(sched,
			stats.F(float64(res.Counters.TaskSwitches)/n, 2),
			stats.F(float64(res.Counters.StallCycles)/n, 1),
			stats.F(float64(res.WakeStalls)/n, 3),
			stats.F(float64(res.Parks)/n, 2))
	}
	return t, nil
}

// measureNFTaskSwitches measures the raw NFTask switch mechanism: a
// round-robin pointer bump plus an indirect call through the action
// table into the task's context — what the scheduler does between two
// streams, with no packet work attached. (The paper's Figure 9
// likewise measures pure context switching, not packet processing.)
func measureNFTaskSwitches(o Options) (float64, error) {
	const tasks = 16
	switches := o.pick(30_000_000, 2_000_000)

	// Minimal action table + task ring, mirroring the runtime's
	// dispatch structure.
	type actionFn func(e *model.Exec) model.EventID
	table := [2]actionFn{
		func(e *model.Exec) model.EventID { e.Temp[0]++; return model.EvDone },
		func(e *model.Exec) model.EventID { e.Temp[1]++; return model.EvDone },
	}
	ring := make([]*model.Exec, tasks)
	for i := range ring {
		ring[i] = &model.Exec{CS: model.CSID(i % 2)}
	}

	start := time.Now()
	n := 0
	var sink model.EventID
	for i := 0; i < switches; i++ {
		t := ring[n]
		n = (n + 1) % tasks
		sink = table[t.CS](t)
	}
	elapsed := time.Since(start).Seconds()
	_ = sink
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(switches) / elapsed, nil
}

// measureGoroutineSwitches ping-pongs a token between two goroutines;
// each hand-off is two scheduler switches.
func measureGoroutineSwitches(o Options) float64 {
	rounds := o.pick(300000, 30000)
	ping := make(chan struct{})
	pong := make(chan struct{})
	done := make(chan struct{})
	go func() {
		for range ping {
			pong <- struct{}{}
		}
		close(done)
	}()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		ping <- struct{}{}
		<-pong
	}
	close(ping)
	<-done
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(2*rounds) / elapsed
}
