// Package exp contains the experiment harness: one runner per figure
// of the paper's evaluation (§II and §VII), each regenerating the
// figure's series as a text table, plus ablation studies over the
// design knobs DESIGN.md calls out.
//
// Runners come in two sizes: the full populations of the paper (the
// defaults) and a Quick mode with reduced populations for CI and
// development. The shapes — who wins, by what factor, where the curves
// turn — hold in both.
package exp

import (
	"fmt"
	"io"
	"sort"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks populations and windows for fast runs.
	Quick bool
	// Seed makes workloads deterministic.
	Seed int64
	// Out receives rendered tables; nil discards them.
	Out io.Writer
	// Sim overrides the simulated core configuration.
	Sim *sim.Config
}

func (o Options) simCfg() sim.Config {
	if o.Sim != nil {
		return *o.Sim
	}
	return sim.DefaultConfig()
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// pick returns full when !Quick, quick otherwise.
func (o Options) pick(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

func (o Options) pickU(full, quick uint64) uint64 {
	if o.Quick {
		return quick
	}
	return full
}

// Runner regenerates one figure.
type Runner func(o Options) ([]*stats.Table, error)

// Runners maps experiment ids to their runners.
func Runners() map[string]Runner {
	return map[string]Runner{
		"fig2":     Fig2,
		"fig3":     Fig3,
		"fig9":     Fig9,
		"fig10":    Fig10,
		"fig11":    Fig11,
		"fig12":    Fig12,
		"fig13":    Fig13,
		"fig14":    Fig14,
		"fig15":    Fig15,
		"ablation": Ablations,
	}
}

// Names returns the experiment ids in order.
func Names() []string {
	m := Runners()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id and renders its tables to o.Out.
func Run(name string, o Options) ([]*stats.Table, error) {
	r, ok := Runners()[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	tables, err := r(o)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", name, err)
	}
	for _, t := range tables {
		if err := t.Render(o.out()); err != nil {
			return nil, fmt.Errorf("exp: %s: render: %w", name, err)
		}
	}
	return tables, nil
}

// runRTC runs prog over src on a fresh core under run-to-completion.
func runRTC(o Options, as *mem.AddressSpace, prog *model.Program, src rt.Source, warmup, packets uint64) (rt.Result, error) {
	core, err := sim.NewCore(o.simCfg())
	if err != nil {
		return rt.Result{}, err
	}
	w, err := rtc.NewWorker(core, as, prog, rtc.DefaultConfig())
	if err != nil {
		return rt.Result{}, err
	}
	if warmup > 0 {
		if _, err := w.Run(src, warmup); err != nil {
			return rt.Result{}, err
		}
	}
	return w.Run(src, packets)
}

// runIL runs prog over src on a fresh core under the interleaved model
// with the given task count.
func runIL(o Options, as *mem.AddressSpace, prog *model.Program, src rt.Source, tasks int, warmup, packets uint64) (rt.Result, error) {
	core, err := sim.NewCore(o.simCfg())
	if err != nil {
		return rt.Result{}, err
	}
	cfg := rt.DefaultConfig()
	cfg.Tasks = tasks
	if cfg.Batch < 2*tasks {
		// Keep every NFTask occupied: the rx burst must cover the
		// interleaving depth or deep sweeps degenerate to Batch tasks.
		cfg.Batch = 2 * tasks
	}
	w, err := rt.NewWorker(core, as, prog, cfg)
	if err != nil {
		return rt.Result{}, err
	}
	if warmup > 0 {
		if _, err := w.Run(src, warmup); err != nil {
			return rt.Result{}, err
		}
	}
	return w.Run(src, packets)
}
