// Package exp contains the experiment harness: one runner per figure
// of the paper's evaluation (§II and §VII), each regenerating the
// figure's series as a text table, plus ablation studies over the
// design knobs DESIGN.md calls out.
//
// Runners come in two sizes: the full populations of the paper (the
// defaults) and a Quick mode with reduced populations for CI and
// development. The shapes — who wins, by what factor, where the curves
// turn — hold in both.
package exp

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks populations and windows for fast runs.
	Quick bool
	// Seed makes workloads deterministic.
	Seed int64
	// Out receives rendered tables; nil discards them.
	Out io.Writer
	// Sim overrides the simulated core configuration.
	Sim *sim.Config
	// Parallel is the number of sweep points a runner may execute
	// concurrently (host goroutines). Sweep points are share-nothing —
	// each builds its own core, address space and seeded generators —
	// so any Parallel value produces byte-identical tables; <=1 means
	// sequential. Fig9 measures host wall-clock and always runs
	// sequentially regardless.
	Parallel int
	// Tracer, when non-nil, is attached to every simulated core the run
	// creates. Tracing is observation-only — tables and counters are
	// byte-identical with or without it — but it serializes sweep
	// points' event streams into one consumer, so combine it with
	// Parallel <= 1 unless the tracer is concurrency-safe.
	Tracer sim.Tracer

	// pool recycles cores across sweep points (set by Run). A Reset
	// pooled core is observationally identical to a fresh one — the
	// sim package's reset-vs-fresh differential tests pin that — so
	// tables stay byte-identical while a figure run stops allocating a
	// megabyte-scale hierarchy per point. Runners invoked directly
	// (tests, external callers) see a nil pool and fall back to
	// per-point construction.
	pool *sim.CorePool
}

// acquireCore returns a core for one sweep point: pooled when the run
// has a pool, freshly built otherwise.
func (o Options) acquireCore() (*sim.Core, error) {
	if o.pool != nil {
		return o.pool.Get()
	}
	return sim.NewCore(o.simCfg())
}

// releaseCore returns a pooled core for reuse; without a pool the core
// is simply dropped, as the per-point runners always did.
func (o Options) releaseCore(c *sim.Core) {
	if o.pool != nil {
		o.pool.Put(c)
	}
}

func (o Options) simCfg() sim.Config {
	if o.Sim != nil {
		return *o.Sim
	}
	return sim.DefaultConfig()
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// pick returns full when !Quick, quick otherwise.
func (o Options) pick(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

func (o Options) pickU(full, quick uint64) uint64 {
	if o.Quick {
		return quick
	}
	return full
}

// forEach runs fn(i) for every i in [0, n): sequentially when
// o.Parallel <= 1, otherwise on min(Parallel, n) workers pulling
// indexes from a shared counter. fn must write its output into an
// index-addressed slot so callers can emit rows in sweep order; the
// lowest-index error (if any) is returned either way, keeping error
// selection independent of goroutine timing.
func (o Options) forEach(n int, fn func(i int) error) error {
	workers := o.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Runner regenerates one figure.
type Runner func(o Options) ([]*stats.Table, error)

// Runners maps experiment ids to their runners.
func Runners() map[string]Runner {
	return map[string]Runner{
		"fig2":     Fig2,
		"fig3":     Fig3,
		"fig9":     Fig9,
		"fig10":    Fig10,
		"fig11":    Fig11,
		"fig12":    Fig12,
		"fig13":    Fig13,
		"fig14":    Fig14,
		"fig15":    Fig15,
		"ablation": Ablations,
	}
}

// Names returns the experiment ids in order.
func Names() []string {
	m := Runners()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id and renders its tables to o.Out.
func Run(name string, o Options) ([]*stats.Table, error) {
	r, ok := Runners()[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	o.pool = sim.NewCorePool(o.simCfg())
	tables, err := r(o)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", name, err)
	}
	for _, t := range tables {
		if err := t.Render(o.out()); err != nil {
			return nil, fmt.Errorf("exp: %s: render: %w", name, err)
		}
	}
	return tables, nil
}

// runRTC runs prog over src on a reset core (pooled when the run has a
// pool) under run-to-completion.
func runRTC(o Options, as *mem.AddressSpace, prog *model.Program, src rt.Source, warmup, packets uint64) (rt.Result, error) {
	core, err := o.acquireCore()
	if err != nil {
		return rt.Result{}, err
	}
	defer o.releaseCore(core)
	if o.Tracer != nil {
		core.SetTracer(o.Tracer)
	}
	w, err := rtc.NewWorker(core, as, prog, rtc.DefaultConfig())
	if err != nil {
		return rt.Result{}, err
	}
	if warmup > 0 {
		if _, err := w.Run(src, warmup); err != nil {
			return rt.Result{}, err
		}
	}
	return w.Run(src, packets)
}

// runIL runs prog over src on a reset core (pooled when the run has a
// pool) under the interleaved model with the given task count.
func runIL(o Options, as *mem.AddressSpace, prog *model.Program, src rt.Source, tasks int, warmup, packets uint64) (rt.Result, error) {
	return runILSched(o, as, prog, src, tasks, rt.SchedulerRR, warmup, packets)
}

// runILSched is runIL with the interleave scheduler selectable — the
// scheduler ablation and the Fig9 switch-rate table use it for
// like-for-like rr/wakeup A/B runs on the same workload.
func runILSched(o Options, as *mem.AddressSpace, prog *model.Program, src rt.Source, tasks int, sched string, warmup, packets uint64) (rt.Result, error) {
	core, err := o.acquireCore()
	if err != nil {
		return rt.Result{}, err
	}
	defer o.releaseCore(core)
	if o.Tracer != nil {
		core.SetTracer(o.Tracer)
	}
	cfg := rt.DefaultConfig()
	cfg.Tasks = tasks
	cfg.Scheduler = sched
	if cfg.Batch < 2*tasks {
		// Keep every NFTask occupied: the rx burst must cover the
		// interleaving depth or deep sweeps degenerate to Batch tasks.
		cfg.Batch = 2 * tasks
	}
	w, err := rt.NewWorker(core, as, prog, cfg)
	if err != nil {
		return rt.Result{}, err
	}
	if warmup > 0 {
		if _, err := w.Run(src, warmup); err != nil {
			return rt.Result{}, err
		}
	}
	return w.Run(src, packets)
}
