package exp

import (
	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/director"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/upf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// LineRateGbps is the paper's NIC line rate (100 Gbps ConnectX-6).
const LineRateGbps = 100.0

// packetSizes is the size axis of Figures 14 and 15; 0 denotes the
// CAIDA-like IMIX trace.
var packetSizes = []int{64, 512, 1024, 1512, 0}

func sizeLabel(size int) string {
	if size == 0 {
		return "CAIDA"
	}
	return stats.I(size) + "B"
}

// capGbps caps reported throughput at line rate, as the NIC would.
func capGbps(v float64) string {
	if v >= LineRateGbps {
		return stats.F(LineRateGbps, 0) + "*"
	}
	return stats.F(v, 1)
}

// sfcSource builds a workload over a flow population for a packet size
// (0 = CAIDA), emitting only the [shardBase, shardBase+shardCount)
// index range (RSS steering; 0 count = all).
func sfcSource(flows, shardBase, shardCount, size int, seed int64) (rt.Source, []pkt.FiveTuple, error) {
	if size == 0 {
		g, err := traffic.NewCaidaGen(traffic.CaidaConfig{
			Flows: flows, Seed: seed, ShardBase: shardBase, ShardCount: shardCount,
		})
		if err != nil {
			return nil, nil, err
		}
		tuples := make([]pkt.FiveTuple, flows)
		for i := range tuples {
			tuples[i] = g.FlowTuple(i)
		}
		return g, tuples, nil
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: flows, PacketBytes: size, Order: traffic.OrderUniform, Seed: seed,
		ShardBase: shardBase, ShardCount: shardCount,
	})
	if err != nil {
		return nil, nil, err
	}
	tuples := make([]pkt.FiveTuple, flows)
	for i := range tuples {
		tuples[i] = g.FlowTuple(i)
	}
	return g, tuples, nil
}

// Fig14 reproduces Figure 14: the length-6 SFC (with MR, DP and PRR)
// scaling across cores for each packet size, 130K flows total, against
// the RTC (BESS-style) execution model on the same core count.
func Fig14(o Options) ([]*stats.Table, error) {
	totalFlows := o.pick(130000, 8192)
	perCore := o.pickU(60000, 4000)
	coreCounts := []int{1, 2, 4, 8, 12, 16}
	if o.Quick {
		coreCounts = []int{1, 2, 4}
	}

	// The (size × cores) grid flattens into one sweep so every cell can
	// run concurrently; cells are re-assembled into rows by index.
	t := stats.NewTable(
		"Figure 14 — SFC(6) multi-core scaling, GuNFu (IL-16 + DP + MR) aggregate Gbps ('*' = line rate)",
		append([]string{"size"}, coreLabels(coreCounts)...)...)
	cells := make([]string, len(packetSizes)*len(coreCounts))
	if err := o.forEach(len(cells), func(i int) error {
		size := packetSizes[i/len(coreCounts)]
		cores := coreCounts[i%len(coreCounts)]
		agg, err := runSFCCores(o, 6, totalFlows, size, cores, perCore, true)
		if err != nil {
			return err
		}
		cells[i] = capGbps(agg.Gbps())
		return nil
	}); err != nil {
		return nil, err
	}
	for si, size := range packetSizes {
		row := append([]string{sizeLabel(size)}, cells[si*len(coreCounts):(si+1)*len(coreCounts)]...)
		t.AddRow(row...)
	}

	// The comparison baseline is the *monolithic* RTC deployment the
	// paper measures (BESS-style): every core runs run-to-completion
	// over the full 130K-flow table, with RSS steering the traffic.
	cmpCores := 4
	if o.Quick {
		cmpCores = 2
	}
	t2 := stats.NewTable(
		"Figure 14 (comparison) — monolithic RTC (BESS-style) vs GuNFu, SFC(6), "+stats.I(cmpCores)+" cores",
		"size", "rtc-gbps", "gunfu-gbps")
	rows2 := make([][]string, len(packetSizes))
	if err := o.forEach(len(packetSizes), func(i int) error {
		size := packetSizes[i]
		rtcAgg, err := runSFCCores(o, 6, totalFlows, size, cmpCores, perCore, false)
		if err != nil {
			return err
		}
		ilAgg, err := runSFCCores(o, 6, totalFlows, size, cmpCores, perCore, true)
		if err != nil {
			return err
		}
		rows2[i] = []string{sizeLabel(size), capGbps(rtcAgg.Gbps()), capGbps(ilAgg.Gbps())}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows2 {
		t2.AddRow(row...)
	}
	return []*stats.Table{t, t2}, nil
}

func coreLabels(counts []int) []string {
	out := make([]string, len(counts))
	for i, c := range counts {
		out[i] = stats.I(c) + "c"
	}
	return out
}

// runSFCCores runs the SFC on `cores` cores. GuNFu (interleaved=true)
// deploys granularly decomposed, state-sharded instances: each core
// owns totalFlows/cores flows. The RTC comparator is the monolithic
// deployment the paper measures (BESS-style): every core runs
// run-to-completion over the full flow table, traffic split by RSS.
func runSFCCores(o Options, length, totalFlows, size, cores int, perCore uint64, interleaved bool) (rt.Result, error) {
	flowsPerCore := totalFlows / cores
	if flowsPerCore < 16 {
		flowsPerCore = 16
	}
	setups := make([]rt.CoreSetup, cores)
	for i := 0; i < cores; i++ {
		coreID := i
		setups[i] = rt.CoreSetup{NewWorker: func(core *sim.Core) (*rt.Worker, rt.Source, error) {
			seed := o.Seed + int64(coreID)*7919
			var as *mem.AddressSpace
			var prog *model.Program
			var src rt.Source
			var err error
			if interleaved {
				as, prog, src, err = sfcSetupSized(length, flowsPerCore, 0, 0, size, seed)
			} else {
				// The monolithic baseline runs the *plain* chain — no
				// fusing, no matching removal — since those are GuNFu
				// compiler features the compared platforms lack.
				as, prog, src, err = sfcSetupPlain(length, totalFlows, coreID*flowsPerCore, flowsPerCore, size, seed)
			}
			if err != nil {
				return nil, nil, err
			}
			cfg := rt.DefaultConfig()
			if !interleaved {
				// Emulate RTC with one task and prefetching disabled
				// (identical scheduling to the rtc package).
				cfg.Tasks = 1
				cfg.Prefetch = false
			}
			w, err := rt.NewWorker(core, as, prog, cfg)
			return w, src, err
		}}
	}
	eng, err := rt.NewEngine(o.simCfg(), setups)
	if err != nil {
		return rt.Result{}, err
	}
	results, err := eng.Run(perCore)
	if err != nil {
		return rt.Result{}, err
	}
	return rt.AggregateStrict(results)
}

// sfcSetupSized builds the fully optimized (fused DP + MR) SFC over a
// flow population with a packet-size axis (0 = CAIDA) and an optional
// traffic shard (shardCount = 0 means all flows).
func sfcSetupSized(length, flows, shardBase, shardCount, size int, seed int64) (*mem.AddressSpace, *model.Program, rt.Source, error) {
	src, tuples, err := sfcSource(flows, shardBase, shardCount, size, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	as := mem.NewAddressSpace()
	chain, err := buildFusedChain(as, length, flows)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := compile.PopulateFlows(chain, tuples); err != nil {
		return nil, nil, nil, err
	}
	prog, err := compile.BuildSFC("sfc", chain, compile.SFCOptions{RemoveRedundantMatching: true})
	if err != nil {
		return nil, nil, nil, err
	}
	return as, prog, src, nil
}

// sfcSetupPlain builds the unoptimized chain (per-NF pools and
// classifiers) over a flow population with a traffic shard — the
// monolithic RTC deployment's program.
func sfcSetupPlain(length, flows, shardBase, shardCount, size int, seed int64) (*mem.AddressSpace, *model.Program, rt.Source, error) {
	src, tuples, err := sfcSource(flows, shardBase, shardCount, size, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	as := mem.NewAddressSpace()
	chain, err := director.BuildChain(as, length, flows)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := compile.PopulateFlows(chain, tuples); err != nil {
		return nil, nil, nil, err
	}
	prog, err := compile.BuildSFC("sfc", chain, compile.SFCOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	return as, prog, src, nil
}

// Fig15 reproduces Figure 15: UPF downlink multi-core scaling with
// 130K PFCP sessions and 16 PDRs each, per packet size, against the
// RTC (L25GC-style) execution model on the same cores.
func Fig15(o Options) ([]*stats.Table, error) {
	totalSessions := o.pick(130000, 8192)
	perCore := o.pickU(60000, 4000)
	coreCounts := []int{1, 2, 4, 6, 8, 10, 12}
	if o.Quick {
		coreCounts = []int{1, 2, 4}
	}
	sizes := []int{512, 1024, 1512, 0}

	t := stats.NewTable(
		"Figure 15 — UPF multi-core scaling, GuNFu aggregate Gbps (130K sessions, 16 PDRs; '*' = line rate)",
		append([]string{"size"}, coreLabels(coreCounts)...)...)
	cells := make([]string, len(sizes)*len(coreCounts))
	if err := o.forEach(len(cells), func(i int) error {
		size := sizes[i/len(coreCounts)]
		cores := coreCounts[i%len(coreCounts)]
		agg, err := runUPFCores(o, totalSessions, size, cores, perCore, true)
		if err != nil {
			return err
		}
		cells[i] = capGbps(agg.Gbps())
		return nil
	}); err != nil {
		return nil, err
	}
	for si, size := range sizes {
		row := append([]string{sizeLabel(size)}, cells[si*len(coreCounts):(si+1)*len(coreCounts)]...)
		t.AddRow(row...)
	}

	// The comparison baseline is the monolithic RTC deployment
	// (L25GC-style): each core processes run-to-completion against the
	// full 130K-session state, traffic split by RSS.
	cmpCores := 4
	if o.Quick {
		cmpCores = 2
	}
	t2 := stats.NewTable(
		"Figure 15 (comparison) — monolithic RTC (L25GC-style) vs GuNFu, 16 PDRs, "+stats.I(cmpCores)+" cores",
		"size", "rtc-gbps", "gunfu-gbps")
	rows2 := make([][]string, len(sizes))
	if err := o.forEach(len(sizes), func(i int) error {
		size := sizes[i]
		rtcAgg, err := runUPFCores(o, totalSessions, size, cmpCores, perCore, false)
		if err != nil {
			return err
		}
		ilAgg, err := runUPFCores(o, totalSessions, size, cmpCores, perCore, true)
		if err != nil {
			return err
		}
		rows2[i] = []string{sizeLabel(size), capGbps(rtcAgg.Gbps()), capGbps(ilAgg.Gbps())}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows2 {
		t2.AddRow(row...)
	}
	return []*stats.Table{t, t2}, nil
}

// runUPFCores runs the UPF downlink on `cores` cores. GuNFu deploys
// state-sharded per-core instances; the RTC comparator is the
// monolithic deployment (full session table on every core, traffic
// split by RSS).
func runUPFCores(o Options, totalSessions, size, cores int, perCore uint64, interleaved bool) (rt.Result, error) {
	perCoreSessions := totalSessions / cores
	if perCoreSessions < 16 {
		perCoreSessions = 16
	}
	pktBytes := size
	setups := make([]rt.CoreSetup, cores)
	for i := 0; i < cores; i++ {
		coreID := i
		setups[i] = rt.CoreSetup{NewWorker: func(core *sim.Core) (*rt.Worker, rt.Source, error) {
			seed := o.Seed + int64(coreID)*104729
			sessions, shardBase, shardCount := perCoreSessions, 0, 0
			if !interleaved {
				sessions = totalSessions
				shardBase, shardCount = coreID*perCoreSessions, perCoreSessions
			}
			as := mem.NewAddressSpace()
			u, err := upf.New(as, upf.Config{Sessions: sessions, PDRsPerSession: 16})
			if err != nil {
				return nil, nil, err
			}
			prog, err := u.DownlinkProgram()
			if err != nil {
				return nil, nil, err
			}
			var src rt.Source
			if pktBytes == 0 {
				src, err = newCaidaMGW(sessions, shardBase, shardCount, seed)
			} else {
				src, err = traffic.NewMGWGen(traffic.MGWConfig{
					Sessions: sessions, PDRs: 16, PacketBytes: pktBytes, Seed: seed,
					ShardBase: shardBase, ShardCount: shardCount,
				})
			}
			if err != nil {
				return nil, nil, err
			}
			cfg := rt.DefaultConfig()
			if !interleaved {
				cfg.Tasks = 1
				cfg.Prefetch = false
			}
			w, err := rt.NewWorker(core, as, prog, cfg)
			return w, src, err
		}}
	}
	eng, err := rt.NewEngine(o.simCfg(), setups)
	if err != nil {
		return rt.Result{}, err
	}
	results, err := eng.Run(perCore)
	if err != nil {
		return rt.Result{}, err
	}
	return rt.AggregateStrict(results)
}

// caidaMGW wraps the MGW generator with the CAIDA IMIX size mix: UE-
// addressed downlink traffic whose packet sizes follow the trace
// distribution.
type caidaMGW struct {
	mgw   *traffic.MGWGen
	sizes *traffic.CaidaGen
}

func newCaidaMGW(sessions, shardBase, shardCount int, seed int64) (rt.Source, error) {
	mgw, err := traffic.NewMGWGen(traffic.MGWConfig{
		Sessions: sessions, PDRs: 16, PacketBytes: 64, Seed: seed,
		ShardBase: shardBase, ShardCount: shardCount,
	})
	if err != nil {
		return nil, err
	}
	sizes, err := traffic.NewCaidaGen(traffic.CaidaConfig{Flows: 64, Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	return &caidaMGW{mgw: mgw, sizes: sizes}, nil
}

// Next emits an MGW packet with an IMIX wire length.
func (c *caidaMGW) Next() *pkt.Packet {
	p := c.mgw.Next()
	p.WireLen = c.sizes.Next().WireLen
	return p
}
