package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/stats"
)

func quick() Options {
	return Options{Quick: true, Seed: 42}
}

// runQuick executes one experiment in quick mode and returns its tables.
func runQuick(t *testing.T, name string) []*stats.Table {
	t.Helper()
	var buf bytes.Buffer
	o := quick()
	o.Out = &buf
	tables, err := Run(name, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", name)
	}
	for _, tb := range tables {
		if tb.NumRows() == 0 {
			t.Fatalf("%s produced empty table %q", name, tb.Title)
		}
	}
	if !strings.Contains(buf.String(), "Figure") && name != "ablation" {
		t.Fatalf("%s rendered no figure header:\n%s", name, buf.String())
	}
	return tables
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	want := []string{"ablation", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig2", "fig3", "fig9"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestFig2ShowsDegradationWithConcurrency(t *testing.T) {
	tables := runQuick(t, "fig2")
	t1 := tables[0]
	col, err := t1.ColumnIndex("cyc/pkt")
	if err != nil {
		t.Fatal(err)
	}
	first, err := t1.CellFloat(0, col)
	if err != nil {
		t.Fatal(err)
	}
	last, err := t1.CellFloat(t1.NumRows()-1, col)
	if err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Fatalf("RTC per-packet cost did not grow with sessions: %v -> %v", first, last)
	}
}

func TestFig3StateAccessDominates(t *testing.T) {
	tables := runQuick(t, "fig3")
	tb := tables[0]
	col, err := tb.ColumnIndex("state-access%")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.NumRows(); r++ {
		cell, err := tb.Cell(r, col)
		if err != nil {
			t.Fatal(err)
		}
		v, err := parsePct(cell)
		if err != nil {
			t.Fatal(err)
		}
		if v < 20 {
			t.Fatalf("row %d: state access only %.1f%% of cycles; the AMF is state-bound in the paper", r, v)
		}
	}
}

func parsePct(s string) (float64, error) {
	var v float64
	_, err := fmt.Sscan(strings.TrimSuffix(strings.TrimSpace(s), "%"), &v)
	return v, err
}

func TestFig9NFTaskFasterThanGoroutines(t *testing.T) {
	tables := runQuick(t, "fig9")
	tb := tables[0]
	col, err := tb.ColumnIndex("switches/sec")
	if err != nil {
		t.Fatal(err)
	}
	nftask, err := tb.CellFloat(0, col)
	if err != nil {
		t.Fatal(err)
	}
	goroutines, err := tb.CellFloat(1, col)
	if err != nil {
		t.Fatal(err)
	}
	if nftask <= goroutines {
		t.Fatalf("NFTask switching (%.0f/s) not faster than goroutines (%.0f/s)", nftask, goroutines)
	}
}

func TestFig10InterleavingBeatsRTC(t *testing.T) {
	tables := runQuick(t, "fig10")
	tb := tables[0]
	col, err := tb.ColumnIndex("speedup-vs-rtc")
	if err != nil {
		t.Fatal(err)
	}
	// Row for IL-16 (RTC, IL-1, IL-2, IL-4, IL-8, IL-16 → index 5).
	best := 0.0
	for r := 1; r < tb.NumRows(); r++ {
		v, err := tb.CellFloat(r, col)
		if err != nil {
			t.Fatal(err)
		}
		if v > best {
			best = v
		}
	}
	if best < 1.5 {
		t.Fatalf("best UPF speedup %.2f < 1.5 (paper: 1.5-6x)", best)
	}
}

func TestFig11Shape(t *testing.T) {
	tables := runQuick(t, "fig11")
	tb := tables[0]
	col, err := tb.ColumnIndex("speedup-vs-rtc")
	if err != nil {
		t.Fatal(err)
	}
	one, err := tb.CellFloat(1, col) // IL-1
	if err != nil {
		t.Fatal(err)
	}
	sixteen, err := tb.CellFloat(5, col) // IL-16
	if err != nil {
		t.Fatal(err)
	}
	sixtyFour, err := tb.CellFloat(7, col) // IL-64
	if err != nil {
		t.Fatal(err)
	}
	if one >= 1.0 {
		t.Fatalf("IL-1 speedup %.2f >= 1: one stream must not beat RTC", one)
	}
	if sixteen < 1.5 {
		t.Fatalf("IL-16 speedup %.2f < 1.5", sixteen)
	}
	if sixtyFour >= sixteen {
		t.Fatalf("IL-64 (%.2f) did not degrade from IL-16 (%.2f)", sixtyFour, sixteen)
	}
}

func TestFig12InterleavingHelpsAMF(t *testing.T) {
	tables := runQuick(t, "fig12")
	tb := tables[0]
	col, err := tb.ColumnIndex("il16-speedup")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.NumRows(); r++ {
		v, err := tb.CellFloat(r, col)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1.2 {
			t.Fatalf("message row %d speedup %.2f < 1.2 (paper: ~1.6)", r, v)
		}
	}
}

func TestFig13MRWins(t *testing.T) {
	tables := runQuick(t, "fig13")
	tb := tables[0]
	col, err := tb.ColumnIndex("mr-speedup-vs-rtc")
	if err != nil {
		t.Fatal(err)
	}
	// The longest chain gains the most from MR.
	lastRow := tb.NumRows() - 1
	longest, err := tb.CellFloat(lastRow, col)
	if err != nil {
		t.Fatal(err)
	}
	shortest, err := tb.CellFloat(0, col)
	if err != nil {
		t.Fatal(err)
	}
	if longest < shortest {
		t.Fatalf("MR speedup shrank with chain length: %v -> %v", shortest, longest)
	}
	if longest < 2.0 {
		t.Fatalf("length-6 MR speedup %.2f < 2 (paper: ~6)", longest)
	}
}

func TestFig14ScalesWithCores(t *testing.T) {
	tables := runQuick(t, "fig14")
	tb := tables[0]
	// 64B row, cores 1 vs 4 (columns 1 and 3).
	oneCore, err := tb.CellFloat(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	fourCores, err := tb.CellFloat(0, 3)
	if err != nil {
		// May be line-rate capped; skip numeric assertion then.
		t.Skipf("4-core cell not numeric (line rate reached): %v", err)
	}
	if fourCores < 3*oneCore {
		t.Fatalf("4 cores (%.1f) < 3x one core (%.1f): scaling not linear", fourCores, oneCore)
	}
}

func TestFig15UPFScalesAndBeatsRTC(t *testing.T) {
	tables := runQuick(t, "fig15")
	if len(tables) != 2 {
		t.Fatalf("fig15 tables = %d", len(tables))
	}
	cmp := tables[1]
	rtcCol := 1
	ilCol := 2
	for r := 0; r < cmp.NumRows(); r++ {
		rtcV, err := cmp.CellFloat(r, rtcCol)
		if err != nil {
			t.Fatal(err)
		}
		ilCell, err := cmp.Cell(r, ilCol)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(ilCell, "*") {
			continue // line rate: trivially >= RTC
		}
		ilV, err := cmp.CellFloat(r, ilCol)
		if err != nil {
			t.Fatal(err)
		}
		if ilV <= rtcV {
			t.Fatalf("row %d: GuNFu (%.1f) not above RTC (%.1f)", r, ilV, rtcV)
		}
	}
}

func TestAblations(t *testing.T) {
	tables := runQuick(t, "ablation")
	if len(tables) != 5 {
		t.Fatalf("ablation tables = %d", len(tables))
	}
	// Feature ladder: full config at least as fast as interleave-only.
	t1 := tables[0]
	col, err := t1.ColumnIndex("gbps")
	if err != nil {
		t.Fatal(err)
	}
	noPf, err := t1.CellFloat(0, col)
	if err != nil {
		t.Fatal(err)
	}
	full, err := t1.CellFloat(2, col)
	if err != nil {
		t.Fatal(err)
	}
	if full <= noPf {
		t.Fatalf("full scheduler (%.2f) not faster than no-prefetch (%.2f)", full, noPf)
	}
	// Scheduler-mode table: round-robin never parks, the wakeup
	// scheduler must actually exercise its park path on this workload.
	t4 := tables[4]
	parksCol, err := t4.ColumnIndex("parks/pkt")
	if err != nil {
		t.Fatal(err)
	}
	rrParks, err := t4.CellFloat(0, parksCol)
	if err != nil {
		t.Fatal(err)
	}
	wkParks, err := t4.CellFloat(1, parksCol)
	if err != nil {
		t.Fatal(err)
	}
	if rrParks != 0 {
		t.Fatalf("rr parks/pkt = %v, want 0", rrParks)
	}
	if wkParks <= 0 {
		t.Fatalf("wakeup parks/pkt = %v, want > 0", wkParks)
	}
}
