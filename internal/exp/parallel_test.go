package exp

import (
	"bytes"
	"testing"
)

// TestParallelSweepDeterminism asserts the tentpole guarantee of
// Options.Parallel: any worker count renders byte-identical tables,
// because sweep points are share-nothing simulations and rows are
// emitted in sweep order. Runs under -race in CI, which also proves
// the fan-out has no data races.
//
// fig9 is excluded: it measures host wall-clock context-switch rates,
// which vary run to run regardless of Parallel.
func TestParallelSweepDeterminism(t *testing.T) {
	names := Names()
	if testing.Short() {
		names = []string{"fig2", "fig10", "fig14"}
	}
	for _, name := range names {
		if name == "fig9" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var seq, par bytes.Buffer
			if _, err := Run(name, Options{Quick: true, Seed: 42, Out: &seq}); err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			if _, err := Run(name, Options{Quick: true, Seed: 42, Out: &par, Parallel: 4}); err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if !bytes.Equal(seq.Bytes(), par.Bytes()) {
				t.Errorf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seq.String(), par.String())
			}
		})
	}
}

// TestForEachErrorSelection pins forEach's error contract: the
// lowest-index error wins under any worker count, so failures are as
// deterministic as results.
func TestForEachErrorSelection(t *testing.T) {
	errA := errIndexed(3)
	errB := errIndexed(7)
	for _, parallel := range []int{0, 1, 4} {
		o := Options{Parallel: parallel}
		err := o.forEach(10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("Parallel=%d: got %v, want lowest-index error %v", parallel, err, errA)
		}
	}
}

type errIndexed int

func (e errIndexed) Error() string { return "sweep point failed" }
