// Package faultnet wraps net.Conn and net.Listener with seeded,
// deterministic fault injection: connections that reset after a
// scripted number of bytes (mid-message, so peers see truncated
// frames), writes split into small chunks (so readers see partial
// frames), and latency inserted on a fixed cadence. It exists so the
// control plane's failure handling — reconnect, retry, liveness — can
// be exercised both in tests (the chaos soak in internal/director) and
// interactively (gunfu-director -chaos).
//
// Determinism contract: every fault is a pure function of (Config.Seed,
// connection wrap order, byte offsets within the connection). The
// injector draws one fault script per connection from a single seeded
// PRNG in Wrap order, and the script triggers on byte counts, never on
// wall-clock time. Two runs that wrap connections in the same order
// inject byte-identical faults; concurrent runs may interleave wrap
// order, which reorders scripts across connections but never invents
// new ones. Inserted latency is the only wall-clock effect, and it is
// bounded by Config.Latency per I/O operation.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error surfaced by a connection the injector has
// reset. Callers distinguish injected faults from organic network
// errors with errors.Is.
var ErrInjected = errors.New("faultnet: injected connection reset")

// Config parameterizes an Injector. The zero value injects nothing
// (every wrapper is then a transparent pass-through).
type Config struct {
	// Seed fixes the fault script sequence.
	Seed int64
	// CutProb is the probability (0..1) that a connection gets a kill
	// point: after CutAfter total bytes (reads plus writes) the
	// connection is closed mid-operation and both sides see a reset.
	CutProb float64
	// CutAfterMin and CutAfterMax bound the kill point in total bytes.
	// The cut lands at a uniform draw in [min, max]; a cut inside a
	// Write truncates the frame on the wire first.
	CutAfterMin, CutAfterMax int64
	// MaxWriteChunk, when positive, splits every Write into chunks of
	// at most this many bytes so peers observe partial frames. The full
	// buffer is still written (the io.Writer contract holds) unless a
	// kill point lands inside it.
	MaxWriteChunk int
	// Latency, when positive, is slept before every LatencyEvery'th
	// I/O operation on a connection.
	Latency time.Duration
	// LatencyEvery is the operation cadence for Latency (0 disables).
	LatencyEvery int
}

func (c Config) validate() error {
	if c.CutProb < 0 || c.CutProb > 1 {
		return fmt.Errorf("faultnet: CutProb %v outside [0,1]", c.CutProb)
	}
	if c.CutProb > 0 && (c.CutAfterMin <= 0 || c.CutAfterMax < c.CutAfterMin) {
		return fmt.Errorf("faultnet: cut range [%d,%d] invalid", c.CutAfterMin, c.CutAfterMax)
	}
	if c.Latency > 0 && c.LatencyEvery <= 0 {
		return fmt.Errorf("faultnet: Latency set but LatencyEvery is %d", c.LatencyEvery)
	}
	return nil
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	// Conns is the number of connections wrapped.
	Conns int64
	// Cuts is the number of connections reset by a kill point.
	Cuts int64
	// SplitWrites is the number of Writes delivered in >1 chunk.
	SplitWrites int64
	// DelayedOps is the number of I/O operations that slept.
	DelayedOps int64
}

// Injector hands out fault-wrapped connections. Safe for concurrent
// use; the per-connection script draw is serialized so wrap order
// fully determines the scripts.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	conns       atomic.Int64
	cuts        atomic.Int64
	splitWrites atomic.Int64
	delayedOps  atomic.Int64
}

// New builds an injector for the given config.
func New(cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Stats returns the fault counts so far.
func (i *Injector) Stats() Stats {
	return Stats{
		Conns:       i.conns.Load(),
		Cuts:        i.cuts.Load(),
		SplitWrites: i.splitWrites.Load(),
		DelayedOps:  i.delayedOps.Load(),
	}
}

// script is one connection's fault plan, drawn at wrap time.
type script struct {
	cutAfter     int64 // total bytes before the reset; -1 = never
	chunk        int
	latency      time.Duration
	latencyEvery int64
}

// Wrap returns conn with this injector's next fault script attached.
func (i *Injector) Wrap(conn net.Conn) net.Conn {
	i.mu.Lock()
	sc := script{cutAfter: -1, chunk: i.cfg.MaxWriteChunk, latency: i.cfg.Latency, latencyEvery: int64(i.cfg.LatencyEvery)}
	if i.cfg.CutProb > 0 && i.rng.Float64() < i.cfg.CutProb {
		sc.cutAfter = i.cfg.CutAfterMin + i.rng.Int63n(i.cfg.CutAfterMax-i.cfg.CutAfterMin+1)
	}
	i.mu.Unlock()
	i.conns.Add(1)
	return &Conn{Conn: conn, inj: i, sc: sc}
}

// Dial dials like net.Dial and wraps the result.
func (i *Injector) Dial(network, address string) (net.Conn, error) {
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, err
	}
	return i.Wrap(conn), nil
}

// WrapListener returns a listener whose accepted connections are
// wrapped in Accept order.
func (i *Injector) WrapListener(ln net.Listener) net.Listener {
	return &Listener{Listener: ln, inj: i}
}

// Listener wraps accepted connections with fault scripts.
type Listener struct {
	net.Listener
	inj *Injector
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Wrap(conn), nil
}

// Conn is a net.Conn with an attached fault script.
type Conn struct {
	net.Conn
	inj *Injector
	sc  script

	mu    sync.Mutex
	total int64 // bytes read + written
	ops   int64
	cut   bool
}

// maybeDelay sleeps on the script's latency cadence. Called with c.mu
// held only long enough to advance the op counter.
func (c *Conn) maybeDelay() {
	if c.sc.latencyEvery <= 0 {
		return
	}
	c.mu.Lock()
	c.ops++
	fire := c.ops%c.sc.latencyEvery == 0
	c.mu.Unlock()
	if fire {
		c.inj.delayedOps.Add(1)
		time.Sleep(c.sc.latency)
	}
}

// budget returns how many of n bytes may still pass before the kill
// point, and whether the connection is already cut.
func (c *Conn) budget(n int) (allowed int, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, true
	}
	if c.sc.cutAfter < 0 {
		return n, false
	}
	remain := c.sc.cutAfter - c.total
	if remain <= 0 {
		return 0, false
	}
	if int64(n) <= remain {
		return n, false
	}
	return int(remain), false
}

// account adds transferred bytes and reports whether the kill point
// has been reached.
func (c *Conn) account(n int) (killed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total += int64(n)
	if c.sc.cutAfter >= 0 && c.total >= c.sc.cutAfter && !c.cut {
		c.cut = true
		return true
	}
	return false
}

// kill closes the underlying connection and counts the cut.
func (c *Conn) kill() {
	c.inj.cuts.Add(1)
	_ = c.Conn.Close()
}

// Read reads from the wrapped connection, delivering the scripted
// reset once the connection's byte budget is spent.
func (c *Conn) Read(p []byte) (int, error) {
	c.maybeDelay()
	allowed, dead := c.budget(len(p))
	if dead {
		return 0, ErrInjected
	}
	if allowed == 0 && len(p) > 0 {
		// Budget already spent (cut landed exactly on a boundary).
		c.mu.Lock()
		c.cut = true
		c.mu.Unlock()
		c.kill()
		return 0, ErrInjected
	}
	n, err := c.Conn.Read(p[:allowed])
	if c.account(n) {
		c.kill()
		if n > 0 {
			return n, nil // deliver what crossed the line; next op errors
		}
		return 0, ErrInjected
	}
	return n, err
}

// Write writes through the wrapped connection in script-sized chunks,
// truncating mid-frame if the kill point lands inside the buffer.
func (c *Conn) Write(p []byte) (int, error) {
	c.maybeDelay()
	written := 0
	chunks := 0
	for written < len(p) {
		allowed, dead := c.budget(len(p) - written)
		if dead {
			return written, ErrInjected
		}
		if allowed == 0 {
			c.mu.Lock()
			c.cut = true
			c.mu.Unlock()
			c.kill()
			return written, ErrInjected
		}
		if c.sc.chunk > 0 && allowed > c.sc.chunk {
			allowed = c.sc.chunk
		}
		n, err := c.Conn.Write(p[written : written+allowed])
		written += n
		chunks++
		killed := c.account(n)
		if killed {
			c.kill()
			if chunks > 1 {
				c.inj.splitWrites.Add(1)
			}
			return written, ErrInjected
		}
		if err != nil {
			return written, err
		}
	}
	if chunks > 1 {
		c.inj.splitWrites.Add(1)
	}
	return written, nil
}

// Close closes the wrapped connection.
func (c *Conn) Close() error {
	return c.Conn.Close()
}
