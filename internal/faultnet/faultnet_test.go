package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory connection with the
// injector wrapped around the first.
func pipePair(t *testing.T, inj *Injector) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return inj.Wrap(a), b
}

func TestZeroConfigIsTransparent(t *testing.T) {
	inj, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	w, r := pipePair(t, inj)
	msg := bytes.Repeat([]byte("transparent"), 100)
	go func() {
		_, _ = w.Write(msg)
		_ = w.Close()
	}()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %d bytes, want %d", len(got), len(msg))
	}
	if s := inj.Stats(); s.Conns != 1 || s.Cuts != 0 || s.SplitWrites != 0 || s.DelayedOps != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{CutProb: -0.1},
		{CutProb: 1.5},
		{CutProb: 0.5},                                  // cut range missing
		{CutProb: 0.5, CutAfterMin: 10, CutAfterMax: 5}, // inverted range
		{Latency: time.Millisecond},                     // no cadence
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestCutTruncatesMidWrite pins the mid-message reset: a write whose
// kill point lands inside the buffer delivers exactly the bytes before
// the kill point, then fails with ErrInjected.
func TestCutTruncatesMidWrite(t *testing.T) {
	inj, err := New(Config{Seed: 7, CutProb: 1, CutAfterMin: 10, CutAfterMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	w, r := pipePair(t, inj)

	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(r)
		got <- b
	}()
	n, err := w.Write([]byte("0123456789abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes past a cut at 10", n)
	}
	select {
	case b := <-got:
		if string(b) != "0123456789" {
			t.Fatalf("peer saw %q", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw EOF")
	}
	// The connection stays dead.
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut write err = %v", err)
	}
	if _, err := w.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut read err = %v", err)
	}
	if s := inj.Stats(); s.Cuts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestCutOnRead spends the byte budget with reads.
func TestCutOnRead(t *testing.T) {
	inj, err := New(Config{Seed: 1, CutProb: 1, CutAfterMin: 4, CutAfterMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, r := pipePair(t, inj) // wrapped side reads this time
	go func() { _, _ = r.Write([]byte("abcdefgh")) }()

	buf := make([]byte, 8)
	n, err := w.Read(buf)
	if err != nil || n != 4 {
		// The wrapper clamps the read to the remaining budget and
		// delivers those bytes before the reset surfaces.
		t.Fatalf("first read = %d, %v", n, err)
	}
	if _, err := w.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v", err)
	}
}

func TestPartialWritesStillDeliverEverything(t *testing.T) {
	inj, err := New(Config{Seed: 3, MaxWriteChunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	w, r := pipePair(t, inj)
	msg := []byte("a complete message despite chunked delivery")
	go func() {
		if n, err := w.Write(msg); err != nil || n != len(msg) {
			t.Errorf("write = %d, %v", n, err)
		}
		_ = w.Close()
	}()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if s := inj.Stats(); s.SplitWrites != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLatencyCadence(t *testing.T) {
	inj, err := New(Config{Seed: 5, Latency: time.Millisecond, LatencyEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, r := pipePair(t, inj)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := r.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 6; i++ {
		if _, err := w.Write([]byte("tick")); err != nil {
			t.Fatal(err)
		}
	}
	if s := inj.Stats(); s.DelayedOps != 3 {
		t.Fatalf("delayed ops = %d, want every 2nd of 6", s.DelayedOps)
	}
}

// TestDeterministicScripts pins the determinism contract: same seed
// and wrap order → identical kill points.
func TestDeterministicScripts(t *testing.T) {
	draw := func(seed int64) []int64 {
		inj, err := New(Config{Seed: seed, CutProb: 0.5, CutAfterMin: 100, CutAfterMax: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		var cuts []int64
		for i := 0; i < 32; i++ {
			a, b := net.Pipe()
			c := inj.Wrap(a).(*Conn)
			cuts = append(cuts, c.sc.cutAfter)
			_ = a.Close()
			_ = b.Close()
		}
		return cuts
	}
	first, second := draw(42), draw(42)
	other := draw(43)
	same, diff := true, false
	for i := range first {
		if first[i] != second[i] {
			same = false
		}
		if first[i] != other[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed drew different scripts")
	}
	if !diff {
		t.Fatal("different seeds drew identical scripts")
	}
}

// TestListenerAndDial exercises the TCP wrappers end to end.
func TestListenerAndDial(t *testing.T) {
	inj, err := New(Config{Seed: 9, MaxWriteChunk: 5})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := inj.WrapListener(raw)
	defer ln.Close()

	done := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		b, _ := io.ReadAll(conn)
		done <- b
	}()

	conn, err := inj.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("over tcp, chunked both ways")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	select {
	case b := <-done:
		if string(b) != "over tcp, chunked both ways" {
			t.Fatalf("got %q", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept side never finished")
	}
	if s := inj.Stats(); s.Conns != 2 {
		t.Fatalf("conns = %d", s.Conns)
	}
}
