package fw

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

func run(t *testing.T, f *FW, src interface{ Next() *pkt.Packet }, n uint64) {
	t.Helper()
	prog, err := f.Program()
	if err != nil {
		t.Fatal(err)
	}
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(src, n); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(mem.NewAddressSpace(), Config{MaxFlows: 0}); err == nil {
		t.Fatal("zero MaxFlows accepted")
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{Proto: pkt.ProtoTCP, DstPortLo: 80, DstPortHi: 90, Allow: true}
	tests := []struct {
		tuple pkt.FiveTuple
		want  bool
	}{
		{pkt.FiveTuple{Proto: pkt.ProtoTCP, DstPort: 85}, true},
		{pkt.FiveTuple{Proto: pkt.ProtoTCP, DstPort: 80}, true},
		{pkt.FiveTuple{Proto: pkt.ProtoTCP, DstPort: 90}, true},
		{pkt.FiveTuple{Proto: pkt.ProtoTCP, DstPort: 91}, false},
		{pkt.FiveTuple{Proto: pkt.ProtoUDP, DstPort: 85}, false},
	}
	for i, tt := range tests {
		if got := r.Matches(tt.tuple); got != tt.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, tt.want)
		}
	}
	anyProto := Rule{DstPortLo: 0, DstPortHi: 65535}
	if !anyProto.Matches(pkt.FiveTuple{Proto: 99, DstPort: 7}) {
		t.Fatal("wildcard-proto rule did not match")
	}
}

func TestDefaultPolicyEndsWithAllow(t *testing.T) {
	for _, n := range []int{1, 4, 32} {
		p := DefaultPolicy(n)
		if len(p) != n {
			t.Fatalf("DefaultPolicy(%d) has %d rules", n, len(p))
		}
		last := p[len(p)-1]
		if !last.Allow || last.DstPortLo != 0 || last.DstPortHi != 65535 {
			t.Fatalf("policy %d does not end with catch-all allow: %+v", n, last)
		}
	}
	if len(DefaultPolicy(0)) != 1 {
		t.Fatal("DefaultPolicy(0) must clamp to 1 rule")
	}
}

func TestEstablishedFlowsPass(t *testing.T) {
	f, err := New(mem.NewAddressSpace(), Config{MaxFlows: 32})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 32, PacketBytes: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := f.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	run(t, f, g, 300)
	if f.Drops() != 0 {
		t.Fatalf("allow-all policy dropped %d packets", f.Drops())
	}
	var pkts uint64
	for i := int32(0); i < 32; i++ {
		fl, err := f.Flow(i)
		if err != nil {
			t.Fatal(err)
		}
		pkts += fl.Pkts
	}
	if pkts != 300 {
		t.Fatalf("flow counters sum to %d, want 300", pkts)
	}
}

func TestFirstPacketWalksPolicy(t *testing.T) {
	// 40 rules = 5 policy lines; flow 0's first packet must walk them
	// and install an allow verdict (catch-all).
	f, err := New(mem.NewAddressSpace(), Config{MaxFlows: 4, Policy: DefaultPolicy(40)})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 1, PacketBytes: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	run(t, f, traffic.NewLimited(g, 2), 0)
	fl, err := f.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	if !fl.Allowed {
		t.Fatal("catch-all allow not installed")
	}
	if fl.RuleID != 39 {
		t.Fatalf("deciding rule = %d, want 39 (catch-all)", fl.RuleID)
	}
	if fl.Pkts != 2 {
		t.Fatalf("flow pkts = %d, want 2", fl.Pkts)
	}
}

func TestDenyPolicyDrops(t *testing.T) {
	deny := []Rule{{Proto: 0, DstPortLo: 0, DstPortHi: 65535, Allow: false}}
	f, err := New(mem.NewAddressSpace(), Config{MaxFlows: 4, Policy: deny})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 1, PacketBytes: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	run(t, f, traffic.NewLimited(g, 3), 0)
	if f.Drops() != 3 {
		t.Fatalf("Drops = %d, want 3", f.Drops())
	}
}

func TestNoMatchingRuleDrops(t *testing.T) {
	// Policy with a hole: only TCP port 1 allowed; UDP traffic matches
	// nothing and must be dropped.
	policy := []Rule{{Proto: pkt.ProtoTCP, DstPortLo: 1, DstPortHi: 1, Allow: true}}
	f, err := New(mem.NewAddressSpace(), Config{MaxFlows: 4, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 1, PacketBytes: 64, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	run(t, f, traffic.NewLimited(g, 1), 0)
	if f.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", f.Drops())
	}
	fl, _ := f.Flow(0)
	if fl.Allowed {
		t.Fatal("deny verdict not installed for unmatched flow")
	}
}

func TestBounds(t *testing.T) {
	f, err := New(mem.NewAddressSpace(), Config{MaxFlows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddFlow(pkt.FiveTuple{}, 9); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := f.Flow(9); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if f.Name() != "fw" || f.States() == nil {
		t.Fatal("accessors broken")
	}
}
