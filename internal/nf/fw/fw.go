// Package fw implements the stateful firewall of the paper's SFC
// experiments. Established flows take the hot path: a per-flow verdict
// read. Unknown flows walk the firewall policy — a rule list living in
// simulated memory, scanned line by line as a stepwise match action —
// and the verdict is installed into per-flow state, so only a flow's
// first packet pays the policy evaluation.
//
// The SFC-length experiments (Figure 13) instantiate several firewalls
// with different policies, which is why the policy is part of Config.
package fw

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// Rule is one policy entry: match on protocol and destination port
// range, yield a verdict. A zero Proto matches every protocol.
type Rule struct {
	// Proto matches the IP protocol (0 = any).
	Proto uint8
	// DstPortLo and DstPortHi bound the matched destination ports.
	DstPortLo, DstPortHi uint16
	// Allow is the verdict.
	Allow bool
}

// Matches reports whether the rule covers the tuple.
func (r Rule) Matches(t pkt.FiveTuple) bool {
	if r.Proto != 0 && r.Proto != t.Proto {
		return false
	}
	return t.DstPort >= r.DstPortLo && t.DstPort <= r.DstPortHi
}

// rulesPerLine is how many rules share one cache line in the policy
// region (rules are small; 8 per 64-byte line).
const rulesPerLine = 8

// Config parametrizes a firewall instance.
type Config struct {
	// Name prefixes the firewall's module names (default "fw").
	Name string
	// MaxFlows sizes the per-flow pool and match table.
	MaxFlows int
	// Policy is the rule list, evaluated first-match. A packet matching
	// no rule is dropped.
	Policy []Rule
	// States optionally overrides the per-flow state objects — used by
	// the compiler's data-packing pass for fused SFC pools.
	States *nf.States
}

func (c *Config) setDefaults() error {
	if c.Name == "" {
		c.Name = "fw"
	}
	if c.MaxFlows <= 0 {
		return fmt.Errorf("fw: MaxFlows must be positive, got %d", c.MaxFlows)
	}
	if len(c.Policy) == 0 {
		// Default: allow everything (one rule), the pass-through policy.
		c.Policy = []Rule{{Allow: true, DstPortHi: 65535}}
	}
	return nil
}

// DefaultPolicy builds an n-rule policy whose final rule is a
// catch-all allow; earlier rules deny scattered port slices. Larger n
// means a longer (more cache-hostile) first-packet policy walk.
func DefaultPolicy(n int) []Rule {
	if n < 1 {
		n = 1
	}
	rules := make([]Rule, 0, n)
	for i := 0; i < n-1; i++ {
		lo := uint16(i * 7)
		rules = append(rules, Rule{Proto: pkt.ProtoTCP, DstPortLo: lo, DstPortHi: lo + 2, Allow: false})
	}
	rules = append(rules, Rule{DstPortLo: 0, DstPortHi: 65535, Allow: true})
	return rules
}

// Flow is the firewall's per-flow record.
type Flow struct {
	// Allowed is the installed verdict (hot, read).
	Allowed bool
	// RuleID records which policy rule decided the flow (cold).
	RuleID int32
	// Pkts counts packets checked (hot, written).
	Pkts uint64
}

// FlowFields returns the simulated per-flow layout in natural order.
func FlowFields() []mem.Field {
	return []mem.Field{
		{Name: "allowed", Size: 1},
		{Name: "state", Size: 1},
		{Name: "rule_id", Size: 4},
		{Name: "created", Size: 8},
		{Name: "pkts", Size: 8},
	}
}

// HotFields returns the per-packet co-access group for data packing.
func HotFields() []string {
	return []string{"allowed", "state", "pkts"}
}

// FW is one firewall instance.
type FW struct {
	cfg    Config
	states *nf.States
	table  *dstruct.Cuckoo
	policy mem.Region
	flows  []Flow
	next   int32
	// drops counts packets denied, for test observability.
	drops uint64
}

// New builds a firewall drawing simulated memory from as.
func New(as *mem.AddressSpace, cfg Config) (*FW, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	states := cfg.States
	if states == nil {
		var err error
		states, err = nf.BuildStates(as, cfg.Name, FlowFields(), cfg.MaxFlows)
		if err != nil {
			return nil, err
		}
	}
	table, err := dstruct.NewCuckoo(as, cfg.Name+".match", cfg.MaxFlows)
	if err != nil {
		return nil, err
	}
	lines := (len(cfg.Policy) + rulesPerLine - 1) / rulesPerLine
	base := as.Reserve(uint64(lines)*sim.LineBytes, sim.LineBytes)
	return &FW{
		cfg:    cfg,
		states: states,
		table:  table,
		policy: mem.Region{Name: cfg.Name + ".policy", Base: base, Size: uint64(lines) * sim.LineBytes},
		flows:  make([]Flow, cfg.MaxFlows),
	}, nil
}

// Name returns the instance name.
func (f *FW) Name() string { return f.cfg.Name }

// States exposes the per-flow state objects (for data packing).
func (f *FW) States() *nf.States { return f.states }

// Drops returns the packets denied so far.
func (f *FW) Drops() uint64 { return f.drops }

// Flow returns a copy of flow idx's record.
func (f *FW) Flow(idx int32) (Flow, error) {
	if idx < 0 || int(idx) >= len(f.flows) {
		return Flow{}, fmt.Errorf("fw: flow %d out of range", idx)
	}
	return f.flows[idx], nil
}

// evaluate runs the policy in Go (first match wins).
func (f *FW) evaluate(t pkt.FiveTuple) (verdict bool, rule int32) {
	for i, r := range f.cfg.Policy {
		if r.Matches(t) {
			return r.Allow, int32(i)
		}
	}
	return false, -1
}

// AddFlow pre-populates flow idx for tuple with its evaluated verdict.
func (f *FW) AddFlow(tuple pkt.FiveTuple, idx int32) error {
	if idx < 0 || int(idx) >= len(f.flows) {
		return fmt.Errorf("fw: flow index %d out of range [0,%d)", idx, len(f.flows))
	}
	if err := f.table.Insert(tuple.Hash(), idx); err != nil {
		return fmt.Errorf("fw: %w", err)
	}
	allow, rule := f.evaluate(tuple)
	f.flows[idx] = Flow{Allowed: allow, RuleID: rule}
	if idx >= f.next {
		f.next = idx + 1
	}
	return nil
}

// Translate returns tuple unchanged: the firewall does not rewrite.
func (f *FW) Translate(tuple pkt.FiveTuple, _ int32) pkt.FiveTuple { return tuple }

// Attach registers the firewall's modules on b, exiting toward next.
func (f *FW) Attach(b *model.Builder, next string) string {
	cls := nf.Classifier{Table: f.table, Module: f.cfg.Name + "_cls"}
	dataEntry := f.AttachData(b, next)
	walkEntry := f.attachPolicyWalk(b, dataEntry)
	return cls.Attach(b, dataEntry, walkEntry)
}

// AttachData registers only the established-flow check (post-MR form).
func (f *FW) AttachData(b *model.Builder, next string) string {
	m := f.cfg.Name + "_check"
	evFwd := b.Event(nf.EvForward)
	evDrop := b.Event(nf.EvDrop)
	flows := f.flows

	b.AddModule(m, f.states.Binding(), model.Layouts{model.KindPerFlow: f.states.Layout})
	b.AddState(m, "check", model.Action{
		Name: "check",
		Kind: model.ActionData,
		Cost: 30,
		Reads: []model.FieldRef{
			model.Fields(model.KindPerFlow, "allowed", "state"),
			nf.PacketHeaderSpan(),
		},
		Writes: []model.FieldRef{model.Fields(model.KindPerFlow, "pkts")},
		Fn: func(e *model.Exec) model.EventID {
			fl := &flows[e.FlowIdx]
			fl.Pkts++
			if !fl.Allowed {
				f.drops++
				return evDrop
			}
			return evFwd
		},
	})
	b.AddTransition(m+".check", nf.EvForward, next)
	b.AddTransition(m+".check", nf.EvDrop, model.EndName)
	return m + ".check"
}

// attachPolicyWalk registers the first-packet path: a stepwise scan of
// the policy region (one line of rules per control-state visit, each
// line's address staged ahead for prefetching), then verdict install.
func (f *FW) attachPolicyWalk(b *model.Builder, dataEntry string) string {
	m := f.cfg.Name + "_policy"
	evFwd := b.Event(nf.EvForward)
	evDrop := b.Event(nf.EvDrop)
	evMore := b.Event("policy_more")
	evDone := b.Event("policy_done")
	policy := f.cfg.Policy
	policyBase := f.policy.Base

	b.AddModule(m, f.states.Binding(), model.Layouts{model.KindPerFlow: f.states.Layout})
	b.AddState(m, "walk_start", model.Action{
		Name: "walk_start",
		Kind: model.ActionMatch,
		Cost: 10,
		Fn: func(e *model.Exec) model.EventID {
			e.Cur.Reset()
			e.Cur.Stage = 0
			e.Cur.Addr = policyBase
			return evMore
		},
	})
	b.AddState(m, "walk", model.Action{
		Name:  "walk",
		Kind:  model.ActionMatch,
		Cost:  20, // evaluate up to rulesPerLine rules
		Reads: []model.FieldRef{model.Dynamic(64)},
		Fn: func(e *model.Exec) model.EventID {
			start := int(e.Cur.Stage) * rulesPerLine
			for i := start; i < start+rulesPerLine && i < len(policy); i++ {
				if policy[i].Matches(e.Pkt.Tuple) {
					e.Cur.Ok = policy[i].Allow
					e.Cur.Idx = int32(i)
					return evDone
				}
			}
			if start+rulesPerLine >= len(policy) {
				e.Cur.Ok = false
				e.Cur.Idx = -1
				return evDone
			}
			e.Cur.Stage++
			e.Cur.Addr = policyBase + uint64(e.Cur.Stage)*sim.LineBytes
			return evMore
		},
	})
	b.AddState(m, "install", model.Action{
		Name: "install",
		Kind: model.ActionConfig,
		Cost: 180, // table insert + state init
		Writes: []model.FieldRef{
			model.Fields(model.KindPerFlow, "allowed", "state", "rule_id"),
		},
		Fn: func(e *model.Exec) model.EventID {
			if int(f.next) >= len(f.flows) {
				f.drops++
				return evDrop
			}
			idx := f.next
			if err := f.table.Insert(e.Pkt.Tuple.Hash(), idx); err != nil {
				f.drops++
				return evDrop
			}
			f.next++
			f.flows[idx] = Flow{Allowed: e.Cur.Ok, RuleID: e.Cur.Idx}
			e.FlowIdx = idx
			return evFwd
		},
	})
	b.AddTransition(m+".walk_start", "policy_more", m+".walk")
	b.AddTransition(m+".walk", "policy_more", m+".walk")
	b.AddTransition(m+".walk", "policy_done", m+".install")
	b.AddTransition(m+".install", nf.EvForward, dataEntry)
	b.AddTransition(m+".install", nf.EvDrop, model.EndName)
	return m + ".walk_start"
}

// Program builds the standalone firewall program.
func (f *FW) Program() (*model.Program, error) {
	b := model.NewBuilder(f.cfg.Name)
	entry := f.Attach(b, model.EndName)
	b.SetStart(entry)
	return b.Build()
}
