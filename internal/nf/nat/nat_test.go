package nat

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(mem.NewAddressSpace(), Config{MaxFlows: 0}); err == nil {
		t.Fatal("zero MaxFlows accepted")
	}
}

func TestProgramBuilds(t *testing.T) {
	n, err := New(mem.NewAddressSpace(), Config{MaxFlows: 128})
	if err != nil {
		t.Fatal(err)
	}
	p, err := n.Program()
	if err != nil {
		t.Fatal(err)
	}
	// get_key, check_1, check_2, rewrite, alloc, init + End.
	if p.NumCS() != 7 {
		t.Fatalf("NumCS = %d, want 7", p.NumCS())
	}
}

func TestAddFlowBounds(t *testing.T) {
	n, err := New(mem.NewAddressSpace(), Config{MaxFlows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddFlow(pkt.FiveTuple{SrcIP: 1}, 4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := n.AddFlow(pkt.FiveTuple{SrcIP: 1}, -1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := n.Flow(9); err == nil {
		t.Fatal("out-of-range Flow read accepted")
	}
}

// runOne pushes a single packet through the standalone program under
// RTC and returns the NAT and packet for inspection.
func runOne(t *testing.T, n *NAT, p *pkt.Packet) {
	t.Helper()
	prog, err := n.Program()
	if err != nil {
		t.Fatal(err)
	}
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := &sliceSource{pkts: []*pkt.Packet{p}}
	res, err := w.Run(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 1 {
		t.Fatalf("processed %d packets, want 1", res.Packets)
	}
}

type sliceSource struct {
	pkts []*pkt.Packet
	i    int
}

func (s *sliceSource) Next() *pkt.Packet {
	if s.i >= len(s.pkts) {
		return nil
	}
	p := s.pkts[s.i]
	s.i++
	return p
}

func makePacket(t *testing.T, tuple pkt.FiveTuple) *pkt.Packet {
	t.Helper()
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 1, PacketBytes: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Next()
	// Rebuild for the requested tuple via the generator's first flow.
	p.Tuple = g.FlowTuple(0)
	return p
}

func TestKnownFlowRewrites(t *testing.T) {
	n, err := New(mem.NewAddressSpace(), Config{MaxFlows: 16, NATIP: 0x01020304, PortBase: 5000})
	if err != nil {
		t.Fatal(err)
	}
	p := makePacket(t, pkt.FiveTuple{})
	if err := n.AddFlow(p.Tuple, 3); err != nil {
		t.Fatal(err)
	}
	runOne(t, n, p)
	f, err := n.Flow(3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pkts != 1 {
		t.Fatalf("flow pkts = %d, want 1", f.Pkts)
	}
	if f.Bytes != 128 {
		t.Fatalf("flow bytes = %d, want 128", f.Bytes)
	}
	if p.Tuple.SrcIP != 0x01020304 || p.Tuple.SrcPort != 5003 {
		t.Fatalf("packet not rewritten: %v", p.Tuple)
	}
	// The rewrite must be on the wire, not just in the parsed view.
	q := &pkt.Packet{Data: p.Data}
	if err := q.Parse(); err != nil {
		t.Fatal(err)
	}
	if q.Tuple.SrcIP != 0x01020304 || q.Tuple.SrcPort != 5003 {
		t.Fatalf("wire bytes not rewritten: %v", q.Tuple)
	}
}

func TestUnknownFlowAllocates(t *testing.T) {
	n, err := New(mem.NewAddressSpace(), Config{MaxFlows: 16})
	if err != nil {
		t.Fatal(err)
	}
	p := makePacket(t, pkt.FiveTuple{})
	runOne(t, n, p)
	// The first packet of an unknown flow allocates index 0.
	f, err := n.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pkts != 1 {
		t.Fatalf("allocated flow pkts = %d, want 1", f.Pkts)
	}
	if f.OrigIP == 0 {
		t.Fatal("original tuple not recorded on alloc")
	}
	// A second packet of the same flow must now match, not re-allocate.
	p2 := makePacket(t, pkt.FiveTuple{})
	runOne(t, n, p2)
	f, err = n.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pkts != 2 {
		t.Fatalf("flow pkts after second packet = %d, want 2", f.Pkts)
	}
}

func TestTableFullDrops(t *testing.T) {
	n, err := New(mem.NewAddressSpace(), Config{MaxFlows: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single slot.
	if err := n.AddFlow(pkt.FiveTuple{SrcIP: 99, SrcPort: 9, Proto: 17}, 0); err != nil {
		t.Fatal(err)
	}
	p := makePacket(t, pkt.FiveTuple{})
	runOne(t, n, p) // must complete (dropped), not panic
	if f, _ := n.Flow(0); f.Pkts != 0 {
		t.Fatal("drop path touched the unrelated flow")
	}
}

// TestRTCAndInterleavedAgree drives the same workload through both
// execution models and checks the per-flow accounting is identical —
// the execution model must change performance, never semantics.
func TestRTCAndInterleavedAgree(t *testing.T) {
	const flows, packets = 256, 2048

	build := func() (*NAT, *model.Program, *traffic.FlowGen) {
		as := mem.NewAddressSpace()
		n, err := New(as, Config{MaxFlows: flows})
		if err != nil {
			t.Fatal(err)
		}
		g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: flows, PacketBytes: 64, Order: OrderUniformFor(t), Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < flows; i++ {
			if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
				t.Fatal(err)
			}
		}
		prog, err := n.Program()
		if err != nil {
			t.Fatal(err)
		}
		return n, prog, g
	}

	nRTC, progRTC, genRTC := build()
	core1, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w1, err := rtc.NewWorker(core1, mem.NewAddressSpace(), progRTC, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := w1.Run(genRTC, packets)
	if err != nil {
		t.Fatal(err)
	}

	nIL, progIL, genIL := build()
	core2, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := rt.NewWorker(core2, mem.NewAddressSpace(), progIL, rt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w2.Run(genIL, packets)
	if err != nil {
		t.Fatal(err)
	}

	if r1.Packets != packets || r2.Packets != packets {
		t.Fatalf("packet counts: rtc=%d interleaved=%d", r1.Packets, r2.Packets)
	}
	for i := int32(0); i < flows; i++ {
		f1, _ := nRTC.Flow(i)
		f2, _ := nIL.Flow(i)
		if f1.Pkts != f2.Pkts || f1.Bytes != f2.Bytes {
			t.Fatalf("flow %d diverged: rtc{%d,%d} interleaved{%d,%d}",
				i, f1.Pkts, f1.Bytes, f2.Pkts, f2.Bytes)
		}
	}
}

// OrderUniformFor keeps the test honest about determinism while
// documenting the choice.
func OrderUniformFor(t *testing.T) traffic.FlowOrder {
	t.Helper()
	return traffic.OrderUniform
}
