// Package nat implements the stateful Network Address Translator of
// the paper's evaluation (Figure 11): a five-tuple cuckoo classifier
// followed by a flow-mapper data action that rewrites the source
// address/port from per-flow state, per the paper's Listing 2/4.
//
// The NAT is representative of the "small per-flow state" NF class (LB,
// NM, FW behave alike): one cache line of state, two or three memory
// touches per packet, every one of them a likely miss under high flow
// concurrency — the regime where the interleaved execution model pays.
package nat

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// Config parametrizes a NAT instance.
type Config struct {
	// Name prefixes the NAT's module names (default "nat").
	Name string
	// MaxFlows sizes the per-flow pool and match table.
	MaxFlows int
	// NATIP is the translated source address.
	NATIP uint32
	// PortBase is the first translated source port; flow i maps to
	// PortBase+i (mod the port space above PortBase).
	PortBase uint16
	// States optionally overrides the per-flow state objects — used by
	// the compiler's data-packing pass to place this NAT's record
	// inside a fused SFC pool.
	States *nf.States
}

func (c *Config) setDefaults() error {
	if c.Name == "" {
		c.Name = "nat"
	}
	if c.MaxFlows <= 0 {
		return fmt.Errorf("nat: MaxFlows must be positive, got %d", c.MaxFlows)
	}
	if c.NATIP == 0 {
		c.NATIP = 0xc6336401 // 198.51.100.1 (TEST-NET-2)
	}
	if c.PortBase == 0 {
		c.PortBase = 1024
	}
	return nil
}

// Flow is the NAT's per-flow record. Field order mirrors the natural
// (unpacked) C-struct declaration; the simulated layout built in New
// matches it field for field.
type Flow struct {
	// OrigIP/OrigPort record the pre-translation source (cold).
	OrigIP   uint32
	OrigPort uint16
	// Proto is the flow's protocol (cold).
	Proto uint8
	// MappedIP/MappedPort are the translation target (hot, read).
	MappedIP   uint32
	MappedPort uint16
	// Pkts/Bytes/LastSeen are accounting (hot, written).
	Pkts, Bytes, LastSeen uint64
}

// FlowFields returns the simulated per-flow layout in natural
// (declaration) order.
func FlowFields() []mem.Field {
	return []mem.Field{
		{Name: "orig_ip", Size: 4},
		{Name: "orig_port", Size: 2},
		{Name: "proto", Size: 1},
		{Name: "created", Size: 8},
		{Name: "mapped_ip", Size: 4},
		{Name: "mapped_port", Size: 2},
		{Name: "idle_timeout", Size: 4},
		{Name: "pkts", Size: 8},
		{Name: "bytes", Size: 8},
		{Name: "last_seen", Size: 8},
	}
}

// HotFields returns the fields the per-packet data path accesses — the
// co-access group the data-packing optimizer clusters.
func HotFields() []string {
	return []string{"mapped_ip", "mapped_port", "pkts", "bytes", "last_seen"}
}

// NAT is one translator instance.
type NAT struct {
	cfg    Config
	states *nf.States
	table  *dstruct.Cuckoo
	flows  []Flow
	next   int32
}

// New builds a NAT drawing simulated memory from as.
func New(as *mem.AddressSpace, cfg Config) (*NAT, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	states := cfg.States
	if states == nil {
		var err error
		states, err = nf.BuildStates(as, cfg.Name, FlowFields(), cfg.MaxFlows)
		if err != nil {
			return nil, err
		}
	}
	table, err := dstruct.NewCuckoo(as, cfg.Name+".match", cfg.MaxFlows)
	if err != nil {
		return nil, err
	}
	return &NAT{
		cfg:    cfg,
		states: states,
		table:  table,
		flows:  make([]Flow, cfg.MaxFlows),
	}, nil
}

// Name returns the instance name.
func (n *NAT) Name() string { return n.cfg.Name }

// States exposes the per-flow state objects (for data packing).
func (n *NAT) States() *nf.States { return n.states }

// Flow returns a copy of flow idx's record.
func (n *NAT) Flow(idx int32) (Flow, error) {
	if idx < 0 || int(idx) >= len(n.flows) {
		return Flow{}, fmt.Errorf("nat: flow %d out of range", idx)
	}
	return n.flows[idx], nil
}

// AddFlow pre-populates flow idx for tuple, assigning its translation.
func (n *NAT) AddFlow(tuple pkt.FiveTuple, idx int32) error {
	if idx < 0 || int(idx) >= len(n.flows) {
		return fmt.Errorf("nat: flow index %d out of range [0,%d)", idx, len(n.flows))
	}
	if err := n.table.Insert(tuple.Hash(), idx); err != nil {
		return fmt.Errorf("nat: %w", err)
	}
	n.flows[idx] = Flow{
		OrigIP:     tuple.SrcIP,
		OrigPort:   tuple.SrcPort,
		Proto:      tuple.Proto,
		MappedIP:   n.cfg.NATIP,
		MappedPort: n.mappedPort(idx),
	}
	if idx >= n.next {
		n.next = idx + 1
	}
	return nil
}

// Translate returns tuple as this NAT emits it for flow idx: source
// address and port rewritten to the NAT mapping.
func (n *NAT) Translate(tuple pkt.FiveTuple, idx int32) pkt.FiveTuple {
	tuple.SrcIP = n.cfg.NATIP
	tuple.SrcPort = n.mappedPort(idx)
	return tuple
}

func (n *NAT) mappedPort(idx int32) uint16 {
	space := int32(65536) - int32(n.cfg.PortBase)
	return n.cfg.PortBase + uint16(idx%space)
}

// Attach registers the NAT's classifier and mapper modules on b; the
// packet leaves toward next (another NF's entry or model.EndName). It
// returns the NAT's entry state name.
func (n *NAT) Attach(b *model.Builder, next string) string {
	cls := nf.Classifier{Table: n.table, Module: n.cfg.Name + "_cls"}
	dataEntry := n.AttachData(b, next)
	allocState := n.attachAlloc(b, dataEntry)
	return cls.Attach(b, dataEntry, allocState)
}

// AttachData registers only the flow-mapper data module — the form used
// after redundant-matching removal, when an upstream classifier already
// set the task's FlowIdx. It returns the data module's entry state.
func (n *NAT) AttachData(b *model.Builder, next string) string {
	m := n.cfg.Name + "_mapper"
	evFwd := b.Event(nf.EvForward)
	flows := n.flows

	b.AddModule(m, n.states.Binding(), model.Layouts{model.KindPerFlow: n.states.Layout})
	b.AddState(m, "rewrite", model.Action{
		Name: "rewrite",
		Kind: model.ActionData,
		Cost: 55, // header rewrite + checksum fold
		Reads: []model.FieldRef{
			model.Fields(model.KindPerFlow, "mapped_ip", "mapped_port"),
			nf.PacketHeaderSpan(),
		},
		Writes: []model.FieldRef{
			model.Fields(model.KindPerFlow, "pkts", "bytes", "last_seen"),
			nf.PacketHeaderSpan(),
		},
		Fn: func(e *model.Exec) model.EventID {
			f := &flows[e.FlowIdx]
			// Rewrite errors are impossible for generator frames; a
			// failure here is a harness bug, surfaced via counters.
			_ = e.Pkt.RewriteNAT(f.MappedIP, f.MappedPort)
			f.Pkts++
			f.Bytes += uint64(e.Pkt.WireLen)
			f.LastSeen = e.Core.Now()
			return evFwd
		},
	})
	b.AddTransition(m+".rewrite", nf.EvForward, next)
	return m + ".rewrite"
}

// attachAlloc registers the miss path: a config action that allocates a
// new mapping in the data plane (first packet of an unknown flow) and
// falls through to the rewrite.
func (n *NAT) attachAlloc(b *model.Builder, dataEntry string) string {
	m := n.cfg.Name + "_alloc"
	evFwd := b.Event(nf.EvForward)
	evDrop := b.Event(nf.EvDrop)

	// The miss path is two control states so the Granular Decomposition
	// Property holds: "alloc" decides (and may drop) without touching
	// per-flow state; "init" has the per-flow writes declared and only
	// runs once a flow index exists.
	b.AddModule(m, n.states.Binding(), model.Layouts{model.KindPerFlow: n.states.Layout})
	b.AddState(m, "alloc", model.Action{
		Name: "alloc",
		Kind: model.ActionConfig,
		Cost: 220, // table insert + port allocation
		Fn: func(e *model.Exec) model.EventID {
			if int(n.next) >= len(n.flows) {
				return evDrop
			}
			idx := n.next
			if err := n.AddFlow(e.Pkt.Tuple, idx); err != nil {
				return evDrop
			}
			e.FlowIdx = idx
			return evFwd
		},
	})
	b.AddState(m, "init", model.Action{
		Name: "init",
		Kind: model.ActionConfig,
		Cost: 30,
		Writes: []model.FieldRef{
			model.Fields(model.KindPerFlow, "orig_ip", "orig_port", "proto", "mapped_ip", "mapped_port"),
		},
		Fn: func(e *model.Exec) model.EventID { return evFwd },
	})
	b.AddTransition(m+".alloc", nf.EvForward, m+".init")
	b.AddTransition(m+".alloc", nf.EvDrop, model.EndName)
	b.AddTransition(m+".init", nf.EvForward, dataEntry)
	return m + ".alloc"
}

// Program builds the standalone NAT program.
func (n *NAT) Program() (*model.Program, error) {
	b := model.NewBuilder(n.cfg.Name)
	entry := n.Attach(b, model.EndName)
	b.SetStart(entry)
	return b.Build()
}
