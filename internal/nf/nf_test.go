package nf

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

func TestBuildStates(t *testing.T) {
	as := mem.NewAddressSpace()
	st, err := BuildStates(as, "x", []mem.Field{{Name: "a", Size: 8}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pool.Count() != 16 {
		t.Fatalf("pool count = %d", st.Pool.Count())
	}
	if st.Control.Size != 64 {
		t.Fatalf("control size = %d", st.Control.Size)
	}
	b := st.Binding()
	if b.PerFlow != st.Pool || b.Control != st.Control {
		t.Fatal("Binding mismatch")
	}
	if _, err := BuildStates(as, "bad", nil, 16); err == nil {
		t.Fatal("empty fields accepted")
	}
	if _, err := BuildStates(as, "bad", []mem.Field{{Name: "a", Size: 8}}, 0); err == nil {
		t.Fatal("zero flows accepted")
	}
}

// classifierProgram wires a lone classifier into a minimal program: a
// hit lands in a terminal "sink" state, a miss drops.
func classifierProgram(t *testing.T, table *dstruct.Cuckoo, keyFn func(*pkt.Packet) uint64) (*model.Program, *int32) {
	t.Helper()
	b := model.NewBuilder("cls-test")
	var lastFlow int32 = -1
	evDone := model.EvDone
	b.AddModule("sink", model.Binding{}, nil)
	b.AddState("sink", "take", model.Action{
		Name: "take",
		Fn: func(e *model.Exec) model.EventID {
			lastFlow = e.FlowIdx
			return evDone
		},
	})
	b.AddTransition("sink.take", "done", model.EndName)
	cls := Classifier{Table: table, Module: "cls", KeyFn: keyFn}
	entry := cls.Attach(b, "sink.take", model.EndName)
	b.SetStart(entry)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog, &lastFlow
}

func runOnce(t *testing.T, prog *model.Program, p *pkt.Packet) {
	t.Helper()
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := &model.Exec{Core: core, TempAddr: 0x100}
	e.ResetStream(p, prog.Start(), 0)
	for i := 0; !e.Done; i++ {
		if err := prog.Step(e); err != nil {
			t.Fatal(err)
		}
		if i > 20 {
			t.Fatal("classifier did not terminate")
		}
	}
}

func TestClassifierHitSetsFlowIdx(t *testing.T) {
	as := mem.NewAddressSpace()
	table, err := dstruct.NewCuckoo(as, "t", 64)
	if err != nil {
		t.Fatal(err)
	}
	tuple := pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	if err := table.Insert(tuple.Hash(), 7); err != nil {
		t.Fatal(err)
	}
	prog, lastFlow := classifierProgram(t, table, nil)
	p := &pkt.Packet{Addr: 0x4000, Tuple: tuple, WireLen: 64, Data: make([]byte, 64)}
	runOnce(t, prog, p)
	if *lastFlow != 7 {
		t.Fatalf("FlowIdx = %d, want 7", *lastFlow)
	}
}

func TestClassifierMissEnds(t *testing.T) {
	as := mem.NewAddressSpace()
	table, err := dstruct.NewCuckoo(as, "t", 64)
	if err != nil {
		t.Fatal(err)
	}
	prog, lastFlow := classifierProgram(t, table, nil)
	p := &pkt.Packet{Addr: 0x4000, Tuple: pkt.FiveTuple{SrcIP: 9}, WireLen: 64, Data: make([]byte, 64)}
	runOnce(t, prog, p)
	if *lastFlow != -1 {
		t.Fatalf("miss reached sink with FlowIdx %d", *lastFlow)
	}
}

func TestClassifierCustomKey(t *testing.T) {
	as := mem.NewAddressSpace()
	table, err := dstruct.NewCuckoo(as, "t", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Insert(42, 3); err != nil {
		t.Fatal(err)
	}
	prog, lastFlow := classifierProgram(t, table, func(p *pkt.Packet) uint64 {
		return uint64(p.TEID)
	})
	p := &pkt.Packet{Addr: 0x4000, TEID: 42, WireLen: 64, Data: make([]byte, 64)}
	runOnce(t, prog, p)
	if *lastFlow != 3 {
		t.Fatalf("FlowIdx = %d, want 3 via custom key", *lastFlow)
	}
}

func TestClassifierStagesPrefetchableAddresses(t *testing.T) {
	// After get_key the cursor must point inside the match table so the
	// runtime can prefetch the bucket before check_1 runs.
	as := mem.NewAddressSpace()
	table, err := dstruct.NewCuckoo(as, "t", 64)
	if err != nil {
		t.Fatal(err)
	}
	tuple := pkt.FiveTuple{SrcIP: 5}
	if err := table.Insert(tuple.Hash(), 0); err != nil {
		t.Fatal(err)
	}
	prog, _ := classifierProgram(t, table, nil)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := &model.Exec{Core: core, TempAddr: 0x100}
	e.ResetStream(&pkt.Packet{Addr: 0x4000, Tuple: tuple, Data: make([]byte, 64)}, prog.Start(), 0)
	if err := prog.Step(e); err != nil { // get_key
		t.Fatal(err)
	}
	if !table.Region().Contains(e.Cur.Addr, sim.LineBytes) {
		t.Fatalf("cursor %#x not inside match table after get_key", e.Cur.Addr)
	}
}

func TestPacketHeaderSpan(t *testing.T) {
	ref := PacketHeaderSpan()
	if ref.Explicit == nil {
		t.Fatal("header span must be explicit")
	}
	if ref.Explicit.Size < pkt.EthLen+pkt.IPv4Len {
		t.Fatalf("header span %d too small", ref.Explicit.Size)
	}
}
