package amf

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

func newAMF(t *testing.T, ues int) *AMF {
	t.Helper()
	a, err := New(mem.NewAddressSpace(), Config{MaxUEs: ues})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(mem.NewAddressSpace(), Config{MaxUEs: 0}); err == nil {
		t.Fatal("zero UEs accepted")
	}
}

func TestContextExceedsTwentyLines(t *testing.T) {
	a := newAMF(t, 4)
	if a.ContextLines() < 20 {
		t.Fatalf("UE context = %d lines; the paper requires > 20", a.ContextLines())
	}
}

func TestLayoutOverrideValidated(t *testing.T) {
	// A layout missing context fields must be rejected.
	bad, err := mem.NewLayout(mem.Field{Name: "supi", Size: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mem.NewAddressSpace(), Config{MaxUEs: 4, Layout: bad}); err == nil {
		t.Fatal("incomplete layout accepted")
	}
}

func TestAccessGroupsCoverKnownFields(t *testing.T) {
	known := make(map[string]bool)
	for _, f := range Fields() {
		known[f.Name] = true
	}
	groups := AccessGroups()
	if len(groups) != traffic.NumAMFMessages {
		t.Fatalf("AccessGroups = %d groups, want %d", len(groups), traffic.NumAMFMessages)
	}
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty access group")
		}
		for _, f := range g {
			if !known[f] {
				t.Fatalf("access group references unknown field %q", f)
			}
		}
	}
}

func runProg(t *testing.T, prog *model.Program, src rt.Source, n uint64, interleaved bool) rt.Result {
	t.Helper()
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if interleaved {
		w, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, rt.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(src, n)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(src, n)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHandlesAllMessageTypes(t *testing.T) {
	a := newAMF(t, 64)
	prog, err := a.Program()
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewAMFGen(traffic.AMFConfig{UEs: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res := runProg(t, prog, g, 1000, false)
	if res.Packets != 1000 {
		t.Fatalf("processed %d messages", res.Packets)
	}
	if a.Rejected() != 0 {
		t.Fatalf("rejected %d known-UE messages", a.Rejected())
	}
	var msgs uint64
	for i := int32(0); i < 64; i++ {
		ue, err := a.UEState(i)
		if err != nil {
			t.Fatal(err)
		}
		msgs += ue.Msgs
	}
	if msgs != 1000 {
		t.Fatalf("UE message counters sum to %d, want 1000", msgs)
	}
}

func TestSingleMessageMode(t *testing.T) {
	a := newAMF(t, 32)
	prog, err := a.Program()
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewAMFGen(traffic.AMFConfig{UEs: 32, MsgType: traffic.MsgAuthResponse, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	runProg(t, prog, g, 200, false)
	for i := int32(0); i < 32; i++ {
		ue, _ := a.UEState(i)
		if ue.Msgs > 0 && ue.State != traffic.MsgAuthResponse {
			t.Fatalf("UE %d state = %d after auth-only traffic", i, ue.State)
		}
	}
}

func TestUnknownMessageRejected(t *testing.T) {
	a := newAMF(t, 4)
	prog, err := a.Program()
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewAMFGen(traffic.AMFConfig{UEs: 4, MsgType: traffic.MsgRegistrationRequest, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Next()
	p.MsgType = 99
	src := &oneShot{p: p}
	runProg(t, prog, src, 0, false)
	if a.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", a.Rejected())
	}
}

type oneShot struct {
	p    *pkt.Packet
	sent bool
}

func (s *oneShot) Next() *pkt.Packet {
	if s.sent {
		return nil
	}
	s.sent = true
	return s.p
}

func TestUEStateBounds(t *testing.T) {
	a := newAMF(t, 4)
	if _, err := a.UEState(4); err == nil {
		t.Fatal("out-of-range UE read accepted")
	}
	if _, err := a.UEState(-1); err == nil {
		t.Fatal("negative UE read accepted")
	}
}

// TestExecutionModelsAgree verifies identical message accounting under
// both execution models.
func TestExecutionModelsAgree(t *testing.T) {
	const ues, msgs = 128, 2000
	build := func() (*AMF, *model.Program, *traffic.AMFGen) {
		a := newAMF(t, ues)
		prog, err := a.Program()
		if err != nil {
			t.Fatal(err)
		}
		g, err := traffic.NewAMFGen(traffic.AMFConfig{UEs: ues, Seed: 55})
		if err != nil {
			t.Fatal(err)
		}
		return a, prog, g
	}
	a1, p1, g1 := build()
	runProg(t, p1, g1, msgs, false)
	a2, p2, g2 := build()
	runProg(t, p2, g2, msgs, true)
	for i := int32(0); i < ues; i++ {
		u1, _ := a1.UEState(i)
		u2, _ := a2.UEState(i)
		if u1 != u2 {
			t.Fatalf("UE %d diverged: %+v vs %+v", i, u1, u2)
		}
	}
}
