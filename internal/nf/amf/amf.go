// Package amf implements the 5G Access and Mobility Management
// Function of the paper's state-complexity experiments (Figures 3 and
// 12), modelled on the free5GC/L25GC initial-registration call flow.
//
// The AMF is the paper's example of a *state-intensive* NF: its per-UE
// context exceeds 20 cache lines, and each NAS message type touches a
// different slice of it. The granular decomposition declares, per
// message handler, exactly which context fields are read and written —
// which is what lets the runtime prefetch precisely and what gives the
// data-packing optimization its material (packing the fields each
// handler co-accesses into adjacent lines).
package amf

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// Fields returns the UE context layout in natural (declaration) order:
// the unpacked baseline a straightforward C struct would produce,
// totalling more than 20 cache lines.
func Fields() []mem.Field {
	return []mem.Field{
		{Name: "supi", Size: 16},
		{Name: "suci", Size: 32},
		{Name: "guti", Size: 16},
		{Name: "tmsi", Size: 8},
		{Name: "reg_state", Size: 4},
		{Name: "procedure", Size: 4},
		{Name: "nas_msgs", Size: 8},
		{Name: "last_activity", Size: 8},
		{Name: "rand", Size: 16},
		{Name: "autn", Size: 16},
		{Name: "xres_star", Size: 16},
		{Name: "kausf", Size: 32},
		{Name: "kseaf", Size: 32},
		{Name: "kamf", Size: 32},
		{Name: "knas_int", Size: 16},
		{Name: "knas_enc", Size: 16},
		{Name: "ul_nas_count", Size: 4},
		{Name: "dl_nas_count", Size: 4},
		{Name: "sec_algs", Size: 4},
		{Name: "tai_list", Size: 96},
		{Name: "allowed_nssai", Size: 64},
		{Name: "reg_area_valid", Size: 1},
		{Name: "pdu_ids", Size: 32},
		{Name: "smf_info", Size: 64},
		{Name: "dnn", Size: 32},
		{Name: "last_tai", Size: 16},
		{Name: "cell_id", Size: 8},
		{Name: "ue_radio_cap", Size: 192},
		{Name: "subscription", Size: 256},
		{Name: "am_policy", Size: 64},
		{Name: "event_subs", Size: 128},
		{Name: "sms_context", Size: 64},
	}
}

// handlerSpec describes one NAS message handler: its two data actions'
// read/write field sets over the UE context and their compute costs.
type handlerSpec struct {
	msg        uint8
	name       string
	loadName   string
	loadReads  []string
	loadCost   uint64
	applyName  string
	applyReads []string
	applyWrite []string
	applyCost  uint64
}

// handlers is the initial-registration call flow, message by message.
// The field sets mirror which parts of a real AMF's UE context each
// procedure touches.
func handlers() []handlerSpec {
	return []handlerSpec{
		{
			msg: traffic.MsgRegistrationRequest, name: "reg_req",
			loadName: "identify", loadReads: []string{"suci", "guti", "tmsi"}, loadCost: 90,
			applyName: "start_reg", applyReads: []string{"reg_state"},
			applyWrite: []string{"reg_state", "procedure", "nas_msgs", "last_activity"}, applyCost: 60,
		},
		{
			msg: traffic.MsgAuthResponse, name: "auth_resp",
			loadName: "load_vector", loadReads: []string{"rand", "autn", "xres_star"}, loadCost: 70,
			applyName: "verify_derive", applyReads: []string{"kausf"},
			applyWrite: []string{"kseaf", "kamf", "nas_msgs", "last_activity"}, applyCost: 160,
		},
		{
			msg: traffic.MsgSecModeComplete, name: "sec_mode",
			loadName: "load_sec", loadReads: []string{"kamf", "knas_int", "knas_enc"}, loadCost: 60,
			applyName: "activate", applyReads: []string{"sec_algs"},
			applyWrite: []string{"ul_nas_count", "dl_nas_count", "sec_algs", "nas_msgs", "last_activity"}, applyCost: 110,
		},
		{
			msg: traffic.MsgRegistrationComplete, name: "reg_complete",
			loadName: "finalize", loadReads: []string{"reg_state", "procedure", "subscription"}, loadCost: 80,
			applyName: "build_area", applyReads: []string{"am_policy"},
			applyWrite: []string{"tai_list", "allowed_nssai", "reg_area_valid", "guti", "tmsi", "nas_msgs", "last_activity"}, applyCost: 140,
		},
		{
			msg: traffic.MsgPDUSessionRequest, name: "pdu_req",
			loadName: "load_sub", loadReads: []string{"subscription", "dnn"}, loadCost: 70,
			applyName: "create_session", applyReads: []string{"pdu_ids"},
			applyWrite: []string{"pdu_ids", "smf_info", "nas_msgs", "last_activity"}, applyCost: 130,
		},
	}
}

// AccessGroups returns, per NAS message handler, the set of UE-context
// fields its actions access while processing one message — the
// co-access information the data-packing optimizer consumes. The
// granularity is the handler (load + apply together), because those
// actions run back-to-back on the same packet: their fields are
// contemporaneously accessed in the sense of §VI-B.
func AccessGroups() [][]string {
	var groups [][]string
	for _, h := range handlers() {
		g := append([]string(nil), h.loadReads...)
		g = append(g, h.applyReads...)
		g = append(g, h.applyWrite...)
		groups = append(groups, g)
	}
	return groups
}

// Config parametrizes an AMF instance.
type Config struct {
	// Name prefixes the AMF's module names (default "amf").
	Name string
	// MaxUEs sizes the UE context pool and match table (the paper
	// assumes 2^17).
	MaxUEs int
	// Layout optionally overrides the natural UE-context layout with a
	// packed one (as produced by the compiler's data-packing pass). It
	// must contain exactly the fields of Fields().
	Layout *mem.Layout
}

func (c *Config) setDefaults() error {
	if c.Name == "" {
		c.Name = "amf"
	}
	if c.MaxUEs <= 0 {
		return fmt.Errorf("amf: MaxUEs must be positive, got %d", c.MaxUEs)
	}
	return nil
}

// UE is the Go-side behavioural state of one subscriber (the simulated
// layout carries the full context footprint; only decision-relevant
// fields need Go values).
type UE struct {
	// State tracks the registration FSM (0 deregistered … 4 PDU
	// session active).
	State uint8
	// Msgs counts NAS messages handled.
	Msgs uint64
	// NasCount is the uplink NAS counter.
	NasCount uint32
}

// AMF is one AMF instance.
type AMF struct {
	cfg     Config
	layout  *mem.Layout
	pool    *mem.Pool
	control mem.Region
	table   *dstruct.Cuckoo
	ues     []UE
	// rejected counts messages for unknown UEs.
	rejected uint64
}

// New builds an AMF with all MaxUEs contexts registered (the paper's
// experiments pre-establish the UE population).
func New(as *mem.AddressSpace, cfg Config) (*AMF, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	layout := cfg.Layout
	if layout == nil {
		var err error
		layout, err = mem.NewLayout(Fields()...)
		if err != nil {
			return nil, fmt.Errorf("amf: layout: %w", err)
		}
	}
	for _, f := range Fields() {
		if _, err := layout.Offset(f.Name); err != nil {
			return nil, fmt.Errorf("amf: supplied layout: %w", err)
		}
	}
	pool, err := mem.NewPool(as, cfg.Name+".uectx", layout.Size(), cfg.MaxUEs)
	if err != nil {
		return nil, fmt.Errorf("amf: %w", err)
	}
	table, err := dstruct.NewCuckoo(as, cfg.Name+".match", cfg.MaxUEs)
	if err != nil {
		return nil, fmt.Errorf("amf: %w", err)
	}
	a := &AMF{
		cfg:     cfg,
		layout:  layout,
		pool:    pool,
		control: mem.Region{Name: cfg.Name + ".control", Base: as.Reserve(64, 0), Size: 64},
		table:   table,
		ues:     make([]UE, cfg.MaxUEs),
	}
	for i := 0; i < cfg.MaxUEs; i++ {
		if err := table.Insert(uint64(i)+1, int32(i)); err != nil {
			return nil, fmt.Errorf("amf: registering UE %d: %w", i, err)
		}
	}
	return a, nil
}

// Name returns the instance name.
func (a *AMF) Name() string { return a.cfg.Name }

// ContextLines returns the UE context footprint in cache lines.
func (a *AMF) ContextLines() int { return a.layout.Lines() }

// Layout returns the active UE-context layout.
func (a *AMF) Layout() *mem.Layout { return a.layout }

// Rejected returns the count of messages for unknown UEs.
func (a *AMF) Rejected() uint64 { return a.rejected }

// UEState returns a copy of UE i's behavioural state.
func (a *AMF) UEState(i int32) (UE, error) {
	if i < 0 || int(i) >= len(a.ues) {
		return UE{}, fmt.Errorf("amf: UE %d out of range", i)
	}
	return a.ues[i], nil
}

// Attach registers the AMF's modules on b: UE lookup, the per-message
// dispatch, and one handler module per NAS message type. Completed
// messages exit toward next.
func (a *AMF) Attach(b *model.Builder, next string) string {
	name := a.cfg.Name
	bind := model.Binding{PerFlow: a.pool, Control: a.control}
	layouts := model.Layouts{model.KindPerFlow: a.layout}
	ues := a.ues

	// UE lookup by NGAP UE id.
	cls := nf.Classifier{
		Table:  a.table,
		Module: name + "_ue",
		KeyFn:  func(p *pkt.Packet) uint64 { return uint64(p.UE) + 1 },
	}

	// Dispatch on message type.
	mDisp := name + "_dispatch"
	b.AddModule(mDisp, bind, layouts)
	evByMsg := make(map[uint8]model.EventID, traffic.NumAMFMessages)
	for _, h := range handlers() {
		evByMsg[h.msg] = b.Event("nas_" + h.name)
	}
	evDrop := b.Event(nf.EvDrop)
	b.AddState(mDisp, "dispatch", model.Action{
		Name:  "dispatch",
		Kind:  model.ActionData,
		Cost:  25,
		Reads: []model.FieldRef{nf.PacketHeaderSpan()},
		Fn: func(e *model.Exec) model.EventID {
			if ev, ok := evByMsg[e.Pkt.MsgType]; ok {
				return ev
			}
			a.rejected++
			return evDrop
		},
	})
	b.AddTransition(mDisp+".dispatch", nf.EvDrop, model.EndName)

	// One module per message handler: load → apply.
	evFwd := b.Event(nf.EvForward)
	for _, h := range handlers() {
		h := h
		m := name + "_" + h.name
		b.AddModule(m, bind, layouts)
		b.AddState(m, h.loadName, model.Action{
			Name:  h.loadName,
			Kind:  model.ActionData,
			Cost:  h.loadCost,
			Reads: []model.FieldRef{model.Fields(model.KindPerFlow, h.loadReads...)},
			Fn: func(e *model.Exec) model.EventID {
				// Stage a digest of the loaded fields for the apply
				// step (simulating verification material).
				e.Temp[0] = uint64(e.FlowIdx)<<8 | uint64(h.msg)
				return evFwd
			},
		})
		b.AddState(m, h.applyName, model.Action{
			Name:   h.applyName,
			Kind:   model.ActionData,
			Cost:   h.applyCost,
			Reads:  []model.FieldRef{model.Fields(model.KindPerFlow, h.applyReads...)},
			Writes: []model.FieldRef{model.Fields(model.KindPerFlow, h.applyWrite...)},
			Fn: func(e *model.Exec) model.EventID {
				ue := &ues[e.FlowIdx]
				ue.Msgs++
				ue.NasCount++
				if ue.State < h.msg {
					ue.State = h.msg
				}
				return evFwd
			},
		})
		b.AddTransition(mDisp+".dispatch", "nas_"+h.name, m+"."+h.loadName)
		b.AddTransition(m+"."+h.loadName, nf.EvForward, m+"."+h.applyName)
		b.AddTransition(m+"."+h.applyName, nf.EvForward, next)
	}

	return cls.Attach(b, mDisp+".dispatch", model.EndName)
}

// Program builds the standalone AMF program.
func (a *AMF) Program() (*model.Program, error) {
	b := model.NewBuilder(a.cfg.Name)
	entry := a.Attach(b, model.EndName)
	b.SetStart(entry)
	return b.Build()
}
