// Package nf holds the building blocks shared by the network function
// implementations: the stepwise five-tuple classifier module (the
// granularly decomposed cuckoo lookup of the paper's Listing 1), state
// construction helpers, and the common NFEvent vocabulary.
//
// Each concrete NF (subpackages upf, amf, nat, lb, fw, monitor)
// contributes modules to a model.Builder through an Attach method, so
// NFs compose into service function chains exactly as §IV-B describes:
// the exit transition of one NF becomes the entry of the next.
package nf

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// Shared NFEvent names used across the NF library.
const (
	// EvHashed fires when get_key has staged the first candidate bucket.
	EvHashed = "hashed"
	// EvProbe2 fires when the first bucket missed and the second
	// candidate is staged (check_failure in Listing 1).
	EvProbe2 = "check_failure"
	// EvMatchSuccess fires when the classifier located per-flow state.
	EvMatchSuccess = "MATCH_SUCCESS"
	// EvMatchFail fires when both buckets miss.
	EvMatchFail = "MATCH_FAIL"
	// EvForward fires when a data action passes the packet on.
	EvForward = "forward"
	// EvDrop fires when the packet is discarded.
	EvDrop = "drop"
)

// PacketHeaderSpan is the packet-state span covering the Ethernet, IPv4
// and transport-port bytes the classifiers and rewriters touch.
func PacketHeaderSpan() model.FieldRef {
	return model.Raw(model.KindPacket, model.BasePacket, 0, pkt.EthLen+pkt.IPv4Len+4)
}

// States bundles the simulated-memory objects backing one NF instance.
type States struct {
	// Pool is the per-flow datablock pool.
	Pool *mem.Pool
	// Layout maps per-flow field names to offsets within a pool entry.
	Layout *mem.Layout
	// Control is the NF's control-state region.
	Control mem.Region
}

// BuildStates reserves a per-flow pool for maxFlows records with the
// given natural layout plus a one-line control region.
func BuildStates(as *mem.AddressSpace, name string, fields []mem.Field, maxFlows int) (*States, error) {
	layout, err := mem.NewLayout(fields...)
	if err != nil {
		return nil, fmt.Errorf("nf: %s layout: %w", name, err)
	}
	pool, err := mem.NewPool(as, name+".perflow", layout.Size(), maxFlows)
	if err != nil {
		return nil, fmt.Errorf("nf: %s pool: %w", name, err)
	}
	ctrlBase := as.Reserve(64, 0)
	return &States{
		Pool:    pool,
		Layout:  layout,
		Control: mem.Region{Name: name + ".control", Base: ctrlBase, Size: 64},
	}, nil
}

// Binding returns the model binding for these states.
func (s *States) Binding() model.Binding {
	return model.Binding{PerFlow: s.Pool, Control: s.Control}
}

// Classifier is the granularly decomposed five-tuple cuckoo classifier:
// three control states (get_key, check_1, check_2) that together locate
// the per-flow index for a packet, with every bucket probe's address
// staged one step ahead for prefetching.
type Classifier struct {
	// Table is the backing cuckoo hash table.
	Table *dstruct.Cuckoo
	// Module is the module name the classifier registers under.
	Module string
	// KeyFn extracts the match key from the packet; defaults to the
	// five-tuple hash.
	KeyFn func(p *pkt.Packet) uint64
}

// DefaultKey is the standard five-tuple match key.
func DefaultKey(p *pkt.Packet) uint64 { return p.Tuple.Hash() }

// Attach registers the classifier's module and control states on b.
// On success control transfers to successTarget with the task's
// FlowIdx set; on failure to missTarget. It returns the entry state
// name ("module.get_key").
func (c *Classifier) Attach(b *model.Builder, successTarget, missTarget string) string {
	keyFn := c.KeyFn
	if keyFn == nil {
		keyFn = DefaultKey
	}
	table := c.Table
	m := c.Module

	evHashed := b.Event(EvHashed)
	evProbe2 := b.Event(EvProbe2)
	evSuccess := b.Event(EvMatchSuccess)
	evFail := b.Event(EvMatchFail)

	b.AddModule(m, model.Binding{}, nil)

	b.AddState(m, "get_key", model.Action{
		Name:  "get_key",
		Kind:  model.ActionMatch,
		Cost:  25,
		Reads: []model.FieldRef{PacketHeaderSpan()},
		Fn: func(e *model.Exec) model.EventID {
			e.Key = keyFn(e.Pkt)
			table.Begin(e.Key, &e.Cur)
			return evHashed
		},
	})

	check := func(e *model.Exec) model.EventID {
		done := table.CheckStep(&e.Cur)
		switch {
		case !done:
			return evProbe2
		case e.Cur.Ok:
			e.FlowIdx = e.Cur.Idx
			return evSuccess
		default:
			return evFail
		}
	}
	for _, state := range []string{"check_1", "check_2"} {
		b.AddState(m, state, model.Action{
			Name:  state,
			Kind:  model.ActionMatch,
			Cost:  12,
			Reads: []model.FieldRef{model.Dynamic(64)},
			Fn:    check,
		})
	}

	b.AddTransition(m+".get_key", EvHashed, m+".check_1")
	b.AddTransition(m+".check_1", EvProbe2, m+".check_2")
	b.AddTransition(m+".check_1", EvMatchSuccess, successTarget)
	b.AddTransition(m+".check_1", EvMatchFail, missTarget)
	b.AddTransition(m+".check_2", EvMatchSuccess, successTarget)
	b.AddTransition(m+".check_2", EvMatchFail, missTarget)
	return m + ".get_key"
}
