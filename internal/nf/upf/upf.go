// Package upf implements the 5G User Plane Function of the paper's
// headline experiments (Figures 2, 10, 15), modelled on the L25GC/
// free5GC data path.
//
// Downlink: a granularly decomposed MDI-tree walk maps (UE IP, source
// port) to the PFCP session (per-flow state) and PDR (sub-flow state);
// the FAR is applied and the packet is GTP-U-encapsulated toward the
// RAN, updating usage reporting counters. Every tree node touched is
// one control state with the next node's address staged for prefetch —
// the pointer-chasing workload whose stalls the interleaved execution
// model hides.
//
// Uplink: a cuckoo lookup on the GTP-U TEID locates the session and the
// packet is decapsulated.
package upf

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// FAR action values (3GPP TS 29.244 apply-action, reduced).
const (
	// FARForward tunnels the packet onward.
	FARForward uint8 = iota + 1
	// FARDrop discards the packet.
	FARDrop
	// FARBuffer queues the packet for paging (modelled as drop with a
	// distinct counter).
	FARBuffer
)

// Config parametrizes a UPF instance. Session UE IPs follow the MGW
// workload convention (10.0.0.0 + session index) so the traffic
// package's generators address them directly.
type Config struct {
	// Name prefixes the UPF's module names (default "upf").
	Name string
	// Sessions is the PFCP session count.
	Sessions int
	// PDRsPerSession is the second-level rule count per session; the
	// PDR SDF filters partition the source-port space evenly.
	PDRsPerSession int
	// RANIP is the gNB tunnel endpoint for downlink encapsulation.
	RANIP uint32
	// DropEvery, when n > 0, marks every n-th PDR with FARDrop, giving
	// the control-flow divergence the paper says batch-oriented
	// prefetching handles poorly.
	DropEvery int
}

func (c *Config) setDefaults() error {
	if c.Name == "" {
		c.Name = "upf"
	}
	if c.Sessions <= 0 {
		return fmt.Errorf("upf: Sessions must be positive, got %d", c.Sessions)
	}
	if c.PDRsPerSession <= 0 || c.PDRsPerSession > 65536 {
		return fmt.Errorf("upf: PDRsPerSession must be in [1,65536], got %d", c.PDRsPerSession)
	}
	if c.RANIP == 0 {
		c.RANIP = 0xc0a86401 // 192.168.100.1
	}
	return nil
}

// UEIP returns the UE address of session i.
func (c Config) UEIP(i int) uint32 { return 0x0a000000 + uint32(i) }

// Session is the PFCP session (per-flow) record. The simulated layout
// spans two cache lines, matching the paper's description of UPF
// per-flow state.
type Session struct {
	// SEID is the PFCP session id (cold).
	SEID uint64
	// TEIDOut and RANIP are the downlink tunnel parameters (hot, read).
	TEIDOut uint32
	RANIP   uint32
	// QFI is the QoS flow id stamped on encapsulation (hot, read).
	QFI uint8
	// UsagePkts and UsageBytes are usage-reporting counters (hot,
	// written).
	UsagePkts, UsageBytes uint64
}

func sessionFields() []mem.Field {
	return []mem.Field{
		{Name: "seid", Size: 8},
		{Name: "imsi", Size: 16},
		{Name: "apn", Size: 16},
		{Name: "teid_out", Size: 4},
		{Name: "ran_ip", Size: 4},
		{Name: "qfi", Size: 1},
		{Name: "ambr_ul", Size: 8},
		{Name: "ambr_dl", Size: 8},
		{Name: "usage_pkts", Size: 8},
		{Name: "usage_bytes", Size: 8},
	}
}

// PDR is the packet-detection-rule (sub-flow) record.
type PDR struct {
	// Precedence orders rules (cold).
	Precedence uint32
	// FARAction is the forwarding verdict (hot, read).
	FARAction uint8
	// OuterTEID overrides the session TEID when non-zero (hot, read).
	OuterTEID uint32
	// Pkts and Bytes are per-rule counters (hot, written).
	Pkts, Bytes uint64
}

func pdrFields() []mem.Field {
	return []mem.Field{
		{Name: "precedence", Size: 4},
		{Name: "qer_id", Size: 4},
		{Name: "far_action", Size: 1},
		{Name: "urr_id", Size: 4},
		{Name: "outer_teid", Size: 4},
		{Name: "pkts", Size: 8},
		{Name: "bytes", Size: 8},
	}
}

// UPF is one UPF instance.
type UPF struct {
	cfg      Config
	sessPool *mem.Pool
	pdrPool  *mem.Pool
	sessLay  *mem.Layout
	pdrLay   *mem.Layout
	control  mem.Region
	tree     *dstruct.MDITree
	teids    *dstruct.Cuckoo
	sessions []Session
	pdrs     []PDR
	// drops/buffered count FAR-discarded packets for observability.
	drops, buffered uint64
}

// New builds and fully configures a UPF: session state, PDR state, the
// MDI tree for downlink matching, and the TEID table for uplink.
func New(as *mem.AddressSpace, cfg Config) (*UPF, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	sessLay, err := mem.NewLayout(sessionFields()...)
	if err != nil {
		return nil, fmt.Errorf("upf: session layout: %w", err)
	}
	pdrLay, err := mem.NewLayout(pdrFields()...)
	if err != nil {
		return nil, fmt.Errorf("upf: pdr layout: %w", err)
	}
	sessPool, err := mem.NewPool(as, cfg.Name+".sessions", sessLay.Size(), cfg.Sessions)
	if err != nil {
		return nil, fmt.Errorf("upf: %w", err)
	}
	nPDR := cfg.Sessions * cfg.PDRsPerSession
	pdrPool, err := mem.NewPool(as, cfg.Name+".pdrs", pdrLay.Size(), nPDR)
	if err != nil {
		return nil, fmt.Errorf("upf: %w", err)
	}

	u := &UPF{
		cfg:      cfg,
		sessPool: sessPool,
		pdrPool:  pdrPool,
		sessLay:  sessLay,
		pdrLay:   pdrLay,
		control:  mem.Region{Name: cfg.Name + ".control", Base: as.Reserve(64, 0), Size: 64},
		sessions: make([]Session, cfg.Sessions),
		pdrs:     make([]PDR, nPDR),
	}

	// Populate sessions, PDRs, the MDI tree and the TEID table.
	rules := make([]dstruct.SessionRules, cfg.Sessions)
	span := 65536 / cfg.PDRsPerSession
	u.teids, err = dstruct.NewCuckoo(as, cfg.Name+".teid", cfg.Sessions)
	if err != nil {
		return nil, fmt.Errorf("upf: %w", err)
	}
	for i := 0; i < cfg.Sessions; i++ {
		teid := uint32(0x10000 + i)
		u.sessions[i] = Session{
			SEID:    uint64(i) + 1,
			TEIDOut: teid,
			RANIP:   cfg.RANIP,
			QFI:     9,
		}
		if err := u.teids.Insert(uint64(teid), int32(i)); err != nil {
			return nil, fmt.Errorf("upf: teid table: %w", err)
		}
		sr := dstruct.SessionRules{UEIP: cfg.UEIP(i), Session: int32(i)}
		for p := 0; p < cfg.PDRsPerSession; p++ {
			idx := i*cfg.PDRsPerSession + p
			action := FARForward
			if cfg.DropEvery > 0 && (p+1)%cfg.DropEvery == 0 {
				action = FARDrop
			}
			u.pdrs[idx] = PDR{Precedence: uint32(p), FARAction: action}
			lo := p * span
			hi := lo + span - 1
			if p == cfg.PDRsPerSession-1 {
				hi = 65535
			}
			sr.PDRs = append(sr.PDRs, dstruct.PortRange{Lo: uint16(lo), Hi: uint16(hi), PDR: int32(idx)})
		}
		rules[i] = sr
	}
	u.tree, err = dstruct.NewMDITree(as, cfg.Name+".mdi", rules)
	if err != nil {
		return nil, fmt.Errorf("upf: %w", err)
	}
	return u, nil
}

// Name returns the instance name.
func (u *UPF) Name() string { return u.cfg.Name }

// Tree exposes the MDI tree (for depth diagnostics in reports).
func (u *UPF) Tree() *dstruct.MDITree { return u.tree }

// Session returns a copy of session i's record.
func (u *UPF) Session(i int32) (Session, error) {
	if i < 0 || int(i) >= len(u.sessions) {
		return Session{}, fmt.Errorf("upf: session %d out of range", i)
	}
	return u.sessions[i], nil
}

// PDRRecord returns a copy of PDR idx's record.
func (u *UPF) PDRRecord(idx int32) (PDR, error) {
	if idx < 0 || int(idx) >= len(u.pdrs) {
		return PDR{}, fmt.Errorf("upf: pdr %d out of range", idx)
	}
	return u.pdrs[idx], nil
}

// Drops returns packets discarded by FARDrop (plus unmatched traffic).
func (u *UPF) Drops() uint64 { return u.drops }

// binding returns the module binding shared by the UPF's modules.
func (u *UPF) binding() model.Binding {
	return model.Binding{PerFlow: u.sessPool, SubFlow: u.pdrPool, Control: u.control}
}

func (u *UPF) layouts() model.Layouts {
	return model.Layouts{
		model.KindPerFlow: u.sessLay,
		model.KindSubFlow: u.pdrLay,
	}
}

// AttachDownlink registers the downlink pipeline (match → far → encap)
// on b, exiting toward next. It returns the entry state name.
func (u *UPF) AttachDownlink(b *model.Builder, next string) string {
	mMatch := u.cfg.Name + "_match"
	mFar := u.cfg.Name + "_far"
	mEncap := u.cfg.Name + "_encap"

	evMore := b.Event("walk_more")
	evFound := b.Event("pdr_found")
	evMiss := b.Event(nf.EvMatchFail)
	evFwd := b.Event(nf.EvForward)
	evDrop := b.Event(nf.EvDrop)
	evBuf := b.Event("buffer")

	tree := u.tree
	pdrs := u.pdrs
	sessions := u.sessions

	// Match module: granularly decomposed MDI walk.
	b.AddModule(mMatch, u.binding(), u.layouts())
	b.AddState(mMatch, "walk_start", model.Action{
		Name:  "walk_start",
		Kind:  model.ActionMatch,
		Cost:  20,
		Reads: []model.FieldRef{nf.PacketHeaderSpan()},
		Fn: func(e *model.Exec) model.EventID {
			tree.Begin(&e.Cur, e.Pkt.Tuple.DstIP, e.Pkt.Tuple.SrcPort)
			return evMore
		},
	})
	b.AddState(mMatch, "walk", model.Action{
		Name:  "walk",
		Kind:  model.ActionMatch,
		Cost:  8,
		Reads: []model.FieldRef{model.Dynamic(64)},
		Fn: func(e *model.Exec) model.EventID {
			switch tree.WalkStep(&e.Cur) {
			case dstruct.StepContinue:
				return evMore
			case dstruct.StepFound:
				e.FlowIdx = dstruct.SessionOf(&e.Cur)
				e.SubIdx = e.Cur.Idx
				return evFound
			default:
				u.drops++
				return evMiss
			}
		},
	})
	b.AddTransition(mMatch+".walk_start", "walk_more", mMatch+".walk")
	b.AddTransition(mMatch+".walk", "walk_more", mMatch+".walk")
	b.AddTransition(mMatch+".walk", "pdr_found", mFar+".apply")
	b.AddTransition(mMatch+".walk", nf.EvMatchFail, model.EndName)

	// FAR module: read the matched PDR's verdict.
	b.AddModule(mFar, u.binding(), u.layouts())
	b.AddState(mFar, "apply", model.Action{
		Name: "apply",
		Kind: model.ActionData,
		Cost: 15,
		Reads: []model.FieldRef{
			model.Fields(model.KindSubFlow, "far_action", "outer_teid"),
		},
		Writes: []model.FieldRef{model.Fields(model.KindSubFlow, "pkts", "bytes")},
		Fn: func(e *model.Exec) model.EventID {
			p := &pdrs[e.SubIdx]
			p.Pkts++
			p.Bytes += uint64(e.Pkt.WireLen)
			switch p.FARAction {
			case FARForward:
				return evFwd
			case FARBuffer:
				u.buffered++
				return evBuf
			default:
				u.drops++
				return evDrop
			}
		},
	})
	b.AddTransition(mFar+".apply", nf.EvForward, mEncap+".encap")
	b.AddTransition(mFar+".apply", nf.EvDrop, model.EndName)
	b.AddTransition(mFar+".apply", "buffer", model.EndName)

	// Encap module: GTP-U encapsulation from session state.
	b.AddModule(mEncap, u.binding(), u.layouts())
	b.AddState(mEncap, "encap", model.Action{
		Name: "encap",
		Kind: model.ActionData,
		Cost: 70, // outer header construction + checksum
		Reads: []model.FieldRef{
			model.Fields(model.KindPerFlow, "teid_out", "ran_ip", "qfi"),
		},
		Writes: []model.FieldRef{
			// Outer Ethernet+IPv4+UDP+GTP-U headers prepended to the
			// frame.
			model.Raw(model.KindPacket, model.BasePacket, 0, pkt.EthLen+pkt.IPv4Len+pkt.UDPLen+pkt.GTPULen),
			model.Fields(model.KindPerFlow, "usage_pkts", "usage_bytes"),
		},
		Fn: func(e *model.Exec) model.EventID {
			s := &sessions[e.FlowIdx]
			teid := s.TEIDOut
			if o := pdrs[e.SubIdx].OuterTEID; o != 0 {
				teid = o
			}
			// Write the GTP-U header into the frame's tunnel header
			// slot; errors are impossible for generator frames.
			_ = pkt.EncodeGTPU(e.Pkt.Data[pkt.EthLen+pkt.IPv4Len+pkt.UDPLen:],
				pkt.GTPUHeader{MsgType: 0xFF, Length: uint16(e.Pkt.WireLen), TEID: teid})
			e.Pkt.TEID = teid
			e.Pkt.Tuple.DstIP = s.RANIP
			e.Pkt.WireLen += pkt.EthLen + pkt.IPv4Len + pkt.UDPLen + pkt.GTPULen
			s.UsagePkts++
			s.UsageBytes += uint64(e.Pkt.WireLen)
			return evFwd
		},
	})
	b.AddTransition(mEncap+".encap", nf.EvForward, next)

	return mMatch + ".walk_start"
}

// AttachUplink registers the uplink pipeline (TEID match → decap) on b,
// exiting toward next. It returns the entry state name.
func (u *UPF) AttachUplink(b *model.Builder, next string) string {
	mDecap := u.cfg.Name + "_decap"
	evFwd := b.Event(nf.EvForward)
	sessions := u.sessions

	cls := nf.Classifier{
		Table:  u.teids,
		Module: u.cfg.Name + "_teid",
		KeyFn:  func(p *pkt.Packet) uint64 { return uint64(p.TEID) },
	}

	b.AddModule(mDecap, u.binding(), u.layouts())
	b.AddState(mDecap, "decap", model.Action{
		Name: "decap",
		Kind: model.ActionData,
		Cost: 45,
		Reads: []model.FieldRef{
			model.Fields(model.KindPerFlow, "teid_out", "qfi"),
			nf.PacketHeaderSpan(),
		},
		Writes: []model.FieldRef{
			model.Raw(model.KindPacket, model.BasePacket, 0, pkt.EthLen+pkt.IPv4Len),
			model.Fields(model.KindPerFlow, "usage_pkts", "usage_bytes"),
		},
		Fn: func(e *model.Exec) model.EventID {
			s := &sessions[e.FlowIdx]
			if e.Pkt.WireLen > pkt.GTPULen+pkt.UDPLen+pkt.IPv4Len {
				e.Pkt.WireLen -= pkt.GTPULen + pkt.UDPLen + pkt.IPv4Len
			}
			e.Pkt.TEID = 0
			s.UsagePkts++
			s.UsageBytes += uint64(e.Pkt.WireLen)
			return evFwd
		},
	})
	b.AddTransition(mDecap+".decap", nf.EvForward, next)

	return cls.Attach(b, mDecap+".decap", model.EndName)
}

// DownlinkProgram builds the standalone downlink program.
func (u *UPF) DownlinkProgram() (*model.Program, error) {
	b := model.NewBuilder(u.cfg.Name + "-downlink")
	entry := u.AttachDownlink(b, model.EndName)
	b.SetStart(entry)
	return b.Build()
}

// UplinkProgram builds the standalone uplink program.
func (u *UPF) UplinkProgram() (*model.Program, error) {
	b := model.NewBuilder(u.cfg.Name + "-uplink")
	entry := u.AttachUplink(b, model.EndName)
	b.SetStart(entry)
	return b.Build()
}
