package upf

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

func newUPF(t *testing.T, cfg Config) *UPF {
	t.Helper()
	u, err := New(mem.NewAddressSpace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewValidation(t *testing.T) {
	if _, err := New(mem.NewAddressSpace(), Config{Sessions: 0, PDRsPerSession: 4}); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if _, err := New(mem.NewAddressSpace(), Config{Sessions: 4, PDRsPerSession: 0}); err == nil {
		t.Fatal("zero PDRs accepted")
	}
}

func TestProgramsBuild(t *testing.T) {
	u := newUPF(t, Config{Sessions: 32, PDRsPerSession: 4})
	if _, err := u.DownlinkProgram(); err != nil {
		t.Fatal(err)
	}
	if _, err := u.UplinkProgram(); err != nil {
		t.Fatal(err)
	}
	if u.Tree().Sessions() != 32 {
		t.Fatalf("tree sessions = %d", u.Tree().Sessions())
	}
}

func runRTC(t *testing.T, prog *model.Program, src rt.Source, n uint64) rt.Result {
	t.Helper()
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(src, n)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDownlinkEncapsulates(t *testing.T) {
	u := newUPF(t, Config{Sessions: 16, PDRsPerSession: 4})
	prog, err := u.DownlinkProgram()
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewMGWGen(traffic.MGWConfig{Sessions: 16, PDRs: 4, PacketBytes: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := runRTC(t, prog, g, 500)
	if res.Packets != 500 {
		t.Fatalf("processed %d packets", res.Packets)
	}
	if u.Drops() != 0 {
		t.Fatalf("dropped %d packets with all-forward FARs", u.Drops())
	}
	var total uint64
	for i := int32(0); i < 16; i++ {
		s, err := u.Session(i)
		if err != nil {
			t.Fatal(err)
		}
		total += s.UsagePkts
	}
	if total != 500 {
		t.Fatalf("session usage sums to %d, want 500", total)
	}
	var pdrTotal uint64
	for i := int32(0); i < 64; i++ {
		p, err := u.PDRRecord(i)
		if err != nil {
			t.Fatal(err)
		}
		pdrTotal += p.Pkts
	}
	if pdrTotal != 500 {
		t.Fatalf("PDR counters sum to %d, want 500", pdrTotal)
	}
}

func TestDownlinkPacketGetsTEID(t *testing.T) {
	u := newUPF(t, Config{Sessions: 4, PDRsPerSession: 2})
	prog, err := u.DownlinkProgram()
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewMGWGen(traffic.MGWConfig{Sessions: 4, PDRs: 2, PacketBytes: 128, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Next()
	sessIdx := int32(p.Tuple.DstIP - 0x0a000000)
	src := &oneShot{p: p}
	runRTC(t, prog, src, 0)
	want, err := u.Session(sessIdx)
	if err != nil {
		t.Fatal(err)
	}
	if p.TEID != want.TEIDOut {
		t.Fatalf("packet TEID = %#x, want %#x", p.TEID, want.TEIDOut)
	}
	if p.WireLen != 128+pkt.EthLen+pkt.IPv4Len+pkt.UDPLen+pkt.GTPULen {
		t.Fatalf("WireLen after encap = %d", p.WireLen)
	}
	// The GTP-U header must be on the wire.
	h, err := pkt.DecodeGTPU(p.Data[pkt.EthLen+pkt.IPv4Len+pkt.UDPLen:])
	if err != nil {
		t.Fatal(err)
	}
	if h.TEID != want.TEIDOut || h.MsgType != 0xFF {
		t.Fatalf("wire GTP-U header = %+v", h)
	}
}

type oneShot struct {
	p    *pkt.Packet
	done bool
}

func (s *oneShot) Next() *pkt.Packet {
	if s.done {
		return nil
	}
	s.done = true
	return s.p
}

func TestUnknownUEDropped(t *testing.T) {
	u := newUPF(t, Config{Sessions: 4, PDRsPerSession: 2})
	prog, err := u.DownlinkProgram()
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 1, PacketBytes: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Next() // dst IP is not a UE address
	runRTC(t, prog, &oneShot{p: p}, 0)
	if u.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", u.Drops())
	}
}

func TestFARDrop(t *testing.T) {
	u := newUPF(t, Config{Sessions: 2, PDRsPerSession: 4, DropEvery: 2})
	prog, err := u.DownlinkProgram()
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewMGWGen(traffic.MGWConfig{Sessions: 2, PDRs: 4, PacketBytes: 128, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	runRTC(t, prog, g, 400)
	if u.Drops() == 0 {
		t.Fatal("DropEvery=2 produced no drops")
	}
	// Dropped packets must not update session usage.
	var usage uint64
	for i := int32(0); i < 2; i++ {
		s, _ := u.Session(i)
		usage += s.UsagePkts
	}
	if usage+u.Drops() != 400 {
		t.Fatalf("usage %d + drops %d != 400", usage, u.Drops())
	}
}

func TestUplinkDecap(t *testing.T) {
	u := newUPF(t, Config{Sessions: 8, PDRsPerSession: 2})
	prog, err := u.UplinkProgram()
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 8, PacketBytes: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Next()
	p.TEID = 0x10003 // session 3's tunnel
	runRTC(t, prog, &oneShot{p: p}, 0)
	s, err := u.Session(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.UsagePkts != 1 {
		t.Fatalf("uplink usage = %d, want 1", s.UsagePkts)
	}
	if p.TEID != 0 {
		t.Fatal("TEID not cleared after decap")
	}
	if p.WireLen >= 256 {
		t.Fatalf("WireLen after decap = %d, want < 256", p.WireLen)
	}
}

func TestSessionAndPDRBounds(t *testing.T) {
	u := newUPF(t, Config{Sessions: 2, PDRsPerSession: 2})
	if _, err := u.Session(2); err == nil {
		t.Fatal("out-of-range session read accepted")
	}
	if _, err := u.PDRRecord(4); err == nil {
		t.Fatal("out-of-range PDR read accepted")
	}
}

// TestExecutionModelsAgree verifies both runtimes produce identical UPF
// accounting on the same workload.
func TestExecutionModelsAgree(t *testing.T) {
	const sessions, packets = 64, 3000
	build := func() (*UPF, *model.Program, *traffic.MGWGen) {
		u := newUPF(t, Config{Sessions: sessions, PDRsPerSession: 8})
		prog, err := u.DownlinkProgram()
		if err != nil {
			t.Fatal(err)
		}
		g, err := traffic.NewMGWGen(traffic.MGWConfig{Sessions: sessions, PDRs: 8, PacketBytes: 64, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return u, prog, g
	}

	u1, p1, g1 := build()
	runRTC(t, p1, g1, packets)

	u2, p2, g2 := build()
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rt.NewWorker(core, mem.NewAddressSpace(), p2, rt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(g2, packets); err != nil {
		t.Fatal(err)
	}

	for i := int32(0); i < sessions; i++ {
		s1, _ := u1.Session(i)
		s2, _ := u2.Session(i)
		if s1.UsagePkts != s2.UsagePkts || s1.UsageBytes != s2.UsageBytes {
			t.Fatalf("session %d diverged: rtc{%d,%d} il{%d,%d}",
				i, s1.UsagePkts, s1.UsageBytes, s2.UsagePkts, s2.UsageBytes)
		}
	}
}
