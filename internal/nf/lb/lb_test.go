package lb

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(mem.NewAddressSpace(), Config{MaxFlows: 0}); err == nil {
		t.Fatal("zero MaxFlows accepted")
	}
}

func run(t *testing.T, l *LB, src rtcSource, n uint64) {
	t.Helper()
	prog, err := l.Program()
	if err != nil {
		t.Fatal(err)
	}
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(src, n); err != nil {
		t.Fatal(err)
	}
}

type rtcSource interface{ Next() *pkt.Packet }

func TestSteeringIsFlowConsistent(t *testing.T) {
	l, err := New(mem.NewAddressSpace(), Config{MaxFlows: 64, Backends: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 64, PacketBytes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := l.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	run(t, l, g, 500)
	var pkts uint64
	for i := int32(0); i < 64; i++ {
		f, err := l.Flow(i)
		if err != nil {
			t.Fatal(err)
		}
		pkts += f.Pkts
		if f.Pkts > 0 && (f.Backend < 0 || int(f.Backend) >= 4) {
			t.Fatalf("flow %d bound to invalid backend %d", i, f.Backend)
		}
	}
	if pkts != 500 {
		t.Fatalf("flow counters sum to %d, want 500", pkts)
	}
}

func TestNewFlowPicksBackend(t *testing.T) {
	l, err := New(mem.NewAddressSpace(), Config{MaxFlows: 8, Backends: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 1, PacketBytes: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	run(t, l, traffic.NewLimited(g, 3), 0)
	f, err := l.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pkts != 3 {
		t.Fatalf("dataplane-allocated flow pkts = %d, want 3", f.Pkts)
	}
	if f.BackendIP == 0 {
		t.Fatal("no backend bound on allocation")
	}
}

func TestAddFlowBounds(t *testing.T) {
	l, err := New(mem.NewAddressSpace(), Config{MaxFlows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AddFlow(pkt.FiveTuple{}, 2); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := l.Flow(5); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if l.Name() != "lb" {
		t.Fatalf("Name = %q", l.Name())
	}
	if l.States() == nil {
		t.Fatal("States() nil")
	}
}

func TestBackendDeterministic(t *testing.T) {
	l, err := New(mem.NewAddressSpace(), Config{MaxFlows: 4, Backends: 8})
	if err != nil {
		t.Fatal(err)
	}
	tu := pkt.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	if l.backendFor(tu) != l.backendFor(tu) {
		t.Fatal("backend pick not deterministic")
	}
}
