// Package lb implements the stateful Layer-4 load balancer of the
// paper's SFC experiments: a five-tuple classifier plus a per-flow
// backend binding (connection consistency à la Maglev), with backend
// selection for new flows hashed over a control-state backend table.
package lb

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// Config parametrizes a load balancer instance.
type Config struct {
	// Name prefixes the LB's module names (default "lb").
	Name string
	// MaxFlows sizes the per-flow pool and match table.
	MaxFlows int
	// Backends is the virtual-IP backend pool size.
	Backends int
	// States optionally overrides the per-flow state objects — used by
	// the compiler's data-packing pass for fused SFC pools.
	States *nf.States
}

func (c *Config) setDefaults() error {
	if c.Name == "" {
		c.Name = "lb"
	}
	if c.MaxFlows <= 0 {
		return fmt.Errorf("lb: MaxFlows must be positive, got %d", c.MaxFlows)
	}
	if c.Backends <= 0 {
		c.Backends = 16
	}
	return nil
}

// Flow is the LB's per-flow record.
type Flow struct {
	// Backend is the bound backend index (hot, read).
	Backend int32
	// BackendIP/BackendPort cache the rewrite target (hot, read).
	BackendIP   uint32
	BackendPort uint16
	// Pkts counts packets steered (hot, written).
	Pkts uint64
}

// FlowFields returns the simulated per-flow layout in natural order.
func FlowFields() []mem.Field {
	return []mem.Field{
		{Name: "backend", Size: 4},
		{Name: "created", Size: 8},
		{Name: "backend_ip", Size: 4},
		{Name: "backend_port", Size: 2},
		{Name: "vip", Size: 4},
		{Name: "pkts", Size: 8},
	}
}

// HotFields returns the per-packet co-access group for data packing.
func HotFields() []string {
	return []string{"backend_ip", "backend_port", "pkts"}
}

// LB is one load balancer instance.
type LB struct {
	cfg    Config
	states *nf.States
	table  *dstruct.Cuckoo
	flows  []Flow
	next   int32
}

// New builds an LB drawing simulated memory from as.
func New(as *mem.AddressSpace, cfg Config) (*LB, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	states := cfg.States
	if states == nil {
		var err error
		states, err = nf.BuildStates(as, cfg.Name, FlowFields(), cfg.MaxFlows)
		if err != nil {
			return nil, err
		}
	}
	table, err := dstruct.NewCuckoo(as, cfg.Name+".match", cfg.MaxFlows)
	if err != nil {
		return nil, err
	}
	return &LB{cfg: cfg, states: states, table: table, flows: make([]Flow, cfg.MaxFlows)}, nil
}

// Name returns the instance name.
func (l *LB) Name() string { return l.cfg.Name }

// States exposes the per-flow state objects (for data packing).
func (l *LB) States() *nf.States { return l.states }

// Flow returns a copy of flow idx's record.
func (l *LB) Flow(idx int32) (Flow, error) {
	if idx < 0 || int(idx) >= len(l.flows) {
		return Flow{}, fmt.Errorf("lb: flow %d out of range", idx)
	}
	return l.flows[idx], nil
}

// backendFor deterministically picks a backend for a tuple.
func (l *LB) backendFor(tuple pkt.FiveTuple) int32 {
	return int32(tuple.Hash() % uint64(l.cfg.Backends))
}

// AddFlow pre-populates flow idx for tuple with its backend binding.
func (l *LB) AddFlow(tuple pkt.FiveTuple, idx int32) error {
	if idx < 0 || int(idx) >= len(l.flows) {
		return fmt.Errorf("lb: flow index %d out of range [0,%d)", idx, len(l.flows))
	}
	if err := l.table.Insert(tuple.Hash(), idx); err != nil {
		return fmt.Errorf("lb: %w", err)
	}
	be := l.backendFor(tuple)
	l.flows[idx] = Flow{
		Backend:     be,
		BackendIP:   0x0a640000 + uint32(be), // 10.100.0.x pool
		BackendPort: 8080,
	}
	if idx >= l.next {
		l.next = idx + 1
	}
	return nil
}

// Translate returns tuple as the LB emits it for flow idx: destination
// rewritten to the bound backend.
func (l *LB) Translate(tuple pkt.FiveTuple, idx int32) pkt.FiveTuple {
	if idx >= 0 && int(idx) < len(l.flows) {
		tuple.DstIP = l.flows[idx].BackendIP
		tuple.DstPort = l.flows[idx].BackendPort
	}
	return tuple
}

// Attach registers the LB's modules on b, exiting toward next.
func (l *LB) Attach(b *model.Builder, next string) string {
	cls := nf.Classifier{Table: l.table, Module: l.cfg.Name + "_cls"}
	dataEntry := l.AttachData(b, next)
	allocEntry := l.attachAlloc(b, dataEntry)
	return cls.Attach(b, dataEntry, allocEntry)
}

// AttachData registers only the steering data action (post-MR form).
func (l *LB) AttachData(b *model.Builder, next string) string {
	m := l.cfg.Name + "_steer"
	evFwd := b.Event(nf.EvForward)
	flows := l.flows

	b.AddModule(m, l.states.Binding(), model.Layouts{model.KindPerFlow: l.states.Layout})
	b.AddState(m, "steer", model.Action{
		Name: "steer",
		Kind: model.ActionData,
		Cost: 40,
		Reads: []model.FieldRef{
			model.Fields(model.KindPerFlow, "backend_ip", "backend_port"),
			nf.PacketHeaderSpan(),
		},
		Writes: []model.FieldRef{
			model.Fields(model.KindPerFlow, "pkts"),
			nf.PacketHeaderSpan(),
		},
		Fn: func(e *model.Exec) model.EventID {
			f := &flows[e.FlowIdx]
			f.Pkts++
			// DNAT toward the bound backend (dst rewrite modelled via
			// the tuple; the charged spans cover the header bytes).
			e.Pkt.Tuple.DstIP = f.BackendIP
			e.Pkt.Tuple.DstPort = f.BackendPort
			return evFwd
		},
	})
	b.AddTransition(m+".steer", nf.EvForward, next)
	return m + ".steer"
}

// attachAlloc registers the new-flow path: consistent backend pick then
// per-flow binding initialization.
func (l *LB) attachAlloc(b *model.Builder, dataEntry string) string {
	m := l.cfg.Name + "_alloc"
	evFwd := b.Event(nf.EvForward)
	evDrop := b.Event(nf.EvDrop)

	b.AddModule(m, l.states.Binding(), model.Layouts{model.KindPerFlow: l.states.Layout})
	b.AddState(m, "pick", model.Action{
		Name: "pick",
		Kind: model.ActionConfig,
		Cost: 120,
		// Reads the backend table in control state (one line).
		Reads: []model.FieldRef{model.Raw(model.KindControl, model.BaseControl, 0, 64)},
		Fn: func(e *model.Exec) model.EventID {
			if int(l.next) >= len(l.flows) {
				return evDrop
			}
			idx := l.next
			if err := l.AddFlow(e.Pkt.Tuple, idx); err != nil {
				return evDrop
			}
			e.FlowIdx = idx
			return evFwd
		},
	})
	b.AddState(m, "bind", model.Action{
		Name: "bind",
		Kind: model.ActionConfig,
		Cost: 25,
		Writes: []model.FieldRef{
			model.Fields(model.KindPerFlow, "backend", "backend_ip", "backend_port", "vip"),
		},
		Fn: func(e *model.Exec) model.EventID { return evFwd },
	})
	b.AddTransition(m+".pick", nf.EvForward, m+".bind")
	b.AddTransition(m+".pick", nf.EvDrop, model.EndName)
	b.AddTransition(m+".bind", nf.EvForward, dataEntry)
	return m + ".pick"
}

// Program builds the standalone LB program.
func (l *LB) Program() (*model.Program, error) {
	b := model.NewBuilder(l.cfg.Name)
	entry := l.Attach(b, model.EndName)
	b.SetStart(entry)
	return b.Build()
}
