package monitor

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

func run(t *testing.T, m *Monitor, src interface{ Next() *pkt.Packet }, n uint64) {
	t.Helper()
	prog, err := m.Program()
	if err != nil {
		t.Fatal(err)
	}
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(src, n); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(mem.NewAddressSpace(), Config{MaxFlows: 0}); err == nil {
		t.Fatal("zero MaxFlows accepted")
	}
}

func TestAccounting(t *testing.T) {
	m, err := New(mem.NewAddressSpace(), Config{MaxFlows: 16})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 16, PacketBytes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := m.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	run(t, m, g, 400)
	tot := m.Totals()
	if tot.Pkts != 400 {
		t.Fatalf("total pkts = %d, want 400", tot.Pkts)
	}
	if tot.Bytes != 400*64 {
		t.Fatalf("total bytes = %d, want %d", tot.Bytes, 400*64)
	}
	var perFlow, small uint64
	for i := int32(0); i < 16; i++ {
		f, err := m.Flow(i)
		if err != nil {
			t.Fatal(err)
		}
		perFlow += f.Pkts
		small += f.SmallPkts
	}
	if perFlow != 400 {
		t.Fatalf("per-flow pkts sum to %d", perFlow)
	}
	if small != 400 {
		t.Fatalf("64B packets must all count as small: %d", small)
	}
}

func TestLargePacketsNotSmall(t *testing.T) {
	m, err := New(mem.NewAddressSpace(), Config{MaxFlows: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 4, PacketBytes: 1024, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	run(t, m, g, 40)
	for i := int32(0); i < 4; i++ {
		f, _ := m.Flow(i)
		if f.SmallPkts != 0 {
			t.Fatalf("flow %d counted %d small packets for 1024B traffic", i, f.SmallPkts)
		}
	}
}

func TestUnseenFlowRegisters(t *testing.T) {
	m, err := New(mem.NewAddressSpace(), Config{MaxFlows: 8})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 1, PacketBytes: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	run(t, m, traffic.NewLimited(g, 5), 0)
	f, err := m.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pkts != 5 {
		t.Fatalf("auto-registered flow pkts = %d, want 5", f.Pkts)
	}
}

func TestBounds(t *testing.T) {
	m, err := New(mem.NewAddressSpace(), Config{MaxFlows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFlow(pkt.FiveTuple{}, 7); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := m.Flow(7); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if m.Name() != "nm" || m.States() == nil {
		t.Fatal("accessors broken")
	}
}
