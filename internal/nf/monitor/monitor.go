// Package monitor implements the network monitor (NM) of the paper's
// SFC experiments: per-flow traffic accounting plus aggregate counters
// in control state. It is write-heavy — every packet updates several
// per-flow counters — which exercises the write-allocate path of the
// cache model.
package monitor

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// Config parametrizes a monitor instance.
type Config struct {
	// Name prefixes the monitor's module names (default "nm").
	Name string
	// MaxFlows sizes the per-flow pool and match table.
	MaxFlows int
	// States optionally overrides the per-flow state objects — used by
	// the compiler's data-packing pass for fused SFC pools.
	States *nf.States
}

func (c *Config) setDefaults() error {
	if c.Name == "" {
		c.Name = "nm"
	}
	if c.MaxFlows <= 0 {
		return fmt.Errorf("monitor: MaxFlows must be positive, got %d", c.MaxFlows)
	}
	return nil
}

// Flow is the monitor's per-flow record.
type Flow struct {
	// Pkts and Bytes are the per-flow totals (hot, written).
	Pkts, Bytes uint64
	// SmallPkts counts packets under 128B, a simple size histogram bin.
	SmallPkts uint64
	// LastSeen is the last update cycle (hot, written).
	LastSeen uint64
}

// FlowFields returns the simulated per-flow layout in natural order.
func FlowFields() []mem.Field {
	return []mem.Field{
		{Name: "pkts", Size: 8},
		{Name: "first_seen", Size: 8},
		{Name: "bytes", Size: 8},
		{Name: "flags_seen", Size: 1},
		{Name: "small_pkts", Size: 8},
		{Name: "last_seen", Size: 8},
	}
}

// HotFields returns the per-packet co-access group for data packing.
func HotFields() []string {
	return []string{"pkts", "bytes", "small_pkts", "last_seen"}
}

// Totals are the monitor's aggregate (control-state) counters.
type Totals struct {
	// Pkts and Bytes are the instance-wide totals.
	Pkts, Bytes uint64
}

// Monitor is one monitor instance.
type Monitor struct {
	cfg    Config
	states *nf.States
	table  *dstruct.Cuckoo
	flows  []Flow
	totals Totals
	next   int32
}

// New builds a monitor drawing simulated memory from as.
func New(as *mem.AddressSpace, cfg Config) (*Monitor, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	states := cfg.States
	if states == nil {
		var err error
		states, err = nf.BuildStates(as, cfg.Name, FlowFields(), cfg.MaxFlows)
		if err != nil {
			return nil, err
		}
	}
	table, err := dstruct.NewCuckoo(as, cfg.Name+".match", cfg.MaxFlows)
	if err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg, states: states, table: table, flows: make([]Flow, cfg.MaxFlows)}, nil
}

// Name returns the instance name.
func (m *Monitor) Name() string { return m.cfg.Name }

// States exposes the per-flow state objects (for data packing).
func (m *Monitor) States() *nf.States { return m.states }

// Totals returns the aggregate counters.
func (m *Monitor) Totals() Totals { return m.totals }

// Flow returns a copy of flow idx's record.
func (m *Monitor) Flow(idx int32) (Flow, error) {
	if idx < 0 || int(idx) >= len(m.flows) {
		return Flow{}, fmt.Errorf("monitor: flow %d out of range", idx)
	}
	return m.flows[idx], nil
}

// AddFlow pre-registers flow idx for tuple.
func (m *Monitor) AddFlow(tuple pkt.FiveTuple, idx int32) error {
	if idx < 0 || int(idx) >= len(m.flows) {
		return fmt.Errorf("monitor: flow index %d out of range [0,%d)", idx, len(m.flows))
	}
	if err := m.table.Insert(tuple.Hash(), idx); err != nil {
		return fmt.Errorf("monitor: %w", err)
	}
	m.flows[idx] = Flow{}
	if idx >= m.next {
		m.next = idx + 1
	}
	return nil
}

// Translate returns tuple unchanged: the monitor does not rewrite.
func (m *Monitor) Translate(tuple pkt.FiveTuple, _ int32) pkt.FiveTuple { return tuple }

// Attach registers the monitor's modules on b, exiting toward next.
func (m *Monitor) Attach(b *model.Builder, next string) string {
	cls := nf.Classifier{Table: m.table, Module: m.cfg.Name + "_cls"}
	dataEntry := m.AttachData(b, next)
	allocEntry := m.attachAlloc(b, dataEntry)
	return cls.Attach(b, dataEntry, allocEntry)
}

// AttachData registers only the accounting action (post-MR form).
func (m *Monitor) AttachData(b *model.Builder, next string) string {
	mod := m.cfg.Name + "_acct"
	evFwd := b.Event(nf.EvForward)
	flows := m.flows

	b.AddModule(mod, m.states.Binding(), model.Layouts{model.KindPerFlow: m.states.Layout})
	b.AddState(mod, "update", model.Action{
		Name: "update",
		Kind: model.ActionData,
		Cost: 35,
		Reads: []model.FieldRef{
			nf.PacketHeaderSpan(),
		},
		Writes: []model.FieldRef{
			model.Fields(model.KindPerFlow, "pkts", "bytes", "small_pkts", "last_seen"),
			// Aggregate counters live in control state.
			model.Raw(model.KindControl, model.BaseControl, 0, 16),
		},
		Fn: func(e *model.Exec) model.EventID {
			fl := &flows[e.FlowIdx]
			fl.Pkts++
			fl.Bytes += uint64(e.Pkt.WireLen)
			if e.Pkt.WireLen < 128 {
				fl.SmallPkts++
			}
			fl.LastSeen = e.Core.Now()
			m.totals.Pkts++
			m.totals.Bytes += uint64(e.Pkt.WireLen)
			return evFwd
		},
	})
	b.AddTransition(mod+".update", nf.EvForward, next)
	return mod + ".update"
}

// attachAlloc registers the unseen-flow path (first packet registers
// the flow, then falls through to accounting).
func (m *Monitor) attachAlloc(b *model.Builder, dataEntry string) string {
	mod := m.cfg.Name + "_alloc"
	evFwd := b.Event(nf.EvForward)
	evDrop := b.Event(nf.EvDrop)

	b.AddModule(mod, m.states.Binding(), model.Layouts{model.KindPerFlow: m.states.Layout})
	b.AddState(mod, "register", model.Action{
		Name: "register",
		Kind: model.ActionConfig,
		Cost: 160,
		Fn: func(e *model.Exec) model.EventID {
			if int(m.next) >= len(m.flows) {
				return evDrop
			}
			idx := m.next
			if err := m.AddFlow(e.Pkt.Tuple, idx); err != nil {
				return evDrop
			}
			e.FlowIdx = idx
			return evFwd
		},
	})
	b.AddState(mod, "init", model.Action{
		Name:   "init",
		Kind:   model.ActionConfig,
		Cost:   20,
		Writes: []model.FieldRef{model.Fields(model.KindPerFlow, "first_seen", "flags_seen")},
		Fn:     func(e *model.Exec) model.EventID { return evFwd },
	})
	b.AddTransition(mod+".register", nf.EvForward, mod+".init")
	b.AddTransition(mod+".register", nf.EvDrop, model.EndName)
	b.AddTransition(mod+".init", nf.EvForward, dataEntry)
	return mod + ".register"
}

// Program builds the standalone monitor program.
func (m *Monitor) Program() (*model.Program, error) {
	b := model.NewBuilder(m.cfg.Name)
	entry := m.Attach(b, model.EndName)
	b.SetStart(entry)
	return b.Build()
}
