package director

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gunfu-nfv/gunfu/internal/faultnet"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/rt"
)

// waitGoroutines polls until the goroutine count drains to at most
// want, failing with a full stack dump if it doesn't within the
// deadline — the no-leak assertion of the chaos soak.
func waitGoroutines(t *testing.T, want int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%d goroutines still alive (want <= %d) after %v:\n%s", n, want, within, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosSoak is the control-plane fault drill: a director and two
// reconnecting agents talk exclusively through faultnet connections
// that reset mid-frame, chunk writes, and insert latency. Every
// DeployAll must end in either correct results or a typed error
// attributing the failure to an agent — never a hang, never a wrong
// count — and once the cluster is torn down no goroutine may linger.
// The three seeds are fixed so CI reruns the same fault scripts.
func TestChaosSoak(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { chaosSoak(t, seed) })
	}
}

func chaosSoak(t *testing.T, seed int64) {
	before := runtime.NumGoroutine()

	inj, err := faultnet.New(faultnet.Config{
		Seed:          seed,
		CutProb:       0.75,
		CutAfterMin:   600, // past the register+deploy handshake...
		CutAfterMax:   6000,
		MaxWriteChunk: 7, // ...and every frame arrives shredded
		Latency:       500 * time.Microsecond,
		LatencyEvery:  16,
	})
	if err != nil {
		t.Fatal(err)
	}

	d := New()
	d.Retries = 5
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.ListenOn(inj.WrapListener(ln))
	addr := ln.Addr().String()

	mon := NewMonitor()
	watcher := NewWatcher(SLO{MinMpps: 1e6}) // impossible: every window breaches
	d.SetStatsHandler(func(r StatsReport) {
		mon.Observe(r)
		watcher.Observe(r)
	})
	d.SetLivenessHandler(mon.SetLive)
	if err := d.EnableLiveness(100*time.Millisecond, 5); err != nil {
		t.Fatal(err)
	}

	names := []string{"chaos-a", "chaos-b"}
	var wg sync.WaitGroup
	agents := make([]*Agent, 0, len(names))
	for i, name := range names {
		a, err := NewAgent(name, DefaultRegistry())
		if err != nil {
			t.Fatal(err)
		}
		a.Dial = func(addr string) (net.Conn, error) { return inj.Dial("tcp", addr) }
		agents = append(agents, a)
		bo := Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.2, Seed: seed*10 + int64(i) + 1}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Serve(addr, bo); err != nil {
				t.Errorf("agent %s: %v", name, err)
			}
		}()
	}

	spec := DeploySpec{
		NF: "nat", Flows: 256, Packets: 1000, PacketBytes: 64,
		Tasks: 4, Seed: 11, StatsEvery: 300, Latency: true,
	}
	const rounds = 4
	fullOK := 0
	for round := 0; round < rounds; round++ {
		if err := d.WaitAgents(len(names), 15*time.Second); err != nil {
			t.Fatal(err)
		}
		results, err := d.DeployAll(spec, 30*time.Second)
		for _, r := range results {
			if r.Packets != spec.Packets {
				t.Fatalf("round %d: agent %s returned %d packets, want %d", round, r.Agent, r.Packets, spec.Packets)
			}
		}
		if err == nil {
			if len(results) == len(names) {
				fullOK++
				// Results just arrived, so both agents were heard moments
				// ago: the liveness checker must agree they're alive.
				for _, name := range names {
					if !d.Alive(name) {
						t.Fatalf("round %d: agent %s marked dead right after replying", round, name)
					}
				}
			}
			continue
		}
		var dae *DeployAllError
		if !errors.As(err, &dae) {
			// The only other legal failure: both agents were between
			// connections when DeployAll sampled.
			if !strings.Contains(err.Error(), "no agents") {
				t.Fatalf("round %d: untyped DeployAll error: %v", round, err)
			}
			continue
		}
		for agent, aerr := range dae.Errors {
			var ae *AgentError
			if !errors.As(aerr, &ae) || ae.Agent != agent {
				t.Fatalf("round %d: unattributed failure for %s: %v", round, agent, aerr)
			}
		}
	}
	if fullOK == 0 {
		t.Fatalf("no round fully succeeded across %d rounds (seed %d)", rounds, seed)
	}

	// The chaos was real: connections were wrapped and faults delivered.
	st := inj.Stats()
	if st.Conns < int64(len(names))+1 || st.SplitWrites == 0 {
		t.Fatalf("injector idle: %+v", st)
	}
	t.Logf("seed %d: %d conns, %d cuts, %d split writes, %d delayed ops, %d/%d clean rounds",
		seed, st.Conns, st.Cuts, st.SplitWrites, st.DelayedOps, fullOK, rounds)

	// Telemetry survived the churn: the table renders every agent and
	// the cluster histogram only ever shrinks to live runs, never
	// corrupts.
	if rows := mon.Table().NumRows(); rows < len(names) {
		t.Fatalf("monitor rows = %d", rows)
	}
	if mon.ClusterLatency() == nil {
		t.Fatal("cluster latency nil")
	}

	for _, a := range agents {
		a.Stop()
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	waitGoroutines(t, before+2, 5*time.Second)
}

// TestAgentReconnect severs a live agent's connection and checks that
// Serve's backoff redial plus the director's deploy retries ride it
// out: the deploy issued during the outage still returns the result.
func TestAgentReconnect(t *testing.T) {
	d := New()
	d.Retries = 4
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent("w-rc", DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	a.Dial = func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = a.Serve(addr, Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.2, Seed: 42})
	}()
	defer func() {
		a.Stop()
		_ = d.Close()
		wg.Wait()
	}()
	if err := d.WaitAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	spec := DeploySpec{NF: "nat", Flows: 64, Packets: 400, PacketBytes: 64, Tasks: 2, Seed: 5}
	if _, err := d.Deploy("w-rc", spec, 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// Sever the link out from under everyone.
	mu.Lock()
	conns[len(conns)-1].Close()
	mu.Unlock()

	res, err := d.Deploy("w-rc", spec, 20*time.Second)
	if err != nil {
		t.Fatalf("deploy across reconnect: %v", err)
	}
	if res.Packets != spec.Packets {
		t.Fatalf("packets = %d", res.Packets)
	}
	mu.Lock()
	dials := len(conns)
	mu.Unlock()
	if dials < 2 {
		t.Fatalf("agent dialed %d times, never reconnected", dials)
	}
}

// TestServeGivesUp pins the bounded-retry contract: with Attempts set,
// Serve stops redialing a dead address and reports the last error.
func TestServeGivesUp(t *testing.T) {
	// Bind and immediately close a port so the address is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	a, err := NewAgent("w-gone", DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = a.Serve(addr, Backoff{Min: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 3, Seed: 7})
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("giving up took %v", elapsed)
	}
}

// TestDeployReplayIdempotent drives an agent from a bare-wire fake
// director: the same deploy sequence ID sent twice must execute once
// and answer twice with byte-identical results (the dedup cache), and
// a fresh sequence ID must execute again.
func TestDeployReplayIdempotent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var mu sync.Mutex
	runs := 0
	reg := Registry{
		"nat": func(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
			mu.Lock()
			runs++
			mu.Unlock()
			return natFactory(as, d)
		},
	}
	a, err := NewAgent("w-dup", reg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = a.Run(ln.Addr().String())
	}()
	defer wg.Wait()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mr := newMsgReader(conn)
	if env, err := mr.next(); err != nil || env.Type != TypeRegister || env.Agent != "w-dup" {
		t.Fatalf("registration = %+v, %v", env, err)
	}
	send := func(env Envelope) {
		t.Helper()
		b, err := encode(env)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	awaitResult := func() Result {
		t.Helper()
		for {
			env, err := mr.next()
			if err != nil {
				t.Fatalf("reading reply: %v", err)
			}
			switch env.Type {
			case TypeStats, TypeDumpDone:
				continue
			case TypeResult:
				return *env.Result
			default:
				t.Fatalf("reply = %+v", env)
			}
		}
	}

	spec := DeploySpec{NF: "nat", Flows: 64, Packets: 300, PacketBytes: 64, Tasks: 2, Seed: 3}
	dep := Envelope{Type: TypeDeploy, Seq: 7, Deploy: &spec}
	send(dep)
	r1 := awaitResult()
	send(dep) // replay: same sequence ID
	r2 := awaitResult()
	mu.Lock()
	ran := runs
	mu.Unlock()
	if ran != 1 {
		t.Fatalf("replayed deploy executed %d times", ran)
	}
	if r1 != r2 {
		t.Fatalf("cached reply drifted:\n first %+v\nsecond %+v", r1, r2)
	}

	dep.Seq = 8 // a genuinely new deployment runs again
	send(dep)
	_ = awaitResult()
	mu.Lock()
	ran = runs
	mu.Unlock()
	if ran != 2 {
		t.Fatalf("fresh sequence executed %d times total", ran)
	}

	send(Envelope{Type: TypeShutdown})
}

// TestDeployAllWedgedAgent pins the shared-deadline contract: one
// registered-but-unresponsive agent costs DeployAll its own result and
// a typed timeout, not wall-clock beyond the shared deadline, and the
// healthy agent's result still comes back.
func TestDeployAllWedgedAgent(t *testing.T) {
	d := New()
	d.Retries = 2
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	a, err := NewAgent("real", DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = a.Run(addr)
	}()
	defer func() {
		_ = d.Close()
		wg.Wait()
	}()

	// The wedge: registers like an agent, drains its socket so the
	// director's writes succeed, and never answers anything.
	wedge, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wedge.Close()
	regFrame, err := encode(Envelope{Type: TypeRegister, Agent: "wedged"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wedge.Write(regFrame); err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := wedge.Read(buf); err != nil {
				return
			}
		}
	}()
	if err := d.WaitAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	const timeout = 3 * time.Second
	start := time.Now()
	results, err := d.DeployAll(DeploySpec{
		NF: "nat", Flows: 64, Packets: 400, PacketBytes: 64, Tasks: 2, Seed: 6,
	}, timeout)
	elapsed := time.Since(start)
	if elapsed > timeout+5*time.Second {
		t.Fatalf("wedged agent stretched DeployAll to %v (timeout %v)", elapsed, timeout)
	}
	if len(results) != 1 || results[0].Agent != "real" || results[0].Packets != 400 {
		t.Fatalf("results = %+v", results)
	}
	var dae *DeployAllError
	if !errors.As(err, &dae) {
		t.Fatalf("err = %v", err)
	}
	werr, ok := dae.Errors["wedged"]
	if !ok || len(dae.Errors) != 1 {
		t.Fatalf("per-agent errors = %v", dae.Errors)
	}
	var ae *AgentError
	if !errors.As(werr, &ae) || ae.Agent != "wedged" {
		t.Fatalf("wedged error unattributed: %v", werr)
	}
	if !errors.Is(err, ErrDeployTimeout) {
		t.Fatalf("not a timeout: %v", err)
	}
}
