package director

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Director is the control-plane server: it accepts runtime-agent
// connections, deploys NFs to them, and collects results.
type Director struct {
	ln net.Listener

	mu     sync.Mutex
	agents map[string]*agentConn
	seq    int
	closed bool
	// arrival signals agent registration to waiters.
	arrival chan struct{}
	// onStats receives unsolicited TypeStats heartbeats.
	onStats func(StatsReport)
	// onDump receives unsolicited TypeDumpDone notices.
	onDump func(DumpInfo)

	wg sync.WaitGroup
}

type agentConn struct {
	name string
	conn net.Conn
	enc  *json.Encoder

	mu      sync.Mutex // serializes requests to this agent
	sendMu  sync.Mutex // serializes writes to enc (Deploy holds mu for the whole run)
	pending chan Envelope
}

// send encodes one envelope to the agent under the write lock, so
// out-of-band messages (flight-dump requests, shutdown) interleave
// safely with an in-flight Deploy.
func (ac *agentConn) send(env Envelope) error {
	ac.sendMu.Lock()
	defer ac.sendMu.Unlock()
	return ac.enc.Encode(env)
}

// New creates a director.
func New() *Director {
	return &Director{
		agents:  make(map[string]*agentConn),
		arrival: make(chan struct{}, 16),
	}
}

// Listen starts accepting agents on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (d *Director) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("director: listen: %w", err)
	}
	d.ln = ln
	d.wg.Add(1)
	go d.acceptLoop()
	return ln.Addr().String(), nil
}

func (d *Director) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.wg.Add(1)
		go d.serveConn(conn)
	}
}

// serveConn reads the registration then pumps responses to waiters.
func (d *Director) serveConn(conn net.Conn) {
	defer d.wg.Done()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !scanner.Scan() {
		_ = conn.Close()
		return
	}
	var reg Envelope
	if err := json.Unmarshal(scanner.Bytes(), &reg); err != nil || reg.Type != TypeRegister || reg.Agent == "" {
		_ = conn.Close()
		return
	}
	ac := &agentConn{
		name:    reg.Agent,
		conn:    conn,
		enc:     json.NewEncoder(conn),
		pending: make(chan Envelope, 4),
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		_ = conn.Close()
		return
	}
	d.agents[reg.Agent] = ac
	d.mu.Unlock()
	select {
	case d.arrival <- struct{}{}:
	default:
	}

	for scanner.Scan() {
		var env Envelope
		if err := json.Unmarshal(scanner.Bytes(), &env); err != nil {
			continue
		}
		if env.Type == TypeStats {
			if env.Stats != nil {
				d.mu.Lock()
				handler := d.onStats
				d.mu.Unlock()
				if handler != nil {
					handler(*env.Stats)
				}
			}
			continue // heartbeats never wake a Deploy waiter
		}
		if env.Type == TypeDumpDone {
			if env.Dump != nil {
				d.mu.Lock()
				handler := d.onDump
				d.mu.Unlock()
				if handler != nil {
					handler(*env.Dump)
				}
			}
			continue // dump notices never wake a Deploy waiter either
		}
		select {
		case ac.pending <- env:
		default:
			// No waiter; drop.
		}
	}
	d.mu.Lock()
	delete(d.agents, reg.Agent)
	d.mu.Unlock()
	_ = conn.Close()
}

// SetStatsHandler registers fn to receive every TypeStats heartbeat
// from every agent. fn runs on the per-connection reader goroutine, so
// it must return promptly; nil detaches.
func (d *Director) SetStatsHandler(fn func(StatsReport)) {
	d.mu.Lock()
	d.onStats = fn
	d.mu.Unlock()
}

// SetDumpHandler registers fn to receive every TypeDumpDone notice —
// the acknowledgment (path, event count, or error) of a flight dump
// requested with RequestFlightDump. Same contract as SetStatsHandler.
func (d *Director) SetDumpHandler(fn func(DumpInfo)) {
	d.mu.Lock()
	d.onDump = fn
	d.mu.Unlock()
}

// RequestFlightDump asks the named agent to dump its flight-recorder
// ring. The request is out-of-band: it is safe (and intended) while a
// deployment is running on that agent — the agent honors it at its
// next window boundary and answers with a TypeDumpDone notice routed
// to the SetDumpHandler callback.
func (d *Director) RequestFlightDump(agent string) error {
	d.mu.Lock()
	ac, ok := d.agents[agent]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("director: unknown agent %q", agent)
	}
	if err := ac.send(Envelope{Type: TypeDump, Agent: agent}); err != nil {
		return fmt.Errorf("director: dump request to %s: %w", agent, err)
	}
	return nil
}

// Agents returns the names of currently registered agents.
func (d *Director) Agents() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.agents))
	for n := range d.agents {
		names = append(names, n)
	}
	return names
}

// WaitAgents blocks until at least n agents are registered or the
// timeout elapses.
func (d *Director) WaitAgents(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		d.mu.Lock()
		have := len(d.agents)
		d.mu.Unlock()
		if have >= n {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("director: only %d of %d agents after %v", have, n, timeout)
		}
		select {
		case <-d.arrival:
		case <-time.After(remain):
		}
	}
}

// Deploy sends spec to the named agent, blocks for its result, and
// returns it. One deployment runs at a time per agent.
func (d *Director) Deploy(agent string, depl DeploySpec, timeout time.Duration) (Result, error) {
	if err := depl.Validate(); err != nil {
		return Result{}, err
	}
	d.mu.Lock()
	ac, ok := d.agents[agent]
	d.seq++
	seq := d.seq
	d.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("director: unknown agent %q", agent)
	}

	ac.mu.Lock()
	defer ac.mu.Unlock()
	if err := ac.send(Envelope{Type: TypeDeploy, Seq: seq, Deploy: &depl}); err != nil {
		return Result{}, fmt.Errorf("director: sending to %s: %w", agent, err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case env := <-ac.pending:
			if env.Seq != seq {
				continue // stale response from an abandoned request
			}
			switch env.Type {
			case TypeResult:
				if env.Result == nil {
					return Result{}, fmt.Errorf("director: %s returned empty result", agent)
				}
				return *env.Result, nil
			case TypeError:
				return Result{}, fmt.Errorf("director: agent %s: %s", agent, env.Error)
			default:
				return Result{}, fmt.Errorf("director: unexpected reply %q from %s", env.Type, agent)
			}
		case <-timer.C:
			return Result{}, fmt.Errorf("director: deploy to %s timed out after %v", agent, timeout)
		}
	}
}

// DeployAll deploys the same spec to every registered agent in
// parallel (the multi-core scaling experiments) and returns the
// per-agent results.
func (d *Director) DeployAll(depl DeploySpec, timeout time.Duration) ([]Result, error) {
	agents := d.Agents()
	if len(agents) == 0 {
		return nil, fmt.Errorf("director: no agents registered")
	}
	results := make([]Result, len(agents))
	errs := make([]error, len(agents))
	var wg sync.WaitGroup
	for i, name := range agents {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			results[i], errs[i] = d.Deploy(name, depl, timeout)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("director: agent %s: %w", agents[i], err)
		}
	}
	return results, nil
}

// Close shuts agents down and stops the listener.
func (d *Director) Close() error {
	d.mu.Lock()
	d.closed = true
	for _, ac := range d.agents {
		// Best effort shutdown notice; connection close follows.
		_ = ac.send(Envelope{Type: TypeShutdown})
		_ = ac.conn.Close()
	}
	d.mu.Unlock()
	var err error
	if d.ln != nil {
		err = d.ln.Close()
	}
	d.wg.Wait()
	return err
}
