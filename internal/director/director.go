package director

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// DefaultWriteTimeout bounds every control-plane wire send. A peer
// that stops draining its socket fails the send instead of wedging the
// sender forever; both Director and Agent default to it.
const DefaultWriteTimeout = 10 * time.Second

// ErrDeployTimeout reports a deployment that produced no reply within
// its deadline, across every retry. Check with errors.Is.
var ErrDeployTimeout = errors.New("deploy timed out")

// ErrUnknownAgent reports a deployment addressed to an agent that has
// never registered with this director. Check with errors.Is.
var ErrUnknownAgent = errors.New("unknown agent")

// AgentError attributes a control-plane failure to one agent. Every
// error Deploy and DeployAll return for a specific agent is one of
// these, so callers can always answer "which agent, and why".
type AgentError struct {
	// Agent is the offending agent's name.
	Agent string
	// Err is the underlying failure (ErrDeployTimeout, ErrUnknownAgent,
	// an agent-reported error, ...).
	Err error
}

func (e *AgentError) Error() string { return fmt.Sprintf("director: agent %s: %v", e.Agent, e.Err) }
func (e *AgentError) Unwrap() error { return e.Err }

// DeployAllError aggregates the per-agent failures of a DeployAll that
// partially succeeded. The successful agents' results are still
// returned alongside it.
type DeployAllError struct {
	// Errors maps each failed agent to its *AgentError.
	Errors map[string]error
}

func (e *DeployAllError) Error() string {
	names := make([]string, 0, len(e.Errors))
	for n := range e.Errors {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, e.Errors[n].Error())
	}
	msg := ""
	for i, p := range parts {
		if i > 0 {
			msg += "; "
		}
		msg += p
	}
	return fmt.Sprintf("director: %d agent(s) failed: %s", len(e.Errors), msg)
}

// Unwrap exposes the per-agent errors to errors.Is/errors.As.
func (e *DeployAllError) Unwrap() []error {
	errs := make([]error, 0, len(e.Errors))
	for _, err := range e.Errors {
		errs = append(errs, err)
	}
	return errs
}

// Director is the control-plane server: it accepts runtime-agent
// connections, deploys NFs to them, and collects results.
type Director struct {
	// Retries is how many times a timed-out or failed deploy send is
	// retried before Deploy gives up. Replayed deploys reuse their
	// sequence ID, and agents deduplicate on it, so a retry that races
	// a slow first attempt cannot run the deployment twice.
	Retries int
	// WriteTimeout bounds each wire send to an agent (0 = none).
	// New defaults it to DefaultWriteTimeout.
	WriteTimeout time.Duration

	ln net.Listener

	mu     sync.Mutex
	agents map[string]*agentConn
	// known tracks every agent name ever registered: its liveness and
	// last-heard stamp survive disconnects so reconnecting agents are
	// recognized and deploys can wait out a reconnect window.
	known   map[string]*agentState
	deploys map[string]*sync.Mutex
	seq     int
	closed  bool
	// arrival signals agent registration to waiters.
	arrival chan struct{}
	// onStats receives unsolicited TypeStats heartbeats.
	onStats func(StatsReport)
	// onDump receives unsolicited TypeDumpDone notices.
	onDump func(DumpInfo)
	// onLive receives liveness transitions (agent marked dead or back
	// live); see EnableLiveness.
	onLive   func(agent string, live bool)
	liveStop chan struct{}

	wg sync.WaitGroup
}

// agentState is the per-name record that outlives connections.
type agentState struct {
	lastHeard time.Time
	dead      bool
}

// AgentInfo is one agent's liveness snapshot.
type AgentInfo struct {
	// Name is the agent's registered name.
	Name string
	// Connected reports whether a connection is currently open.
	Connected bool
	// Live is false once the liveness checker has marked the agent
	// dead (K missed heartbeat windows); a reconnect or any message
	// re-marks it live.
	Live bool
	// LastHeard is when the agent last sent anything.
	LastHeard time.Time
}

type agentConn struct {
	name         string
	conn         net.Conn
	writeTimeout time.Duration

	mu      sync.Mutex // serializes requests to this agent
	sendMu  sync.Mutex // serializes writes (Deploy holds mu for the whole run)
	pending chan Envelope
}

// send encodes one envelope to the agent under the write lock and a
// write deadline, so out-of-band messages (flight-dump requests,
// shutdown) interleave safely with an in-flight Deploy and a stalled
// peer fails the send instead of wedging the director.
func (ac *agentConn) send(env Envelope) error {
	b, err := encode(env)
	if err != nil {
		return err
	}
	ac.sendMu.Lock()
	defer ac.sendMu.Unlock()
	if ac.writeTimeout > 0 {
		_ = ac.conn.SetWriteDeadline(time.Now().Add(ac.writeTimeout))
	}
	_, err = ac.conn.Write(b)
	return err
}

// New creates a director.
func New() *Director {
	return &Director{
		WriteTimeout: DefaultWriteTimeout,
		agents:       make(map[string]*agentConn),
		known:        make(map[string]*agentState),
		deploys:      make(map[string]*sync.Mutex),
		arrival:      make(chan struct{}, 16),
		liveStop:     make(chan struct{}),
	}
}

// Listen starts accepting agents on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (d *Director) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("director: listen: %w", err)
	}
	d.ListenOn(ln)
	return ln.Addr().String(), nil
}

// ListenOn starts accepting agents on an already-bound listener — the
// seam the -chaos flag and the chaos soak use to interpose a
// faultnet-wrapped listener.
func (d *Director) ListenOn(ln net.Listener) {
	d.ln = ln
	d.wg.Add(1)
	go d.acceptLoop()
}

func (d *Director) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.wg.Add(1)
		go d.serveConn(conn)
	}
}

// touch stamps the agent as heard-from; a message from a dead agent
// resurrects it (and fires the liveness transition hook).
func (d *Director) touch(name string) {
	d.mu.Lock()
	st := d.known[name]
	if st == nil {
		st = &agentState{}
		d.known[name] = st
	}
	st.lastHeard = time.Now()
	revived := st.dead
	st.dead = false
	cb := d.onLive
	d.mu.Unlock()
	if revived && cb != nil {
		cb(name, true)
	}
}

// serveConn reads the registration then pumps responses to waiters.
func (d *Director) serveConn(conn net.Conn) {
	defer d.wg.Done()
	mr := newMsgReader(conn)
	reg, err := mr.next()
	if err != nil || reg.Type != TypeRegister || reg.Agent == "" {
		_ = conn.Close()
		return
	}
	ac := &agentConn{
		name:         reg.Agent,
		conn:         conn,
		writeTimeout: d.WriteTimeout,
		pending:      make(chan Envelope, 4),
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old := d.agents[reg.Agent]; old != nil {
		// A reconnect raced the old connection's teardown: the newest
		// registration wins, and closing the stale conn reaps its reader.
		_ = old.conn.Close()
	}
	d.agents[reg.Agent] = ac
	d.mu.Unlock()
	d.touch(reg.Agent)
	select {
	case d.arrival <- struct{}{}:
	default:
	}

	for {
		env, err := mr.next()
		if err != nil {
			break
		}
		d.touch(reg.Agent)
		if env.Type == TypeStats {
			if env.Stats != nil {
				d.mu.Lock()
				handler := d.onStats
				d.mu.Unlock()
				if handler != nil {
					handler(*env.Stats)
				}
			}
			continue // heartbeats never wake a Deploy waiter
		}
		if env.Type == TypeDumpDone {
			if env.Dump != nil {
				d.mu.Lock()
				handler := d.onDump
				d.mu.Unlock()
				if handler != nil {
					handler(*env.Dump)
				}
			}
			continue // dump notices never wake a Deploy waiter either
		}
		select {
		case ac.pending <- env:
		default:
			// No waiter; drop.
		}
	}
	d.mu.Lock()
	// Guarded delete: a reconnect may already have replaced this entry,
	// and deleting blindly would evict the live connection.
	if d.agents[reg.Agent] == ac {
		delete(d.agents, reg.Agent)
	}
	d.mu.Unlock()
	// Closing pending tells a blocked Deploy immediately that this
	// connection is gone (serveConn is its only sender).
	close(ac.pending)
	_ = conn.Close()
}

// SetStatsHandler registers fn to receive every TypeStats heartbeat
// from every agent. fn runs on the per-connection reader goroutine, so
// it must return promptly; nil detaches.
func (d *Director) SetStatsHandler(fn func(StatsReport)) {
	d.mu.Lock()
	d.onStats = fn
	d.mu.Unlock()
}

// SetDumpHandler registers fn to receive every TypeDumpDone notice —
// the acknowledgment (path, event count, or error) of a flight dump
// requested with RequestFlightDump. Same contract as SetStatsHandler.
func (d *Director) SetDumpHandler(fn func(DumpInfo)) {
	d.mu.Lock()
	d.onDump = fn
	d.mu.Unlock()
}

// SetLivenessHandler registers fn to receive liveness transitions:
// fn(agent, false) when the checker marks an agent dead, fn(agent,
// true) when a message from it (reconnect, heartbeat) resurrects it.
// Same promptness contract as SetStatsHandler; nil detaches.
func (d *Director) SetLivenessHandler(fn func(agent string, live bool)) {
	d.mu.Lock()
	d.onLive = fn
	d.mu.Unlock()
}

// EnableLiveness starts the heartbeat liveness checker: an agent not
// heard from for missed consecutive windows of the given length is
// marked dead (surfaced via Alive, AgentInfos, the liveness handler,
// and RegisterLiveness gauges). Any subsequent message re-marks it
// live. The window should match the wall-clock cadence of the
// deployment's StatsEvery heartbeats. Call before deploying; the
// checker stops when the director closes.
func (d *Director) EnableLiveness(window time.Duration, missed int) error {
	if window <= 0 || missed <= 0 {
		return fmt.Errorf("director: liveness needs positive window and missed count")
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		ticker := time.NewTicker(window)
		defer ticker.Stop()
		for {
			select {
			case <-d.liveStop:
				return
			case now := <-ticker.C:
				var died []string
				d.mu.Lock()
				for name, st := range d.known {
					if !st.dead && now.Sub(st.lastHeard) >= time.Duration(missed)*window {
						st.dead = true
						died = append(died, name)
					}
				}
				cb := d.onLive
				d.mu.Unlock()
				if cb != nil {
					sort.Strings(died)
					for _, name := range died {
						cb(name, false)
					}
				}
			}
		}
	}()
	return nil
}

// Alive reports whether the named agent is currently considered live.
// Agents never seen are not alive; without EnableLiveness every seen
// agent stays live forever.
func (d *Director) Alive(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.known[name]
	return st != nil && !st.dead
}

// AgentInfos returns a liveness snapshot of every agent ever
// registered, sorted by name.
func (d *Director) AgentInfos() []AgentInfo {
	d.mu.Lock()
	infos := make([]AgentInfo, 0, len(d.known))
	for name, st := range d.known {
		_, connected := d.agents[name]
		infos = append(infos, AgentInfo{
			Name: name, Connected: connected, Live: !st.dead, LastHeard: st.lastHeard,
		})
	}
	d.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// RequestFlightDump asks the named agent to dump its flight-recorder
// ring. The request is out-of-band: it is safe (and intended) while a
// deployment is running on that agent — the agent honors it at its
// next window boundary and answers with a TypeDumpDone notice routed
// to the SetDumpHandler callback.
func (d *Director) RequestFlightDump(agent string) error {
	d.mu.Lock()
	ac, ok := d.agents[agent]
	d.mu.Unlock()
	if !ok {
		return &AgentError{Agent: agent, Err: ErrUnknownAgent}
	}
	if err := ac.send(Envelope{Type: TypeDump, Agent: agent}); err != nil {
		return &AgentError{Agent: agent, Err: fmt.Errorf("dump request: %w", err)}
	}
	return nil
}

// Agents returns the names of currently connected agents.
func (d *Director) Agents() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.agents))
	for n := range d.agents {
		names = append(names, n)
	}
	return names
}

// WaitAgents blocks until at least n agents are registered or the
// timeout elapses.
func (d *Director) WaitAgents(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		d.mu.Lock()
		have := len(d.agents)
		d.mu.Unlock()
		if have >= n {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("director: only %d of %d agents after %v", have, n, timeout)
		}
		if remain > 20*time.Millisecond {
			remain = 20 * time.Millisecond
		}
		select {
		case <-d.arrival:
		case <-time.After(remain):
		}
	}
}

// lookup returns the agent's current connection, nil if disconnected,
// and whether the name has ever registered.
func (d *Director) lookup(agent string) (ac *agentConn, known bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.agents[agent], d.known[agent] != nil
}

// deployLock returns the per-agent-name deploy mutex. Serialization
// must key on the name, not the connection: a deployment that spans a
// reconnect still owns the agent.
func (d *Director) deployLock(agent string) *sync.Mutex {
	d.mu.Lock()
	defer d.mu.Unlock()
	mu := d.deploys[agent]
	if mu == nil {
		mu = &sync.Mutex{}
		d.deploys[agent] = mu
	}
	return mu
}

// Deploy sends spec to the named agent, blocks for its result, and
// returns it. One deployment runs at a time per agent. On timeout the
// deploy is resent up to Retries times (the agent deduplicates on the
// sequence ID), all within the given overall deadline.
func (d *Director) Deploy(agent string, depl DeploySpec, timeout time.Duration) (Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return d.DeployContext(ctx, agent, depl)
}

// DeployContext is Deploy under a caller-supplied context: the
// deadline (or cancellation) bounds the whole deployment including
// every retry, which is how DeployAll keeps one wedged agent from
// extending wall-clock past its shared timeout.
func (d *Director) DeployContext(ctx context.Context, agent string, depl DeploySpec) (Result, error) {
	if err := depl.Validate(); err != nil {
		return Result{}, err
	}
	ac, known := d.lookup(agent)
	if ac == nil && !known {
		return Result{}, &AgentError{Agent: agent, Err: ErrUnknownAgent}
	}

	mu := d.deployLock(agent)
	mu.Lock()
	defer mu.Unlock()

	d.mu.Lock()
	d.seq++
	seq := d.seq
	d.mu.Unlock()
	env := Envelope{Type: TypeDeploy, Seq: seq, Deploy: &depl}

	attempts := d.Retries + 1
	fail := func(err error) (Result, error) {
		return Result{}, &AgentError{Agent: agent, Err: err}
	}
	var lastErr error = ErrDeployTimeout
	for attempt := 1; attempt <= attempts; attempt++ {
		// Re-resolve the connection each attempt: the agent may have
		// reconnected since the last one.
		ac, _ := d.lookup(agent)
		if ac == nil {
			// Disconnected — wait briefly for a reconnect, charging the
			// shared deadline, then burn this attempt.
			select {
			case <-ctx.Done():
				return fail(fmt.Errorf("%w: agent disconnected (%v)", ErrDeployTimeout, ctx.Err()))
			case <-time.After(20 * time.Millisecond):
			}
			attempt-- // reconnect waits are not send attempts
			continue
		}
		if err := ac.send(env); err != nil {
			lastErr = fmt.Errorf("sending deploy: %w", err)
			continue
		}
		res, err := d.awaitReply(ctx, ac, agent, seq, attempt, attempts)
		if err == nil {
			return res, nil
		}
		var ae *AgentError
		if errors.As(err, &ae) {
			// Terminal: the agent answered (result/error/garbage) or the
			// overall deadline died. Retrying cannot change the outcome.
			return Result{}, err
		}
		lastErr = err
	}
	return fail(lastErr)
}

// awaitReply waits for the reply to seq on one connection. A returned
// *AgentError (or a result) is terminal; any other error — attempt
// timeout, connection loss — is retryable and the caller may resend.
func (d *Director) awaitReply(ctx context.Context, ac *agentConn, agent string, seq, attempt, attempts int) (Result, error) {
	// Split the remaining deadline evenly across the remaining
	// attempts so retries actually happen before the context dies.
	per := time.Duration(1<<62 - 1)
	if deadline, ok := ctx.Deadline(); ok {
		per = time.Until(deadline) / time.Duration(attempts-attempt+1)
		if per <= 0 {
			per = time.Millisecond
		}
	}
	timer := time.NewTimer(per)
	defer timer.Stop()
	for {
		select {
		case env, ok := <-ac.pending:
			if !ok {
				// Connection died; retry on the reconnected agent.
				return Result{}, fmt.Errorf("connection lost: %w", ErrDeployTimeout)
			}
			if env.Seq != seq {
				continue // stale response from an abandoned request
			}
			switch env.Type {
			case TypeResult:
				if env.Result == nil {
					return Result{}, &AgentError{Agent: agent, Err: errors.New("empty result")}
				}
				return *env.Result, nil
			case TypeError:
				return Result{}, &AgentError{Agent: agent, Err: errors.New(env.Error)}
			default:
				return Result{}, &AgentError{Agent: agent, Err: fmt.Errorf("unexpected reply %q", env.Type)}
			}
		case <-timer.C:
			return Result{}, ErrDeployTimeout
		case <-ctx.Done():
			return Result{}, &AgentError{Agent: agent, Err: fmt.Errorf("%w: %v", ErrDeployTimeout, ctx.Err())}
		}
	}
}

// DeployAll deploys the same spec to every connected agent in parallel
// (the multi-core scaling experiments) under one shared deadline, and
// returns the successful agents' results. When some agents fail, their
// results are simply absent and the error is a *DeployAllError
// attributing each failure — one wedged or dead agent degrades the
// run instead of aborting it, and cannot extend wall-clock past
// timeout.
func (d *Director) DeployAll(depl DeploySpec, timeout time.Duration) ([]Result, error) {
	agents := d.Agents()
	if len(agents) == 0 {
		return nil, fmt.Errorf("director: no agents registered")
	}
	sort.Strings(agents)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	results := make([]Result, len(agents))
	errs := make([]error, len(agents))
	var wg sync.WaitGroup
	for i, name := range agents {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			results[i], errs[i] = d.DeployContext(ctx, name, depl)
		}(i, name)
	}
	wg.Wait()

	ok := results[:0]
	perAgent := make(map[string]error)
	for i, err := range errs {
		if err != nil {
			perAgent[agents[i]] = err
			continue
		}
		ok = append(ok, results[i])
	}
	if len(perAgent) > 0 {
		return ok, &DeployAllError{Errors: perAgent}
	}
	return ok, nil
}

// Close shuts agents down and stops the listener.
func (d *Director) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	conns := make([]*agentConn, 0, len(d.agents))
	for _, ac := range d.agents {
		conns = append(conns, ac)
	}
	d.mu.Unlock()
	close(d.liveStop)
	for _, ac := range conns {
		// Best effort shutdown notice; connection close follows.
		_ = ac.send(Envelope{Type: TypeShutdown})
		_ = ac.conn.Close()
	}
	var err error
	if d.ln != nil {
		err = d.ln.Close()
	}
	d.wg.Wait()
	return err
}
