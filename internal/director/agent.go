package director

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/fw"
	"github.com/gunfu-nfv/gunfu/internal/nf/lb"
	"github.com/gunfu-nfv/gunfu/internal/nf/monitor"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/nf/upf"
	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// Factory builds a deployable NF: the compiled program and the
// workload source for one run, with state drawn from as.
type Factory func(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error)

// Registry maps deployable NF names to factories.
type Registry map[string]Factory

// DefaultRegistry returns the built-in deployables: the NFs of the
// paper's evaluation, each pre-populated for the requested flow count.
func DefaultRegistry() Registry {
	return Registry{
		"nat":          natFactory,
		"upf-downlink": upfFactory,
		"sfc":          sfcFactory,
	}
}

func natFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	n, err := nat.New(as, nat.Config{MaxFlows: d.Flows})
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: d.Flows, PacketBytes: d.PacketBytes, Order: traffic.OrderUniform, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < d.Flows; i++ {
		if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			return nil, nil, err
		}
	}
	prog, err := n.Program()
	return prog, g, err
}

func upfFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	pdrs := d.PDRs
	if pdrs == 0 {
		pdrs = 16
	}
	u, err := upf.New(as, upf.Config{Sessions: d.Flows, PDRsPerSession: pdrs})
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewMGWGen(traffic.MGWConfig{
		Sessions: d.Flows, PDRs: pdrs, PacketBytes: d.PacketBytes, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	prog, err := u.DownlinkProgram()
	return prog, g, err
}

func sfcFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	length := d.SFCLength
	if length == 0 {
		length = 4
	}
	chain, err := BuildChain(as, length, d.Flows)
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: d.Flows, PacketBytes: d.PacketBytes, Order: traffic.OrderUniform, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	tuples := make([]pkt.FiveTuple, d.Flows)
	for i := range tuples {
		tuples[i] = g.FlowTuple(i)
	}
	if err := compile.PopulateFlows(chain, tuples); err != nil {
		return nil, nil, err
	}
	prog, err := compile.BuildSFC("sfc", chain, compile.SFCOptions{})
	return prog, g, err
}

// BuildChain constructs the paper's SFC of the given length (2–6):
// LB → NAT → NM → FW, extended with additional firewalls carrying
// different policies for lengths above four, exactly as §VII-B
// describes.
func BuildChain(as *mem.AddressSpace, length, flows int) ([]compile.Chainable, error) {
	if length < 2 || length > 6 {
		return nil, fmt.Errorf("director: SFC length %d outside [2,6]", length)
	}
	var chain []compile.Chainable
	l, err := lb.New(as, lb.Config{MaxFlows: flows})
	if err != nil {
		return nil, err
	}
	chain = append(chain, l)
	n, err := nat.New(as, nat.Config{MaxFlows: flows})
	if err != nil {
		return nil, err
	}
	chain = append(chain, n)
	if length >= 3 {
		m, err := monitor.New(as, monitor.Config{MaxFlows: flows})
		if err != nil {
			return nil, err
		}
		chain = append(chain, m)
	}
	for i := 4; i <= length; i++ {
		f, err := fw.New(as, fw.Config{
			Name:     fmt.Sprintf("fw%d", i-3),
			MaxFlows: flows,
			Policy:   fw.DefaultPolicy(8 * (i - 2)), // different policies per FW
		})
		if err != nil {
			return nil, err
		}
		chain = append(chain, f)
	}
	return chain, nil
}

// DefaultFlightEvents is the default flight-recorder ring capacity:
// enough cycles of context around an anomaly (roughly the last few
// thousand packets at ~30 events/packet) at a bounded ~3 MB of host
// memory.
const DefaultFlightEvents = 1 << 16

// Agent is the per-host runtime agent: it registers with the director
// and executes deployments on a local simulated core.
type Agent struct {
	name string
	reg  Registry
	// SimConfig is the core configuration deployments run on.
	SimConfig sim.Config
	// OnStats, when set, observes every heartbeat this agent emits
	// (StatsEvery deployments only), before it goes on the wire. Local
	// exporters — the worker's metrics registry — hang off this hook.
	OnStats func(StatsReport)
	// OnDump, when set, observes every flight dump the agent produces,
	// with the rendered Perfetto JSON (the worker serves the newest one
	// at /debug/flight).
	OnDump func(info DumpInfo, trace []byte)
	// FlightEvents sizes the always-on flight recorder attached to
	// every deployment (0 disables it). NewAgent defaults it to
	// DefaultFlightEvents: the black box should be on unless someone
	// turns it off.
	FlightEvents int
	// DumpDir is where flight dumps land (defaults to os.TempDir()).
	DumpDir string
	// Dial overrides the transport dialer — the seam tests and the
	// chaos harness use to interpose faultnet. Nil dials plain TCP.
	Dial func(addr string) (net.Conn, error)
	// WriteTimeout bounds every wire send (0 = none); a director that
	// stops draining its socket fails the agent's send instead of
	// wedging a deployment. NewAgent defaults it to DefaultWriteTimeout.
	WriteTimeout time.Duration

	// flight and prog describe the most recent deployment; owned by the
	// Run/execute goroutine (the reader goroutine only touches the
	// recorder's atomic request flag).
	flight  *obs.FlightRecorder
	prog    *model.Program
	dumpSeq int

	// replies caches completed deploy replies by sequence ID so a
	// director resend (deploy retry after a timeout or reconnect) gets
	// the cached answer instead of a duplicate run. Owned by the
	// runOnce loop goroutine; runs are sequential across reconnects.
	replies    map[int]Envelope
	replyOrder []int

	stop     chan struct{}
	stopOnce sync.Once
	connMu   sync.Mutex
	conn     net.Conn
}

// replyCacheSize bounds the deploy dedup cache. The director runs one
// deployment at a time per agent, so a handful of entries covers every
// replay window.
const replyCacheSize = 8

// NewAgent builds an agent with the given deployable registry.
func NewAgent(name string, reg Registry) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("director: agent needs a name")
	}
	if len(reg) == 0 {
		return nil, fmt.Errorf("director: agent needs a registry")
	}
	return &Agent{
		name:         name,
		reg:          reg,
		SimConfig:    sim.DefaultConfig(),
		FlightEvents: DefaultFlightEvents,
		WriteTimeout: DefaultWriteTimeout,
		stop:         make(chan struct{}),
	}, nil
}

// Backoff parameterizes Serve's reconnect loop.
type Backoff struct {
	// Min and Max bound the capped exponential backoff between
	// reconnect attempts.
	Min, Max time.Duration
	// Jitter is the ± fraction applied to each delay (0..1), so a
	// fleet of agents doesn't redial in lockstep.
	Jitter float64
	// Attempts caps consecutive failed connection attempts before
	// Serve gives up (0 = retry forever). The counter resets after
	// every successful registration.
	Attempts int
	// Seed fixes the jitter sequence; 0 derives one from the agent
	// name, which keeps runs deterministic while still desynchronizing
	// distinct agents.
	Seed int64
}

// DefaultBackoff is the production reconnect policy: 50 ms doubling to
// a 2 s cap, ±20 % jitter, never giving up.
func DefaultBackoff() Backoff {
	return Backoff{Min: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.2}
}

// Run connects to the director and serves deployments until the
// connection closes or a shutdown arrives — one connection, no
// reconnect (tests and one-shot runs). Serve is the resilient variant.
func (a *Agent) Run(addr string) error {
	_, _, err := a.runOnce(addr)
	return err
}

// Serve connects to the director and serves deployments, redialing
// with capped jittered exponential backoff whenever the connection
// drops — the production entry point (gunfu-worker -reconnect). It
// returns nil after a director-ordered shutdown or Stop, and the last
// connection error once bo.Attempts consecutive attempts fail without
// registering.
func (a *Agent) Serve(addr string, bo Backoff) error {
	if bo.Min <= 0 {
		bo.Min = DefaultBackoff().Min
	}
	if bo.Max < bo.Min {
		bo.Max = bo.Min
	}
	seed := bo.Seed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(a.name))
		seed = int64(h.Sum64())
	}
	rng := rand.New(rand.NewSource(seed))
	delay := bo.Min
	failures := 0
	for {
		if a.stopped() {
			return nil
		}
		shutdown, registered, err := a.runOnce(addr)
		if shutdown || a.stopped() {
			return nil
		}
		if registered {
			// The session was live; whatever killed it is fresh news.
			failures = 0
			delay = bo.Min
		} else {
			failures++
			if bo.Attempts > 0 && failures >= bo.Attempts {
				if err == nil {
					err = fmt.Errorf("connection closed before registration")
				}
				return fmt.Errorf("director: agent %s: giving up after %d attempts: %w", a.name, failures, err)
			}
		}
		d := delay
		if bo.Jitter > 0 {
			d += time.Duration(bo.Jitter * (2*rng.Float64() - 1) * float64(delay))
		}
		select {
		case <-a.stop:
			return nil
		case <-time.After(d):
		}
		delay *= 2
		if delay > bo.Max {
			delay = bo.Max
		}
	}
}

// Stop aborts Run/Serve: it closes the active connection and prevents
// further redials. Safe to call from any goroutine, more than once.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.connMu.Lock()
	if a.conn != nil {
		_ = a.conn.Close()
	}
	a.connMu.Unlock()
}

func (a *Agent) stopped() bool {
	select {
	case <-a.stop:
		return true
	default:
		return false
	}
}

func (a *Agent) setConn(c net.Conn) {
	a.connMu.Lock()
	a.conn = c
	a.connMu.Unlock()
}

// sendOn writes one envelope under the agent's write deadline. Only
// the runOnce loop goroutine writes to the connection, so sends need
// no lock.
func (a *Agent) sendOn(conn net.Conn, env Envelope) error {
	b, err := encode(env)
	if err != nil {
		return err
	}
	if a.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(a.WriteTimeout))
	}
	_, err = conn.Write(b)
	return err
}

// remember caches a completed deploy reply for replay dedup.
func (a *Agent) remember(seq int, reply Envelope) {
	if a.replies == nil {
		a.replies = make(map[int]Envelope)
	}
	if _, ok := a.replies[seq]; !ok {
		a.replyOrder = append(a.replyOrder, seq)
	}
	a.replies[seq] = reply
	for len(a.replyOrder) > replyCacheSize {
		delete(a.replies, a.replyOrder[0])
		a.replyOrder = a.replyOrder[1:]
	}
}

// runOnce serves one connection's lifetime. A reader goroutine drains
// the connection so control messages (flight-dump requests) reach the
// agent even while a deployment is executing: the reader flags the
// recorder, and the measure loop honors the flag at the next window
// boundary. Returns shutdown=true on a director-ordered shutdown,
// registered=true once the registration hit the wire (Serve uses it to
// reset its failure budget), and a nil error when the director simply
// closed the connection.
func (a *Agent) runOnce(addr string) (shutdown, registered bool, err error) {
	dial := a.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial(addr)
	if err != nil {
		return false, false, fmt.Errorf("director: agent %s: %w", a.name, err)
	}
	a.setConn(conn)
	defer func() {
		a.setConn(nil)
		_ = conn.Close()
	}()
	send := func(env Envelope) error { return a.sendOn(conn, env) }
	if err := send(Envelope{Type: TypeRegister, Agent: a.name}); err != nil {
		return false, false, fmt.Errorf("director: agent %s: register: %w", a.name, err)
	}

	if a.FlightEvents > 0 && a.flight == nil {
		// One recorder for the agent's lifetime (it survives
		// reconnects): its request flag is the cross-goroutine mailbox,
		// and the ring always holds the newest events of the newest
		// deployment.
		a.flight = obs.NewFlightRecorder(a.FlightEvents)
	}

	msgs := make(chan Envelope, 16)
	done := make(chan struct{})
	defer close(done)
	go func() {
		mr := newMsgReader(conn)
		for {
			env, err := mr.next()
			if err != nil {
				close(msgs)
				return
			}
			if env.Type == TypeDump && a.flight != nil {
				// Reaches a mid-deployment agent: the measure loop dumps
				// at the next window boundary. The envelope is still
				// forwarded so an idle agent handles it promptly.
				a.flight.Request()
			}
			select {
			case msgs <- env:
			case <-done:
				return // runOnce already returned; don't block forever
			}
		}
	}()

	for env := range msgs {
		switch env.Type {
		case TypeShutdown:
			return true, true, nil
		case TypeDeploy:
			if reply, ok := a.replies[env.Seq]; ok && env.Seq != 0 {
				// A replayed deploy (director retry after a timeout or a
				// reconnect): idempotence means answering from the cache,
				// not running the deployment twice.
				if err := send(reply); err != nil {
					return false, true, fmt.Errorf("director: agent %s: reply: %w", a.name, err)
				}
				a.maybeDump(send)
				continue
			}
			reply := a.execute(env, send)
			if env.Seq != 0 {
				a.remember(env.Seq, reply)
			}
			if err := send(reply); err != nil {
				return false, true, fmt.Errorf("director: agent %s: reply: %w", a.name, err)
			}
			// A dump requested in the deployment's last moments may not
			// have hit a window boundary; honor it now.
			a.maybeDump(send)
		case TypeDump:
			a.maybeDump(send)
		}
	}
	return false, true, nil // director closed the connection
}

// maybeDump consumes a pending flight-dump request: render the ring as
// Perfetto JSON, write it under DumpDir, notify local hooks and the
// director. Runs only on the agent's execute goroutine (measure loop,
// post-deployment, or idle loop), where the ring is quiescent.
func (a *Agent) maybeDump(send func(Envelope) error) {
	if a.flight == nil || !a.flight.TakeRequest() {
		return
	}
	info := DumpInfo{Agent: a.name}
	var trace []byte
	if a.prog == nil {
		info.Error = "no deployment has run; flight ring is empty"
	} else {
		var buf bytes.Buffer
		if err := a.flight.DumpPerfetto(&buf, a.prog, a.SimConfig.FreqHz); err != nil {
			info.Error = err.Error()
		} else {
			trace = buf.Bytes()
			info.Events = a.flight.Len()
			dir := a.DumpDir
			if dir == "" {
				dir = os.TempDir()
			}
			path := filepath.Join(dir, fmt.Sprintf("gunfu-flight-%s-%d.json", a.name, a.dumpSeq))
			a.dumpSeq++
			if err := os.WriteFile(path, trace, 0o644); err != nil {
				info.Error = err.Error()
			} else {
				info.Path = path
			}
		}
	}
	if a.OnDump != nil {
		a.OnDump(info, trace)
	}
	if send != nil {
		_ = send(Envelope{Type: TypeDumpDone, Agent: a.name, Dump: &info})
	}
}

// execute runs one deployment and builds the reply envelope. send, when
// non-nil, carries mid-run TypeStats heartbeats back to the director.
func (a *Agent) execute(env Envelope, send func(Envelope) error) Envelope {
	fail := func(err error) Envelope {
		return Envelope{Type: TypeError, Seq: env.Seq, Agent: a.name, Error: err.Error()}
	}
	if env.Deploy == nil {
		return fail(fmt.Errorf("deploy message without spec"))
	}
	d := *env.Deploy
	if err := d.Validate(); err != nil {
		return fail(err)
	}
	factory, ok := a.reg[d.NF]
	if !ok {
		return fail(fmt.Errorf("unknown NF %q", d.NF))
	}
	as := mem.NewAddressSpace()
	prog, src, err := factory(as, d)
	if err != nil {
		return fail(err)
	}
	core, err := sim.NewCore(a.SimConfig)
	if err != nil {
		return fail(err)
	}

	// Observability taps: the always-on flight recorder plus, when the
	// spec asks for latency telemetry, a per-window rx→done probe. Build
	// the tracer list conditionally — a typed-nil inside Multi would
	// re-enable the traced path for nothing.
	var probe *obs.LatencyProbe
	var taps []sim.Tracer
	if a.flight != nil {
		a.flight.Reset()
		a.prog = prog
		taps = append(taps, a.flight)
	}
	if d.Latency {
		probe = obs.NewLatencyProbe()
		taps = append(taps, probe)
	}
	if tr := obs.Multi(taps...); tr != nil {
		core.SetTracer(tr)
	}

	// Both runtimes expose the same windowed Run contract, so the
	// chunked telemetry loop below is runtime-agnostic.
	var run func(n uint64) (rt.Result, error)
	if d.Tasks > 0 {
		cfg := rt.DefaultConfig()
		cfg.Tasks = d.Tasks
		w, err := rt.NewWorker(core, as, prog, cfg)
		if err != nil {
			return fail(err)
		}
		run = func(n uint64) (rt.Result, error) { return w.Run(src, n) }
	} else {
		w, err := rtc.NewWorker(core, as, prog, rtc.DefaultConfig())
		if err != nil {
			return fail(err)
		}
		run = func(n uint64) (rt.Result, error) { return w.Run(src, n) }
	}

	if d.Warmup > 0 {
		if _, err := run(d.Warmup); err != nil {
			return fail(err)
		}
		if probe != nil {
			// Warmup latencies are not part of the measured windows.
			probe.TakeWindow()
		}
	}
	res, err := a.measure(d, env.Seq, run, probe, send)
	if err != nil {
		return fail(err)
	}

	return Envelope{
		Type: TypeResult, Seq: env.Seq, Agent: a.name,
		Result: &Result{
			Agent:    a.name,
			Packets:  res.Packets,
			Bits:     res.Bits,
			Cycles:   res.Cycles,
			FreqHz:   res.FreqHz,
			Counters: res.Counters,
		},
	}
}

// measure runs the measured window, either in one piece or — when the
// spec asks for telemetry — in StatsEvery-packet chunks with a
// heartbeat after each. The returned result totals the whole window.
// Window boundaries are also where the agent is quiescent, so each one
// services any pending flight-dump request.
func (a *Agent) measure(d DeploySpec, seq int, run func(uint64) (rt.Result, error), probe *obs.LatencyProbe, send func(Envelope) error) (rt.Result, error) {
	if d.StatsEvery == 0 {
		res, err := run(d.Packets)
		a.maybeDump(send)
		return res, err
	}
	var total rt.Result
	for window, remaining := 0, d.Packets; remaining > 0; window++ {
		n := d.StatsEvery
		if n > remaining {
			n = remaining
		}
		r, err := run(n)
		if err != nil {
			return rt.Result{}, err
		}
		total.Packets += r.Packets
		total.Bits += r.Bits
		total.Cycles += r.Cycles
		total.FreqHz = r.FreqHz
		total.Counters = total.Counters.Add(r.Counters)
		rep := StatsReport{
			Agent: a.name, NF: d.NF, Window: window,
			Packets: r.Packets, Bits: r.Bits,
			Cycles: r.Cycles, FreqHz: r.FreqHz, Counters: r.Counters,
		}
		if probe != nil {
			rep.Latency = probe.TakeWindow()
		}
		if a.OnStats != nil {
			a.OnStats(rep)
		}
		if send != nil {
			if err := send(Envelope{Type: TypeStats, Seq: seq, Agent: a.name, Stats: &rep}); err != nil {
				// The connection died mid-run. The deployment itself is
				// healthy, so finish it — the result lands in the reply
				// cache and the director's replayed deploy (after the
				// agent reconnects) is answered from there. Heartbeats
				// into the dead connection stop; local hooks keep firing.
				send = nil
			}
		}
		a.maybeDump(send)
		if r.Packets < n {
			break // source drained early
		}
		remaining -= n
	}
	return total, nil
}
