package director

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"

	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/fw"
	"github.com/gunfu-nfv/gunfu/internal/nf/lb"
	"github.com/gunfu-nfv/gunfu/internal/nf/monitor"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/nf/upf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// Factory builds a deployable NF: the compiled program and the
// workload source for one run, with state drawn from as.
type Factory func(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error)

// Registry maps deployable NF names to factories.
type Registry map[string]Factory

// DefaultRegistry returns the built-in deployables: the NFs of the
// paper's evaluation, each pre-populated for the requested flow count.
func DefaultRegistry() Registry {
	return Registry{
		"nat":          natFactory,
		"upf-downlink": upfFactory,
		"sfc":          sfcFactory,
	}
}

func natFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	n, err := nat.New(as, nat.Config{MaxFlows: d.Flows})
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: d.Flows, PacketBytes: d.PacketBytes, Order: traffic.OrderUniform, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < d.Flows; i++ {
		if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			return nil, nil, err
		}
	}
	prog, err := n.Program()
	return prog, g, err
}

func upfFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	pdrs := d.PDRs
	if pdrs == 0 {
		pdrs = 16
	}
	u, err := upf.New(as, upf.Config{Sessions: d.Flows, PDRsPerSession: pdrs})
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewMGWGen(traffic.MGWConfig{
		Sessions: d.Flows, PDRs: pdrs, PacketBytes: d.PacketBytes, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	prog, err := u.DownlinkProgram()
	return prog, g, err
}

func sfcFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	length := d.SFCLength
	if length == 0 {
		length = 4
	}
	chain, err := BuildChain(as, length, d.Flows)
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: d.Flows, PacketBytes: d.PacketBytes, Order: traffic.OrderUniform, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	tuples := make([]pkt.FiveTuple, d.Flows)
	for i := range tuples {
		tuples[i] = g.FlowTuple(i)
	}
	if err := compile.PopulateFlows(chain, tuples); err != nil {
		return nil, nil, err
	}
	prog, err := compile.BuildSFC("sfc", chain, compile.SFCOptions{})
	return prog, g, err
}

// BuildChain constructs the paper's SFC of the given length (2–6):
// LB → NAT → NM → FW, extended with additional firewalls carrying
// different policies for lengths above four, exactly as §VII-B
// describes.
func BuildChain(as *mem.AddressSpace, length, flows int) ([]compile.Chainable, error) {
	if length < 2 || length > 6 {
		return nil, fmt.Errorf("director: SFC length %d outside [2,6]", length)
	}
	var chain []compile.Chainable
	l, err := lb.New(as, lb.Config{MaxFlows: flows})
	if err != nil {
		return nil, err
	}
	chain = append(chain, l)
	n, err := nat.New(as, nat.Config{MaxFlows: flows})
	if err != nil {
		return nil, err
	}
	chain = append(chain, n)
	if length >= 3 {
		m, err := monitor.New(as, monitor.Config{MaxFlows: flows})
		if err != nil {
			return nil, err
		}
		chain = append(chain, m)
	}
	for i := 4; i <= length; i++ {
		f, err := fw.New(as, fw.Config{
			Name:     fmt.Sprintf("fw%d", i-3),
			MaxFlows: flows,
			Policy:   fw.DefaultPolicy(8 * (i - 2)), // different policies per FW
		})
		if err != nil {
			return nil, err
		}
		chain = append(chain, f)
	}
	return chain, nil
}

// Agent is the per-host runtime agent: it registers with the director
// and executes deployments on a local simulated core.
type Agent struct {
	name string
	reg  Registry
	// SimConfig is the core configuration deployments run on.
	SimConfig sim.Config
	// OnStats, when set, observes every heartbeat this agent emits
	// (StatsEvery deployments only), before it goes on the wire. Local
	// exporters — the worker's expvar endpoint — hang off this hook.
	OnStats func(StatsReport)
}

// NewAgent builds an agent with the given deployable registry.
func NewAgent(name string, reg Registry) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("director: agent needs a name")
	}
	if len(reg) == 0 {
		return nil, fmt.Errorf("director: agent needs a registry")
	}
	return &Agent{name: name, reg: reg, SimConfig: sim.DefaultConfig()}, nil
}

// Run connects to the director and serves deployments until the
// connection closes or a shutdown arrives.
func (a *Agent) Run(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("director: agent %s: %w", a.name, err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Envelope{Type: TypeRegister, Agent: a.name}); err != nil {
		return fmt.Errorf("director: agent %s: register: %w", a.name, err)
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for scanner.Scan() {
		var env Envelope
		if err := json.Unmarshal(scanner.Bytes(), &env); err != nil {
			continue
		}
		switch env.Type {
		case TypeShutdown:
			return nil
		case TypeDeploy:
			reply := a.execute(env, func(hb Envelope) error { return enc.Encode(hb) })
			if err := enc.Encode(reply); err != nil {
				return fmt.Errorf("director: agent %s: reply: %w", a.name, err)
			}
		}
	}
	return nil // director closed the connection
}

// execute runs one deployment and builds the reply envelope. send, when
// non-nil, carries mid-run TypeStats heartbeats back to the director.
func (a *Agent) execute(env Envelope, send func(Envelope) error) Envelope {
	fail := func(err error) Envelope {
		return Envelope{Type: TypeError, Seq: env.Seq, Agent: a.name, Error: err.Error()}
	}
	if env.Deploy == nil {
		return fail(fmt.Errorf("deploy message without spec"))
	}
	d := *env.Deploy
	if err := d.Validate(); err != nil {
		return fail(err)
	}
	factory, ok := a.reg[d.NF]
	if !ok {
		return fail(fmt.Errorf("unknown NF %q", d.NF))
	}
	as := mem.NewAddressSpace()
	prog, src, err := factory(as, d)
	if err != nil {
		return fail(err)
	}
	core, err := sim.NewCore(a.SimConfig)
	if err != nil {
		return fail(err)
	}

	// Both runtimes expose the same windowed Run contract, so the
	// chunked telemetry loop below is runtime-agnostic.
	var run func(n uint64) (rt.Result, error)
	if d.Tasks > 0 {
		cfg := rt.DefaultConfig()
		cfg.Tasks = d.Tasks
		w, err := rt.NewWorker(core, as, prog, cfg)
		if err != nil {
			return fail(err)
		}
		run = func(n uint64) (rt.Result, error) { return w.Run(src, n) }
	} else {
		w, err := rtc.NewWorker(core, as, prog, rtc.DefaultConfig())
		if err != nil {
			return fail(err)
		}
		run = func(n uint64) (rt.Result, error) { return w.Run(src, n) }
	}

	if d.Warmup > 0 {
		if _, err := run(d.Warmup); err != nil {
			return fail(err)
		}
	}
	res, err := a.measure(d, env.Seq, run, send)
	if err != nil {
		return fail(err)
	}

	return Envelope{
		Type: TypeResult, Seq: env.Seq, Agent: a.name,
		Result: &Result{
			Agent:    a.name,
			Packets:  res.Packets,
			Bits:     res.Bits,
			Cycles:   res.Cycles,
			FreqHz:   res.FreqHz,
			Counters: res.Counters,
		},
	}
}

// measure runs the measured window, either in one piece or — when the
// spec asks for telemetry — in StatsEvery-packet chunks with a
// heartbeat after each. The returned result totals the whole window.
func (a *Agent) measure(d DeploySpec, seq int, run func(uint64) (rt.Result, error), send func(Envelope) error) (rt.Result, error) {
	if d.StatsEvery == 0 {
		return run(d.Packets)
	}
	var total rt.Result
	for window, remaining := 0, d.Packets; remaining > 0; window++ {
		n := d.StatsEvery
		if n > remaining {
			n = remaining
		}
		r, err := run(n)
		if err != nil {
			return rt.Result{}, err
		}
		total.Packets += r.Packets
		total.Bits += r.Bits
		total.Cycles += r.Cycles
		total.FreqHz = r.FreqHz
		total.Counters = total.Counters.Add(r.Counters)
		rep := StatsReport{
			Agent: a.name, NF: d.NF, Window: window,
			Packets: r.Packets, Bits: r.Bits,
			Cycles: r.Cycles, FreqHz: r.FreqHz, Counters: r.Counters,
		}
		if a.OnStats != nil {
			a.OnStats(rep)
		}
		if send != nil {
			if err := send(Envelope{Type: TypeStats, Seq: seq, Agent: a.name, Stats: &rep}); err != nil {
				return rt.Result{}, err
			}
		}
		if r.Packets < n {
			break // source drained early
		}
		remaining -= n
	}
	return total, nil
}
