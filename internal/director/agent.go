package director

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"

	"github.com/gunfu-nfv/gunfu/internal/compile"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/fw"
	"github.com/gunfu-nfv/gunfu/internal/nf/lb"
	"github.com/gunfu-nfv/gunfu/internal/nf/monitor"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/nf/upf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// Factory builds a deployable NF: the compiled program and the
// workload source for one run, with state drawn from as.
type Factory func(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error)

// Registry maps deployable NF names to factories.
type Registry map[string]Factory

// DefaultRegistry returns the built-in deployables: the NFs of the
// paper's evaluation, each pre-populated for the requested flow count.
func DefaultRegistry() Registry {
	return Registry{
		"nat":          natFactory,
		"upf-downlink": upfFactory,
		"sfc":          sfcFactory,
	}
}

func natFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	n, err := nat.New(as, nat.Config{MaxFlows: d.Flows})
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: d.Flows, PacketBytes: d.PacketBytes, Order: traffic.OrderUniform, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < d.Flows; i++ {
		if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			return nil, nil, err
		}
	}
	prog, err := n.Program()
	return prog, g, err
}

func upfFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	pdrs := d.PDRs
	if pdrs == 0 {
		pdrs = 16
	}
	u, err := upf.New(as, upf.Config{Sessions: d.Flows, PDRsPerSession: pdrs})
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewMGWGen(traffic.MGWConfig{
		Sessions: d.Flows, PDRs: pdrs, PacketBytes: d.PacketBytes, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	prog, err := u.DownlinkProgram()
	return prog, g, err
}

func sfcFactory(as *mem.AddressSpace, d DeploySpec) (*model.Program, rt.Source, error) {
	length := d.SFCLength
	if length == 0 {
		length = 4
	}
	chain, err := BuildChain(as, length, d.Flows)
	if err != nil {
		return nil, nil, err
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{
		Flows: d.Flows, PacketBytes: d.PacketBytes, Order: traffic.OrderUniform, Seed: d.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	tuples := make([]pkt.FiveTuple, d.Flows)
	for i := range tuples {
		tuples[i] = g.FlowTuple(i)
	}
	if err := compile.PopulateFlows(chain, tuples); err != nil {
		return nil, nil, err
	}
	prog, err := compile.BuildSFC("sfc", chain, compile.SFCOptions{})
	return prog, g, err
}

// BuildChain constructs the paper's SFC of the given length (2–6):
// LB → NAT → NM → FW, extended with additional firewalls carrying
// different policies for lengths above four, exactly as §VII-B
// describes.
func BuildChain(as *mem.AddressSpace, length, flows int) ([]compile.Chainable, error) {
	if length < 2 || length > 6 {
		return nil, fmt.Errorf("director: SFC length %d outside [2,6]", length)
	}
	var chain []compile.Chainable
	l, err := lb.New(as, lb.Config{MaxFlows: flows})
	if err != nil {
		return nil, err
	}
	chain = append(chain, l)
	n, err := nat.New(as, nat.Config{MaxFlows: flows})
	if err != nil {
		return nil, err
	}
	chain = append(chain, n)
	if length >= 3 {
		m, err := monitor.New(as, monitor.Config{MaxFlows: flows})
		if err != nil {
			return nil, err
		}
		chain = append(chain, m)
	}
	for i := 4; i <= length; i++ {
		f, err := fw.New(as, fw.Config{
			Name:     fmt.Sprintf("fw%d", i-3),
			MaxFlows: flows,
			Policy:   fw.DefaultPolicy(8 * (i - 2)), // different policies per FW
		})
		if err != nil {
			return nil, err
		}
		chain = append(chain, f)
	}
	return chain, nil
}

// Agent is the per-host runtime agent: it registers with the director
// and executes deployments on a local simulated core.
type Agent struct {
	name string
	reg  Registry
	// SimConfig is the core configuration deployments run on.
	SimConfig sim.Config
}

// NewAgent builds an agent with the given deployable registry.
func NewAgent(name string, reg Registry) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("director: agent needs a name")
	}
	if len(reg) == 0 {
		return nil, fmt.Errorf("director: agent needs a registry")
	}
	return &Agent{name: name, reg: reg, SimConfig: sim.DefaultConfig()}, nil
}

// Run connects to the director and serves deployments until the
// connection closes or a shutdown arrives.
func (a *Agent) Run(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("director: agent %s: %w", a.name, err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Envelope{Type: TypeRegister, Agent: a.name}); err != nil {
		return fmt.Errorf("director: agent %s: register: %w", a.name, err)
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for scanner.Scan() {
		var env Envelope
		if err := json.Unmarshal(scanner.Bytes(), &env); err != nil {
			continue
		}
		switch env.Type {
		case TypeShutdown:
			return nil
		case TypeDeploy:
			reply := a.execute(env)
			if err := enc.Encode(reply); err != nil {
				return fmt.Errorf("director: agent %s: reply: %w", a.name, err)
			}
		}
	}
	return nil // director closed the connection
}

// execute runs one deployment and builds the reply envelope.
func (a *Agent) execute(env Envelope) Envelope {
	fail := func(err error) Envelope {
		return Envelope{Type: TypeError, Seq: env.Seq, Agent: a.name, Error: err.Error()}
	}
	if env.Deploy == nil {
		return fail(fmt.Errorf("deploy message without spec"))
	}
	d := *env.Deploy
	if err := d.Validate(); err != nil {
		return fail(err)
	}
	factory, ok := a.reg[d.NF]
	if !ok {
		return fail(fmt.Errorf("unknown NF %q", d.NF))
	}
	as := mem.NewAddressSpace()
	prog, src, err := factory(as, d)
	if err != nil {
		return fail(err)
	}
	core, err := sim.NewCore(a.SimConfig)
	if err != nil {
		return fail(err)
	}

	var res rt.Result
	if d.Tasks > 0 {
		cfg := rt.DefaultConfig()
		cfg.Tasks = d.Tasks
		w, err := rt.NewWorker(core, as, prog, cfg)
		if err != nil {
			return fail(err)
		}
		if d.Warmup > 0 {
			if _, err := w.Run(src, d.Warmup); err != nil {
				return fail(err)
			}
		}
		if res, err = w.Run(src, d.Packets); err != nil {
			return fail(err)
		}
	} else {
		w, err := rtc.NewWorker(core, as, prog, rtc.DefaultConfig())
		if err != nil {
			return fail(err)
		}
		if d.Warmup > 0 {
			if _, err := w.Run(src, d.Warmup); err != nil {
				return fail(err)
			}
		}
		if res, err = w.Run(src, d.Packets); err != nil {
			return fail(err)
		}
	}

	return Envelope{
		Type: TypeResult, Seq: env.Seq, Agent: a.name,
		Result: &Result{
			Agent:    a.name,
			Packets:  res.Packets,
			Bits:     res.Bits,
			Cycles:   res.Cycles,
			FreqHz:   res.FreqHz,
			Counters: res.Counters,
		},
	}
}
