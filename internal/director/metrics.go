package director

import (
	"sync"

	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// MetricsBridge folds StatsReport heartbeats into an obs.Registry, so
// one /metrics endpoint exposes everything a serving GuNFu process
// knows: cumulative volume counters, the labeled raw PMU block,
// last-window derived rates, and rx→done latency quantiles. Hang its
// Observe off Agent.OnStats (worker-local view) or
// Director.SetStatsHandler (cluster view — series then aggregate all
// agents reporting through this process).
//
// Every metric is defined exactly once, here; the worker's expvar
// endpoint republishes Registry.Snapshot rather than keeping a second
// set of fields.
type MetricsBridge struct {
	reg *obs.Registry

	windows  *obs.Metric
	packets  *obs.Metric
	bits     *obs.Metric
	cycles   *obs.Metric
	stalls   *obs.Metric
	switches *obs.Metric
	pmu      *obs.Family
	rates    *obs.Family
	info     *obs.Family

	mu       sync.Mutex
	counters sim.Counters
	latency  stats.Histogram
	lastNF   string
}

// NewMetricsBridge registers the gunfu_* families on reg and returns
// the bridge. Registering two bridges on one registry is a metric
// redefinition and panics, matching the "fields defined once" rule.
func NewMetricsBridge(reg *obs.Registry) *MetricsBridge {
	b := &MetricsBridge{
		reg:      reg,
		windows:  reg.Counter("gunfu_stats_windows", "Telemetry heartbeats observed."),
		packets:  reg.Counter("gunfu_packets", "Packets processed across observed windows."),
		bits:     reg.Counter("gunfu_bits", "Payload bits processed across observed windows."),
		cycles:   reg.Counter("gunfu_cycles", "Simulated core cycles across observed windows."),
		stalls:   reg.Counter("gunfu_stall_cycles", "Simulated cycles stalled on memory."),
		switches: reg.Counter("gunfu_task_switches", "NFTask scheduler switches."),
		pmu:      reg.CounterFamily("gunfu_pmu", "Raw PMU counter block, one series per counter."),
		rates:    reg.GaugeFamily("gunfu_window", "Derived rates of the most recent telemetry window."),
		info:     reg.GaugeFamily("gunfu_deployment_info", "Currently deployed NF (value is always 1)."),
	}
	reg.Summary("gunfu_latency_cycles", "rx to done packet latency in simulated cycles.",
		func() *stats.Histogram {
			b.mu.Lock()
			defer b.mu.Unlock()
			return b.latency.Clone()
		})
	return b
}

// Registry returns the registry the bridge publishes into.
func (b *MetricsBridge) Registry() *obs.Registry { return b.reg }

// RegisterLiveness exposes the director's agent-liveness view on reg:
// how many agents are connected right now, how many the heartbeat
// checker considers live, and how many it has marked dead. Values are
// computed at scrape time from the director's state (EnableLiveness
// drives the live/dead split; without it every seen agent stays live).
func RegisterLiveness(reg *obs.Registry, d *Director) {
	reg.GaugeFunc("gunfu_agents_connected", "Agents with an open control-plane connection.",
		func() float64 { return float64(len(d.Agents())) })
	reg.GaugeFunc("gunfu_agents_live", "Agents currently considered live by the heartbeat checker.",
		func() float64 {
			n := 0
			for _, info := range d.AgentInfos() {
				if info.Live {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("gunfu_agents_dead", "Agents marked dead after missed heartbeat windows.",
		func() float64 {
			n := 0
			for _, info := range d.AgentInfos() {
				if !info.Live {
					n++
				}
			}
			return float64(n)
		})
}

// Observe folds one heartbeat into the registry. Counter families
// accumulate across windows; the gunfu_window gauges always describe
// the newest window only.
func (b *MetricsBridge) Observe(r StatsReport) {
	b.mu.Lock()
	b.counters = b.counters.Add(r.Counters)
	cum := b.counters
	if r.Latency != nil {
		b.latency.Merge(r.Latency)
	}
	if r.NF != b.lastNF {
		b.lastNF = r.NF
		b.info.ResetSeries()
		b.info.With("nf", r.NF).Set(1)
	}
	b.mu.Unlock()

	b.windows.Inc()
	b.packets.Add(float64(r.Packets))
	b.bits.Add(r.Bits)
	b.cycles.Add(float64(r.Cycles))
	b.stalls.Add(float64(r.Counters.StallCycles))
	b.switches.Add(float64(r.Counters.TaskSwitches))

	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"instructions", cum.Instructions},
		{"reads", cum.Reads},
		{"writes", cum.Writes},
		{"l1_hits", cum.L1Hits},
		{"l1_misses", cum.L1Misses},
		{"l2_hits", cum.L2Hits},
		{"l2_misses", cum.L2Misses},
		{"llc_hits", cum.LLCHits},
		{"llc_misses", cum.LLCMisses},
		{"prefetch_issued", cum.PrefetchIssued},
		{"prefetch_dropped", cum.PrefetchDropped},
		{"prefetch_redundant", cum.PrefetchRedundant},
		{"prefetch_useful", cum.PrefetchUseful},
		{"prefetch_late", cum.PrefetchLate},
	} {
		b.pmu.With("counter", c.name).Set(float64(c.v))
	}

	for _, g := range []struct {
		name string
		v    float64
	}{
		{"ipc", r.Counters.IPC()},
		{"mpki", r.Counters.MPKI()},
		{"stall_fraction", r.Counters.StallFraction()},
		{"prefetch_accuracy", r.Counters.PrefetchAccuracy()},
		{"l1_hit_rate", r.Counters.L1HitRate()},
		{"mpps", r.Mpps()},
		{"gbps", r.Gbps()},
	} {
		b.rates.With("rate", g.name).Set(g.v)
	}
}
