package director

import (
	"bufio"
	"encoding/json"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// latencyHist builds a histogram of the given samples.
func latencyHist(vs ...uint64) *stats.Histogram {
	var h stats.Histogram
	for _, v := range vs {
		h.Add(v)
	}
	return &h
}

func TestEnvelopeRoundTrip(t *testing.T) {
	ctr := sim.Counters{Cycles: 123, Instructions: 456, L1Misses: 7, StallCycles: 89}
	cases := []Envelope{
		{Type: TypeRegister, Agent: "w1"},
		{Type: TypeDeploy, Seq: 3, Deploy: &DeploySpec{
			NF: "sfc", Flows: 1024, Packets: 5000, Warmup: 100, PacketBytes: 128,
			Tasks: 16, Seed: 9, SFCLength: 5, PDRs: 8, StatsEvery: 500,
		}},
		{Type: TypeResult, Seq: 3, Agent: "w1", Result: &Result{
			Agent: "w1", Packets: 5000, Bits: 2.56e6, Cycles: 1e6, FreqHz: 2.7e9, Counters: ctr,
		}},
		{Type: TypeStats, Seq: 3, Agent: "w1", Stats: &StatsReport{
			Agent: "w1", NF: "sfc", Window: 2, Packets: 500, Bits: 2.56e5,
			Cycles: 1e5, FreqHz: 2.7e9, Counters: ctr,
		}},
		{Type: TypeStats, Seq: 3, Agent: "w1", Stats: &StatsReport{
			Agent: "w1", NF: "nat", Window: 0, Packets: 3, Bits: 1536,
			Cycles: 900, FreqHz: 2.7e9, Latency: latencyHist(120, 340, 2200),
		}},
		{Type: TypeDump, Agent: "w1"},
		{Type: TypeDumpDone, Agent: "w1", Dump: &DumpInfo{
			Agent: "w1", Path: "/tmp/gunfu-flight-w1-0.json", Events: 65536,
		}},
		{Type: TypeDumpDone, Agent: "w2", Dump: &DumpInfo{
			Agent: "w2", Error: "flight recorder disabled",
		}},
		{Type: TypeError, Seq: 4, Agent: "w1", Error: "unknown NF \"warp\""},
		{Type: TypeShutdown},
	}
	for _, want := range cases {
		b, err := encode(want)
		if err != nil {
			t.Fatalf("%s: %v", want.Type, err)
		}
		if b[len(b)-1] != '\n' {
			t.Fatalf("%s: encoded line not newline-terminated", want.Type)
		}
		var got Envelope
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestStatsReportRates(t *testing.T) {
	r := StatsReport{Packets: 1000, Bits: 512000, Cycles: 1000000, FreqHz: 1e9}
	if g := r.Gbps(); g < 0.5119 || g > 0.5121 {
		t.Fatalf("Gbps = %v", g)
	}
	if m := r.Mpps(); m < 0.99 || m > 1.01 {
		t.Fatalf("Mpps = %v", m)
	}
	if (StatsReport{}).Gbps() != 0 || (StatsReport{}).Mpps() != 0 {
		t.Fatal("zero report must rate 0")
	}
}

// TestAgentSkipsMalformedAndUnknown drives a real Agent from a fake
// director: garbage lines and unknown message types must be ignored,
// and the agent must still serve the deploy that follows.
func TestAgentSkipsMalformedAndUnknown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	a, err := NewAgent("w1", DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Run(ln.Addr().String()) }()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		t.Fatal("no registration")
	}
	var reg Envelope
	if err := json.Unmarshal(sc.Bytes(), &reg); err != nil || reg.Type != TypeRegister || reg.Agent != "w1" {
		t.Fatalf("bad registration %q: %v", sc.Text(), err)
	}

	lines := []string{
		"{not json at all",             // malformed: skipped
		`{"type":"telepathy","seq":1}`, // unknown type: skipped
		`{"type":"deploy","seq":2,"deploy":{"nf":"nat","flows":64,"packets":200,"packet_bytes":64,"tasks":4}}`,
	}
	for _, l := range lines {
		if _, err := conn.Write([]byte(l + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	if !sc.Scan() {
		t.Fatal("no reply to deploy")
	}
	var reply Envelope
	if err := json.Unmarshal(sc.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeResult || reply.Seq != 2 || reply.Result == nil || reply.Result.Packets != 200 {
		t.Fatalf("reply = %+v", reply)
	}

	// A deploy without a spec is the error path, not a dropped message.
	if _, err := conn.Write([]byte(`{"type":"deploy","seq":3}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("no reply to bad deploy")
	}
	if err := json.Unmarshal(sc.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError || reply.Seq != 3 || reply.Error == "" {
		t.Fatalf("reply = %+v", reply)
	}

	if _, err := conn.Write([]byte(`{"type":"shutdown"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("agent exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not shut down")
	}
}

// TestDeployUnexpectedReply covers the director's unknown-reply-type
// error path with a fake agent that answers a deploy with nonsense.
func TestDeployUnexpectedReply(t *testing.T) {
	d := New()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"type":"register","agent":"fake"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(conn)
		if !sc.Scan() {
			return
		}
		var env Envelope
		if json.Unmarshal(sc.Bytes(), &env) != nil {
			return
		}
		resp, _ := encode(Envelope{Type: "telepathy", Seq: env.Seq})
		_, _ = conn.Write(resp)
	}()

	_, err = d.Deploy("fake", DeploySpec{NF: "nat", Flows: 1, Packets: 1, PacketBytes: 64}, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "unexpected reply") {
		t.Fatalf("err = %v", err)
	}
}
