package director

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

func TestSLOCheck(t *testing.T) {
	// A window: 1000 packets in 1e6 cycles at 1 GHz = 1 Mpps, 40% stall.
	rep := StatsReport{
		Agent: "w", NF: "nat", Packets: 1000, Cycles: 1e6, FreqHz: 1e9,
		Counters: sim.Counters{Cycles: 1e6, StallCycles: 4e5},
		Latency:  latencyHist(100, 200, 3000),
	}
	cases := []struct {
		name string
		slo  SLO
		want int
	}{
		{"zero SLO checks nothing", SLO{}, 0},
		{"all pass", SLO{MaxStallFraction: 0.5, MinMpps: 0.5, MaxP99LatencyCycles: 5000}, 0},
		{"stall breach", SLO{MaxStallFraction: 0.3}, 1},
		{"throughput breach", SLO{MinMpps: 2}, 1},
		{"latency breach", SLO{MaxP99LatencyCycles: 1000}, 1},
		{"all breach", SLO{MaxStallFraction: 0.3, MinMpps: 2, MaxP99LatencyCycles: 1000}, 3},
	}
	for _, c := range cases {
		if got := c.slo.Check(rep); len(got) != c.want {
			t.Fatalf("%s: reasons = %v, want %d", c.name, got, c.want)
		}
	}
	// Latency SLO is skipped when the heartbeat carries no histogram.
	noLat := rep
	noLat.Latency = nil
	if got := (SLO{MaxP99LatencyCycles: 1}).Check(noLat); len(got) != 0 {
		t.Fatalf("latency SLO checked without histogram: %v", got)
	}
}

func TestWatcherTransitions(t *testing.T) {
	var breaches []Breach
	w := NewWatcher(SLO{MinMpps: 1})
	w.OnBreach = func(b Breach) { breaches = append(breaches, b) }

	good := StatsReport{Agent: "w1", NF: "nat", Packets: 2000, Cycles: 1e6, FreqHz: 1e9}
	bad := good
	bad.Packets = 10

	if !w.Healthy("w1") {
		t.Fatal("unobserved agent must be healthy")
	}
	w.Observe(good)
	if !w.Healthy("w1") || len(breaches) != 0 {
		t.Fatalf("healthy window flagged: %v", breaches)
	}
	bad.Window = 1
	w.Observe(bad)
	bad.Window = 2
	w.Observe(bad) // still unhealthy: no second firing
	if w.Healthy("w1") {
		t.Fatal("breach did not flip health")
	}
	if len(breaches) != 1 {
		t.Fatalf("OnBreach fired %d times, want once per transition", len(breaches))
	}
	b := breaches[0]
	if b.Agent != "w1" || b.NF != "nat" || b.Window != 1 || len(b.Reasons) != 1 {
		t.Fatalf("breach = %+v", b)
	}
	if !strings.Contains(b.Reasons[0], "Mpps") {
		t.Fatalf("reason = %q", b.Reasons[0])
	}

	// A healthy window re-arms; the next breach fires again.
	w.Observe(good)
	if !w.Healthy("w1") {
		t.Fatal("recovery not observed")
	}
	w.Observe(bad)
	if len(breaches) != 2 || w.Breaches("w1") != 2 {
		t.Fatalf("breaches = %d/%d", len(breaches), w.Breaches("w1"))
	}

	// Agents are tracked independently.
	other := bad
	other.Agent = "w2"
	w.Observe(other)
	if w.Healthy("w2") || !strings.Contains("w1", breaches[1].Agent) {
		t.Fatal("per-agent health not independent")
	}
}

func TestMonitorLatencyAggregation(t *testing.T) {
	m := NewMonitor()
	// Two agents, two windows each; cluster view merges all four.
	m.Observe(StatsReport{Agent: "a", NF: "nat", Window: 0, Latency: latencyHist(10, 20)})
	m.Observe(StatsReport{Agent: "a", NF: "nat", Window: 1, Latency: latencyHist(30)})
	m.Observe(StatsReport{Agent: "b", NF: "nat", Window: 0, Latency: latencyHist(1000, 2000)})
	m.Observe(StatsReport{Agent: "c", NF: "nat", Window: 0}) // no latency requested

	if h := m.AgentLatency("a"); h.Count() != 3 || h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("agent a latency count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if h := m.AgentLatency("c"); h != nil {
		t.Fatal("latency-less agent must report nil")
	}
	cl := m.ClusterLatency()
	if cl.Count() != 5 || cl.Min() != 10 || cl.Max() != 2000 {
		t.Fatalf("cluster count/min/max = %d/%d/%d", cl.Count(), cl.Min(), cl.Max())
	}
	// Returned histograms are copies: mutating one must not leak back.
	cl.Add(1 << 40)
	if m.ClusterLatency().Count() != 5 {
		t.Fatal("ClusterLatency leaked internal state")
	}
}

// TestWatcherConcurrent hammers Observe from several goroutines; run
// under -race this pins the locking contract of Watcher and Monitor.
func TestWatcherConcurrent(t *testing.T) {
	m := NewMonitor()
	w := NewWatcher(SLO{MinMpps: 1})
	var fired sync.Map
	w.OnBreach = func(b Breach) { fired.Store(b.Agent, true) }
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			agent := agentName(g)
			for i := 0; i < 200; i++ {
				r := StatsReport{
					Agent: agent, NF: "nat", Window: i,
					Packets: uint64(10 + i%2*10000), Cycles: 1e6, FreqHz: 1e9,
					Latency: latencyHist(uint64(i + 1)),
				}
				m.Observe(r)
				w.Observe(r)
			}
		}(g)
	}
	wg.Wait()
	if cl := m.ClusterLatency(); cl.Count() != 800 {
		t.Fatalf("cluster samples = %d", cl.Count())
	}
	for g := 0; g < 4; g++ {
		if _, ok := fired.Load(agentName(g)); !ok {
			t.Fatalf("agent %s never breached", agentName(g))
		}
	}
}

func TestMetricsBridge(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewMetricsBridge(reg)
	if b.Registry() != reg {
		t.Fatal("Registry() identity")
	}
	b.Observe(StatsReport{
		Agent: "w", NF: "nat", Window: 0, Packets: 1000, Bits: 512000,
		Cycles: 1e6, FreqHz: 1e9,
		Counters: sim.Counters{
			Cycles: 1e6, Instructions: 15e5, StallCycles: 25e4,
			Reads: 4000, Writes: 1000, L1Hits: 4500, L1Misses: 500,
			PrefetchIssued: 400, PrefetchUseful: 300, TaskSwitches: 900,
		},
		Latency: latencyHist(100, 200, 400, 800),
	})
	b.Observe(StatsReport{
		Agent: "w", NF: "nat", Window: 1, Packets: 500, Bits: 256000,
		Cycles: 5e5, FreqHz: 1e9,
		Counters: sim.Counters{Cycles: 5e5, Instructions: 1e6, L1Hits: 2000, StallCycles: 1e5},
		Latency:  latencyHist(1600),
	})

	var sb strings.Builder
	if err := reg.Expose(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"gunfu_stats_windows_total 2\n",
		"gunfu_packets_total 1500\n",
		"gunfu_cycles_total 1500000\n",
		"gunfu_stall_cycles_total 350000\n",
		"gunfu_task_switches_total 900\n",
		`gunfu_pmu_total{counter="l1_hits"} 6500` + "\n",
		`gunfu_pmu_total{counter="instructions"} 2500000` + "\n",
		`gunfu_window{rate="ipc"} 2` + "\n", // last window only
		`gunfu_window{rate="stall_fraction"} 0.2` + "\n",
		`gunfu_window{rate="mpps"} 1` + "\n",
		`gunfu_deployment_info{nf="nat"} 1` + "\n",
		"gunfu_latency_cycles_count 5\n",
		`gunfu_latency_cycles{quantile="0.5"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// A redeploy to a different NF swaps the info series.
	b.Observe(StatsReport{Agent: "w", NF: "sfc", Window: 0, Packets: 1, Cycles: 1, FreqHz: 1e9})
	snap := reg.Snapshot()
	if snap[`gunfu_deployment_info{nf="sfc"}`] != 1 {
		t.Fatalf("info not swapped: %v", snap)
	}
	if _, stale := snap[`gunfu_deployment_info{nf="nat"}`]; stale {
		t.Fatal("stale deployment_info series survived")
	}
}

// TestSLOBreachTriggersFlightDump is the paper-trail e2e: a deployment
// that cannot meet an impossible throughput SLO breaches on its first
// heartbeat, the watcher asks the offending worker for a flight dump
// mid-run, and the worker answers with a Perfetto-loadable trace file.
func TestSLOBreachTriggersFlightDump(t *testing.T) {
	d := New()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	a, err := NewAgent("w-slo", DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	a.FlightEvents = 4096
	a.DumpDir = t.TempDir()
	type hook struct {
		info  DumpInfo
		trace []byte
	}
	hooked := make(chan hook, 4)
	a.OnDump = func(info DumpInfo, trace []byte) {
		hooked <- hook{info, append([]byte(nil), trace...)}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = a.Run(addr)
	}()
	defer func() {
		_ = d.Close()
		wg.Wait()
	}()
	if err := d.WaitAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// No simulated core sustains 1e6 Mpps: every window breaches.
	watcher := NewWatcher(SLO{MinMpps: 1e6})
	watcher.OnBreach = func(b Breach) {
		if err := d.RequestFlightDump(b.Agent); err != nil {
			t.Errorf("dump request: %v", err)
		}
	}
	mon := NewMonitor()
	d.SetStatsHandler(func(r StatsReport) {
		mon.Observe(r)
		watcher.Observe(r)
	})
	dumps := make(chan DumpInfo, 4)
	d.SetDumpHandler(func(info DumpInfo) { dumps <- info })

	res, err := d.Deploy("w-slo", DeploySpec{
		NF: "nat", Flows: 1024, Packets: 4000, Warmup: 200,
		PacketBytes: 64, Tasks: 8, Seed: 7, StatsEvery: 1000, Latency: true,
	}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 4000 {
		t.Fatalf("packets = %d", res.Packets)
	}
	if watcher.Healthy("w-slo") || watcher.Breaches("w-slo") != 1 {
		t.Fatalf("healthy=%v breaches=%d", watcher.Healthy("w-slo"), watcher.Breaches("w-slo"))
	}

	var info DumpInfo
	select {
	case info = <-dumps:
	case <-time.After(10 * time.Second):
		t.Fatal("no dump notice within 10s")
	}
	if info.Error != "" {
		t.Fatalf("dump failed: %s", info.Error)
	}
	if info.Agent != "w-slo" || info.Events == 0 || info.Path == "" {
		t.Fatalf("dump info = %+v", info)
	}
	raw, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not valid trace JSON: %v", err)
	}
	var slices int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Fatalf("dump has no duration slices (%d events)", len(doc.TraceEvents))
	}

	// The agent-local OnDump hook saw the same dump, bytes included.
	select {
	case h := <-hooked:
		if h.info.Path != info.Path || len(h.trace) != len(raw) {
			t.Fatalf("hook saw %+v (%d bytes), wire said %+v (%d bytes)",
				h.info, len(h.trace), info, len(raw))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent OnDump hook never fired")
	}

	// Latency telemetry flowed end to end into cluster aggregation.
	if cl := mon.ClusterLatency(); cl.Count() != 4000 {
		t.Fatalf("cluster latency samples = %d", cl.Count())
	}
	if mon.AgentLatency("w-slo").Quantile(0.99) == 0 {
		t.Fatal("p99 latency is zero")
	}
}

// TestDumpOnIdleAgent asks an agent that has already finished its
// deployment for a dump: the request is served from the idle loop.
func TestDumpOnIdleAgent(t *testing.T) {
	d := New()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent("w-idle", DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	a.FlightEvents = 1024
	a.DumpDir = t.TempDir()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = a.Run(addr)
	}()
	defer func() {
		_ = d.Close()
		wg.Wait()
	}()
	if err := d.WaitAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	dumps := make(chan DumpInfo, 1)
	d.SetDumpHandler(func(info DumpInfo) { dumps <- info })

	// Before any deployment the ring has nothing to say.
	if err := d.RequestFlightDump("w-idle"); err != nil {
		t.Fatal(err)
	}
	select {
	case info := <-dumps:
		if info.Error == "" {
			t.Fatalf("pre-deployment dump must fail, got %+v", info)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no dump notice within 10s")
	}

	if _, err := d.Deploy("w-idle", DeploySpec{
		NF: "nat", Flows: 256, Packets: 1500, PacketBytes: 64, Tasks: 8, Seed: 8,
	}, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.RequestFlightDump("w-idle"); err != nil {
		t.Fatal(err)
	}
	select {
	case info := <-dumps:
		if info.Error != "" || info.Events == 0 {
			t.Fatalf("idle dump = %+v", info)
		}
		if _, err := os.Stat(info.Path); err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no dump notice within 10s")
	}

	if err := d.RequestFlightDump("ghost"); err == nil {
		t.Fatal("unknown agent accepted")
	}
}

// TestMonitorRestartResets pins the churn contract: a heartbeat whose
// window index regresses means the deployment restarted (agent died
// mid-run and the retry re-ran it), and the abandoned run's totals and
// latency windows must vanish from both the per-agent and cluster
// views instead of double-counting.
func TestMonitorRestartResets(t *testing.T) {
	m := NewMonitor()
	m.Observe(StatsReport{Agent: "a", NF: "nat", Window: 0, Packets: 100, Latency: latencyHist(10)})
	m.Observe(StatsReport{Agent: "a", NF: "nat", Window: 1, Packets: 100, Latency: latencyHist(20)})
	// The restart: window 0 again.
	m.Observe(StatsReport{Agent: "a", NF: "nat", Window: 0, Packets: 50, Latency: latencyHist(30)})

	tab := m.Table()
	col, err := tab.ColumnIndex("total pkts")
	if err != nil {
		t.Fatal(err)
	}
	if total, err := tab.CellFloat(0, col); err != nil || total != 50 {
		t.Fatalf("total pkts after restart = %v (%v), want 50", total, err)
	}
	if h := m.AgentLatency("a"); h.Count() != 1 || h.Min() != 30 {
		t.Fatalf("agent latency after restart = %d samples, min %d", h.Count(), h.Min())
	}
	if cl := m.ClusterLatency(); cl.Count() != 1 {
		t.Fatalf("cluster latency after restart = %d samples", cl.Count())
	}

	// A same-window duplicate (replayed heartbeat) is treated the same
	// way — the totals never exceed what one run produced.
	m.Observe(StatsReport{Agent: "a", NF: "nat", Window: 0, Packets: 50, Latency: latencyHist(40)})
	if total, err := m.Table().CellFloat(0, col); err != nil || total != 50 {
		t.Fatalf("total pkts after duplicate window = %v (%v)", total, err)
	}
}

// TestMonitorLiveness pins SetLive/Live/Table: a dead verdict flags the
// row (creating a placeholder for agents that died before their first
// heartbeat), and a revival clears it.
func TestMonitorLiveness(t *testing.T) {
	m := NewMonitor()
	if !m.Live("ghost") {
		t.Fatal("unjudged agent must default to live")
	}
	m.SetLive("ghost", false)
	if m.Live("ghost") {
		t.Fatal("dead verdict not recorded")
	}
	tab := m.Table()
	if tab.NumRows() != 1 {
		t.Fatalf("rows = %d, want placeholder row", tab.NumRows())
	}
	col, err := tab.ColumnIndex("live")
	if err != nil {
		t.Fatal(err)
	}
	if cell, err := tab.Cell(0, col); err != nil || cell != "DEAD" {
		t.Fatalf("live cell = %q (%v)", cell, err)
	}
	m.SetLive("ghost", true)
	if !m.Live("ghost") {
		t.Fatal("revival not recorded")
	}
	if cell, _ := m.Table().Cell(0, col); cell != "yes" {
		t.Fatalf("live cell after revival = %q", cell)
	}
}

// TestWatcherNoDuplicateBreachAcrossRestart: an agent that dies
// unhealthy, reconnects, and replays an equally unhealthy window must
// not fire a second breach — the healthy→unhealthy edge never
// re-occurred, so re-firing would double the flight dumps.
func TestWatcherNoDuplicateBreachAcrossRestart(t *testing.T) {
	w := NewWatcher(SLO{MinMpps: 1})
	fired := 0
	w.OnBreach = func(Breach) { fired++ }
	bad := StatsReport{Agent: "w1", NF: "nat", Window: 0, Packets: 10, Cycles: 1e6, FreqHz: 1e9}
	w.Observe(bad)
	// Death, reconnect, re-run: the replayed run starts at window 0.
	w.Observe(bad)
	if fired != 1 {
		t.Fatalf("breaches fired = %d, want 1", fired)
	}
	// Only an actual recovery re-arms.
	good := bad
	good.Packets = 2000
	good.Window = 1
	w.Observe(good)
	bad.Window = 2
	w.Observe(bad)
	if fired != 2 {
		t.Fatalf("breaches after recovery = %d, want 2", fired)
	}
}

// TestStatsHandlerSwapMidRun swaps the director's stats handler while
// heartbeats stream; under -race this pins the handler locking.
func TestStatsHandlerSwapMidRun(t *testing.T) {
	d := New()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent("w-swap", DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = a.Run(addr)
	}()
	defer func() {
		_ = d.Close()
		wg.Wait()
	}()
	if err := d.WaitAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	var aCount, bCount int
	var mu sync.Mutex
	handlerA := func(StatsReport) { mu.Lock(); aCount++; mu.Unlock() }
	handlerB := func(StatsReport) { mu.Lock(); bCount++; mu.Unlock() }
	d.SetStatsHandler(handlerA)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-time.After(time.Millisecond):
				if i%2 == 0 {
					d.SetStatsHandler(handlerB)
				} else {
					d.SetStatsHandler(handlerA)
				}
			case <-done:
				return
			}
		}
	}()

	if _, err := d.Deploy("w-swap", DeploySpec{
		NF: "nat", Flows: 512, Packets: 6000, PacketBytes: 64,
		Tasks: 8, Seed: 9, StatsEvery: 500,
	}, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	done <- struct{}{}
	<-done

	mu.Lock()
	defer mu.Unlock()
	if aCount+bCount != 12 {
		t.Fatalf("handlers saw %d+%d heartbeats, want 12 total", aCount, bCount)
	}
}
