package director

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gunfu-nfv/gunfu/internal/mem"
)

// startCluster brings up a director and n agents on loopback and
// returns the director plus a shutdown func.
func startCluster(t *testing.T, n int) (*Director, func()) {
	t.Helper()
	d := New()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		a, err := NewAgent(agentName(i), DefaultRegistry())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Run returns when the director closes the connection.
			_ = a.Run(addr)
		}()
	}
	if err := d.WaitAgents(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return d, func() {
		_ = d.Close()
		wg.Wait()
	}
}

func agentName(i int) string {
	return "worker-" + string(rune('a'+i))
}

func TestDeployNAT(t *testing.T) {
	d, stop := startCluster(t, 1)
	defer stop()

	res, err := d.Deploy(agentName(0), DeploySpec{
		NF: "nat", Flows: 1024, Packets: 5000, Warmup: 500,
		PacketBytes: 64, Tasks: 16, Seed: 1,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 5000 {
		t.Fatalf("packets = %d", res.Packets)
	}
	if res.Gbps() <= 0 {
		t.Fatalf("throughput = %v", res.Gbps())
	}
	if res.Agent != agentName(0) {
		t.Fatalf("agent = %q", res.Agent)
	}
}

func TestDeployRTCvsInterleaved(t *testing.T) {
	d, stop := startCluster(t, 1)
	defer stop()

	spec := DeploySpec{NF: "nat", Flows: 32768, Packets: 15000, Warmup: 3000, PacketBytes: 64, Seed: 2}
	rtcSpec := spec
	rtcSpec.Tasks = 0 // RTC baseline
	ilSpec := spec
	ilSpec.Tasks = 16

	rtcRes, err := d.Deploy(agentName(0), rtcSpec, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ilRes, err := d.Deploy(agentName(0), ilSpec, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ilRes.Gbps() <= rtcRes.Gbps() {
		t.Fatalf("interleaved (%v Gbps) not faster than RTC (%v Gbps)", ilRes.Gbps(), rtcRes.Gbps())
	}
}

func TestDeployAllParallel(t *testing.T) {
	d, stop := startCluster(t, 3)
	defer stop()

	results, err := d.DeployAll(DeploySpec{
		NF: "sfc", SFCLength: 3, Flows: 512, Packets: 2000, PacketBytes: 64, Tasks: 8, Seed: 3,
	}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Packets != 2000 {
			t.Fatalf("agent %s processed %d", r.Agent, r.Packets)
		}
	}
}

func TestDeployUPF(t *testing.T) {
	d, stop := startCluster(t, 1)
	defer stop()
	res, err := d.Deploy(agentName(0), DeploySpec{
		NF: "upf-downlink", Flows: 2048, PDRs: 8, Packets: 3000, PacketBytes: 128, Tasks: 16, Seed: 4,
	}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 3000 {
		t.Fatalf("packets = %d", res.Packets)
	}
}

// TestDeployHeartbeats runs a deployment with StatsEvery set and
// checks the streamed telemetry end to end: the director's handler and
// the agent's local OnStats hook both see every window, and the window
// deltas sum exactly to the final result.
func TestDeployHeartbeats(t *testing.T) {
	d := New()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var received []StatsReport
	mon := NewMonitor()
	d.SetStatsHandler(func(r StatsReport) {
		mu.Lock()
		received = append(received, r)
		mu.Unlock()
		mon.Observe(r)
	})

	a, err := NewAgent("w-hb", DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var local int
	a.OnStats = func(StatsReport) { // runs on the agent goroutine
		mu.Lock()
		local++
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Run returns when the director closes the connection.
		_ = a.Run(addr)
	}()
	defer func() {
		_ = d.Close()
		wg.Wait()
	}()
	if err := d.WaitAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	res, err := d.Deploy("w-hb", DeploySpec{
		NF: "nat", Flows: 1024, Packets: 4000, Warmup: 500,
		PacketBytes: 64, Tasks: 8, Seed: 5, StatsEvery: 1000,
	}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// The result arrives on the same ordered connection after the last
	// heartbeat, and the handler runs synchronously on the reader
	// goroutine, so every report is visible by now.
	mu.Lock()
	defer mu.Unlock()
	if len(received) != 4 {
		t.Fatalf("heartbeats = %d, want 4", len(received))
	}
	var pkts, cycles, stall uint64
	var bits float64
	for i, r := range received {
		if r.Window != i || r.Agent != "w-hb" || r.NF != "nat" {
			t.Fatalf("report %d = %+v", i, r)
		}
		if r.Packets != 1000 {
			t.Fatalf("window %d packets = %d", i, r.Packets)
		}
		pkts += r.Packets
		bits += r.Bits
		cycles += r.Cycles
		stall += r.Counters.StallCycles
	}
	if pkts != res.Packets || bits != res.Bits || cycles != res.Cycles || stall != res.Counters.StallCycles {
		t.Fatalf("window sums pkts/bits/cycles/stall = %d/%v/%d/%d, result %d/%v/%d/%d",
			pkts, bits, cycles, stall, res.Packets, res.Bits, res.Cycles, res.Counters.StallCycles)
	}

	if mon.Windows() != 4 {
		t.Fatalf("monitor windows = %d", mon.Windows())
	}
	tab := mon.Table()
	if tab.NumRows() != 1 {
		t.Fatalf("monitor rows = %d", tab.NumRows())
	}
	col, err := tab.ColumnIndex("total pkts")
	if err != nil {
		t.Fatal(err)
	}
	if total, err := tab.CellFloat(0, col); err != nil || total != 4000 {
		t.Fatalf("monitor total pkts = %v (%v)", total, err)
	}

	// The deployment has completed, so the agent-side hook has fired for
	// every window (it runs before each heartbeat hits the wire).
	if local != 4 {
		t.Fatalf("agent OnStats calls = %d", local)
	}
}

func TestDeployErrors(t *testing.T) {
	d, stop := startCluster(t, 1)
	defer stop()

	if _, err := d.Deploy("ghost", DeploySpec{NF: "nat", Flows: 1, Packets: 1, PacketBytes: 64}, time.Second); err == nil {
		t.Fatal("unknown agent accepted")
	}
	if _, err := d.Deploy(agentName(0), DeploySpec{NF: "warp", Flows: 16, Packets: 10, PacketBytes: 64}, 10*time.Second); err == nil {
		t.Fatal("unknown NF accepted")
	} else if !strings.Contains(err.Error(), "unknown NF") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := d.Deploy(agentName(0), DeploySpec{NF: "nat"}, time.Second); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestWaitAgentsTimeout(t *testing.T) {
	d := New()
	if _, err := d.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WaitAgents(1, 50*time.Millisecond); err == nil {
		t.Fatal("WaitAgents(1) succeeded with no agents")
	}
}

func TestAgentValidation(t *testing.T) {
	if _, err := NewAgent("", DefaultRegistry()); err == nil {
		t.Fatal("nameless agent accepted")
	}
	if _, err := NewAgent("x", nil); err == nil {
		t.Fatal("registry-less agent accepted")
	}
}

func TestBuildChainLengths(t *testing.T) {
	for length := 2; length <= 6; length++ {
		chain, err := BuildChain(mem.NewAddressSpace(), length, 64)
		if err != nil {
			t.Fatalf("length %d: %v", length, err)
		}
		if len(chain) != length {
			t.Fatalf("length %d built %d NFs", length, len(chain))
		}
		names := make(map[string]bool)
		for _, c := range chain {
			if names[c.Name()] {
				t.Fatalf("duplicate NF name %q in chain of %d", c.Name(), length)
			}
			names[c.Name()] = true
		}
	}
	if _, err := BuildChain(mem.NewAddressSpace(), 1, 64); err == nil {
		t.Fatal("length 1 accepted")
	}
	if _, err := BuildChain(mem.NewAddressSpace(), 7, 64); err == nil {
		t.Fatal("length 7 accepted")
	}
}

func TestDeploySpecValidate(t *testing.T) {
	ok := DeploySpec{NF: "nat", Flows: 1, Packets: 1, PacketBytes: 64}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DeploySpec{
		{Flows: 1, Packets: 1, PacketBytes: 64},
		{NF: "nat", Packets: 1, PacketBytes: 64},
		{NF: "nat", Flows: 1, PacketBytes: 64},
		{NF: "nat", Flows: 1, Packets: 1, PacketBytes: 32},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, b)
		}
	}
}

func TestResultGbps(t *testing.T) {
	r := Result{Bits: 1e9, Cycles: 1000, FreqHz: 1e9}
	// 1e9 bits in 1 microsecond = 1e15 bps... sanity: cycles/freq = 1µs.
	if g := r.Gbps(); g < 0.9e6 || g > 1.1e6 {
		t.Fatalf("Gbps = %v", g)
	}
	if (Result{}).Gbps() != 0 {
		t.Fatal("zero result must be 0")
	}
}
