// Package director implements GuNFu's control plane (§III): the
// director that deploys and configures network functions, and the
// per-host runtime agent that receives deployment commands, builds the
// NF data plane, runs it, and reports operational statistics back.
//
// The wire protocol is newline-delimited JSON over TCP. A deployment
// names an NF from the agent's registry together with its workload
// parameters; the agent compiles and runs it on a simulated core and
// returns the measured result. This mirrors the paper's
// director-agent/runtime-agent split with the NIC replaced by the
// traffic generators (the data plane under test is CPU-side either
// way).
package director

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// Message types exchanged between director and agents.
const (
	// TypeRegister announces an agent (agent → director).
	TypeRegister = "register"
	// TypeDeploy asks an agent to build and run an NF (director → agent).
	TypeDeploy = "deploy"
	// TypeResult carries a completed run's measurements (agent → director).
	TypeResult = "result"
	// TypeError reports a failed command (agent → director).
	TypeError = "error"
	// TypeShutdown asks the agent to exit (director → agent).
	TypeShutdown = "shutdown"
	// TypeStats is an unsolicited mid-deployment telemetry heartbeat
	// (agent → director); see DeploySpec.StatsEvery.
	TypeStats = "stats"
	// TypeDump asks the agent to dump its flight-recorder ring
	// (director → agent). The agent honors it at its next safe point: a
	// window boundary mid-deployment, immediately when idle.
	TypeDump = "dump"
	// TypeDumpDone reports a completed (or failed) flight dump
	// (agent → director); like TypeStats it never answers a Deploy.
	TypeDumpDone = "dump-done"
)

// DeploySpec describes one NF deployment: which registered NF to run
// and under which workload and execution-model parameters.
type DeploySpec struct {
	// NF names a factory in the agent's registry (e.g. "nat",
	// "upf-downlink", "sfc").
	NF string `json:"nf"`
	// Flows is the concurrent flow population.
	Flows int `json:"flows"`
	// Packets is the measurement window length.
	Packets uint64 `json:"packets"`
	// Warmup packets run before the measured window.
	Warmup uint64 `json:"warmup"`
	// PacketBytes is the workload packet size.
	PacketBytes int `json:"packet_bytes"`
	// Tasks is max_interleaved; 0 selects the RTC baseline.
	Tasks int `json:"tasks"`
	// Seed makes the workload deterministic.
	Seed int64 `json:"seed"`
	// SFCLength selects the chain length for the "sfc" NF.
	SFCLength int `json:"sfc_length,omitempty"`
	// PDRs selects rules per session for the "upf-downlink" NF.
	PDRs int `json:"pdrs,omitempty"`
	// StatsEvery, when positive, splits the measured window into chunks
	// of this many packets and streams a TypeStats heartbeat after each
	// chunk while the deployment runs. The final TypeResult still
	// carries the whole window's totals.
	StatsEvery uint64 `json:"stats_every,omitempty"`
	// Latency, when true, attaches a latency probe so every heartbeat
	// carries the window's rx→done histogram (cycles) — the input to
	// p99 SLO evaluation and cluster-level quantile aggregation.
	Latency bool `json:"latency,omitempty"`
}

// Validate checks the spec's common fields.
func (d DeploySpec) Validate() error {
	if d.NF == "" {
		return fmt.Errorf("director: deploy: NF name required")
	}
	if d.Flows <= 0 || d.Packets == 0 {
		return fmt.Errorf("director: deploy: Flows and Packets must be positive")
	}
	if d.PacketBytes < 64 {
		return fmt.Errorf("director: deploy: PacketBytes must be >= 64")
	}
	return nil
}

// Result carries an agent's measurements back to the director.
type Result struct {
	// Agent is the reporting agent's name.
	Agent string `json:"agent"`
	// Packets and Bits are the processed volume.
	Packets uint64  `json:"packets"`
	Bits    float64 `json:"bits"`
	// Cycles is the simulated window, FreqHz its clock.
	Cycles uint64  `json:"cycles"`
	FreqHz float64 `json:"freq_hz"`
	// Counters is the PMU delta.
	Counters sim.Counters `json:"counters"`
}

// Gbps converts the result to gigabits per second of simulated time.
func (r Result) Gbps() float64 {
	if r.Cycles == 0 || r.FreqHz == 0 {
		return 0
	}
	return r.Bits / (float64(r.Cycles) / r.FreqHz) / 1e9
}

// StatsReport is one telemetry heartbeat: the windowed delta of a
// running deployment (not a cumulative total), so rates derived from
// it describe the most recent chunk only.
type StatsReport struct {
	// Agent is the reporting agent's name.
	Agent string `json:"agent"`
	// NF is the deployed network function.
	NF string `json:"nf"`
	// Window is the chunk index within the deployment, from 0.
	Window int `json:"window"`
	// Packets and Bits are the chunk's processed volume.
	Packets uint64  `json:"packets"`
	Bits    float64 `json:"bits"`
	// Cycles is the chunk's simulated span, FreqHz its clock.
	Cycles uint64  `json:"cycles"`
	FreqHz float64 `json:"freq_hz"`
	// Counters is the chunk's PMU delta.
	Counters sim.Counters `json:"counters"`
	// Latency is the chunk's rx→done latency histogram in cycles
	// (present when the deployment requested DeploySpec.Latency).
	// Histograms share one fixed bucket geometry, so receivers can
	// Merge them across windows and agents into cluster quantiles.
	Latency *stats.Histogram `json:"latency,omitempty"`
}

// P99Cycles returns the window's p99 rx→done latency in cycles, or 0
// when the report carries no latency histogram.
func (s StatsReport) P99Cycles() uint64 {
	if s.Latency == nil {
		return 0
	}
	return s.Latency.Quantile(0.99)
}

// Gbps returns the chunk's throughput in gigabits per simulated second.
func (s StatsReport) Gbps() float64 {
	if s.Cycles == 0 || s.FreqHz == 0 {
		return 0
	}
	return s.Bits / (float64(s.Cycles) / s.FreqHz) / 1e9
}

// Mpps returns the chunk's rate in million packets per simulated second.
func (s StatsReport) Mpps() float64 {
	if s.Cycles == 0 || s.FreqHz == 0 {
		return 0
	}
	return float64(s.Packets) / (float64(s.Cycles) / s.FreqHz) / 1e6
}

// Envelope is the wire message.
type Envelope struct {
	// Type discriminates the payload.
	Type string `json:"type"`
	// Seq correlates a response with its request.
	Seq int `json:"seq"`
	// Agent is the sender/receiver agent name.
	Agent string `json:"agent,omitempty"`
	// Deploy is set for TypeDeploy.
	Deploy *DeploySpec `json:"deploy,omitempty"`
	// Result is set for TypeResult.
	Result *Result `json:"result,omitempty"`
	// Stats is set for TypeStats.
	Stats *StatsReport `json:"stats,omitempty"`
	// Dump is set for TypeDumpDone.
	Dump *DumpInfo `json:"dump,omitempty"`
	// Error is set for TypeError.
	Error string `json:"error,omitempty"`
}

// DumpInfo describes one flight-recorder dump. The trace itself stays
// on the agent's host (it can be megabytes); the director learns where
// it landed and how much it covers.
type DumpInfo struct {
	// Agent is the dumping agent's name.
	Agent string `json:"agent"`
	// Path is the Perfetto JSON file on the agent's host.
	Path string `json:"path,omitempty"`
	// Events is the number of trace events in the dump.
	Events int `json:"events"`
	// Error is set when the dump could not be produced (e.g. the agent
	// runs without a flight recorder).
	Error string `json:"error,omitempty"`
}

// encode marshals an envelope to one JSON line.
func encode(e Envelope) ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("director: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// MaxFrameBytes bounds one wire message. A peer that streams a longer
// line — or an attacker-controlled length that would force unbounded
// buffering — poisons the connection with ErrFrameTooLarge instead of
// growing memory.
const MaxFrameBytes = 1 << 20

// ErrFrameTooLarge reports a wire frame longer than MaxFrameBytes.
// The framing is lost once a frame overruns, so readers treat it as a
// connection-fatal error, not a skippable message.
var ErrFrameTooLarge = errors.New("director: frame exceeds MaxFrameBytes")

// errMalformed reports a frame that is not a JSON envelope (or carries
// no type). Readers skip such frames: the stream stays framed, so one
// garbage line must not kill an otherwise healthy connection.
var errMalformed = errors.New("director: malformed frame")

// decodeMsg parses one newline-framed message (without its trailing
// newline) into an envelope. It is the single validation point both
// ends read through — and the surface the protocol fuzz targets hit.
func decodeMsg(line []byte) (Envelope, error) {
	if len(line) > MaxFrameBytes {
		return Envelope{}, ErrFrameTooLarge
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Envelope{}, fmt.Errorf("%w: %v", errMalformed, err)
	}
	if env.Type == "" {
		return Envelope{}, fmt.Errorf("%w: missing type", errMalformed)
	}
	return env, nil
}

// msgReader reads newline-framed envelopes with bounded buffering:
// frames accumulate through a fixed-size bufio.Reader and are capped
// at MaxFrameBytes, so a hostile or corrupted peer can never force an
// allocation proportional to its claimed frame size.
type msgReader struct {
	br  *bufio.Reader
	buf []byte
}

func newMsgReader(r io.Reader) *msgReader {
	return &msgReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// readLine returns the next frame without its newline. A partial line
// at EOF (a frame truncated by a mid-message reset) is dropped: there
// is no way to know how much of it is missing.
func (m *msgReader) readLine() ([]byte, error) {
	m.buf = m.buf[:0]
	for {
		frag, err := m.br.ReadSlice('\n')
		m.buf = append(m.buf, frag...)
		if len(m.buf) > MaxFrameBytes+1 {
			return nil, ErrFrameTooLarge
		}
		if err == nil {
			return m.buf[:len(m.buf)-1], nil
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return nil, err
	}
}

// next returns the next well-formed envelope, skipping malformed
// frames. Frame overruns and I/O errors end the stream.
func (m *msgReader) next() (Envelope, error) {
	for {
		line, err := m.readLine()
		if err != nil {
			return Envelope{}, err
		}
		env, err := decodeMsg(line)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				return Envelope{}, err
			}
			continue // malformed: skip, keep the connection
		}
		return env, nil
	}
}
