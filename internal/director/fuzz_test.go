package director

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzProtocolReadMsg feeds arbitrary byte streams to the wire reader
// both ends of the control plane parse with. The contract under fuzz:
// never panic, never buffer more than a bounded multiple of
// MaxFrameBytes no matter what length the stream implies, and only
// ever yield envelopes that carry a type.
func FuzzProtocolReadMsg(f *testing.F) {
	f.Add([]byte(`{"type":"register","agent":"w1"}` + "\n"))
	f.Add([]byte(`{"type":"deploy","seq":2,"deploy":{"nf":"nat","flows":64,"packets":200,"packet_bytes":64,"tasks":4}}` + "\n"))
	f.Add([]byte(`{"type":"stats","seq":1,"agent":"w1","stats":{"agent":"w1","nf":"nat","window":0,"packets":3,"bits":1536,"cycles":900,"freq_hz":2.7e9,"latency":{"sub_bits":5,"counts":[1,0,2],"total":3,"sum":360,"min":100,"max":160}}}` + "\n"))
	f.Add([]byte("{not json at all\n"))
	f.Add([]byte(`{"seq":7}` + "\n")) // typeless: malformed
	f.Add([]byte("truncated frame without a newline"))
	f.Add([]byte("\n\n\n"))
	f.Add(bytes.Repeat([]byte("A"), 1<<16)) // one long typeless line
	f.Add([]byte(`{"type":"result","seq":1,"result":{"agent":"w","packets":18446744073709551615}}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		mr := newMsgReader(bytes.NewReader(data))
		for i := 0; i < 1024; i++ {
			env, err := mr.next()
			if err != nil {
				break // EOF, frame overrun, ... — stream is over either way
			}
			if env.Type == "" {
				t.Fatalf("reader yielded a typeless envelope from %q", data)
			}
		}
		// The over-allocation bound: whatever frame lengths the input
		// claimed, the reader's accumulation buffer stays within a small
		// multiple of the frame cap (append growth included).
		if cap(mr.buf) > 4*MaxFrameBytes {
			t.Fatalf("reader buffered %d bytes, cap is %d", cap(mr.buf), MaxFrameBytes)
		}
	})
}

// FuzzProtocolRoundTrip checks that any frame the decoder accepts
// re-encodes canonically: decode → encode → decode → encode must be a
// fixed point, so a director and an agent can relay each other's
// messages without drift.
func FuzzProtocolRoundTrip(f *testing.F) {
	f.Add([]byte(`{"type":"register","agent":"w1"}`))
	f.Add([]byte(`{"type":"deploy","seq":3,"deploy":{"nf":"sfc","flows":1024,"packets":5000,"warmup":100,"packet_bytes":128,"tasks":16,"seed":9,"sfc_length":5,"pdrs":8,"stats_every":500,"latency":true}}`))
	f.Add([]byte(`{"type":"error","seq":4,"agent":"w1","error":"unknown NF \"warp\""}`))
	f.Add([]byte(`{"type":"dump-done","agent":"w1","dump":{"agent":"w1","path":"/tmp/f.json","events":65536}}`))
	f.Add([]byte(`{"type":"stats","seq":1,"agent":"w","stats":{"agent":"w","nf":"nat","window":1,"latency":{"sub_bits":5,"counts":[0,1],"total":1,"sum":9,"min":9,"max":9}}}`))
	f.Add([]byte(`{"type":"shutdown"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := decodeMsg(data)
		if err != nil {
			return // rejected input is out of scope here; ReadMsg fuzz covers it
		}
		first, err := encode(env)
		if err != nil {
			t.Fatalf("decoded envelope failed to encode: %v", err)
		}
		if !strings.HasSuffix(string(first), "\n") {
			t.Fatal("encoded frame not newline-terminated")
		}
		env2, err := decodeMsg(first[:len(first)-1])
		if err != nil {
			t.Fatalf("re-decode of %q: %v", first, err)
		}
		second, err := encode(env2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not canonical:\n first %s\nsecond %s", first, second)
		}
	})
}

// TestDecodeMsgBounds pins the frame-size contract outside the fuzzer:
// an oversized frame errors with ErrFrameTooLarge, a frame at the cap
// does not.
func TestDecodeMsgBounds(t *testing.T) {
	pad := bytes.Repeat([]byte("x"), MaxFrameBytes+1)
	if _, err := decodeMsg(pad); err == nil || !strings.Contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("oversize err = %v", err)
	}
	big := []byte(`{"type":"error","error":"` + strings.Repeat("y", MaxFrameBytes-64) + `"}`)
	if len(big) > MaxFrameBytes {
		t.Fatal("test frame miscounted")
	}
	if _, err := decodeMsg(big); err != nil {
		t.Fatalf("frame at cap rejected: %v", err)
	}
	if _, err := decodeMsg([]byte(`{"seq":1}`)); err == nil {
		t.Fatal("typeless frame accepted")
	}
}

// TestMsgReaderOverrun pins that a stream with an over-cap frame
// poisons the connection (typed error) instead of growing memory or
// resyncing on garbage.
func TestMsgReaderOverrun(t *testing.T) {
	var stream bytes.Buffer
	stream.WriteString(`{"type":"register","agent":"w"}` + "\n")
	stream.Write(bytes.Repeat([]byte("z"), MaxFrameBytes+2))
	stream.WriteString("\n")
	mr := newMsgReader(&stream)
	if env, err := mr.next(); err != nil || env.Type != TypeRegister {
		t.Fatalf("first frame = %+v, %v", env, err)
	}
	if _, err := mr.next(); err != ErrFrameTooLarge {
		t.Fatalf("overrun err = %v", err)
	}
}
