package director

import (
	"sync"

	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// Monitor aggregates TypeStats heartbeats into a live per-agent view:
// the latest window's rates plus running totals. Plug its Observe into
// Director.SetStatsHandler and render Table whenever the display
// refreshes. Monitor is safe for concurrent use (heartbeats arrive on
// per-connection goroutines).
type Monitor struct {
	mu     sync.Mutex
	order  []string
	latest map[string]StatsReport
	total  map[string]StatsReport
}

// NewMonitor builds an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		latest: make(map[string]StatsReport),
		total:  make(map[string]StatsReport),
	}
}

// Observe folds one heartbeat in.
func (m *Monitor) Observe(r StatsReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, seen := m.latest[r.Agent]; !seen {
		m.order = append(m.order, r.Agent)
	}
	m.latest[r.Agent] = r
	t := m.total[r.Agent]
	t.Agent, t.NF, t.Window, t.FreqHz = r.Agent, r.NF, r.Window, r.FreqHz
	t.Packets += r.Packets
	t.Bits += r.Bits
	t.Cycles += r.Cycles
	t.Counters = t.Counters.Add(r.Counters)
	m.total[r.Agent] = t
}

// Windows returns the number of heartbeats observed in total.
func (m *Monitor) Windows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, r := range m.latest {
		n += r.Window + 1
	}
	return n
}

// Table renders one row per agent, in first-heartbeat order: the
// latest window's instantaneous rates alongside the deployment's
// running totals.
func (m *Monitor) Table() *stats.Table {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := stats.NewTable("Live telemetry (latest window per agent)",
		"agent", "nf", "win", "pkts", "Mpps", "Gbps", "ipc", "l1%", "stall%", "total pkts", "avg Gbps")
	for _, name := range m.order {
		r := m.latest[name]
		tot := m.total[name]
		t.AddRow(r.Agent, r.NF, stats.I(r.Window), stats.U(r.Packets),
			stats.F(r.Mpps(), 2), stats.F(r.Gbps(), 2),
			stats.F(r.Counters.IPC(), 2), stats.Pct(r.Counters.L1HitRate()),
			stats.Pct(r.Counters.StallFraction()),
			stats.U(tot.Packets), stats.F(tot.Gbps(), 2))
	}
	return t
}
