package director

import (
	"fmt"
	"sync"

	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// Monitor aggregates TypeStats heartbeats into a live per-agent view:
// the latest window's rates plus running totals. Plug its Observe into
// Director.SetStatsHandler and render Table whenever the display
// refreshes. Monitor is safe for concurrent use (heartbeats arrive on
// per-connection goroutines).
//
// Churn safety: a heartbeat whose window index does not advance past
// the agent's previous one means the deployment restarted (the agent
// died mid-run, reconnected, and the director's retry re-ran it). The
// monitor then resets that agent's running totals and latency so
// aggregates describe the run that will actually complete, instead of
// double-counting replayed windows.
type Monitor struct {
	mu      sync.Mutex
	order   []string
	latest  map[string]StatsReport
	total   map[string]StatsReport
	latency map[string]*stats.Histogram
	dead    map[string]bool
}

// NewMonitor builds an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		latest:  make(map[string]StatsReport),
		total:   make(map[string]StatsReport),
		latency: make(map[string]*stats.Histogram),
		dead:    make(map[string]bool),
	}
}

// Observe folds one heartbeat in.
func (m *Monitor) Observe(r StatsReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev, seen := m.latest[r.Agent]
	if !seen {
		m.order = append(m.order, r.Agent)
	}
	if seen && r.Window <= prev.Window {
		// Restarted run: drop the abandoned run's contribution.
		delete(m.total, r.Agent)
		delete(m.latency, r.Agent)
	}
	m.latest[r.Agent] = r
	t := m.total[r.Agent]
	t.Agent, t.NF, t.Window, t.FreqHz = r.Agent, r.NF, r.Window, r.FreqHz
	t.Packets += r.Packets
	t.Bits += r.Bits
	t.Cycles += r.Cycles
	t.Counters = t.Counters.Add(r.Counters)
	m.total[r.Agent] = t
	if r.Latency != nil {
		// All histograms share one bucket geometry, so per-agent and
		// cluster-wide views are exact merges, not approximations.
		h := m.latency[r.Agent]
		if h == nil {
			h = &stats.Histogram{}
			m.latency[r.Agent] = h
		}
		h.Merge(r.Latency)
	}
}

// SetLive records an agent's liveness verdict — wire it to
// Director.SetLivenessHandler so the table can flag dead agents.
func (m *Monitor) SetLive(agent string, live bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, seen := m.latest[agent]; !seen && !m.dead[agent] {
		// An agent can die before its first heartbeat; give it a row.
		m.order = append(m.order, agent)
		m.latest[agent] = StatsReport{Agent: agent}
	}
	m.dead[agent] = !live
}

// Live reports the last liveness verdict for the agent (true when no
// verdict has been recorded).
func (m *Monitor) Live(agent string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.dead[agent]
}

// AgentLatency returns the named agent's cumulative rx→done latency
// histogram (cycles), or nil when the agent never reported latency.
// The returned histogram is a copy.
func (m *Monitor) AgentLatency(agent string) *stats.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[agent]
	if h == nil {
		return nil
	}
	return h.Clone()
}

// ClusterLatency returns the merge of every agent's latency windows —
// the cluster-level distribution a fleet dashboard quotes p99 from.
// It is assembled from the per-agent histograms at call time, so a
// restarted run's abandoned windows don't linger in the cluster view.
// The returned histogram is a copy.
func (m *Monitor) ClusterLatency() *stats.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	cluster := &stats.Histogram{}
	for _, h := range m.latency {
		cluster.Merge(h)
	}
	return cluster
}

// Windows returns the number of heartbeats observed in total.
func (m *Monitor) Windows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, r := range m.latest {
		n += r.Window + 1
	}
	return n
}

// SLO is a per-window service-level objective over heartbeat-derived
// rates. Zero-valued fields are unchecked, so an SLO can watch a single
// dimension.
type SLO struct {
	// MaxStallFraction is the highest tolerable fraction of window
	// cycles spent stalled on memory (0 disables).
	MaxStallFraction float64
	// MinMpps is the lowest tolerable window throughput in million
	// packets per simulated second (0 disables).
	MinMpps float64
	// MaxP99LatencyCycles is the highest tolerable window p99 rx→done
	// latency in cycles; checked only when the heartbeat carries a
	// latency histogram (0 disables).
	MaxP99LatencyCycles uint64
}

// Check evaluates one heartbeat and returns the violated objectives as
// human-readable reasons (empty when the window met the SLO).
func (s SLO) Check(r StatsReport) []string {
	var reasons []string
	if s.MaxStallFraction > 0 {
		if sf := r.Counters.StallFraction(); sf > s.MaxStallFraction {
			reasons = append(reasons, fmt.Sprintf("stall fraction %.3f > %.3f", sf, s.MaxStallFraction))
		}
	}
	if s.MinMpps > 0 {
		if mpps := r.Mpps(); mpps < s.MinMpps {
			reasons = append(reasons, fmt.Sprintf("throughput %.2f Mpps < %.2f Mpps", mpps, s.MinMpps))
		}
	}
	if s.MaxP99LatencyCycles > 0 && r.Latency != nil {
		if p99 := r.P99Cycles(); p99 > s.MaxP99LatencyCycles {
			reasons = append(reasons, fmt.Sprintf("p99 latency %d cycles > %d cycles", p99, s.MaxP99LatencyCycles))
		}
	}
	return reasons
}

// Breach describes one healthy→unhealthy transition: the window that
// violated the SLO and why.
type Breach struct {
	// Agent and NF identify the offending deployment.
	Agent string
	NF    string
	// Window is the violating chunk index.
	Window int
	// Reasons lists the violated objectives.
	Reasons []string
	// Report is the heartbeat that triggered the breach.
	Report StatsReport
}

// Watcher evaluates every heartbeat against an SLO and tracks a
// per-agent health gauge. OnBreach fires once per healthy→unhealthy
// transition (not once per bad window) — the hook that asks the
// offending worker for a flight dump. A healthy window re-arms the
// agent. Safe for concurrent use.
type Watcher struct {
	slo SLO
	// OnBreach, when set, runs on each healthy→unhealthy transition,
	// on the goroutine that called Observe.
	OnBreach func(Breach)

	mu        sync.Mutex
	unhealthy map[string]bool
	breaches  map[string]int
}

// NewWatcher builds a watcher for the given SLO.
func NewWatcher(slo SLO) *Watcher {
	return &Watcher{
		slo:       slo,
		unhealthy: make(map[string]bool),
		breaches:  make(map[string]int),
	}
}

// Observe evaluates one heartbeat. Chain it after Monitor.Observe in a
// stats handler.
func (w *Watcher) Observe(r StatsReport) {
	reasons := w.slo.Check(r)
	w.mu.Lock()
	was := w.unhealthy[r.Agent]
	now := len(reasons) > 0
	w.unhealthy[r.Agent] = now
	fire := now && !was
	if fire {
		w.breaches[r.Agent]++
	}
	cb := w.OnBreach
	w.mu.Unlock()
	if fire && cb != nil {
		cb(Breach{Agent: r.Agent, NF: r.NF, Window: r.Window, Reasons: reasons, Report: r})
	}
}

// Healthy reports whether the named agent's latest observed window met
// the SLO (true for agents never observed).
func (w *Watcher) Healthy(agent string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.unhealthy[agent]
}

// Breaches returns how many healthy→unhealthy transitions the named
// agent has had.
func (w *Watcher) Breaches(agent string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.breaches[agent]
}

// Table renders one row per agent, in first-heartbeat order: the
// latest window's instantaneous rates alongside the deployment's
// running totals, and the agent's liveness verdict.
func (m *Monitor) Table() *stats.Table {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := stats.NewTable("Live telemetry (latest window per agent)",
		"agent", "nf", "win", "pkts", "Mpps", "Gbps", "ipc", "l1%", "stall%", "total pkts", "avg Gbps", "live")
	for _, name := range m.order {
		r := m.latest[name]
		tot := m.total[name]
		live := "yes"
		if m.dead[name] {
			live = "DEAD"
		}
		t.AddRow(r.Agent, r.NF, stats.I(r.Window), stats.U(r.Packets),
			stats.F(r.Mpps(), 2), stats.F(r.Gbps(), 2),
			stats.F(r.Counters.IPC(), 2), stats.Pct(r.Counters.L1HitRate()),
			stats.Pct(r.Counters.StallFraction()),
			stats.U(tot.Packets), stats.F(tot.Gbps(), 2), live)
	}
	return t
}
