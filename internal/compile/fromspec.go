package compile

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/dstruct"
	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/nfc"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/spec"
)

// SpecUnit is the director compiler's input (§III): module
// specifications, the NF/SFC composition, and the NF-C implementation
// library for the user-defined actions.
type SpecUnit struct {
	// Modules are the parsed module specifications, by name.
	Modules map[string]*spec.Module
	// NF is the composition to build.
	NF *spec.NF
	// NFCSource is the NF-C implementation library; it must define one
	// NFAction per control state of every StatefulNF module.
	NFCSource string
	// MaxFlows sizes per-flow pools and the classifier table.
	MaxFlows int
}

// SpecResult is the compiled artifact: the runnable program plus the
// handles the operator needs to configure it.
type SpecResult struct {
	// Program is the runnable NF binary equivalent.
	Program *model.Program
	// Table is the flow classifier's match table (populate via AddFlow).
	Table *dstruct.Cuckoo
	// Stores maps each StatefulNF module to its per-flow value store.
	Stores map[string]*nfc.Store
	// Pools maps each StatefulNF module to its per-flow pool.
	Pools map[string]*mem.Pool
}

// AddFlow registers tuple at per-flow index idx.
func (r *SpecResult) AddFlow(tuple pkt.FiveTuple, idx int32) error {
	if r.Table == nil {
		return fmt.Errorf("compile: spec program has no classifier table")
	}
	if err := r.Table.Insert(tuple.Hash(), idx); err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	return nil
}

// Category names recognized in module specs.
const (
	// CategoryClassifier marks a stateful flow classifier module,
	// realized as the stepwise cuckoo lookup of Listing 1.
	CategoryClassifier = "StatefulClassifier"
	// CategoryStatefulNF marks a module whose actions come from the
	// NF-C implementation library.
	CategoryStatefulNF = "StatefulNF"
)

// FromSpec compiles a specification unit into a runnable program. The
// composition chain must start with a StatefulClassifier; subsequent
// stages are StatefulNF modules whose control-state actions are NF-C
// implementations of the same name.
func FromSpec(as *mem.AddressSpace, unit SpecUnit) (*SpecResult, error) {
	if unit.NF == nil || len(unit.NF.Stages) == 0 {
		return nil, fmt.Errorf("compile: spec unit has no composition")
	}
	if unit.MaxFlows <= 0 {
		return nil, fmt.Errorf("compile: MaxFlows must be positive")
	}

	// Parse and index the NF-C library.
	var actions map[string]*nfc.ActionAST
	if unit.NFCSource != "" {
		parsed, err := nfc.Parse(unit.NFCSource)
		if err != nil {
			return nil, fmt.Errorf("compile: NF-C library: %w", err)
		}
		actions = make(map[string]*nfc.ActionAST, len(parsed))
		for _, a := range parsed {
			actions[a.Name] = a
		}
	}

	b := model.NewBuilder(unit.NF.Name)
	result := &SpecResult{
		Stores: make(map[string]*nfc.Store),
		Pools:  make(map[string]*mem.Pool),
	}

	// Resolve stage specs and entry points back to front.
	next := model.EndName
	for i := len(unit.NF.Stages) - 1; i >= 0; i-- {
		stage := unit.NF.Stages[i]
		mod, ok := unit.Modules[stage.Module]
		if !ok {
			return nil, fmt.Errorf("compile: composition references unknown module %q", stage.Module)
		}
		switch mod.Category {
		case CategoryClassifier:
			if i != 0 {
				return nil, fmt.Errorf("compile: classifier %q must be the first stage", mod.Name)
			}
			table, err := dstruct.NewCuckoo(as, mod.Name, unit.MaxFlows)
			if err != nil {
				return nil, fmt.Errorf("compile: %w", err)
			}
			result.Table = table
			cls := nf.Classifier{Table: table, Module: mod.Name}
			next = cls.Attach(b, next, model.EndName)
		case CategoryStatefulNF:
			entry, err := attachStatefulNF(as, b, mod, actions, unit.MaxFlows, next, result)
			if err != nil {
				return nil, err
			}
			next = entry
		default:
			return nil, fmt.Errorf("compile: module %q: unknown category %q", mod.Name, mod.Category)
		}
	}
	b.SetStart(next)

	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("compile: %s: %w", unit.NF.Name, err)
	}
	for _, opt := range unit.NF.Optimize {
		if opt == "redundant_prefetch_removal" {
			if err := RemoveRedundantPrefetches(prog); err != nil {
				return nil, fmt.Errorf("compile: %s: %w", unit.NF.Name, err)
			}
		}
	}
	result.Program = prog
	return result, nil
}

// attachStatefulNF lowers one StatefulNF module: per-flow layout and
// store from the spec's states declarations, one NF-C action per
// control state, transitions from the spec's Δ.
func attachStatefulNF(as *mem.AddressSpace, b *model.Builder, mod *spec.Module,
	actions map[string]*nfc.ActionAST, maxFlows int, next string, result *SpecResult) (string, error) {

	// Union of per-flow fields across the module's states.
	var fieldNames []string
	seen := make(map[string]bool)
	for _, cs := range mod.StatesOrder {
		for _, f := range mod.States[cs] {
			if !seen[f] {
				seen[f] = true
				fieldNames = append(fieldNames, f)
			}
		}
	}
	if len(fieldNames) == 0 {
		return "", fmt.Errorf("compile: module %s declares no per-flow state", mod.Name)
	}
	fields := make([]mem.Field, len(fieldNames))
	for i, n := range fieldNames {
		fields[i] = mem.Field{Name: n, Size: 8}
	}
	layout, err := mem.NewLayout(fields...)
	if err != nil {
		return "", fmt.Errorf("compile: module %s: %w", mod.Name, err)
	}
	pool, err := mem.NewPool(as, mod.Name+".perflow", layout.Size(), maxFlows)
	if err != nil {
		return "", fmt.Errorf("compile: module %s: %w", mod.Name, err)
	}
	store, err := nfc.NewStore(fieldNames, maxFlows)
	if err != nil {
		return "", fmt.Errorf("compile: module %s: %w", mod.Name, err)
	}
	result.Stores[mod.Name] = store
	result.Pools[mod.Name] = pool

	env := nfc.NewEnv(nfc.Stores{PerFlow: store})
	schema := nfc.Schema{nfc.RootPerFlow: fieldNames}

	bind := model.Binding{
		PerFlow: pool,
		Control: mem.Region{Name: mod.Name + ".control", Base: as.Reserve(64, 0), Size: 64},
	}
	b.AddModule(mod.Name, bind, model.Layouts{model.KindPerFlow: layout})

	// Control states = every non-Start/End transition source.
	csSeen := make(map[string]bool)
	var csNames []string
	for _, tr := range mod.Transitions {
		if tr.From != spec.StartState && !csSeen[tr.From] {
			csSeen[tr.From] = true
			csNames = append(csNames, tr.From)
		}
	}
	for _, cs := range csNames {
		ast, ok := actions[cs]
		if !ok {
			return "", fmt.Errorf("compile: module %s: no NF-C implementation for action %q", mod.Name, cs)
		}
		compiled, err := nfc.Compile(ast, schema)
		if err != nil {
			return "", fmt.Errorf("compile: module %s: %w", mod.Name, err)
		}
		act, err := nfc.ToAction(compiled, env, b)
		if err != nil {
			return "", fmt.Errorf("compile: module %s: %w", mod.Name, err)
		}
		b.AddState(mod.Name, cs, act)
	}

	for _, tr := range mod.Transitions {
		if tr.From == spec.StartState {
			continue
		}
		to := tr.To
		switch to {
		case spec.StartState:
			return "", fmt.Errorf("compile: module %s: transition into Start", mod.Name)
		case model.EndName:
			to = next // module exit chains to the next stage
		default:
			to = mod.Name + "." + to
		}
		b.AddTransition(mod.Name+"."+tr.From, tr.Event, to)
	}

	entry, _ := mod.Entry()
	return mod.Name + "." + entry, nil
}
