package compile

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/gunfu-nfv/gunfu/internal/mem"
)

// genFieldsAndGroups derives a deterministic field set and access
// groups from fuzz input.
func genFieldsAndGroups(sizes []uint8, groupSel []uint8) ([]mem.Field, [][]string) {
	if len(sizes) == 0 {
		sizes = []uint8{8}
	}
	if len(sizes) > 24 {
		sizes = sizes[:24]
	}
	fields := make([]mem.Field, len(sizes))
	for i, s := range sizes {
		fields[i] = mem.Field{Name: fmt.Sprintf("f%d", i), Size: uint64(s%96) + 1}
	}
	var groups [][]string
	var cur []string
	for i, sel := range groupSel {
		f := fields[int(sel)%len(fields)].Name
		cur = append(cur, f)
		if i%3 == 2 && len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return fields, groups
}

// Property: PackLayout keeps every field, produces no overlaps
// (PackedLayout/NewLayout enforce that internally), and its packing
// objective is never worse than the natural declaration-order layout.
func TestPackLayoutNeverWorseProperty(t *testing.T) {
	prop := func(sizes []uint8, groupSel []uint8) bool {
		fields, groups := genFieldsAndGroups(sizes, groupSel)

		packed, err := PackLayout(fields, groups)
		if err != nil {
			return false
		}
		natural, err := mem.NewLayout(fields...)
		if err != nil {
			return false
		}
		for _, f := range fields {
			if _, err := packed.Offset(f.Name); err != nil {
				return false
			}
		}
		ps, err := packScore(packed, groups)
		if err != nil {
			return false
		}
		ns, err := packScore(natural, groups)
		if err != nil {
			return false
		}
		return ps <= ns
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: no field placed by PackLayout straddles a cache line when
// it fits in one — the invariant the no-straddle rule guarantees.
func TestPackLayoutNoStraddleProperty(t *testing.T) {
	prop := func(sizes []uint8, groupSel []uint8) bool {
		fields, groups := genFieldsAndGroups(sizes, groupSel)
		packed, err := PackLayout(fields, groups)
		if err != nil {
			return false
		}
		// The natural candidate may win the score and it aligns rather
		// than line-packs; the straddle invariant applies to fields the
		// group packer placed, so verify against a forced greedy pack.
		index := make(map[string]int, len(fields))
		for i, f := range fields {
			index[f.Name] = i
		}
		order := make([]int, len(groups))
		for i := range order {
			order[i] = i
		}
		greedy, err := packWithOrder(fields, groups, index, order)
		if err != nil {
			return false
		}
		for _, l := range []*mem.Layout{greedy} {
			for _, f := range fields {
				off, size, err := l.Span(f.Name)
				if err != nil {
					return false
				}
				if size <= 64 && off/64 != (off+size-1)/64 {
					return false
				}
			}
		}
		_ = packed
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FuseStates always yields views whose every member field
// resolves, entries share one pool, and no two members' fields overlap
// in the fused record.
func TestFuseStatesDisjointProperty(t *testing.T) {
	prop := func(nMembers uint8, sizes []uint8) bool {
		n := int(nMembers%3) + 2
		if len(sizes) < 2 {
			sizes = []uint8{8, 16}
		}
		members := make([]FuseMember, n)
		for m := 0; m < n; m++ {
			var fs []mem.Field
			for i, s := range sizes {
				if len(fs) == 6 {
					break
				}
				fs = append(fs, mem.Field{Name: fmt.Sprintf("f%d", i), Size: uint64(s%64) + 1})
			}
			members[m] = FuseMember{
				Name:   fmt.Sprintf("nf%d", m),
				Fields: fs,
				Hot:    []string{fs[0].Name},
			}
		}
		states, err := FuseStates(mem.NewAddressSpace(), "p", members, 8)
		if err != nil {
			return false
		}
		type span struct{ from, to uint64 }
		var all []span
		var pool *mem.Pool
		for _, m := range members {
			st := states[m.Name]
			if st == nil {
				return false
			}
			if pool == nil {
				pool = st.Pool
			} else if pool != st.Pool {
				return false
			}
			for _, f := range m.Fields {
				off, size, err := st.Layout.Span(f.Name)
				if err != nil {
					return false
				}
				all = append(all, span{off, off + size})
			}
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[i].from < all[j].to && all[j].from < all[i].to {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
