package compile

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// lineKey identifies one statically-resolvable cache line a control
// state touches: the base kind, the object it resolves through (pool or
// control region), and the line index within a record/region.
type lineKey struct {
	base model.BaseKind
	pool *mem.Pool
	ctrl uint64
	line uint64
}

// lineSet is a must-be-cached fact set. nil means ⊤ (unknown /
// universe) during the optimistic fixed point; an allocated empty map
// means "nothing guaranteed".
type lineSet map[lineKey]struct{}

// spanLines enumerates a span's static line keys; dynamic spans are
// unresolvable at compile time and yield none.
func spanLines(s model.Span, bind *model.Binding) []lineKey {
	if s.Base == model.BaseDynamic || s.Size == 0 {
		return nil
	}
	first := s.Off / sim.LineBytes
	last := (s.Off + s.Size - 1) / sim.LineBytes
	keys := make([]lineKey, 0, last-first+1)
	for line := first; line <= last; line++ {
		k := lineKey{base: s.Base, line: line}
		switch s.Base {
		case model.BasePerFlow:
			k.pool = bind.PerFlow
		case model.BaseSubFlow:
			k.pool = bind.SubFlow
		case model.BaseControl:
			k.ctrl = bind.Control.Base
		}
		keys = append(keys, k)
	}
	return keys
}

// RemoveRedundantPrefetches is the PRR pass of §VI-B: a forward
// must-analysis over the control-state graph that computes, for every
// CS, the set of lines guaranteed to have been touched (prefetched or
// demand-accessed) on *every* path from the start, and removes those
// lines' spans from the CS's prefetch plan.
//
// Facts about per-flow and sub-flow lines are killed across match
// actions, because a match may rebind the task's flow index and the
// facts are per-record. Dynamic (cursor-based) spans are never removed.
func RemoveRedundantPrefetches(p *model.Program) error {
	n := p.NumCS()
	if n == 0 {
		return fmt.Errorf("compile: PRR: empty program")
	}

	// Predecessor lists.
	preds := make([][]model.CSID, n)
	for i := 1; i < n; i++ {
		info, err := p.CS(model.CSID(i))
		if err != nil {
			return err
		}
		for _, next := range info.Next {
			if next >= 0 {
				preds[next] = append(preds[next], model.CSID(i))
			}
		}
	}

	gen := func(info *model.CSInfo) lineSet {
		out := make(lineSet)
		for _, spans := range [][]model.Span{info.Prefetch, info.Reads, info.Writes} {
			for _, s := range spans {
				for _, k := range spanLines(s, info.Bind) {
					out[k] = struct{}{}
				}
			}
		}
		return out
	}

	// Optimistic fixed point: in/out start at ⊤ (nil).
	in := make([]lineSet, n)
	out := make([]lineSet, n)

	transfer := func(id model.CSID) (lineSet, error) {
		info, err := p.CS(id)
		if err != nil {
			return nil, err
		}
		res := make(lineSet)
		for k := range in[id] {
			res[k] = struct{}{}
		}
		act, err := p.Action(info.Action)
		if err != nil {
			return nil, err
		}
		if act.Kind == model.ActionMatch {
			for k := range res {
				if k.base == model.BasePerFlow || k.base == model.BaseSubFlow {
					delete(res, k)
				}
			}
		}
		for k := range gen(info) {
			res[k] = struct{}{}
		}
		return res, nil
	}

	start := p.Start()
	in[start] = make(lineSet)
	// Iterate to a fixed point; the lattice is finite and transfer is
	// monotone, so this terminates. Bound defensively anyway.
	for iter := 0; iter < n*4+8; iter++ {
		changed := false
		for i := 1; i < n; i++ {
			id := model.CSID(i)
			// Meet: intersection of known predecessor OUTs.
			var meet lineSet
			if id == start {
				meet = make(lineSet)
			}
			for _, pr := range preds[id] {
				if out[pr] == nil {
					continue // ⊤ contributes nothing to an intersection
				}
				if meet == nil {
					meet = make(lineSet, len(out[pr]))
					for k := range out[pr] {
						meet[k] = struct{}{}
					}
					continue
				}
				for k := range meet {
					if _, ok := out[pr][k]; !ok {
						delete(meet, k)
					}
				}
			}
			if meet == nil {
				continue // still ⊤
			}
			if !sameSet(in[id], meet) {
				in[id] = meet
				changed = true
			}
			newOut, err := transfer(id)
			if err != nil {
				return err
			}
			if !sameSet(out[id], newOut) {
				out[id] = newOut
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Filter prefetch plans.
	for i := 1; i < n; i++ {
		id := model.CSID(i)
		if in[id] == nil {
			continue // unreachable
		}
		info, err := p.CS(id)
		if err != nil {
			return err
		}
		kept := info.Prefetch[:0]
		for _, s := range info.Prefetch {
			keys := spanLines(s, info.Bind)
			if len(keys) == 0 {
				kept = append(kept, s) // dynamic: never removable
				continue
			}
			covered := true
			for _, k := range keys {
				if _, ok := in[id][k]; !ok {
					covered = false
					break
				}
			}
			if !covered {
				kept = append(kept, s)
			}
		}
		info.Prefetch = kept
	}
	// The prefetch spans changed in place; relower the step plans so the
	// compiled executor sees the filtered sets.
	p.CompilePlans()
	return nil
}

func sameSet(a, b lineSet) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}
