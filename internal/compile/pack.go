package compile

import (
	"fmt"
	"sort"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// PackLayout is the data-packing optimization (§VI-B, after Chilimbi's
// cache-conscious structure definition): given a record's fields and
// the sets of fields each action accesses together, it produces a
// layout in which contemporaneously-accessed fields sit contiguously —
// minimizing the distinct cache lines each action touches.
//
// Algorithm: groups are ordered by their total access heat (the sum of
// their fields' appearance counts, i.e. how much traffic the group
// represents); each group's not-yet-placed fields are laid out
// contiguously, widest first within the group to limit padding. A
// field that would straddle a line boundary while fitting inside one
// line is pushed to the next line. Fields appearing in no group (cold
// state) are appended after all hot fields, in declaration order.
func PackLayout(fields []mem.Field, groups [][]string) (*mem.Layout, error) {
	index := make(map[string]int, len(fields))
	for i, f := range fields {
		if _, dup := index[f.Name]; dup {
			return nil, fmt.Errorf("compile: pack: duplicate field %q", f.Name)
		}
		index[f.Name] = i
	}
	freq := make([]int, len(fields))
	for _, g := range groups {
		for _, name := range g {
			i, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("compile: pack: group references unknown field %q", name)
			}
			freq[i]++
		}
	}

	// Candidate group orders: heat-descending (pack the hottest
	// traffic tightest) and declaration order (preserve the program's
	// own temporal sequence). The natural sequential layout is always a
	// candidate too, so packing never regresses the total.
	heatOrder := make([]int, len(groups))
	heat := make([]int, len(groups))
	for gi, g := range groups {
		heatOrder[gi] = gi
		for _, name := range g {
			heat[gi] += freq[index[name]]
		}
	}
	sort.SliceStable(heatOrder, func(a, b int) bool { return heat[heatOrder[a]] > heat[heatOrder[b]] })
	declOrder := make([]int, len(groups))
	for i := range declOrder {
		declOrder[i] = i
	}

	natural, err := mem.NewLayout(fields...)
	if err != nil {
		return nil, fmt.Errorf("compile: pack: %w", err)
	}
	best := natural
	bestScore, err := packScore(natural, groups)
	if err != nil {
		return nil, err
	}
	for _, order := range [][]int{heatOrder, declOrder} {
		cand, err := packWithOrder(fields, groups, index, order)
		if err != nil {
			return nil, err
		}
		score, err := packScore(cand, groups)
		if err != nil {
			return nil, err
		}
		if score < bestScore || (score == bestScore && cand.Size() < best.Size()) {
			best, bestScore = cand, score
		}
	}
	return best, nil
}

// packScore is the packing objective: total distinct lines the groups
// touch, weighted by each group's access frequency share (1 per
// appearance — uniform here since each group is one action path).
func packScore(l *mem.Layout, groups [][]string) (int, error) {
	total := 0
	for _, g := range groups {
		n, err := l.LinesTouched(g)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// packWithOrder lays groups out contiguously in the given order,
// widest fields first within a group, no-straddle placement, cold
// fields appended after the hot region.
func packWithOrder(fields []mem.Field, groups [][]string, index map[string]int, order []int) (*mem.Layout, error) {
	placed := make([]bool, len(fields))
	offsets := make(map[string]uint64, len(fields))
	var cursor uint64

	place := func(i int) {
		f := fields[i]
		align := alignOf(f.Size)
		off := (cursor + align - 1) &^ (align - 1)
		// Avoid straddling a line when the field could fit in one.
		if f.Size <= sim.LineBytes {
			lineEnd := (off &^ uint64(sim.LineBytes-1)) + sim.LineBytes
			if off+f.Size > lineEnd {
				off = lineEnd
			}
		}
		offsets[f.Name] = off
		cursor = off + f.Size
		placed[i] = true
	}

	for _, gi := range order {
		// Within a group, widest fields first to minimize padding.
		members := make([]int, 0, len(groups[gi]))
		seen := make(map[int]bool)
		for _, name := range groups[gi] {
			i := index[name]
			if !placed[i] && !seen[i] {
				members = append(members, i)
				seen[i] = true
			}
		}
		sort.SliceStable(members, func(a, b int) bool {
			return fields[members[a]].Size > fields[members[b]].Size
		})
		for _, i := range members {
			place(i)
		}
	}

	// Cold fields in declaration order, after the hot region.
	cursor = (cursor + sim.LineBytes - 1) &^ uint64(sim.LineBytes-1)
	for i := range fields {
		if !placed[i] {
			place(i)
		}
	}

	return mem.PackedLayout(fields, offsets)
}

func alignOf(size uint64) uint64 {
	switch {
	case size >= 8:
		return 8
	case size >= 4:
		return 4
	case size >= 2:
		return 2
	default:
		return 1
	}
}

// FuseMember describes one NF's contribution to a fused SFC pool.
type FuseMember struct {
	// Name is the NF instance name.
	Name string
	// Fields is the NF's per-flow record (natural order).
	Fields []mem.Field
	// Hot names the fields the NF's per-packet path accesses.
	Hot []string
}

// FuseStates implements the SFC form of data packing the paper
// describes ("per-flow states of the consecutive network functions are
// highly correlated temporally, we put them in the same cache line if
// possible"): it builds ONE per-flow pool whose entries concatenate
// every member's record, with all members' hot fields packed together
// at the front of the entry. Each member receives a layout view using
// its own field names, so the NFs' action declarations are unchanged.
func FuseStates(as *mem.AddressSpace, name string, members []FuseMember, maxFlows int) (map[string]*nf.States, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("compile: fuse: no members")
	}
	// Global field list with member-qualified names, plus the hot
	// co-access group per member.
	var all []mem.Field
	var groups [][]string
	for _, m := range members {
		hotSet := make(map[string]bool, len(m.Hot))
		group := make([]string, 0, len(m.Hot))
		for _, h := range m.Hot {
			hotSet[h] = true
			group = append(group, m.Name+"."+h)
		}
		for _, f := range m.Fields {
			all = append(all, mem.Field{Name: m.Name + "." + f.Name, Size: f.Size})
		}
		groups = append(groups, group)
	}
	// One extra group spanning every member's hot fields: the chain
	// touches them for the same packet, so they are temporally
	// correlated across NFs.
	var chainGroup []string
	for _, g := range groups {
		chainGroup = append(chainGroup, g...)
	}
	groups = append(groups, chainGroup)

	fused, err := PackLayout(all, groups)
	if err != nil {
		return nil, fmt.Errorf("compile: fuse: %w", err)
	}
	pool, err := mem.NewPool(as, name+".fused", fused.Size(), maxFlows)
	if err != nil {
		return nil, fmt.Errorf("compile: fuse: %w", err)
	}

	out := make(map[string]*nf.States, len(members))
	for _, m := range members {
		view := make(map[string]uint64, len(m.Fields))
		for _, f := range m.Fields {
			off, err := fused.Offset(m.Name + "." + f.Name)
			if err != nil {
				return nil, fmt.Errorf("compile: fuse: %w", err)
			}
			view[f.Name] = off
		}
		layout, err := mem.PackedLayout(m.Fields, view)
		if err != nil {
			return nil, fmt.Errorf("compile: fuse: view for %s: %w", m.Name, err)
		}
		ctrlBase := as.Reserve(64, 0)
		out[m.Name] = &nf.States{
			Pool:    pool,
			Layout:  layout,
			Control: mem.Region{Name: m.Name + ".control", Base: ctrlBase, Size: 64},
		}
	}
	return out, nil
}
