package compile

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/spec"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// The paper's Listings 1, 2, 3 and 4: the NAT built from specs and an
// NF-C flow-mapper implementation.
const (
	classifierSpecSrc = `
name: flow_classifier
category: StatefulClassifier
parameters:
  - header_type
transitions:
  - Start,packet->get_key
  - get_key,get_key_done->hash_1
  - hash_1,hash_done->check_1
  - check_1,MATCH_SUCCESS->End
  - check_1,check_failure->hash_2
  - hash_2,sec_hash_done->check_2
  - check_2,MATCH_SUCCESS->End
  - check_2,MATCH_FAIL->End
fetch:
  check_1:
    - bucket
  check_2:
    - bucket
`
	mapperSpecSrc = `
name: flow_mapper
category: StatefulNF
transitions:
  - Start,MATCH_SUCCESS->flow_mapper
  - flow_mapper,packet->End
states:
  flow_mapper:
    - ip
    - port
`
	natSpecSrc = `
name: nat
chain:
  - flow_classifier
  - flow_mapper
optimize:
  - redundant_prefetch_removal
`
	mapperImplSrc = `
// Implementation Using NF-C
NFAction(flow_mapper) {
  Packet.src_ip = PerFlowState.ip;
  Packet.src_port = PerFlowState.port;
  Emit(Event_Packet);
}
`
)

func compileSpecNAT(t *testing.T, flows int) (*SpecResult, *mem.AddressSpace) {
	t.Helper()
	cls, err := spec.ParseModule(classifierSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := spec.ParseModule(mapperSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	nfSpec, err := spec.ParseNF(natSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace()
	res, err := FromSpec(as, SpecUnit{
		Modules:   map[string]*spec.Module{"flow_classifier": cls, "flow_mapper": mapper},
		NF:        nfSpec,
		NFCSource: mapperImplSrc,
		MaxFlows:  flows,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, as
}

func TestFromSpecBuildsNAT(t *testing.T) {
	res, _ := compileSpecNAT(t, 64)
	if res.Program == nil || res.Table == nil {
		t.Fatal("incomplete result")
	}
	// Classifier (3 CS) + mapper (1 CS) + End.
	if res.Program.NumCS() != 5 {
		t.Fatalf("NumCS = %d, want 5", res.Program.NumCS())
	}
	if _, ok := res.Stores["flow_mapper"]; !ok {
		t.Fatal("mapper store missing")
	}
}

func TestFromSpecNATProcessesPackets(t *testing.T) {
	const flows, packets = 64, 1000
	res, _ := compileSpecNAT(t, flows)
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: flows, PacketBytes: 64, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	store := res.Stores["flow_mapper"]
	ipIdx := 0
	portIdx := 1
	for i := 0; i < flows; i++ {
		if err := res.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			t.Fatal(err)
		}
		if err := store.Set(i, ipIdx, uint64(0xC0000200+i)); err != nil {
			t.Fatal(err)
		}
		if err := store.Set(i, portIdx, uint64(20000+i)); err != nil {
			t.Fatal(err)
		}
	}

	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rt.NewWorker(core, mem.NewAddressSpace(), res.Program, rt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Run(g, packets)
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets != packets {
		t.Fatalf("processed %d packets", r.Packets)
	}
}

func TestFromSpecRewriteMatchesMapping(t *testing.T) {
	res, _ := compileSpecNAT(t, 4)
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: 1, PacketBytes: 64, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AddFlow(g.FlowTuple(0), 0); err != nil {
		t.Fatal(err)
	}
	store := res.Stores["flow_mapper"]
	if err := store.Set(0, 0, 0x11223344); err != nil {
		t.Fatal(err)
	}
	if err := store.Set(0, 1, 5555); err != nil {
		t.Fatal(err)
	}
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), res.Program, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := g.Next()
	if _, err := w.Run(&oneShotSource{p: p}, 0); err != nil {
		t.Fatal(err)
	}
	if p.Tuple.SrcIP != 0x11223344 || p.Tuple.SrcPort != 5555 {
		t.Fatalf("NF-C mapper did not rewrite: %+v", p.Tuple)
	}
}

type oneShotSource struct {
	p    *pkt.Packet
	sent bool
}

func (s *oneShotSource) Next() *pkt.Packet {
	if s.sent {
		return nil
	}
	s.sent = true
	return s.p
}

func TestFromSpecErrors(t *testing.T) {
	cls, err := spec.ParseModule(classifierSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := spec.ParseModule(mapperSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	nfSpec, err := spec.ParseNF(natSpecSrc)
	if err != nil {
		t.Fatal(err)
	}
	mods := map[string]*spec.Module{"flow_classifier": cls, "flow_mapper": mapper}
	as := mem.NewAddressSpace()

	if _, err := FromSpec(as, SpecUnit{Modules: mods, NF: nil, MaxFlows: 8}); err == nil {
		t.Fatal("nil composition accepted")
	}
	if _, err := FromSpec(as, SpecUnit{Modules: mods, NF: nfSpec, NFCSource: mapperImplSrc, MaxFlows: 0}); err == nil {
		t.Fatal("zero MaxFlows accepted")
	}
	if _, err := FromSpec(as, SpecUnit{Modules: nil, NF: nfSpec, NFCSource: mapperImplSrc, MaxFlows: 8}); err == nil {
		t.Fatal("unknown module accepted")
	}
	if _, err := FromSpec(as, SpecUnit{Modules: mods, NF: nfSpec, NFCSource: "", MaxFlows: 8}); err == nil {
		t.Fatal("missing NF-C implementation accepted")
	}
	// Classifier not first.
	badNF, err := spec.ParseNF("name: x\nchain:\n  - flow_mapper\n  - flow_classifier")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSpec(as, SpecUnit{Modules: mods, NF: badNF, NFCSource: mapperImplSrc, MaxFlows: 8}); err == nil {
		t.Fatal("classifier in non-first stage accepted")
	}
}
