// Package compile implements the GuNFu compiler of the paper's §VI: it
// lowers NF/SFC specifications onto the model.Builder, and applies the
// three compilation optimizations granular decomposition enables —
// redundant matching removal (MR) for chained NFs, redundant prefetch
// removal (PRR) over the control-state graph, and cache-conscious data
// packing (DP) of per-flow state layouts.
package compile

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// Chainable is a network function that can contribute its modules to a
// composed service function chain. The four data-center NFs (LB, NAT,
// NM, FW) all implement it.
type Chainable interface {
	// Name returns the instance name (unique within a chain).
	Name() string
	// Attach registers the full NF (classifier + data path), exiting
	// toward next, and returns its entry state.
	Attach(b *model.Builder, next string) string
	// AttachData registers only the data path, relying on a FlowIdx set
	// by an upstream classifier — the post-MR form.
	AttachData(b *model.Builder, next string) string
	// AddFlow pre-populates per-flow state for tuple at index idx.
	AddFlow(tuple pkt.FiveTuple, idx int32) error
	// Translate returns the tuple as the NF emits it for flow idx (the
	// identity for non-rewriting NFs). Chain population uses it so each
	// NF's match table is keyed on the packet as it arrives there.
	Translate(tuple pkt.FiveTuple, idx int32) pkt.FiveTuple
	// States exposes the NF's per-flow state objects.
	States() *nf.States
}

// SFCOptions selects the compilation optimizations for a chain.
type SFCOptions struct {
	// RemoveRedundantMatching keeps only the first NF's classifier and
	// reuses its match result for every subsequent NF (all NFs must key
	// on the five-tuple and share a flow index space).
	RemoveRedundantMatching bool
	// RemoveRedundantPrefetches runs the PRR dataflow pass on the built
	// program.
	RemoveRedundantPrefetches bool
}

// BuildSFC composes the chain into one program, NFs in traversal order.
func BuildSFC(name string, chain []Chainable, opts SFCOptions) (*model.Program, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("compile: empty chain")
	}
	seen := make(map[string]bool, len(chain))
	for _, c := range chain {
		if seen[c.Name()] {
			return nil, fmt.Errorf("compile: duplicate NF name %q in chain", c.Name())
		}
		seen[c.Name()] = true
	}

	b := model.NewBuilder(name)
	next := model.EndName
	for i := len(chain) - 1; i >= 0; i-- {
		if opts.RemoveRedundantMatching && i > 0 {
			// Downstream NFs reuse the head classifier's match result.
			next = chain[i].AttachData(b, next)
		} else {
			next = chain[i].Attach(b, next)
		}
	}
	b.SetStart(next)
	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("compile: %s: %w", name, err)
	}
	if opts.RemoveRedundantPrefetches {
		if err := RemoveRedundantPrefetches(prog); err != nil {
			return nil, fmt.Errorf("compile: %s: PRR: %w", name, err)
		}
	}
	return prog, nil
}

// PopulateFlows installs the (tuple → index) assignment into every NF
// of the chain, establishing the shared flow index space that redundant
// matching removal relies on. Each NF is keyed on the tuple as packets
// reach it: the flow's original tuple transformed by every upstream
// NF's rewrite.
func PopulateFlows(chain []Chainable, tuples []pkt.FiveTuple) error {
	for i, tuple := range tuples {
		cur := tuple
		for _, c := range chain {
			if err := c.AddFlow(cur, int32(i)); err != nil {
				return fmt.Errorf("compile: populating %s flow %d: %w", c.Name(), i, err)
			}
			cur = c.Translate(cur, int32(i))
		}
	}
	return nil
}
