package compile

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf"
	"github.com/gunfu-nfv/gunfu/internal/nf/fw"
	"github.com/gunfu-nfv/gunfu/internal/nf/lb"
	"github.com/gunfu-nfv/gunfu/internal/nf/monitor"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

func TestPackLayoutClustersHotFields(t *testing.T) {
	fields := []mem.Field{
		{Name: "hot_a", Size: 8},
		{Name: "cold_1", Size: 120},
		{Name: "hot_b", Size: 8},
		{Name: "cold_2", Size: 120},
		{Name: "hot_c", Size: 8},
	}
	groups := [][]string{{"hot_a", "hot_b", "hot_c"}}

	natural, err := mem.NewLayout(fields...)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := PackLayout(fields, groups)
	if err != nil {
		t.Fatal(err)
	}
	nNat, err := natural.LinesTouched(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	nPack, err := packed.LinesTouched(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	if nPack != 1 {
		t.Fatalf("packed hot fields span %d lines, want 1", nPack)
	}
	if nPack >= nNat {
		t.Fatalf("packing did not reduce lines: natural %d, packed %d", nNat, nPack)
	}
	// All fields must still be present and non-overlapping (PackedLayout
	// validates overlap internally).
	for _, f := range fields {
		if _, err := packed.Offset(f.Name); err != nil {
			t.Fatalf("field %s lost: %v", f.Name, err)
		}
	}
}

func TestPackLayoutErrors(t *testing.T) {
	fields := []mem.Field{{Name: "a", Size: 8}}
	if _, err := PackLayout(fields, [][]string{{"ghost"}}); err == nil {
		t.Fatal("unknown group field accepted")
	}
	dup := []mem.Field{{Name: "a", Size: 8}, {Name: "a", Size: 8}}
	if _, err := PackLayout(dup, nil); err == nil {
		t.Fatal("duplicate field accepted")
	}
}

func TestPackLayoutColdOnly(t *testing.T) {
	fields := []mem.Field{{Name: "a", Size: 8}, {Name: "b", Size: 8}}
	packed, err := PackLayout(fields, nil)
	if err != nil {
		t.Fatal(err)
	}
	if packed.Size() < 16 {
		t.Fatalf("Size = %d", packed.Size())
	}
}

func TestPackLayoutRespectsFrequency(t *testing.T) {
	// "a" is accessed by three actions, "z" by one; both plus enough
	// bulk that they cannot all share a line. "a" must land in the
	// first line.
	fields := []mem.Field{
		{Name: "a", Size: 8},
		{Name: "bulk1", Size: 56},
		{Name: "z", Size: 8},
	}
	groups := [][]string{{"a", "bulk1"}, {"a"}, {"a"}, {"z", "bulk1"}}
	packed, err := PackLayout(fields, groups)
	if err != nil {
		t.Fatal(err)
	}
	off, err := packed.Offset("a")
	if err != nil {
		t.Fatal(err)
	}
	if off >= sim.LineBytes {
		t.Fatalf("hottest field at offset %d, want first line", off)
	}
}

func buildChain(t *testing.T, as *mem.AddressSpace, flows int, fused bool) []Chainable {
	t.Helper()
	var fusedStates map[string]*nf.States
	if fused {
		members := []FuseMember{
			{Name: "lb", Fields: lb.FlowFields(), Hot: lb.HotFields()},
			{Name: "nat", Fields: nat.FlowFields(), Hot: nat.HotFields()},
			{Name: "nm", Fields: monitor.FlowFields(), Hot: monitor.HotFields()},
			{Name: "fw", Fields: fw.FlowFields(), Hot: fw.HotFields()},
		}
		var err error
		fusedStates, err = FuseStates(as, "sfc", members, flows)
		if err != nil {
			t.Fatal(err)
		}
	}
	get := func(name string) *nf.States {
		if fusedStates == nil {
			return nil
		}
		return fusedStates[name]
	}

	l, err := lb.New(as, lb.Config{MaxFlows: flows, States: get("lb")})
	if err != nil {
		t.Fatal(err)
	}
	n, err := nat.New(as, nat.Config{MaxFlows: flows, States: get("nat")})
	if err != nil {
		t.Fatal(err)
	}
	m, err := monitor.New(as, monitor.Config{MaxFlows: flows, States: get("nm")})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fw.New(as, fw.Config{MaxFlows: flows, States: get("fw")})
	if err != nil {
		t.Fatal(err)
	}
	return []Chainable{l, n, m, f}
}

func TestBuildSFCValidation(t *testing.T) {
	if _, err := BuildSFC("x", nil, SFCOptions{}); err == nil {
		t.Fatal("empty chain accepted")
	}
	as := mem.NewAddressSpace()
	n1, err := nat.New(as, nat.Config{Name: "same", MaxFlows: 4})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := nat.New(as, nat.Config{Name: "same", MaxFlows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSFC("x", []Chainable{n1, n2}, SFCOptions{}); err == nil {
		t.Fatal("duplicate NF names accepted")
	}
}

func runSFC(t *testing.T, chain []Chainable, opts SFCOptions, g rt.Source, packets uint64, interleaved bool) rt.Result {
	t.Helper()
	prog, err := BuildSFC("sfc", chain, opts)
	if err != nil {
		t.Fatal(err)
	}
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if interleaved {
		w, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, rt.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(g, packets)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(g, packets)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func populate(t *testing.T, chain []Chainable, g *traffic.FlowGen) {
	t.Helper()
	tuples := make([]pkt.FiveTuple, g.Flows())
	for i := range tuples {
		tuples[i] = g.FlowTuple(i)
	}
	if err := PopulateFlows(chain, tuples); err != nil {
		t.Fatal(err)
	}
}

func newGen(t *testing.T, flows int) *traffic.FlowGen {
	t.Helper()
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: flows, PacketBytes: 64, Order: traffic.OrderUniform, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSFCRunsAllNFs(t *testing.T) {
	const flows, packets = 128, 1500
	as := mem.NewAddressSpace()
	chain := buildChain(t, as, flows, false)
	g := newGen(t, flows)
	populate(t, chain, g)

	res := runSFC(t, chain, SFCOptions{}, g, packets, false)
	if res.Packets != packets {
		t.Fatalf("processed %d packets", res.Packets)
	}
	// Every NF's counters must see every packet.
	nm := chain[2].(*monitor.Monitor)
	if nm.Totals().Pkts != packets {
		t.Fatalf("monitor saw %d packets, want %d", nm.Totals().Pkts, packets)
	}
	fwNF := chain[3].(*fw.FW)
	if fwNF.Drops() != 0 {
		t.Fatalf("allow-all firewall dropped %d", fwNF.Drops())
	}
}

func TestMRReducesControlStates(t *testing.T) {
	const flows = 64
	as1 := mem.NewAddressSpace()
	full := buildChain(t, as1, flows, false)
	g := newGen(t, flows)
	populate(t, full, g)
	progFull, err := BuildSFC("sfc", full, SFCOptions{})
	if err != nil {
		t.Fatal(err)
	}

	as2 := mem.NewAddressSpace()
	mr := buildChain(t, as2, flows, false)
	populate(t, mr, newGen(t, flows))
	progMR, err := BuildSFC("sfc", mr, SFCOptions{RemoveRedundantMatching: true})
	if err != nil {
		t.Fatal(err)
	}

	if progMR.NumCS() >= progFull.NumCS() {
		t.Fatalf("MR did not reduce states: %d vs %d", progMR.NumCS(), progFull.NumCS())
	}
}

func TestMRPreservesSemantics(t *testing.T) {
	const flows, packets = 128, 2000

	results := make([]*monitor.Monitor, 2)
	for i, mrOn := range []bool{false, true} {
		as := mem.NewAddressSpace()
		chain := buildChain(t, as, flows, false)
		g := newGen(t, flows)
		populate(t, chain, g)
		runSFC(t, chain, SFCOptions{RemoveRedundantMatching: mrOn}, g, packets, true)
		results[i] = chain[2].(*monitor.Monitor)
	}
	for i := int32(0); i < flows; i++ {
		f0, _ := results[0].Flow(i)
		f1, _ := results[1].Flow(i)
		if f0.Pkts != f1.Pkts || f0.Bytes != f1.Bytes {
			t.Fatalf("flow %d diverged under MR: {%d,%d} vs {%d,%d}",
				i, f0.Pkts, f0.Bytes, f1.Pkts, f1.Bytes)
		}
	}
}

func TestMRFasterThanFullChain(t *testing.T) {
	const flows, packets = 32768, 20000

	run := func(opts SFCOptions) rt.Result {
		as := mem.NewAddressSpace()
		chain := buildChain(t, as, flows, false)
		g := newGen(t, flows)
		populate(t, chain, g)
		prog, err := BuildSFC("sfc", chain, opts)
		if err != nil {
			t.Fatal(err)
		}
		core, err := sim.NewCore(sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		w, err := rt.NewWorker(core, mem.NewAddressSpace(), prog, rt.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(g, 4000); err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(g, packets)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(SFCOptions{})
	mr := run(SFCOptions{RemoveRedundantMatching: true})
	if mr.Cycles >= full.Cycles {
		t.Fatalf("MR not faster: %d vs %d cycles", mr.Cycles, full.Cycles)
	}
}

func TestFuseStatesSharedPool(t *testing.T) {
	as := mem.NewAddressSpace()
	members := []FuseMember{
		{Name: "nat", Fields: nat.FlowFields(), Hot: nat.HotFields()},
		{Name: "lb", Fields: lb.FlowFields(), Hot: lb.HotFields()},
	}
	fusedStates, err := FuseStates(as, "x", members, 32)
	if err != nil {
		t.Fatal(err)
	}
	if fusedStates["nat"].Pool != fusedStates["lb"].Pool {
		t.Fatal("members do not share the fused pool")
	}
	// Hot fields across both NFs must land in fewer lines than two
	// separate one-line records would occupy.
	natHot, err := fusedStates["nat"].Layout.LinesTouched(nat.HotFields())
	if err != nil {
		t.Fatal(err)
	}
	lbHot, err := fusedStates["lb"].Layout.LinesTouched(lb.HotFields())
	if err != nil {
		t.Fatal(err)
	}
	if natHot > 1 || lbHot > 1 {
		t.Fatalf("fused hot fields span nat=%d lb=%d lines", natHot, lbHot)
	}
}

func TestFuseStatesErrors(t *testing.T) {
	if _, err := FuseStates(mem.NewAddressSpace(), "x", nil, 8); err == nil {
		t.Fatal("empty members accepted")
	}
}

func TestFusedChainSemantics(t *testing.T) {
	const flows, packets = 128, 1500
	as := mem.NewAddressSpace()
	chain := buildChain(t, as, flows, true)
	g := newGen(t, flows)
	populate(t, chain, g)
	runSFC(t, chain, SFCOptions{RemoveRedundantMatching: true}, g, packets, true)
	nm := chain[2].(*monitor.Monitor)
	if nm.Totals().Pkts != packets {
		t.Fatalf("fused chain monitor saw %d packets, want %d", nm.Totals().Pkts, packets)
	}
}

func TestPRRRemovesPrefetches(t *testing.T) {
	const flows = 64
	as := mem.NewAddressSpace()
	chain := buildChain(t, as, flows, false)
	populate(t, chain, newGen(t, flows))
	prog, err := BuildSFC("sfc", chain, SFCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	countSpans := func(p *model.Program) int {
		total := 0
		for i := 1; i < p.NumCS(); i++ {
			info, err := p.CS(model.CSID(i))
			if err != nil {
				t.Fatal(err)
			}
			total += len(info.Prefetch)
		}
		return total
	}
	before := countSpans(prog)
	if err := RemoveRedundantPrefetches(prog); err != nil {
		t.Fatal(err)
	}
	after := countSpans(prog)
	if after >= before {
		t.Fatalf("PRR removed nothing: %d -> %d prefetch spans", before, after)
	}
}

func TestPRRPreservesSemantics(t *testing.T) {
	const flows, packets = 128, 1500
	results := make([]*monitor.Monitor, 2)
	for i, prr := range []bool{false, true} {
		as := mem.NewAddressSpace()
		chain := buildChain(t, as, flows, false)
		g := newGen(t, flows)
		populate(t, chain, g)
		runSFC(t, chain, SFCOptions{RemoveRedundantPrefetches: prr}, g, packets, true)
		results[i] = chain[2].(*monitor.Monitor)
	}
	if results[0].Totals() != results[1].Totals() {
		t.Fatalf("PRR changed totals: %+v vs %+v", results[0].Totals(), results[1].Totals())
	}
}

func TestPopulateFlowsPropagatesErrors(t *testing.T) {
	as := mem.NewAddressSpace()
	n, err := nat.New(as, nat.Config{MaxFlows: 1})
	if err != nil {
		t.Fatal(err)
	}
	tuples := []pkt.FiveTuple{{SrcIP: 1}, {SrcIP: 2}}
	if err := PopulateFlows([]Chainable{n}, tuples); err == nil {
		t.Fatal("overflow not reported")
	}
}
