package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.AddRow("alpha", F(1.5, 2))
	tb.AddRow("beta") // short row pads
	tb.AddRow("gamma", "3", "extra-dropped")

	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "T\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("rule = %q", lines[2])
	}
}

func TestCellAccess(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1.25", "x")
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	v, err := tb.CellFloat(0, 0)
	if err != nil || v != 1.25 {
		t.Fatalf("CellFloat = %v, %v", v, err)
	}
	if _, err := tb.CellFloat(0, 1); err == nil {
		t.Fatal("non-numeric cell parsed")
	}
	if _, err := tb.Cell(5, 0); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := tb.Cell(0, 5); err == nil {
		t.Fatal("out-of-range col accepted")
	}
	idx, err := tb.ColumnIndex("b")
	if err != nil || idx != 1 {
		t.Fatalf("ColumnIndex = %d, %v", idx, err)
	}
	if _, err := tb.ColumnIndex("zzz"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal("F")
	}
	if I(42) != "42" {
		t.Fatal("I")
	}
	if U(7) != "7" {
		t.Fatal("U")
	}
	if Pct(0.5) != "50.0%" {
		t.Fatalf("Pct = %q", Pct(0.5))
	}
}
