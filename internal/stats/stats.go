// Package stats renders experiment results as aligned text tables —
// the rows/series of the paper's figures in reproducible textual form.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title heads the rendered output.
	Title string
	// Columns are the header cells.
	Columns []string
	rows    [][]string
}

// NewTable builds a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extra cells are
// dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col).
func (t *Table) Cell(row, col int) (string, error) {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.Columns) {
		return "", fmt.Errorf("stats: cell (%d,%d) out of range", row, col)
	}
	return t.rows[row][col], nil
}

// CellFloat parses the cell at (row, col) as a float.
func (t *Table) CellFloat(row, col int) (float64, error) {
	s, err := t.Cell(row, col)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("stats: cell (%d,%d) %q: %w", row, col, s, err)
	}
	return v, nil
}

// ColumnIndex finds a column by header name.
func (t *Table) ColumnIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("stats: no column %q", name)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV writes the table as RFC 4180 CSV: one header record of the
// column names followed by the data rows. The title is not emitted
// (CSV has no comment syntax); callers wanting it should write their
// own preamble.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("stats: csv header: %w", err)
	}
	for i, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("stats: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("stats: csv flush: %w", err)
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given precision.
func F(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// I formats an integer.
func I(v int) string { return strconv.Itoa(v) }

// U formats an unsigned counter.
func U(v uint64) string { return strconv.FormatUint(v, 10) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return F(100*v, 1) + "%" }
