package stats

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestHistogramExactLinearRange(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 32; v++ {
		h.AddN(v, v+1)
	}
	if h.Count() != 32*33/2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	// Values below 2^histSubBits are recorded exactly, so quantiles in
	// that range are exact order statistics (upper-bound convention).
	if q := h.Quantile(1); q != 31 {
		t.Fatalf("p100 = %d", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d", q)
	}
	// Rank of value v is sum_{i<=v}(i+1); p50 over 528 samples is rank
	// 264, which lands in value 22 (cumulative 253..275).
	if q := h.Quantile(0.5); q != 22 {
		t.Fatalf("p50 = %d, want 22", q)
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Heavy-tailed: mix of small and large values across octaves.
		v := uint64(rng.Int63n(1 << uint(4+rng.Intn(28))))
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(q * float64(len(samples)))
		if rank >= len(samples) {
			rank = len(samples) - 1
		}
		exact := samples[rank]
		got := h.Quantile(q)
		// Upper-bound convention with 1/32 relative bucket width.
		if float64(got) < float64(exact)*0.97-1 || float64(got) > float64(exact)*1.04+1 {
			t.Fatalf("q=%v: got %d, exact %d", q, got, exact)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for v := uint64(1); v < 10000; v *= 3 {
		a.Add(v)
		both.Add(v)
	}
	for v := uint64(2); v < 100000; v *= 5 {
		b.Add(v)
		both.Add(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() {
		t.Fatalf("merge count/sum = %d/%d, want %d/%d", a.Count(), a.Sum(), both.Count(), both.Sum())
	}
	if a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merge min/max = %d/%d, want %d/%d", a.Min(), a.Max(), both.Min(), both.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("q=%v: merged %d, direct %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := a.Count()
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != before {
		t.Fatalf("empty merge changed count")
	}
}

// TestHistogramMergeOfSplitsProperty is the aggregation property the
// director's cluster-level quantiles rest on: scattering a sample
// stream across k histograms and merging them back must reproduce the
// whole-stream histogram exactly (same buckets, same quantiles), for
// random streams and random splits.
func TestHistogramMergeOfSplitsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(6)
		parts := make([]Histogram, k)
		var whole Histogram
		n := 100 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			v := uint64(rng.Int63n(1 << uint(1+rng.Intn(40))))
			whole.Add(v)
			parts[rng.Intn(k)].Add(v)
		}
		var merged Histogram
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
			merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("trial %d: merged count/sum/min/max = %d/%d/%d/%d, whole %d/%d/%d/%d",
				trial, merged.Count(), merged.Sum(), merged.Min(), merged.Max(),
				whole.Count(), whole.Sum(), whole.Min(), whole.Max())
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
				t.Fatalf("trial %d q=%.2f: merged %d, whole %d", trial, q, m, w)
			}
		}
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Add(uint64(rng.Int63n(1 << uint(2+rng.Intn(30)))))
	}
	b, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Sum() != h.Sum() ||
		back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("round trip count/sum/min/max = %d/%d/%d/%d, want %d/%d/%d/%d",
			back.Count(), back.Sum(), back.Min(), back.Max(),
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q=%v: %d vs %d", q, back.Quantile(q), h.Quantile(q))
		}
	}
	// A decoded histogram must keep merging like a native one.
	var merged Histogram
	merged.Merge(&back)
	merged.Merge(&back)
	if merged.Count() != 2*h.Count() {
		t.Fatalf("merge after decode count = %d", merged.Count())
	}
	// Geometry mismatches are rejected, not silently mis-merged.
	if err := back.UnmarshalJSON([]byte(`{"sub_bits":4,"counts":[1]}`)); err == nil {
		t.Fatal("incompatible sub_bits accepted")
	}
	// Empty round trip.
	var empty, emptyBack Histogram
	b, err = empty.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := emptyBack.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if emptyBack.Count() != 0 {
		t.Fatalf("empty round trip count = %d", emptyBack.Count())
	}
}

func TestHistogramCloneAndReset(t *testing.T) {
	var h Histogram
	for v := uint64(1); v < 1000; v *= 2 {
		h.Add(v)
	}
	c := h.Clone()
	h.Add(1 << 30)
	if c.Count() != 10 || c.Max() == h.Max() {
		t.Fatalf("clone shares state: count %d max %d vs %d", c.Count(), c.Max(), h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset histogram must report zeros")
	}
	h.Add(7)
	if h.Count() != 1 || h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("post-reset add: count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if c.Count() != 10 {
		t.Fatal("reset leaked into clone")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's max value must map back to the same bucket, and
	// bucket indexes must be monotone in the sample value.
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		idx := histBucket(v)
		if idx < prev {
			t.Fatalf("bucket(%d) = %d not monotone (prev %d)", v, idx, prev)
		}
		prev = idx
		if histBucket(histBucketMax(idx)) != idx {
			t.Fatalf("bucketMax(%d) = %d maps to bucket %d", idx, histBucketMax(idx), histBucket(histBucketMax(idx)))
		}
		if histBucketMax(idx) < v {
			t.Fatalf("bucketMax(%d) = %d below member %d", idx, histBucketMax(idx), v)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := NewTable("title ignored", "name", "value", "note")
	tab.AddRow("a", "1", "plain")
	tab.AddRow("b", "2", `comma, and "quote"`)
	tab.AddRow("c") // short row pads empty cells
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "name,value,note\n" +
		"a,1,plain\n" +
		"b,2,\"comma, and \"\"quote\"\"\"\n" +
		"c,,\n"
	if got != want {
		t.Fatalf("csv:\n got %q\nwant %q", got, want)
	}
	if strings.Contains(got, "title") {
		t.Fatal("title must not leak into CSV")
	}
}
