package stats

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// histSubBits sets the histogram resolution: each power-of-two octave
// is split into 2^histSubBits linear sub-buckets, bounding the relative
// quantile error at 1/2^histSubBits (~3% at 5 bits). Values below
// 2^histSubBits are recorded exactly.
const histSubBits = 5

// Histogram is a log-bucketed histogram of uint64 samples (HdrHistogram
// style: linear sub-buckets within power-of-two octaves). It is cheap
// enough for per-packet recording — Add is a shift and two adds with no
// allocation once the bucket array has grown to cover the observed
// range — mergeable across workers, and supports quantile extraction.
//
// The zero value is ready to use. A Histogram is not safe for
// concurrent use.
type Histogram struct {
	counts   []uint64
	total    uint64
	sum      uint64
	min, max uint64
}

// histBucket maps a sample to its bucket index.
func histBucket(v uint64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - histSubBits
	return exp<<histSubBits + int(v>>uint(exp))
}

// histBucketMax returns the largest sample value mapping to bucket idx.
func histBucketMax(idx int) uint64 {
	if idx < 1<<histSubBits {
		return uint64(idx)
	}
	exp := uint(idx>>histSubBits - 1)
	sub := uint64(idx&(1<<histSubBits-1)) + 1<<histSubBits
	return (sub+1)<<exp - 1
}

// Add records one sample.
func (h *Histogram) Add(v uint64) { h.AddN(v, 1) }

// AddN records n samples of value v.
func (h *Histogram) AddN(v, n uint64) {
	if n == 0 {
		return
	}
	idx := histBucket(v)
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx] += n
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total += n
	h.sum += v * n
}

// Merge folds o into h. Histograms share one fixed bucket geometry, so
// merging is element-wise addition.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, n := range o.counts {
		h.counts[i] += n
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset empties the histogram, keeping the grown bucket array so a
// windowed recorder does not reallocate every window.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Clone returns an independent copy of h: mutating either histogram
// afterwards leaves the other untouched. Aggregators hand out clones so
// a caller can keep quantile state past the aggregator's lock.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// histogramWire is the JSON form of a Histogram. Counts carries the
// bucket array with trailing zeros trimmed; the geometry is fixed by
// histSubBits, so the counts alone reconstruct the distribution.
type histogramWire struct {
	SubBits int      `json:"sub_bits"`
	Counts  []uint64 `json:"counts"`
	Total   uint64   `json:"total"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
}

// MarshalJSON encodes the histogram for the wire (telemetry heartbeats
// carry per-window latency histograms so the receiver can Merge them
// into cluster-level quantiles).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	counts := h.counts
	for len(counts) > 0 && counts[len(counts)-1] == 0 {
		counts = counts[:len(counts)-1]
	}
	if len(counts) == 0 {
		// Canonical empty form: an all-zero bucket array and a nil one
		// must encode identically so re-encoding a decoded histogram is
		// byte-stable.
		counts = []uint64{}
	}
	return json.Marshal(histogramWire{
		SubBits: histSubBits,
		Counts:  counts,
		Total:   h.total,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	})
}

// UnmarshalJSON decodes a histogram produced by MarshalJSON. It rejects
// payloads from a build with a different bucket geometry: bucket counts
// are only mergeable when both sides split octaves identically.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.SubBits != histSubBits {
		return fmt.Errorf("stats: histogram sub_bits %d incompatible with %d", w.SubBits, histSubBits)
	}
	h.counts = append(h.counts[:0], w.Counts...)
	h.total = w.Total
	h.sum = w.Sum
	h.min = w.Min
	h.max = w.Max
	return nil
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min and Max return the smallest and largest recorded samples (0 when
// empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1):
// the bucket ceiling of the sample at rank ceil(q*count), clamped to
// the observed maximum. Exact for values below 2^histSubBits, within
// 1/2^histSubBits relative error above. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	rank := uint64(q * float64(h.total))
	if float64(rank) < q*float64(h.total) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for idx, n := range h.counts {
		seen += n
		if seen >= rank {
			v := histBucketMax(idx)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
