package spec

import (
	"fmt"
	"strings"
)

// Transition is one Δ edge from a module specification: "from,event->to"
// (Listing 1), with "Start" as the pseudo-source for the initial
// transition.
type Transition struct {
	// From is the source control state ("Start" for the entry edge).
	From string
	// Event is the triggering NFEvent name.
	Event string
	// To is the destination control state ("End" to finish).
	To string
}

// StartState is the pseudo-state naming the module entry.
const StartState = "Start"

// ParseTransition reads the "from,event->to" syntax.
func ParseTransition(s string) (Transition, error) {
	arrow := strings.Index(s, "->")
	if arrow < 0 {
		return Transition{}, fmt.Errorf("spec: transition %q: missing \"->\"", s)
	}
	left, to := strings.TrimSpace(s[:arrow]), strings.TrimSpace(s[arrow+2:])
	comma := strings.LastIndex(left, ",")
	if comma < 0 {
		return Transition{}, fmt.Errorf("spec: transition %q: missing \",\" between state and event", s)
	}
	tr := Transition{
		From:  strings.TrimSpace(left[:comma]),
		Event: strings.TrimSpace(left[comma+1:]),
		To:    to,
	}
	if tr.From == "" || tr.Event == "" || tr.To == "" {
		return Transition{}, fmt.Errorf("spec: transition %q: empty component", s)
	}
	return tr, nil
}

// Module is a parsed module specification (Listing 1/2): the control
// states with their fetch sets and the transitions among them.
type Module struct {
	// Name identifies the module.
	Name string
	// Category is the declared kind (StatefulClassifier, StatefulNF, …).
	Category string
	// Parameters are the init/configuration parameters.
	Parameters []string
	// Transitions are the Δ edges.
	Transitions []Transition
	// Fetch maps each control state to the state names its action
	// accesses (the F function of the model) — the per-state fetch
	// blocks of Listing 1.
	Fetch map[string][]string
	// FetchOrder preserves the source order of Fetch keys.
	FetchOrder []string
	// States maps control states to the user-defined per-flow field
	// list (Listing 2's "states: flow_mapper: [ip, port]").
	States map[string][]string
	// StatesOrder preserves the source order of States keys.
	StatesOrder []string
}

// ParseModule reads a module specification document.
func ParseModule(src string) (*Module, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Name:     root.ScalarOr("name", ""),
		Category: root.ScalarOr("category", ""),
		Fetch:    make(map[string][]string),
		States:   make(map[string][]string),
	}
	if m.Name == "" {
		return nil, fmt.Errorf("spec: module has no name")
	}
	if m.Parameters, err = root.StringList("parameters"); err != nil {
		return nil, err
	}
	trs, err := root.StringList("transitions")
	if err != nil {
		return nil, err
	}
	if len(trs) == 0 {
		return nil, fmt.Errorf("spec: module %s has no transitions", m.Name)
	}
	for _, s := range trs {
		tr, err := ParseTransition(s)
		if err != nil {
			return nil, fmt.Errorf("spec: module %s: %w", m.Name, err)
		}
		m.Transitions = append(m.Transitions, tr)
	}
	if fetch, ok := root.Get("fetch"); ok {
		if fetch.Kind != KindMap {
			return nil, fmt.Errorf("spec: module %s: fetch must be a mapping", m.Name)
		}
		for _, cs := range fetch.Keys {
			names, err := fetch.StringList(cs)
			if err != nil {
				return nil, fmt.Errorf("spec: module %s fetch %s: %w", m.Name, cs, err)
			}
			m.Fetch[cs] = names
			m.FetchOrder = append(m.FetchOrder, cs)
		}
	}
	if states, ok := root.Get("states"); ok {
		if states.Kind != KindMap {
			return nil, fmt.Errorf("spec: module %s: states must be a mapping", m.Name)
		}
		for _, cs := range states.Keys {
			names, err := states.StringList(cs)
			if err != nil {
				return nil, fmt.Errorf("spec: module %s states %s: %w", m.Name, cs, err)
			}
			m.States[cs] = names
			m.StatesOrder = append(m.StatesOrder, cs)
		}
	}
	// Exactly one Start edge defines the entry.
	starts := 0
	for _, tr := range m.Transitions {
		if tr.From == StartState {
			starts++
		}
	}
	if starts != 1 {
		return nil, fmt.Errorf("spec: module %s: need exactly one Start transition, have %d", m.Name, starts)
	}
	return m, nil
}

// Entry returns the module's entry control state and its triggering
// event.
func (m *Module) Entry() (state, event string) {
	for _, tr := range m.Transitions {
		if tr.From == StartState {
			return tr.To, tr.Event
		}
	}
	return "", ""
}

// ChainStage is one stage of an NF/SFC composition spec (Listing 3):
// "0:receive_packet,packet->1:flow_classifier" chains stage 0 to the
// named module at stage 1 on the given event.
type ChainStage struct {
	// Index is the stage number.
	Index int
	// Module is the module instantiated at this stage.
	Module string
}

// NF is a parsed NF/SFC composition specification.
type NF struct {
	// Name identifies the composed network function.
	Name string
	// Stages are the chained modules in order.
	Stages []ChainStage
	// Optimize lists requested compilation optimizations
	// ("redundant_matching_removal", "data_packing",
	// "redundant_prefetch_removal").
	Optimize []string
}

// ParseNF reads an NF/SFC composition document. The chain is given as
// a "chain" list of module names in order (a readable equivalent of
// Listing 3's indexed transitions).
func ParseNF(src string) (*NF, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	n := &NF{Name: root.ScalarOr("name", "")}
	if n.Name == "" {
		return nil, fmt.Errorf("spec: NF has no name")
	}
	chain, err := root.StringList("chain")
	if err != nil {
		return nil, err
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("spec: NF %s has an empty chain", n.Name)
	}
	for i, mod := range chain {
		n.Stages = append(n.Stages, ChainStage{Index: i, Module: mod})
	}
	if n.Optimize, err = root.StringList("optimize"); err != nil {
		return nil, err
	}
	for _, o := range n.Optimize {
		switch o {
		case "redundant_matching_removal", "data_packing", "redundant_prefetch_removal":
		default:
			return nil, fmt.Errorf("spec: NF %s: unknown optimization %q", n.Name, o)
		}
	}
	return n, nil
}
