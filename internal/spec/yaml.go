// Package spec implements GuNFu's specification language (§IV-B of the
// paper): YAML module specifications (Listing 1: control states,
// transitions, fetch sets), NF/SFC composition specifications
// (Listing 3), and the parser that reads them.
//
// The parser handles the YAML subset the specs use — nested maps,
// block lists, string scalars, comments — with no external
// dependencies. It is not a general YAML implementation.
package spec

import (
	"fmt"
	"strings"
)

// Node is one parsed YAML value: exactly one of Scalar, Map, or List is
// meaningful (Kind discriminates).
type Node struct {
	// Kind discriminates the union.
	Kind NodeKind
	// Scalar holds the value for KindScalar.
	Scalar string
	// Map holds the entries for KindMap, with Keys preserving source
	// order.
	Map  map[string]*Node
	Keys []string
	// List holds the items for KindList.
	List []*Node
	// Line is the 1-based source line, for error messages.
	Line int
}

// NodeKind discriminates Node's union.
type NodeKind int

// The node kinds.
const (
	// KindScalar is a bare string value.
	KindScalar NodeKind = iota + 1
	// KindMap is a block mapping.
	KindMap
	// KindList is a block sequence.
	KindList
)

// Get returns the child node for key in a map node.
func (n *Node) Get(key string) (*Node, bool) {
	if n == nil || n.Kind != KindMap {
		return nil, false
	}
	c, ok := n.Map[key]
	return c, ok
}

// ScalarOr returns the scalar for key, or def when absent.
func (n *Node) ScalarOr(key, def string) string {
	c, ok := n.Get(key)
	if !ok || c.Kind != KindScalar {
		return def
	}
	return c.Scalar
}

// StringList returns the child list's scalar items for key.
func (n *Node) StringList(key string) ([]string, error) {
	c, ok := n.Get(key)
	if !ok {
		return nil, nil
	}
	if c.Kind == KindScalar && c.Scalar == "" {
		return nil, nil
	}
	if c.Kind != KindList {
		return nil, fmt.Errorf("spec: line %d: %q must be a list", c.Line, key)
	}
	out := make([]string, 0, len(c.List))
	for _, item := range c.List {
		if item.Kind != KindScalar {
			return nil, fmt.Errorf("spec: line %d: %q items must be scalars", item.Line, key)
		}
		out = append(out, item.Scalar)
	}
	return out, nil
}

type line struct {
	indent  int
	content string
	num     int
}

// Parse reads a YAML-subset document into a node tree. The root must
// be a mapping.
func Parse(src string) (*Node, error) {
	var lines []line
	for i, raw := range strings.Split(src, "\n") {
		content := raw
		// Strip comments (no quoted-string support needed by the specs).
		if idx := strings.Index(content, "#"); idx >= 0 {
			content = content[:idx]
		}
		trimmed := strings.TrimRight(content, " \t\r")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if indent < len(trimmed) && trimmed[indent] == '\t' {
			return nil, fmt.Errorf("spec: line %d: tabs are not allowed for indentation", i+1)
		}
		lines = append(lines, line{indent: indent, content: strings.TrimSpace(trimmed), num: i + 1})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("spec: empty document")
	}
	p := &parser{lines: lines}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("spec: line %d: unexpected content %q", p.lines[p.pos].num, p.lines[p.pos].content)
	}
	if root.Kind != KindMap {
		return nil, fmt.Errorf("spec: document root must be a mapping")
	}
	return root, nil
}

type parser struct {
	lines []line
	pos   int
}

// parseBlock parses the map or list starting at the current position
// whose items are indented at least minIndent.
func (p *parser) parseBlock(minIndent int) (*Node, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("spec: unexpected end of document")
	}
	first := p.lines[p.pos]
	if first.indent < minIndent {
		return nil, fmt.Errorf("spec: line %d: bad indentation", first.num)
	}
	blockIndent := first.indent
	if strings.HasPrefix(first.content, "- ") || first.content == "-" {
		return p.parseList(blockIndent)
	}
	return p.parseMap(blockIndent)
}

func (p *parser) parseMap(indent int) (*Node, error) {
	node := &Node{Kind: KindMap, Map: make(map[string]*Node), Line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("spec: line %d: unexpected indentation", l.num)
		}
		if strings.HasPrefix(l.content, "- ") || l.content == "-" {
			return nil, fmt.Errorf("spec: line %d: list item inside mapping", l.num)
		}
		colon := strings.Index(l.content, ":")
		if colon < 0 {
			return nil, fmt.Errorf("spec: line %d: expected \"key: value\"", l.num)
		}
		key := strings.TrimSpace(l.content[:colon])
		val := strings.TrimSpace(l.content[colon+1:])
		if key == "" {
			return nil, fmt.Errorf("spec: line %d: empty key", l.num)
		}
		if _, dup := node.Map[key]; dup {
			return nil, fmt.Errorf("spec: line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		var child *Node
		if val != "" {
			child = &Node{Kind: KindScalar, Scalar: val, Line: l.num}
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			var err error
			child, err = p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
		} else {
			child = &Node{Kind: KindScalar, Scalar: "", Line: l.num}
		}
		node.Map[key] = child
		node.Keys = append(node.Keys, key)
	}
	return node, nil
}

func (p *parser) parseList(indent int) (*Node, error) {
	node := &Node{Kind: KindList, Line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (!strings.HasPrefix(l.content, "- ") && l.content != "-") {
			if l.indent >= indent && (strings.HasPrefix(l.content, "- ") || l.content == "-") {
				return nil, fmt.Errorf("spec: line %d: inconsistent list indentation", l.num)
			}
			break
		}
		item := strings.TrimSpace(strings.TrimPrefix(l.content, "-"))
		p.pos++
		if item == "" {
			// Nested structure under a bare dash.
			child, err := p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
			node.List = append(node.List, child)
			continue
		}
		node.List = append(node.List, &Node{Kind: KindScalar, Scalar: item, Line: l.num})
	}
	return node, nil
}
