package spec

import (
	"strings"
	"testing"
)

// classifierSpec mirrors the paper's Listing 1 (cuckoo flow classifier).
const classifierSpec = `
# Flow Classifier Specification
name: flow_classifier
category: StatefulClassifier
parameters: # for init, conf
  - header_type
transitions:
  - Start,packet->get_key
  - get_key,get_key_done->hash_1
  - hash_1,hash_done->check_1
  - check_1,MATCH_SUCCESS->End
  - check_1,check_failure->hash_2
  - hash_2,sec_hash_done->check_2
  - check_2,MATCH_SUCCESS->End
  - check_2,MATCH_FAIL->End
fetch:
  hash_1:
    - header_type # packet state
  check_1:
    - bucket # match state
  hash_2:
    - header_type
  check_2:
    - bucket
`

// mapperSpec mirrors Listing 2 (flow mapper).
const mapperSpec = `
name: flow_mapper
category: StatefulNF
transitions:
  - Start,MATCH_SUCCESS->flow_mapper
  - flow_mapper,packet->End
states:
  flow_mapper:
    - ip # mapped ip
    - port # mapped port
`

func TestParseClassifierSpec(t *testing.T) {
	m, err := ParseModule(classifierSpec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "flow_classifier" || m.Category != "StatefulClassifier" {
		t.Fatalf("header = %q/%q", m.Name, m.Category)
	}
	if len(m.Parameters) != 1 || m.Parameters[0] != "header_type" {
		t.Fatalf("parameters = %v", m.Parameters)
	}
	if len(m.Transitions) != 8 {
		t.Fatalf("transitions = %d, want 8", len(m.Transitions))
	}
	entry, event := m.Entry()
	if entry != "get_key" || event != "packet" {
		t.Fatalf("entry = %s on %s", entry, event)
	}
	if got := m.Fetch["check_1"]; len(got) != 1 || got[0] != "bucket" {
		t.Fatalf("fetch[check_1] = %v", got)
	}
	if len(m.FetchOrder) != 4 {
		t.Fatalf("fetch order = %v", m.FetchOrder)
	}
}

func TestParseMapperSpec(t *testing.T) {
	m, err := ParseModule(mapperSpec)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.States["flow_mapper"]; len(got) != 2 || got[0] != "ip" || got[1] != "port" {
		t.Fatalf("states = %v", got)
	}
	entry, event := m.Entry()
	if entry != "flow_mapper" || event != "MATCH_SUCCESS" {
		t.Fatalf("entry = %s on %s", entry, event)
	}
}

func TestParseTransition(t *testing.T) {
	tests := []struct {
		in      string
		want    Transition
		wantErr bool
	}{
		{"a,b->c", Transition{"a", "b", "c"}, false},
		{" a , b -> c ", Transition{"a", "b", "c"}, false},
		{"a,b,c->d", Transition{"a,b", "c", "d"}, false}, // last comma splits
		{"a->b", Transition{}, true},
		{"a,b", Transition{}, true},
		{",b->c", Transition{}, true},
		{"a,->c", Transition{}, true},
		{"a,b->", Transition{}, true},
	}
	for _, tt := range tests {
		got, err := ParseTransition(tt.in)
		if (err != nil) != tt.wantErr {
			t.Fatalf("ParseTransition(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
		}
		if err == nil && got != tt.want {
			t.Fatalf("ParseTransition(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestParseModuleErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"no name", "category: x\ntransitions:\n  - Start,packet->a\n  - a,done->End"},
		{"no transitions", "name: x"},
		{"bad transition", "name: x\ntransitions:\n  - bogus"},
		{"no start", "name: x\ntransitions:\n  - a,e->End"},
		{"two starts", "name: x\ntransitions:\n  - Start,packet->a\n  - Start,packet->b"},
		{"fetch not map", "name: x\ntransitions:\n  - Start,packet->a\nfetch:\n  - item"},
		{"states not map", "name: x\ntransitions:\n  - Start,packet->a\nstates:\n  - item"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseModule(tt.src); err == nil {
				t.Fatalf("ParseModule accepted %q", tt.src)
			}
		})
	}
}

func TestParseNF(t *testing.T) {
	src := `
name: nat
chain:
  - flow_classifier
  - flow_mapper
optimize:
  - redundant_matching_removal
  - data_packing
`
	n, err := ParseNF(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "nat" || len(n.Stages) != 2 {
		t.Fatalf("NF = %+v", n)
	}
	if n.Stages[1].Module != "flow_mapper" || n.Stages[1].Index != 1 {
		t.Fatalf("stage 1 = %+v", n.Stages[1])
	}
	if len(n.Optimize) != 2 {
		t.Fatalf("optimize = %v", n.Optimize)
	}
}

func TestParseNFErrors(t *testing.T) {
	if _, err := ParseNF("chain:\n  - a"); err == nil {
		t.Fatal("NF without name accepted")
	}
	if _, err := ParseNF("name: x"); err == nil {
		t.Fatal("NF without chain accepted")
	}
	if _, err := ParseNF("name: x\nchain:\n  - a\noptimize:\n  - warp_drive"); err == nil {
		t.Fatal("unknown optimization accepted")
	}
}

func TestYAMLParser(t *testing.T) {
	root, err := Parse("a: 1\nb:\n  c: 2\n  d:\n    - x\n    - y\n")
	if err != nil {
		t.Fatal(err)
	}
	if root.ScalarOr("a", "") != "1" {
		t.Fatal("scalar a")
	}
	b, ok := root.Get("b")
	if !ok || b.Kind != KindMap {
		t.Fatal("map b")
	}
	if b.ScalarOr("c", "") != "2" {
		t.Fatal("nested scalar c")
	}
	items, err := b.StringList("d")
	if err != nil || len(items) != 2 || items[0] != "x" {
		t.Fatalf("list d = %v, %v", items, err)
	}
}

func TestYAMLParserErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"empty", "   \n# only comments\n"},
		{"root list", "- a\n- b"},
		{"tab indent", "a:\n\tb: 1"},
		{"no colon", "a: 1\nbogus line"},
		{"dup key", "a: 1\na: 2"},
		{"empty key", ": 1"},
		{"list in map", "a: 1\n- b"},
		{"bad dedent", "a:\n    b: 1\n  c: 2"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Fatalf("Parse accepted %q", tt.src)
			}
		})
	}
}

func TestYAMLNestedListOfMaps(t *testing.T) {
	src := "rules:\n  -\n    proto: tcp\n    port: 80\n  -\n    proto: udp\n    port: 53\n"
	root, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rules, ok := root.Get("rules")
	if !ok || rules.Kind != KindList || len(rules.List) != 2 {
		t.Fatalf("rules = %+v", rules)
	}
	if rules.List[0].ScalarOr("proto", "") != "tcp" || rules.List[1].ScalarOr("port", "") != "53" {
		t.Fatal("nested maps misparsed")
	}
}

func TestYAMLEmptyValue(t *testing.T) {
	root, err := Parse("a:\nb: 1")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := root.Get("a")
	if !ok || a.Kind != KindScalar || a.Scalar != "" {
		t.Fatalf("empty value node = %+v", a)
	}
	if _, err := root.StringList("a"); err != nil {
		t.Fatalf("empty scalar as list: %v", err)
	}
}

func TestStringListErrors(t *testing.T) {
	root, err := Parse("a: scalar\nb:\n  -\n    c: 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.StringList("a"); err == nil {
		t.Fatal("scalar as list accepted")
	}
	if _, err := root.StringList("b"); err == nil {
		t.Fatal("list of maps as string list accepted")
	}
	if items, err := root.StringList("zzz"); err != nil || items != nil {
		t.Fatal("missing key must yield nil, nil")
	}
}

func TestParseStripsComments(t *testing.T) {
	m, err := ParseModule(classifierSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Parameters {
		if strings.Contains(p, "#") {
			t.Fatalf("comment leaked into value %q", p)
		}
	}
}
