package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

// buildNAT returns a pre-populated NAT program and matching generator.
func buildNAT(t testing.TB, flows int) (*model.Program, *traffic.FlowGen, *mem.AddressSpace) {
	t.Helper()
	as := mem.NewAddressSpace()
	n, err := nat.New(as, nat.Config{MaxFlows: flows})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: flows, PacketBytes: 64, Order: traffic.OrderUniform, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < flows; i++ {
		if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := n.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog, g, as
}

// sumTracer cross-checks the event stream against the PMU block.
type sumTracer struct {
	stall    uint64
	pfIss    uint64
	pfUse    uint64
	pfLate   uint64
	pfDrop   uint64
	pfRedun  uint64
	switches uint64
	events   uint64
}

func (s *sumTracer) Event(ev sim.TraceEvent) {
	s.events++
	switch ev.Kind {
	case sim.TraceStall:
		s.stall += ev.A
		if ev.Cause == sim.CausePrefetchLate {
			s.pfLate++
		}
	case sim.TracePrefetchIssued:
		s.pfIss++
	case sim.TracePrefetchUseful:
		s.pfUse++
	case sim.TracePrefetchDropped:
		s.pfDrop++
	case sim.TracePrefetchRedundant:
		s.pfRedun++
	case sim.TraceTaskSwitch:
		s.switches++
	}
}

// runTraced executes a NAT workload with the given tracers attached
// from the first packet.
func runTraced(t *testing.T, packets uint64, tracers ...sim.Tracer) rt.Result {
	t.Helper()
	prog, g, as := buildNAT(t, 1024)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rt.NewWorker(core, as, prog, rt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core.SetTracer(obs.Multi(tracers...))
	res, err := w.Run(g, packets)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCollectorMatchesCounters(t *testing.T) {
	prog, _, _ := buildNAT(t, 16)
	col := obs.NewCollector(prog, sim.DefaultConfig().FreqHz)
	sums := &sumTracer{}
	res := runTraced(t, 3000, col, sums)

	if sums.events == 0 || col.Events() != sums.events {
		t.Fatalf("events: collector %d, checker %d", col.Events(), sums.events)
	}
	c := res.Counters
	if sums.stall != c.StallCycles {
		t.Fatalf("stall events sum %d, PMU %d", sums.stall, c.StallCycles)
	}
	if sums.pfIss != c.PrefetchIssued || sums.pfUse != c.PrefetchUseful ||
		sums.pfLate != c.PrefetchLate || sums.pfDrop != c.PrefetchDropped ||
		sums.pfRedun != c.PrefetchRedundant {
		t.Fatalf("prefetch events iss/use/late/drop/red = %d/%d/%d/%d/%d, PMU %d/%d/%d/%d/%d",
			sums.pfIss, sums.pfUse, sums.pfLate, sums.pfDrop, sums.pfRedun,
			c.PrefetchIssued, c.PrefetchUseful, c.PrefetchLate, c.PrefetchDropped, c.PrefetchRedundant)
	}
	if sums.switches != c.TaskSwitches {
		t.Fatalf("switch events %d, PMU %d", sums.switches, c.TaskSwitches)
	}
}

func TestCollectorLatencyAndTables(t *testing.T) {
	prog, _, _ := buildNAT(t, 16)
	col := obs.NewCollector(prog, sim.DefaultConfig().FreqHz)
	res := runTraced(t, 2000, col)

	lat := col.Latency()
	if lat.Count() != res.Packets {
		t.Fatalf("latency samples %d, packets %d", lat.Count(), res.Packets)
	}
	if lat.Quantile(0.5) == 0 || lat.Quantile(0.99) < lat.Quantile(0.5) {
		t.Fatalf("degenerate quantiles: p50=%d p99=%d", lat.Quantile(0.5), lat.Quantile(0.99))
	}

	tables := col.Tables()
	if len(tables) != 4 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tab := range tables {
		if tab.NumRows() == 0 {
			t.Fatalf("table %q empty", tab.Title)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatalf("render %q: %v", tab.Title, err)
		}
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatalf("csv %q: %v", tab.Title, err)
		}
	}

	// The per-action table must attribute at least as many executions as
	// packets (each stream runs >= 1 action) and name real NAT states.
	actions := col.ActionTable()
	execCol, err := actions.ColumnIndex("execs")
	if err != nil {
		t.Fatal(err)
	}
	var execs float64
	for r := 0; r < actions.NumRows(); r++ {
		v, err := actions.CellFloat(r, execCol)
		if err != nil {
			t.Fatal(err)
		}
		execs += v
	}
	if execs < float64(res.Packets) {
		t.Fatalf("attributed execs %.0f < packets %d", execs, res.Packets)
	}
	cell, err := actions.Cell(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cell == "" {
		t.Fatal("unnamed control state in attribution")
	}
}

func TestChromeTraceJSON(t *testing.T) {
	prog, _, _ := buildNAT(t, 16)
	tw := obs.NewTraceWriter(prog, sim.DefaultConfig().FreqHz)
	runTraced(t, 500, tw)

	if tw.Len() == 0 {
		t.Fatal("no events recorded")
	}
	var buf bytes.Buffer
	if err := tw.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	kinds := map[string]int{}
	named := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("event %d missing name/ph: %+v", i, ev)
		}
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing ts/pid/tid", i)
		}
		if *ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %d negative time: ts=%v dur=%v", i, *ev.Ts, ev.Dur)
		}
		kinds[ev.Ph]++
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if name, ok := ev.Args["name"].(string); ok {
				named[name] = true
			}
		}
	}
	if kinds["M"] == 0 || kinds["X"] == 0 || kinds["i"] == 0 {
		t.Fatalf("missing phases: %v", kinds)
	}
	// Every NFTask slot in the default config gets a named track.
	if !named["dispatch"] || !named["task 0"] {
		t.Fatalf("tracks not named: %v", named)
	}
}

func TestMulti(t *testing.T) {
	if obs.Multi() != nil || obs.Multi(nil, nil) != nil {
		t.Fatal("empty Multi must be nil")
	}
	a, b := &sumTracer{}, &sumTracer{}
	if got := obs.Multi(nil, a); got != sim.Tracer(a) {
		t.Fatal("single Multi must unwrap")
	}
	m := obs.Multi(a, b)
	m.Event(sim.TraceEvent{Kind: sim.TraceTaskSwitch})
	if a.switches != 1 || b.switches != 1 {
		t.Fatalf("fan-out failed: %d/%d", a.switches, b.switches)
	}
}
