// Package obs is GuNFu's observability layer: consumers for the
// cycle-timestamped trace events the simulated core, the model and the
// runtimes emit through sim.Tracer (see internal/sim/trace.go), plus
// the serving-side metrics plane.
//
// The package provides five tracers:
//
//   - Collector aggregates per-NFAction and per-NFState attribution
//     (stall cycles, misses, prefetch efficacy) plus a log-bucketed
//     per-packet latency histogram, and renders them as stats.Table
//     reports — the "where did the cycles go" companion to the
//     aggregate PMU counter block.
//   - TraceWriter records the raw event stream and exports it as
//     Chrome trace-event JSON, viewable in Perfetto (ui.perfetto.dev)
//     or chrome://tracing: one track per interleaved NFTask slot with
//     action executions and stalls as nested slices, plus a prefetch
//     track with in-flight fills.
//   - FlightRecorder is the always-on production variant: a fixed-size
//     overwrite-oldest ring of the newest events, allocation-free in
//     steady state, dumpable as a Perfetto trace on demand (the "black
//     box" that explains an anomaly after the fact).
//   - LatencyProbe tracks only the rx→done latency distribution, cheap
//     enough to leave attached on serving deployments so telemetry
//     heartbeats can carry latency quantiles.
//   - Multi fans one event stream out to several tracers.
//
// Registry is the serving surface: a stdlib-only OpenMetrics text
// exposition registry (metrics.go) bridging PMU-derived rates,
// latency quantiles and Go runtime gauges to HTTP scrapers.
//
// Everything here is observation-only: a tracer never calls back into
// the simulation, so attaching one is counter-neutral by construction
// (and by the golden-counters tests, which pin traced and untraced
// fingerprints to the same strings).
package obs

import "github.com/gunfu-nfv/gunfu/internal/sim"

// multi fans events out to a fixed set of tracers.
type multi []sim.Tracer

// Event implements sim.Tracer.
func (m multi) Event(ev sim.TraceEvent) {
	for _, t := range m {
		t.Event(ev)
	}
}

// Multi combines tracers into one; nils are dropped. Returns nil when
// nothing remains, so the result can be passed straight to SetTracer.
func Multi(tracers ...sim.Tracer) sim.Tracer {
	var ts multi
	for _, t := range tracers {
		if t != nil {
			ts = append(ts, t)
		}
	}
	switch len(ts) {
	case 0:
		return nil
	case 1:
		return ts[0]
	default:
		return ts
	}
}
