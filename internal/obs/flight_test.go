package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

func TestFlightRecorderRingOrder(t *testing.T) {
	f := obs.NewFlightRecorder(1) // rounds up to the 64 minimum
	if f.Cap() != 64 {
		t.Fatalf("cap = %d", f.Cap())
	}
	// Underfull: everything retained, in order.
	for i := 0; i < 10; i++ {
		f.Event(sim.TraceEvent{Cycle: uint64(i), Kind: sim.TraceTaskSwitch})
	}
	if f.Len() != 10 || f.Recorded() != 10 {
		t.Fatalf("len/recorded = %d/%d", f.Len(), f.Recorded())
	}
	snap := f.Snapshot()
	for i, ev := range snap {
		if ev.Cycle != uint64(i) {
			t.Fatalf("event %d cycle = %d", i, ev.Cycle)
		}
	}
	// Overflow: only the newest Cap events survive, oldest first.
	for i := 10; i < 200; i++ {
		f.Event(sim.TraceEvent{Cycle: uint64(i), Kind: sim.TraceTaskSwitch})
	}
	if f.Len() != 64 || f.Recorded() != 200 {
		t.Fatalf("after wrap len/recorded = %d/%d", f.Len(), f.Recorded())
	}
	snap = f.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, ev := range snap {
		if want := uint64(200 - 64 + i); ev.Cycle != want {
			t.Fatalf("wrapped event %d cycle = %d, want %d", i, ev.Cycle, want)
		}
	}
	// The census counts overwritten events too.
	if k := f.KindCounts(); k[sim.TraceTaskSwitch] != 200 {
		t.Fatalf("census = %d", k[sim.TraceTaskSwitch])
	}
	f.Reset()
	if f.Len() != 0 || len(f.Snapshot()) != 0 {
		t.Fatal("reset did not empty ring")
	}
}

func TestFlightRecorderRequestFlag(t *testing.T) {
	f := obs.NewFlightRecorder(64)
	if f.TakeRequest() {
		t.Fatal("fresh recorder has a pending request")
	}
	f.Request()
	f.Request() // idempotent
	if !f.TakeRequest() {
		t.Fatal("request lost")
	}
	if f.TakeRequest() {
		t.Fatal("request not consumed")
	}
}

func TestFlightRecorderEventZeroAlloc(t *testing.T) {
	f := obs.NewFlightRecorder(256)
	ev := sim.TraceEvent{Cycle: 1, Kind: sim.TraceStall, Cause: sim.CauseDRAM}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			f.Event(ev)
		}
	})
	if allocs != 0 {
		t.Fatalf("Event allocates %.1f/run, want 0", allocs)
	}
}

// TestFlightDumpPerfetto runs a real traced workload through a small
// ring and checks the dump is loadable Chrome trace JSON covering only
// the newest events — the black-box contract.
func TestFlightDumpPerfetto(t *testing.T) {
	prog, _, _ := buildNAT(t, 16)
	f := obs.NewFlightRecorder(512)
	runTraced(t, 2000, f)

	if f.Recorded() <= uint64(f.Cap()) {
		t.Fatalf("workload too small to wrap: %d events", f.Recorded())
	}
	var buf bytes.Buffer
	if err := f.DumpPerfetto(&buf, prog, sim.DefaultConfig().FreqHz); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	// Metadata plus a window of real events; every timestamped record
	// sits inside the simulated run.
	var slices int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Fatalf("dump has no duration slices (%d events)", len(doc.TraceEvents))
	}
	if err := f.DumpPerfetto(&buf, nil, 1e9); err == nil {
		t.Fatal("nil program accepted")
	}
}

func TestLatencyProbe(t *testing.T) {
	p := obs.NewLatencyProbe()
	// Two packets: rx at 100/200, done at 150/400 -> latencies 50, 200.
	p.Event(sim.TraceEvent{Kind: sim.TraceRx, A: 0x1000, Cycle: 100})
	p.Event(sim.TraceEvent{Kind: sim.TraceRx, A: 0x2000, Cycle: 200})
	p.Event(sim.TraceEvent{Kind: sim.TraceStreamDone, A: 0x1000, Cycle: 150})
	p.Event(sim.TraceEvent{Kind: sim.TraceStreamDone, A: 0x2000, Cycle: 400})
	// An unmatched done is ignored.
	p.Event(sim.TraceEvent{Kind: sim.TraceStreamDone, A: 0x9999, Cycle: 500})
	h := p.Histogram()
	if h.Count() != 2 || h.Min() != 50 || h.Max() != 200 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}

	// A packet in flight across TakeWindow keeps its rx cycle.
	p.Event(sim.TraceEvent{Kind: sim.TraceRx, A: 0x3000, Cycle: 1000})
	w := p.TakeWindow()
	if w.Count() != 2 {
		t.Fatalf("window count = %d", w.Count())
	}
	if p.Histogram().Count() != 0 {
		t.Fatal("TakeWindow did not reset")
	}
	p.Event(sim.TraceEvent{Kind: sim.TraceStreamDone, A: 0x3000, Cycle: 1600})
	if h := p.Histogram(); h.Count() != 1 || h.Min() != 600 {
		t.Fatalf("carried-over latency = %d (count %d)", h.Min(), h.Count())
	}
}

// TestLatencyProbeMatchesCollector pins the probe against Collector's
// latency histogram on a real run: same events, same distribution.
func TestLatencyProbeMatchesCollector(t *testing.T) {
	prog, _, _ := buildNAT(t, 64)
	col := obs.NewCollector(prog, sim.DefaultConfig().FreqHz)
	probe := obs.NewLatencyProbe()
	res := runTraced(t, 1500, col, probe)

	ph, ch := probe.Histogram(), col.Latency()
	if ph.Count() != res.Packets || ph.Count() != ch.Count() {
		t.Fatalf("probe %d, collector %d, packets %d", ph.Count(), ch.Count(), res.Packets)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if ph.Quantile(q) != ch.Quantile(q) {
			t.Fatalf("q=%v: probe %d, collector %d", q, ph.Quantile(q), ch.Quantile(q))
		}
	}
}
