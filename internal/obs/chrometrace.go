package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// Thread-id layout of the exported trace: one track for the dispatch /
// receive path, one per interleaved NFTask slot, and one per slot for
// its in-flight prefetches (fills overlap, so they get their own row).
const (
	tidDispatch = 0
	tidTaskBase = 1
	tidPfBase   = 1000
)

// TraceWriter is a sim.Tracer that records the raw event stream and
// exports it as Chrome trace-event JSON (the format Perfetto and
// chrome://tracing load). Action executions become "X" complete slices
// on the owning task's track, stalls nest inside them, prefetch fills
// ride a per-task prefetch track, and rx/done/switch markers are "i"
// instants. Timestamps are cycles converted to microseconds at freqHz.
type TraceWriter struct {
	prog   *model.Program
	freq   float64
	events []sim.TraceEvent
}

// NewTraceWriter builds a trace recorder for programs compiled like
// prog on a core clocked at freqHz.
func NewTraceWriter(prog *model.Program, freqHz float64) *TraceWriter {
	return &TraceWriter{prog: prog, freq: freqHz}
}

// Event implements sim.Tracer.
func (tw *TraceWriter) Event(ev sim.TraceEvent) {
	tw.events = append(tw.events, ev)
}

// Len returns the number of recorded events.
func (tw *TraceWriter) Len() int { return len(tw.events) }

// chromeEvent is one entry of the trace-event JSON "traceEvents" array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func (tw *TraceWriter) us(cycles uint64) float64 {
	return float64(cycles) / tw.freq * 1e6
}

// taskTid maps an event's task stamp to its track.
func taskTid(task int32) int {
	if task < 0 {
		return tidDispatch
	}
	return tidTaskBase + int(task)
}

// csName resolves a CS stamp to its "module.state" name.
func (tw *TraceWriter) csName(cs int32) string {
	if info, err := tw.prog.CS(model.CSID(cs)); err == nil {
		return info.Name
	}
	return fmt.Sprintf("cs-%d", cs)
}

// convert lowers one trace event to its chrome representation; ok is
// false for events with no visual form.
func (tw *TraceWriter) convert(ev sim.TraceEvent) (chromeEvent, bool) {
	switch ev.Kind {
	case sim.TraceActionEnd:
		// Begin cycle is Cycle-B; emitting on End keeps this one-pass.
		return chromeEvent{
			Name: tw.csName(ev.CS), Ph: "X",
			Ts: tw.us(ev.Cycle - ev.B), Dur: tw.us(ev.B),
			Tid: taskTid(ev.Task), Cat: "action",
			Args: map[string]any{"action": ev.A, "cycles": ev.B},
		}, true
	case sim.TraceStall:
		return chromeEvent{
			Name: "stall:" + ev.Cause.String(), Ph: "X",
			Ts: tw.us(ev.Cycle - ev.A), Dur: tw.us(ev.A),
			Tid: taskTid(ev.Task), Cat: "stall",
			Args: map[string]any{"cycles": ev.A, "addr": fmt.Sprintf("%#x", ev.B)},
		}, true
	case sim.TracePrefetchIssued:
		dur := float64(0)
		if ev.B > ev.Cycle {
			dur = tw.us(ev.B - ev.Cycle)
		}
		tid := tidPfBase
		if ev.Task >= 0 {
			tid += int(ev.Task)
		}
		return chromeEvent{
			Name: "fill " + tw.csName(ev.CS), Ph: "X",
			Ts: tw.us(ev.Cycle), Dur: dur, Tid: tid, Cat: "prefetch",
			Args: map[string]any{"line": fmt.Sprintf("%#x", ev.A)},
		}, true
	case sim.TraceRx:
		return chromeEvent{
			Name: "rx", Ph: "i", Ts: tw.us(ev.Cycle),
			Tid: taskTid(ev.Task), Cat: "packet", S: "t",
			Args: map[string]any{"addr": fmt.Sprintf("%#x", ev.A), "bits": ev.B},
		}, true
	case sim.TraceStreamDone:
		return chromeEvent{
			Name: "done", Ph: "i", Ts: tw.us(ev.Cycle),
			Tid: taskTid(ev.Task), Cat: "packet", S: "t",
			Args: map[string]any{"addr": fmt.Sprintf("%#x", ev.A)},
		}, true
	case sim.TraceTaskSwitch:
		return chromeEvent{
			Name: "switch", Ph: "i", Ts: tw.us(ev.Cycle),
			Tid: taskTid(ev.Task), Cat: "sched", S: "t",
		}, true
	case sim.TraceTransition:
		return chromeEvent{
			Name: "→" + tw.csName(int32(ev.B)), Ph: "i", Ts: tw.us(ev.Cycle),
			Tid: taskTid(ev.Task), Cat: "fsm", S: "t",
			Args: map[string]any{"event": ev.A},
		}, true
	case sim.TracePrefetchDropped, sim.TracePrefetchRedundant:
		return chromeEvent{
			Name: ev.Kind.String(), Ph: "i", Ts: tw.us(ev.Cycle),
			Tid: taskTid(ev.Task), Cat: "prefetch", S: "t",
			Args: map[string]any{"line": fmt.Sprintf("%#x", ev.A)},
		}, true
	}
	return chromeEvent{}, false
}

// threadName labels a tid for the metadata record.
func threadName(tid int) string {
	switch {
	case tid == tidDispatch:
		return "dispatch"
	case tid >= tidPfBase:
		return fmt.Sprintf("task %d prefetch", tid-tidPfBase)
	default:
		return fmt.Sprintf("task %d", tid-tidTaskBase)
	}
}

// WriteJSON exports the recorded events as a Chrome trace-event JSON
// object: {"displayTimeUnit":"ns","traceEvents":[...]}. The output
// loads directly in ui.perfetto.dev or chrome://tracing.
func (tw *TraceWriter) WriteJSON(w io.Writer) error {
	if tw.freq <= 0 {
		return fmt.Errorf("obs: trace writer needs a positive clock, got %v", tw.freq)
	}
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	tids := map[int]bool{}
	first := true
	emit := func(ce chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	// Metadata first: name every track that appears anywhere.
	for _, ev := range tw.events {
		tids[taskTid(ev.Task)] = true
		if ev.Kind == sim.TracePrefetchIssued && ev.Task >= 0 {
			tids[tidPfBase+int(ev.Task)] = true
		}
	}
	sorted := make([]int, 0, len(tids))
	for tid := range tids {
		sorted = append(sorted, tid)
	}
	sort.Ints(sorted)
	for _, tid := range sorted {
		err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Tid: tid,
			Args: map[string]any{"name": threadName(tid)},
		})
		if err != nil {
			return err
		}
	}
	for _, ev := range tw.events {
		ce, ok := tw.convert(ev)
		if !ok {
			continue
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
