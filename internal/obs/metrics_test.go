package obs_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.Expose(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRegistryExposition(t *testing.T) {
	reg := obs.NewRegistry()
	pkts := reg.Counter("gunfu_packets", "Packets processed.")
	pkts.Add(1000)
	pkts.Add(500)
	ipc := reg.Gauge("gunfu_ipc", "Last-window IPC.")
	ipc.Set(1.75)
	pmu := reg.CounterFamily("gunfu_pmu", "Raw PMU counters.")
	pmu.With("counter", "l1_misses").Set(42)
	pmu.With("counter", "llc_misses").Set(7)
	var h stats.Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Add(v)
	}
	reg.Summary("gunfu_latency_cycles", "rx to done latency.", func() *stats.Histogram { return &h })
	reg.GaugeFunc("gunfu_up", "Liveness.", func() float64 { return 1 })

	out := scrape(t, reg)
	for _, want := range []string{
		"# HELP gunfu_packets Packets processed.\n",
		"# TYPE gunfu_packets counter\n",
		"gunfu_packets_total 1500\n",
		"# TYPE gunfu_ipc gauge\n",
		"gunfu_ipc 1.75\n",
		`gunfu_pmu_total{counter="l1_misses"} 42` + "\n",
		`gunfu_pmu_total{counter="llc_misses"} 7` + "\n",
		"# TYPE gunfu_latency_cycles summary\n",
		`gunfu_latency_cycles{quantile="0.5"} `,
		`gunfu_latency_cycles{quantile="0.999"} `,
		"gunfu_latency_cycles_sum 500500\n",
		"gunfu_latency_cycles_count 1000\n",
		"gunfu_up 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition must end with # EOF:\n%s", out)
	}
	// Families render once: one TYPE line per family.
	if strings.Count(out, "# TYPE gunfu_pmu ") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
	// Counter sample names carry _total, the family name does not.
	if strings.Contains(out, "# TYPE gunfu_packets_total") {
		t.Fatalf("family name must not carry the _total suffix:\n%s", out)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	f := reg.GaugeFamily("weird", "with \"quotes\" and\nnewline")
	f.With("k", `a"b\c`+"\nd").Set(3)
	out := scrape(t, reg)
	if !strings.Contains(out, `# HELP weird with "quotes" and\nnewline`+"\n") {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird{k="a\"b\\c\nd"} 3`+"\n") {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestRegistryServeHTTPAndSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("hits", "Hits.").Add(3)
	reg.GaugeFamily("temp", "Temp.").With("zone", "a").Set(20.5)

	srv := httptest.NewServer(reg)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "hits_total 3") {
		t.Fatalf("http body:\n%s", raw)
	}

	snap := reg.Snapshot()
	if snap["hits_total"] != 3 {
		t.Fatalf("snapshot hits = %v", snap["hits_total"])
	}
	if snap[`temp{zone="a"}`] != 20.5 {
		t.Fatalf("snapshot temp = %v (have %v)", snap[`temp{zone="a"}`], snap)
	}
}

func TestRegistryGoRuntime(t *testing.T) {
	reg := obs.NewRegistry()
	reg.AddGoRuntime()
	out := scrape(t, reg)
	if !strings.Contains(out, "# TYPE go_goroutines gauge\n") {
		t.Fatalf("missing go_goroutines:\n%s", out)
	}
	// A live process has at least one goroutine and a nonzero heap.
	snap := reg.Snapshot()
	if snap["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v", snap["go_goroutines"])
	}
	if snap["go_memory_total_bytes"] <= 0 {
		t.Fatalf("go_memory_total_bytes = %v", snap["go_memory_total_bytes"])
	}
}

func TestRegistryResetSeries(t *testing.T) {
	reg := obs.NewRegistry()
	info := reg.GaugeFamily("deployment_info", "Current deployment.")
	info.With("nf", "nat").Set(1)
	if !strings.Contains(scrape(t, reg), `deployment_info{nf="nat"} 1`) {
		t.Fatal("series missing before reset")
	}
	info.ResetSeries()
	info.With("nf", "sfc").Set(1)
	out := scrape(t, reg)
	if strings.Contains(out, `nf="nat"`) || !strings.Contains(out, `deployment_info{nf="sfc"} 1`) {
		t.Fatalf("reset did not swap series:\n%s", out)
	}
}

func TestRegistryReRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("c", "help")
	b := reg.Counter("c", "help")
	if a != b {
		t.Fatal("re-registration must return the same series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict must panic")
		}
	}()
	reg.Gauge("c", "help")
}

// TestRegistryConcurrent hammers updates and scrapes together; run
// under -race this pins the locking contract.
func TestRegistryConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("n", "")
	fam := reg.GaugeFamily("g", "")
	var h stats.Histogram
	var hmu sync.Mutex
	reg.Summary("s", "", func() *stats.Histogram {
		hmu.Lock()
		defer hmu.Unlock()
		return h.Clone()
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ctr.Inc()
				fam.With("w", string(rune('a'+w))).Set(float64(i))
				hmu.Lock()
				h.Add(uint64(i))
				hmu.Unlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			var sb strings.Builder
			_ = reg.Expose(&sb)
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	if got := ctr.Value(); got != 2000 {
		t.Fatalf("counter = %v", got)
	}
}
