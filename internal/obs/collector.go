package obs

import (
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// csStats accumulates attribution for one control state (and therefore
// one NFAction binding: a CS executes exactly one action).
type csStats struct {
	execs     uint64
	cycles    uint64
	stall     uint64
	l1Miss    uint64
	llcMiss   uint64
	accesses  uint64
	pfIssued  uint64
	pfUseful  uint64
	pfLate    uint64
	pfDropped uint64
}

// stateStats accumulates attribution for one NFState span base kind.
type stateStats struct {
	accesses uint64
	stall    uint64
	l1Miss   uint64
	llcMiss  uint64
}

// Collector is a sim.Tracer that aggregates the event stream into
// per-NFAction and per-NFState attribution plus a per-packet latency
// histogram (rx cycle to stream-done cycle). It is built entirely from
// events — it never queries the core — and renders stats.Table reports.
type Collector struct {
	prog   *model.Program
	freq   float64
	perCS  []csStats
	states [8]stateStats // indexed by model.BaseKind (1..6)
	causes [8]uint64     // stall cycles by sim.StallCause

	lat     stats.Histogram
	rxCycle map[uint64]uint64 // packet buffer addr -> rx cycle

	events   uint64
	rx       uint64
	done     uint64
	switches uint64
}

// NewCollector builds a collector for programs compiled like prog
// (the CS table supplies action names) on a core clocked at freqHz.
func NewCollector(prog *model.Program, freqHz float64) *Collector {
	return &Collector{
		prog:    prog,
		freq:    freqHz,
		perCS:   make([]csStats, prog.NumCS()),
		rxCycle: make(map[uint64]uint64, 64),
	}
}

// Events returns the number of trace events consumed.
func (c *Collector) Events() uint64 { return c.events }

// Latency returns the per-packet rx→done latency histogram in cycles.
func (c *Collector) Latency() *stats.Histogram { return &c.lat }

// cs returns the per-CS accumulator for ev, or nil when the event is
// not attributed to a control state.
func (c *Collector) cs(ev sim.TraceEvent) *csStats {
	if ev.CS < 0 || int(ev.CS) >= len(c.perCS) {
		return nil
	}
	return &c.perCS[ev.CS]
}

// Event implements sim.Tracer.
func (c *Collector) Event(ev sim.TraceEvent) {
	c.events++
	switch ev.Kind {
	case sim.TraceActionBegin:
		if s := c.cs(ev); s != nil {
			s.execs++
		}
	case sim.TraceActionEnd:
		if s := c.cs(ev); s != nil {
			s.cycles += ev.B
		}
	case sim.TraceAccess:
		l1, llc := ev.C>>32, ev.C&0xffffffff
		if s := c.cs(ev); s != nil {
			s.accesses++
			s.l1Miss += l1
			s.llcMiss += llc
		}
		if base := ev.A; base < uint64(len(c.states)) {
			st := &c.states[base]
			st.accesses++
			st.stall += ev.B
			st.l1Miss += l1
			st.llcMiss += llc
		}
	case sim.TraceStall:
		c.causes[ev.Cause] += ev.A
		if s := c.cs(ev); s != nil {
			s.stall += ev.A
			if ev.Cause == sim.CausePrefetchLate {
				s.pfLate++
			}
		}
	case sim.TracePrefetchIssued:
		if s := c.cs(ev); s != nil {
			s.pfIssued++
		}
	case sim.TracePrefetchUseful:
		if s := c.cs(ev); s != nil {
			s.pfUseful++
		}
	case sim.TracePrefetchDropped:
		if s := c.cs(ev); s != nil {
			s.pfDropped++
		}
	case sim.TraceTaskSwitch:
		c.switches++
	case sim.TraceRx:
		c.rx++
		c.rxCycle[ev.A] = ev.Cycle
	case sim.TraceStreamDone:
		c.done++
		if rx, ok := c.rxCycle[ev.A]; ok {
			c.lat.Add(ev.Cycle - rx)
			delete(c.rxCycle, ev.A)
		}
	}
}

// usec converts cycles to microseconds at the collector's clock.
func (c *Collector) usec(cycles uint64) float64 {
	if c.freq == 0 {
		return 0
	}
	return float64(cycles) / c.freq * 1e6
}

// ActionTable renders per-NFAction attribution: executions, cycles,
// stall share, misses, and prefetch efficacy per control state, in CS
// order (deterministic).
func (c *Collector) ActionTable() *stats.Table {
	t := stats.NewTable(
		"Attribution — per NFAction (by control state)",
		"cs", "action", "execs", "cycles", "cyc/exec", "stall", "stall%",
		"l1miss", "llcmiss", "pf.iss", "pf.use", "pf.late", "pf.drop")
	for id := 1; id < len(c.perCS); id++ {
		s := &c.perCS[id]
		if s.execs == 0 && s.pfIssued == 0 {
			continue
		}
		name, action := "cs-"+stats.I(id), ""
		if info, err := c.prog.CS(model.CSID(id)); err == nil {
			name = info.Name
			if act, err := c.prog.Action(info.Action); err == nil {
				action = act.Name
			}
		}
		perExec := float64(0)
		stallPct := float64(0)
		if s.execs > 0 {
			perExec = float64(s.cycles) / float64(s.execs)
		}
		if s.cycles > 0 {
			stallPct = float64(s.stall) / float64(s.cycles)
		}
		t.AddRow(name, action, stats.U(s.execs), stats.U(s.cycles),
			stats.F(perExec, 1), stats.U(s.stall), stats.Pct(stallPct),
			stats.U(s.l1Miss), stats.U(s.llcMiss), stats.U(s.pfIssued),
			stats.U(s.pfUseful), stats.U(s.pfLate), stats.U(s.pfDropped))
	}
	return t
}

// StateTable renders per-NFState attribution keyed by span base kind:
// which class of state (per-flow, sub-flow, packet, control, temp,
// match-structure) the stall cycles and misses came from.
func (c *Collector) StateTable() *stats.Table {
	t := stats.NewTable(
		"Attribution — per NFState (by span base)",
		"state", "accesses", "stall", "stall/access", "l1miss", "llcmiss")
	for base := 1; base < len(c.states); base++ {
		s := &c.states[base]
		if s.accesses == 0 {
			continue
		}
		t.AddRow(model.BaseKind(base).String(), stats.U(s.accesses),
			stats.U(s.stall), stats.F(float64(s.stall)/float64(s.accesses), 2),
			stats.U(s.l1Miss), stats.U(s.llcMiss))
	}
	return t
}

// LatencyTable renders the per-packet latency distribution with the
// tail quantiles (p50/p95/p99/p99.9) in cycles and microseconds.
func (c *Collector) LatencyTable() *stats.Table {
	t := stats.NewTable(
		"Per-packet latency (rx → stream done), "+stats.U(c.lat.Count())+" packets",
		"metric", "cycles", "usec")
	row := func(name string, v uint64) {
		t.AddRow(name, stats.U(v), stats.F(c.usec(v), 3))
	}
	row("min", c.lat.Min())
	t.AddRow("mean", stats.F(c.lat.Mean(), 1), stats.F(c.lat.Mean()/c.freq*1e6, 3))
	row("p50", c.lat.Quantile(0.50))
	row("p95", c.lat.Quantile(0.95))
	row("p99", c.lat.Quantile(0.99))
	row("p99.9", c.lat.Quantile(0.999))
	row("max", c.lat.Max())
	return t
}

// StallTable renders total stall cycles by cause.
func (c *Collector) StallTable() *stats.Table {
	t := stats.NewTable("Stall cycles by cause", "cause", "cycles", "share")
	var total uint64
	for _, v := range c.causes {
		total += v
	}
	for cause := 1; cause < len(c.causes); cause++ {
		v := c.causes[cause]
		if v == 0 {
			continue
		}
		share := float64(0)
		if total > 0 {
			share = float64(v) / float64(total)
		}
		t.AddRow(sim.StallCause(cause).String(), stats.U(v), stats.Pct(share))
	}
	return t
}

// Tables renders every attribution report.
func (c *Collector) Tables() []*stats.Table {
	return []*stats.Table{c.ActionTable(), c.StateTable(), c.StallTable(), c.LatencyTable()}
}
