package obs

import (
	"fmt"
	"io"
	"sync/atomic"

	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// FlightRecorder is the always-on "black box": a fixed-size,
// overwrite-oldest ring of cycle-stamped TraceEvents. Unlike
// TraceWriter — which records everything and is a profiling tool — the
// flight recorder is sized for continuous production use: memory is
// bounded at construction, Event is a masked store with no allocation
// and no synchronization, and when something goes wrong the last
// ringSize events (the cycles around the anomaly) are still in the
// buffer, ready to dump as a Perfetto trace without re-running with
// tracing enabled.
//
// Concurrency contract: Event, Snapshot and DumpPerfetto run on the
// simulation goroutine (or while it is quiescent — the agent dumps at
// window boundaries). Request/TakeRequest are the one cross-goroutine
// surface: any goroutine may flag a dump, the owner honors it at the
// next safe point.
type FlightRecorder struct {
	buf  []sim.TraceEvent
	mask uint64
	n    uint64 // events ever recorded; buf[n&mask] is the next slot
	// kinds is a census of everything ever recorded, including
	// overwritten events — the scrape-able summary of ring activity.
	kinds [sim.TraceKindCount]uint64
	req   atomic.Bool
}

// NewFlightRecorder builds a recorder holding the last size events;
// size is rounded up to a power of two (minimum 64) so the hot-path
// index is a mask, not a modulo.
func NewFlightRecorder(size int) *FlightRecorder {
	n := 64
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{buf: make([]sim.TraceEvent, n), mask: uint64(n - 1)}
}

// Event implements sim.Tracer: store, advance, count. No branches that
// grow state — steady-state cost is flat and allocation-free.
func (f *FlightRecorder) Event(ev sim.TraceEvent) {
	f.buf[f.n&f.mask] = ev
	f.n++
	f.kinds[ev.Kind]++
}

// Cap returns the ring capacity in events.
func (f *FlightRecorder) Cap() int { return len(f.buf) }

// Len returns the number of events currently held (capacity once the
// ring has wrapped).
func (f *FlightRecorder) Len() int {
	if f.n < uint64(len(f.buf)) {
		return int(f.n)
	}
	return len(f.buf)
}

// Recorded returns the total number of events ever recorded, including
// overwritten ones.
func (f *FlightRecorder) Recorded() uint64 { return f.n }

// KindCounts returns the per-TraceKind census of every event ever
// recorded (indexed by sim.TraceKind).
func (f *FlightRecorder) KindCounts() [sim.TraceKindCount]uint64 { return f.kinds }

// Snapshot copies the held events out in oldest-to-newest order.
func (f *FlightRecorder) Snapshot() []sim.TraceEvent {
	held := f.Len()
	out := make([]sim.TraceEvent, held)
	if held == 0 {
		return out
	}
	start := f.n - uint64(held)
	for i := 0; i < held; i++ {
		out[i] = f.buf[(start+uint64(i))&f.mask]
	}
	return out
}

// Reset empties the ring (the census is kept: it describes the
// recorder's lifetime, not the current window).
func (f *FlightRecorder) Reset() { f.n = 0 }

// Request flags the recorder for a dump. Safe from any goroutine; the
// ring owner picks it up via TakeRequest at its next safe point. This
// is how an SLO watcher on the other end of a telemetry stream asks
// "show me the cycles that caused that".
func (f *FlightRecorder) Request() { f.req.Store(true) }

// TakeRequest consumes a pending dump request, reporting whether one
// was set.
func (f *FlightRecorder) TakeRequest() bool { return f.req.CompareAndSwap(true, false) }

// DumpPerfetto exports the held events as Chrome trace-event JSON
// (Perfetto-loadable), resolving control-state names through prog at
// clock freqHz. It reuses TraceWriter's conversion, so a flight dump
// and a full trace render identically.
func (f *FlightRecorder) DumpPerfetto(w io.Writer, prog *model.Program, freqHz float64) error {
	if prog == nil {
		return fmt.Errorf("obs: flight dump needs a program for CS names")
	}
	tw := NewTraceWriter(prog, freqHz)
	tw.events = f.Snapshot()
	return tw.WriteJSON(w)
}
