package obs

// This file is the serving half of the observability layer: a
// stdlib-only OpenMetrics/Prometheus text-exposition registry. The
// tracing side (Collector, TraceWriter, FlightRecorder) answers "what
// happened inside one run"; the registry answers "what is this process
// doing right now" to anything that can speak HTTP — Prometheus, a
// curl, the worker's expvar view.
//
// Design constraints, in order:
//
//   - No dependencies. The exposition format is a few lines of framing
//     around name/labels/value triples; a client library would be 100x
//     the code it replaces.
//   - Updates are heartbeat-rate (per StatsEvery window), scrapes are
//     human/Prometheus-rate. One registry-wide mutex is plenty; nothing
//     here is on the simulation hot path.
//   - Quantiles come from stats.Histogram via a scrape-time callback,
//     so the histogram owner controls synchronization and the registry
//     never holds stale quantile snapshots.

import (
	"fmt"
	"io"
	"net/http"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"

	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// MetricType is the OpenMetrics family type.
type MetricType uint8

// The supported family types.
const (
	// TypeGauge is a value that can go up and down.
	TypeGauge MetricType = iota
	// TypeCounter is a monotonically increasing value; its samples are
	// exposed with the OpenMetrics "_total" suffix.
	TypeCounter
	// TypeSummary is a quantile summary backed by a stats.Histogram.
	TypeSummary
)

// suffix returns the sample-name suffix the type mandates.
func (t MetricType) suffix() string {
	if t == TypeCounter {
		return "_total"
	}
	return ""
}

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeSummary:
		return "summary"
	default:
		return "gauge"
	}
}

// Registry is a set of metric families rendered as OpenMetrics text
// exposition. It is an http.Handler (mount it at /metrics) and is safe
// for concurrent use. The zero Registry is not ready; use NewRegistry.
type Registry struct {
	mu     sync.Mutex
	fams   []*Family
	byName map[string]*Family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

// Family is one named metric family holding zero or more label-set
// series. Families render in registration order; series within a
// family render in first-use order.
type Family struct {
	reg  *Registry
	name string
	help string
	typ  MetricType

	order  []string
	series map[string]*Metric

	// collect, when set, refreshes the family under the registry lock
	// immediately before each scrape (runtime gauges, summaries).
	collect func(f *Family)
}

// Metric is one series of a family: a label set and a value. Mutate it
// through Set/Add/Inc; reads happen at scrape time.
type Metric struct {
	fam    *Family
	labels string // pre-rendered `{k="v",...}` or ""
	val    float64
}

// family registers or fetches a family, enforcing one type per name.
func (r *Registry) family(name, help string, typ MetricType) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, typ, f.typ))
		}
		return f
	}
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f := &Family{reg: r, name: name, help: help, typ: typ, series: make(map[string]*Metric)}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers (or fetches) a counter family and returns its
// unlabeled series.
func (r *Registry) Counter(name, help string) *Metric {
	return r.family(name, help, TypeCounter).With()
}

// Gauge registers (or fetches) a gauge family and returns its
// unlabeled series.
func (r *Registry) Gauge(name, help string) *Metric {
	return r.family(name, help, TypeGauge).With()
}

// CounterFamily registers (or fetches) a counter family for labeled
// series; call With on the result per label set.
func (r *Registry) CounterFamily(name, help string) *Family {
	return r.family(name, help, TypeCounter)
}

// GaugeFamily registers (or fetches) a gauge family for labeled series.
func (r *Registry) GaugeFamily(name, help string) *Family {
	return r.family(name, help, TypeGauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn runs under the registry lock and must not call back into the
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, TypeGauge)
	r.mu.Lock()
	f.collect = func(f *Family) { f.with().val = fn() }
	r.mu.Unlock()
}

// Summary registers a quantile summary over the histogram src returns.
// src runs at scrape time (under the registry lock; it must not call
// back into the registry) and should return a consistent snapshot —
// hand out a Clone if the histogram is concurrently mutated. qs
// defaults to p50/p95/p99/p99.9.
func (r *Registry) Summary(name, help string, src func() *stats.Histogram, qs ...float64) {
	if len(qs) == 0 {
		qs = []float64{0.5, 0.95, 0.99, 0.999}
	}
	f := r.family(name, help, TypeSummary)
	r.mu.Lock()
	f.collect = func(f *Family) {
		h := src()
		if h == nil {
			return
		}
		for _, q := range qs {
			f.with("quantile", strconv.FormatFloat(q, 'g', -1, 64)).val = float64(h.Quantile(q))
		}
		f.with("#sum").val = float64(h.Sum())
		f.with("#count").val = float64(h.Count())
	}
	r.mu.Unlock()
}

// With returns the series for the given label pairs (k1, v1, k2, v2,
// ...), creating it on first use. An odd pair count panics.
func (f *Family) With(labels ...string) *Metric {
	f.reg.mu.Lock()
	defer f.reg.mu.Unlock()
	return f.with(labels...)
}

// with is With without the lock, for collect callbacks. Label keys
// beginning with '#' are rendering directives (summary _sum/_count
// pseudo-series), not labels.
func (f *Family) with(labels ...string) *Metric {
	if len(labels)%2 != 0 && !(len(labels) == 1 && strings.HasPrefix(labels[0], "#")) {
		panic(fmt.Sprintf("obs: metric %q: odd label pairs %v", f.name, labels))
	}
	key := renderLabels(labels)
	if m, ok := f.series[key]; ok {
		return m
	}
	m := &Metric{fam: f, labels: key}
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// ResetSeries drops every series of the family (label churn on
// deployment change: old label sets stop being exported rather than
// freezing at their last value).
func (f *Family) ResetSeries() {
	f.reg.mu.Lock()
	defer f.reg.mu.Unlock()
	f.order = f.order[:0]
	for k := range f.series {
		delete(f.series, k)
	}
}

// Set sets the series value.
func (m *Metric) Set(v float64) {
	m.fam.reg.mu.Lock()
	m.val = v
	m.fam.reg.mu.Unlock()
}

// Add increments the series value by v.
func (m *Metric) Add(v float64) {
	m.fam.reg.mu.Lock()
	m.val += v
	m.fam.reg.mu.Unlock()
}

// Inc increments the series value by one.
func (m *Metric) Inc() { m.Add(1) }

// Value returns the current series value.
func (m *Metric) Value() float64 {
	m.fam.reg.mu.Lock()
	defer m.fam.reg.mu.Unlock()
	return m.val
}

// renderLabels pre-renders a label pair list to `{k="v",...}` with
// OpenMetrics escaping; "" for no labels, and rendering directives
// ("#sum", "#count") pass through verbatim.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels) == 1 && strings.HasPrefix(labels[0], "#") {
		return labels[0]
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(labels[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the exposition-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// formatValue renders a sample value: integral values without an
// exponent (counters read naturally), everything else via %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Expose renders the registry as OpenMetrics text exposition,
// terminated by "# EOF". Scrape-time collect hooks run first.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sb strings.Builder
	for _, f := range r.fams {
		if f.collect != nil {
			f.collect(f)
		}
		if len(f.order) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range f.order {
			m := f.series[key]
			switch {
			case key == "#sum":
				fmt.Fprintf(&sb, "%s_sum %s\n", f.name, formatValue(m.val))
			case key == "#count":
				fmt.Fprintf(&sb, "%s_count %s\n", f.name, formatValue(m.val))
			default:
				fmt.Fprintf(&sb, "%s%s%s %s\n", f.name, f.typ.suffix(), key, formatValue(m.val))
			}
		}
	}
	sb.WriteString("# EOF\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// ServeHTTP implements http.Handler with the OpenMetrics content type.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	_ = r.Expose(w)
}

// Snapshot returns every sample as a flat name→value map (sample names
// include the counter "_total" suffix and rendered labels). This is
// the read-only view the worker republishes through expvar.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range r.fams {
		if f.collect != nil {
			f.collect(f)
		}
		for _, key := range f.order {
			m := f.series[key]
			switch {
			case key == "#sum":
				out[f.name+"_sum"] = m.val
			case key == "#count":
				out[f.name+"_count"] = m.val
			default:
				out[f.name+f.typ.suffix()+key] = m.val
			}
		}
	}
	return out
}

// goRuntimeMetrics maps the curated runtime/metrics samples the
// registry exports to their exposition names. Kept small on purpose:
// the scrape should answer "is the Go runtime the bottleneck", not
// mirror the whole runtime/metrics catalogue.
var goRuntimeMetrics = []struct {
	src  string
	name string
	help string
	typ  MetricType
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Number of live goroutines.", TypeGauge},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of live heap objects.", TypeGauge},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "All memory mapped by the Go runtime.", TypeGauge},
	{"/gc/heap/allocs:bytes", "go_heap_allocs_bytes", "Cumulative bytes allocated on the heap.", TypeCounter},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles", "Completed GC cycles.", TypeCounter},
}

// AddGoRuntime registers the curated Go runtime gauges, sampled from
// runtime/metrics at scrape time.
func (r *Registry) AddGoRuntime() {
	// Resolve which of the curated metrics this runtime actually
	// provides (and with a scalar kind we can export).
	all := metrics.All()
	known := make(map[string]metrics.ValueKind, len(all))
	for _, d := range all {
		known[d.Name] = d.Kind
	}
	samples := make([]metrics.Sample, 0, len(goRuntimeMetrics))
	type slot struct{ fam *Family }
	slots := make([]slot, 0, len(goRuntimeMetrics))
	for _, gm := range goRuntimeMetrics {
		kind, ok := known[gm.src]
		if !ok || (kind != metrics.KindUint64 && kind != metrics.KindFloat64) {
			continue
		}
		samples = append(samples, metrics.Sample{Name: gm.src})
		slots = append(slots, slot{fam: r.family(gm.name, gm.help, gm.typ)})
	}
	if len(samples) == 0 {
		return
	}
	// One collect hook refreshes every runtime gauge with a single
	// metrics.Read; hang it off the first family (collect hooks run
	// per-family in registration order, so one owner suffices).
	r.mu.Lock()
	slots[0].fam.collect = func(*Family) {
		metrics.Read(samples)
		for i, s := range samples {
			var v float64
			switch s.Value.Kind() {
			case metrics.KindUint64:
				v = float64(s.Value.Uint64())
			case metrics.KindFloat64:
				v = s.Value.Float64()
			}
			slots[i].fam.with().val = v
		}
	}
	r.mu.Unlock()
}

// Families returns the registered family names in registration order
// (for tests and diagnostics).
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.fams))
	for i, f := range r.fams {
		names[i] = f.name
	}
	return names
}
