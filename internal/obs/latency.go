package obs

import (
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/stats"
)

// LatencyProbe is the lightest useful tracer: it matches TraceRx to
// TraceStreamDone by packet buffer address and folds the rx→done cycle
// spans into a histogram. Where Collector needs the compiled program
// and aggregates full attribution, the probe needs nothing and tracks
// one distribution — cheap enough for an agent to leave attached on
// every serving deployment so heartbeats can carry latency quantiles.
//
// Not safe for concurrent use; it lives on the simulation goroutine.
// TakeWindow is called between windows by the same owner.
type LatencyProbe struct {
	rx   map[uint64]uint64 // packet buffer addr -> rx cycle
	hist stats.Histogram
}

// NewLatencyProbe builds an empty probe.
func NewLatencyProbe() *LatencyProbe {
	return &LatencyProbe{rx: make(map[uint64]uint64, 64)}
}

// Event implements sim.Tracer.
func (p *LatencyProbe) Event(ev sim.TraceEvent) {
	switch ev.Kind {
	case sim.TraceRx:
		p.rx[ev.A] = ev.Cycle
	case sim.TraceStreamDone:
		if rx, ok := p.rx[ev.A]; ok {
			p.hist.Add(ev.Cycle - rx)
			delete(p.rx, ev.A)
		}
	}
}

// Histogram returns the accumulated rx→done latency histogram (cycles)
// since the last TakeWindow.
func (p *LatencyProbe) Histogram() *stats.Histogram { return &p.hist }

// TakeWindow returns the window's latency histogram and resets the
// accumulator (in-flight packets carry over: their rx cycles stay
// registered, so a stream completing next window still measures its
// full span).
func (p *LatencyProbe) TakeWindow() *stats.Histogram {
	h := p.hist.Clone()
	p.hist.Reset()
	return h
}
