// Package traffic generates the workloads of the paper's evaluation:
// uniform and Zipf flow mixes for NAT/LB/FW/NM and the SFC experiments,
// the Telco-benchmark MGW use case (N PFCP sessions × M PDRs of
// downlink traffic) for the UPF, UE initial-registration call flows for
// the AMF, and a CAIDA-like heavy-tailed trace with an IMIX size mix.
//
// All generators are deterministic for a given seed, build real frame
// bytes (Ethernet/IPv4/UDP) that the NFs parse and rewrite, and recycle
// a fixed pool of packet structs so generation does not distort the Go
// heap while the simulator measures the data plane.
package traffic

import (
	"fmt"
	"math/rand"

	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// bufBytes is the per-packet byte buffer: headers only, since payload
// content is never inspected. WireLen carries the true packet size.
const bufBytes = 128

// poolSize is the number of recycled packet structs. It must exceed the
// largest batch × interleaving depth a worker keeps alive at once.
const poolSize = 4096

// pool is the reusable packet backing store shared by the generators.
type pool struct {
	pkts []pkt.Packet
	bufs []byte
	next int
}

func newPool() *pool {
	p := &pool{
		pkts: make([]pkt.Packet, poolSize),
		bufs: make([]byte, poolSize*bufBytes),
	}
	for i := range p.pkts {
		p.pkts[i].Data = p.bufs[i*bufBytes : (i+1)*bufBytes]
	}
	return p
}

// take returns the next recycled packet with a clean parse state.
func (p *pool) take() *pkt.Packet {
	q := &p.pkts[p.next%poolSize]
	p.next++
	q.Reset()
	return q
}

// FlowOrder selects how a generator walks its flow population.
type FlowOrder int

// The flow orders.
const (
	// OrderUniform draws flows uniformly at random.
	OrderUniform FlowOrder = iota + 1
	// OrderZipf draws flows with a Zipf(1.1) popularity skew, the
	// heavy-tailed shape of real traffic.
	OrderZipf
	// OrderRoundRobin cycles the flows in order (worst case for
	// caching: maximal reuse distance).
	OrderRoundRobin
)

// FlowGenConfig parametrizes a synthetic flow workload.
type FlowGenConfig struct {
	// Flows is the concurrent flow population.
	Flows int
	// PacketBytes is the wire size of every packet.
	PacketBytes int
	// Order is the flow selection discipline.
	Order FlowOrder
	// Seed makes the generator deterministic.
	Seed int64
	// Proto selects TCP or UDP frames (default UDP).
	Proto uint8
	// ShardBase/ShardCount restrict emission to the flow index range
	// [ShardBase, ShardBase+ShardCount) — RSS steering: the table holds
	// all Flows, but this core only receives its shard. ShardCount = 0
	// means the whole population.
	ShardBase, ShardCount int
}

// FlowGen emits packets over a synthetic flow population. It implements
// the runtimes' Source interface.
type FlowGen struct {
	cfg  FlowGenConfig
	rng  *rand.Rand
	zipf *rand.Zipf
	pool *pool
	rr   int
	// recs holds one record per flow: the tuple plus its lazily-encoded
	// header template. A zero first header byte marks a not-yet-built
	// template (real frames start with the destination MAC 02:...).
	// Templates make repeat packets of a flow a copy instead of a
	// re-encode, and packing template and tuple into one cache-line-
	// sized record makes emitting a packet touch one host line instead
	// of two parallel arrays.
	recs []flowRec
}

// flowRec is one flow's emission record: 42 template bytes + a 16-byte
// tuple at offset 44, padded to 64 bytes.
type flowRec struct {
	hdr   [hdrBytes]byte
	tuple pkt.FiveTuple
	_     [4]byte
}

// NewFlowGen builds a generator over cfg.Flows distinct five-tuples.
func NewFlowGen(cfg FlowGenConfig) (*FlowGen, error) {
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("traffic: Flows must be positive, got %d", cfg.Flows)
	}
	if cfg.PacketBytes < 64 {
		return nil, fmt.Errorf("traffic: PacketBytes must be >= 64, got %d", cfg.PacketBytes)
	}
	if cfg.Proto == 0 {
		cfg.Proto = pkt.ProtoUDP
	}
	if cfg.ShardCount == 0 {
		cfg.ShardBase, cfg.ShardCount = 0, cfg.Flows
	}
	if cfg.ShardBase < 0 || cfg.ShardBase+cfg.ShardCount > cfg.Flows {
		return nil, fmt.Errorf("traffic: shard [%d,%d) outside population %d",
			cfg.ShardBase, cfg.ShardBase+cfg.ShardCount, cfg.Flows)
	}
	g := &FlowGen{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		pool: newPool(),
		recs: make([]flowRec, cfg.Flows),
	}
	for i := range g.recs {
		g.recs[i].tuple = pkt.FiveTuple{
			SrcIP:   0x0a000000 + uint32(i/65000),
			DstIP:   0xc0a80000 + uint32(i%4096),
			SrcPort: uint16(1024 + i%64000),
			DstPort: 443,
			Proto:   cfg.Proto,
		}
		// Spread source addresses so tuples are distinct even when the
		// port cycles.
		g.recs[i].tuple.SrcIP += uint32(i%65000) << 8 & 0x00ffff00
	}
	if cfg.Order == OrderZipf {
		g.zipf = rand.NewZipf(g.rng, 1.1, 1, uint64(cfg.ShardCount-1))
	}
	return g, nil
}

// FlowTuple returns flow i's five-tuple, for table pre-population.
func (g *FlowGen) FlowTuple(i int) pkt.FiveTuple { return g.recs[i].tuple }

// Flows returns the flow population size.
func (g *FlowGen) Flows() int { return len(g.recs) }

// pick selects the next flow index per the configured order, within
// the generator's shard.
func (g *FlowGen) pick() int {
	switch g.cfg.Order {
	case OrderZipf:
		return g.cfg.ShardBase + int(g.zipf.Uint64())
	case OrderRoundRobin:
		i := g.rr
		g.rr = (g.rr + 1) % g.cfg.ShardCount
		return g.cfg.ShardBase + i
	default:
		return g.cfg.ShardBase + g.rng.Intn(g.cfg.ShardCount)
	}
}

// hdrBytes is the encoded Ethernet/IPv4/L4 header length — the bytes
// buildUDPish actually writes.
const hdrBytes = pkt.EthLen + pkt.IPv4Len + pkt.UDPLen

// Next emits the next packet. FlowGen is an infinite source; callers
// bound runs by packet count.
//
// The frame header for a flow is fully determined by its tuple and the
// configured packet size, so it is encoded once per flow and copied
// from the template thereafter — byte-identical to re-encoding, at a
// fraction of the host cost.
func (g *FlowGen) Next() *pkt.Packet {
	p := g.pool.take()
	r := &g.recs[g.pick()]
	if r.hdr[0] == 0 {
		// First packet of this flow: encode for real, then capture.
		buildUDPish(p, r.tuple, g.cfg.PacketBytes)
		copy(r.hdr[:], p.Data)
		return p
	}
	copy(p.Data, r.hdr[:])
	p.WireLen = g.cfg.PacketBytes
	p.Tuple = r.tuple
	return p
}

// buildUDPish encodes an Ethernet/IPv4/L4 frame for tuple into p and
// sets the parsed fields directly (the generator knows them; NFs that
// re-parse get identical results, as the codec tests verify).
func buildUDPish(p *pkt.Packet, tuple pkt.FiveTuple, wire int) {
	b := p.Data[:bufBytes]
	// Encode errors are impossible here by construction (buffer is
	// fixed and large enough); they would indicate a programming error.
	_ = pkt.EncodeEthernet(b, [6]byte{2, 0, 0, 0, 0, 1}, [6]byte{2, 0, 0, 0, 0, 2}, pkt.EtherTypeIPv4)
	_ = pkt.EncodeIPv4(b[pkt.EthLen:], pkt.IPv4Header{
		TotalLen: uint16(wire - pkt.EthLen),
		TTL:      64,
		Proto:    tuple.Proto,
		Src:      tuple.SrcIP,
		Dst:      tuple.DstIP,
	})
	_ = pkt.EncodeUDP(b[pkt.EthLen+pkt.IPv4Len:], tuple.SrcPort, tuple.DstPort,
		uint16(wire-pkt.EthLen-pkt.IPv4Len))
	p.WireLen = wire
	p.Tuple = tuple
}

// Limited wraps a source with a packet budget, turning an infinite
// generator into a finite trace.
type Limited struct {
	src  interface{ Next() *pkt.Packet }
	left uint64
}

// NewLimited returns a source that yields at most n packets from src.
func NewLimited(src interface{ Next() *pkt.Packet }, n uint64) *Limited {
	return &Limited{src: src, left: n}
}

// Next returns the next packet or nil once the budget is spent.
func (l *Limited) Next() *pkt.Packet {
	if l.left == 0 {
		return nil
	}
	l.left--
	return l.src.Next()
}
