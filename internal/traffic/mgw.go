package traffic

import (
	"fmt"
	"math/rand"

	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// MGWConfig parametrizes the Telco-benchmark Mobile GateWay use case
// the paper drives its UPF experiments with: N PFCP sessions, each with
// M packet detection rules, receiving downlink traffic.
type MGWConfig struct {
	// Sessions is the PFCP session count (one UE each).
	Sessions int
	// PDRs is the number of packet detection rules per session; the
	// generator spreads each session's traffic across all of them by
	// cycling source ports through the PDR port ranges.
	PDRs int
	// PacketBytes is the downlink packet wire size.
	PacketBytes int
	// Order selects the session popularity distribution.
	Order FlowOrder
	// Seed makes the workload deterministic.
	Seed int64
	// ShardBase/ShardCount restrict emission to a session index range
	// (RSS steering); ShardCount = 0 means all sessions.
	ShardBase, ShardCount int
}

// UEIP returns the UE address of session i (level-1 match key).
func (c MGWConfig) UEIP(i int) uint32 { return 0x0a000000 + uint32(i) }

// PDRRangeSpan returns the source-port span of one PDR's SDF filter
// when the port space is partitioned evenly across the session's PDRs.
func (c MGWConfig) PDRRangeSpan() int { return 65536 / c.PDRs }

// MGWGen emits downlink packets toward the UE population.
type MGWGen struct {
	cfg  MGWConfig
	rng  *rand.Rand
	zipf *rand.Zipf
	pool *pool
	rr   int
}

// NewMGWGen validates cfg and builds the generator.
func NewMGWGen(cfg MGWConfig) (*MGWGen, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("traffic: mgw: Sessions must be positive, got %d", cfg.Sessions)
	}
	if cfg.PDRs <= 0 || cfg.PDRs > 65536 {
		return nil, fmt.Errorf("traffic: mgw: PDRs must be in [1,65536], got %d", cfg.PDRs)
	}
	if cfg.PacketBytes < 64 {
		return nil, fmt.Errorf("traffic: mgw: PacketBytes must be >= 64, got %d", cfg.PacketBytes)
	}
	if cfg.Order == 0 {
		cfg.Order = OrderUniform
	}
	if cfg.ShardCount == 0 {
		cfg.ShardBase, cfg.ShardCount = 0, cfg.Sessions
	}
	if cfg.ShardBase < 0 || cfg.ShardBase+cfg.ShardCount > cfg.Sessions {
		return nil, fmt.Errorf("traffic: mgw: shard [%d,%d) outside %d sessions",
			cfg.ShardBase, cfg.ShardBase+cfg.ShardCount, cfg.Sessions)
	}
	g := &MGWGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), pool: newPool()}
	if cfg.Order == OrderZipf && cfg.ShardCount > 1 {
		g.zipf = rand.NewZipf(g.rng, 1.1, 1, uint64(cfg.ShardCount-1))
	}
	return g, nil
}

// Config returns the generator's parameters.
func (g *MGWGen) Config() MGWConfig { return g.cfg }

// Next emits a downlink packet: server → UE IP, with a source port
// drawn uniformly so it lands in a uniformly random PDR's range.
func (g *MGWGen) Next() *pkt.Packet {
	var sess int
	switch {
	case g.zipf != nil:
		sess = g.cfg.ShardBase + int(g.zipf.Uint64())
	case g.cfg.Order == OrderRoundRobin:
		sess = g.cfg.ShardBase + g.rr
		g.rr = (g.rr + 1) % g.cfg.ShardCount
	default:
		sess = g.cfg.ShardBase + g.rng.Intn(g.cfg.ShardCount)
	}
	tuple := pkt.FiveTuple{
		SrcIP:   0x08080800 + uint32(g.rng.Intn(256)), // internet servers
		DstIP:   g.cfg.UEIP(sess),
		SrcPort: uint16(g.rng.Intn(65536)),
		DstPort: uint16(10000 + g.rng.Intn(1000)),
		Proto:   pkt.ProtoUDP,
	}
	p := g.pool.take()
	buildUDPish(p, tuple, g.cfg.PacketBytes)
	return p
}
