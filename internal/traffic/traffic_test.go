package traffic

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

func TestFlowGenValidation(t *testing.T) {
	if _, err := NewFlowGen(FlowGenConfig{Flows: 0, PacketBytes: 64}); err == nil {
		t.Fatal("zero flows accepted")
	}
	if _, err := NewFlowGen(FlowGenConfig{Flows: 10, PacketBytes: 32}); err == nil {
		t.Fatal("tiny packets accepted")
	}
}

func TestFlowGenDistinctTuples(t *testing.T) {
	g, err := NewFlowGen(FlowGenConfig{Flows: 5000, PacketBytes: 64, Order: OrderUniform})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[pkt.FiveTuple]int, 5000)
	for i := 0; i < g.Flows(); i++ {
		tu := g.FlowTuple(i)
		if prev, dup := seen[tu]; dup {
			t.Fatalf("flows %d and %d share tuple %v", prev, i, tu)
		}
		seen[tu] = i
	}
}

func TestFlowGenPacketsParse(t *testing.T) {
	g, err := NewFlowGen(FlowGenConfig{Flows: 100, PacketBytes: 512, Order: OrderUniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p := g.Next()
		if p.WireLen != 512 {
			t.Fatalf("WireLen = %d", p.WireLen)
		}
		want := p.Tuple
		p.Tuple = pkt.FiveTuple{}
		if err := p.Parse(); err != nil {
			t.Fatalf("packet %d does not parse: %v", i, err)
		}
		if p.Tuple != want {
			t.Fatalf("packet %d: parsed %v, generator said %v", i, p.Tuple, want)
		}
	}
}

func TestFlowGenDeterministic(t *testing.T) {
	mk := func() []pkt.FiveTuple {
		g, err := NewFlowGen(FlowGenConfig{Flows: 50, PacketBytes: 64, Order: OrderZipf, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]pkt.FiveTuple, 100)
		for i := range out {
			out[i] = g.Next().Tuple
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
}

func TestFlowGenRoundRobin(t *testing.T) {
	g, err := NewFlowGen(FlowGenConfig{Flows: 4, PacketBytes: 64, Order: OrderRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			if got := g.Next().Tuple; got != g.FlowTuple(i) {
				t.Fatalf("round %d pos %d: got %v, want flow %d", round, i, got, i)
			}
		}
	}
}

func TestFlowGenZipfSkewed(t *testing.T) {
	g, err := NewFlowGen(FlowGenConfig{Flows: 1000, PacketBytes: 64, Order: OrderZipf, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[pkt.FiveTuple]int)
	for i := 0; i < 10000; i++ {
		counts[g.Next().Tuple]++
	}
	top := g.FlowTuple(0)
	if counts[top] < 1000 {
		t.Fatalf("zipf head flow got %d of 10000 packets; expected heavy skew", counts[top])
	}
}

func TestLimited(t *testing.T) {
	g, err := NewFlowGen(FlowGenConfig{Flows: 10, PacketBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLimited(g, 3)
	for i := 0; i < 3; i++ {
		if l.Next() == nil {
			t.Fatalf("packet %d was nil", i)
		}
	}
	if l.Next() != nil {
		t.Fatal("budget exceeded")
	}
}

func TestMGWGenValidation(t *testing.T) {
	if _, err := NewMGWGen(MGWConfig{Sessions: 0, PDRs: 4, PacketBytes: 64}); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if _, err := NewMGWGen(MGWConfig{Sessions: 4, PDRs: 0, PacketBytes: 64}); err == nil {
		t.Fatal("zero PDRs accepted")
	}
	if _, err := NewMGWGen(MGWConfig{Sessions: 4, PDRs: 4, PacketBytes: 10}); err == nil {
		t.Fatal("tiny packets accepted")
	}
}

func TestMGWGenTargetsSessions(t *testing.T) {
	cfg := MGWConfig{Sessions: 64, PDRs: 4, PacketBytes: 128, Seed: 5}
	g, err := NewMGWGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hit := make(map[uint32]bool)
	for i := 0; i < 2000; i++ {
		p := g.Next()
		ue := p.Tuple.DstIP
		if ue < cfg.UEIP(0) || ue > cfg.UEIP(cfg.Sessions-1) {
			t.Fatalf("packet %d targets non-UE address %#x", i, ue)
		}
		hit[ue] = true
		want := p.Tuple
		p.Tuple = pkt.FiveTuple{}
		if err := p.Parse(); err != nil {
			t.Fatal(err)
		}
		if p.Tuple != want {
			t.Fatalf("reparse mismatch: %v vs %v", p.Tuple, want)
		}
	}
	if len(hit) < 50 {
		t.Fatalf("only %d of 64 sessions hit in 2000 packets", len(hit))
	}
}

func TestMGWGenOrders(t *testing.T) {
	for _, order := range []FlowOrder{OrderUniform, OrderZipf, OrderRoundRobin} {
		g, err := NewMGWGen(MGWConfig{Sessions: 16, PDRs: 2, PacketBytes: 64, Order: order, Seed: 1})
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		for i := 0; i < 50; i++ {
			if g.Next() == nil {
				t.Fatalf("order %d: nil packet", order)
			}
		}
	}
}

func TestMGWPDRSpan(t *testing.T) {
	cfg := MGWConfig{Sessions: 1, PDRs: 16, PacketBytes: 64}
	if got := cfg.PDRRangeSpan(); got != 4096 {
		t.Fatalf("PDRRangeSpan = %d, want 4096", got)
	}
}

func TestAMFGenValidation(t *testing.T) {
	if _, err := NewAMFGen(AMFConfig{UEs: 0}); err == nil {
		t.Fatal("zero UEs accepted")
	}
	if _, err := NewAMFGen(AMFConfig{UEs: 10, MsgType: 99}); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

func TestAMFGenSingleMessageMode(t *testing.T) {
	g, err := NewAMFGen(AMFConfig{UEs: 100, MsgType: MsgAuthResponse, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p := g.Next()
		if p.MsgType != MsgAuthResponse {
			t.Fatalf("packet %d: msg %d", i, p.MsgType)
		}
		if p.UE >= 100 {
			t.Fatalf("packet %d: UE %d out of range", i, p.UE)
		}
	}
}

func TestAMFGenCallFlowProgresses(t *testing.T) {
	g, err := NewAMFGen(AMFConfig{UEs: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Track each UE's message sequence; it must cycle 1..5 in order.
	last := make(map[uint32]uint8)
	for i := 0; i < 300; i++ {
		p := g.Next()
		if p.MsgType < 1 || int(p.MsgType) > NumAMFMessages {
			t.Fatalf("bad message type %d", p.MsgType)
		}
		if prev, ok := last[p.UE]; ok {
			want := prev%uint8(NumAMFMessages) + 1
			if p.MsgType != want {
				t.Fatalf("UE %d jumped from msg %d to %d", p.UE, prev, p.MsgType)
			}
		}
		last[p.UE] = p.MsgType
	}
}

func TestAMFMessageNames(t *testing.T) {
	seen := make(map[string]bool)
	for m := uint8(1); int(m) <= NumAMFMessages; m++ {
		name := AMFMessageName(m)
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate name %q for msg %d", name, m)
		}
		seen[name] = true
	}
	if AMFMessageName(200) == "" {
		t.Fatal("unknown message must still name itself")
	}
}

func TestCaidaGen(t *testing.T) {
	if _, err := NewCaidaGen(CaidaConfig{Flows: 1}); err == nil {
		t.Fatal("single flow accepted")
	}
	g, err := NewCaidaGen(CaidaConfig{Flows: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[int]int)
	for i := 0; i < 5000; i++ {
		p := g.Next()
		sizes[p.WireLen]++
		want := p.Tuple
		p.Tuple = pkt.FiveTuple{}
		if err := p.Parse(); err != nil {
			t.Fatal(err)
		}
		if p.Tuple != want {
			t.Fatal("reparse mismatch")
		}
	}
	for _, s := range imixSizes {
		if sizes[s] == 0 {
			t.Fatalf("IMIX size %d never emitted; histogram %v", s, sizes)
		}
	}
	if sizes[64] < sizes[1518] {
		t.Fatalf("IMIX mix inverted: %v", sizes)
	}
	if got := AvgPacketBytes(); got < 300 || got > 400 {
		t.Fatalf("AvgPacketBytes = %v, want ~353", got)
	}
}

func TestPoolRecycles(t *testing.T) {
	p := newPool()
	first := p.take()
	for i := 0; i < poolSize-1; i++ {
		p.take()
	}
	if p.take() != first {
		t.Fatal("pool did not wrap to the first packet")
	}
}
