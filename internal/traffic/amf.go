package traffic

import (
	"fmt"
	"math/rand"

	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// NAS message types of the UE initial-registration call flow, the
// state-intensive procedure of the paper's EXP B and Figure 12. Each
// message's handler touches a different slice of the (>20 cache line)
// UE context.
const (
	// MsgRegistrationRequest opens the procedure: identity resolution
	// plus context allocation.
	MsgRegistrationRequest uint8 = iota + 1
	// MsgAuthResponse carries the UE's authentication result; the
	// handler checks it against the stored authentication vector.
	MsgAuthResponse
	// MsgSecModeComplete completes NAS security negotiation.
	MsgSecModeComplete
	// MsgRegistrationComplete finalizes registration and builds the
	// registration area.
	MsgRegistrationComplete
	// MsgPDUSessionRequest asks for a PDU session right after
	// registration (UL NAS transport).
	MsgPDUSessionRequest

	// NumAMFMessages is the number of message kinds in the call flow.
	NumAMFMessages = int(MsgPDUSessionRequest)
)

// AMFMessageName names a NAS message type for reports.
func AMFMessageName(msg uint8) string {
	switch msg {
	case MsgRegistrationRequest:
		return "RegistrationRequest"
	case MsgAuthResponse:
		return "AuthResponse"
	case MsgSecModeComplete:
		return "SecModeComplete"
	case MsgRegistrationComplete:
		return "RegistrationComplete"
	case MsgPDUSessionRequest:
		return "PDUSessionRequest"
	default:
		return fmt.Sprintf("msg(%d)", msg)
	}
}

// AMFConfig parametrizes the registration workload.
type AMFConfig struct {
	// UEs is the subscriber population (the paper assumes 2^17).
	UEs int
	// MsgType, when non-zero, emits only that message type — the
	// per-message measurement mode of Figures 3 and 12. When zero the
	// generator interleaves full call flows across UEs.
	MsgType uint8
	// Seed makes the workload deterministic.
	Seed int64
}

// AMFGen emits NAS messages from a UE population. Control-plane
// messages are small; WireLen models a typical NAS PDU over N2.
type AMFGen struct {
	cfg   AMFConfig
	rng   *rand.Rand
	pool  *pool
	stage []uint8 // per-UE progress through the call flow
}

// NewAMFGen validates cfg and builds the generator.
func NewAMFGen(cfg AMFConfig) (*AMFGen, error) {
	if cfg.UEs <= 0 {
		return nil, fmt.Errorf("traffic: amf: UEs must be positive, got %d", cfg.UEs)
	}
	if int(cfg.MsgType) > NumAMFMessages {
		return nil, fmt.Errorf("traffic: amf: unknown message type %d", cfg.MsgType)
	}
	g := &AMFGen{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		pool: newPool(),
	}
	if cfg.MsgType == 0 {
		// Start UEs at random call-flow positions so the message-type
		// mix is uniform from the first packet (a fresh population
		// would otherwise emit only RegistrationRequests until every
		// UE had been visited once).
		g.stage = make([]uint8, cfg.UEs)
		for i := range g.stage {
			g.stage[i] = uint8(g.rng.Intn(NumAMFMessages))
		}
	}
	return g, nil
}

// Config returns the generator's parameters.
func (g *AMFGen) Config() AMFConfig { return g.cfg }

// Next emits the next NAS message. In call-flow mode each UE advances
// RegistrationRequest → … → PDUSessionRequest and then starts over
// (periodic re-registration), with UEs interleaved at random — the
// heterogeneous-workload property the paper stresses.
func (g *AMFGen) Next() *pkt.Packet {
	ue := g.rng.Intn(g.cfg.UEs)
	msg := g.cfg.MsgType
	if msg == 0 {
		msg = g.stage[ue] + 1
		g.stage[ue] = uint8((int(g.stage[ue]) + 1) % NumAMFMessages)
	}
	p := g.pool.take()
	tuple := pkt.FiveTuple{
		SrcIP:   0xac100001, // gNB N2 endpoint
		DstIP:   0xac100002, // AMF
		SrcPort: 38412,      // SCTP NGAP port (modelled over UDP framing)
		DstPort: 38412,
		Proto:   pkt.ProtoUDP,
	}
	buildUDPish(p, tuple, 120)
	p.UE = uint32(ue)
	p.MsgType = msg
	return p
}
