package traffic

import (
	"bytes"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewFlowGen(FlowGenConfig{Flows: 50, PacketBytes: 512, Order: OrderZipf, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Record the reference stream twice from identical generators so
	// the replayed packets can be compared one-to-one.
	ref, err := NewFlowGen(FlowGenConfig{Flows: 50, PacketBytes: 512, Order: OrderZipf, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	const n = 300
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}

	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != n {
		t.Fatalf("Total = %d", r.Total())
	}
	for i := 0; i < n; i++ {
		got := r.Next()
		want := ref.Next()
		if got == nil {
			t.Fatalf("packet %d: nil (err %v)", i, r.Err())
		}
		if got.Tuple != want.Tuple || got.WireLen != want.WireLen {
			t.Fatalf("packet %d: got %v/%d, want %v/%d",
				i, got.Tuple, got.WireLen, want.Tuple, want.WireLen)
		}
		if !bytes.Equal(got.Data[:64], want.Data[:64]) {
			t.Fatalf("packet %d: header bytes differ", i)
		}
	}
	if r.Next() != nil {
		t.Fatal("reader emitted past Total")
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF produced error: %v", r.Err())
	}
}

func TestTraceCarriesControlFields(t *testing.T) {
	g, err := NewAMFGen(AMFConfig{UEs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 20); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawMsg := false
	for p := r.Next(); p != nil; p = r.Next() {
		if p.MsgType != 0 {
			sawMsg = true
		}
		if p.UE >= 8 {
			t.Fatalf("UE %d out of range", p.UE)
		}
	}
	if !sawMsg {
		t.Fatal("message types not preserved")
	}
}

func TestTraceErrors(t *testing.T) {
	// Truncated source.
	g, err := NewFlowGen(FlowGenConfig{Flows: 4, PacketBytes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewLimited(g, 3), 10); err == nil {
		t.Fatal("short source accepted")
	}

	// Bad magic.
	if _, err := NewTraceReader(bytes.NewReader([]byte("XXXX0000000000000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Empty stream.
	if _, err := NewTraceReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}

	// Truncated packet body.
	buf.Reset()
	g2, err := NewFlowGen(FlowGenConfig{Flows: 4, PacketBytes: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&buf, g2, 5); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-40]
	r, err := NewTraceReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	for p := r.Next(); p != nil; p = r.Next() {
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

// TestTraceReplayDrivesWorkload confirms a replayed trace satisfies
// the Source contract end to end (count-bounded, parseable frames).
func TestTraceReplayDrivesWorkload(t *testing.T) {
	g, err := NewCaidaGen(CaidaConfig{Flows: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for p := r.Next(); p != nil; p = r.Next() {
		want := p.Tuple
		p.Tuple = pkt.FiveTuple{}
		if err := p.Parse(); err != nil {
			t.Fatalf("replayed packet %d does not parse: %v", count, err)
		}
		if p.Tuple != want {
			t.Fatalf("replayed packet %d reparse mismatch", count)
		}
		count++
	}
	if count != 100 {
		t.Fatalf("replayed %d packets", count)
	}
}
