package traffic

import (
	"fmt"
	"math/rand"

	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// CaidaConfig parametrizes the CAIDA-like synthetic trace used by the
// scalability experiments (Figs 14, 15): a heavy-tailed flow popularity
// distribution and the IMIX packet-size mix of backbone traffic. The
// paper replays real CAIDA traces, which are licensed; this generator
// preserves the two properties the experiments exercise — flow
// concurrency (reuse distance of per-flow state) and the size mix
// (bytes per unit of per-packet work).
type CaidaConfig struct {
	// Flows is the concurrent flow population.
	Flows int
	// Seed makes the trace deterministic.
	Seed int64
	// ShardBase/ShardCount restrict emission to a flow index range
	// (RSS steering); ShardCount = 0 means all flows.
	ShardBase, ShardCount int
}

// IMIX sizes and cumulative weights: the classic 7:4:1 simple IMIX.
var (
	imixSizes = []int{64, 594, 1518}
	imixCum   = []float64{7.0 / 12, 11.0 / 12, 1.0}
)

// CaidaGen emits the synthetic backbone trace.
type CaidaGen struct {
	cfg    CaidaConfig
	rng    *rand.Rand
	zipf   *rand.Zipf
	pool   *pool
	tuples []pkt.FiveTuple
}

// NewCaidaGen validates cfg and builds the generator.
func NewCaidaGen(cfg CaidaConfig) (*CaidaGen, error) {
	if cfg.Flows <= 1 {
		return nil, fmt.Errorf("traffic: caida: Flows must be > 1, got %d", cfg.Flows)
	}
	if cfg.ShardCount == 0 {
		cfg.ShardBase, cfg.ShardCount = 0, cfg.Flows
	}
	if cfg.ShardBase < 0 || cfg.ShardBase+cfg.ShardCount > cfg.Flows {
		return nil, fmt.Errorf("traffic: caida: shard [%d,%d) outside %d flows",
			cfg.ShardBase, cfg.ShardBase+cfg.ShardCount, cfg.Flows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The popularity skew (s=1.05, v=8) matches backbone traces: a
	// heavy tail without a single flow dominating — at 100K+ flows the
	// per-flow reuse distance still defeats the caches, which is the
	// property the scalability experiments depend on.
	g := &CaidaGen{
		cfg:    cfg,
		rng:    rng,
		zipf:   rand.NewZipf(rng, 1.05, 8, uint64(cfg.ShardCount-1)),
		pool:   newPool(),
		tuples: make([]pkt.FiveTuple, cfg.Flows),
	}
	for i := range g.tuples {
		g.tuples[i] = pkt.FiveTuple{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: uint16([]int{80, 443, 53, 8080, 22}[rng.Intn(5)]),
			Proto:   pkt.ProtoTCP,
		}
		if i%5 == 0 {
			g.tuples[i].Proto = pkt.ProtoUDP
		}
	}
	return g, nil
}

// FlowTuple returns flow i's five-tuple for table pre-population.
func (g *CaidaGen) FlowTuple(i int) pkt.FiveTuple { return g.tuples[i] }

// Flows returns the flow population size.
func (g *CaidaGen) Flows() int { return len(g.tuples) }

// AvgPacketBytes returns the expected IMIX packet size, for line-rate
// arithmetic.
func AvgPacketBytes() float64 {
	return 7.0/12*float64(imixSizes[0]) + 4.0/12*float64(imixSizes[1]) + 1.0/12*float64(imixSizes[2])
}

// Next emits the next trace packet: Zipf-popular flow, IMIX size.
func (g *CaidaGen) Next() *pkt.Packet {
	tuple := g.tuples[g.cfg.ShardBase+int(g.zipf.Uint64())]
	r := g.rng.Float64()
	size := imixSizes[0]
	for i, c := range imixCum {
		if r <= c {
			size = imixSizes[i]
			break
		}
	}
	p := g.pool.take()
	buildUDPish(p, tuple, size)
	return p
}
