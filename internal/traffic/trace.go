package traffic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/gunfu-nfv/gunfu/internal/pkt"
)

// Trace capture and replay: any generator's output can be recorded to
// a compact binary stream and replayed later as a Source, giving
// experiments a fixed input the way the paper's CAIDA trace replays
// do. The format stores the parsed flow metadata alongside the header
// bytes, so replay is exact.

// traceMagic and traceVersion head a trace stream.
var traceMagic = [4]byte{'G', 'T', 'R', 'C'}

const traceVersion uint16 = 1

// traceHeader is the per-stream prologue.
type traceHeader struct {
	Magic   [4]byte
	Version uint16
	_       uint16 // reserved
	Packets uint64
}

// tracePacket is the fixed-size per-packet prologue; Data bytes follow.
type tracePacket struct {
	WireLen uint32
	DataLen uint32
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	MsgType uint8
	_       uint16 // padding for alignment stability
	TEID    uint32
	UE      uint32
}

// WriteTrace records n packets from src to w.
func WriteTrace(w io.Writer, src interface{ Next() *pkt.Packet }, n uint64) error {
	bw := bufio.NewWriter(w)
	hdr := traceHeader{Magic: traceMagic, Version: traceVersion, Packets: n}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("traffic: trace header: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		p := src.Next()
		if p == nil {
			return fmt.Errorf("traffic: source exhausted after %d of %d packets", i, n)
		}
		rec := tracePacket{
			WireLen: uint32(p.WireLen),
			DataLen: uint32(len(p.Data)),
			SrcIP:   p.Tuple.SrcIP,
			DstIP:   p.Tuple.DstIP,
			SrcPort: p.Tuple.SrcPort,
			DstPort: p.Tuple.DstPort,
			Proto:   p.Tuple.Proto,
			MsgType: p.MsgType,
			TEID:    p.TEID,
			UE:      p.UE,
		}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return fmt.Errorf("traffic: trace packet %d: %w", i, err)
		}
		if _, err := bw.Write(p.Data); err != nil {
			return fmt.Errorf("traffic: trace packet %d data: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("traffic: trace flush: %w", err)
	}
	return nil
}

// TraceReader replays a recorded trace as a Source. It recycles a
// packet pool like the generators, so replay has the same allocation
// profile as live generation.
type TraceReader struct {
	r       *bufio.Reader
	pool    *pool
	total   uint64
	emitted uint64
	err     error
}

// NewTraceReader validates the stream header and prepares replay.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var hdr traceHeader
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("traffic: trace header: %w", err)
	}
	if hdr.Magic != traceMagic {
		return nil, fmt.Errorf("traffic: not a trace stream (magic %q)", hdr.Magic[:])
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("traffic: unsupported trace version %d", hdr.Version)
	}
	return &TraceReader{r: br, pool: newPool(), total: hdr.Packets}, nil
}

// Total returns the packet count declared by the stream header.
func (t *TraceReader) Total() uint64 { return t.total }

// Err returns the first decode error encountered (nil on clean EOF).
func (t *TraceReader) Err() error { return t.err }

// Next returns the next recorded packet, or nil at end of trace or on
// a decode error (inspect Err to distinguish).
func (t *TraceReader) Next() *pkt.Packet {
	if t.err != nil || t.emitted >= t.total {
		return nil
	}
	var rec tracePacket
	if err := binary.Read(t.r, binary.LittleEndian, &rec); err != nil {
		t.err = fmt.Errorf("traffic: trace packet %d: %w", t.emitted, err)
		return nil
	}
	if rec.DataLen > bufBytes {
		t.err = fmt.Errorf("traffic: trace packet %d: data %dB exceeds buffer %dB",
			t.emitted, rec.DataLen, bufBytes)
		return nil
	}
	p := t.pool.take()
	if _, err := io.ReadFull(t.r, p.Data[:rec.DataLen]); err != nil {
		t.err = fmt.Errorf("traffic: trace packet %d data: %w", t.emitted, err)
		return nil
	}
	p.Data = p.Data[:bufBytes]
	p.WireLen = int(rec.WireLen)
	p.Tuple = pkt.FiveTuple{
		SrcIP: rec.SrcIP, DstIP: rec.DstIP,
		SrcPort: rec.SrcPort, DstPort: rec.DstPort, Proto: rec.Proto,
	}
	p.MsgType = rec.MsgType
	p.TEID = rec.TEID
	p.UE = rec.UE
	t.emitted++
	return p
}
