package mem

import (
	"fmt"
	"sort"

	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// Field is one named state variable inside a record layout.
type Field struct {
	// Name is the variable name actions refer to.
	Name string
	// Size is the variable's width in bytes.
	Size uint64
}

// Layout maps a record's named fields to byte offsets. The per-flow and
// sub-flow state of every NF is described by a Layout; the compiler's
// data-packing pass (§VI-B of the paper) rewrites the field order so
// contemporaneously-accessed variables share cache lines, then rebuilds
// the Layout with PackedLayout.
type Layout struct {
	fields  []Field
	offsets map[string]uint64
	size    uint64
}

// NewLayout places fields in declaration order, each aligned to
// min(Size, 8) rounded up to a power of two. This is the "natural"
// layout a C struct declaration would produce — the unpacked baseline.
func NewLayout(fields ...Field) (*Layout, error) {
	l := &Layout{
		fields:  make([]Field, 0, len(fields)),
		offsets: make(map[string]uint64, len(fields)),
	}
	var off uint64
	for _, f := range fields {
		if f.Name == "" || f.Size == 0 {
			return nil, fmt.Errorf("mem: layout field %q: name and size required", f.Name)
		}
		if _, dup := l.offsets[f.Name]; dup {
			return nil, fmt.Errorf("mem: layout: duplicate field %q", f.Name)
		}
		align := alignOf(f.Size)
		off = (off + align - 1) &^ (align - 1)
		l.offsets[f.Name] = off
		l.fields = append(l.fields, f)
		off += f.Size
	}
	l.size = off
	return l, nil
}

// PackedLayout builds a layout from explicit (field, offset) placements,
// as produced by the data-packing optimizer. Placements must not overlap.
func PackedLayout(fields []Field, offsets map[string]uint64) (*Layout, error) {
	if len(fields) != len(offsets) {
		return nil, fmt.Errorf("mem: packed layout: %d fields but %d offsets", len(fields), len(offsets))
	}
	type span struct {
		name     string
		from, to uint64
	}
	spans := make([]span, 0, len(fields))
	l := &Layout{
		fields:  make([]Field, len(fields)),
		offsets: make(map[string]uint64, len(fields)),
	}
	copy(l.fields, fields)
	for _, f := range fields {
		off, ok := offsets[f.Name]
		if !ok {
			return nil, fmt.Errorf("mem: packed layout: missing offset for %q", f.Name)
		}
		l.offsets[f.Name] = off
		spans = append(spans, span{f.Name, off, off + f.Size})
		if off+f.Size > l.size {
			l.size = off + f.Size
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
	for i := 1; i < len(spans); i++ {
		if spans[i].from < spans[i-1].to {
			return nil, fmt.Errorf("mem: packed layout: fields %q and %q overlap",
				spans[i-1].name, spans[i].name)
		}
	}
	return l, nil
}

// Offset returns the byte offset of the named field.
func (l *Layout) Offset(name string) (uint64, error) {
	off, ok := l.offsets[name]
	if !ok {
		return 0, fmt.Errorf("mem: layout: unknown field %q", name)
	}
	return off, nil
}

// Span returns the (offset, size) of the named field.
func (l *Layout) Span(name string) (off, size uint64, err error) {
	off, ok := l.offsets[name]
	if !ok {
		return 0, 0, fmt.Errorf("mem: layout: unknown field %q", name)
	}
	for _, f := range l.fields {
		if f.Name == name {
			return off, f.Size, nil
		}
	}
	return 0, 0, fmt.Errorf("mem: layout: unknown field %q", name)
}

// Size returns the record's total size in bytes.
func (l *Layout) Size() uint64 { return l.size }

// Lines returns the number of cache lines a record occupies.
func (l *Layout) Lines() int {
	return int((l.size + sim.LineBytes - 1) / sim.LineBytes)
}

// Fields returns the fields in declaration order (a copy).
func (l *Layout) Fields() []Field {
	out := make([]Field, len(l.fields))
	copy(out, l.fields)
	return out
}

// LinesTouched returns how many distinct cache lines the named fields
// span, assuming the record starts line-aligned. This is the quantity
// data packing minimizes for each action's access set.
func (l *Layout) LinesTouched(names []string) (int, error) {
	seen := make(map[uint64]struct{}, len(names))
	for _, n := range names {
		off, size, err := l.Span(n)
		if err != nil {
			return 0, err
		}
		for line := off / sim.LineBytes; line <= (off+size-1)/sim.LineBytes; line++ {
			seen[line] = struct{}{}
		}
	}
	return len(seen), nil
}

func alignOf(size uint64) uint64 {
	switch {
	case size >= 8:
		return 8
	case size >= 4:
		return 4
	case size >= 2:
		return 2
	default:
		return 1
	}
}
