package mem

import (
	"testing"
	"testing/quick"

	"github.com/gunfu-nfv/gunfu/internal/sim"
)

func TestAddressSpaceReserve(t *testing.T) {
	as := NewAddressSpace()
	a := as.Reserve(100, 0)
	b := as.Reserve(100, 0)
	if a == 0 {
		t.Fatal("address 0 handed out")
	}
	if a%sim.LineBytes != 0 || b%sim.LineBytes != 0 {
		t.Fatalf("allocations not line aligned: %#x %#x", a, b)
	}
	if b < a+100 {
		t.Fatalf("overlapping ranges: a=%#x b=%#x", a, b)
	}
	c := as.Reserve(8, 4096)
	if c%4096 != 0 {
		t.Fatalf("custom alignment not honoured: %#x", c)
	}
	if as.Used() < c+8 {
		t.Fatalf("Used() = %d too small", as.Used())
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Name: "r", Base: 1000, Size: 100}
	tests := []struct {
		addr, n uint64
		want    bool
	}{
		{1000, 100, true},
		{1000, 1, true},
		{1099, 1, true},
		{999, 1, false},
		{1100, 1, false},
		{1050, 100, false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.addr, tt.n); got != tt.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", tt.addr, tt.n, got, tt.want)
		}
	}
}

func TestPool(t *testing.T) {
	as := NewAddressSpace()
	p, err := NewPool(as, "flows", 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.EntrySize() != sim.LineBytes {
		t.Fatalf("EntrySize = %d, want padded to %d", p.EntrySize(), sim.LineBytes)
	}
	if p.Count() != 10 {
		t.Fatalf("Count = %d", p.Count())
	}
	a0, err := p.Addr(0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.Addr(1)
	if err != nil {
		t.Fatal(err)
	}
	if a1-a0 != p.EntrySize() {
		t.Fatalf("entry stride = %d, want %d", a1-a0, p.EntrySize())
	}
	if _, err := p.Addr(10); err == nil {
		t.Fatal("out-of-range Addr succeeded")
	}
	if _, err := p.Addr(-1); err == nil {
		t.Fatal("negative Addr succeeded")
	}
	if !p.Region().Contains(a0, p.EntrySize()) {
		t.Fatal("entry outside region")
	}
}

func TestPoolErrors(t *testing.T) {
	as := NewAddressSpace()
	if _, err := NewPool(as, "bad", 0, 10); err == nil {
		t.Fatal("zero entrySize accepted")
	}
	if _, err := NewPool(as, "bad", 8, 0); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestMustAddrPanics(t *testing.T) {
	as := NewAddressSpace()
	p, err := NewPool(as, "p", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddr(5) did not panic")
		}
	}()
	p.MustAddr(5)
}

func TestArena(t *testing.T) {
	as := NewAddressSpace()
	a := NewArena(as, "nodes")
	x := a.Alloc(64)
	y := a.Alloc(64)
	if x == y {
		t.Fatal("arena reused address")
	}
	if a.Used() != 128 {
		t.Fatalf("Used = %d", a.Used())
	}
}

func TestNewLayout(t *testing.T) {
	l, err := NewLayout(
		Field{Name: "a", Size: 4},
		Field{Name: "b", Size: 8},
		Field{Name: "c", Size: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	offA, _ := l.Offset("a")
	offB, _ := l.Offset("b")
	offC, _ := l.Offset("c")
	if offA != 0 || offB != 8 || offC != 16 {
		t.Fatalf("offsets a=%d b=%d c=%d, want 0/8/16", offA, offB, offC)
	}
	if l.Size() != 18 {
		t.Fatalf("Size = %d, want 18", l.Size())
	}
	if l.Lines() != 1 {
		t.Fatalf("Lines = %d, want 1", l.Lines())
	}
	if _, err := l.Offset("zzz"); err == nil {
		t.Fatal("unknown field lookup succeeded")
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(Field{Name: "", Size: 4}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewLayout(Field{Name: "a", Size: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewLayout(Field{Name: "a", Size: 4}, Field{Name: "a", Size: 4}); err == nil {
		t.Fatal("duplicate field accepted")
	}
}

func TestPackedLayout(t *testing.T) {
	fields := []Field{{Name: "a", Size: 8}, {Name: "b", Size: 8}}
	l, err := PackedLayout(fields, map[string]uint64{"a": 64, "b": 0})
	if err != nil {
		t.Fatal(err)
	}
	if off, _ := l.Offset("a"); off != 64 {
		t.Fatalf("a offset = %d", off)
	}
	if l.Size() != 72 {
		t.Fatalf("Size = %d, want 72", l.Size())
	}
	if l.Lines() != 2 {
		t.Fatalf("Lines = %d, want 2", l.Lines())
	}
}

func TestPackedLayoutErrors(t *testing.T) {
	fields := []Field{{Name: "a", Size: 8}, {Name: "b", Size: 8}}
	if _, err := PackedLayout(fields, map[string]uint64{"a": 0, "b": 4}); err == nil {
		t.Fatal("overlapping placements accepted")
	}
	if _, err := PackedLayout(fields, map[string]uint64{"a": 0}); err == nil {
		t.Fatal("missing offset accepted")
	}
	if _, err := PackedLayout(fields, map[string]uint64{"a": 0, "b": 8, "c": 16}); err == nil {
		t.Fatal("extra offset accepted")
	}
}

func TestLinesTouched(t *testing.T) {
	// Two fields far apart: 2 lines naturally, 1 when packed together.
	fields := []Field{
		{Name: "hot1", Size: 8},
		{Name: "cold", Size: 112},
		{Name: "hot2", Size: 8},
	}
	natural, err := NewLayout(fields...)
	if err != nil {
		t.Fatal(err)
	}
	n, err := natural.LinesTouched([]string{"hot1", "hot2"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("natural LinesTouched = %d, want 2", n)
	}
	packed, err := PackedLayout(fields, map[string]uint64{"hot1": 0, "hot2": 8, "cold": 64})
	if err != nil {
		t.Fatal(err)
	}
	n, err = packed.LinesTouched([]string{"hot1", "hot2"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("packed LinesTouched = %d, want 1", n)
	}
	if _, err := packed.LinesTouched([]string{"nope"}); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestSpan(t *testing.T) {
	l, err := NewLayout(Field{Name: "x", Size: 4}, Field{Name: "y", Size: 16})
	if err != nil {
		t.Fatal(err)
	}
	off, size, err := l.Span("y")
	if err != nil {
		t.Fatal(err)
	}
	if off != 8 || size != 16 {
		t.Fatalf("Span(y) = (%d,%d), want (8,16)", off, size)
	}
	if _, _, err := l.Span("zzz"); err == nil {
		t.Fatal("unknown span succeeded")
	}
}

func TestFieldsReturnsCopy(t *testing.T) {
	l, err := NewLayout(Field{Name: "x", Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := l.Fields()
	f[0].Name = "mutated"
	if l.Fields()[0].Name != "x" {
		t.Fatal("Fields() exposed internal slice")
	}
}

// Property: pool entries never overlap and are all inside the region.
func TestPoolDisjointProperty(t *testing.T) {
	prop := func(entrySize uint8, count uint8) bool {
		es := uint64(entrySize%200) + 1
		n := int(count%50) + 1
		as := NewAddressSpace()
		p, err := NewPool(as, "p", es, n)
		if err != nil {
			return false
		}
		prevEnd := uint64(0)
		for i := 0; i < n; i++ {
			a, err := p.Addr(i)
			if err != nil {
				return false
			}
			if a < prevEnd {
				return false
			}
			if !p.Region().Contains(a, es) {
				return false
			}
			prevEnd = a + p.EntrySize()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a natural layout never places two fields at overlapping
// offsets and its size covers every field.
func TestLayoutNoOverlapProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		fields := make([]Field, 0, len(sizes))
		for i, s := range sizes {
			fields = append(fields, Field{
				Name: string(rune('a' + i)),
				Size: uint64(s%32) + 1,
			})
		}
		l, err := NewLayout(fields...)
		if err != nil {
			return false
		}
		type span struct{ from, to uint64 }
		var spans []span
		for _, f := range fields {
			off, size, err := l.Span(f.Name)
			if err != nil {
				return false
			}
			if off+size > l.Size() {
				return false
			}
			spans = append(spans, span{off, off + size})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].from < spans[j].to && spans[j].from < spans[i].to {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
