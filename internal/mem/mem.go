// Package mem manages the simulated address space that NFStates live in.
//
// The simulator in internal/sim charges cycles by address; this package
// hands out the addresses: regions for flow tables, pre-allocated
// datablock pools for per-flow and sub-flow state (the paper's §V "NF
// Management"), arenas for pointer-linked structures such as tree nodes,
// and record layouts whose field placement is the target of the
// compiler's data-packing optimization (§VI-B).
//
// No packet or state bytes are stored at these addresses — the actual
// data lives in ordinary Go values — but every address is unique and
// stable, so the cache simulator sees exactly the footprint and reuse
// pattern the real system would produce.
package mem

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// AddressSpace hands out non-overlapping, line-aligned address ranges.
// The zero value is not usable; construct with NewAddressSpace.
type AddressSpace struct {
	next uint64
}

// NewAddressSpace returns an address space whose allocations start above
// a guard page so that address 0 is never valid.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: 1 << 16}
}

// Reserve returns the base of a fresh range of the given size, aligned
// to align bytes (align must be a power of two; 0 means line-aligned).
func (s *AddressSpace) Reserve(size, align uint64) uint64 {
	if align == 0 {
		align = sim.LineBytes
	}
	base := (s.next + align - 1) &^ (align - 1)
	s.next = base + size
	return base
}

// Used returns the total span of address space handed out so far.
func (s *AddressSpace) Used() uint64 { return s.next }

// Region is a named contiguous block of simulated memory.
type Region struct {
	// Name identifies the region in dumps and errors.
	Name string
	// Base is the first address; Size the length in bytes.
	Base, Size uint64
}

// Contains reports whether [addr, addr+n) falls inside the region.
func (r Region) Contains(addr, n uint64) bool {
	return addr >= r.Base && addr+n <= r.Base+r.Size
}

// Pool is a pre-allocated table of fixed-size entries, the paper's
// "datablocks" for per-flow and sub-flow state: sized at initialization
// to entrySize × maximum concurrency, with match results expressed as
// entry indexes into the pool.
type Pool struct {
	region    Region
	entrySize uint64
	count     int
}

// NewPool reserves a pool of count entries of entrySize bytes each.
// Entries are padded to the cache-line grid so they never share lines,
// and to an odd line count so the entry stride is co-prime with any
// power-of-two cache set count — the standard conflict-avoiding
// padding that keeps same-offset fields of different records from
// piling onto a fraction of the sets.
func NewPool(as *AddressSpace, name string, entrySize uint64, count int) (*Pool, error) {
	if entrySize == 0 || count <= 0 {
		return nil, fmt.Errorf("mem: pool %s: entrySize and count must be positive", name)
	}
	padded := (entrySize + sim.LineBytes - 1) &^ (sim.LineBytes - 1)
	if (padded/sim.LineBytes)%2 == 0 {
		padded += sim.LineBytes
	}
	base := as.Reserve(padded*uint64(count), sim.LineBytes)
	return &Pool{
		region:    Region{Name: name, Base: base, Size: padded * uint64(count)},
		entrySize: padded,
		count:     count,
	}, nil
}

// Addr returns the base address of entry i.
func (p *Pool) Addr(i int) (uint64, error) {
	if i < 0 || i >= p.count {
		return 0, fmt.Errorf("mem: pool %s: index %d out of range [0,%d)", p.region.Name, i, p.count)
	}
	return p.region.Base + uint64(i)*p.entrySize, nil
}

// MustAddr is Addr for indexes the caller has already validated (e.g. a
// match result previously stored into the pool); it panics on misuse,
// which indicates a runtime bug rather than bad input.
func (p *Pool) MustAddr(i int) uint64 {
	a, err := p.Addr(i)
	if err != nil {
		panic(err)
	}
	return a
}

// AddrAt is the hot-path form of MustAddr: a single bounds check that
// the compiler can inline at the call site, with the panic outlined.
// Semantics are identical to MustAddr (panic on an out-of-range index).
func (p *Pool) AddrAt(i int32) uint64 {
	if i < 0 || int(i) >= p.count {
		p.badIndex(i)
	}
	return p.region.Base + uint64(i)*p.entrySize
}

//go:noinline
func (p *Pool) badIndex(i int32) {
	panic(fmt.Errorf("mem: pool %s: index %d out of range [0,%d)", p.region.Name, i, p.count))
}

// EntrySize returns the padded per-entry size in bytes.
func (p *Pool) EntrySize() uint64 { return p.entrySize }

// Count returns the number of entries.
func (p *Pool) Count() int { return p.count }

// Region returns the pool's address region.
func (p *Pool) Region() Region { return p.region }

// Arena allocates individually-addressed blocks, used for pointer-linked
// match structures (tree nodes, hash buckets) whose traversal is the
// pointer-chasing workload the paper's matching actions exhibit.
type Arena struct {
	as   *AddressSpace
	name string
	used uint64
}

// NewArena returns an arena drawing from as.
func NewArena(as *AddressSpace, name string) *Arena {
	return &Arena{as: as, name: name}
}

// Alloc reserves size bytes aligned to a cache line and returns the base.
func (a *Arena) Alloc(size uint64) uint64 {
	a.used += size
	return a.as.Reserve(size, sim.LineBytes)
}

// Used returns the bytes allocated from this arena.
func (a *Arena) Used() uint64 { return a.used }
