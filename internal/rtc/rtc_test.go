package rtc_test

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/nf/nat"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
	"github.com/gunfu-nfv/gunfu/internal/traffic"
)

func buildNAT(t testing.TB, flows int) (*model.Program, *traffic.FlowGen) {
	t.Helper()
	as := mem.NewAddressSpace()
	n, err := nat.New(as, nat.Config{MaxFlows: flows})
	if err != nil {
		t.Fatal(err)
	}
	g, err := traffic.NewFlowGen(traffic.FlowGenConfig{Flows: flows, PacketBytes: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < flows; i++ {
		if err := n.AddFlow(g.FlowTuple(i), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := n.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog, g
}

func TestValidation(t *testing.T) {
	prog, _ := buildNAT(t, 16)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []rtc.Config{
		{Batch: 0, RingSlots: 16, SlotBytes: 2048},
		{Batch: 32, RingSlots: 0, SlotBytes: 2048},
		{Batch: 32, RingSlots: 16, SlotBytes: 0},
	}
	for i, cfg := range bad {
		if _, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestRunBounded(t *testing.T) {
	prog, g := buildNAT(t, 64)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(g, 777)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 777 {
		t.Fatalf("Packets = %d, want 777", res.Packets)
	}
	if res.Counters.TaskSwitches != 0 {
		t.Fatalf("RTC performed %d task switches", res.Counters.TaskSwitches)
	}
	if res.Counters.PrefetchIssued != 0 {
		t.Fatalf("RTC issued %d prefetches", res.Counters.PrefetchIssued)
	}
	if res.AccessCycles == 0 {
		t.Fatal("AccessCycles not accumulated")
	}
}

func TestRunExhausted(t *testing.T) {
	prog, g := buildNAT(t, 64)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := rtc.NewWorker(core, mem.NewAddressSpace(), prog, rtc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(traffic.NewLimited(g, 50), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 50 {
		t.Fatalf("Packets = %d, want 50", res.Packets)
	}
	if w.Core() != core {
		t.Fatal("Core accessor broken")
	}
}
