// Package rtc is the per-packet run-to-completion baseline: the
// execution model of BESS, FastClick, L25GC and the other platforms the
// paper compares against (§II-B).
//
// It runs the *same* compiled Program as the interleaved runtime —
// identical actions, identical state layouts, identical simulated
// hardware — but processes each packet to completion before touching
// the next: every state access that misses the cache stalls the core
// for the full fill latency, with no other stream's work to overlap it.
// The only difference from internal/rt is scheduling, which is what
// makes the head-to-head numbers in the evaluation attributable to the
// execution model alone. Host-side accelerations in the shared
// machinery — the compiled step plans, the directory probe memo, the
// span fast paths — apply to both workers identically, so they speed
// the comparison up without tilting it.
package rtc

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// Config tunes the RTC worker.
type Config struct {
	// Batch is the rx burst size.
	Batch int
	// RxCost is the per-packet receive cost in instructions.
	RxCost uint64
	// RingSlots and SlotBytes set the rx buffer ring geometry.
	RingSlots int
	// SlotBytes is the buffer slot size in bytes.
	SlotBytes uint64
}

// DefaultConfig matches the interleaved runtime's I/O settings so the
// comparison isolates the execution model.
func DefaultConfig() Config {
	return Config{Batch: 32, RxCost: 30, RingSlots: 512, SlotBytes: 2048}
}

// Worker is the run-to-completion executor.
type Worker struct {
	core *sim.Core
	prog *model.Program
	cfg  Config
	ring *pkt.Ring
	exec *model.Exec
	seq  uint64
	// batch is the reusable rx burst buffer (see rt.Worker.receive).
	batch []*pkt.Packet
}

// NewWorker builds an RTC worker for prog on core.
func NewWorker(core *sim.Core, as *mem.AddressSpace, prog *model.Program, cfg Config) (*Worker, error) {
	if cfg.Batch <= 0 || cfg.RingSlots <= 0 || cfg.SlotBytes == 0 {
		return nil, fmt.Errorf("rtc: batch and ring geometry must be positive")
	}
	ringBase := as.Reserve(uint64(cfg.RingSlots)*cfg.SlotBytes, sim.LineBytes)
	ring, err := pkt.NewRing(ringBase, cfg.SlotBytes, cfg.RingSlots)
	if err != nil {
		return nil, fmt.Errorf("rtc: %w", err)
	}
	tempSize := uint64(prog.TempLines()) * sim.LineBytes
	return &Worker{
		core:  core,
		prog:  prog,
		cfg:   cfg,
		ring:  ring,
		exec:  &model.Exec{Core: core, TempAddr: as.Reserve(tempSize, sim.LineBytes)},
		batch: make([]*pkt.Packet, 0, cfg.Batch),
	}, nil
}

// Core returns the worker's simulated core.
func (w *Worker) Core() *sim.Core { return w.core }

// Run processes up to maxPackets packets (0 = until src is exhausted),
// each to completion, and returns the windowed result. The Result type
// is shared with the interleaved runtime for direct comparison.
func (w *Worker) Run(src rt.Source, maxPackets uint64) (rt.Result, error) {
	startCtr := w.core.Counters()
	startCycles := w.core.Now()

	var done uint64
	var bits float64
	var accessCycles uint64
	// RTC has a single execution context; stamp it as task slot 0 so
	// traced runs are comparable with single-task interleaved runs.
	traced := w.core.Tracer() != nil

	for maxPackets == 0 || done < maxPackets {
		// Receive a burst (cost identical to the interleaved runtime).
		n := w.cfg.Batch
		if maxPackets > 0 && maxPackets-done < uint64(n) {
			n = int(maxPackets - done)
		}
		if traced {
			w.core.SetTask(-1)
			w.core.SetCS(-1)
		}
		batch := w.batch[:0]
		for len(batch) < n {
			p := src.Next()
			if p == nil {
				break
			}
			p.Addr = w.ring.Slot(w.seq)
			w.seq++
			hdr := uint64(len(p.Data))
			if hdr > 128 {
				hdr = 128
			}
			w.core.DMAFill(p.Addr, hdr)
			w.core.Compute(w.cfg.RxCost)
			if traced {
				w.core.Emit(sim.TraceRx, sim.CauseNone, p.Addr, uint64(p.Bits()), 0)
			}
			batch = append(batch, p)
		}
		if len(batch) == 0 {
			break
		}
		if traced {
			w.core.SetTask(0)
		}
		for _, p := range batch {
			w.exec.ResetStream(p, w.prog.Start(), w.seq)
			for !w.exec.Done {
				if err := w.prog.Step(w.exec); err != nil {
					return rt.Result{}, fmt.Errorf("rtc: step: %w", err)
				}
			}
			done++
			bits += p.Bits()
			accessCycles += w.exec.AccessCycles
			w.exec.AccessCycles = 0
			if traced {
				w.core.Emit(sim.TraceStreamDone, sim.CauseNone, p.Addr, uint64(p.Bits()), 0)
			}
		}
	}

	return rt.Result{
		Packets:      done,
		Bits:         bits,
		Cycles:       w.core.Now() - startCycles,
		FreqHz:       w.core.Config().FreqHz,
		Counters:     w.core.Counters().Sub(startCtr),
		AccessCycles: accessCycles,
	}, nil
}
