package pkt

import (
	"encoding/binary"
	"fmt"
)

// Header sizes and offsets in bytes for the frame formats the NFs
// manipulate. All multi-byte fields are big-endian on the wire.
const (
	// EthLen is the Ethernet II header length.
	EthLen = 14
	// IPv4Len is the fixed IPv4 header length (no options).
	IPv4Len = 20
	// UDPLen is the UDP header length.
	UDPLen = 8
	// TCPLen is the fixed TCP header length (no options).
	TCPLen = 20
	// GTPULen is the fixed GTP-U header length used by the UPF
	// encapsulator (no extension headers).
	GTPULen = 8

	// EtherTypeIPv4 is the Ethernet type for IPv4.
	EtherTypeIPv4 = 0x0800
	// ProtoTCP and ProtoUDP are the IP protocol numbers.
	ProtoTCP = 6
	ProtoUDP = 17
	// GTPUPort is the UDP port GTP-U tunnels use.
	GTPUPort = 2152
)

// EncodeEthernet writes an Ethernet II header at b[0:14].
func EncodeEthernet(b []byte, dst, src [6]byte, etherType uint16) error {
	if len(b) < EthLen {
		return fmt.Errorf("pkt: ethernet needs %d bytes, have %d", EthLen, len(b))
	}
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	binary.BigEndian.PutUint16(b[12:14], etherType)
	return nil
}

// IPv4Header is the decoded form of the fields the NFs use.
type IPv4Header struct {
	// TotalLen is the IP datagram length including the header.
	TotalLen uint16
	// TTL is the remaining hop count.
	TTL uint8
	// Proto is the payload protocol number.
	Proto uint8
	// Src and Dst are addresses in host byte order.
	Src, Dst uint32
}

// EncodeIPv4 writes a 20-byte IPv4 header (version 4, IHL 5) at b[0:20]
// with a correct header checksum.
func EncodeIPv4(b []byte, h IPv4Header) error {
	if len(b) < IPv4Len {
		return fmt.Errorf("pkt: ipv4 needs %d bytes, have %d", IPv4Len, len(b))
	}
	b[0] = 0x45
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], 0) // identification
	binary.BigEndian.PutUint16(b[6:8], 0x4000)
	b[8] = h.TTL
	b[9] = h.Proto
	binary.BigEndian.PutUint16(b[10:12], 0)
	binary.BigEndian.PutUint32(b[12:16], h.Src)
	binary.BigEndian.PutUint32(b[16:20], h.Dst)
	binary.BigEndian.PutUint16(b[10:12], ipv4Checksum(b[:IPv4Len]))
	return nil
}

// DecodeIPv4 reads the fields of a 20-byte IPv4 header.
func DecodeIPv4(b []byte) (IPv4Header, error) {
	if len(b) < IPv4Len {
		return IPv4Header{}, fmt.Errorf("pkt: ipv4 needs %d bytes, have %d", IPv4Len, len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, fmt.Errorf("pkt: not an IPv4 header (version %d)", b[0]>>4)
	}
	return IPv4Header{
		TotalLen: binary.BigEndian.Uint16(b[2:4]),
		TTL:      b[8],
		Proto:    b[9],
		Src:      binary.BigEndian.Uint32(b[12:16]),
		Dst:      binary.BigEndian.Uint32(b[16:20]),
	}, nil
}

// ipv4Checksum computes the standard ones-complement header checksum
// over hdr with the checksum field already zeroed or included.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ipv4Incremental folds a header edit into a stored checksum (RFC 1624
// method): delta is the sum of the ones-complements of the replaced
// 16-bit words plus the sum of their replacements. The result is
// byte-identical to a full ipv4Checksum recompute: both reduce the
// header sum modulo 0xffff, and since a real header's sum is never zero
// (the version/IHL word alone is 0x45xx), the full recompute always
// picks the 0xffff representative of residue zero — the guard below
// makes the incremental path pick the same one.
func ipv4Incremental(stored uint16, delta uint32) uint16 {
	sum := uint32(^stored) + delta
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if sum == 0 {
		sum = 0xffff
	}
	return ^uint16(sum)
}

// EncodeUDP writes an 8-byte UDP header (checksum left zero, as
// permitted for IPv4 and typical for GTP-U fast paths).
func EncodeUDP(b []byte, src, dst uint16, length uint16) error {
	if len(b) < UDPLen {
		return fmt.Errorf("pkt: udp needs %d bytes, have %d", UDPLen, len(b))
	}
	binary.BigEndian.PutUint16(b[0:2], src)
	binary.BigEndian.PutUint16(b[2:4], dst)
	binary.BigEndian.PutUint16(b[4:6], length)
	binary.BigEndian.PutUint16(b[6:8], 0)
	return nil
}

// EncodeTCPPorts writes just the port fields of a TCP header; the NFs
// only rewrite ports, so the remaining fields are caller-provided bytes.
func EncodeTCPPorts(b []byte, src, dst uint16) error {
	if len(b) < 4 {
		return fmt.Errorf("pkt: tcp ports need 4 bytes, have %d", len(b))
	}
	binary.BigEndian.PutUint16(b[0:2], src)
	binary.BigEndian.PutUint16(b[2:4], dst)
	return nil
}

// GTPUHeader is the fixed part of a GTP-U header.
type GTPUHeader struct {
	// MsgType is 0xFF (G-PDU) for user traffic.
	MsgType uint8
	// Length is the payload length following the 8-byte header.
	Length uint16
	// TEID is the tunnel endpoint id.
	TEID uint32
}

// EncodeGTPU writes an 8-byte GTP-U header at b[0:8].
func EncodeGTPU(b []byte, h GTPUHeader) error {
	if len(b) < GTPULen {
		return fmt.Errorf("pkt: gtpu needs %d bytes, have %d", GTPULen, len(b))
	}
	b[0] = 0x30 // version 1, PT=1
	b[1] = h.MsgType
	binary.BigEndian.PutUint16(b[2:4], h.Length)
	binary.BigEndian.PutUint32(b[4:8], h.TEID)
	return nil
}

// DecodeGTPU reads an 8-byte GTP-U header.
func DecodeGTPU(b []byte) (GTPUHeader, error) {
	if len(b) < GTPULen {
		return GTPUHeader{}, fmt.Errorf("pkt: gtpu needs %d bytes, have %d", GTPULen, len(b))
	}
	if b[0]>>5 != 1 {
		return GTPUHeader{}, fmt.Errorf("pkt: not GTPv1 (version %d)", b[0]>>5)
	}
	return GTPUHeader{
		MsgType: b[1],
		Length:  binary.BigEndian.Uint16(b[2:4]),
		TEID:    binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

// Parse decodes the Ethernet/IPv4/transport chain of p.Data into
// p.Tuple. It tolerates truncated payloads but requires full headers.
func (p *Packet) Parse() error {
	b := p.Data
	if len(b) < EthLen+IPv4Len {
		return fmt.Errorf("pkt: frame too short to parse: %d bytes", len(b))
	}
	if et := binary.BigEndian.Uint16(b[12:14]); et != EtherTypeIPv4 {
		return fmt.Errorf("pkt: unsupported ethertype %#x", et)
	}
	ip, err := DecodeIPv4(b[EthLen:])
	if err != nil {
		return fmt.Errorf("pkt: parse: %w", err)
	}
	p.Tuple = FiveTuple{SrcIP: ip.Src, DstIP: ip.Dst, Proto: ip.Proto}
	l4 := b[EthLen+IPv4Len:]
	switch ip.Proto {
	case ProtoTCP, ProtoUDP:
		if len(l4) < 4 {
			return fmt.Errorf("pkt: transport header truncated")
		}
		p.Tuple.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.Tuple.DstPort = binary.BigEndian.Uint16(l4[2:4])
	default:
		// Other protocols carry no ports; the tuple still identifies
		// the flow by addresses and protocol.
	}
	return nil
}

// RewriteNAT rewrites the source address and port in place (SNAT) and
// refreshes the IPv4 checksum. The packet must have been built by the
// traffic generators (Ethernet+IPv4+TCP/UDP).
func (p *Packet) RewriteNAT(newIP uint32, newPort uint16) error {
	b := p.Data
	if len(b) < EthLen+IPv4Len+4 {
		return fmt.Errorf("pkt: frame too short for NAT rewrite")
	}
	delta := uint32(^binary.BigEndian.Uint16(b[EthLen+12:EthLen+14])) +
		uint32(^binary.BigEndian.Uint16(b[EthLen+14:EthLen+16])) +
		(newIP >> 16) + (newIP & 0xffff)
	stored := binary.BigEndian.Uint16(b[EthLen+10 : EthLen+12])
	binary.BigEndian.PutUint32(b[EthLen+12:EthLen+16], newIP)
	binary.BigEndian.PutUint16(b[EthLen+10:EthLen+12], ipv4Incremental(stored, delta))
	binary.BigEndian.PutUint16(b[EthLen+IPv4Len:EthLen+IPv4Len+2], newPort)
	p.Tuple.SrcIP = newIP
	p.Tuple.SrcPort = newPort
	return nil
}

// DecTTL decrements the IPv4 TTL in place, refreshing the checksum, and
// reports whether the packet is still forwardable.
func (p *Packet) DecTTL() (bool, error) {
	b := p.Data
	if len(b) < EthLen+IPv4Len {
		return false, fmt.Errorf("pkt: frame too short for TTL update")
	}
	ttl := b[EthLen+8]
	if ttl <= 1 {
		return false, nil
	}
	old := uint16(ttl)<<8 | uint16(b[EthLen+9])
	b[EthLen+8] = ttl - 1
	delta := uint32(^old) + uint32(uint16(ttl-1)<<8|uint16(b[EthLen+9]))
	stored := binary.BigEndian.Uint16(b[EthLen+10 : EthLen+12])
	binary.BigEndian.PutUint16(b[EthLen+10:EthLen+12], ipv4Incremental(stored, delta))
	return true, nil
}
