// Package pkt defines the packet representation shared by the traffic
// generators, the NF model, and the runtimes, together with wire-format
// codecs for the headers the reproduced network functions manipulate
// (Ethernet, IPv4, UDP, TCP, GTP-U).
//
// A Packet couples real header bytes (so NF actions parse and rewrite
// genuine wire formats) with a simulated buffer address (so every header
// access is charged to the cache hierarchy). Packet buffers are recycled
// through a ring of fixed mbuf-style slots per core, mirroring a DPDK
// rx ring, which is what gives packet state its realistic cache
// behaviour: a slot's lines are warm immediately after receive and decay
// as the ring wraps.
package pkt

import "fmt"

// FiveTuple is the classic flow key.
type FiveTuple struct {
	// SrcIP and DstIP are IPv4 addresses in host byte order.
	SrcIP, DstIP uint32
	// SrcPort and DstPort are transport ports.
	SrcPort, DstPort uint16
	// Proto is the IP protocol number (6 TCP, 17 UDP).
	Proto uint8
}

// Hash returns a 64-bit mix of the tuple suitable for flow tables and
// RSS-style core steering. It is a Fibonacci-style multiplicative hash
// over the packed tuple; deterministic across runs.
func (t FiveTuple) Hash() uint64 {
	h := uint64(t.SrcIP)<<32 | uint64(t.DstIP)
	h ^= uint64(t.SrcPort)<<48 | uint64(t.DstPort)<<32 | uint64(t.Proto)
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 32
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 29
	return h
}

// String renders the tuple for logs.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d",
		ipString(t.SrcIP), t.SrcPort, ipString(t.DstIP), t.DstPort, t.Proto)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Packet is one frame in flight through an NF program.
type Packet struct {
	// Addr is the simulated address of the packet buffer (mbuf slot);
	// header accesses are charged against it.
	Addr uint64
	// Data holds the frame bytes starting at the Ethernet header.
	Data []byte
	// WireLen is the on-the-wire length in bytes used for throughput
	// accounting; it may exceed len(Data) when payload bytes are elided.
	WireLen int
	// Tuple is the parsed five-tuple (valid after Parse).
	Tuple FiveTuple
	// TEID is the GTP-U tunnel id for encapsulated uplink packets.
	TEID uint32
	// UE identifies the subscriber for control-plane (AMF) messages.
	UE uint32
	// MsgType distinguishes control-plane message kinds (NAS procedures).
	MsgType uint8
}

// Bits returns the wire length in bits, for Gbps computations.
func (p *Packet) Bits() float64 { return float64(p.WireLen) * 8 }

// Reset clears per-trip parse results while keeping the buffer.
func (p *Packet) Reset() {
	p.Tuple = FiveTuple{}
	p.TEID = 0
	p.UE = 0
	p.MsgType = 0
}

// Ring is a fixed set of recycled packet buffer slots standing in for a
// NIC rx descriptor ring. Slot returns the simulated address for the
// i-th received packet; consecutive packets use consecutive slots and
// the ring wraps, so buffer lines are reused on the ring period exactly
// as a poll-mode driver would.
type Ring struct {
	base    uint64
	slotLen uint64
	slots   uint64
}

// NewRing builds a ring of n slots of slotLen bytes starting at base.
// slotLen is rounded up to a cache line.
func NewRing(base uint64, slotLen uint64, n int) (*Ring, error) {
	if n <= 0 || slotLen == 0 {
		return nil, fmt.Errorf("pkt: ring needs positive slots and slot length")
	}
	const line = 64
	return &Ring{
		base:    base,
		slotLen: (slotLen + line - 1) &^ (line - 1),
		slots:   uint64(n),
	}, nil
}

// Slot returns the address of the buffer used by the seq-th packet.
func (r *Ring) Slot(seq uint64) uint64 {
	return r.base + (seq%r.slots)*r.slotLen
}

// Span returns the total address span of the ring.
func (r *Ring) Span() uint64 { return r.slotLen * r.slots }

// SlotLen returns the padded length of one slot.
func (r *Ring) SlotLen() uint64 { return r.slotLen }
