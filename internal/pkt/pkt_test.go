package pkt

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func buildUDPFrame(t *testing.T, tuple FiveTuple, payload int) []byte {
	t.Helper()
	total := EthLen + IPv4Len + UDPLen + payload
	b := make([]byte, total)
	if err := EncodeEthernet(b, [6]byte{1, 2, 3, 4, 5, 6}, [6]byte{7, 8, 9, 10, 11, 12}, EtherTypeIPv4); err != nil {
		t.Fatal(err)
	}
	if err := EncodeIPv4(b[EthLen:], IPv4Header{
		TotalLen: uint16(IPv4Len + UDPLen + payload),
		TTL:      64,
		Proto:    ProtoUDP,
		Src:      tuple.SrcIP,
		Dst:      tuple.DstIP,
	}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeUDP(b[EthLen+IPv4Len:], tuple.SrcPort, tuple.DstPort, uint16(UDPLen+payload)); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseRoundTrip(t *testing.T) {
	tuple := FiveTuple{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: ProtoUDP}
	p := &Packet{Data: buildUDPFrame(t, tuple, 10), WireLen: 64}
	if err := p.Parse(); err != nil {
		t.Fatal(err)
	}
	if p.Tuple != tuple {
		t.Fatalf("parsed tuple %+v, want %+v", p.Tuple, tuple)
	}
}

func TestParseErrors(t *testing.T) {
	p := &Packet{Data: make([]byte, 10)}
	if err := p.Parse(); err == nil {
		t.Fatal("short frame parsed")
	}
	b := buildUDPFrame(t, FiveTuple{Proto: ProtoUDP}, 0)
	binary.BigEndian.PutUint16(b[12:14], 0x86dd) // IPv6 ethertype
	p = &Packet{Data: b}
	if err := p.Parse(); err == nil {
		t.Fatal("non-IPv4 frame parsed")
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	b := make([]byte, IPv4Len)
	h := IPv4Header{TotalLen: 100, TTL: 64, Proto: ProtoTCP, Src: 0x01020304, Dst: 0x05060708}
	if err := EncodeIPv4(b, h); err != nil {
		t.Fatal(err)
	}
	// Recomputing over the header with its checksum zeroed must
	// reproduce the stored value.
	stored := binary.BigEndian.Uint16(b[10:12])
	if got := ipv4Checksum(b); got != stored {
		t.Fatalf("checksum mismatch: stored %#x computed %#x", stored, got)
	}
	got, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("decode = %+v, want %+v", got, h)
	}
}

func TestDecodeIPv4Errors(t *testing.T) {
	if _, err := DecodeIPv4(make([]byte, 5)); err == nil {
		t.Fatal("short header decoded")
	}
	b := make([]byte, IPv4Len)
	b[0] = 0x65 // version 6
	if _, err := DecodeIPv4(b); err == nil {
		t.Fatal("wrong version decoded")
	}
}

func TestGTPURoundTrip(t *testing.T) {
	b := make([]byte, GTPULen)
	h := GTPUHeader{MsgType: 0xFF, Length: 1400, TEID: 0xdeadbeef}
	if err := EncodeGTPU(b, h); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGTPU(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("gtpu round trip = %+v, want %+v", got, h)
	}
	if _, err := DecodeGTPU(b[:4]); err == nil {
		t.Fatal("short gtpu decoded")
	}
	b[0] = 0
	if _, err := DecodeGTPU(b); err == nil {
		t.Fatal("wrong gtp version decoded")
	}
}

func TestEncodeShortBuffers(t *testing.T) {
	short := make([]byte, 2)
	if err := EncodeEthernet(short, [6]byte{}, [6]byte{}, 0); err == nil {
		t.Fatal("short ethernet encode succeeded")
	}
	if err := EncodeIPv4(short, IPv4Header{}); err == nil {
		t.Fatal("short ipv4 encode succeeded")
	}
	if err := EncodeUDP(short, 0, 0, 0); err == nil {
		t.Fatal("short udp encode succeeded")
	}
	if err := EncodeGTPU(short, GTPUHeader{}); err == nil {
		t.Fatal("short gtpu encode succeeded")
	}
	if err := EncodeTCPPorts(short, 0, 0); err == nil {
		t.Fatal("short tcp encode succeeded")
	}
}

func TestRewriteNAT(t *testing.T) {
	tuple := FiveTuple{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: ProtoUDP}
	p := &Packet{Data: buildUDPFrame(t, tuple, 0)}
	if err := p.Parse(); err != nil {
		t.Fatal(err)
	}
	if err := p.RewriteNAT(0x05050505, 40000); err != nil {
		t.Fatal(err)
	}
	// Re-parse from the wire and confirm the rewrite landed.
	q := &Packet{Data: p.Data}
	if err := q.Parse(); err != nil {
		t.Fatal(err)
	}
	if q.Tuple.SrcIP != 0x05050505 || q.Tuple.SrcPort != 40000 {
		t.Fatalf("rewritten tuple = %+v", q.Tuple)
	}
	// Checksum must still verify.
	hdr := p.Data[EthLen : EthLen+IPv4Len]
	if got := ipv4Checksum(hdr); got != binary.BigEndian.Uint16(hdr[10:12]) {
		t.Fatal("checksum stale after NAT rewrite")
	}
	bad := &Packet{Data: make([]byte, 8)}
	if err := bad.RewriteNAT(1, 1); err == nil {
		t.Fatal("short frame rewrite succeeded")
	}
}

func TestDecTTL(t *testing.T) {
	p := &Packet{Data: buildUDPFrame(t, FiveTuple{Proto: ProtoUDP}, 0)}
	ok, err := p.DecTTL()
	if err != nil || !ok {
		t.Fatalf("DecTTL = %v, %v", ok, err)
	}
	if p.Data[EthLen+8] != 63 {
		t.Fatalf("TTL = %d, want 63", p.Data[EthLen+8])
	}
	p.Data[EthLen+8] = 1
	ok, err = p.DecTTL()
	if err != nil || ok {
		t.Fatalf("expired TTL: DecTTL = %v, %v", ok, err)
	}
	bad := &Packet{Data: make([]byte, 4)}
	if _, err := bad.DecTTL(); err == nil {
		t.Fatal("short frame TTL update succeeded")
	}
}

func TestPacketResetAndBits(t *testing.T) {
	p := &Packet{WireLen: 64, TEID: 7, UE: 9, MsgType: 3, Tuple: FiveTuple{SrcPort: 1}}
	if p.Bits() != 512 {
		t.Fatalf("Bits = %v", p.Bits())
	}
	p.Reset()
	if p.TEID != 0 || p.UE != 0 || p.MsgType != 0 || p.Tuple != (FiveTuple{}) {
		t.Fatalf("Reset left state: %+v", p)
	}
}

func TestRing(t *testing.T) {
	r, err := NewRing(0x10000, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.SlotLen()%64 != 0 {
		t.Fatalf("slot len %d not line aligned", r.SlotLen())
	}
	if r.Slot(0) != 0x10000 {
		t.Fatalf("Slot(0) = %#x", r.Slot(0))
	}
	if r.Slot(4) != r.Slot(0) || r.Slot(5) != r.Slot(1) {
		t.Fatal("ring does not wrap")
	}
	if r.Span() != r.SlotLen()*4 {
		t.Fatalf("Span = %d", r.Span())
	}
	if _, err := NewRing(0, 0, 4); err == nil {
		t.Fatal("zero slot length accepted")
	}
	if _, err := NewRing(0, 64, 0); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestFiveTupleString(t *testing.T) {
	tt := FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1, DstPort: 2, Proto: 17}
	if got, want := tt.String(), "10.0.0.1:1->10.0.0.2:2/17"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// Property: Hash is deterministic and spreads distinct tuples.
func TestFiveTupleHashProperty(t *testing.T) {
	prop := func(a, b FiveTuple) bool {
		if a.Hash() != a.Hash() {
			return false
		}
		if a == b {
			return a.Hash() == b.Hash()
		}
		// Not a strict requirement (collisions exist) but with random
		// 13-byte tuples a collision in 64 bits is vanishingly unlikely;
		// treat one as failure so regressions in mixing are caught.
		return a.Hash() != b.Hash()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode→parse recovers arbitrary five-tuples.
func TestParseProperty(t *testing.T) {
	prop := func(src, dst uint32, sp, dp uint16, tcp bool) bool {
		tuple := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: ProtoUDP}
		if tcp {
			tuple.Proto = ProtoTCP
		}
		total := EthLen + IPv4Len + UDPLen
		b := make([]byte, total)
		if err := EncodeEthernet(b, [6]byte{}, [6]byte{}, EtherTypeIPv4); err != nil {
			return false
		}
		if err := EncodeIPv4(b[EthLen:], IPv4Header{TotalLen: uint16(total - EthLen), TTL: 64, Proto: tuple.Proto, Src: src, Dst: dst}); err != nil {
			return false
		}
		if err := EncodeUDP(b[EthLen+IPv4Len:], sp, dp, UDPLen); err != nil {
			return false
		}
		p := &Packet{Data: b}
		if err := p.Parse(); err != nil {
			return false
		}
		return p.Tuple == tuple
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalChecksumMatchesRecompute drives randomized NAT and TTL
// rewrites and asserts the incrementally-updated checksum is
// byte-identical to a full recompute of the edited header.
func TestIncrementalChecksumMatchesRecompute(t *testing.T) {
	prop := func(srcIP, dstIP, newIP uint32, srcPort, dstPort, newPort uint16, ttl uint8) bool {
		tuple := FiveTuple{SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort, Proto: ProtoUDP}
		p := &Packet{Data: buildUDPFrame(t, tuple, 16)}
		if ttl != 0 {
			// Vary the TTL so the DecTTL word differs across cases.
			p.Data[EthLen+8] = ttl
			binary.BigEndian.PutUint16(p.Data[EthLen+10:EthLen+12], 0)
			binary.BigEndian.PutUint16(p.Data[EthLen+10:EthLen+12],
				ipv4Checksum(p.Data[EthLen:EthLen+IPv4Len]))
		}
		if err := p.RewriteNAT(newIP, newPort); err != nil {
			return false
		}
		hdr := p.Data[EthLen : EthLen+IPv4Len]
		if binary.BigEndian.Uint16(hdr[10:12]) != ipv4Checksum(hdr) {
			return false
		}
		if ok, err := p.DecTTL(); err != nil {
			return false
		} else if ok && binary.BigEndian.Uint16(hdr[10:12]) != ipv4Checksum(hdr) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
