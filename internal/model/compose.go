package model

import "fmt"

// This file implements the paper's formal composition of network
// functions (§IV-A): two NFs with compatible transition functions
// compose into NF_composite whose control-state set is the product
// CS₁ × CS₂. GuNFu's chains use the sequential special case (the
// second factor only starts after the first finishes — built by
// wiring exit transitions in the Builder); Compose implements the
// general product for NFs that genuinely interleave, e.g. a monitor
// that observes every event of a primary NF.

// ComposeMode selects how the product machine advances its factors.
type ComposeMode int

// The composition modes.
const (
	// ComposeSequential runs the first program to End, then the second
	// — the service-function-chain form, Δ_composite advancing one
	// factor at a time.
	ComposeSequential ComposeMode = iota + 1
	// ComposeLockstep advances both factors on every event both can
	// take; events only one factor handles advance that factor alone.
	// The composite finishes when both reach End. The fetching
	// function of a product state is the union of the factors'.
	ComposeLockstep
)

// Compose builds NF_composite from two compiled programs. Programs
// must have been built from Builders so their actions carry Fns.
//
// The product construction materializes only the reachable subset of
// CS₁ × CS₂ (the full product is exponential and mostly dead). For
// ComposeLockstep, a product state (a, b) executes a's action then b's
// action when both are live — the composite fetching function
// F(a,b) = (A_a ∪ A_b, S_a ∪ S_b) realized as action sequencing, which
// preserves each factor's semantics because factors share no state.
func Compose(name string, p1, p2 *Program, mode ComposeMode) (*Program, error) {
	switch mode {
	case ComposeSequential:
		return composeSequential(name, p1, p2)
	case ComposeLockstep:
		return composeLockstep(name, p1, p2)
	default:
		return nil, fmt.Errorf("model: unknown compose mode %d", mode)
	}
}

// composeSequential rebuilds p1 with its End transitions redirected to
// p2's start. Control states keep their names prefixed by program.
func composeSequential(name string, p1, p2 *Program) (*Program, error) {
	out := &Program{
		name:      name,
		tempLines: maxInt(p1.tempLines, p2.tempLines),
	}
	out.cs = append(out.cs, CSInfo{Name: EndName})

	// Merge event vocabularies.
	evMap1, evMap2 := make([]EventID, len(p1.events)), make([]EventID, len(p2.events))
	out.events = []string{"", "packet", "done"}
	intern := func(name string) EventID {
		for i, n := range out.events {
			if n == name {
				return EventID(i)
			}
		}
		out.events = append(out.events, name)
		return EventID(len(out.events) - 1)
	}
	for i, n := range p1.events {
		if i == 0 {
			continue
		}
		evMap1[i] = intern(n)
	}
	for i, n := range p2.events {
		if i == 0 {
			continue
		}
		evMap2[i] = intern(n)
	}

	// Copy actions (re-mapping Fn event returns is unnecessary: Fns
	// return their own program's EventIDs, so transition tables must be
	// indexed by the factor's ids — we keep per-CS remap tables).
	base2cs := CSID(len(p1.cs)) // p2's states follow p1's (minus both Ends)

	copyStates := func(p *Program, prefix string, evMap []EventID, endTarget CSID, csOffset CSID) error {
		for i := 1; i < len(p.cs); i++ {
			src := p.cs[i]
			info := CSInfo{
				Name:     prefix + src.Name,
				Module:   src.Module,
				Action:   ActionID(len(out.actions)),
				Reads:    src.Reads,
				Writes:   src.Writes,
				Prefetch: src.Prefetch,
				Bind:     src.Bind,
			}
			act := p.actions[src.Action]
			// Wrap the Fn so its returned (factor-local) event ids are
			// translated into the composite vocabulary.
			innerFn := act.Fn
			localMap := evMap
			act.Fn = func(e *Exec) EventID {
				ev := innerFn(e)
				if int(ev) < len(localMap) {
					return localMap[ev]
				}
				return ev
			}
			out.actions = append(out.actions, act)

			info.Next = make([]CSID, 0, len(out.events))
			// Remap transitions into composite ids.
			next := make([]CSID, len(out.events))
			for j := range next {
				next[j] = -1
			}
			for ev, tgt := range src.Next {
				if tgt < 0 {
					continue
				}
				cev := evMap[ev]
				switch {
				case tgt == CSEnd:
					next[cev] = endTarget
				default:
					next[cev] = tgt + csOffset
				}
			}
			info.Next = next
			out.cs = append(out.cs, info)
		}
		return nil
	}

	// p1's states occupy [1, len(p1.cs)-1]; its End becomes p2's start.
	p2Start := base2cs + p2.start - 1
	if err := copyStates(p1, p1.name+"/", evMap1, p2Start, 0); err != nil {
		return nil, err
	}
	if err := copyStates(p2, p2.name+"/", evMap2, CSEnd, base2cs-1); err != nil {
		return nil, err
	}

	out.start = p1.start
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("model: compose %s: %w", name, err)
	}
	out.CompilePlans()
	return out, nil
}

// lockKey identifies a product state.
type lockKey struct{ a, b CSID }

// composeLockstep materializes the reachable product CS₁ × CS₂.
func composeLockstep(name string, p1, p2 *Program) (*Program, error) {
	if len(p1.events) != len(p2.events) {
		// Lockstep requires a shared event vocabulary — the
		// "compatible transition functions" premise of §IV-A.
		return nil, fmt.Errorf("model: lockstep compose: incompatible event vocabularies (%d vs %d)",
			len(p1.events), len(p2.events))
	}
	for i := range p1.events {
		if p1.events[i] != p2.events[i] {
			return nil, fmt.Errorf("model: lockstep compose: event %d differs: %q vs %q",
				i, p1.events[i], p2.events[i])
		}
	}

	out := &Program{
		name:      name,
		events:    append([]string(nil), p1.events...),
		tempLines: maxInt(p1.tempLines, p2.tempLines),
	}
	out.cs = append(out.cs, CSInfo{Name: EndName})

	ids := map[lockKey]CSID{{CSEnd, CSEnd}: CSEnd}
	var build func(k lockKey) (CSID, error)
	build = func(k lockKey) (CSID, error) {
		if id, ok := ids[k]; ok {
			return id, nil
		}
		id := CSID(len(out.cs))
		ids[k] = id
		out.cs = append(out.cs, CSInfo{}) // reserve; filled below

		// The live factor(s) at this product state.
		var a, b *CSInfo
		if k.a != CSEnd {
			a = &p1.cs[k.a]
		}
		if k.b != CSEnd {
			b = &p2.cs[k.b]
		}

		info := CSInfo{Name: productName(p1, p2, k), Next: make([]CSID, len(out.events))}
		for i := range info.Next {
			info.Next[i] = -1
		}

		// Fetching function: union of spans; action: sequence of Fns.
		// The composite's transition for event e advances every live
		// factor that has Δ(cs, e) defined; an event neither factor
		// handles is invalid (as in any single program).
		var fns []ActionFunc
		var costs uint64
		switch {
		case a != nil && b != nil:
			info.Module = a.Module + "+" + b.Module
			info.Reads = append(append([]Span{}, a.Reads...), b.Reads...)
			info.Writes = append(append([]Span{}, a.Writes...), b.Writes...)
			info.Prefetch = append(append([]Span{}, a.Prefetch...), b.Prefetch...)
			info.Bind = a.Bind
			fa, fb := p1.actions[a.Action].Fn, p2.actions[b.Action].Fn
			costs = p1.actions[a.Action].Cost + p2.actions[b.Action].Cost
			// The primary's event drives the composite; the secondary
			// runs for its effects (the observer pattern — e.g. NM
			// mirroring a data path).
			fns = []ActionFunc{fb, fa}
		case a != nil:
			info.Module = a.Module
			info.Reads, info.Writes, info.Prefetch, info.Bind = a.Reads, a.Writes, a.Prefetch, a.Bind
			fns = []ActionFunc{p1.actions[a.Action].Fn}
			costs = p1.actions[a.Action].Cost
		case b != nil:
			info.Module = b.Module
			info.Reads, info.Writes, info.Prefetch, info.Bind = b.Reads, b.Writes, b.Prefetch, b.Bind
			fns = []ActionFunc{p2.actions[b.Action].Fn}
			costs = p2.actions[b.Action].Cost
		}

		last := len(fns) - 1
		out.actions = append(out.actions, Action{
			Name: info.Name,
			Kind: ActionData,
			Cost: costs,
			Fn: func(e *Exec) EventID {
				var ev EventID
				for i, fn := range fns {
					got := fn(e)
					if i == last {
						ev = got
					}
				}
				return ev
			},
		})
		info.Action = ActionID(len(out.actions) - 1)

		// Successors per event.
		for ev := 1; ev < len(out.events); ev++ {
			nk := k
			moved := false
			if a != nil && a.Next[ev] >= 0 {
				nk.a = a.Next[ev]
				moved = true
			}
			if b != nil && b.Next[ev] >= 0 {
				nk.b = b.Next[ev]
				moved = true
			}
			if !moved {
				continue
			}
			tgt, err := build(nk)
			if err != nil {
				return 0, err
			}
			info.Next[EventID(ev)] = tgt
		}
		out.cs[id] = info
		return id, nil
	}

	start, err := build(lockKey{p1.start, p2.start})
	if err != nil {
		return nil, err
	}
	out.start = start
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("model: compose %s: %w", name, err)
	}
	out.CompilePlans()
	return out, nil
}

func productName(p1, p2 *Program, k lockKey) string {
	n1, n2 := EndName, EndName
	if k.a != CSEnd {
		n1 = p1.cs[k.a].Name
	}
	if k.b != CSEnd {
		n2 = p2.cs[k.b].Name
	}
	return "(" + n1 + "," + n2 + ")"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
