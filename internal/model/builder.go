package model

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// EndName is the reserved control-state name for stream completion.
const EndName = "End"

// Layouts maps each state kind of a module to the record layout its
// field references resolve against.
type Layouts map[StateKind]*mem.Layout

// Builder assembles a Program from modules, control states, actions and
// transitions. It is the target both of the spec compiler (internal/
// compile) and of NFs constructed directly in Go.
type Builder struct {
	name    string
	events  []string
	modules map[string]*moduleDef
	order   []string // module insertion order, for deterministic builds
	csNames []string // "module.state", insertion order
	csDefs  map[string]*csDef
	trans   []transDef
	start   string
	err     error
}

type moduleDef struct {
	bind    Binding
	layouts Layouts
}

type csDef struct {
	module string
	action Action
}

type transDef struct {
	from, event, to string
}

// NewBuilder starts a program named name with the builtin events
// pre-interned.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		events:  []string{"", "packet", "done"},
		modules: make(map[string]*moduleDef),
		csDefs:  make(map[string]*csDef),
	}
}

// fail records the first error; later calls become no-ops so call sites
// can chain without per-call checks.
func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Event interns an event name and returns its id. Re-interning an
// existing name returns the existing id.
func (b *Builder) Event(name string) EventID {
	for i, n := range b.events {
		if n == name {
			return EventID(i)
		}
	}
	b.events = append(b.events, name)
	return EventID(len(b.events) - 1)
}

// AddModule declares a module with its state bindings and layouts.
func (b *Builder) AddModule(name string, bind Binding, layouts Layouts) {
	if name == "" || strings.Contains(name, ".") {
		b.fail(fmt.Errorf("model: invalid module name %q", name))
		return
	}
	if _, dup := b.modules[name]; dup {
		b.fail(fmt.Errorf("model: duplicate module %q", name))
		return
	}
	b.modules[name] = &moduleDef{bind: bind, layouts: layouts}
	b.order = append(b.order, name)
}

// AddState adds a control state to a module with its action.
func (b *Builder) AddState(module, state string, act Action) {
	if _, ok := b.modules[module]; !ok {
		b.fail(fmt.Errorf("model: AddState: unknown module %q", module))
		return
	}
	full := module + "." + state
	if full == EndName || state == "" {
		b.fail(fmt.Errorf("model: invalid state name %q", state))
		return
	}
	if _, dup := b.csDefs[full]; dup {
		b.fail(fmt.Errorf("model: duplicate control state %q", full))
		return
	}
	if act.Fn == nil {
		b.fail(fmt.Errorf("model: state %q: action %q has no Fn", full, act.Name))
		return
	}
	b.csDefs[full] = &csDef{module: module, action: act}
	b.csNames = append(b.csNames, full)
}

// AddTransition wires Δ(from, event) = to. State names are
// "module.state"; to may be EndName.
func (b *Builder) AddTransition(from, event, to string) {
	b.Event(event)
	b.trans = append(b.trans, transDef{from: from, event: event, to: to})
}

// SetStart marks the control state entered on the "packet" system event.
func (b *Builder) SetStart(name string) {
	b.start = name
}

// compileRefs lowers FieldRefs to coalesced spans against the module's
// layouts.
func (b *Builder) compileRefs(module string, refs []FieldRef) ([]Span, error) {
	mod := b.modules[module]
	spans := make([]Span, 0, len(refs))
	for _, ref := range refs {
		if ref.Explicit != nil {
			spans = append(spans, *ref.Explicit)
			continue
		}
		base, err := baseFor(ref.State)
		if err != nil {
			return nil, err
		}
		layout, ok := mod.layouts[ref.State]
		if !ok {
			return nil, fmt.Errorf("model: module %s has no %v layout", module, ref.State)
		}
		for _, f := range ref.Fields {
			off, size, err := layout.Span(f)
			if err != nil {
				return nil, fmt.Errorf("model: module %s %v state: %w", module, ref.State, err)
			}
			spans = append(spans, Span{Base: base, Off: off, Size: size})
		}
	}
	return coalesce(spans), nil
}

func baseFor(kind StateKind) (BaseKind, error) {
	switch kind {
	case KindPerFlow:
		return BasePerFlow, nil
	case KindSubFlow:
		return BaseSubFlow, nil
	case KindPacket:
		return BasePacket, nil
	case KindControl:
		return BaseControl, nil
	case KindTemp:
		return BaseTemp, nil
	default:
		return 0, fmt.Errorf("model: %v state has no layout-relative base; use Raw or Dynamic", kind)
	}
}

// coalesce sorts spans by (base, offset) and merges neighbours whose
// line coverage is contiguous, so prefetch plans touch the minimum
// number of distinct lines.
func coalesce(spans []Span) []Span {
	if len(spans) <= 1 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Base != spans[j].Base {
			return spans[i].Base < spans[j].Base
		}
		return spans[i].Off < spans[j].Off
	})
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		lastEnd := last.Off + last.Size
		// Merging never touches extra lines when the gap stays within
		// the line already covered by the previous span.
		lineEnd := (lastEnd + sim.LineBytes - 1) &^ uint64(sim.LineBytes-1)
		if s.Base == last.Base && s.Off <= lineEnd {
			if end := s.Off + s.Size; end > lastEnd {
				last.Size = end - last.Off
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// Build assembles and validates the Program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.start == "" {
		return nil, fmt.Errorf("model: program %s: no start state", b.name)
	}
	p := &Program{
		name:      b.name,
		events:    append([]string(nil), b.events...),
		tempLines: 1,
	}
	// CS 0 is End.
	p.cs = append(p.cs, CSInfo{Name: EndName})
	ids := map[string]CSID{EndName: CSEnd}

	actionIDs := make(map[string]ActionID)
	for _, full := range b.csNames {
		def := b.csDefs[full]
		mod := b.modules[def.module]

		reads, err := b.compileRefs(def.module, def.action.Reads)
		if err != nil {
			return nil, fmt.Errorf("model: state %s reads: %w", full, err)
		}
		writes, err := b.compileRefs(def.module, def.action.Writes)
		if err != nil {
			return nil, fmt.Errorf("model: state %s writes: %w", full, err)
		}

		aid, ok := actionIDs[def.module+"."+def.action.Name]
		if !ok {
			aid = ActionID(len(p.actions))
			p.actions = append(p.actions, def.action)
			actionIDs[def.module+"."+def.action.Name] = aid
		}

		ids[full] = CSID(len(p.cs))
		p.cs = append(p.cs, CSInfo{
			Name:     full,
			Module:   def.module,
			Action:   aid,
			Reads:    reads,
			Writes:   writes,
			Prefetch: coalesce(append(append([]Span{}, reads...), writes...)),
			Bind:     &mod.bind,
		})

		if tl, ok := mod.layouts[KindTemp]; ok && tl.Lines() > p.tempLines {
			p.tempLines = tl.Lines()
		}
	}

	// Transition tables.
	for i := range p.cs {
		p.cs[i].Next = make([]CSID, len(p.events))
		for j := range p.cs[i].Next {
			p.cs[i].Next[j] = -1
		}
	}
	for _, tr := range b.trans {
		from, ok := ids[tr.from]
		if !ok {
			return nil, fmt.Errorf("model: transition from unknown state %q", tr.from)
		}
		if from == CSEnd {
			return nil, fmt.Errorf("model: transition out of End state")
		}
		to, ok := ids[tr.to]
		if !ok {
			return nil, fmt.Errorf("model: transition to unknown state %q", tr.to)
		}
		ev := b.Event(tr.event) // already interned; lookup only
		if p.cs[from].Next[ev] != -1 && p.cs[from].Next[ev] != to {
			return nil, fmt.Errorf("model: conflicting transitions from %s on %q", tr.from, tr.event)
		}
		p.cs[from].Next[ev] = to
	}

	start, ok := ids[b.start]
	if !ok || start == CSEnd {
		return nil, fmt.Errorf("model: invalid start state %q", b.start)
	}
	p.start = start

	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.CompilePlans()
	return p, nil
}
