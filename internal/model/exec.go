package model

import (
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// Cursor is the resumable position of a stepwise matching structure —
// the state that lets a cuckoo lookup or tree descent be decomposed
// into one control state per memory touch, with the next touch's
// address known (and hence prefetchable) before the step executes.
type Cursor struct {
	// Stage is the structure-specific step counter.
	Stage int32
	// Addr is the simulated address the next step will access; spans
	// with BaseDynamic resolve against it.
	Addr uint64
	// Aux carries structure-specific values between steps (hashes,
	// node indexes).
	Aux [4]uint64
	// Idx is the match result (pool entry index) once found.
	Idx int32
	// Ok reports whether the match succeeded.
	Ok bool
}

// Reset clears the cursor for the next lookup.
func (c *Cursor) Reset() {
	*c = Cursor{Idx: -1}
}

// Exec is the execution context one function stream sees: the paper's
// NFTask payload (Figure 9(a)) minus the scheduling fields, which live
// in the runtimes. It carries references to every NFState the stream's
// actions access, plus the temporaries that persist across the actions
// of one packet.
//
// Exec is a concrete struct rather than an interface so that the
// per-action dispatch in the hot loop stays allocation- and
// devirtualization-free.
type Exec struct {
	// Core is the simulated core all accesses are charged to.
	Core *sim.Core
	// Pkt is the packet buffer reference (zero-copy: set on receive).
	Pkt *pkt.Packet
	// FlowIdx is the per-flow match result: an entry index into the
	// module's per-flow pool, or -1 before matching.
	FlowIdx int32
	// SubIdx is the sub-flow match result (e.g. the matched PDR).
	SubIdx int32
	// Key and Key2 stage match keys between get_key and hash steps.
	Key, Key2 uint64
	// Temp is word-sized scratch storage allocated by the compiler from
	// the action implementations' temporary variables.
	Temp [8]uint64
	// Cur is the stepwise matching cursor.
	Cur Cursor
	// TempAddr is the simulated address of this task's scratch region
	// (part of the NFTask structure itself).
	TempAddr uint64
	// CS is the current control state.
	CS CSID
	// Seq is the packet sequence number within the current run.
	Seq uint64
	// AccessCycles accumulates cycles spent charging declared state
	// accesses, for the paper's state-access-time measurements (EXP B).
	AccessCycles uint64
	// Prefetched is the P-state from the paper's cache management: true
	// when the current CS's spans have been prefetched or verified
	// resident.
	Prefetched bool
	// WakeAt is the fill-clock wakeup stamp EnsurePrefetched records
	// when it issues fetches: the max MSHR ready-cycle of the issued
	// lines. While Core.Now() < WakeAt and WakeEpoch still equals the
	// core's eviction epoch, the task's plan lines cannot have become
	// resident-and-then-evicted, so a scheduler revisit may skip the
	// residency walk without changing any simulated event (the
	// authoritative PlanResidency pass before Step re-proves it). Zero
	// when no fill is outstanding or stamps are disabled. The rt
	// wakeup scheduler parks a missed task on this stamp and does not
	// revisit it before the fill clock passes (rt.SchedulerWakeup).
	WakeAt uint64
	// WakeEpoch is the core's eviction epoch at stamp time — the
	// stamp's validity horizon: any L1 or outer eviction moves the
	// epoch and voids WakeAt.
	WakeEpoch uint64
	// Parked marks the task as held in a scheduler's pending structure
	// (unlinked from the run ring, waiting on WakeAt). Owned by the
	// runtime; Exec only clears it on stream reset.
	Parked bool
	// Reprobed limits the epoch-void fallback: when a parked task wakes
	// under a moved eviction epoch the scheduler forces one real
	// residency re-probe (clearing Prefetched) and sets this flag, so a
	// task thrashing against other streams' evictions re-probes at most
	// once per park cycle and progress is guaranteed. Cleared by the
	// scheduler when the action step finally executes.
	Reprobed bool
	// Done reports stream completion (CS reached End).
	Done bool
	// bases is the compiled executors' base-table scratch (see
	// plan.go). It lives here so each phase fills only the entries its
	// mask names instead of zeroing a fresh table: entry pbStatic is
	// never written and stays zero, and stale entries are never read
	// because every op's base index is covered by its phase's mask.
	bases [8]uint64
}

// ResetStream prepares the context for a new packet at the program's
// start state.
func (e *Exec) ResetStream(p *pkt.Packet, start CSID, seq uint64) {
	e.Pkt = p
	e.FlowIdx = -1
	e.SubIdx = -1
	e.Key = 0
	e.Key2 = 0
	e.Cur.Reset()
	e.CS = start
	e.Seq = seq
	e.Prefetched = false
	e.WakeAt = 0
	e.WakeEpoch = 0
	e.Parked = false
	e.Reprobed = false
	e.Done = false
}
