package model_test

// Differential replay: the compiled step-plan executor must drive the
// simulated core with exactly the access sequence the interpreted
// reference executor issues. This harness generates randomized programs
// — random state graphs, random declared spans over every base kind,
// aligned and unaligned pools — runs each stream through both executors
// on separate cores with the access log attached, and asserts the
// (addr, size, kind, cycle) sequences, the PMU counters, the clocks and
// the access-cycle accounting are identical.

import (
	"math/rand"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// diffPrograms is the number of randomized programs replayed. The
// acceptance bar for the harness is at least 100.
const diffPrograms = 128

// diffWorld is one generated program plus the shared simulated layout
// both executors resolve against.
type diffWorld struct {
	prog     *model.Program
	perFlow  *mem.Pool
	subFlow  *mem.Pool
	tempAddr uint64
	pktAddr  uint64
	dynBase  uint64
	dynSize  uint64
}

// diffResult is everything one executor side produced.
type diffResult struct {
	log          []sim.MemAccess
	ctr          sim.Counters
	clock        uint64
	accessCycles uint64
}

// randSpan draws a declared span for one base kind, sized to stay inside
// that base's backing storage and to sometimes straddle line boundaries.
func randSpan(rng *rand.Rand, base model.BaseKind, limit uint64) model.FieldRef {
	off := uint64(rng.Intn(int(limit)))
	max := limit - off
	if max > 96 {
		max = 96
	}
	size := 1 + uint64(rng.Intn(int(max)))
	return model.FieldRef{Explicit: &model.Span{Base: base, Off: off, Size: size}}
}

// buildRandomProgram generates one program over a fresh address space.
// Pool entry sizes are drawn from aligned and unaligned choices so the
// plan compiler's pre-split and span-fallback lowerings are both
// exercised.
func buildRandomProgram(t *testing.T, rng *rand.Rand) *diffWorld {
	t.Helper()
	as := mem.NewAddressSpace()
	if rng.Intn(2) == 0 {
		// Skew every later reservation off line alignment.
		as.Reserve(uint64(8+rng.Intn(48)), 8)
	}
	entrySizes := []uint64{96, 128, 256}
	perFlow, err := mem.NewPool(as, "pf", entrySizes[rng.Intn(len(entrySizes))], 64)
	if err != nil {
		t.Fatal(err)
	}
	var subFlow *mem.Pool
	if rng.Intn(4) != 0 {
		subSizes := []uint64{48, 64, 128}
		subFlow, err = mem.NewPool(as, "sf", subSizes[rng.Intn(len(subSizes))], 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	control := mem.Region{Name: "ctl", Base: as.Reserve(512, uint64(8<<rng.Intn(4))), Size: 512}
	w := &diffWorld{
		perFlow:  perFlow,
		subFlow:  subFlow,
		tempAddr: as.Reserve(64, 64),
		pktAddr:  as.Reserve(2048, 64) + uint64(rng.Intn(3))*8,
		dynBase:  as.Reserve(4096, 64),
		dynSize:  4096,
	}

	bases := []struct {
		kind  model.BaseKind
		limit uint64
	}{
		{model.BasePerFlow, perFlow.EntrySize()},
		{model.BasePacket, 128},
		{model.BaseControl, control.Size},
		{model.BaseTemp, 64},
		{model.BaseDynamic, 256},
	}
	if subFlow != nil {
		bases = append(bases, struct {
			kind  model.BaseKind
			limit uint64
		}{model.BaseSubFlow, subFlow.EntrySize()})
	}
	randRefs := func(n int) []model.FieldRef {
		refs := make([]model.FieldRef, 0, n)
		for i := 0; i < rng.Intn(n+1); i++ {
			b := bases[rng.Intn(len(bases))]
			refs = append(refs, randSpan(rng, b.kind, b.limit))
		}
		return refs
	}

	b := model.NewBuilder("diff")
	b.AddModule("m", model.Binding{PerFlow: perFlow, SubFlow: subFlow, Control: control}, nil)
	e0 := b.Event("e0")
	e1 := b.Event("e1")
	nStates := 2 + rng.Intn(5)
	dynBase, dynSize := w.dynBase, w.dynSize
	for i := 0; i < nStates; i++ {
		stateIdx := uint64(i)
		b.AddState("m", stateName(i), model.Action{
			Name:   "a" + stateName(i),
			Kind:   model.ActionData,
			Cost:   uint64(rng.Intn(60)),
			Reads:  randRefs(3),
			Writes: randRefs(2),
			Fn: func(e *model.Exec) model.EventID {
				// Deterministic in Exec state only: both sides replay the
				// same visit sequence, so Temp/Seq/CS agree at every call.
				e.Temp[0]++
				e.Cur.Addr = dynBase + (e.Temp[0]*2654435761+e.Seq*97+stateIdx*131)%(dynSize-512)
				h := e.Temp[0]*0x9e3779b9 + e.Seq*31 + stateIdx*7
				if e.Temp[0] <= 32 && h%4 == 0 {
					return e0
				}
				return e1
			},
		})
	}
	for i := 0; i < nStates; i++ {
		// e1 always advances (guaranteeing termination once the action's
		// visit budget forces it); e0 jumps anywhere, loops included.
		next := model.EndName
		if i+1 < nStates {
			next = "m." + stateName(i+1)
		}
		b.AddTransition("m."+stateName(i), "e1", next)
		b.AddTransition("m."+stateName(i), "e0", "m."+stateName(rng.Intn(nStates)))
	}
	b.SetStart("m." + stateName(0))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w.prog = prog
	return w
}

func stateName(i int) string {
	return string(rune('A' + i))
}

// diffSide is one executor's entry points.
type diffSide struct {
	step     func(*model.Exec) error
	ensure   func(*model.Exec) bool
	resident func(*model.Exec) bool
	prefetch func(*model.Exec)
}

// replay runs the given number of packet streams through one executor
// side on a fresh core, logging every charged access. scan routes the
// core's lookups through the dense tag scans instead of the residency
// directory (the verification twin).
func replay(t *testing.T, w *diffWorld, s diffSide, packets int, scan bool) diffResult {
	return replayConfigured(t, w, s, packets, scan, nil)
}

// replayConfigured is replay with a core-configuration hook applied
// before the first packet — the twin tests use it to force-disable the
// wakeup stamps and directory memo, or to park the eviction epoch at
// the edge of wraparound.
func replayConfigured(t *testing.T, w *diffWorld, s diffSide, packets int, scan bool, configure func(*sim.Core)) diffResult {
	t.Helper()
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core.SetScanLookups(scan)
	if configure != nil {
		configure(core)
	}
	var res diffResult
	core.SetAccessLog(func(a sim.MemAccess) { res.log = append(res.log, a) })
	p := &pkt.Packet{Addr: w.pktAddr, Data: make([]byte, 128)}
	e := &model.Exec{Core: core, TempAddr: w.tempAddr}
	for seq := 0; seq < packets; seq++ {
		e.ResetStream(p, w.prog.Start(), uint64(seq))
		e.FlowIdx = int32(seq % w.perFlow.Count())
		if w.subFlow != nil {
			e.SubIdx = int32(seq % w.subFlow.Count())
		}
		e.Cur.Addr = w.dynBase
		e.Temp[0] = 0
		for visits := 0; !e.Done; visits++ {
			if visits > 4096 {
				t.Fatalf("stream did not terminate (program %s)", w.prog.Name())
			}
			if !e.Prefetched {
				// Alternate between the fused P-state visit and the split
				// resident/prefetch pair so both code paths are replayed.
				if (seq+visits)%2 == 0 {
					if !s.ensure(e) {
						core.TaskSwitch()
						continue
					}
				} else {
					if !s.resident(e) {
						s.prefetch(e)
						core.TaskSwitch()
						continue
					}
					e.Prefetched = true
				}
			}
			if err := s.step(e); err != nil {
				t.Fatalf("step: %v", err)
			}
			core.TaskSwitch()
		}
		res.accessCycles += e.AccessCycles
		e.AccessCycles = 0
	}
	res.ctr = core.Counters()
	res.clock = core.Now()
	return res
}

// sides returns the compiled and interpreted executor entry points for
// one generated program.
func sides(w *diffWorld) (compiled, interpreted diffSide) {
	compiled = diffSide{
		step:     w.prog.Step,
		ensure:   w.prog.EnsurePrefetched,
		resident: w.prog.ResidentCurrent,
		prefetch: w.prog.PrefetchCurrent,
	}
	interpreted = diffSide{
		step: w.prog.StepInterpreted,
		ensure: func(e *model.Exec) bool {
			// The reference expansion of EnsurePrefetched: residency
			// check, then (on a miss) the full prefetch issue. Either
			// way the P-state ends up set.
			if w.prog.ResidentCurrentInterpreted(e) {
				e.Prefetched = true
				return true
			}
			w.prog.PrefetchCurrentInterpreted(e)
			return false
		},
		resident: w.prog.ResidentCurrentInterpreted,
		prefetch: w.prog.PrefetchCurrentInterpreted,
	}
	return compiled, interpreted
}

// diffCompare asserts two replay results are bit-identical.
func diffCompare(t *testing.T, n int, label string, got, want diffResult) {
	t.Helper()
	if len(got.log) != len(want.log) {
		t.Fatalf("program %d: %d accesses %s vs %d reference", n, len(got.log), label, len(want.log))
	}
	for i := range want.log {
		if got.log[i] != want.log[i] {
			t.Fatalf("program %d access %d: %s %+v != reference %+v", n, i, label, got.log[i], want.log[i])
		}
	}
	if got.ctr != want.ctr {
		t.Fatalf("program %d counters: %s %+v != reference %+v", n, label, got.ctr, want.ctr)
	}
	if got.clock != want.clock {
		t.Fatalf("program %d clock: %s %d != reference %d", n, label, got.clock, want.clock)
	}
	if got.accessCycles != want.accessCycles {
		t.Fatalf("program %d access cycles: %s %d != reference %d", n, label, got.accessCycles, want.accessCycles)
	}
}

// TestDifferentialReplay replays randomized programs through the
// interpreted reference executor and the compiled plan executor and
// requires bit-identical access sequences, counters and clocks.
func TestDifferentialReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < diffPrograms; n++ {
		w := buildRandomProgram(t, rng)
		packets := 2 + rng.Intn(3)
		compiled, interpreted := sides(w)
		want := replay(t, w, interpreted, packets, false)
		diffCompare(t, n, "compiled", replay(t, w, compiled, packets, false), want)
	}
}

// TestDifferentialReplayScanTwin replays randomized programs with the
// core's lookups routed through the historical dense tag scans
// (SetScanLookups) and requires results bit-identical to the residency-
// directory path, for both executors. The directory is a host-side
// accelerator over the same simulated state; it must never change a
// charged access, a counter, or the clock.
func TestDifferentialReplayScanTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n < diffPrograms/2; n++ {
		w := buildRandomProgram(t, rng)
		packets := 2 + rng.Intn(3)
		compiled, interpreted := sides(w)
		want := replay(t, w, interpreted, packets, false)
		diffCompare(t, n, "interpreted/scan", replay(t, w, interpreted, packets, true), want)
		diffCompare(t, n, "compiled/scan", replay(t, w, compiled, packets, true), want)
	}
}

// TestDifferentialReplayWakeupTwin replays randomized programs with the
// fill-clock wakeup stamps and the directory probe memo force-disabled
// (the core falls back to the pre-stamp FirstNonResident/IssueFetch
// pair and raw directory walks) and requires results bit-identical to
// the default path. The stamps, the planned-issue verdict reuse and
// the memo are host-side accelerations only; they must never change a
// charged access, a counter, or the clock.
func TestDifferentialReplayWakeupTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	disable := func(c *sim.Core) {
		c.SetWakeupStamps(false)
		c.SetDirMemo(false)
	}
	for n := 0; n < diffPrograms/2; n++ {
		w := buildRandomProgram(t, rng)
		packets := 2 + rng.Intn(3)
		compiled, interpreted := sides(w)
		want := replay(t, w, interpreted, packets, false)
		diffCompare(t, n, "compiled/wakeup-on", replay(t, w, compiled, packets, false), want)
		diffCompare(t, n, "compiled/wakeup-off",
			replayConfigured(t, w, compiled, packets, false, disable), want)
		// Memo alone off, stamps on: the knobs must be independent.
		diffCompare(t, n, "compiled/memo-off",
			replayConfigured(t, w, compiled, packets, false, func(c *sim.Core) { c.SetDirMemo(false) }), want)
	}
}

// TestDifferentialReplayEpochWrap parks the eviction epoch at the edge
// of uint64 wraparound before replaying, so it wraps through zero
// mid-run. The epoch is a host-side validity horizon for wakeup stamps
// (and the tombstone provenance stamp); wrapping must not change any
// simulated event — and the wrapped run must still match a run whose
// epoch started at zero.
func TestDifferentialReplayEpochWrap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nearWrap := func(c *sim.Core) { c.SetEvictionEpoch(^uint64(0) - 3) }
	for n := 0; n < diffPrograms/4; n++ {
		w := buildRandomProgram(t, rng)
		packets := 2 + rng.Intn(3)
		compiled, interpreted := sides(w)
		want := replay(t, w, interpreted, packets, false)
		got := replayConfigured(t, w, compiled, packets, false, nearWrap)
		diffCompare(t, n, "compiled/epoch-wrap", got, want)
	}
}
