package model

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// buildCounter builds a one-module program with n chained states, each
// incrementing a counter cell, using the shared event vocabulary
// {packet, done, step}.
func buildCounter(t *testing.T, name string, n int, hits *[]string) *Program {
	t.Helper()
	b := NewBuilder(name)
	evStep := b.Event("step")
	b.AddModule("m", Binding{}, nil)
	for i := 0; i < n; i++ {
		label := name + "-" + string(rune('a'+i))
		state := "s" + string(rune('a'+i))
		last := i == n-1
		b.AddState("m", state, Action{
			Name: "act_" + state,
			Kind: ActionData,
			Cost: 1,
			Fn: func(e *Exec) EventID {
				*hits = append(*hits, label)
				if last {
					return EvDone
				}
				return evStep
			},
		})
	}
	for i := 0; i < n-1; i++ {
		b.AddTransition("m.s"+string(rune('a'+i)), "step", "m.s"+string(rune('a'+i+1)))
	}
	b.AddTransition("m.s"+string(rune('a'+n-1)), "done", EndName)
	b.SetStart("m.sa")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runComposite(t *testing.T, p *Program) {
	t.Helper()
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := &Exec{Core: core, TempAddr: 0x100}
	e.ResetStream(&pkt.Packet{Addr: 0x2000}, p.Start(), 0)
	for i := 0; !e.Done; i++ {
		if err := p.Step(e); err != nil {
			t.Fatal(err)
		}
		if i > 100 {
			t.Fatal("composite did not terminate")
		}
	}
}

func TestComposeSequential(t *testing.T) {
	var hits []string
	p1 := buildCounter(t, "first", 2, &hits)
	p2 := buildCounter(t, "second", 2, &hits)
	comp, err := Compose("chain", p1, p2, ComposeSequential)
	if err != nil {
		t.Fatal(err)
	}
	// 2 + 2 states + End.
	if comp.NumCS() != 5 {
		t.Fatalf("NumCS = %d, want 5", comp.NumCS())
	}
	runComposite(t, comp)
	want := []string{"first-a", "first-b", "second-a", "second-b"}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v", hits)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestComposeSequentialDistinctEventVocabularies(t *testing.T) {
	var hits []string
	p1 := buildCounter(t, "first", 2, &hits)

	// Second program uses a different custom event name.
	b := NewBuilder("second")
	evGo := b.Event("advance")
	b.AddModule("m", Binding{}, nil)
	b.AddState("m", "x", Action{Name: "x", Fn: func(e *Exec) EventID {
		hits = append(hits, "second-x")
		return evGo
	}})
	b.AddState("m", "y", Action{Name: "y", Fn: func(e *Exec) EventID {
		hits = append(hits, "second-y")
		return EvDone
	}})
	b.AddTransition("m.x", "advance", "m.y")
	b.AddTransition("m.y", "done", EndName)
	b.SetStart("m.x")
	p2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	comp, err := Compose("chain", p1, p2, ComposeSequential)
	if err != nil {
		t.Fatal(err)
	}
	runComposite(t, comp)
	if len(hits) != 4 || hits[3] != "second-y" {
		t.Fatalf("hits = %v", hits)
	}
}

func TestComposeLockstep(t *testing.T) {
	var hits []string
	p1 := buildCounter(t, "primary", 3, &hits)
	p2 := buildCounter(t, "observer", 3, &hits)
	comp, err := Compose("prod", p1, p2, ComposeLockstep)
	if err != nil {
		t.Fatal(err)
	}
	runComposite(t, comp)
	// Lockstep: both factors advance on each shared event; the
	// observer's action runs before the primary's at each product state.
	want := []string{
		"observer-a", "primary-a",
		"observer-b", "primary-b",
		"observer-c", "primary-c",
	}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v", hits)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestComposeLockstepUnbalanced(t *testing.T) {
	var hits []string
	p1 := buildCounter(t, "long", 3, &hits)
	p2 := buildCounter(t, "short", 2, &hits)
	comp, err := Compose("prod", p1, p2, ComposeLockstep)
	if err != nil {
		t.Fatal(err)
	}
	runComposite(t, comp)
	// short finishes after two events ("step" then its own "done"...).
	// The primary's events drive transitions; after short ends, long
	// continues alone.
	if len(hits) < 5 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[len(hits)-1] != "long-c" {
		t.Fatalf("last hit = %v", hits)
	}
}

func TestComposeLockstepIncompatibleVocabularies(t *testing.T) {
	var hits []string
	p1 := buildCounter(t, "a", 2, &hits)
	b := NewBuilder("b")
	b.Event("weird")
	b.AddModule("m", Binding{}, nil)
	b.AddState("m", "s", Action{Name: "s", Fn: func(e *Exec) EventID { return EvDone }})
	b.AddTransition("m.s", "done", EndName)
	b.SetStart("m.s")
	p2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose("x", p1, p2, ComposeLockstep); err == nil {
		t.Fatal("incompatible vocabularies accepted")
	}
}

func TestComposeUnknownMode(t *testing.T) {
	var hits []string
	p := buildCounter(t, "a", 2, &hits)
	if _, err := Compose("x", p, p, ComposeMode(99)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestComposeSequentialChargesState(t *testing.T) {
	// Programs with real state spans must keep charging them after
	// composition.
	as := mem.NewAddressSpace()
	pool, err := mem.NewPool(as, "p", 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Program {
		b := NewBuilder(name)
		b.AddModule("m", Binding{PerFlow: pool}, nil)
		b.AddState("m", "s", Action{
			Name:  "s",
			Cost:  1,
			Reads: []FieldRef{Raw(KindPerFlow, BasePerFlow, 0, 8)},
			Fn:    func(e *Exec) EventID { return EvDone },
		})
		b.AddTransition("m.s", "done", EndName)
		b.SetStart("m.s")
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	comp, err := Compose("c", mk("one"), mk("two"), ComposeSequential)
	if err != nil {
		t.Fatal(err)
	}
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := &Exec{Core: core, TempAddr: 0x100}
	e.ResetStream(&pkt.Packet{Addr: 0x2000}, comp.Start(), 0)
	e.FlowIdx = 1
	for !e.Done {
		if err := comp.Step(e); err != nil {
			t.Fatal(err)
		}
	}
	if ctr := core.Counters(); ctr.Reads != 2 {
		t.Fatalf("composite charged %d reads, want 2", ctr.Reads)
	}
}
