package model

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// This file is the step-plan compiler: it lowers each CSInfo, once at
// program-build time, into a flat stepPlan the hot path executes without
// re-interpreting span tables. Three things are compiled away:
//
//   - Per-span base resolution. Resolve() runs a switch on the span's
//     BaseKind and (for pool bases) a bounds-checked pool lookup on
//     every access of every visit. The plan pre-splits spans by base:
//     each access becomes a (base-table index, pre-added offset) pair,
//     the per-phase base table is materialized once per phase (reads
//     resolve before the action, writes after — an action may rebind
//     FlowIdx or the cursor), and statically-resolvable bases (control
//     regions) are folded into the offset entirely.
//
//   - Prefetch line decomposition. Core.Prefetch(addr, size) re-derives
//     the covered lines on every issue. For spans whose base is provably
//     line-aligned at compile time (pools pad entries to the line grid;
//     control regions are line-aligned by reservation), the plan stores
//     the finished line list and issues Core.PrefetchLine per entry.
//
//   - Residency checks. ResidentCurrent's span loop becomes the same
//     pre-resolved line list probed through the core's exact L1 index.
//
// The lowering is a pure representation change: the simulated access
// sequence — every (addr, size, read/write/prefetch, cycle) the core is
// charged with — is byte-for-byte the sequence the interpreted executor
// issues. No access is deduplicated, reordered, split or merged. The
// differential-replay harness (plandiff_test.go) asserts this against
// randomized programs; the golden-counter tests in internal/exp pin it
// for the shipped NFs.

// Base-table indexes of a compiled access. pbStatic entries carry their
// full address in the offset (the table slot stays zero); the rest are
// filled per phase from the execution context.
const (
	pbStatic = iota
	pbPerFlow
	pbSubFlow
	pbPacket
	pbTemp
	pbDynamic
	pbCount
)

// stepPlan is one control state lowered for execution. Ops use the
// core's compiled-access types (sim.PlanOp, sim.FetchOp) so whole op
// lists execute core-side in one call per phase. The action's function
// and cost are copied in so a step never touches the action table, and
// all plans' op slices share two contiguous backing arrays (see
// CompilePlans) so walking a plan streams through memory.
type stepPlan struct {
	reads  []sim.PlanOp
	writes []sim.PlanOp
	fetch  []sim.FetchOp
	// readMask/writeMask/fetchMask say which base-table entries the
	// phase needs materialized (bit i = base index i).
	readMask  uint8
	writeMask uint8
	fetchMask uint8
	action    ActionID
	cost      uint64
	fn        ActionFunc
	// next aliases the CSInfo transition table.
	next []CSID
	bind *Binding
}

// CompilePlans (re)lowers every control state into its step plan. Build
// and Compose call it automatically; compiler passes that mutate a
// CSInfo's span sets after build (e.g. redundant-prefetch removal) must
// call it again, or the Program will keep executing the stale plans.
func (p *Program) CompilePlans() {
	plans := make([]stepPlan, len(p.cs))
	// All plans' ops live in two shared backing arrays, appended in CS
	// order, so consecutive steps walk contiguous memory instead of
	// per-CS allocations. Capacities are counted up front so the arrays
	// never reallocate under the subslices handed to the plans.
	nOps, nFetch := 0, 0
	for i := 1; i < len(p.cs); i++ {
		info := &p.cs[i]
		nOps += len(info.Reads) + len(info.Writes)
		nFetch += fetchLen(info.Prefetch, info.Bind)
	}
	allOps := make([]sim.PlanOp, 0, nOps)
	allFetch := make([]sim.FetchOp, 0, nFetch)
	for i := 1; i < len(p.cs); i++ {
		info := &p.cs[i]
		pl := &plans[i]
		pl.action = info.Action
		pl.cost = p.actions[info.Action].Cost
		pl.fn = p.actions[info.Action].Fn
		pl.next = info.Next
		pl.bind = info.Bind
		allOps, pl.reads, pl.readMask = lowerOps(allOps, info.Reads, info.Bind)
		allOps, pl.writes, pl.writeMask = lowerOps(allOps, info.Writes, info.Bind)
		allFetch, pl.fetch, pl.fetchMask = lowerFetch(allFetch, info.Prefetch, info.Bind)
	}
	p.plans = plans
}

// lowerBase maps a span onto its base-table index and pre-added offset.
func lowerBase(s Span, bind *Binding) (base uint8, off uint64) {
	switch s.Base {
	case BasePerFlow:
		return pbPerFlow, s.Off
	case BaseSubFlow:
		return pbSubFlow, s.Off
	case BasePacket:
		return pbPacket, s.Off
	case BaseControl:
		// Statically resolvable: fold the region base into the offset.
		return pbStatic, bind.Control.Base + s.Off
	case BaseTemp:
		return pbTemp, s.Off
	case BaseDynamic:
		return pbDynamic, s.Off
	default:
		// Defer the failure to execution time, where Resolve produces
		// the historical diagnostic.
		return pbStatic, 0
	}
}

// maskBit returns the base-table fill bit for an access. pbStatic needs
// no fill (bases[pbStatic] is always zero).
func maskBit(base uint8) uint8 {
	if base == pbStatic {
		return 0
	}
	return 1 << base
}

// lowerOps compiles a read or write span list, appending onto the
// shared backing array and returning it plus the capped subslice
// holding this list's ops.
func lowerOps(dst []sim.PlanOp, spans []Span, bind *Binding) ([]sim.PlanOp, []sim.PlanOp, uint8) {
	if len(spans) == 0 {
		return dst, nil, 0
	}
	start := len(dst)
	var mask uint8
	for _, s := range spans {
		base, off := lowerBase(s, bind)
		dst = append(dst, sim.PlanOp{Off: off, Size: s.Size, Base: base})
		mask |= maskBit(base)
	}
	return dst, dst[start:len(dst):len(dst)], mask
}

// alignedBase reports whether every address the base can resolve to is
// provably line-aligned at compile time, which is what licenses
// decomposing a span into pre-resolved lines: for aligned bases,
// (base+off)/Line == base/Line + off/Line, so the compile-time line
// walk enumerates exactly the lines Core.Prefetch would.
func alignedBase(base uint8, bind *Binding) bool {
	switch base {
	case pbStatic:
		return true // offsets are absolute; lines computed directly
	case pbPerFlow:
		return poolAligned(bind.PerFlow)
	case pbSubFlow:
		return poolAligned(bind.SubFlow)
	default:
		// Packet, temp and dynamic bases are runtime values with no
		// compile-time alignment guarantee.
		return false
	}
}

func poolAligned(p *mem.Pool) bool {
	return p != nil && p.Region().Base%sim.LineBytes == 0 && p.EntrySize()%sim.LineBytes == 0
}

// lowerFetch compiles a prefetch plan: aligned spans expand into their
// line lists (ascending, matching Core.Prefetch's walk), the rest stay
// span ops. Order across spans is preserved exactly. Ops append onto
// the shared backing array; the capped subslice holds this plan's ops.
func lowerFetch(dst []sim.FetchOp, spans []Span, bind *Binding) ([]sim.FetchOp, []sim.FetchOp, uint8) {
	if len(spans) == 0 {
		return dst, nil, 0
	}
	start := len(dst)
	var mask uint8
	for _, s := range spans {
		base, off := lowerBase(s, bind)
		mask |= maskBit(base)
		if s.Size == 0 || !alignedBase(base, bind) {
			dst = append(dst, sim.FetchOp{Off: off, Size: s.Size, Base: base})
			continue
		}
		first := off >> lineShift
		last := (off + s.Size - 1) >> lineShift
		for line := first; line <= last; line++ {
			dst = append(dst, sim.FetchOp{Off: line << lineShift, Base: base, Line: true})
		}
	}
	return dst, dst[start:len(dst):len(dst)], mask
}

// fetchLen counts the ops lowerFetch will emit for spans, for the
// backing-array capacity precompute.
func fetchLen(spans []Span, bind *Binding) int {
	n := 0
	for _, s := range spans {
		base, off := lowerBase(s, bind)
		if s.Size == 0 || !alignedBase(base, bind) {
			n++
			continue
		}
		n += int(((off+s.Size-1)>>lineShift)-(off>>lineShift)) + 1
	}
	return n
}

// lineShift is log2(sim.LineBytes).
const lineShift = 6

// planBases materializes the base table for one phase into the Exec's
// persistent scratch. Only the bases the phase's mask names are
// resolved, so a control state that never touches per-flow state never
// evaluates the (possibly still unmatched) flow index — the same
// laziness the per-span Resolve switch had. Entries outside the mask
// keep whatever a previous phase left (no zeroing): no op reads them,
// and the always-zero pbStatic entry is never written.
func planBases(e *Exec, bind *Binding, mask uint8) *[8]uint64 {
	bases := &e.bases
	if mask&(1<<pbPerFlow) != 0 {
		bases[pbPerFlow] = bind.PerFlow.AddrAt(e.FlowIdx)
	}
	if mask&(1<<pbSubFlow) != 0 {
		bases[pbSubFlow] = bind.SubFlow.AddrAt(e.SubIdx)
	}
	if mask&(1<<pbPacket) != 0 {
		bases[pbPacket] = e.Pkt.Addr
	}
	if mask&(1<<pbTemp) != 0 {
		bases[pbTemp] = e.TempAddr
	}
	if mask&(1<<pbDynamic) != 0 {
		bases[pbDynamic] = e.Cur.Addr
	}
	return bases
}

// stepCompiled executes one control state through its plan: charge the
// reads, run the action, charge the writes, take the transition —
// the same operation sequence as stepInterpreted, with address
// resolution reduced to one add per access and each phase's op list
// executed core-side in a single call. The base-table fills are
// spelled out inline (see planBases, kept in sync) because the
// materialization sits on the hottest loop in the repository and must
// not pay a call per phase.
func (p *Program) stepCompiled(e *Exec, pl *stepPlan) error {
	core := e.Core
	before := core.Now()
	if ops := pl.reads; len(ops) > 0 {
		bases := &e.bases
		m := pl.readMask
		bind := pl.bind
		if m&(1<<pbPerFlow) != 0 {
			bases[pbPerFlow] = bind.PerFlow.AddrAt(e.FlowIdx)
		}
		if m&(1<<pbSubFlow) != 0 {
			bases[pbSubFlow] = bind.SubFlow.AddrAt(e.SubIdx)
		}
		if m&(1<<pbPacket) != 0 {
			bases[pbPacket] = e.Pkt.Addr
		}
		if m&(1<<pbTemp) != 0 {
			bases[pbTemp] = e.TempAddr
		}
		if m&(1<<pbDynamic) != 0 {
			bases[pbDynamic] = e.Cur.Addr
		}
		core.ReadSpans(bases, ops)
	}
	afterReads := core.Now()

	core.Compute(pl.cost)
	ev := pl.fn(e)

	preWrites := core.Now()
	if ops := pl.writes; len(ops) > 0 {
		bases := &e.bases
		m := pl.writeMask
		bind := pl.bind
		if m&(1<<pbPerFlow) != 0 {
			bases[pbPerFlow] = bind.PerFlow.AddrAt(e.FlowIdx)
		}
		if m&(1<<pbSubFlow) != 0 {
			bases[pbSubFlow] = bind.SubFlow.AddrAt(e.SubIdx)
		}
		if m&(1<<pbPacket) != 0 {
			bases[pbPacket] = e.Pkt.Addr
		}
		if m&(1<<pbTemp) != 0 {
			bases[pbTemp] = e.TempAddr
		}
		if m&(1<<pbDynamic) != 0 {
			bases[pbDynamic] = e.Cur.Addr
		}
		core.WriteSpans(bases, ops)
	}
	e.AccessCycles += (afterReads - before) + (core.Now() - preWrites)

	if ev <= EvInvalid || int(ev) >= len(pl.next) {
		return p.stepEventErr(e, ev)
	}
	next := pl.next[ev]
	if next < 0 {
		return p.stepTransitionErr(e, ev)
	}
	e.CS = next
	e.Prefetched = false
	if next == CSEnd {
		e.Done = true
	}
	return nil
}

// prefetchCompiled issues the pre-resolved prefetch plan. The negative
// miss index tells IssueFetch the caller has no residency knowledge:
// every line takes the full probing path, exactly like PrefetchLine.
func (p *Program) prefetchCompiled(e *Exec, pl *stepPlan) {
	if len(pl.fetch) == 0 {
		return
	}
	e.Core.IssueFetch(planBases(e, pl.bind, pl.fetchMask), pl.fetch, -1)
}

// residentCompiled is the exact P-state check: every plan line probed
// through the core's L1 residency index.
func (p *Program) residentCompiled(e *Exec, pl *stepPlan) bool {
	if len(pl.fetch) == 0 {
		return true
	}
	return e.Core.FirstNonResident(planBases(e, pl.bind, pl.fetchMask), pl.fetch) < 0
}

// EnsurePrefetched fuses the scheduler's P-state maintenance visit: it
// verifies the current control state's plan lines are L1-resident and,
// when they are not, issues the full prefetch plan (all lines, resident
// or not — exactly what PrefetchCurrent does). It returns true when the
// task can execute immediately and false when the scheduler should
// switch away while the fills land. Either way the P-state is set.
//
// The fusion resolves the plan's base table once for both the check and
// the issue; the simulated sequence is identical to ResidentCurrent
// followed (on failure) by PrefetchCurrent, because residency probes
// charge nothing.
func (p *Program) EnsurePrefetched(e *Exec) bool {
	if e.CS == CSEnd {
		e.Prefetched = true
		return true
	}
	if p.plans == nil {
		// Hand-built program without compiled plans: take the unfused pair.
		if p.ResidentCurrent(e) {
			e.Prefetched = true
			return true
		}
		p.PrefetchCurrent(e)
		// The interpreted prefetch path has no planned issue and thus no
		// max-ready stamp; record an empty stamp under the current epoch
		// so a wakeup scheduler falls back to its conservative horizon
		// (the earliest in-flight MSHR) instead of trusting a stale
		// WakeAt from a previous control state.
		e.WakeAt = 0
		e.WakeEpoch = e.Core.EvictionEpoch()
		return false
	}
	pl := &p.plans[e.CS]
	e.Prefetched = true
	if len(pl.fetch) == 0 {
		return true
	}
	core := e.Core
	// Inline base fill — see stepCompiled for why.
	bases := &e.bases
	m := pl.fetchMask
	bind := pl.bind
	if m&(1<<pbPerFlow) != 0 {
		bases[pbPerFlow] = bind.PerFlow.AddrAt(e.FlowIdx)
	}
	if m&(1<<pbSubFlow) != 0 {
		bases[pbSubFlow] = bind.SubFlow.AddrAt(e.SubIdx)
	}
	if m&(1<<pbPacket) != 0 {
		bases[pbPacket] = e.Pkt.Addr
	}
	if m&(1<<pbTemp) != 0 {
		bases[pbTemp] = e.TempAddr
	}
	if m&(1<<pbDynamic) != 0 {
		bases[pbDynamic] = e.Cur.Addr
	}
	miss, resident := core.PlanResidency(bases, pl.fetch)
	if miss < 0 {
		return true
	}
	if core.Tracer() != nil {
		// Stamp prefetch events with the CS they are fetching for.
		core.SetCS(int32(e.CS))
	}
	// The issue reuses what the check just proved (see IssueFetchPlanned):
	// ops before miss are still resident, op miss is still absent, and
	// the recorded verdict mask answers every later op that no install
	// or eviction of this very issue has dirtied — the charged sequence
	// is identical to issuing the whole plan blind. The returned max
	// ready-cycle plus the core's eviction epoch form the task's wakeup
	// stamp: until the fill clock passes WakeAt with the epoch unmoved,
	// a scheduler revisit can skip the residency walk outright. The rt
	// wakeup scheduler consumes exactly this contract: it parks the
	// task until Core.Now() >= WakeAt, and on an epoch move falls back
	// to a real re-probe (clearing Prefetched) before stepping.
	e.WakeAt = core.IssueFetchPlanned(bases, pl.fetch, miss, resident)
	e.WakeEpoch = core.EvictionEpoch()
	return false
}

// stepEventErr builds the unknown-event diagnostic off the hot path,
// matching the interpreted executor's message exactly.
//
//go:noinline
func (p *Program) stepEventErr(e *Exec, ev EventID) error {
	info := &p.cs[e.CS]
	act := &p.actions[info.Action]
	return fmt.Errorf("model: %s: action %s returned unknown event %d", info.Name, act.Name, ev)
}

// stepTransitionErr builds the missing-transition diagnostic off the
// hot path, matching the interpreted executor's message exactly.
//
//go:noinline
func (p *Program) stepTransitionErr(e *Exec, ev EventID) error {
	info := &p.cs[e.CS]
	return fmt.Errorf("model: %s: no transition for event %q", info.Name, p.EventName(ev))
}
