package model_test

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// BenchmarkProgramStep measures the compiled step-plan executor on a
// representative three-state program (per-flow, packet and temp spans),
// host nanoseconds per control-state step. The simulated answers are
// pinned by the golden tests and the differential harness; only host
// speed may move here.
func BenchmarkProgramStep(b *testing.B) {
	as := mem.NewAddressSpace()
	perFlow, err := mem.NewPool(as, "pf", 128, 64)
	if err != nil {
		b.Fatal(err)
	}
	control := mem.Region{Name: "ctl", Base: as.Reserve(256, 64), Size: 256}

	bl := model.NewBuilder("bench")
	bl.AddModule("m", model.Binding{PerFlow: perFlow, Control: control}, nil)
	adv := bl.Event("adv")
	fn := func(e *model.Exec) model.EventID { return adv }
	span := func(base model.BaseKind, off, size uint64) model.FieldRef {
		return model.FieldRef{Explicit: &model.Span{Base: base, Off: off, Size: size}}
	}
	bl.AddState("m", "A", model.Action{Name: "a", Kind: model.ActionData, Cost: 20, Fn: fn,
		Reads:  []model.FieldRef{span(model.BasePacket, 14, 20), span(model.BasePerFlow, 0, 16)},
		Writes: []model.FieldRef{span(model.BaseTemp, 0, 8)},
	})
	bl.AddState("m", "B", model.Action{Name: "b", Kind: model.ActionData, Cost: 30, Fn: fn,
		Reads:  []model.FieldRef{span(model.BasePerFlow, 16, 32), span(model.BaseTemp, 0, 8)},
		Writes: []model.FieldRef{span(model.BasePerFlow, 16, 16), span(model.BasePacket, 26, 6)},
	})
	bl.AddState("m", "C", model.Action{Name: "c", Kind: model.ActionData, Cost: 10, Fn: fn,
		Reads:  []model.FieldRef{span(model.BaseControl, 0, 24)},
		Writes: []model.FieldRef{span(model.BaseControl, 24, 8)},
	})
	bl.AddTransition("m.A", "adv", "m.B")
	bl.AddTransition("m.B", "adv", "m.C")
	bl.AddTransition("m.C", "adv", model.EndName)
	bl.SetStart("m.A")
	prog, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}

	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := &pkt.Packet{Addr: as.Reserve(2048, 64), Data: make([]byte, 128)}
	e := &model.Exec{Core: core, TempAddr: as.Reserve(64, 64)}
	e.ResetStream(p, prog.Start(), 0)
	e.FlowIdx = 0

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Done {
			e.ResetStream(p, prog.Start(), uint64(i))
			e.FlowIdx = 0
		}
		if err := prog.Step(e); err != nil {
			b.Fatal(err)
		}
	}
}
