package model

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// CSID identifies a control state within a Program. CSEnd (0) is the
// terminal state every stream finishes in.
type CSID int32

// CSEnd is the terminal control state.
const CSEnd CSID = 0

// ActionID indexes a Program's action table.
type ActionID int32

// Binding resolves a module's state bases: which pools its per-flow and
// sub-flow spans index into and where its control state lives. Modules
// composed into one SFC may share bindings (after redundant-matching
// removal they must, for the reused match result to be meaningful).
type Binding struct {
	// PerFlow is the module's per-flow datablock pool.
	PerFlow *mem.Pool
	// SubFlow is the module's sub-flow datablock pool (may be nil).
	SubFlow *mem.Pool
	// Control is the module's control-state region.
	Control mem.Region
}

// CSInfo is one compiled control state: the fetching function F
// evaluated at compile time — which action runs here, which spans it
// touches, what to prefetch, and where each event leads.
type CSInfo struct {
	// Name is "module.state" for diagnostics and spec round-trips.
	Name string
	// Module is the owning module name.
	Module string
	// Action indexes the program's action table.
	Action ActionID
	// Reads and Writes are the compiled access spans, charged on every
	// execution of this CS.
	Reads, Writes []Span
	// Prefetch is what the interleaved scheduler prefetches before
	// executing this CS. It starts as the union of Reads and Writes and
	// may shrink under redundant-prefetch removal.
	Prefetch []Span
	// Next maps EventID to the successor CS; entries of -1 are invalid
	// transitions.
	Next []CSID
	// Bind resolves this CS's span bases.
	Bind *Binding
}

// Program is a compiled network function or service function chain:
// the control-state table, the action table, and the interned events.
type Program struct {
	name    string
	cs      []CSInfo
	actions []Action
	events  []string
	start   CSID
	// tempLines is the number of cache lines of per-task scratch the
	// program requires (the NFTask temp field allocation).
	tempLines int
	// plans holds each control state lowered into its compiled step plan
	// (see plan.go); indexed by CSID, entry 0 (End) unused. Compiler
	// passes that mutate CSInfo span sets via CS() must re-run
	// CompilePlans afterwards.
	plans []stepPlan
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Start returns the initial control state.
func (p *Program) Start() CSID { return p.start }

// NumCS returns the number of control states (including End).
func (p *Program) NumCS() int { return len(p.cs) }

// NumActions returns the size of the action table.
func (p *Program) NumActions() int { return len(p.actions) }

// TempLines returns the per-task scratch requirement in cache lines.
func (p *Program) TempLines() int { return p.tempLines }

// CS returns the control state record for id. The returned pointer
// aliases program state; compiler passes mutate it in place.
func (p *Program) CS(id CSID) (*CSInfo, error) {
	if id < 0 || int(id) >= len(p.cs) {
		return nil, fmt.Errorf("model: CS %d out of range [0,%d)", id, len(p.cs))
	}
	return &p.cs[id], nil
}

// Action returns the action table entry for id.
func (p *Program) Action(id ActionID) (*Action, error) {
	if id < 0 || int(id) >= len(p.actions) {
		return nil, fmt.Errorf("model: action %d out of range [0,%d)", id, len(p.actions))
	}
	return &p.actions[id], nil
}

// FindCS looks a control state up by its "module.state" name.
func (p *Program) FindCS(name string) (CSID, error) {
	for i := range p.cs {
		if p.cs[i].Name == name {
			return CSID(i), nil
		}
	}
	return 0, fmt.Errorf("model: no control state %q", name)
}

// EventID returns the interned id of an event name.
func (p *Program) EventID(name string) (EventID, error) {
	for i, n := range p.events {
		if n == name {
			return EventID(i), nil
		}
	}
	return 0, fmt.Errorf("model: no event %q", name)
}

// EventName returns the name of an interned event.
func (p *Program) EventName(id EventID) string {
	if id < 0 || int(id) >= len(p.events) {
		return fmt.Sprintf("event(%d)", id)
	}
	return p.events[id]
}

// NumEvents returns the number of interned events.
func (p *Program) NumEvents() int { return len(p.events) }

// Resolve computes the concrete simulated address of a span for the
// given execution context.
func Resolve(s Span, bind *Binding, e *Exec) uint64 {
	switch s.Base {
	case BasePerFlow:
		return bind.PerFlow.MustAddr(int(e.FlowIdx)) + s.Off
	case BaseSubFlow:
		return bind.SubFlow.MustAddr(int(e.SubIdx)) + s.Off
	case BasePacket:
		return e.Pkt.Addr + s.Off
	case BaseControl:
		return bind.Control.Base + s.Off
	case BaseTemp:
		return e.TempAddr + s.Off
	case BaseDynamic:
		return e.Cur.Addr + s.Off
	default:
		panic(fmt.Sprintf("model: unresolvable span base %v", s.Base))
	}
}

// Step executes the current control state of e: charge the declared
// reads, run the action, charge the declared writes, and take the
// transition for the returned event. It implements the ActionExecutor +
// Transition steps of the paper's Algorithm 1 and is shared by both the
// interleaved runtime and the RTC baseline.
//
// Untraced execution runs through the compiled step plan (plan.go);
// attaching a tracer routes to the interpreted traced twin, which emits
// per-span attribution events. Both issue the identical simulated
// access sequence.
func (p *Program) Step(e *Exec) error {
	if e.CS == CSEnd {
		e.Done = true
		return nil
	}
	core := e.Core
	if core.Tracer() != nil {
		return p.stepTraced(e, &p.cs[e.CS])
	}
	if p.plans != nil {
		return p.stepCompiled(e, &p.plans[e.CS])
	}
	return p.stepInterpreted(e)
}

// StepInterpreted is the span-interpreting reference executor: the
// original Step body, kept as the behavioral oracle the
// differential-replay harness compares the compiled plan path against.
// Production callers should use Step.
func (p *Program) StepInterpreted(e *Exec) error {
	if e.CS == CSEnd {
		e.Done = true
		return nil
	}
	if e.Core.Tracer() != nil {
		return p.stepTraced(e, &p.cs[e.CS])
	}
	return p.stepInterpreted(e)
}

func (p *Program) stepInterpreted(e *Exec) error {
	info := &p.cs[e.CS]
	core := e.Core

	before := core.Now()
	for _, s := range info.Reads {
		core.Read(Resolve(s, info.Bind, e), s.Size)
	}
	afterReads := core.Now()

	act := &p.actions[info.Action]
	core.Compute(act.Cost)
	ev := act.Fn(e)

	preWrites := core.Now()
	for _, s := range info.Writes {
		core.Write(Resolve(s, info.Bind, e), s.Size)
	}
	e.AccessCycles += (afterReads - before) + (core.Now() - preWrites)

	if ev <= EvInvalid || int(ev) >= len(info.Next) {
		return fmt.Errorf("model: %s: action %s returned unknown event %d", info.Name, act.Name, ev)
	}
	next := info.Next[ev]
	if next < 0 {
		return fmt.Errorf("model: %s: no transition for event %q", info.Name, p.EventName(ev))
	}
	e.CS = next
	e.Prefetched = false
	if next == CSEnd {
		e.Done = true
	}
	return nil
}

// stepTraced is Step's instrumented twin, taken only while a tracer is
// attached. It charges exactly the same simulated work in exactly the
// same order as the untraced path — the golden-counters tests run both
// paths against the same pinned fingerprints, so any drift between the
// two bodies is caught — and additionally emits action, state-access
// and transition events with attribution stamps.
func (p *Program) stepTraced(e *Exec, info *CSInfo) error {
	core := e.Core
	core.SetCS(int32(e.CS))
	begin := core.Now()
	core.Emit(sim.TraceActionBegin, sim.CauseNone, uint64(info.Action), 0, 0)

	before := core.Now()
	for _, s := range info.Reads {
		c0 := core.Counters()
		core.Read(Resolve(s, info.Bind, e), s.Size)
		d := core.Counters().Sub(c0)
		core.Emit(sim.TraceAccess, sim.CauseNone, uint64(s.Base), d.StallCycles, d.L1Misses<<32|d.LLCMisses)
	}
	afterReads := core.Now()

	act := &p.actions[info.Action]
	core.Compute(act.Cost)
	ev := act.Fn(e)

	preWrites := core.Now()
	for _, s := range info.Writes {
		c0 := core.Counters()
		core.Write(Resolve(s, info.Bind, e), s.Size)
		d := core.Counters().Sub(c0)
		core.Emit(sim.TraceAccess, sim.CauseNone, uint64(s.Base), d.StallCycles, d.L1Misses<<32|d.LLCMisses)
	}
	e.AccessCycles += (afterReads - before) + (core.Now() - preWrites)

	if ev <= EvInvalid || int(ev) >= len(info.Next) {
		return fmt.Errorf("model: %s: action %s returned unknown event %d", info.Name, act.Name, ev)
	}
	next := info.Next[ev]
	if next < 0 {
		return fmt.Errorf("model: %s: no transition for event %q", info.Name, p.EventName(ev))
	}
	core.Emit(sim.TraceActionEnd, sim.CauseNone, uint64(info.Action), core.Now()-begin, 0)
	core.Emit(sim.TraceTransition, sim.CauseNone, uint64(ev), uint64(next), 0)
	e.CS = next
	e.Prefetched = false
	if next == CSEnd {
		e.Done = true
	}
	return nil
}

// PrefetchCurrent issues prefetches for the current CS's prefetch plan —
// the Prefetch step of Algorithm 1 — and marks the P-state. The plan
// path is taken even under tracing: prefetch trace events are emitted
// per line inside the core, so pre-resolved line issue is trace-safe.
func (p *Program) PrefetchCurrent(e *Exec) {
	if e.CS == CSEnd {
		e.Prefetched = true
		return
	}
	if e.Core.Tracer() != nil {
		// Stamp prefetch events with the CS they are fetching for.
		e.Core.SetCS(int32(e.CS))
	}
	if p.plans != nil {
		p.prefetchCompiled(e, &p.plans[e.CS])
	} else {
		p.prefetchInterpreted(e)
	}
	e.Prefetched = true
}

// PrefetchCurrentInterpreted is the span-interpreting reference twin of
// PrefetchCurrent, kept for differential replay.
func (p *Program) PrefetchCurrentInterpreted(e *Exec) {
	if e.CS == CSEnd {
		e.Prefetched = true
		return
	}
	if e.Core.Tracer() != nil {
		e.Core.SetCS(int32(e.CS))
	}
	p.prefetchInterpreted(e)
	e.Prefetched = true
}

func (p *Program) prefetchInterpreted(e *Exec) {
	info := &p.cs[e.CS]
	for _, s := range info.Prefetch {
		e.Core.Prefetch(Resolve(s, info.Bind, e), s.Size)
	}
}

// ResidentCurrent reports whether every span the current CS will access
// is already in L1 — the isPrefetched check against real cache contents
// used to maintain the P-state.
func (p *Program) ResidentCurrent(e *Exec) bool {
	if e.CS == CSEnd {
		return true
	}
	if p.plans != nil {
		return p.residentCompiled(e, &p.plans[e.CS])
	}
	return p.residentInterpreted(e)
}

// ResidentCurrentInterpreted is the span-interpreting reference twin of
// ResidentCurrent, kept for differential replay.
func (p *Program) ResidentCurrentInterpreted(e *Exec) bool {
	if e.CS == CSEnd {
		return true
	}
	return p.residentInterpreted(e)
}

func (p *Program) residentInterpreted(e *Exec) bool {
	info := &p.cs[e.CS]
	for _, s := range info.Prefetch {
		if !e.Core.ResidentL1(Resolve(s, info.Bind, e), s.Size) {
			return false
		}
	}
	return true
}

// Validate checks structural soundness: every transition targets an
// existing CS, every CS has a valid action, the start state exists, and
// End is reachable from the start.
func (p *Program) Validate() error {
	if p.start <= CSEnd || int(p.start) >= len(p.cs) {
		return fmt.Errorf("model: program %s: invalid start state %d", p.name, p.start)
	}
	for i := 1; i < len(p.cs); i++ {
		info := &p.cs[i]
		if info.Action < 0 || int(info.Action) >= len(p.actions) {
			return fmt.Errorf("model: %s: action id %d out of range", info.Name, info.Action)
		}
		if len(info.Next) != len(p.events) {
			return fmt.Errorf("model: %s: transition table has %d entries, want %d",
				info.Name, len(info.Next), len(p.events))
		}
		hasExit := false
		for ev, next := range info.Next {
			if next < -1 || int(next) >= len(p.cs) {
				return fmt.Errorf("model: %s: transition on %q targets invalid CS %d",
					info.Name, p.EventName(EventID(ev)), next)
			}
			if next >= 0 {
				hasExit = true
			}
		}
		if !hasExit {
			return fmt.Errorf("model: %s: no outgoing transitions", info.Name)
		}
		if info.Bind == nil {
			return fmt.Errorf("model: %s: no binding", info.Name)
		}
	}
	// Reachability of End from start.
	seen := make([]bool, len(p.cs))
	stack := []CSID{p.start}
	seen[p.start] = true
	reachedEnd := false
	for len(stack) > 0 {
		cs := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cs == CSEnd {
			reachedEnd = true
			continue
		}
		for _, next := range p.cs[cs].Next {
			if next >= 0 && !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	if !reachedEnd {
		return fmt.Errorf("model: program %s: End unreachable from start", p.name)
	}
	return nil
}
