// Package model implements the paper's NF computational model (§IV):
// NFEvents, NFStates, NFActions, the control-logic finite state machine
// with its transition function Δ and fetching function F, and the
// Granular Decomposition Property.
//
// A network function (or a composed service function chain) compiles to
// a Program: a table of control states (CS), each bound to exactly one
// NFAction plus the set of NFState spans that action will access. The
// spans are known *before* the action executes — that is the Granular
// Decomposition Property — which is what lets the interleaved runtime
// prefetch them and the compiler pack them.
//
// Both execution models in this repository run the same Program:
// internal/rt interleaves many streams with prefetching (the paper's
// contribution), internal/rtc runs each packet to completion (the
// baseline). Only the scheduling differs, which keeps every comparison
// apples-to-apples.
package model

import "fmt"

// EventID identifies an interned NFEvent within a Program. Event 0 is
// reserved and never valid; "packet" and "done" are pre-interned in
// every program.
type EventID int32

// Pre-interned events present in every Program.
const (
	// EvInvalid is the zero EventID; actions must never return it.
	EvInvalid EventID = 0
	// EvPacket is the system event announcing packet arrival; it drives
	// the initial transition out of the start state.
	EvPacket EventID = 1
	// EvDone is the user event signalling stream completion; programs
	// typically route it to the End control state.
	EvDone EventID = 2
)

// StateKind classifies NFStates per the paper's taxonomy (§IV-A).
type StateKind int

// The NFState categories.
const (
	// KindMatch is flow-classification structure state (hash buckets,
	// tree nodes) — the pointer-chasing source.
	KindMatch StateKind = iota + 1
	// KindPerFlow is per-flow session state.
	KindPerFlow
	// KindSubFlow is second-level state such as a UPF PDR.
	KindSubFlow
	// KindPacket is the packet buffer itself.
	KindPacket
	// KindControl is per-NF-instance configuration shared across flows.
	KindControl
	// KindTemp is scratch state that lives across the actions of one
	// packet and dies with it.
	KindTemp
)

// String names the kind for diagnostics.
func (k StateKind) String() string {
	switch k {
	case KindMatch:
		return "match"
	case KindPerFlow:
		return "per-flow"
	case KindSubFlow:
		return "sub-flow"
	case KindPacket:
		return "packet"
	case KindControl:
		return "control"
	case KindTemp:
		return "temp"
	default:
		return fmt.Sprintf("StateKind(%d)", int(k))
	}
}

// BaseKind says how a Span's base address is resolved at runtime.
type BaseKind int

// The resolvable bases.
const (
	// BasePerFlow resolves against the module's per-flow pool at the
	// task's matched flow index.
	BasePerFlow BaseKind = iota + 1
	// BaseSubFlow resolves against the module's sub-flow pool at the
	// task's matched sub-flow index.
	BaseSubFlow
	// BasePacket resolves against the packet buffer address.
	BasePacket
	// BaseControl resolves against the module's control state region.
	BaseControl
	// BaseTemp resolves against the task's own scratch region.
	BaseTemp
	// BaseDynamic resolves against the task's match cursor address —
	// the next bucket or tree node of a stepwise matching structure,
	// set by the previous step.
	BaseDynamic
)

// String names the base for diagnostics.
func (b BaseKind) String() string {
	switch b {
	case BasePerFlow:
		return "perflow"
	case BaseSubFlow:
		return "subflow"
	case BasePacket:
		return "packet"
	case BaseControl:
		return "control"
	case BaseTemp:
		return "temp"
	case BaseDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("BaseKind(%d)", int(b))
	}
}

// Span is a resolved state region an action reads or writes: base
// selector plus offset and size. Spans are the compiled form of the
// fetching function F — everything the runtime needs to prefetch or
// charge an access.
type Span struct {
	// Base selects the address the Off is relative to.
	Base BaseKind
	// Off and Size delimit the accessed bytes.
	Off, Size uint64
}

// FieldRef is the symbolic (pre-compilation) form of a state access:
// either named fields of a module state layout, or an explicit span.
type FieldRef struct {
	// State is the NFState category accessed.
	State StateKind
	// Fields names layout fields; used when Explicit is nil.
	Fields []string
	// Explicit, when non-nil, bypasses layout lookup entirely.
	Explicit *Span
}

// Fields builds a FieldRef naming layout fields of a state kind.
func Fields(kind StateKind, names ...string) FieldRef {
	return FieldRef{State: kind, Fields: names}
}

// Raw builds a FieldRef with an explicit span.
func Raw(kind StateKind, base BaseKind, off, size uint64) FieldRef {
	return FieldRef{State: kind, Explicit: &Span{Base: base, Off: off, Size: size}}
}

// Dynamic builds a FieldRef for a stepwise match structure's next node:
// size bytes at the task's cursor address.
func Dynamic(size uint64) FieldRef {
	return Raw(KindMatch, BaseDynamic, 0, size)
}

// ActionKind classifies NFActions by the states they interact with
// (§IV-A): match actions locate per-flow/sub-flow state, data actions
// transform it, config actions touch control state.
type ActionKind int

// The NFAction categories.
const (
	// ActionMatch locates per-flow or sub-flow state via match state.
	ActionMatch ActionKind = iota + 1
	// ActionData transforms data states.
	ActionData
	// ActionConfig reads or updates control state.
	ActionConfig
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionMatch:
		return "match"
	case ActionData:
		return "data"
	case ActionConfig:
		return "config"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// ActionFunc is the application logic of an NFAction. It runs with its
// declared state spans already charged (and, under the interleaved
// runtime, already prefetched), performs Go-side computation and packet
// mutation, and returns the NFEvent that drives the next transition.
type ActionFunc func(e *Exec) EventID

// Action is one NFAction: the event handler bound to a control state.
// Reads and Writes declare every data-state access the Fn performs —
// the Granular Decomposition Property requires that this set not depend
// on computation inside the Fn.
type Action struct {
	// Name identifies the action in specs and dumps.
	Name string
	// Kind is the paper's action taxonomy.
	Kind ActionKind
	// Cost is the action's computation in simulated instructions.
	Cost uint64
	// Reads and Writes are the declared state accesses.
	Reads, Writes []FieldRef
	// Fn is the application logic.
	Fn ActionFunc
}
