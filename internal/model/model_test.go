package model

import (
	"strings"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// testEnv builds a minimal one-module program:
//
//	m.load  --go--> m.store --done--> End
//
// load reads 8 bytes of per-flow state, store writes 8 bytes.
type testEnv struct {
	prog *Program
	pool *mem.Pool
	core *sim.Core
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	as := mem.NewAddressSpace()
	pool, err := mem.NewPool(as, "flows", 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := mem.NewLayout(mem.Field{Name: "counter", Size: 8}, mem.Field{Name: "verdict", Size: 8})
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder("test")
	b.AddModule("m", Binding{PerFlow: pool}, Layouts{KindPerFlow: layout})
	b.AddState("m", "load", Action{
		Name:  "load",
		Kind:  ActionData,
		Cost:  10,
		Reads: []FieldRef{Fields(KindPerFlow, "counter")},
		Fn: func(e *Exec) EventID {
			e.Temp[0]++
			return EventID(3) // "go", interned below as the first custom event
		},
	})
	b.AddState("m", "store", Action{
		Name:   "store",
		Kind:   ActionData,
		Cost:   5,
		Writes: []FieldRef{Fields(KindPerFlow, "verdict")},
		Fn: func(e *Exec) EventID {
			return EvDone
		},
	})
	if got := b.Event("go"); got != 3 {
		t.Fatalf("custom event id = %d, want 3", got)
	}
	b.AddTransition("m.load", "go", "m.store")
	b.AddTransition("m.store", "done", EndName)
	b.SetStart("m.load")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{prog: prog, pool: pool, core: core}
}

func newExec(env *testEnv) *Exec {
	e := &Exec{Core: env.core, TempAddr: 0x100}
	p := &pkt.Packet{Addr: 0x2000, WireLen: 64}
	e.ResetStream(p, env.prog.Start(), 0)
	e.FlowIdx = 3
	return e
}

func TestProgramStepRunsToEnd(t *testing.T) {
	env := newTestEnv(t)
	e := newExec(env)

	steps := 0
	for !e.Done {
		if err := env.prog.Step(e); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 10 {
			t.Fatal("program did not terminate")
		}
	}
	if steps != 2 {
		t.Fatalf("steps = %d, want 2", steps)
	}
	ctr := env.core.Counters()
	if ctr.Reads != 1 || ctr.Writes != 1 {
		t.Fatalf("charged reads=%d writes=%d, want 1/1", ctr.Reads, ctr.Writes)
	}
	if ctr.Instructions < 15 {
		t.Fatalf("instructions = %d, want >= 15 (action costs)", ctr.Instructions)
	}
	if e.AccessCycles == 0 {
		t.Fatal("AccessCycles not accumulated")
	}
}

func TestStepChargesDeclaredSpanAddresses(t *testing.T) {
	env := newTestEnv(t)
	e := newExec(env)
	if err := env.prog.Step(e); err != nil {
		t.Fatal(err)
	}
	// The read span resolves to pool entry 3's "counter" field; reading
	// it again now must be an L1 hit.
	addr := env.pool.MustAddr(3)
	base := env.core.Counters()
	env.core.Read(addr, 8)
	if d := env.core.Counters().Sub(base); d.L1Hits != 1 {
		t.Fatalf("per-flow line not warm after Step: %+v", d)
	}
}

func TestStepAtEndIsNoop(t *testing.T) {
	env := newTestEnv(t)
	e := newExec(env)
	e.CS = CSEnd
	if err := env.prog.Step(e); err != nil {
		t.Fatal(err)
	}
	if !e.Done {
		t.Fatal("Step at End did not mark Done")
	}
}

func TestStepInvalidTransition(t *testing.T) {
	env := newTestEnv(t)
	e := newExec(env)
	// Force the store state to emit an event with no transition by
	// corrupting the transition table.
	cs, err := env.prog.FindCS("m.store")
	if err != nil {
		t.Fatal(err)
	}
	info, err := env.prog.CS(cs)
	if err != nil {
		t.Fatal(err)
	}
	info.Next[EvDone] = -1
	e.CS = cs
	if err := env.prog.Step(e); err == nil {
		t.Fatal("missing transition not reported")
	} else if !strings.Contains(err.Error(), "no transition") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPrefetchCurrentAndResident(t *testing.T) {
	env := newTestEnv(t)
	e := newExec(env)

	if env.prog.ResidentCurrent(e) {
		t.Fatal("cold state reported resident")
	}
	env.prog.PrefetchCurrent(e)
	if !e.Prefetched {
		t.Fatal("P-state not set by PrefetchCurrent")
	}
	if ctr := env.core.Counters(); ctr.PrefetchIssued == 0 {
		t.Fatal("no prefetch issued")
	}
	if !env.prog.ResidentCurrent(e) {
		t.Fatal("prefetched span not resident")
	}
	// Executing after the fill window must be an L1 hit.
	env.core.Compute(1000)
	base := env.core.Counters()
	if err := env.prog.Step(e); err != nil {
		t.Fatal(err)
	}
	if d := env.core.Counters().Sub(base); d.L1Misses != 0 {
		t.Fatalf("post-prefetch step missed: %+v", d)
	}
}

func TestPrefetchAtEndTrivial(t *testing.T) {
	env := newTestEnv(t)
	e := newExec(env)
	e.CS = CSEnd
	env.prog.PrefetchCurrent(e)
	if !e.Prefetched || !env.prog.ResidentCurrent(e) {
		t.Fatal("End state must be trivially prefetched/resident")
	}
}

func TestProgramLookups(t *testing.T) {
	env := newTestEnv(t)
	p := env.prog
	if p.Name() != "test" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.NumCS() != 3 || p.NumActions() != 2 {
		t.Fatalf("NumCS=%d NumActions=%d", p.NumCS(), p.NumActions())
	}
	if _, err := p.FindCS("m.load"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FindCS("nope"); err == nil {
		t.Fatal("FindCS(nope) succeeded")
	}
	id, err := p.EventID("go")
	if err != nil || id != 3 {
		t.Fatalf("EventID(go) = %d, %v", id, err)
	}
	if _, err := p.EventID("nope"); err == nil {
		t.Fatal("EventID(nope) succeeded")
	}
	if p.EventName(EvPacket) != "packet" || p.EventName(99) == "" {
		t.Fatal("EventName misbehaved")
	}
	if _, err := p.CS(99); err == nil {
		t.Fatal("CS(99) succeeded")
	}
	if _, err := p.Action(99); err == nil {
		t.Fatal("Action(99) succeeded")
	}
	if p.TempLines() < 1 {
		t.Fatal("TempLines < 1")
	}
	if p.NumEvents() != 4 {
		t.Fatalf("NumEvents = %d, want 4", p.NumEvents())
	}
}

func TestBuilderErrors(t *testing.T) {
	noop := func(e *Exec) EventID { return EvDone }
	tests := []struct {
		name  string
		build func(b *Builder)
	}{
		{"duplicate module", func(b *Builder) {
			b.AddModule("m", Binding{}, nil)
			b.AddModule("m", Binding{}, nil)
		}},
		{"dotted module name", func(b *Builder) {
			b.AddModule("a.b", Binding{}, nil)
		}},
		{"state in unknown module", func(b *Builder) {
			b.AddState("ghost", "s", Action{Name: "a", Fn: noop})
		}},
		{"duplicate state", func(b *Builder) {
			b.AddModule("m", Binding{}, nil)
			b.AddState("m", "s", Action{Name: "a", Fn: noop})
			b.AddState("m", "s", Action{Name: "a", Fn: noop})
		}},
		{"nil Fn", func(b *Builder) {
			b.AddModule("m", Binding{}, nil)
			b.AddState("m", "s", Action{Name: "a"})
		}},
		{"empty state name", func(b *Builder) {
			b.AddModule("m", Binding{}, nil)
			b.AddState("m", "", Action{Name: "a", Fn: noop})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder("p")
			tt.build(b)
			b.SetStart("m.s")
			if _, err := b.Build(); err == nil {
				t.Fatal("Build succeeded despite invalid input")
			}
		})
	}
}

func TestBuildErrors(t *testing.T) {
	noop := func(e *Exec) EventID { return EvDone }
	newOK := func() *Builder {
		b := NewBuilder("p")
		b.AddModule("m", Binding{}, nil)
		b.AddState("m", "s", Action{Name: "a", Fn: noop})
		b.AddTransition("m.s", "done", EndName)
		b.SetStart("m.s")
		return b
	}
	if _, err := newOK().Build(); err != nil {
		t.Fatalf("baseline build failed: %v", err)
	}

	b := newOK()
	b.SetStart("")
	if _, err := b.Build(); err == nil {
		t.Fatal("missing start accepted")
	}

	b = newOK()
	b.SetStart("m.ghost")
	if _, err := b.Build(); err == nil {
		t.Fatal("unknown start accepted")
	}

	b = newOK()
	b.AddTransition("m.ghost", "done", EndName)
	if _, err := b.Build(); err == nil {
		t.Fatal("transition from unknown state accepted")
	}

	b = newOK()
	b.AddTransition("m.s", "done", "m.ghost")
	if _, err := b.Build(); err == nil {
		t.Fatal("transition to unknown state accepted")
	}

	b = newOK()
	b.AddTransition("End", "done", "m.s")
	if _, err := b.Build(); err == nil {
		t.Fatal("transition out of End accepted")
	}

	b = newOK()
	b.AddState("m", "t", Action{Name: "b", Fn: noop}) // no outgoing transition
	if _, err := b.Build(); err == nil {
		t.Fatal("state without exits accepted")
	}

	b = newOK()
	b.AddTransition("m.s", "done", "m.s") // conflicting duplicate
	if _, err := b.Build(); err == nil {
		t.Fatal("conflicting transitions accepted")
	}
}

func TestBuilderUnknownLayoutField(t *testing.T) {
	b := NewBuilder("p")
	layout, err := mem.NewLayout(mem.Field{Name: "x", Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	b.AddModule("m", Binding{}, Layouts{KindPerFlow: layout})
	b.AddState("m", "s", Action{
		Name:  "a",
		Reads: []FieldRef{Fields(KindPerFlow, "ghost")},
		Fn:    func(e *Exec) EventID { return EvDone },
	})
	b.AddTransition("m.s", "done", EndName)
	b.SetStart("m.s")
	if _, err := b.Build(); err == nil {
		t.Fatal("unknown layout field accepted")
	}
}

func TestBuilderMissingLayout(t *testing.T) {
	b := NewBuilder("p")
	b.AddModule("m", Binding{}, nil)
	b.AddState("m", "s", Action{
		Name:  "a",
		Reads: []FieldRef{Fields(KindPerFlow, "x")},
		Fn:    func(e *Exec) EventID { return EvDone },
	})
	b.AddTransition("m.s", "done", EndName)
	b.SetStart("m.s")
	if _, err := b.Build(); err == nil {
		t.Fatal("missing layout accepted")
	}
}

func TestCoalesce(t *testing.T) {
	tests := []struct {
		name string
		in   []Span
		want int
	}{
		{"empty", nil, 0},
		{"single", []Span{{BasePerFlow, 0, 8}}, 1},
		{"adjacent same line", []Span{{BasePerFlow, 0, 8}, {BasePerFlow, 8, 8}}, 1},
		{"gap same line", []Span{{BasePerFlow, 0, 8}, {BasePerFlow, 48, 8}}, 1},
		{"different lines", []Span{{BasePerFlow, 0, 8}, {BasePerFlow, 128, 8}}, 2},
		{"different bases", []Span{{BasePerFlow, 0, 8}, {BasePacket, 0, 8}}, 2},
		{"unsorted merge", []Span{{BasePerFlow, 48, 8}, {BasePerFlow, 0, 8}}, 1},
		{"overlap", []Span{{BasePerFlow, 0, 16}, {BasePerFlow, 8, 16}}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := coalesce(append([]Span(nil), tt.in...))
			if len(got) != tt.want {
				t.Fatalf("coalesce(%v) = %v, want %d spans", tt.in, got, tt.want)
			}
		})
	}
}

func TestCoalesceCoversInputs(t *testing.T) {
	in := []Span{{BasePerFlow, 0, 8}, {BasePerFlow, 48, 16}}
	got := coalesce(append([]Span(nil), in...))
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	if got[0].Off != 0 || got[0].Size != 64 {
		t.Fatalf("merged span = %+v, want [0,64)", got[0])
	}
}

func TestResolveBases(t *testing.T) {
	as := mem.NewAddressSpace()
	pf, err := mem.NewPool(as, "pf", 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := mem.NewPool(as, "sf", 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	bind := &Binding{PerFlow: pf, SubFlow: sf, Control: mem.Region{Base: 0x7000, Size: 64}}
	e := &Exec{
		Pkt:      &pkt.Packet{Addr: 0x9000},
		FlowIdx:  2,
		SubIdx:   3,
		TempAddr: 0xA000,
	}
	e.Cur.Addr = 0xB000

	tests := []struct {
		span Span
		want uint64
	}{
		{Span{BasePerFlow, 8, 8}, pf.MustAddr(2) + 8},
		{Span{BaseSubFlow, 0, 8}, sf.MustAddr(3)},
		{Span{BasePacket, 14, 4}, 0x9000 + 14},
		{Span{BaseControl, 4, 4}, 0x7004},
		{Span{BaseTemp, 16, 8}, 0xA010},
		{Span{BaseDynamic, 0, 64}, 0xB000},
	}
	for _, tt := range tests {
		if got := Resolve(tt.span, bind, e); got != tt.want {
			t.Errorf("Resolve(%+v) = %#x, want %#x", tt.span, got, tt.want)
		}
	}
}

func TestResolveInvalidBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resolve with invalid base did not panic")
		}
	}()
	Resolve(Span{Base: BaseKind(99)}, nil, &Exec{})
}

func TestResetStream(t *testing.T) {
	e := &Exec{FlowIdx: 5, SubIdx: 6, Key: 7, Done: true, Prefetched: true}
	p := &pkt.Packet{}
	e.ResetStream(p, 4, 42)
	if e.FlowIdx != -1 || e.SubIdx != -1 || e.Key != 0 || e.Done || e.Prefetched {
		t.Fatalf("ResetStream left state: %+v", e)
	}
	if e.CS != 4 || e.Seq != 42 || e.Pkt != p {
		t.Fatalf("ResetStream did not set fields: %+v", e)
	}
	if e.Cur.Idx != -1 {
		t.Fatalf("cursor not reset: %+v", e.Cur)
	}
}

func TestKindAndBaseStrings(t *testing.T) {
	kinds := []StateKind{KindMatch, KindPerFlow, KindSubFlow, KindPacket, KindControl, KindTemp, StateKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty String for %d", int(k))
		}
	}
	bases := []BaseKind{BasePerFlow, BaseSubFlow, BasePacket, BaseControl, BaseTemp, BaseDynamic, BaseKind(99)}
	for _, b := range bases {
		if b.String() == "" {
			t.Fatalf("empty String for %d", int(b))
		}
	}
	acts := []ActionKind{ActionMatch, ActionData, ActionConfig, ActionKind(99)}
	for _, a := range acts {
		if a.String() == "" {
			t.Fatalf("empty String for %d", int(a))
		}
	}
}

func TestEventInterningIdempotent(t *testing.T) {
	b := NewBuilder("p")
	a := b.Event("x")
	if b.Event("x") != a {
		t.Fatal("re-interning changed id")
	}
	if b.Event("packet") != EvPacket || b.Event("done") != EvDone {
		t.Fatal("builtin events not pre-interned")
	}
}
