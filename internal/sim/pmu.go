package sim

import "fmt"

// Counters is a PMU-style counter block. It substitutes for the `perf`
// measurements the paper collects (L1/L2/LLC misses per packet, IPC,
// state-access cycles). All fields are monotonically increasing; use Sub
// to window a measurement.
type Counters struct {
	// Cycles is the core clock at sampling time.
	Cycles uint64
	// Instructions counts retired (simulated) instructions.
	Instructions uint64
	// Reads and Writes count demand accesses (per line touched).
	Reads, Writes uint64
	// L1Hits..LLCMisses count where each demand line access was served.
	// An LLCMiss is a DRAM access.
	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	LLCHits, LLCMisses uint64
	// PrefetchIssued counts accepted prefetch line fills.
	PrefetchIssued uint64
	// PrefetchDropped counts prefetches rejected because all MSHRs were
	// busy.
	PrefetchDropped uint64
	// PrefetchRedundant counts prefetches for lines already in L1.
	PrefetchRedundant uint64
	// PrefetchUseful counts demand accesses served by a completed
	// prefetch; PrefetchLate counts demand accesses that had to stall for
	// an in-flight prefetch to complete.
	PrefetchUseful, PrefetchLate uint64
	// StallCycles is the portion of Cycles spent waiting on memory.
	StallCycles uint64
	// TaskSwitches counts scheduler switches between NFTasks.
	TaskSwitches uint64
}

// Sub returns the counter deltas c - o, for windowed measurements.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Cycles:            c.Cycles - o.Cycles,
		Instructions:      c.Instructions - o.Instructions,
		Reads:             c.Reads - o.Reads,
		Writes:            c.Writes - o.Writes,
		L1Hits:            c.L1Hits - o.L1Hits,
		L1Misses:          c.L1Misses - o.L1Misses,
		L2Hits:            c.L2Hits - o.L2Hits,
		L2Misses:          c.L2Misses - o.L2Misses,
		LLCHits:           c.LLCHits - o.LLCHits,
		LLCMisses:         c.LLCMisses - o.LLCMisses,
		PrefetchIssued:    c.PrefetchIssued - o.PrefetchIssued,
		PrefetchDropped:   c.PrefetchDropped - o.PrefetchDropped,
		PrefetchRedundant: c.PrefetchRedundant - o.PrefetchRedundant,
		PrefetchUseful:    c.PrefetchUseful - o.PrefetchUseful,
		PrefetchLate:      c.PrefetchLate - o.PrefetchLate,
		StallCycles:       c.StallCycles - o.StallCycles,
		TaskSwitches:      c.TaskSwitches - o.TaskSwitches,
	}
}

// Add returns the element-wise sum c + o, for aggregating counter
// blocks across cores or runs.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Cycles:            c.Cycles + o.Cycles,
		Instructions:      c.Instructions + o.Instructions,
		Reads:             c.Reads + o.Reads,
		Writes:            c.Writes + o.Writes,
		L1Hits:            c.L1Hits + o.L1Hits,
		L1Misses:          c.L1Misses + o.L1Misses,
		L2Hits:            c.L2Hits + o.L2Hits,
		L2Misses:          c.L2Misses + o.L2Misses,
		LLCHits:           c.LLCHits + o.LLCHits,
		LLCMisses:         c.LLCMisses + o.LLCMisses,
		PrefetchIssued:    c.PrefetchIssued + o.PrefetchIssued,
		PrefetchDropped:   c.PrefetchDropped + o.PrefetchDropped,
		PrefetchRedundant: c.PrefetchRedundant + o.PrefetchRedundant,
		PrefetchUseful:    c.PrefetchUseful + o.PrefetchUseful,
		PrefetchLate:      c.PrefetchLate + o.PrefetchLate,
		StallCycles:       c.StallCycles + o.StallCycles,
		TaskSwitches:      c.TaskSwitches + o.TaskSwitches,
	}
}

// IPC returns instructions per cycle, the efficiency metric of the
// paper's Figures 10(d) and 13(c).
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// L1HitRate returns the fraction of demand accesses served by L1, the
// paper's "L1-C utilization" metric (Figure 10(b)).
func (c Counters) L1HitRate() float64 {
	total := c.L1Hits + c.L1Misses
	if total == 0 {
		return 0
	}
	return float64(c.L1Hits) / float64(total)
}

// L2HitRate returns the fraction of L1 misses served by L2 (Figure 10(c)).
func (c Counters) L2HitRate() float64 {
	total := c.L2Hits + c.L2Misses
	if total == 0 {
		return 0
	}
	return float64(c.L2Hits) / float64(total)
}

// Accesses returns total demand line accesses.
func (c Counters) Accesses() uint64 { return c.Reads + c.Writes }

// MPKI returns L1 demand misses per thousand instructions, the
// cache-pressure metric perf reports as l1d-misses/instructions.
func (c Counters) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.L1Misses) / float64(c.Instructions)
}

// StallFraction returns the share of cycles spent waiting on memory —
// the quantity interleaving exists to shrink.
func (c Counters) StallFraction() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.StallCycles) / float64(c.Cycles)
}

// PrefetchAccuracy returns the fraction of issued prefetches that a
// demand access later consumed (useful / issued). Low accuracy means
// the prefetcher is filling lines nobody reads.
func (c Counters) PrefetchAccuracy() float64 {
	if c.PrefetchIssued == 0 {
		return 0
	}
	return float64(c.PrefetchUseful) / float64(c.PrefetchIssued)
}

// PrefetchCoverage returns the fraction of would-be demand misses the
// prefetcher absorbed: useful prefetches over useful prefetches plus
// the L1 misses that still happened.
func (c Counters) PrefetchCoverage() float64 {
	total := c.PrefetchUseful + c.L1Misses
	if total == 0 {
		return 0
	}
	return float64(c.PrefetchUseful) / float64(total)
}

// String renders a compact one-line summary for logs and dumps,
// including the derived metrics that make a single line readable:
// MPKI, the stall share of total cycles, and prefetch accuracy.
func (c Counters) String() string {
	return fmt.Sprintf(
		"cycles=%d insts=%d ipc=%.2f l1=%.1f%% l2=%.1f%% mpki=%.2f llcMiss=%d pf={iss=%d use=%d late=%d drop=%d acc=%.0f%%} stall=%d (%.0f%%) switches=%d",
		c.Cycles, c.Instructions, c.IPC(), 100*c.L1HitRate(), 100*c.L2HitRate(),
		c.MPKI(), c.LLCMisses, c.PrefetchIssued, c.PrefetchUseful, c.PrefetchLate,
		c.PrefetchDropped, 100*c.PrefetchAccuracy(), c.StallCycles,
		100*c.StallFraction(), c.TaskSwitches)
}
