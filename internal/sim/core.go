package sim

import "fmt"

// Core is one simulated CPU core: a cycle clock, a private three-level
// cache hierarchy, a bounded asynchronous prefetcher, and a PMU.
//
// A Core is not safe for concurrent use; the runtime gives each worker
// its own Core, matching the paper's share-nothing per-core design.
type Core struct {
	cfg Config

	clock uint64
	l1    *cache
	l2    *cache
	llc   *cache
	ctr   Counters

	// outstanding holds readyAt cycles of in-flight prefetch fills; its
	// live entries (readyAt > clock) occupy MSHRs.
	outstanding []uint64
	// minReady is the earliest readyAt in outstanding; while the clock
	// is below it no entry can have expired, so the occupancy check is
	// a comparison instead of a compaction scan.
	minReady uint64

	// trc, when non-nil, receives cycle-timestamped trace events;
	// curTask and curCS are the attribution stamps (see trace.go).
	// Every emission site is guarded by a nil check so the disabled
	// path costs one predictable branch and zero allocations.
	trc     Tracer
	curTask int32
	curCS   int32

	// alog, when non-nil, receives every charged memory operation (see
	// accesslog.go); the differential-replay harness uses it to prove
	// two executors issue byte-identical access sequences.
	alog func(MemAccess)

	// switchInsts is SwitchCost*IssueWidth/2, precomputed so TaskSwitch
	// avoids the multiply on the scheduler's hottest edge; switchCost
	// caches cfg.SwitchCost to keep TaskSwitch within the inlining
	// budget alongside its traced-path branch.
	switchInsts uint64
	switchCost  uint64
	// issueShift is log2(IssueWidth) when the width is a power of two
	// (issuePow2), letting Compute replace its division with a shift.
	issueShift uint
	issuePow2  bool
}

// NewCore builds a core from cfg, validating it first.
func NewCore(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid config: %w", err)
	}
	c := &Core{
		cfg:         cfg,
		l1:          newCache(cfg.L1, true),
		l2:          newCache(cfg.L2, false),
		llc:         newCache(cfg.LLC, false),
		outstanding: make([]uint64, 0, cfg.MSHRs),
		switchInsts: cfg.SwitchCost * cfg.IssueWidth / 2,
		switchCost:  cfg.SwitchCost,
		curTask:     -1,
		curCS:       -1,
	}
	if w := cfg.IssueWidth; w&(w-1) == 0 {
		c.issuePow2 = true
		for 1<<c.issueShift < w {
			c.issueShift++
		}
	}
	return c, nil
}

// Config returns the configuration the core was built with.
func (c *Core) Config() Config { return c.cfg }

// Now returns the current cycle count.
func (c *Core) Now() uint64 { return c.clock }

// Seconds converts the elapsed cycle count to simulated wall-clock time.
func (c *Core) Seconds() float64 { return float64(c.clock) / c.cfg.FreqHz }

// Counters returns a snapshot of the PMU block (Cycles kept in sync with
// the clock).
func (c *Core) Counters() Counters {
	ctr := c.ctr
	ctr.Cycles = c.clock
	return ctr
}

// Reset clears the clock, counters, caches and prefetch state, so one
// core can run back-to-back experiments from a cold start.
func (c *Core) Reset() {
	c.clock = 0
	c.ctr = Counters{}
	c.l1.invalidateAll()
	c.l2.invalidateAll()
	c.llc.invalidateAll()
	c.outstanding = c.outstanding[:0]
	c.minReady = 0
	c.curTask = -1
	c.curCS = -1
}

// Compute charges insts simulated instructions of pure computation.
func (c *Core) Compute(insts uint64) {
	if insts == 0 {
		return
	}
	c.ctr.Instructions += insts
	if c.issuePow2 {
		c.clock += (insts + c.cfg.IssueWidth - 1) >> c.issueShift
	} else {
		c.clock += (insts + c.cfg.IssueWidth - 1) / c.cfg.IssueWidth
	}
}

// Stall advances the clock by cycles without retiring instructions; used
// for fixed overheads such as packet I/O batching costs.
func (c *Core) Stall(cycles uint64) {
	c.clock += cycles
	c.ctr.StallCycles += cycles
	if c.trc != nil {
		c.Emit(TraceStall, CauseFixed, cycles, 0, 0)
	}
}

// TaskSwitch charges the scheduler's NFTask switch cost. The emission
// is outlined (emitSwitch) to keep this on the inlining fast path.
func (c *Core) TaskSwitch() {
	c.ctr.TaskSwitches++
	c.clock += c.switchCost
	c.ctr.Instructions += c.switchInsts
	if c.trc != nil {
		c.emitSwitch()
	}
}

// emitSwitch is the cold traced tail of TaskSwitch.
//
//go:noinline
func (c *Core) emitSwitch() {
	c.Emit(TraceTaskSwitch, CauseNone, 0, 0, 0)
}

// Read charges a demand read of size bytes at addr. The body is the
// exact L1 fast path: a single-line span that hits a completed,
// non-prefetched L1 line charges its counters inline — the identical
// updates the general path's access() would make — and everything else
// falls through to the full burst machinery.
func (c *Core) Read(addr, size uint64) {
	line := addr >> lineShift
	if (addr+size-1)>>lineShift == line && size != 0 && c.alog == nil {
		l1 := c.l1
		h := (line * fibMul) >> l1.shadowShift
		if slot := int(l1.shadow[h]) - 1; slot >= 0 && l1.lines[slot] == line<<1|1 {
			if f := &l1.fill[slot]; f.readyAt <= c.clock && !f.prefetched {
				c.ctr.Reads++
				c.ctr.Instructions++
				c.ctr.L1Hits++
				c.clock += c.cfg.L1.HitLatency
				l1.stamps[slot] = c.clock
				return
			}
		}
		// Shadow miss: the line may still be L1-resident behind a hash
		// collision — burst's full probe settles it identically.
	}
	c.burst(addr, size, false)
}

// Write charges a demand write of size bytes at addr. Writes allocate,
// so they follow the same path as reads, including the L1 fast path.
func (c *Core) Write(addr, size uint64) {
	line := addr >> lineShift
	if (addr+size-1)>>lineShift == line && size != 0 && c.alog == nil {
		l1 := c.l1
		h := (line * fibMul) >> l1.shadowShift
		if slot := int(l1.shadow[h]) - 1; slot >= 0 && l1.lines[slot] == line<<1|1 {
			if f := &l1.fill[slot]; f.readyAt <= c.clock && !f.prefetched {
				c.ctr.Writes++
				c.ctr.Instructions++
				c.ctr.L1Hits++
				c.clock += c.cfg.L1.HitLatency
				l1.stamps[slot] = c.clock
				return
			}
		}
	}
	c.burst(addr, size, true)
}

// burst touches every line in [addr, addr+size) as one demand burst:
// the first missing line pays full latency, subsequent missing lines in
// the same burst pay BurstGap (overlapped fills). Per-line counter
// bumps are hoisted out of the loop (the final totals are identical),
// and the dominant single-line case (spans <= 64 B) skips the loop.
func (c *Core) burst(addr, size uint64, write bool) {
	if c.alog != nil {
		kind := AccessRead
		if write {
			kind = AccessWrite
		}
		c.alog(MemAccess{Addr: addr, Size: size, Cycle: c.clock, Kind: kind})
	}
	if size == 0 {
		return
	}
	first := addr >> lineShift
	last := (addr + size - 1) >> lineShift
	lines := last - first + 1
	if write {
		c.ctr.Writes += lines
	} else {
		c.ctr.Reads += lines
	}
	c.ctr.Instructions += lines
	if first == last {
		c.access(first, false)
		return
	}
	missed := false
	for line := first; line <= last; line++ {
		if c.access(line, missed) {
			missed = true
		}
	}
}

// access charges one demand line access. overlapped marks that an earlier
// line in the same burst already paid a full miss. It reports whether
// this access missed L1 entirely (i.e. was not an L1 or in-flight hit).
//
// Each level is probed exactly once: the probe that misses also yields
// the install victim, which stays valid because nothing touches that
// set again before the install (only outer levels and the clock move).
func (c *Core) access(line uint64, overlapped bool) bool {
	slot, v1 := c.l1.probe(line)
	if slot >= 0 {
		// L1 demand hit — the simulator's hottest operation, kept flat
		// here (access cannot inline a helper carrying the prefetch
		// bookkeeping and stay profitable). Only prefetched or
		// in-flight lines take the outlined slow path.
		c.ctr.L1Hits++
		f := &c.l1.fill[slot]
		if f.readyAt > c.clock || f.prefetched {
			c.demandHitPrefetched(f)
		}
		c.clock += c.cfg.L1.HitLatency
		c.l1.stamps[slot] = c.clock
		return false
	}
	c.ctr.L1Misses++
	var lat uint64
	cause := CauseL2
	if slot, v2 := c.l2.probe(line); slot >= 0 {
		c.ctr.L2Hits++
		lat = c.waitReady(c.l2, slot, c.cfg.L2.HitLatency)
		c.l2.touch(slot, c.clock)
	} else {
		c.ctr.L2Misses++
		if slot, v3 := c.llc.probe(line); slot >= 0 {
			c.ctr.LLCHits++
			cause = CauseLLC
			lat = c.waitReady(c.llc, slot, c.cfg.LLC.HitLatency)
			c.llc.touch(slot, c.clock)
		} else {
			c.ctr.LLCMisses++
			cause = CauseDRAM
			lat = c.cfg.DRAMLatency
			c.llc.installAt(v3, line, c.clock, c.clock)
		}
		c.l2.installAt(v2, line, c.clock, c.clock)
	}
	if overlapped && lat > c.cfg.BurstGap {
		lat = c.cfg.BurstGap
	}
	c.clock += lat
	c.ctr.StallCycles += lat
	if c.trc != nil {
		c.Emit(TraceStall, cause, lat, line<<lineShift, 0)
	}
	c.l1.installAt(v1, line, c.clock, c.clock)
	return true
}

// demandHitPrefetched resolves a demand hit on a prefetched line:
// either the fill is still in flight (stall for the remainder — a late
// prefetch) or it completed and the prefetch was useful.
//
//go:noinline
func (c *Core) demandHitPrefetched(f *fillMeta) {
	if f.readyAt > c.clock {
		stall := f.readyAt - c.clock
		c.clock += stall
		c.ctr.StallCycles += stall
		c.ctr.PrefetchLate++
		f.prefetched = false
		if c.trc != nil {
			c.Emit(TraceStall, CausePrefetchLate, stall, 0, 0)
		}
	} else if f.prefetched {
		c.ctr.PrefetchUseful++
		f.prefetched = false
		if c.trc != nil {
			c.Emit(TracePrefetchUseful, CauseNone, 0, 0, 0)
		}
	}
}

// waitReady stalls until an outer-level slot's fill completes, then
// charges that level's hit latency; returns the total charged cycles
// minus the stall (stall is applied immediately). The stall branch is
// outlined (stallLate) to keep waitReady inlinable.
func (c *Core) waitReady(lvl *cache, slot int, hitLat uint64) uint64 {
	if ready := lvl.fill[slot].readyAt; ready > c.clock {
		c.stallLate(ready - c.clock)
	}
	return hitLat
}

// stallLate charges a wait for an in-flight fill to complete.
//
//go:noinline
func (c *Core) stallLate(stall uint64) {
	c.clock += stall
	c.ctr.StallCycles += stall
	c.ctr.PrefetchLate++
	if c.trc != nil {
		c.Emit(TraceStall, CausePrefetchLate, stall, 0, 0)
	}
}

// Prefetch issues non-blocking fills for every line of [addr, addr+size).
// Lines already in L1 are counted redundant; fills beyond the free MSHRs
// are dropped. Each accepted or redundant line charges the issue cost.
func (c *Core) Prefetch(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> lineShift
	last := (addr + size - 1) >> lineShift
	if first == last {
		c.prefetchLine(first)
		return
	}
	for line := first; line <= last; line++ {
		c.prefetchLine(line)
	}
}

// PrefetchLine issues a prefetch for the single cache line containing
// addr. It is the pre-resolved form the step-plan compiler lowers
// Prefetch spans into: Prefetch(addr, size) over an aligned span is
// exactly one PrefetchLine per covered line, in ascending order.
func (c *Core) PrefetchLine(addr uint64) {
	c.prefetchLine(addr >> lineShift)
}

func (c *Core) prefetchLine(line uint64) {
	if c.alog != nil {
		c.alog(MemAccess{Addr: line << lineShift, Size: LineBytes, Cycle: c.clock, Kind: AccessPrefetch})
	}
	c.clock += c.cfg.PrefetchIssueCost
	c.ctr.Instructions++
	if c.l1.find(line) >= 0 {
		c.ctr.PrefetchRedundant++
		if c.trc != nil {
			c.Emit(TracePrefetchRedundant, CauseNone, line<<lineShift, 0, 0)
		}
		return
	}
	c.prefetchMiss(line)
}

// prefetchMiss is the tail of a prefetch issue for a line known absent
// from L1: MSHR admission, fill-latency determination and the installs.
func (c *Core) prefetchMiss(line uint64) {
	if c.activeMSHRs() >= c.cfg.MSHRs {
		c.ctr.PrefetchDropped++
		if c.trc != nil {
			c.Emit(TracePrefetchDropped, CauseNone, line<<lineShift, 0, 0)
		}
		return
	}
	// Fill latency depends on where the line currently lives. Victims
	// are picked lazily — only the levels actually installed into pay
	// the LRU pass, and redundant/dropped issues above pay none.
	var fill uint64
	if c.l2.find(line) >= 0 {
		fill = c.cfg.L2.HitLatency
	} else if c.llc.find(line) >= 0 {
		fill = c.cfg.LLC.HitLatency
	} else {
		fill = c.cfg.DRAMLatency
		c.llc.installAt(c.llc.victimOf(line), line, c.clock, c.clock+fill)
		c.l2.installAt(c.l2.victimOf(line), line, c.clock, c.clock+fill)
	}
	ready := c.clock + fill
	v1 := c.l1.victimOf(line)
	c.l1.installAt(v1, line, c.clock, ready)
	c.l1.fill[v1].prefetched = true
	if len(c.outstanding) == 0 || ready < c.minReady {
		c.minReady = ready
	}
	c.outstanding = append(c.outstanding, ready)
	c.ctr.PrefetchIssued++
	if c.trc != nil {
		c.Emit(TracePrefetchIssued, CauseNone, line<<lineShift, ready, 0)
	}
}

// activeMSHRs returns the number of fills still in flight at the
// current clock. The outstanding list is compacted lazily: while the
// clock has not reached the earliest completion (minReady), every entry
// is still live and the check is a single comparison.
func (c *Core) activeMSHRs() int {
	if len(c.outstanding) == 0 {
		return 0
	}
	if c.clock < c.minReady {
		return len(c.outstanding)
	}
	live := c.outstanding[:0]
	next := ^uint64(0)
	for _, ready := range c.outstanding {
		if ready > c.clock {
			live = append(live, ready)
			if ready < next {
				next = ready
			}
		}
	}
	c.outstanding = live
	c.minReady = next
	return len(live)
}

// DMAFill installs the lines of [addr, addr+size) into the LLC without
// charging core cycles, modelling DDIO: the NIC DMA-writes received
// packet buffers into the last-level cache, so the core's first header
// access costs an LLC hit rather than a DRAM round trip.
func (c *Core) DMAFill(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> lineShift
	last := (addr + size - 1) >> lineShift
	for line := first; line <= last; line++ {
		if slot, victim := c.llc.probe(line); slot < 0 {
			c.llc.installAt(victim, line, c.clock, c.clock)
		}
	}
}

// ResidentL1 reports whether every line of [addr, addr+size) is present
// in L1 (in-flight fills count as present). The scheduler uses this to
// maintain the NFTask P-state.
func (c *Core) ResidentL1(addr, size uint64) bool {
	if size == 0 {
		return true
	}
	first := addr >> lineShift
	last := (addr + size - 1) >> lineShift
	if first == last {
		return c.l1.find(first) >= 0
	}
	for line := first; line <= last; line++ {
		if c.l1.find(line) < 0 {
			return false
		}
	}
	return true
}

// ResidentL1Line reports whether the single line containing addr is
// present in L1 (in-flight fills count as present): one verified shadow
// probe in the common case, the pre-resolved form of ResidentL1 used by
// compiled step plans. The probe body is spelled out here (rather than
// delegating to the cache's find) so the call inlines into the
// scheduler's P-state check loop.
func (c *Core) ResidentL1Line(addr uint64) bool {
	line := addr >> lineShift
	l1 := c.l1
	h := (line * fibMul) >> l1.shadowShift
	if s := int(l1.shadow[h]) - 1; s >= 0 && l1.lines[s] == line<<1|1 {
		return true
	}
	return l1.scanExact(line, h) >= 0
}
