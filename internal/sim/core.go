package sim

import "fmt"

// Core is one simulated CPU core: a cycle clock, a private three-level
// cache hierarchy with tiered residency lookup (an exact L1 index in
// front of an outer-level residency directory), a bounded asynchronous
// prefetcher, and a PMU.
//
// A Core is not safe for concurrent use; the runtime gives each worker
// its own Core, matching the paper's share-nothing per-core design.
type Core struct {
	cfg Config

	clock uint64
	l1    *cache
	l2    *cache
	llc   *cache
	ctr   Counters

	// dir is the outer-level residency directory (see dir.go): probed
	// only after an L1 miss, one probe answers which outer level — if
	// any — holds a line, so the demand-miss and prefetch paths never
	// scan a tag array. The L1 itself resolves through its own exact
	// index (see cache.go), a few KiB that stay host-cache-resident.
	dir *residencyDir
	// scan, when true, routes every lookup through the historical
	// dense tag scans instead of the tiered structures (SetScanLookups).
	// The two strategies read the same maintained state and must produce
	// bit-identical simulated results; the differential tests hold
	// them to that.
	scan bool

	// MSHR bookkeeping: mshrReady holds the fill-complete cycle of each
	// occupied MSHR (0 = free slot), mshrFree is a ring of free slot
	// indexes, and mshrInFlight counts occupied slots. minReady is the
	// earliest completion among them; while the clock is below it no
	// fill can have retired, so the occupancy check is one comparison
	// and the drain scan runs only when something actually completed.
	mshrReady    []uint64
	mshrFree     []int32
	mshrFreeHead int
	mshrFreeTail int
	mshrInFlight int
	minReady     uint64

	// warmSink absorbs warmDir's directory pre-touch loads so the
	// compiler cannot elide them; the value is meaningless. Per-core so
	// parallel sweep workers never share the written cache line.
	warmSink uint64

	// Wakeup-stamp machinery (host-side only; see planops.go). evictEpoch
	// advances whenever a resident line is displaced — L1 evictions here,
	// outer-level evictions through the directory's tombstone writes — and
	// is the validity horizon recorded next to every fill-clock wakeup
	// stamp (model.Exec.WakeAt/WakeEpoch): any consumer of a residency
	// verdict taken at epoch E may reuse it only while the epoch still
	// reads E. wakeup gates the whole machinery (SetWakeupStamps); the
	// differential wakeup twin runs with it off and must match bit for
	// bit. planTrack/planDirty/planDirtyN are the exact refinement of the
	// epoch guard inside one planned issue: while planTrack is set, every
	// line installed into or evicted from L1 is appended to planDirty, so
	// IssueFetchPlanned can reuse the residency walk's verdicts for
	// untouched lines and re-probe only lines the issue itself moved.
	// planDirtyN == -1 means the list overflowed and every verdict is
	// re-proved. planMaxReady accumulates the max fill-complete cycle of
	// the MSHRs the tracked issue occupied — the wakeup stamp itself.
	evictEpoch   uint64
	wakeup       bool
	planTrack    bool
	planDirtyN   int
	planMaxReady uint64
	planDirty    [48]uint64

	// trc, when non-nil, receives cycle-timestamped trace events;
	// curTask and curCS are the attribution stamps (see trace.go).
	// Every emission site is guarded by a nil check so the disabled
	// path costs one predictable branch and zero allocations.
	trc     Tracer
	curTask int32
	curCS   int32

	// alog, when non-nil, receives every charged memory operation (see
	// accesslog.go); the differential-replay harness uses it to prove
	// two executors issue byte-identical access sequences.
	alog func(MemAccess)

	// switchInsts is SwitchCost*IssueWidth/2, precomputed so TaskSwitch
	// avoids the multiply on the scheduler's hottest edge; switchCost
	// caches cfg.SwitchCost to keep TaskSwitch within the inlining
	// budget alongside its traced-path branch.
	switchInsts uint64
	switchCost  uint64
	// issueShift is log2(IssueWidth) when the width is a power of two
	// (issuePow2), letting Compute replace its division with a shift.
	issueShift uint
	issuePow2  bool
}

// NewCore builds a core from cfg, validating it first.
func NewCore(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid config: %w", err)
	}
	dir := newResidencyDir(cfg.L2.slots() + cfg.LLC.slots())
	c := &Core{
		cfg:         cfg,
		dir:         dir,
		l1:          newExactCache(cfg.L1),
		l2:          newOuterCache(cfg.L2, dirL2Shift, dir),
		llc:         newOuterCache(cfg.LLC, dirLLCShift, dir),
		mshrReady:   make([]uint64, cfg.MSHRs),
		mshrFree:    make([]int32, cfg.MSHRs),
		switchInsts: cfg.SwitchCost * cfg.IssueWidth / 2,
		switchCost:  cfg.SwitchCost,
		curTask:     -1,
		curCS:       -1,
		wakeup:      true,
	}
	dir.attach(c.l2, c.llc)
	dir.epoch = &c.evictEpoch
	for i := range c.mshrFree {
		c.mshrFree[i] = int32(i)
	}
	if w := cfg.IssueWidth; w&(w-1) == 0 {
		c.issuePow2 = true
		for 1<<c.issueShift < w {
			c.issueShift++
		}
	}
	return c, nil
}

// Config returns the configuration the core was built with.
func (c *Core) Config() Config { return c.cfg }

// Now returns the current cycle count.
func (c *Core) Now() uint64 { return c.clock }

// Seconds converts the elapsed cycle count to simulated wall-clock time.
func (c *Core) Seconds() float64 { return float64(c.clock) / c.cfg.FreqHz }

// Counters returns a snapshot of the PMU block (Cycles kept in sync with
// the clock).
func (c *Core) Counters() Counters {
	ctr := c.ctr
	ctr.Cycles = c.clock
	return ctr
}

// SetScanLookups selects the lookup strategy: false (the default) uses
// the tiered structures (exact L1 index, then the outer-level residency
// directory), true the historical dense tag scans. Both are maintained
// at every install regardless of mode, so the switch is valid at any
// point and changes host cost only — never a simulated result. The scan
// twin exists for differential verification; leave it off outside tests.
func (c *Core) SetScanLookups(on bool) { c.scan = on }

// SetWakeupStamps toggles the fill-clock wakeup machinery (on by
// default): the planned prefetch issue that reuses the residency walk's
// verdicts (PlanResidency/IssueFetchPlanned) and the wakeup stamps it
// returns. Purely a host-cost strategy — residency probes charge
// nothing, so both settings produce bit-identical simulated results;
// the differential wakeup twin holds them to that. Scan mode bypasses
// the machinery regardless.
func (c *Core) SetWakeupStamps(on bool) { c.wakeup = on }

// WakeupStamps reports whether the fill-clock wakeup machinery is on.
func (c *Core) WakeupStamps() bool { return c.wakeup }

// SetDirMemo toggles the residency directory's probe memo (on by
// default): a small exact cache of recent directory verdicts,
// invalidated in place at every directory mutation. Host-cost only;
// the differential twins run with it off and must match bit for bit.
func (c *Core) SetDirMemo(on bool) { c.dir.setMemo(on) }

// EvictionEpoch returns the core's eviction epoch: a host-side counter
// advanced on every L1 or outer-level eviction. A residency verdict
// recorded at epoch E (e.g. a wakeup stamp) is trivially still valid
// while the epoch reads E — no line left any level in between.
func (c *Core) EvictionEpoch() uint64 { return c.evictEpoch }

// SetEvictionEpoch forces the eviction epoch; a test hook for the
// epoch-wrap differential (the epoch is compared for equality only, so
// behavior must be identical across a wrap).
func (c *Core) SetEvictionEpoch(v uint64) { c.evictEpoch = v }

// Reset returns the core to its just-constructed state — clock,
// counters, caches, directory and prefetch state — so one pooled core
// can run back-to-back experiments from a cold start. The cost is tied
// to what the previous run actually touched, not to configured
// capacity: the L1 bumps its generation word and memsets only its
// compact tags (resetExact), and the directory sweep zeroes the outer
// levels' tags through its live entries (sweepReset) rather than
// walking megabytes of stamp and ready arrays. The reset-vs-fresh
// differential test pins the equivalence bit-for-bit.
func (c *Core) Reset() {
	c.clock = 0
	c.ctr = Counters{}
	c.l1.resetExact()
	c.dir.sweepReset()
	for i := range c.mshrReady {
		c.mshrReady[i] = 0
		c.mshrFree[i] = int32(i)
	}
	c.mshrFreeHead = 0
	c.mshrFreeTail = 0
	c.mshrInFlight = 0
	c.minReady = 0
	c.curTask = -1
	c.curCS = -1
	// A reset displaces everything at once; stamps recorded before it
	// must not validate after.
	c.evictEpoch++
	c.planTrack = false
	c.planDirtyN = 0
}

// Compute charges insts simulated instructions of pure computation.
func (c *Core) Compute(insts uint64) {
	if insts == 0 {
		return
	}
	c.ctr.Instructions += insts
	if c.issuePow2 {
		c.clock += (insts + c.cfg.IssueWidth - 1) >> c.issueShift
	} else {
		c.clock += (insts + c.cfg.IssueWidth - 1) / c.cfg.IssueWidth
	}
}

// Stall advances the clock by cycles without retiring instructions; used
// for fixed overheads such as packet I/O batching costs.
func (c *Core) Stall(cycles uint64) {
	c.clock += cycles
	c.ctr.StallCycles += cycles
	if c.trc != nil {
		c.Emit(TraceStall, CauseFixed, cycles, 0, 0)
	}
}

// TaskSwitch charges the scheduler's NFTask switch cost. The emission
// is outlined (emitSwitch) to keep this on the inlining fast path.
func (c *Core) TaskSwitch() {
	c.ctr.TaskSwitches++
	c.clock += c.switchCost
	c.ctr.Instructions += c.switchInsts
	if c.trc != nil {
		c.emitSwitch()
	}
}

// emitSwitch is the cold traced tail of TaskSwitch.
//
//go:noinline
func (c *Core) emitSwitch() {
	c.Emit(TraceTaskSwitch, CauseNone, 0, 0, 0)
}

// StallWake advances the clock by cycles of scheduler idle time: every
// in-flight NFTask is parked on its fill clock, so the wakeup scheduler
// forwards the core to the earliest wakeup stamp instead of spinning
// probe laps. Attributed to CauseWakeWait so stall breakdowns separate
// "waiting for fills with nothing runnable" from fixed overheads.
func (c *Core) StallWake(cycles uint64) {
	c.clock += cycles
	c.ctr.StallCycles += cycles
	if c.trc != nil {
		c.Emit(TraceStall, CauseWakeWait, cycles, 0, 0)
	}
}

// EarliestMSHRReady returns the completion cycle of the earliest
// in-flight fill, or 0 when no fill is outstanding. Read-only: it never
// drains completed MSHRs, so it is safe mid-schedule. The wakeup
// scheduler uses it as the conservative horizon for a parked task whose
// stamp is empty (its prefetch issue was fully dropped for want of
// MSHRs): once any fill retires, capacity frees and progress resumes.
func (c *Core) EarliestMSHRReady() uint64 {
	if c.mshrInFlight == 0 {
		return 0
	}
	return c.minReady
}

// StampValid reports whether a wakeup stamp recorded at the given
// eviction epoch is still trivially valid: the epoch is compared for
// equality only (wrap-safe), so any eviction since the stamp — which
// may have displaced a plan line the stamp vouched for — voids it.
func (c *Core) StampValid(epoch uint64) bool { return c.evictEpoch == epoch }

// Read charges a demand read of size bytes at addr. The body is the
// exact L1 fast path: a single-line span whose home slot in the exact
// map matches charges its counters inline — the identical updates the
// general path's access() would make, including the prefetched/
// in-flight resolution (demandHitPrefetched, the same outlined tail
// access uses) — and everything else falls through to the full burst
// machinery.
func (c *Core) Read(addr, size uint64) {
	line := addr >> lineShift
	if (addr+size-1)>>lineShift == line && size != 0 && c.alog == nil && !c.scan {
		l1 := c.l1
		f := ((line * fibMul) >> l1.mapShift) * 2
		if l1.kv[f] == l1.genw+(line<<1|1) {
			s := int(l1.kv[f+1])
			c.ctr.Reads++
			c.ctr.Instructions++
			c.ctr.L1Hits++
			if l1.ready[s] > c.clock || l1.pref[s] {
				c.demandHitPrefetched(s)
			}
			c.clock += c.cfg.L1.HitLatency
			l1.stamps[s] = c.clock
			return
		}
		// Home mismatch: the line may still be resident behind probe
		// displacement — burst's full probe settles it identically.
	}
	c.burst(addr, size, false)
}

// Write charges a demand write of size bytes at addr. Writes allocate,
// so they follow the same path as reads, including the L1 fast path.
func (c *Core) Write(addr, size uint64) {
	line := addr >> lineShift
	if (addr+size-1)>>lineShift == line && size != 0 && c.alog == nil && !c.scan {
		l1 := c.l1
		f := ((line * fibMul) >> l1.mapShift) * 2
		if l1.kv[f] == l1.genw+(line<<1|1) {
			s := int(l1.kv[f+1])
			c.ctr.Writes++
			c.ctr.Instructions++
			c.ctr.L1Hits++
			if l1.ready[s] > c.clock || l1.pref[s] {
				c.demandHitPrefetched(s)
			}
			c.clock += c.cfg.L1.HitLatency
			l1.stamps[s] = c.clock
			return
		}
	}
	c.burst(addr, size, true)
}

// burst touches every line in [addr, addr+size) as one demand burst:
// the first missing line pays full latency, subsequent missing lines in
// the same burst pay BurstGap (overlapped fills). Per-line counter
// bumps are hoisted out of the loop (the final totals are identical),
// and the dominant single-line case (spans <= 64 B) skips the loop.
func (c *Core) burst(addr, size uint64, write bool) {
	if c.alog != nil {
		kind := AccessRead
		if write {
			kind = AccessWrite
		}
		c.alog(MemAccess{Addr: addr, Size: size, Cycle: c.clock, Kind: kind})
	}
	if size == 0 {
		return
	}
	first := addr >> lineShift
	last := (addr + size - 1) >> lineShift
	lines := last - first + 1
	if write {
		c.ctr.Writes += lines
	} else {
		c.ctr.Reads += lines
	}
	c.ctr.Instructions += lines
	if first == last {
		c.access(first, false)
		return
	}
	missed := false
	for line := first; line <= last; line++ {
		if c.access(line, missed) {
			missed = true
		}
	}
}

// access charges one demand line access. overlapped marks that an earlier
// line in the same burst already paid a full miss. It reports whether
// this access missed L1 entirely (i.e. was not an L1 or in-flight hit).
//
// Tiered lookup: the exact L1 index answers the hit path against a few
// host-resident KiB; only a genuine L1 miss probes the outer-level
// directory, where one probe resolves the rest of the hierarchy — an
// absent entry is the DRAM case — and no level is scanned. Victims are
// picked per installed level at install time, which is the same choice
// the historical probe-time pick made: nothing touches those sets in
// between (only other levels and the clock move, and the clock never
// writes a stamp).
func (c *Core) access(line uint64, overlapped bool) bool {
	if c.scan {
		return c.accessScan(line, overlapped)
	}
	l1 := c.l1
	slot := l1.findExact(line)
	if slot >= 0 {
		// L1 demand hit — the simulator's hottest operation, kept flat
		// here. Only prefetched or in-flight lines take the outlined
		// slow path.
		c.ctr.L1Hits++
		if l1.ready[slot] > c.clock || l1.pref[slot] {
			c.demandHitPrefetched(slot)
		}
		c.clock += c.cfg.L1.HitLatency
		l1.stamps[slot] = c.clock
		return false
	}
	c.ctr.L1Misses++
	e := c.dir.get(line)
	// Outer levels installed into accumulate their directory fields in
	// val; one setFields probe at the end records the whole fill (the
	// cluster is already host-warm from the get above). Victim fields
	// are cleared eagerly inside fillSlot. The L1 install itself needs
	// no directory traffic at all.
	var lat, mask, val uint64
	cause := CauseL2
	if s := e & dirSlotMask; s != 0 {
		slot := int(s) - 1
		c.ctr.L2Hits++
		lat = c.waitReady(c.l2, slot, c.cfg.L2.HitLatency)
		c.l2.touch(slot, c.clock)
	} else {
		c.ctr.L2Misses++
		if s := e >> dirLLCShift; s != 0 {
			slot := int(s) - 1
			c.ctr.LLCHits++
			cause = CauseLLC
			lat = c.waitReady(c.llc, slot, c.cfg.LLC.HitLatency)
			c.llc.touch(slot, c.clock)
		} else {
			c.ctr.LLCMisses++
			cause = CauseDRAM
			lat = c.cfg.DRAMLatency
			v3 := c.llc.victimOf(line)
			c.llc.fillSlot(v3, line, c.clock, c.clock)
			mask = dirSlotMask << dirLLCShift
			val = uint64(v3+1) << dirLLCShift
		}
		v2 := c.l2.victimOf(line)
		c.l2.fillSlot(v2, line, c.clock, c.clock)
		mask |= dirSlotMask << dirL2Shift
		val |= uint64(v2+1) << dirL2Shift
	}
	if overlapped && lat > c.cfg.BurstGap {
		lat = c.cfg.BurstGap
	}
	c.clock += lat
	c.ctr.StallCycles += lat
	if c.trc != nil {
		c.Emit(TraceStall, cause, lat, line<<lineShift, 0)
	}
	v1 := l1.victimOf(line)
	if l1.tags[v1] != 0 {
		c.evictEpoch++
	}
	l1.fillExact(v1, line, c.clock, c.clock)
	if mask != 0 {
		c.dir.setFields(line, mask, val)
	}
	return true
}

// accessScan is the verification-twin access path: identical logic to
// access driven by the historical per-level dense tag scans (the fused
// probe returns both the hit slot and the install victim). Each level
// is probed exactly once; the probe that misses also yields the install
// victim, which stays valid because nothing touches that set again
// before the install.
func (c *Core) accessScan(line uint64, overlapped bool) bool {
	slot, v1 := c.l1.probe(line)
	if slot >= 0 {
		c.ctr.L1Hits++
		if c.l1.ready[slot] > c.clock || c.l1.pref[slot] {
			c.demandHitPrefetched(slot)
		}
		c.clock += c.cfg.L1.HitLatency
		c.l1.stamps[slot] = c.clock
		return false
	}
	c.ctr.L1Misses++
	var lat uint64
	cause := CauseL2
	if slot, v2 := c.l2.probe(line); slot >= 0 {
		c.ctr.L2Hits++
		lat = c.waitReady(c.l2, slot, c.cfg.L2.HitLatency)
		c.l2.touch(slot, c.clock)
	} else {
		c.ctr.L2Misses++
		if slot, v3 := c.llc.probe(line); slot >= 0 {
			c.ctr.LLCHits++
			cause = CauseLLC
			lat = c.waitReady(c.llc, slot, c.cfg.LLC.HitLatency)
			c.llc.touch(slot, c.clock)
		} else {
			c.ctr.LLCMisses++
			cause = CauseDRAM
			lat = c.cfg.DRAMLatency
			c.llc.installAt(v3, line, c.clock, c.clock)
		}
		c.l2.installAt(v2, line, c.clock, c.clock)
	}
	if overlapped && lat > c.cfg.BurstGap {
		lat = c.cfg.BurstGap
	}
	c.clock += lat
	c.ctr.StallCycles += lat
	if c.trc != nil {
		c.Emit(TraceStall, cause, lat, line<<lineShift, 0)
	}
	if c.l1.tags[v1] != 0 {
		c.evictEpoch++
	}
	c.l1.installAt(v1, line, c.clock, c.clock)
	return true
}

// demandHitPrefetched resolves a demand hit on a prefetched L1 line:
// either the fill is still in flight (stall for the remainder — a late
// prefetch) or it completed and the prefetch was useful.
//
//go:noinline
func (c *Core) demandHitPrefetched(slot int) {
	if r := c.l1.ready[slot]; r > c.clock {
		stall := r - c.clock
		c.clock += stall
		c.ctr.StallCycles += stall
		c.ctr.PrefetchLate++
		c.l1.pref[slot] = false
		if c.trc != nil {
			c.Emit(TraceStall, CausePrefetchLate, stall, 0, 0)
		}
	} else if c.l1.pref[slot] {
		c.ctr.PrefetchUseful++
		c.l1.pref[slot] = false
		if c.trc != nil {
			c.Emit(TracePrefetchUseful, CauseNone, 0, 0, 0)
		}
	}
}

// waitReady stalls until an outer-level slot's fill completes, then
// charges that level's hit latency; returns the total charged cycles
// minus the stall (stall is applied immediately). The stall branch is
// outlined (stallLate) to keep waitReady inlinable.
func (c *Core) waitReady(lvl *cache, slot int, hitLat uint64) uint64 {
	if ready := lvl.ready[slot]; ready > c.clock {
		c.stallLate(ready - c.clock)
	}
	return hitLat
}

// stallLate charges a wait for an in-flight fill to complete.
//
//go:noinline
func (c *Core) stallLate(stall uint64) {
	c.clock += stall
	c.ctr.StallCycles += stall
	c.ctr.PrefetchLate++
	if c.trc != nil {
		c.Emit(TraceStall, CausePrefetchLate, stall, 0, 0)
	}
}

// Prefetch issues non-blocking fills for every line of [addr, addr+size).
// Lines already in L1 are counted redundant; fills beyond the free MSHRs
// are dropped. Each accepted or redundant line charges the issue cost.
func (c *Core) Prefetch(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> lineShift
	last := (addr + size - 1) >> lineShift
	if first == last {
		c.prefetchLine(first)
		return
	}
	for line := first; line <= last; line++ {
		c.prefetchLine(line)
	}
}

// PrefetchLine issues a prefetch for the single cache line containing
// addr. It is the pre-resolved form the step-plan compiler lowers
// Prefetch spans into: Prefetch(addr, size) over an aligned span is
// exactly one PrefetchLine per covered line, in ascending order.
func (c *Core) PrefetchLine(addr uint64) {
	c.prefetchLine(addr >> lineShift)
}

func (c *Core) prefetchLine(line uint64) {
	if c.alog != nil {
		c.alog(MemAccess{Addr: line << lineShift, Size: LineBytes, Cycle: c.clock, Kind: AccessPrefetch})
	}
	c.clock += c.cfg.PrefetchIssueCost
	c.ctr.Instructions++
	if c.scan {
		if c.l1.find(line) >= 0 {
			c.prefetchRedundant(line)
			return
		}
		c.prefetchMissScan(line)
		return
	}
	// The redundancy check is the exact L1 index; only a genuine miss
	// pays the directory probe that prices the fill.
	if c.l1.findExact(line) >= 0 {
		c.prefetchRedundant(line)
		return
	}
	c.prefetchMiss(line)
}

// prefetchRedundant charges a prefetch for a line already in L1.
func (c *Core) prefetchRedundant(line uint64) {
	c.ctr.PrefetchRedundant++
	if c.trc != nil {
		c.Emit(TracePrefetchRedundant, CauseNone, line<<lineShift, 0, 0)
	}
}

// prefetchMiss is the tail of a prefetch issue for a line known absent
// from L1: MSHR admission, fill-latency determination and the installs.
// The directory probe that prices the fill runs only after admission —
// a dropped prefetch changes nothing the probe could inform, so the
// cold table touch would be pure waste on the drop path.
func (c *Core) prefetchMiss(line uint64) {
	if c.scan {
		c.prefetchMissScan(line)
		return
	}
	if c.mshrInFlight > 0 && c.clock >= c.minReady {
		c.drainMSHRs()
	}
	if c.mshrInFlight >= c.cfg.MSHRs {
		c.prefetchDropped(line)
		return
	}
	c.prefetchMissAt(line, c.dir.get(line))
}

// prefetchMissAt finishes an *admitted* prefetch issue given the line's
// outer-level directory value e (the caller established absence from L1
// and MSHR availability).
func (c *Core) prefetchMissAt(line uint64, e uint64) {
	// Fill latency depends on where the line currently lives. Victims
	// are picked lazily — only the levels actually installed into pay
	// the LRU pass, and redundant/dropped issues above pay none. As in
	// access, outer installs batch their directory fields into one
	// setFields probe on the warm cluster; outer hits write nothing.
	var mask, val, fill uint64
	if e&dirSlotMask != 0 {
		fill = c.cfg.L2.HitLatency
	} else if e>>dirLLCShift != 0 {
		fill = c.cfg.LLC.HitLatency
	} else {
		fill = c.cfg.DRAMLatency
		v3 := c.llc.victimOf(line)
		c.llc.fillSlot(v3, line, c.clock, c.clock+fill)
		v2 := c.l2.victimOf(line)
		c.l2.fillSlot(v2, line, c.clock, c.clock+fill)
		mask = dirSlotMask<<dirLLCShift | dirSlotMask<<dirL2Shift
		val = uint64(v3+1)<<dirLLCShift | uint64(v2+1)<<dirL2Shift
	}
	ready := c.clock + fill
	v1 := c.l1.victimOf(line)
	if c.l1.tags[v1] != 0 {
		c.evictEpoch++
		if c.planTrack {
			c.planDirtyAdd(c.l1.lineOf(v1))
		}
	}
	if c.planTrack {
		c.planDirtyAdd(line)
		if ready > c.planMaxReady {
			c.planMaxReady = ready
		}
	}
	c.l1.fillExact(v1, line, c.clock, ready)
	c.l1.pref[v1] = true
	if mask != 0 {
		c.dir.setFields(line, mask, val)
	}
	c.mshrPush(ready)
	c.ctr.PrefetchIssued++
	if c.trc != nil {
		c.Emit(TracePrefetchIssued, CauseNone, line<<lineShift, ready, 0)
	}
}

// planDirtyAdd records a line the current planned issue installed or
// evicted, so the residency verdicts PlanResidency recorded stay
// reusable for every line not in the list. Overflow (planDirtyN == -1)
// disables verdict reuse for the rest of the issue — the exact,
// conservative fallback.
func (c *Core) planDirtyAdd(line uint64) {
	n := c.planDirtyN
	if n < 0 {
		return
	}
	if n == len(c.planDirty) {
		c.planDirtyN = -1
		return
	}
	c.planDirty[n] = line
	c.planDirtyN = n + 1
}

// planClean reports whether line was untouched by the current planned
// issue so far (and the dirty list did not overflow): a verdict taken
// by the walk is still exact for it.
func (c *Core) planClean(line uint64) bool {
	n := c.planDirtyN
	if n < 0 {
		return false
	}
	for _, d := range c.planDirty[:n] {
		if d == line {
			return false
		}
	}
	return true
}

// mshrPush occupies one MSHR until the fill completes at ready.
func (c *Core) mshrPush(ready uint64) {
	idx := c.mshrFree[c.mshrFreeHead]
	c.mshrFreeHead++
	if c.mshrFreeHead == len(c.mshrFree) {
		c.mshrFreeHead = 0
	}
	c.mshrReady[idx] = ready
	c.mshrInFlight++
	if c.mshrInFlight == 1 || ready < c.minReady {
		c.minReady = ready
	}
}

// prefetchMissScan is the verification-twin tail of a prefetch issue,
// probing the outer levels by dense tag scan.
func (c *Core) prefetchMissScan(line uint64) {
	if c.mshrInFlight > 0 && c.clock >= c.minReady {
		c.drainMSHRs()
	}
	if c.mshrInFlight >= c.cfg.MSHRs {
		c.prefetchDropped(line)
		return
	}
	var fill uint64
	if c.l2.find(line) >= 0 {
		fill = c.cfg.L2.HitLatency
	} else if c.llc.find(line) >= 0 {
		fill = c.cfg.LLC.HitLatency
	} else {
		fill = c.cfg.DRAMLatency
		c.llc.installAt(c.llc.victimOf(line), line, c.clock, c.clock+fill)
		c.l2.installAt(c.l2.victimOf(line), line, c.clock, c.clock+fill)
	}
	ready := c.clock + fill
	v1 := c.l1.victimOf(line)
	if c.l1.tags[v1] != 0 {
		c.evictEpoch++
	}
	c.l1.installAt(v1, line, c.clock, ready)
	c.l1.pref[v1] = true
	c.mshrPush(ready)
	c.ctr.PrefetchIssued++
	if c.trc != nil {
		c.Emit(TracePrefetchIssued, CauseNone, line<<lineShift, ready, 0)
	}
}

// prefetchDropped charges a prefetch rejected for want of MSHRs.
func (c *Core) prefetchDropped(line uint64) {
	c.ctr.PrefetchDropped++
	if c.trc != nil {
		c.Emit(TracePrefetchDropped, CauseNone, line<<lineShift, 0, 0)
	}
}

// drainMSHRs retires every fill whose completion cycle has passed,
// returning its slot to the free ring, and recomputes minReady over the
// survivors. Callers gate on clock >= minReady, so between completions
// the occupancy check never scans.
func (c *Core) drainMSHRs() {
	next := ^uint64(0)
	for i, r := range c.mshrReady {
		if r == 0 {
			continue
		}
		if r > c.clock {
			if r < next {
				next = r
			}
			continue
		}
		c.mshrReady[i] = 0
		c.mshrFree[c.mshrFreeTail] = int32(i)
		c.mshrFreeTail++
		if c.mshrFreeTail == len(c.mshrFree) {
			c.mshrFreeTail = 0
		}
		c.mshrInFlight--
	}
	c.minReady = next
}

// activeMSHRs returns the number of fills still in flight at the
// current clock; diagnostic twin of the admission check.
func (c *Core) activeMSHRs() int {
	if c.mshrInFlight > 0 && c.clock >= c.minReady {
		c.drainMSHRs()
	}
	return c.mshrInFlight
}

// DMAFill installs the lines of [addr, addr+size) into the LLC without
// charging core cycles, modelling DDIO: the NIC DMA-writes received
// packet buffers into the last-level cache, so the core's first header
// access costs an LLC hit rather than a DRAM round trip.
func (c *Core) DMAFill(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> lineShift
	last := (addr + size - 1) >> lineShift
	for line := first; line <= last; line++ {
		if c.scan {
			if slot, victim := c.llc.probe(line); slot < 0 {
				c.llc.installAt(victim, line, c.clock, c.clock)
			}
		} else if c.dir.get(line)>>dirLLCShift == 0 {
			c.llc.installAt(c.llc.victimOf(line), line, c.clock, c.clock)
		}
	}
}

// ResidentL1 reports whether every line of [addr, addr+size) is present
// in L1 (in-flight fills count as present). The scheduler uses this to
// maintain the NFTask P-state.
func (c *Core) ResidentL1(addr, size uint64) bool {
	if size == 0 {
		return true
	}
	first := addr >> lineShift
	last := (addr + size - 1) >> lineShift
	if c.scan {
		for line := first; line <= last; line++ {
			if c.l1.find(line) < 0 {
				return false
			}
		}
		return true
	}
	for line := first; line <= last; line++ {
		if c.l1.findExact(line) < 0 {
			return false
		}
	}
	return true
}

// ResidentL1Line reports whether the single line containing addr is
// present in L1 (in-flight fills count as present): the exact map's
// home probe in the common case, the pre-resolved form of ResidentL1
// used by compiled step plans. The home probe is spelled out here
// (rather than delegating to findExact) so the call inlines into the
// scheduler's P-state check loop.
func (c *Core) ResidentL1Line(addr uint64) bool {
	line := addr >> lineShift
	if c.scan {
		return c.l1.find(line) >= 0
	}
	l1 := c.l1
	k := l1.kv[((line*fibMul)>>l1.mapShift)*2]
	if k == l1.genw+(line<<1|1) {
		return true
	}
	if k&1 == 0 || k>>l1GenShift != l1.gen {
		// Free or stale home slot: the authoritative miss verdict.
		return false
	}
	return l1.findExact(line) >= 0
}
