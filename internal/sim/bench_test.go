package sim

import "testing"

// Host-side microbenchmarks for the simulator's hot kernels. These
// measure *host* nanoseconds, not simulated cycles: the simulator's
// answers are fixed by construction (see golden tests), so the only
// thing allowed to change here is how fast the host computes them.

// benchCore returns a fresh default core, failing the benchmark on
// config errors.
func benchCore(b *testing.B) *Core {
	b.Helper()
	c, err := NewCore(DefaultConfig())
	if err != nil {
		b.Fatalf("NewCore: %v", err)
	}
	return c
}

// BenchmarkCacheLookup measures the raw lookup kernel on warm lines:
// the single most executed operation in the simulator, now one verified
// probe of the exact L1 index.
func BenchmarkCacheLookup(b *testing.B) {
	cfg := DefaultConfig().L1
	c := newExactCache(cfg)
	// Fill a handful of sets so lookups traverse realistic occupancy.
	lines := make([]uint64, 64)
	for i := range lines {
		lines[i] = uint64(i)
		c.install(lines[i], uint64(i), uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var slot int
	for i := 0; i < b.N; i++ {
		slot = c.lookup(lines[i&63])
	}
	if slot < 0 {
		b.Fatal("warm line missed")
	}
}

// BenchmarkCoreReadHit measures a demand read that always hits L1 —
// the steady-state fast path of every state access.
func BenchmarkCoreReadHit(b *testing.B) {
	c := benchCore(b)
	const addr = 1 << 20
	c.Read(addr, 8) // warm the line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(addr, 8)
	}
}

// BenchmarkCoreReadMiss measures demand reads over a footprint far
// beyond the LLC, so (almost) every access walks the full miss path:
// three tag scans plus three installs.
func BenchmarkCoreReadMiss(b *testing.B) {
	c := benchCore(b)
	span := uint64(64 << 20) // 64 MiB >> 2 MiB LLC
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 8 * LineBytes) % span
		c.Read(addr, 8)
	}
}

// BenchmarkHierarchyMiss measures demand reads that miss L1 and
// resolve at each deeper level in turn. Cyclic sweeps over footprints
// wedged between level capacities guarantee the resolution level: a
// cyclic LRU sweep larger than a level always misses it, and one
// smaller than the next level always hits there once warm.
func BenchmarkHierarchyMiss(b *testing.B) {
	cfg := DefaultConfig()
	for _, tc := range []struct {
		name  string
		lines uint64
	}{
		// L1 512 lines, L2 16384, LLC 32768 with the default config.
		{"HitL2", uint64(cfg.L1.slots()) * 8},
		{"HitLLC", uint64(cfg.L2.slots()) * 3 / 2},
		{"DRAM", uint64(cfg.LLC.slots()) * 32},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := benchCore(b)
			for i := uint64(0); i < tc.lines; i++ { // warm the target level
				c.Read(i*LineBytes, 8)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Read((uint64(i)%tc.lines)*LineBytes, 8)
			}
			b.StopTimer()
			ctr := c.Counters()
			if ctr.L1Hits > ctr.L1Misses/8 {
				b.Fatalf("sweep not missing L1: %d hits vs %d misses", ctr.L1Hits, ctr.L1Misses)
			}
		})
	}
}

// BenchmarkMSHRPressure measures a prefetch storm at the MSHR limit:
// distinct never-resident lines issued back to back, so the admission
// check runs every time, the MSHRs saturate, fills retire in bursts as
// the issue cost advances the clock past minReady, and the drain/free-
// ring machinery cycles continuously between drops and re-admissions.
func BenchmarkMSHRPressure(b *testing.B) {
	c := benchCore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PrefetchLine(uint64(i) * 64 * LineBytes) // distinct sets, never resident
	}
	b.StopTimer()
	ctr := c.Counters()
	if b.N > 1000 && (ctr.PrefetchDropped == 0 || ctr.PrefetchIssued == 0) {
		b.Fatalf("storm not at the limit: %d issued, %d dropped", ctr.PrefetchIssued, ctr.PrefetchDropped)
	}
}

// BenchmarkPrefetchLine measures the prefetch issue path, including
// the MSHR occupancy check, with periodic stalls so fills retire and
// the MSHR list cycles through fill and drain.
func BenchmarkPrefetchLine(b *testing.B) {
	c := benchCore(b)
	mshrs := c.cfg.MSHRs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) * 64 * LineBytes // distinct sets, never resident
		c.Prefetch(addr, 8)
		if i%mshrs == mshrs-1 {
			c.Stall(c.cfg.DRAMLatency) // retire outstanding fills
		}
	}
}

// BenchmarkCoreReset measures one pooled-core cycle: a 4096-line warm
// pass (8x the L1, so every level and the directory hold live state)
// followed by the generation-stamped Reset. Contrast with
// BenchmarkNewCore, the per-point construction cost pooling avoids.
func BenchmarkCoreReset(b *testing.B) {
	c := benchCore(b)
	const lines = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := uint64(0); l < lines; l++ {
			c.Read(l*LineBytes, 8)
		}
		c.Reset()
	}
}

// BenchmarkNewCore measures building a default core from scratch — the
// allocation and zeroing a pooled, Reset core does not pay.
func BenchmarkNewCore(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCore(cfg); err != nil {
			b.Fatalf("NewCore: %v", err)
		}
	}
}

// BenchmarkResidentL1 measures the P-state verification probe on a
// resident single-line span (the dominant case: spans are <= 64 B).
func BenchmarkResidentL1(b *testing.B) {
	c := benchCore(b)
	const addr = 1 << 20
	c.Read(addr, 8)
	b.ReportAllocs()
	b.ResetTimer()
	ok := true
	for i := 0; i < b.N; i++ {
		ok = c.ResidentL1(addr, 8) && ok
	}
	if !ok {
		b.Fatal("warm line not resident")
	}
}

// BenchmarkResidentCheck measures the compiled-plan P-state probe: a
// FirstNonResident pass over a fully resident fetch plan, the question
// the interleaved scheduler asks before every action.
func BenchmarkResidentCheck(b *testing.B) {
	c := benchCore(b)
	var bases [8]uint64
	ops := make([]FetchOp, 4)
	for i := range ops {
		addr := uint64(1<<20) + uint64(i)*LineBytes
		c.Read(addr, 8)
		ops[i] = FetchOp{Off: addr, Size: LineBytes, Line: true}
	}
	b.ReportAllocs()
	b.ResetTimer()
	miss := -1
	for i := 0; i < b.N; i++ {
		miss = c.FirstNonResident(&bases, ops)
	}
	if miss != -1 {
		b.Fatalf("warm plan reported miss at %d", miss)
	}
}
