package sim

// This file is the core-side executor for compiled step plans (see
// internal/model's plan compiler). Plans lower every declared access to
// a (base-table index, pre-added offset) pair; the loops that charge
// those accesses live here, on the Core, so one call per phase replaces
// one call per access and the cache pointers, clock and counters stay
// register-resident across a whole span list.
//
// The charged sequence is identical to calling Read/Write/Prefetch/
// ResidentL1 once per op in op order — the loops below are those calls
// inlined, nothing more.

// PlanOp is one compiled read or write: addr = bases[Base&7] + Off.
type PlanOp struct {
	Off  uint64
	Size uint64
	Base uint8
}

// FetchOp is one compiled prefetch/residency step: a pre-resolved
// single line (Line == true, Off is the line-start offset) or a span
// fallback for bases whose alignment is unknown at compile time.
type FetchOp struct {
	Off  uint64
	Size uint64
	Base uint8
	Line bool
}

// ReadSpans charges a demand read per op, exactly Read(addr, size) in
// op order.
func (c *Core) ReadSpans(bases *[8]uint64, ops []PlanOp) {
	l1 := c.l1
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		line := addr >> lineShift
		if (addr+op.Size-1)>>lineShift == line && op.Size != 0 && c.alog == nil {
			h := (line * fibMul) >> l1.shadowShift
			if slot := int(l1.shadow[h]) - 1; slot >= 0 && l1.lines[slot] == line<<1|1 {
				if f := &l1.fill[slot]; f.readyAt <= c.clock && !f.prefetched {
					c.ctr.Reads++
					c.ctr.Instructions++
					c.ctr.L1Hits++
					c.clock += c.cfg.L1.HitLatency
					l1.stamps[slot] = c.clock
					continue
				}
			}
		}
		c.burst(addr, op.Size, false)
	}
}

// WriteSpans charges a demand write per op, exactly Write(addr, size)
// in op order.
func (c *Core) WriteSpans(bases *[8]uint64, ops []PlanOp) {
	l1 := c.l1
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		line := addr >> lineShift
		if (addr+op.Size-1)>>lineShift == line && op.Size != 0 && c.alog == nil {
			h := (line * fibMul) >> l1.shadowShift
			if slot := int(l1.shadow[h]) - 1; slot >= 0 && l1.lines[slot] == line<<1|1 {
				if f := &l1.fill[slot]; f.readyAt <= c.clock && !f.prefetched {
					c.ctr.Writes++
					c.ctr.Instructions++
					c.ctr.L1Hits++
					c.clock += c.cfg.L1.HitLatency
					l1.stamps[slot] = c.clock
					continue
				}
			}
		}
		c.burst(addr, op.Size, true)
	}
}

// FirstNonResident returns the index of the first op whose lines are
// not all L1-resident, or -1 when the whole plan is resident. Residency
// probes charge nothing, exactly like ResidentL1.
func (c *Core) FirstNonResident(bases *[8]uint64, ops []FetchOp) int {
	l1 := c.l1
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			line := addr >> lineShift
			h := (line * fibMul) >> l1.shadowShift
			if s := int(l1.shadow[h]) - 1; s >= 0 && l1.lines[s] == line<<1|1 {
				continue
			}
			if l1.scanExact(line, h) < 0 {
				return i
			}
		} else if !c.ResidentL1(addr, op.Size) {
			return i
		}
	}
	return -1
}

// IssueFetch issues the whole fetch plan, exactly PrefetchLine /
// Prefetch per op in op order. miss is the index FirstNonResident just
// returned (or a negative value when the caller has no residency
// knowledge): ops before it are still resident — the issue loop
// installs nothing before reaching op miss, and the clock alone never
// evicts — so their probes are skipped and the redundant path charged
// directly; op miss, when it is a single line, is likewise still absent
// and skips its guaranteed-miss probe. Ops after miss take the full
// probing path. The charged sequence is identical to issuing the plan
// blind.
func (c *Core) IssueFetch(bases *[8]uint64, ops []FetchOp, miss int) {
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			line := addr >> lineShift
			if c.alog != nil {
				c.alog(MemAccess{Addr: line << lineShift, Size: LineBytes, Cycle: c.clock, Kind: AccessPrefetch})
			}
			c.clock += c.cfg.PrefetchIssueCost
			c.ctr.Instructions++
			switch {
			case i < miss:
				c.ctr.PrefetchRedundant++
				if c.trc != nil {
					c.Emit(TracePrefetchRedundant, CauseNone, line<<lineShift, 0, 0)
				}
			case i == miss:
				c.prefetchMiss(line)
			default:
				if c.l1.find(line) >= 0 {
					c.ctr.PrefetchRedundant++
					if c.trc != nil {
						c.Emit(TracePrefetchRedundant, CauseNone, line<<lineShift, 0, 0)
					}
				} else {
					c.prefetchMiss(line)
				}
			}
		} else {
			c.Prefetch(addr, op.Size)
		}
	}
}
