package sim

// This file is the core-side executor for compiled step plans (see
// internal/model's plan compiler). Plans lower every declared access to
// a (base-table index, pre-added offset) pair; the loops that charge
// those accesses live here, on the Core, so one call per phase replaces
// one call per access and the L1 index pointers, clock and counters
// stay register-resident across a whole span list.
//
// The charged sequence is identical to calling Read/Write/Prefetch/
// ResidentL1 once per op in op order — the loops below are those calls
// inlined, nothing more.

// PlanOp is one compiled read or write: addr = bases[Base&7] + Off.
type PlanOp struct {
	Off  uint64
	Size uint64
	Base uint8
}

// FetchOp is one compiled prefetch/residency step: a pre-resolved
// single line (Line == true, Off is the line-start offset) or a span
// fallback for bases whose alignment is unknown at compile time.
type FetchOp struct {
	Off  uint64
	Size uint64
	Base uint8
	Line bool
}

// ReadSpans charges a demand read per op, exactly Read(addr, size) in
// op order. The single-line L1-hit fast path is the exact map's home
// probe spelled out inline (Read's own fast path, hoisted into the
// loop), including the prefetched/in-flight resolution via the same
// outlined demandHitPrefetched tail; anything else — probe
// displacement, outer-level residency, multi-line span — falls through
// to the full burst machinery.
func (c *Core) ReadSpans(bases *[8]uint64, ops []PlanOp) {
	l1 := c.l1
	fast := c.alog == nil && !c.scan
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		line := addr >> lineShift
		if fast && (addr+op.Size-1)>>lineShift == line && op.Size != 0 {
			f := ((line * fibMul) >> l1.mapShift) * 2
			if l1.kv[f] == l1.genw+(line<<1|1) {
				s := int(l1.kv[f+1])
				c.ctr.Reads++
				c.ctr.Instructions++
				c.ctr.L1Hits++
				if l1.ready[s] > c.clock || l1.pref[s] {
					c.demandHitPrefetched(s)
				}
				c.clock += c.cfg.L1.HitLatency
				l1.stamps[s] = c.clock
				continue
			}
		}
		c.burst(addr, op.Size, false)
	}
}

// WriteSpans charges a demand write per op, exactly Write(addr, size)
// in op order.
func (c *Core) WriteSpans(bases *[8]uint64, ops []PlanOp) {
	l1 := c.l1
	fast := c.alog == nil && !c.scan
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		line := addr >> lineShift
		if fast && (addr+op.Size-1)>>lineShift == line && op.Size != 0 {
			f := ((line * fibMul) >> l1.mapShift) * 2
			if l1.kv[f] == l1.genw+(line<<1|1) {
				s := int(l1.kv[f+1])
				c.ctr.Writes++
				c.ctr.Instructions++
				c.ctr.L1Hits++
				if l1.ready[s] > c.clock || l1.pref[s] {
					c.demandHitPrefetched(s)
				}
				c.clock += c.cfg.L1.HitLatency
				l1.stamps[s] = c.clock
				continue
			}
		}
		c.burst(addr, op.Size, true)
	}
}

// FirstNonResident returns the index of the first op whose lines are
// not all L1-resident, or -1 when the whole plan is resident. Residency
// probes charge nothing, exactly like ResidentL1. Single-line ops
// resolve on the exact map's home probe in the common case; only probe
// displacement walks the cluster.
func (c *Core) FirstNonResident(bases *[8]uint64, ops []FetchOp) int {
	if c.scan {
		return c.firstNonResidentScan(bases, ops)
	}
	l1 := c.l1
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			line := addr >> lineShift
			k := l1.kv[((line*fibMul)>>l1.mapShift)*2]
			if k == l1.genw+(line<<1|1) {
				continue
			}
			if k&1 == 0 || k>>l1GenShift != l1.gen {
				// Free or stale home slot: the authoritative miss.
				return i
			}
			if l1.findExact(line) < 0 {
				return i
			}
		} else if !c.ResidentL1(addr, op.Size) {
			return i
		}
	}
	return -1
}

// warmDir touches the directory home slot of every line op at or after
// the first known miss, before the issue loop probes them for real.
// Pure host-side memory-level parallelism: the loads are independent
// and issued back to back, so the host overlaps their cache misses,
// where the issue loop's probes are separated by enough dependent work
// (fills, victim passes, MSHR bookkeeping) that each miss would
// serialize. Reads only; no simulated state is touched.
func (c *Core) warmDir(bases *[8]uint64, ops []FetchOp, miss int) {
	d := c.dir
	var w uint64
	for i := miss; i < len(ops); i++ {
		op := &ops[i]
		if op.Line {
			line := (bases[op.Base&7] + op.Off) >> lineShift
			w ^= d.tab[(line*fibMul)>>d.shift]
		}
	}
	c.warmSink = w
}

// firstNonResidentScan is the verification-twin FirstNonResident,
// probing L1 by dense tag scan.
func (c *Core) firstNonResidentScan(bases *[8]uint64, ops []FetchOp) int {
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			if c.l1.find(addr>>lineShift) < 0 {
				return i
			}
		} else if !c.ResidentL1(addr, op.Size) {
			return i
		}
	}
	return -1
}

// IssueFetch issues the whole fetch plan, exactly PrefetchLine /
// Prefetch per op in op order. miss is the index FirstNonResident just
// returned (or a negative value when the caller has no residency
// knowledge): ops before it are still resident — the issue loop
// installs nothing before reaching op miss, and the clock alone never
// evicts — so their probes are skipped and the redundant path charged
// directly; op miss, when it is a single line, is likewise still absent
// and skips its guaranteed-miss L1 probe (prefetchMiss probes the
// outer directory once to price the fill). Ops after miss take the full
// probing path: the exact L1 index answers the redundancy check, and
// only a genuine miss pays the directory probe for the fill source. The
// charged sequence is identical to issuing the plan blind.
func (c *Core) IssueFetch(bases *[8]uint64, ops []FetchOp, miss int) {
	if !c.scan && miss >= 0 {
		c.warmDir(bases, ops, miss)
	}
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			line := addr >> lineShift
			if c.alog != nil {
				c.alog(MemAccess{Addr: line << lineShift, Size: LineBytes, Cycle: c.clock, Kind: AccessPrefetch})
			}
			c.clock += c.cfg.PrefetchIssueCost
			c.ctr.Instructions++
			switch {
			case i < miss:
				c.prefetchRedundant(line)
			case i == miss:
				c.prefetchMiss(line)
			default:
				if c.scan {
					if c.l1.find(line) >= 0 {
						c.prefetchRedundant(line)
					} else {
						c.prefetchMissScan(line)
					}
					continue
				}
				if c.l1.findExact(line) >= 0 {
					c.prefetchRedundant(line)
				} else {
					c.prefetchMiss(line)
				}
			}
		} else {
			c.Prefetch(addr, op.Size)
		}
	}
}

// PlanResidency is FirstNonResident extended with a verdict record: it
// walks the WHOLE plan (not just to the first miss) and returns the
// first-miss OP index plus a bitmask of covered LINES — bit j for the
// j-th line the plan visits, ops in order and span ops expanded into
// their ascending covered lines, exactly the enumeration the issue loop
// charges. IssueFetchPlanned replays that enumeration and reuses the
// verdicts instead of re-probing, under an exactness guard (see there);
// lines past the 64-bit budget are simply re-probed there. Residency
// probes charge nothing, exactly like FirstNonResident; with wakeup
// stamps disabled (or in scan mode) it degrades to FirstNonResident and
// an empty mask.
func (c *Core) PlanResidency(bases *[8]uint64, ops []FetchOp) (miss int, resident uint64) {
	if c.scan || !c.wakeup {
		return c.FirstNonResident(bases, ops), 0
	}
	miss = -1
	j := uint(0)
	l1 := c.l1
	for i := range ops {
		if miss >= 0 && j >= 64 {
			// Mask budget exhausted with the miss already found: further
			// verdicts have no consumer.
			break
		}
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			line := addr >> lineShift
			ok := false
			k := l1.kv[((line*fibMul)>>l1.mapShift)*2]
			if k == l1.genw+(line<<1|1) {
				ok = true
			} else if k&1 == 0 || k>>l1GenShift != l1.gen {
				// Free or stale home slot: the authoritative miss.
			} else {
				ok = l1.findExact(line) >= 0
			}
			if ok {
				if j < 64 {
					resident |= 1 << j
				}
			} else if miss < 0 {
				miss = i
			}
			j++
		} else if op.Size != 0 {
			first := addr >> lineShift
			last := (addr + op.Size - 1) >> lineShift
			for line := first; line <= last; line++ {
				ok := false
				k := l1.kv[((line*fibMul)>>l1.mapShift)*2]
				if k == l1.genw+(line<<1|1) {
					ok = true
				} else if k&1 == 0 || k>>l1GenShift != l1.gen {
				} else {
					ok = l1.findExact(line) >= 0
				}
				if ok {
					if j < 64 {
						resident |= 1 << j
					}
				} else if miss < 0 {
					miss = i
				}
				j++
			}
		}
		// Size == 0 spans cover no lines and consume no mask bits,
		// matching Prefetch's immediate return.
	}
	return miss, resident
}

// IssueFetchPlanned issues the whole fetch plan using the residency
// verdicts PlanResidency just recorded, and returns the max MSHR
// ready-cycle of the fills it issued (the caller's wakeup stamp; 0 when
// nothing was installed or stamps are disabled). The charged sequence
// is identical to IssueFetch — only host-side re-probing disappears: it
// replays PlanResidency's line enumeration (ops in order, spans
// expanded into ascending lines) and consumes one verdict bit per line.
//
// Exactness of verdict reuse: within this one call, a resident verdict
// can only be invalidated by an L1 eviction of that line, and an absent
// verdict only by an L1 install of that line. Both transitions pass
// through prefetchMissAt, which appends the installed line and the
// evicted victim's line to the per-call dirty list. A line off the list
// keeps its walk verdict; a dirty or unmasked (bit index >= 64) line
// re-probes exactly as IssueFetch would, and dirty-list overflow
// disables reuse wholesale.
func (c *Core) IssueFetchPlanned(bases *[8]uint64, ops []FetchOp, miss int, resident uint64) uint64 {
	if c.scan || !c.wakeup {
		c.IssueFetch(bases, ops, miss)
		return 0
	}
	c.planTrack = true
	c.planDirtyN = 0
	c.planMaxReady = 0
	j := uint(0)
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			c.issueLinePlanned(addr>>lineShift, j, resident)
			j++
		} else if op.Size != 0 {
			first := addr >> lineShift
			last := (addr + op.Size - 1) >> lineShift
			for line := first; line <= last; line++ {
				c.issueLinePlanned(line, j, resident)
				j++
			}
		}
	}
	c.planTrack = false
	return c.planMaxReady
}

// issueLinePlanned charges one planned prefetch line: exactly
// prefetchLine, with the L1 redundancy probe replaced by the recorded
// verdict bit when that verdict is still clean.
func (c *Core) issueLinePlanned(line uint64, j uint, resident uint64) {
	if c.alog != nil {
		c.alog(MemAccess{Addr: line << lineShift, Size: LineBytes, Cycle: c.clock, Kind: AccessPrefetch})
	}
	c.clock += c.cfg.PrefetchIssueCost
	c.ctr.Instructions++
	if j < 64 && c.planClean(line) {
		if resident&(1<<j) != 0 {
			c.prefetchRedundant(line)
		} else {
			c.prefetchMiss(line)
		}
	} else if c.l1.findExact(line) >= 0 {
		c.prefetchRedundant(line)
	} else {
		c.prefetchMiss(line)
	}
}
