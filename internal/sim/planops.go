package sim

// This file is the core-side executor for compiled step plans (see
// internal/model's plan compiler). Plans lower every declared access to
// a (base-table index, pre-added offset) pair; the loops that charge
// those accesses live here, on the Core, so one call per phase replaces
// one call per access and the directory pointer, clock and counters
// stay register-resident across a whole span list.
//
// The charged sequence is identical to calling Read/Write/Prefetch/
// ResidentL1 once per op in op order — the loops below are those calls
// inlined, nothing more.

// PlanOp is one compiled read or write: addr = bases[Base&7] + Off.
type PlanOp struct {
	Off  uint64
	Size uint64
	Base uint8
}

// FetchOp is one compiled prefetch/residency step: a pre-resolved
// single line (Line == true, Off is the line-start offset) or a span
// fallback for bases whose alignment is unknown at compile time.
type FetchOp struct {
	Off  uint64
	Size uint64
	Base uint8
	Line bool
}

// ReadSpans charges a demand read per op, exactly Read(addr, size) in
// op order. The single-line L1-hit fast path is the first directory
// probe spelled out inline (Read's own fast path, hoisted into the
// loop); anything else — collision, outer-level residency, in-flight
// fill, multi-line span — falls through to the full burst machinery.
func (c *Core) ReadSpans(bases *[8]uint64, ops []PlanOp) {
	d := c.dir
	fast := c.alog == nil && !c.scan
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		line := addr >> lineShift
		if fast && (addr+op.Size-1)>>lineShift == line && op.Size != 0 {
			j := ((line * fibMul) >> d.shift) * 2
			if d.tab[j] == line<<1|1 {
				if s := d.tab[j+1] & dirSlotMask; s != 0 {
					slot := int(s) - 1
					if c.l1.ready[slot] <= c.clock && !c.l1.pref[slot] {
						c.ctr.Reads++
						c.ctr.Instructions++
						c.ctr.L1Hits++
						c.clock += c.cfg.L1.HitLatency
						c.l1.stamps[slot] = c.clock
						continue
					}
				}
			}
		}
		c.burst(addr, op.Size, false)
	}
}

// WriteSpans charges a demand write per op, exactly Write(addr, size)
// in op order.
func (c *Core) WriteSpans(bases *[8]uint64, ops []PlanOp) {
	d := c.dir
	fast := c.alog == nil && !c.scan
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		line := addr >> lineShift
		if fast && (addr+op.Size-1)>>lineShift == line && op.Size != 0 {
			j := ((line * fibMul) >> d.shift) * 2
			if d.tab[j] == line<<1|1 {
				if s := d.tab[j+1] & dirSlotMask; s != 0 {
					slot := int(s) - 1
					if c.l1.ready[slot] <= c.clock && !c.l1.pref[slot] {
						c.ctr.Writes++
						c.ctr.Instructions++
						c.ctr.L1Hits++
						c.clock += c.cfg.L1.HitLatency
						c.l1.stamps[slot] = c.clock
						continue
					}
				}
			}
		}
		c.burst(addr, op.Size, true)
	}
}

// FirstNonResident returns the index of the first op whose lines are
// not all L1-resident, or -1 when the whole plan is resident. Residency
// probes charge nothing, exactly like ResidentL1. Single-line ops
// resolve on the first directory probe in the common case (hit in home
// position, or empty home = non-resident); only collisions walk the
// probe cluster.
func (c *Core) FirstNonResident(bases *[8]uint64, ops []FetchOp) int {
	if c.scan {
		return c.firstNonResidentScan(bases, ops)
	}
	d := c.dir
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			line := addr >> lineShift
			j := ((line * fibMul) >> d.shift) * 2
			if k := d.tab[j]; k == line<<1|1 {
				if d.tab[j+1]&dirSlotMask != 0 {
					continue
				}
				return i
			} else if k == 0 {
				return i
			}
			if d.get(line)&dirSlotMask == 0 {
				return i
			}
		} else if !c.ResidentL1(addr, op.Size) {
			return i
		}
	}
	return -1
}

// firstNonResidentScan is the verification-twin FirstNonResident,
// probing L1 by dense tag scan.
func (c *Core) firstNonResidentScan(bases *[8]uint64, ops []FetchOp) int {
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			if c.l1.find(addr>>lineShift) < 0 {
				return i
			}
		} else if !c.ResidentL1(addr, op.Size) {
			return i
		}
	}
	return -1
}

// IssueFetch issues the whole fetch plan, exactly PrefetchLine /
// Prefetch per op in op order. miss is the index FirstNonResident just
// returned (or a negative value when the caller has no residency
// knowledge): ops before it are still resident — the issue loop
// installs nothing before reaching op miss, and the clock alone never
// evicts — so their probes are skipped and the redundant path charged
// directly; op miss, when it is a single line, is likewise still absent
// and skips its guaranteed-miss L1 probe (prefetchMiss re-probes the
// directory once to price the fill). Ops after miss take the full
// probing path, where one directory probe answers both the redundancy
// check and the fill source. The charged sequence is identical to
// issuing the plan blind.
func (c *Core) IssueFetch(bases *[8]uint64, ops []FetchOp, miss int) {
	for i := range ops {
		op := &ops[i]
		addr := bases[op.Base&7] + op.Off
		if op.Line {
			line := addr >> lineShift
			if c.alog != nil {
				c.alog(MemAccess{Addr: line << lineShift, Size: LineBytes, Cycle: c.clock, Kind: AccessPrefetch})
			}
			c.clock += c.cfg.PrefetchIssueCost
			c.ctr.Instructions++
			switch {
			case i < miss:
				c.prefetchRedundant(line)
			case i == miss:
				c.prefetchMiss(line)
			default:
				if c.scan {
					if c.l1.find(line) >= 0 {
						c.prefetchRedundant(line)
					} else {
						c.prefetchMissScan(line)
					}
					continue
				}
				e := c.dir.get(line)
				if e&dirSlotMask != 0 {
					c.prefetchRedundant(line)
				} else {
					c.prefetchMissAt(line, e)
				}
			}
		} else {
			c.Prefetch(addr, op.Size)
		}
	}
}
