package sim

// The unified residency directory: one open-addressed, Fibonacci-hashed
// table keyed by line number whose value packs the line's slot in every
// cache level it currently occupies. It replaces the per-level lookup
// walk (L1 shadow index, then cold L2 and LLC dense tag scans) with a
// single probe that resolves *any* level at once — and a directory miss
// *is* the DRAM case, so the demand-miss and prefetch-probe hot paths
// touch no per-level tag array at all.
//
// Invariants (checked continuously by the scan-twin fuzz and
// differential tests):
//
//   - One entry per resident line. A line resident in several levels
//     (the common case right after a DRAM fill) has one entry whose
//     value carries one slot field per level; a line resident nowhere
//     has no entry.
//   - Every maintenance site is O(1) amortized. Installs know the slot
//     they fill, and the evicted line is always in hand at install time
//     (recovered from the victim slot's compact tag plus the shared set
//     index), so eviction updates are a field clear — no scan ever runs
//     to find what fell out.
//   - The directory is a host-side accelerator over the same simulated
//     state the dense tag arrays hold. The tag arrays remain fully
//     maintained as the *verification twin*: Core.SetScanLookups routes
//     every lookup through the historical scans instead, and the twin
//     must produce bit-identical access logs, counters and clocks.
//
// Geometry: the table is a flat []uint64 with entries at stride 2 —
// key at 2i (line<<1|1, 0 = empty), packed value at 2i+1 — so one probe
// reads key and value from the same host cache line. Linear probing,
// backward-shift deletion (no tombstones, so probe lengths never rot).
// Sized at the next power of two above twice the hierarchy's total slot
// count, the load factor stays below one half and probes average close
// to a single touch.

// dirSlotBits is the width of one per-level slot field in a directory
// value: slot+1 in bits [shift, shift+dirSlotBits), 0 = not resident at
// that level. 21 bits bound each level at 2^21-1 slots (128 MiB of
// 64 B lines), enforced by CacheConfig.validate.
const (
	dirSlotBits = 21
	dirSlotMask = 1<<dirSlotBits - 1

	// Per-level field shifts. cache.levelShift holds one of these.
	dirL1Shift  = 0
	dirL2Shift  = dirSlotBits
	dirLLCShift = 2 * dirSlotBits
)

// residencyDir is the unified residency directory shared by the three
// levels of one Core (or attached to standalone caches in tests).
type residencyDir struct {
	// tab holds entries at stride 2: tab[2i] is the key (line<<1|1,
	// 0 = empty), tab[2i+1] the packed per-level slot fields.
	tab []uint64
	// mask is entryCount-1 for index wrapping.
	mask uint64
	// shift maps a Fibonacci-hashed line's top bits onto entry indexes.
	shift uint
}

// newResidencyDir sizes a directory for a hierarchy holding at most
// slots resident lines: the table gets the next power of two at or
// above twice that, keeping the load factor under one half.
func newResidencyDir(slots int) *residencyDir {
	size := 1
	for size < slots*2 {
		size <<= 1
	}
	shift := uint(64)
	for 1<<(64-shift) < size {
		shift--
	}
	return &residencyDir{
		tab:   make([]uint64, 2*size),
		mask:  uint64(size - 1),
		shift: shift,
	}
}

// get returns line's packed residency value, or 0 when the line is
// resident nowhere (the DRAM case). One probe in the common case; the
// walk past occupied neighbours is collision overflow only.
func (d *residencyDir) get(line uint64) uint64 {
	key := line<<1 | 1
	i := (line * fibMul) >> d.shift
	for {
		k := d.tab[i*2]
		if k == key {
			return d.tab[i*2+1]
		}
		if k == 0 {
			return 0
		}
		i = (i + 1) & d.mask
	}
}

// set records that line now occupies slot at the level identified by
// shift (one of dirL1Shift/dirL2Shift/dirLLCShift), creating the
// line's entry if this is its first resident level.
func (d *residencyDir) set(line uint64, shift uint, slot int) {
	d.setFields(line, dirSlotMask<<shift, uint64(slot+1)<<shift)
}

// setFields applies several slot fields to line's entry in one probe:
// the bits under mask are replaced by val (val must lie within mask),
// and the entry is created when absent. The fill paths use this to
// record a line's install into every level it entered — up to three
// fields — with a single walk of the probe cluster, which the lookup
// that preceded the fill has already pulled into the host's cache.
func (d *residencyDir) setFields(line uint64, mask, val uint64) {
	key := line<<1 | 1
	i := (line * fibMul) >> d.shift
	for {
		k := d.tab[i*2]
		if k == key {
			d.tab[i*2+1] = d.tab[i*2+1]&^mask | val
			return
		}
		if k == 0 {
			d.tab[i*2] = key
			d.tab[i*2+1] = val
			return
		}
		i = (i + 1) & d.mask
	}
}

// clear removes line's slot field for the level identified by shift,
// deleting the whole entry when that was its last resident level. A
// clear for an absent line is a no-op (never happens from cache
// maintenance; tolerated for robustness).
func (d *residencyDir) clear(line uint64, shift uint) {
	key := line<<1 | 1
	i := (line * fibMul) >> d.shift
	for {
		k := d.tab[i*2]
		if k == key {
			if v := d.tab[i*2+1] &^ (dirSlotMask << shift); v != 0 {
				d.tab[i*2+1] = v
			} else {
				d.del(i)
			}
			return
		}
		if k == 0 {
			return
		}
		i = (i + 1) & d.mask
	}
}

// del removes the entry at index i by backward-shift deletion: entries
// in the probe cluster after i that hash at or before the hole move
// back into it, so lookups never need tombstones and probe lengths
// stay tied to the live load factor.
func (d *residencyDir) del(i uint64) {
	j := i
	for {
		j = (j + 1) & d.mask
		k := d.tab[j*2]
		if k == 0 {
			break
		}
		// Home position of the entry at j. It may fill the hole at i
		// only if its home does not lie cyclically within (i, j] —
		// otherwise a probe for it starting at home would stop at the
		// new hole j before reaching it.
		h := ((k >> 1) * fibMul) >> d.shift
		if (j-h)&d.mask >= (j-i)&d.mask {
			d.tab[i*2], d.tab[i*2+1] = k, d.tab[j*2+1]
			i = j
		}
	}
	d.tab[i*2], d.tab[i*2+1] = 0, 0
}

// clearLevel strips the slot field of the level identified by shift
// from every entry, deleting entries left empty — the invalidateAll of
// one attached cache. Implemented as a rebuild (collect survivors,
// zero, re-insert) rather than in-place deletion: backward-shift
// deletes during a forward sweep can move a not-yet-visited entry into
// an already-swept position when a probe cluster wraps the table end.
// O(table), used only on reset paths.
func (d *residencyDir) clearLevel(shift uint) {
	type kv struct{ k, v uint64 }
	var live []kv
	for i := uint64(0); i <= d.mask; i++ {
		k := d.tab[i*2]
		if k == 0 {
			continue
		}
		if v := d.tab[i*2+1] &^ (dirSlotMask << shift); v != 0 {
			live = append(live, kv{k, v})
		}
		d.tab[i*2], d.tab[i*2+1] = 0, 0
	}
	for _, e := range live {
		i := ((e.k >> 1) * fibMul) >> d.shift
		for d.tab[i*2] != 0 {
			i = (i + 1) & d.mask
		}
		d.tab[i*2], d.tab[i*2+1] = e.k, e.v
	}
}

// reset empties the directory; used by Core.Reset.
func (d *residencyDir) reset() {
	for i := range d.tab {
		d.tab[i] = 0
	}
}

// entries counts live entries; test and diagnostics helper.
func (d *residencyDir) entries() int {
	n := 0
	for i := uint64(0); i <= d.mask; i++ {
		if d.tab[i*2] != 0 {
			n++
		}
	}
	return n
}
