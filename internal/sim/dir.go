package sim

// The outer-level residency directory: one open-addressed,
// Fibonacci-hashed table recording, for every line resident in L2 or
// the LLC, which slot of each it occupies. It is the second hop of the
// tiered residency lookup — the L1 exact index (see cache.go) answers
// the overwhelmingly common L1 case against a small dense array, and
// only a demand L1 miss probes this table; a directory miss *is* the
// DRAM case, so the miss path still touches no per-level tag array.
//
// Invariants (checked continuously by the scan-twin fuzz and
// differential tests):
//
//   - One entry per line resident in at least one outer level. A line
//     in both (the common case right after a DRAM fill) has one entry
//     carrying both slot fields; a line in neither has no entry.
//   - Every maintenance site is O(1) amortized. Installs know the slot
//     they fill, and the evicted line is always in hand at install time
//     (recovered from the victim slot's compact tag plus the shared set
//     index), so eviction updates are a field clear — no scan ever runs
//     to find what fell out.
//   - The directory is a host-side accelerator over the same simulated
//     state the dense tag arrays hold. The tag arrays remain fully
//     maintained as the *verification twin*: Core.SetScanLookups routes
//     every lookup through the historical scans instead, and the twin
//     must produce bit-identical access logs, counters and clocks.
//
// Geometry: key and value share one uint64, so a probe touches a
// single word — half the bytes of the historical stride-2 layout, and
// one host cache line covers eight entries instead of four:
//
//	bits [42, 64): the low 22 bits of the line number (key remnant)
//	bits [21, 42): LLC slot+1 (0 = not resident there)
//	bits [ 0, 21): L2  slot+1 (0 = not resident there)
//
// A live entry always has at least one nonzero slot field, so entry 0
// means empty. The remnant alone cannot identify a line (lines exceed
// 22 bits), so a remnant match is confirmed against a parallel 4-byte
// high-word array (hi) holding the line bits above the remnant —
// together they reconstruct the full line exactly. The confirmation is
// a second *indexed* load at the same probe position, which the host
// issues in parallel with the entry load itself; the historical
// alternative — reconstructing the line from a slot field via the
// owning level's compact tag — serialized a dependent load through the
// megabyte-scale tag arrays on every confirmed hit, and profiling
// showed that chain dominating the outer-hit path. Linear probing,
// backward-shift deletion (no tombstones, so probe lengths never rot;
// the shifted entry's home position is recomputed from its own
// remnant+hi words, no tag read). Sized at the next power of two at or
// above twice the outer levels' total slot count, the load factor
// stays below one half and probes average close to a single touch.

// dirSlotBits is the width of one per-level slot field in a directory
// entry: slot+1 in bits [shift, shift+dirSlotBits), 0 = not resident at
// that level. 21 bits bound each level at 2^21-1 slots (128 MiB of
// 64 B lines), enforced by CacheConfig.validate.
const (
	dirSlotBits = 21
	dirSlotMask = 1<<dirSlotBits - 1

	// Per-level field shifts. cache.levelShift holds one of these.
	dirL2Shift  = 0
	dirLLCShift = dirSlotBits

	// dirFieldsMask covers both slot fields of an entry.
	dirFieldsMask = 1<<(2*dirSlotBits) - 1

	// dirRemShift/dirRemMask place the key remnant — the low 22 bits of
	// the line number — above the slot fields.
	dirRemShift = 2 * dirSlotBits
	dirRemMask  = 1<<(64-dirRemShift) - 1

	// maxDirLine bounds the line numbers the directory can key exactly:
	// the bits above the 22-bit remnant must fit hi's uint32 (2^54 lines
	// is exabytes of address space). Enforced by a panic at insert.
	maxDirLine = 1 << (64 - dirRemShift + 32)
)

// residencyDir is the outer-level residency directory shared by the L2
// and LLC of one Core (or attached to standalone caches in tests).
type residencyDir struct {
	// tab holds one packed entry per index; 0 = empty.
	tab []uint64
	// hi holds, per index, the live entry's line bits above the remnant
	// (line >> dirRemShift); garbage where tab is 0. tab[i]'s remnant
	// plus hi[i] reconstruct the entry's full line with no tag read.
	hi []uint32
	// mask is len(tab)-1 for index wrapping.
	mask uint64
	// shift maps a Fibonacci-hashed line's top bits onto indexes.
	shift uint
	// live counts entries, so reset sweeps can stop at the last one.
	live int
	// l2 and llc are the attached levels; sweepReset zeroes the tags
	// their entries' slot fields point at.
	l2, llc *cache
}

// newResidencyDir sizes a directory for outer levels holding at most
// slots resident lines: the table gets the next power of two at or
// above twice that, keeping the load factor under one half. attach must
// be called before any entry is installed.
func newResidencyDir(slots int) *residencyDir {
	size := 1
	for size < slots*2 {
		size <<= 1
	}
	shift := uint(64)
	for 1<<(64-shift) < size {
		shift--
	}
	return &residencyDir{
		tab:   make([]uint64, size),
		hi:    make([]uint32, size),
		mask:  uint64(size - 1),
		shift: shift,
	}
}

// attach wires the directory to its two levels.
func (d *residencyDir) attach(l2, llc *cache) {
	d.l2 = l2
	d.llc = llc
}

// lineAt reconstructs the live entry at index i's full line number from
// its key remnant and high word. Exact: both halves are written at
// insert (with the maxDirLine bound) and move together under
// backward-shift deletion, so they always describe the same line.
func (d *residencyDir) lineAt(i uint64) uint64 {
	return uint64(d.hi[i])<<(64-dirRemShift) | d.tab[i]>>dirRemShift
}

// get returns line's packed outer-level slot fields, or 0 when the line
// is resident in neither outer level (the DRAM case). The home probe is
// split out so it inlines into the demand-miss and prefetch paths: an
// empty home slot — the most common DRAM verdict at load factor < 0.5 —
// costs one multiply, one load and one branch in line; any occupied
// home falls out to the cluster walk. A remnant match is confirmed
// against the parallel high word (two indexed loads the host overlaps),
// so aliased remnants within a cluster cannot cross-talk.
func (d *residencyDir) get(line uint64) uint64 {
	i := (line * fibMul) >> d.shift
	if d.tab[i] == 0 {
		return 0
	}
	return d.getSlow(line, i)
}

//go:noinline
func (d *residencyDir) getSlow(line, i uint64) uint64 {
	rem := line & dirRemMask
	h := uint32(line >> (64 - dirRemShift))
	for {
		e := d.tab[i]
		if e == 0 {
			return 0
		}
		if e>>dirRemShift == rem && d.hi[i] == h {
			return e & dirFieldsMask
		}
		i = (i + 1) & d.mask
	}
}

// set records that line now occupies slot at the outer level identified
// by shift (dirL2Shift or dirLLCShift), creating the line's entry if
// this is its first resident outer level.
func (d *residencyDir) set(line uint64, shift uint, slot int) {
	d.setFields(line, dirSlotMask<<shift, uint64(slot+1)<<shift)
}

// setFields applies both slot fields to line's entry in one probe: the
// bits under mask are replaced by val (val must lie within mask), and
// the entry is created when absent. The DRAM fill paths use this to
// record a line's install into both outer levels with a single walk of
// the probe cluster, which the lookup that preceded the fill has
// already pulled into the host's cache.
func (d *residencyDir) setFields(line uint64, mask, val uint64) {
	if line >= maxDirLine {
		panic("sim: line address too large for the residency directory")
	}
	rem := line & dirRemMask
	h := uint32(line >> (64 - dirRemShift))
	i := (line * fibMul) >> d.shift
	for {
		e := d.tab[i]
		if e == 0 {
			d.tab[i] = rem<<dirRemShift | val
			d.hi[i] = h
			d.live++
			return
		}
		if e>>dirRemShift == rem && d.hi[i] == h {
			d.tab[i] = e&^mask | val
			return
		}
		i = (i + 1) & d.mask
	}
}

// clear removes line's slot field for the level identified by shift,
// deleting the whole entry when that was its last resident outer level.
// Called from fillSlot before the victim's tag is overwritten, with the
// victim slot in hand — so the match is on the slot field itself, not
// the remnant: at most one entry in the table can point at (level,
// slot), and the residency invariant says it is line's entry, making
// the field compare exact with no remnant check and no tag
// reconstruction (the cluster walk touches only the table). A clear for
// an absent line is a no-op (never happens from cache maintenance;
// tolerated for robustness).
func (d *residencyDir) clear(line uint64, shift uint, slot int) {
	want := uint64(slot+1) << shift
	mask := uint64(dirSlotMask) << shift
	i := (line * fibMul) >> d.shift
	for {
		e := d.tab[i]
		if e == 0 {
			return
		}
		if e&mask == want {
			if v := e &^ mask; v&dirFieldsMask != 0 {
				d.tab[i] = v
			} else {
				d.del(i)
			}
			return
		}
		i = (i + 1) & d.mask
	}
}

// del removes the entry at index i by backward-shift deletion: entries
// in the probe cluster after i that hash at or before the hole move
// back into it, so lookups never need tombstones and probe lengths
// stay tied to the live load factor.
func (d *residencyDir) del(i uint64) {
	j := i
	for {
		j = (j + 1) & d.mask
		e := d.tab[j]
		if e == 0 {
			break
		}
		// Home position of the entry at j (its line recovered from its
		// own remnant+hi words). It may fill the hole at i only if its
		// home does not lie cyclically within (i, j] — otherwise a probe
		// for it starting at home would stop at the new hole j before
		// reaching it.
		h := (d.lineAt(j) * fibMul) >> d.shift
		if (j-h)&d.mask >= (j-i)&d.mask {
			d.tab[i] = e
			d.hi[i] = d.hi[j]
			i = j
		}
	}
	d.tab[i] = 0
	d.live--
}

// clearLevel strips the slot field of the level identified by shift
// from every entry, deleting entries left empty — the invalidateAll of
// one attached cache. Implemented as a rebuild (collect survivors,
// zero, re-insert) rather than in-place deletion: backward-shift
// deletes during a forward sweep can move a not-yet-visited entry into
// an already-swept position when a probe cluster wraps the table end.
// O(table), used only on whole-level invalidation.
func (d *residencyDir) clearLevel(shift uint) {
	var live []uint64
	var liveHi []uint32
	for i := range d.tab {
		e := d.tab[i]
		if e == 0 {
			continue
		}
		if v := e &^ (dirSlotMask << shift); v&dirFieldsMask != 0 {
			live = append(live, v)
			liveHi = append(liveHi, d.hi[i])
		}
		d.tab[i] = 0
	}
	d.live = len(live)
	for k, e := range live {
		line := uint64(liveHi[k])<<(64-dirRemShift) | e>>dirRemShift
		i := (line * fibMul) >> d.shift
		for d.tab[i] != 0 {
			i = (i + 1) & d.mask
		}
		d.tab[i] = e
		d.hi[i] = liveHi[k]
	}
}

// sweepReset empties the directory and invalidates both attached
// levels' tags in one pass over the table, stopping at the last live
// entry: O(live entries) instead of O(level bytes), which is what makes
// Core.Reset cheap enough to pool cores across sweep points. Every
// valid outer tag is reachable from exactly one entry (the residency
// invariant), so zeroing the slots the entries point at invalidates the
// levels completely.
func (d *residencyDir) sweepReset() {
	for i := 0; d.live > 0; i++ {
		e := d.tab[i]
		if e == 0 {
			continue
		}
		if s := e & dirSlotMask; s != 0 {
			d.l2.tags[s-1] = 0
		}
		if s := (e >> dirLLCShift) & dirSlotMask; s != 0 {
			d.llc.tags[s-1] = 0
		}
		d.tab[i] = 0
		d.live--
	}
}

// reset empties the directory without touching the attached levels;
// raw-table test helper (Core.Reset uses sweepReset).
func (d *residencyDir) reset() {
	for i := range d.tab {
		d.tab[i] = 0
	}
	d.live = 0
}

// entries counts live entries; test and diagnostics helper.
func (d *residencyDir) entries() int {
	n := 0
	for _, e := range d.tab {
		if e != 0 {
			n++
		}
	}
	return n
}
