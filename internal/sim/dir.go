package sim

// The outer-level residency directory: one open-addressed,
// Fibonacci-hashed table recording, for every line resident in L2 or
// the LLC, which slot of each it occupies. It is the second hop of the
// tiered residency lookup — the L1 exact index (see cache.go) answers
// the overwhelmingly common L1 case against a small dense array, and
// only a demand L1 miss probes this table; a directory miss *is* the
// DRAM case, so the miss path still touches no per-level tag array.
//
// Invariants (checked continuously by the scan-twin fuzz and
// differential tests):
//
//   - One entry per line resident in at least one outer level. A line
//     in both (the common case right after a DRAM fill) has one entry
//     carrying both slot fields; a line in neither has no entry.
//   - Every maintenance site is O(1) amortized. Installs know the slot
//     they fill, and the evicted line is always in hand at install time
//     (recovered from the victim slot's compact tag plus the shared set
//     index), so eviction updates are a field clear — no scan ever runs
//     to find what fell out.
//   - The directory is a host-side accelerator over the same simulated
//     state the dense tag arrays hold. The tag arrays remain fully
//     maintained as the *verification twin*: Core.SetScanLookups routes
//     every lookup through the historical scans instead, and the twin
//     must produce bit-identical access logs, counters and clocks.
//
// Geometry: key and value share one uint64, so a probe touches a
// single word — half the bytes of the historical stride-2 layout, and
// one host cache line covers eight entries instead of four:
//
//	bits [42, 64): the low 22 bits of the line number (key remnant)
//	bits [21, 42): LLC slot+1 (0 = not resident there)
//	bits [ 0, 21): L2  slot+1 (0 = not resident there)
//
// A live entry always has at least one nonzero slot field, so entry 0
// means empty. The remnant alone cannot identify a line (lines exceed
// 22 bits), so a remnant match is confirmed against a parallel 4-byte
// high-word array (hi) holding the line bits above the remnant —
// together they reconstruct the full line exactly. The confirmation is
// a second *indexed* load at the same probe position, which the host
// issues in parallel with the entry load itself; the historical
// alternative — reconstructing the line from a slot field via the
// owning level's compact tag — serialized a dependent load through the
// megabyte-scale tag arrays on every confirmed hit, and profiling
// showed that chain dominating the outer-hit path. Linear probing.
// Sized at the next power of two at or above twice the outer levels'
// total slot count, the load factor stays below one half and probes
// average close to a single touch.
//
// Deletion is LAZY: an entry whose last slot field clears becomes an
// epoch-stamped tombstone (fields zero, mark bit set) instead of paying
// the eager backward-shift walk on every eviction. Tombstones are
// reclaimed where the table is already warm — an insert lands in the
// first tombstone of its probe cluster, an update relocates its entry
// into an earlier tombstone (self-healing probe lengths), and a
// tombstone left adjacent to an empty slot is zeroed outright (with a
// backward cascade, since nothing live can sit between it and the
// probe-terminating empty). A budget (tombMax) bounds rot: past it,
// deletion falls back to the historical backward-shift walk, which
// skips tombstones in stride. Probes treat tombstones as occupied
// non-matches, so lookups stay exact throughout.
//
// Two host-side accelerations ride on top, both invisible to simulated
// state (the scan twin pins this): a per-core eviction epoch
// (*d.epoch, owned by the Core) bumped on every outer eviction, which
// stamps tombstones and guards the scheduler's fill-clock wakeup
// stamps; and a small direct-mapped probe memo (line → packed fields,
// including the 0 = DRAM verdict) consulted on get's occupied-home slow
// path and kept exact by in-place fixup at every mutation site —
// repeated probes for the same line (DMAFill then prefetch, burst
// neighbors) skip the table walk entirely. The empty-home fast path
// stays memo-free: at load factor < 0.5 it already answers most DRAM
// probes in one load, and keeping the memo off it measured faster.

// dirSlotBits is the width of one per-level slot field in a directory
// entry: slot+1 in bits [shift, shift+dirSlotBits), 0 = not resident at
// that level. 21 bits bound each level at 2^21-1 slots (128 MiB of
// 64 B lines), enforced by CacheConfig.validate.
const (
	dirSlotBits = 21
	dirSlotMask = 1<<dirSlotBits - 1

	// Per-level field shifts. cache.levelShift holds one of these.
	dirL2Shift  = 0
	dirLLCShift = dirSlotBits

	// dirFieldsMask covers both slot fields of an entry.
	dirFieldsMask = 1<<(2*dirSlotBits) - 1

	// dirRemShift/dirRemMask place the key remnant — the low 22 bits of
	// the line number — above the slot fields.
	dirRemShift = 2 * dirSlotBits
	dirRemMask  = 1<<(64-dirRemShift) - 1

	// maxDirLine bounds the line numbers the directory can key exactly:
	// the bits above the 22-bit remnant must fit hi's uint32 (2^54 lines
	// is exabytes of address space). Enforced by a panic at insert.
	maxDirLine = 1 << (64 - dirRemShift + 32)

	// dirTombMark marks a tombstone: a nonzero entry whose slot fields
	// are all zero (live entries always carry at least one). The low
	// remnant bits of a tombstone hold the eviction epoch at death —
	// diagnostics only; correctness needs just fields == 0. A
	// tombstone's remnant can alias a live line's, so remnant matches
	// are confirmed against the fields before they count.
	dirTombMark = uint64(1) << 63

	// tombEpochMask bounds the epoch bits a tombstone can carry.
	tombEpochMask = 1<<dirSlotBits - 1

	// dirMemoBits sizes the probe memo: 2^10 direct-mapped entries
	// (16 KiB) indexed by the top bits of the same Fibonacci hash the
	// table uses.
	dirMemoBits  = 10
	dirMemoSize  = 1 << dirMemoBits
	dirMemoShift = 64 - dirMemoBits
)

// residencyDir is the outer-level residency directory shared by the L2
// and LLC of one Core (or attached to standalone caches in tests).
type residencyDir struct {
	// tab holds one packed entry per index; 0 = empty.
	tab []uint64
	// hi holds, per index, the live entry's line bits above the remnant
	// (line >> dirRemShift); garbage where tab is 0. tab[i]'s remnant
	// plus hi[i] reconstruct the entry's full line with no tag read.
	hi []uint32
	// mask is len(tab)-1 for index wrapping.
	mask uint64
	// shift maps a Fibonacci-hashed line's top bits onto indexes.
	shift uint
	// live counts entries, so reset sweeps can stop at the last one.
	live int
	// tombs counts tombstones; above tombMax, deletion turns eager.
	tombs   int
	tombMax int
	// epoch points at the owning Core's eviction epoch, bumped on every
	// outer eviction (a private counter on standalone test dirs).
	epoch *uint64
	// memoLine/memoVal form the direct-mapped probe memo: memoLine[j]
	// holds line+1 (0 = empty), memoVal[j] the line's packed fields at
	// last probe, kept exact by fixup at every mutation. memoOn gates
	// both population and fixup; toggling flushes.
	memoLine []uint64
	memoVal  []uint64
	memoOn   bool
	// l2 and llc are the attached levels; sweepReset zeroes the tags
	// their entries' slot fields point at.
	l2, llc *cache
}

// newResidencyDir sizes a directory for outer levels holding at most
// slots resident lines: the table gets the next power of two at or
// above twice that, keeping the load factor under one half. attach must
// be called before any entry is installed.
func newResidencyDir(slots int) *residencyDir {
	size := 1
	for size < slots*2 {
		size <<= 1
	}
	shift := uint(64)
	for 1<<(64-shift) < size {
		shift--
	}
	// The tombstone budget is deliberately tight (tens of entries, not
	// thousands): the lazy win comes from reclaiming tombstones at
	// already-warm probe sites and from the zap-before-empty cascade, not
	// from letting rot accumulate — past a small budget every extra
	// tombstone lengthens steady-state probe clusters, and A/B runs
	// measured the tight budget no worse anywhere and slightly better on
	// the churn-heavy steady state.
	tombMax := size / 2048
	if tombMax < 4 {
		tombMax = 4
	}
	return &residencyDir{
		tab:      make([]uint64, size),
		hi:       make([]uint32, size),
		mask:     uint64(size - 1),
		shift:    shift,
		tombMax:  tombMax,
		epoch:    new(uint64),
		memoLine: make([]uint64, dirMemoSize),
		memoVal:  make([]uint64, dirMemoSize),
		memoOn:   true,
	}
}

// attach wires the directory to its two levels.
func (d *residencyDir) attach(l2, llc *cache) {
	d.l2 = l2
	d.llc = llc
}

// lineAt reconstructs the live entry at index i's full line number from
// its key remnant and high word. Exact: both halves are written at
// insert (with the maxDirLine bound) and move together under
// backward-shift deletion, so they always describe the same line.
func (d *residencyDir) lineAt(i uint64) uint64 {
	return uint64(d.hi[i])<<(64-dirRemShift) | d.tab[i]>>dirRemShift
}

// get returns line's packed outer-level slot fields, or 0 when the line
// is resident in neither outer level (the DRAM case). The inline fast
// path is the empty home slot — the most common DRAM verdict at load
// factor < 0.5 — one hash multiply, one load, one branch. Any occupied
// home falls out to the outlined walk, which first consults the probe
// memo (a hit returns the last probe's verdict, kept exact by
// mutation-site fixup) and then walks the cluster. A remnant match is
// confirmed against the parallel high word (two indexed loads the host
// overlaps) AND a nonzero fields word, so neither aliased remnants nor
// tombstones within a cluster can cross-talk.
func (d *residencyDir) get(line uint64) uint64 {
	i := (line * fibMul) >> d.shift
	if d.tab[i] == 0 {
		return 0
	}
	return d.getSlow(line, i)
}

//go:noinline
func (d *residencyDir) getSlow(line, i uint64) uint64 {
	if j := (line * fibMul) >> dirMemoShift; d.memoLine[j] == line+1 {
		return d.memoVal[j]
	}
	rem := line & dirRemMask
	h := uint32(line >> (64 - dirRemShift))
	for {
		e := d.tab[i]
		if e == 0 {
			return d.memoPut(line, 0)
		}
		if e>>dirRemShift == rem && d.hi[i] == h {
			if f := e & dirFieldsMask; f != 0 {
				return d.memoPut(line, f)
			}
			// Tombstone whose dead remnant (epoch bits) aliases the
			// probed line: occupied non-match, keep walking.
		}
		i = (i + 1) & d.mask
	}
}

// memoPut records line's freshly probed verdict (including 0 = DRAM)
// and returns it.
func (d *residencyDir) memoPut(line, v uint64) uint64 {
	if d.memoOn {
		j := (line * fibMul) >> dirMemoShift
		d.memoLine[j] = line + 1
		d.memoVal[j] = v
	}
	return v
}

// memoFix updates line's memoized verdict in place after a mutation;
// a no-op when the line is not memoized. Called at every site that
// changes a line's fields, so a memo hit is always the value a table
// walk would return.
func (d *residencyDir) memoFix(line, fields uint64) {
	if !d.memoOn {
		return
	}
	j := (line * fibMul) >> dirMemoShift
	if d.memoLine[j] == line+1 {
		d.memoVal[j] = fields
	}
}

// memoFlush empties the memo (bulk table rewrites repoint too many
// lines to fix one by one).
func (d *residencyDir) memoFlush() {
	for i := range d.memoLine {
		d.memoLine[i] = 0
	}
}

// setMemo toggles the probe memo (the twin knob Core.SetDirMemo
// exposes); flushing on toggle keeps a disable→enable cycle exact.
func (d *residencyDir) setMemo(on bool) {
	d.memoOn = on
	d.memoFlush()
}

// set records that line now occupies slot at the outer level identified
// by shift (dirL2Shift or dirLLCShift), creating the line's entry if
// this is its first resident outer level.
func (d *residencyDir) set(line uint64, shift uint, slot int) {
	d.setFields(line, dirSlotMask<<shift, uint64(slot+1)<<shift)
}

// setFields applies both slot fields to line's entry in one probe: the
// bits under mask are replaced by val (val must lie within mask), and
// the entry is created when absent. The DRAM fill paths use this to
// record a line's install into both outer levels with a single walk of
// the probe cluster, which the lookup that preceded the fill has
// already pulled into the host's cache. The walk reclaims tombstones:
// a create lands in the first tombstone it passed (instead of
// lengthening the cluster to the trailing empty), and an update
// relocates its entry into one (shortening the line's own probe
// distance; the vacated position becomes a fresh tombstone, so the
// tombstone count is unchanged and cluster continuity holds).
func (d *residencyDir) setFields(line uint64, mask, val uint64) {
	if line >= maxDirLine {
		panic("sim: line address too large for the residency directory")
	}
	rem := line & dirRemMask
	h := uint32(line >> (64 - dirRemShift))
	i := (line * fibMul) >> d.shift
	spare := ^uint64(0)
	for {
		e := d.tab[i]
		if e == 0 {
			if spare != ^uint64(0) {
				i = spare
				d.tombs--
			}
			d.tab[i] = rem<<dirRemShift | val
			d.hi[i] = h
			d.live++
			d.memoFix(line, val)
			return
		}
		if e&dirFieldsMask == 0 {
			if spare == ^uint64(0) {
				spare = i
			}
		} else if e>>dirRemShift == rem && d.hi[i] == h {
			nv := e&^mask | val
			if spare != ^uint64(0) {
				d.tab[spare] = nv
				d.hi[spare] = h
				d.tab[i] = dirTombMark | (*d.epoch&tombEpochMask)<<dirRemShift
			} else {
				d.tab[i] = nv
			}
			d.memoFix(line, nv&dirFieldsMask)
			return
		}
		i = (i + 1) & d.mask
	}
}

// clear removes line's slot field for the level identified by shift,
// deleting the whole entry when that was its last resident outer level.
// Called from fillSlot before the victim's tag is overwritten, with the
// victim slot in hand — so the match is on the slot field itself, not
// the remnant: at most one entry in the table can point at (level,
// slot), and the residency invariant says it is line's entry, making
// the field compare exact with no remnant check and no tag
// reconstruction (the cluster walk touches only the table). A clear for
// an absent line is a no-op (never happens from cache maintenance;
// tolerated for robustness).
// Every successful clear is an outer eviction, so it bumps the
// per-core eviction epoch. A full delete is lazy: the entry becomes an
// epoch-stamped tombstone reclaimed on later probe-path traffic —
// unless the slot to its right is already empty (then the hole can be
// real, and trailing tombstones behind it die with it) or the
// tombstone budget is spent (then the historical backward-shift walk
// runs). Tombstones themselves never match: want has at least one
// nonzero slot bit and a tombstone's fields are all zero.
func (d *residencyDir) clear(line uint64, shift uint, slot int) {
	want := uint64(slot+1) << shift
	mask := uint64(dirSlotMask) << shift
	i := (line * fibMul) >> d.shift
	for {
		e := d.tab[i]
		if e == 0 {
			return
		}
		if e&mask == want {
			*d.epoch++
			if v := e &^ mask; v&dirFieldsMask != 0 {
				d.tab[i] = v
				d.memoFix(line, v&dirFieldsMask)
				return
			}
			d.memoFix(line, 0)
			if d.tombs >= d.tombMax {
				d.del(i)
				return
			}
			d.live--
			if d.tab[(i+1)&d.mask] == 0 {
				d.tab[i] = 0
				d.zapTombsBefore(i)
				return
			}
			d.tab[i] = dirTombMark | (*d.epoch&tombEpochMask)<<dirRemShift
			d.tombs++
			return
		}
		i = (i + 1) & d.mask
	}
}

// zapTombsBefore zeroes the run of tombstones immediately preceding an
// empty slot at i: nothing live sits between them and the
// probe-terminating empty, so no lookup distinguishes them from
// empties. This is where lazily deleted clusters actually shrink.
func (d *residencyDir) zapTombsBefore(i uint64) {
	for d.tombs > 0 {
		i = (i - 1) & d.mask
		e := d.tab[i]
		if e == 0 || e&dirFieldsMask != 0 {
			return
		}
		d.tab[i] = 0
		d.tombs--
	}
}

// del removes the entry at index i by eager backward-shift deletion —
// the over-budget fallback that keeps probe lengths tied to the live
// load factor: entries in the probe cluster after i that hash at or
// before the hole move back into it. Tombstones in the cluster are
// skipped in stride (nothing to move; probes pass through them), and
// any run of them left adjacent to the final hole is zeroed.
func (d *residencyDir) del(i uint64) {
	j := i
	for {
		j = (j + 1) & d.mask
		e := d.tab[j]
		if e == 0 {
			break
		}
		if e&dirFieldsMask == 0 {
			continue
		}
		// Home position of the entry at j (its line recovered from its
		// own remnant+hi words). It may fill the hole at i only if its
		// home does not lie cyclically within (i, j] — otherwise a probe
		// for it starting at home would stop at the new hole j before
		// reaching it.
		h := (d.lineAt(j) * fibMul) >> d.shift
		if (j-h)&d.mask >= (j-i)&d.mask {
			d.tab[i] = e
			d.hi[i] = d.hi[j]
			i = j
		}
	}
	d.tab[i] = 0
	d.live--
	d.zapTombsBefore(i)
}

// clearLevel strips the slot field of the level identified by shift
// from every entry, deleting entries left empty — the invalidateAll of
// one attached cache. Implemented as a rebuild (collect survivors,
// zero, re-insert) rather than in-place deletion: backward-shift
// deletes during a forward sweep can move a not-yet-visited entry into
// an already-swept position when a probe cluster wraps the table end.
// O(table), used only on whole-level invalidation.
func (d *residencyDir) clearLevel(shift uint) {
	var live []uint64
	var liveHi []uint32
	for i := range d.tab {
		e := d.tab[i]
		if e == 0 || e&dirFieldsMask == 0 {
			d.tab[i] = 0 // tombstones do not survive a rebuild
			continue
		}
		if v := e &^ (dirSlotMask << shift); v&dirFieldsMask != 0 {
			live = append(live, v)
			liveHi = append(liveHi, d.hi[i])
		}
		d.tab[i] = 0
	}
	d.live = len(live)
	d.tombs = 0
	for k, e := range live {
		line := uint64(liveHi[k])<<(64-dirRemShift) | e>>dirRemShift
		i := (line * fibMul) >> d.shift
		for d.tab[i] != 0 {
			i = (i + 1) & d.mask
		}
		d.tab[i] = e
		d.hi[i] = liveHi[k]
	}
	d.memoFlush()
}

// sweepReset empties the directory and invalidates both attached
// levels' tags in one pass over the table, stopping at the last live
// entry: O(live entries) instead of O(level bytes), which is what makes
// Core.Reset cheap enough to pool cores across sweep points. Every
// valid outer tag is reachable from exactly one entry (the residency
// invariant), so zeroing the slots the entries point at invalidates the
// levels completely.
func (d *residencyDir) sweepReset() {
	for i := 0; d.live > 0 || d.tombs > 0; i++ {
		e := d.tab[i]
		if e == 0 {
			continue
		}
		if e&dirFieldsMask == 0 {
			d.tab[i] = 0
			d.tombs--
			continue
		}
		if s := e & dirSlotMask; s != 0 {
			d.l2.tags[s-1] = 0
		}
		if s := (e >> dirLLCShift) & dirSlotMask; s != 0 {
			d.llc.tags[s-1] = 0
		}
		d.tab[i] = 0
		d.live--
	}
	d.memoFlush()
}

// reset empties the directory without touching the attached levels;
// raw-table test helper (Core.Reset uses sweepReset).
func (d *residencyDir) reset() {
	for i := range d.tab {
		d.tab[i] = 0
	}
	d.live = 0
	d.tombs = 0
	d.memoFlush()
}

// entries counts live entries (tombstones excluded); test and
// diagnostics helper.
func (d *residencyDir) entries() int {
	n := 0
	for _, e := range d.tab {
		if e != 0 && e&dirFieldsMask != 0 {
			n++
		}
	}
	return n
}
