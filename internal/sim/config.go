// Package sim implements a deterministic simulated CPU core with a
// set-associative L1/L2/LLC cache hierarchy, an asynchronous software
// prefetcher with a bounded number of MSHRs (miss-status holding
// registers), and a PMU-style counter block.
//
// The simulator is the hardware substitute this reproduction uses in place
// of the paper's Xeon 8168 testbed (see DESIGN.md): every NFState access
// performed by an NFAction or a match structure is charged cycles against
// this hierarchy, so the cost of a given access schedule — and therefore
// the benefit of the interleaved function-stream execution model — is
// measured rather than assumed.
//
// All state is confined to a single goroutine's Core; cores share nothing,
// mirroring the paper's per-core runtime design.
package sim

import (
	"fmt"
	"math/bits"
)

// LineBytes is the cache line size in bytes. The whole hierarchy uses
// 64-byte lines, matching the x86 machines the paper evaluates on.
const LineBytes = 64

// lineShift is log2(LineBytes), used to convert addresses to line numbers.
const lineShift = 6

// CacheConfig describes one level of the cache hierarchy.
type CacheConfig struct {
	// Name identifies the level in error messages and PMU dumps.
	Name string
	// SizeBytes is the total capacity. Must be a multiple of
	// Ways*LineBytes and yield a power-of-two set count.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the cycles charged when an access hits this level.
	HitLatency uint64
}

// Sets returns the number of sets implied by the size and associativity.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.Ways * LineBytes)
}

// slots returns the level's total line capacity (sets × ways).
func (c CacheConfig) slots() int { return c.Sets() * c.Ways }

func (c CacheConfig) validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("sim: cache %s: size and ways must be positive", c.Name)
	}
	if c.SizeBytes%(c.Ways*LineBytes) != 0 {
		return fmt.Errorf("sim: cache %s: size %d not a multiple of ways*line", c.Name, c.SizeBytes)
	}
	sets := c.Sets()
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("sim: cache %s: set count %d is not a power of two", c.Name, sets)
	}
	if c.slots() > dirSlotMask {
		return fmt.Errorf("sim: cache %s: %d slots exceed the residency directory's per-level field (max %d lines, %d MiB)",
			c.Name, c.slots(), dirSlotMask, dirSlotMask*LineBytes>>20)
	}
	return nil
}

// Config describes a simulated core: its cache hierarchy, DRAM latency,
// prefetcher limits, and the costs of the runtime's own mechanics.
type Config struct {
	// L1, L2 and LLC describe the three cache levels, innermost first.
	L1, L2, LLC CacheConfig
	// DRAMLatency is the cycles charged when an access misses every level.
	DRAMLatency uint64
	// MSHRs bounds the number of outstanding prefetch fills. Prefetches
	// issued while all MSHRs are busy are dropped (and counted), which is
	// how real cores behave and is one of the mechanisms that caps how
	// many interleaved streams are profitable.
	MSHRs int
	// PrefetchIssueCost is the cycles charged per prefetch instruction.
	PrefetchIssueCost uint64
	// SwitchCost is the cycles charged per NFTask switch (pointer swap,
	// dispatch through the action table). The paper measures NFTask
	// switching at tens of millions per second per core, i.e. a few tens
	// of cycles.
	SwitchCost uint64
	// IssueWidth is the superscalar width used to convert instruction
	// counts to busy cycles: cycles = ceil(instructions / IssueWidth).
	IssueWidth uint64
	// BurstGap is the incremental cycles charged for the second and
	// subsequent missing lines within a single multi-line demand access.
	// It models the memory-level parallelism a core extracts from one
	// sequential burst (bandwidth-bound rather than latency-bound).
	BurstGap uint64
	// FreqHz is the simulated core clock, used to convert cycles to
	// seconds when reporting throughput.
	FreqHz float64
}

// DefaultConfig returns a configuration modelled on the paper's testbed
// CPU (Intel Xeon Platinum 8168 @ 2.7 GHz): 32 KiB 8-way L1d, 1 MiB
// 16-way private L2, and the latency figures quoted in the paper's
// §II-A converted to cycles. The LLC is sized as the core's share of
// the chip's non-inclusive 33 MiB cache (1.375 MiB/core slice plus some
// spill headroom) — on a loaded 24-core NFV box a single NF instance
// does not get the whole LLC.
func DefaultConfig() Config {
	return Config{
		L1:                CacheConfig{Name: "L1d", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4},
		L2:                CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 16, HitLatency: 14},
		LLC:               CacheConfig{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, HitLatency: 50},
		DRAMLatency:       200,
		MSHRs:             12,
		PrefetchIssueCost: 2,
		SwitchCost:        12,
		IssueWidth:        2,
		BurstGap:          30,
		FreqHz:            2.7e9,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	for _, lvl := range []CacheConfig{c.L1, c.L2, c.LLC} {
		if err := lvl.validate(); err != nil {
			return err
		}
	}
	if c.DRAMLatency == 0 {
		return fmt.Errorf("sim: DRAM latency must be positive")
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("sim: MSHR count must be positive")
	}
	if c.IssueWidth == 0 {
		return fmt.Errorf("sim: issue width must be positive")
	}
	if c.FreqHz <= 0 {
		return fmt.Errorf("sim: frequency must be positive")
	}
	return nil
}
