package sim

import (
	"sync"
	"sync/atomic"
)

// CorePool recycles Cores of one configuration across experiment runs.
// A Core's backing arrays are megabyte-scale (outer tag/stamp/ready
// arrays plus the residency directory), so sweeps that run hundreds of
// points — fig10's offered-load grid, the ablation matrix — used to
// allocate and fault that footprint per point. With the pool each
// worker grabs a generation-reset core instead: Reset is O(what the
// last run touched) (see Core.Reset), and the reset-vs-fresh
// differential test guarantees a pooled core is observationally
// indistinguishable from a new one.
//
// The pool itself is safe for concurrent Get/Put (the parallel sweep
// runner's workers share one), but each checked-out Core remains
// single-goroutine, as always.
type CorePool struct {
	cfg  Config
	mu   sync.Mutex
	free []*Core

	// news and reuses count Get calls served by construction vs. by
	// recycling; sweep tests assert the pool actually pools.
	news   atomic.Int64
	reuses atomic.Int64
}

// NewCorePool returns an empty pool producing Cores of cfg. The config
// is validated lazily by the first Get, exactly as NewCore would.
func NewCorePool(cfg Config) *CorePool {
	return &CorePool{cfg: cfg}
}

// Get returns a reset Core, recycling a pooled one when available.
func (p *CorePool) Get() (*Core, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		return c, nil
	}
	p.mu.Unlock()
	p.news.Add(1)
	return NewCore(p.cfg)
}

// Put resets c and returns it to the pool. Observation hooks (tracer,
// access log) are detached first: they are per-run attachments, and a
// recycled core must come back as bare as a new one.
func (p *CorePool) Put(c *Core) {
	if c == nil {
		return
	}
	c.SetTracer(nil)
	c.SetAccessLog(nil)
	c.SetScanLookups(false)
	c.SetWakeupStamps(true)
	c.SetDirMemo(true)
	c.Reset()
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// Stats reports how many Gets were served by construction and by reuse.
func (p *CorePool) Stats() (news, reuses int64) {
	return p.news.Load(), p.reuses.Load()
}
