package sim

// cache is one set-associative level with LRU replacement. Slots carry a
// readyAt timestamp so asynchronously prefetched lines can be installed
// immediately (creating realistic occupancy pressure) while still stalling
// accesses that arrive before the fill completes.
//
// Host-side layout: tags are compact uint32s (only the line bits above
// the set index — the rest is implied by the set), so a full 16-way
// set's tags fit in one host cache line and the scan kernels walk
// contiguous memory. The per-way LRU stamp and fill bookkeeping live in
// a parallel meta array touched only on hits, installs and the full-set
// LRU pass. A small per-set hint table remembers recent hit ways and is
// probed before any scan. None of this changes simulated behavior: a
// line occupies at most one way of its set, so whichever order ways are
// probed in, the same slot is found.
type cache struct {
	cfg     CacheConfig
	sets    int
	ways    int
	setMask uint64
	// setShift is log2(sets): how far to shift a line to get its tag.
	setShift uint
	// tags[set*ways+way] holds tag<<1|1 (bit 0 = valid); 0 means invalid.
	tags []uint32
	// stamps[set*ways+way] is the slot's last-use clock, kept dense so
	// the full-set LRU pass walks one or two host cache lines.
	stamps []uint64
	// fill[set*ways+way] is the slot's fill bookkeeping, touched only on
	// hits and installs.
	fill []fillMeta
	// hint holds 4 sub-hints per set, selected by line bits above the
	// set index, each remembering the way of a recent hit or install for
	// that line group — probed before the tag scan (MRU-first shortcut).
	// Sub-hints keep distinct hot lines of one set from evicting each
	// other's shortcut. Host-side accelerator only: every hint is
	// verified against the tag before use.
	hint []int32
}

// fillMeta is the fill state of one cache slot.
type fillMeta struct {
	// readyAt is the cycle at which the line's fill completes; accesses
	// earlier than this stall for the remainder.
	readyAt uint64
	// prefetched marks lines installed by a prefetch that have not yet
	// served a demand access, for PMU efficacy accounting.
	prefetched bool
}

func newCache(cfg CacheConfig) *cache {
	sets := cfg.Sets()
	n := sets * cfg.Ways
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	return &cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		setMask:  uint64(sets - 1),
		setShift: shift,
		tags:     make([]uint32, n),
		stamps:   make([]uint64, n),
		fill:     make([]fillMeta, n),
		hint:     make([]int32, sets*4),
	}
}

// tagOf packs line into its stored tag. Compact tags require line
// numbers below 2^31 × sets (petabytes of address space); tagOf panics
// rather than aliasing if a workload ever exceeds that.
func (c *cache) tagOf(line uint64) uint32 {
	t := line >> c.setShift
	if t >= 1<<31 {
		panic("sim: line address too large for compact cache tags")
	}
	return uint32(t)<<1 | 1
}

// lookup returns the slot index of line in its set, or -1.
func (c *cache) lookup(line uint64) int {
	return c.find(line)
}

// find returns the slot of line in its set, or -1. It touches only the
// tag array: the hinted way first (MRU-first shortcut), then a dense
// scan. An invalid tag ends the scan early because valid ways always
// form a prefix of the set: installs fill the lowest-index invalid way
// and lines are never invalidated individually (only invalidateAll).
func (c *cache) find(line uint64) int {
	set := int(line & c.setMask)
	base := set * c.ways
	want := c.tagOf(line)
	hi := set<<2 | int(line>>c.setShift)&3
	h := base + int(c.hint[hi])
	if c.tags[h] == want {
		return h
	}
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			c.hint[hi] = int32(w)
			return base + w
		}
		if tag == 0 {
			return -1
		}
	}
	return -1
}

// probe scans line's set once, returning the hit slot (or -1) and the
// victim slot an install into this set would use. The victim choice is
// exactly the historical install policy: the lowest-index invalid way
// if one exists, else the way with the strictly smallest LRU stamp
// (ties to the lowest index). The LRU stamp pass runs only on a miss in
// a full set — the one case that actually evicts — so hits and misses
// with free ways stay on the dense tags-only path.
func (c *cache) probe(line uint64) (slot, victim int) {
	set := int(line & c.setMask)
	base := set * c.ways
	want := c.tagOf(line)
	// MRU-first: the hinted way hits first for repeated accesses.
	hi := set<<2 | int(line>>c.setShift)&3
	h := base + int(c.hint[hi])
	if c.tags[h] == want {
		return h, -1
	}
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			c.hint[hi] = int32(w)
			return base + w, -1
		}
		if tag == 0 {
			// Valid ways are a prefix (see find), so no hit lies
			// beyond and this is the lowest-index invalid way.
			return -1, base + w
		}
	}
	victim = base
	oldest := c.stamps[base]
	for s := base + 1; s < base+c.ways; s++ {
		if st := c.stamps[s]; st < oldest {
			oldest = st
			victim = s
		}
	}
	return -1, victim
}

// touch records a use of slot at the given clock for LRU ordering.
func (c *cache) touch(slot int, now uint64) {
	c.stamps[slot] = now
}

// install places line into its set, evicting the LRU way if needed, and
// returns the slot. readyAt is the cycle the fill completes (== now for
// demand fills, later for prefetch fills).
func (c *cache) install(line, now, readyAt uint64) int {
	slot, victim := c.probe(line)
	if slot < 0 {
		slot = victim
	}
	c.installAt(slot, line, now, readyAt)
	return slot
}

// installAt fills a victim slot previously returned by probe. The caller
// guarantees no install or touch hit this set between the probe and the
// fill, so the victim choice is still current.
func (c *cache) installAt(slot int, line, now, readyAt uint64) {
	c.tags[slot] = c.tagOf(line)
	c.stamps[slot] = now
	c.fill[slot] = fillMeta{readyAt: readyAt}
	set := int(line & c.setMask)
	hi := set<<2 | int(line>>c.setShift)&3
	c.hint[hi] = int32(slot - set*c.ways)
}

// invalidateAll clears every line; used by Core.Reset.
func (c *cache) invalidateAll() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
		c.fill[i] = fillMeta{}
	}
	for i := range c.hint {
		c.hint[i] = 0
	}
}

// resident reports whether line is present (regardless of fill state).
func (c *cache) resident(line uint64) bool {
	return c.find(line) >= 0
}
