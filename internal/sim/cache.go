package sim

// cache is one set-associative level with LRU replacement. Slots carry a
// readyAt timestamp so asynchronously prefetched lines can be installed
// immediately (creating realistic occupancy pressure) while still stalling
// accesses that arrive before the fill completes.
//
// Host-side layout: tags are compact uint32s (only the line bits above
// the set index — the rest is implied by the set), so a full 16-way
// set's tags fit in one host cache line. The per-way LRU stamp and fill
// bookkeeping live in parallel arrays (structure-of-arrays: ready
// cycles dense in one uint64 array, the L1-only prefetched flags in a
// byte array) touched only on hits, installs and the full-set LRU pass.
//
// Lookups do not scan this level at all on the hot path: every level of
// a Core shares one unified residency directory (see dir.go) probed
// once for the whole hierarchy. The dense tag arrays remain fully
// maintained as the directory's verification twin — find/probe below
// are the historical scan implementations, routed to by
// Core.SetScanLookups and by the twin fuzz tests, and the victim
// machinery reads the tags for the set-full check and to recover the
// evicted line at install time.
//
// Neither lookup strategy changes simulated behavior: a line occupies
// at most one way of its set, so however the slot is found it is the
// same slot a full scan would find, and the victim policy (lowest
// invalid way, else strictly-oldest LRU stamp) is shared.
type cache struct {
	cfg     CacheConfig
	sets    int
	ways    int
	setMask uint64
	// setShift is log2(sets): how far to shift a line to get its tag.
	setShift uint
	// levelShift is this level's slot-field shift in directory values
	// (dirL1Shift/dirL2Shift/dirLLCShift).
	levelShift uint
	// dir is the unified residency directory shared across the levels
	// of one Core; installAt and invalidateAll keep it current.
	dir *residencyDir
	// tags[set*ways+way] holds tag<<1|1 (bit 0 = valid); 0 means invalid.
	tags []uint32
	// stamps[set*ways+way] is the slot's last-use clock, kept dense so
	// the full-set LRU pass walks one or two host cache lines.
	stamps []uint64
	// ready[set*ways+way] is the cycle at which the slot's fill
	// completes; accesses earlier than this stall for the remainder.
	ready []uint64
	// pref[set*ways+way] marks lines installed by a prefetch that have
	// not yet served a demand access, for PMU efficacy accounting. Only
	// the L1 ever sets it, so outer levels leave it nil.
	pref []bool
}

// fibMul is the 64-bit Fibonacci hashing multiplier used to spread line
// numbers over the residency directory.
const fibMul = 0x9e3779b97f4a7c15

// newCache builds one level. levelShift selects the level's slot field
// in directory values; dir is the Core's shared residency directory
// (tests may attach a private one).
func newCache(cfg CacheConfig, levelShift uint, dir *residencyDir) *cache {
	sets := cfg.Sets()
	n := sets * cfg.Ways
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	c := &cache{
		cfg:        cfg,
		sets:       sets,
		ways:       cfg.Ways,
		setMask:    uint64(sets - 1),
		setShift:   shift,
		levelShift: levelShift,
		dir:        dir,
		tags:       make([]uint32, n),
		stamps:     make([]uint64, n),
		ready:      make([]uint64, n),
	}
	if levelShift == dirL1Shift {
		c.pref = make([]bool, n)
	}
	return c
}

// tagOf packs line into its stored tag. Compact tags require line
// numbers below 2^31 × sets (petabytes of address space); tagOf panics
// rather than aliasing if a workload ever exceeds that.
func (c *cache) tagOf(line uint64) uint32 {
	t := line >> c.setShift
	if t >= 1<<31 {
		panic("sim: line address too large for compact cache tags")
	}
	return uint32(t)<<1 | 1
}

// lineOf recovers the resident line of a valid slot from its compact
// tag and the slot's set index — the inverse of tagOf. This is how an
// install has the evicted line in hand without any scan.
func (c *cache) lineOf(slot int) uint64 {
	return uint64(c.tags[slot]>>1)<<c.setShift | uint64(slot/c.ways)
}

// lookup returns the slot index of line, or -1: a single directory
// probe filtered to this level.
func (c *cache) lookup(line uint64) int {
	return int((c.dir.get(line)>>c.levelShift)&dirSlotMask) - 1
}

// find returns the slot of line, or -1, by the verification-twin dense
// tag scan. An invalid tag ends the scan early because valid ways
// always form a prefix of the set: installs fill the lowest-index
// invalid way and lines are never invalidated individually (only
// invalidateAll).
func (c *cache) find(line uint64) int {
	base := int(line&c.setMask) * c.ways
	want := c.tagOf(line)
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			return base + w
		}
		if tag == 0 {
			return -1
		}
	}
	return -1
}

// probe returns the hit slot of line (or -1) and the victim slot an
// install into line's set would use (-1 on a hit), by the
// verification-twin scan. The victim choice is exactly the historical
// install policy: the lowest-index invalid way if one exists, else the
// way with the strictly smallest LRU stamp (ties to the lowest index).
// The LRU stamp pass runs only on a miss in a full set — the one case
// that actually evicts.
func (c *cache) probe(line uint64) (slot, victim int) {
	base := int(line&c.setMask) * c.ways
	want := c.tagOf(line)
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			return base + w, -1
		}
		if tag == 0 {
			return -1, base + w
		}
	}
	return -1, c.lruOf(base)
}

// victimOf picks the install victim in line's set without probing for a
// hit: the lowest-index invalid way (valid ways form a prefix: installs
// fill the lowest invalid way and lines are never invalidated
// individually), else the LRU way. Identical to the victim probe()
// returns on a miss. The prefix invariant makes "set full" one load —
// the highest way's tag — so the steady-state case goes straight to the
// LRU pass without scanning for a free way that cannot exist.
func (c *cache) victimOf(line uint64) int {
	base := int(line&c.setMask) * c.ways
	if c.tags[base+c.ways-1] != 0 {
		return c.lruOf(base)
	}
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == 0 {
			return base + w
		}
	}
	return c.lruOf(base)
}

// lruOf returns the slot with the strictly smallest LRU stamp in the
// full set starting at base (ties to the lowest index).
func (c *cache) lruOf(base int) int {
	victim := base
	oldest := c.stamps[base]
	for s := base + 1; s < base+c.ways; s++ {
		if st := c.stamps[s]; st < oldest {
			oldest = st
			victim = s
		}
	}
	return victim
}

// touch records a use of slot at the given clock for LRU ordering. The
// directory needs no update: the line's slot does not change.
func (c *cache) touch(slot int, now uint64) {
	c.stamps[slot] = now
}

// install places line into its set, evicting the LRU way if needed, and
// returns the slot. readyAt is the cycle the fill completes (== now for
// demand fills, later for prefetch fills).
func (c *cache) install(line, now, readyAt uint64) int {
	slot := c.find(line)
	if slot < 0 {
		slot = c.victimOf(line)
	}
	c.installAt(slot, line, now, readyAt)
	return slot
}

// installAt fills a victim slot previously returned by probe/victimOf,
// keeping the residency directory current: the evicted line (recovered
// from the slot's compact tag — always in hand, no scan) drops this
// level's slot field, and the incoming line gains it. The caller
// guarantees no install or touch hit this set between the victim choice
// and the fill, so the choice is still current.
func (c *cache) installAt(slot int, line, now, readyAt uint64) {
	c.fillSlot(slot, line, now, readyAt)
	c.dir.set(line, c.levelShift, slot)
}

// fillSlot is installAt without the incoming line's directory update:
// the victim's field is cleared here (the evicted line is in hand from
// the slot's compact tag), but recording the new residency is left to
// the caller. The multi-level fill paths use this to batch the incoming
// line's directory fields — one setFields probe for the whole fill
// instead of one per level. The directory is inconsistent (missing the
// new line's field) until that call, so callers must not probe it for
// this line in between.
func (c *cache) fillSlot(slot int, line, now, readyAt uint64) {
	if old := c.tags[slot]; old != 0 {
		c.dir.clear(uint64(old>>1)<<c.setShift|(line&c.setMask), c.levelShift)
	}
	c.tags[slot] = c.tagOf(line)
	c.stamps[slot] = now
	c.ready[slot] = readyAt
	if c.pref != nil {
		c.pref[slot] = false
	}
}

// invalidateAll clears every line (and this level's directory fields);
// used by Core.Reset.
func (c *cache) invalidateAll() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
		c.ready[i] = 0
	}
	for i := range c.pref {
		c.pref[i] = false
	}
	c.dir.clearLevel(c.levelShift)
}

// resident reports whether line is present (regardless of fill state),
// by the verification-twin scan.
func (c *cache) resident(line uint64) bool {
	return c.find(line) >= 0
}
