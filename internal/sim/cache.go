package sim

// cache is one set-associative level with LRU replacement. Slots carry a
// readyAt timestamp so asynchronously prefetched lines can be installed
// immediately (creating realistic occupancy pressure) while still stalling
// accesses that arrive before the fill completes.
//
// Host-side layout: tags are compact uint32s (only the line bits above
// the set index — the rest is implied by the set), so a full 16-way
// set's tags fit in one host cache line. The per-way LRU stamp and fill
// bookkeeping live in parallel arrays (structure-of-arrays: ready
// cycles dense in one uint64 array, the L1-only prefetched flags in a
// byte array) touched only on hits, installs and the full-set LRU pass.
//
// Lookups are tiered by level. The L1 — the level nearly every access
// resolves at — carries its own *exact index*: an open-addressed,
// Fibonacci-hashed map (kv) from generation-stamped line keys to
// slots, so the hot path is one hash, one compare against a structure
// a few KiB big that stays resident in the host's own cache. The outer
// levels share the Core's residency directory (see dir.go), probed only
// after an L1 miss. The dense tag arrays remain fully maintained at
// every level as the verification twin — find/probe below are the
// historical scan implementations, routed to by Core.SetScanLookups and
// by the twin fuzz tests, and the victim machinery reads the tags for
// the set-full check and to recover the evicted line at install time.
//
// Neither lookup strategy changes simulated behavior: a line occupies
// at most one way of its set, so however the slot is found it is the
// same slot a full scan would find, and the victim policy (lowest
// invalid way, else strictly-oldest LRU stamp) is shared.
type cache struct {
	cfg     CacheConfig
	sets    int
	ways    int
	setMask uint64
	// setShift is log2(sets): how far to shift a line to get its tag.
	setShift uint
	// levelShift is this level's slot-field shift in directory values
	// (dirL2Shift/dirLLCShift); unused on the exact (L1) level.
	levelShift uint
	// dir is the outer-level residency directory shared by the L2 and
	// LLC of one Core; installAt and invalidateAll keep it current. Nil
	// on the exact (L1) level.
	dir *residencyDir
	// tags[set*ways+way] holds tag<<1|1 (bit 0 = valid); 0 means invalid.
	tags []uint32
	// stamps[set*ways+way] is the slot's last-use clock, kept dense so
	// the full-set LRU pass walks one or two host cache lines.
	stamps []uint64
	// ready[set*ways+way] is the cycle at which the slot's fill
	// completes; accesses earlier than this stall for the remainder.
	ready []uint64
	// pref[set*ways+way] marks lines installed by a prefetch that have
	// not yet served a demand access, for PMU efficacy accounting. Only
	// the L1 ever sets it, so outer levels leave it nil.
	pref []bool

	// Exact-index state (L1 only; nil/zero on outer levels).
	//
	// kv forms the exact L1 map: an open-addressed, Fibonacci-hashed
	// table of interleaved pairs — kv[2i] = gen<<l1GenShift +
	// (line<<1|1) and kv[2i+1] = the line's slot. Key and slot share
	// one 16-byte pair, so a probe (hit or miss) touches a single host
	// cache line. Unlike a hint table it is authoritative for
	// *negatives* too — a probe ending at a free slot IS the L1 miss,
	// so the demand-miss path never scans a tag set. Linear probing,
	// backward-shift deletion (the displaced entry's home is recomputed
	// from the line embedded in its own key — no tag read), sized at
	// four times the slot count so the load factor stays at one
	// quarter. The generation term makes resetExact O(1): bumping gen
	// turns every current key stale by arithmetic (see resetExact), and
	// probes treat stale entries exactly like empty ones — correct
	// because inserts reuse them as free, so a live cluster never spans
	// a stale slot.
	kv []uint64
	// pos[slot] is the pair index of the map entry naming slot, exact
	// whenever tags[slot] is valid (insExact and the deletion shifts
	// keep it current; after resetExact it is garbage, but so are the
	// tags that would consult it). It lets a fill delete its victim's
	// entry with no find probe at all.
	pos []uint32
	// mapMask wraps pair indexes: number of pairs minus one.
	mapMask uint64
	// mapShift maps a Fibonacci-hashed line's top bits onto pair indexes.
	mapShift uint
	// gen counts resets this epoch; genw is gen<<l1GenShift, the term
	// added to every key written this epoch.
	gen  uint64
	genw uint64
}

// fibMul is the 64-bit Fibonacci hashing multiplier used to spread line
// numbers over the residency directory and the exact L1 map.
const fibMul = 0x9e3779b97f4a7c15

const (
	// l1GenShift places the generation term of a key above the widest
	// possible line<<1|1 payload (installed lines are bounded below 2^46
	// by fillExact, so the payload is below 2^47).
	l1GenShift = 47
	// l1GenMax is the generation count at which resetExact wraps gen to
	// zero and memsets the map, so gen<<l1GenShift never overflows and
	// stale keys from earlier epochs never survive a wrap.
	l1GenMax = 1 << (64 - l1GenShift - 1)
	// maxL1Line bounds installable line numbers so the generation
	// arithmetic above is exact (mirrors the compact-tag bound in tagOf;
	// 2^46 lines is exabytes of address space).
	maxL1Line = 1 << 46
)

// newExactCache builds the L1: the level carrying the exact map, with
// no directory membership. The map is sized at four times the slot
// count (next power of two), keeping probes near a single touch.
func newExactCache(cfg CacheConfig) *cache {
	c := newLevel(cfg)
	c.pref = make([]bool, len(c.tags))
	size := 1
	for size < len(c.tags)*4 {
		size <<= 1
	}
	shift := uint(64)
	for 1<<(64-shift) < size {
		shift--
	}
	c.kv = make([]uint64, 2*size)
	c.pos = make([]uint32, len(c.tags))
	c.mapMask = uint64(size - 1)
	c.mapShift = shift
	return c
}

// newOuterCache builds an outer level (L2 or LLC). levelShift selects
// the level's slot field in directory entries; dir is the Core's shared
// outer-level residency directory (tests may attach a private one).
func newOuterCache(cfg CacheConfig, levelShift uint, dir *residencyDir) *cache {
	c := newLevel(cfg)
	c.levelShift = levelShift
	c.dir = dir
	return c
}

func newLevel(cfg CacheConfig) *cache {
	sets := cfg.Sets()
	n := sets * cfg.Ways
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	return &cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		setMask:  uint64(sets - 1),
		setShift: shift,
		tags:     make([]uint32, n),
		stamps:   make([]uint64, n),
		ready:    make([]uint64, n),
	}
}

// tagOf packs line into its stored tag. Compact tags require line
// numbers below 2^31 × sets (petabytes of address space); tagOf panics
// rather than aliasing if a workload ever exceeds that.
func (c *cache) tagOf(line uint64) uint32 {
	t := line >> c.setShift
	if t >= 1<<31 {
		panic("sim: line address too large for compact cache tags")
	}
	return uint32(t)<<1 | 1
}

// lineOf recovers the resident line of a valid slot from its compact
// tag and the slot's set index — the inverse of tagOf. This is how an
// install has the evicted line in hand without any scan.
func (c *cache) lineOf(slot int) uint64 {
	return uint64(c.tags[slot]>>1)<<c.setShift | uint64(slot/c.ways)
}

// findExact returns the slot of line, or -1, through the exact map. The
// home probe usually decides — a key match is the hit, a free or stale
// slot is the miss — and only hash-collision overflow walks further.
// The fast paths in core.go and planops.go inline the home compare and
// call here only when it fails, so this starts at home again (one
// redundant warm load, no branch asymmetry). Exact-map levels only.
func (c *cache) findExact(line uint64) int {
	key := c.genw + (line<<1 | 1)
	i := (line * fibMul) >> c.mapShift
	for {
		k := c.kv[2*i]
		if k == key {
			return int(c.kv[2*i+1])
		}
		if k&1 == 0 || k>>l1GenShift != c.gen {
			return -1
		}
		i = (i + 1) & c.mapMask
	}
}

// insExact adds line → slot to the exact map. The caller guarantees
// line is not present (fills only install non-resident lines, after
// delExact has dropped the victim). Free and stale slots are
// interchangeable targets, which is what keeps probe clusters from ever
// spanning a stale slot.
func (c *cache) insExact(line uint64, slot int) {
	i := (line * fibMul) >> c.mapShift
	for {
		k := c.kv[2*i]
		if k&1 == 0 || k>>l1GenShift != c.gen {
			c.kv[2*i] = c.genw + (line<<1 | 1)
			c.kv[2*i+1] = uint64(slot)
			c.pos[slot] = uint32(i)
			return
		}
		i = (i + 1) & c.mapMask
	}
}

// delExactAt removes the map entry at pair index i (located by the
// caller through pos — no find probe) by backward-shift deletion: live
// entries after the hole that hash at or before it move back, so probes
// need no tombstones. A displaced entry's home position comes from the
// line embedded in its own key — the map is self-describing, no tag
// array is read — and its slot's pos follows it.
func (c *cache) delExactAt(i uint64) {
	j := i
	for {
		j = (j + 1) & c.mapMask
		k := c.kv[2*j]
		if k&1 == 0 || k>>l1GenShift != c.gen {
			break
		}
		// The entry at j may fill the hole at i only if its home does
		// not lie cyclically within (i, j] — otherwise a probe for it
		// starting at home would stop at the new hole j first.
		h := (((k - c.genw) >> 1) * fibMul) >> c.mapShift
		if (j-h)&c.mapMask >= (j-i)&c.mapMask {
			c.kv[2*i] = k
			s := c.kv[2*j+1]
			c.kv[2*i+1] = s
			c.pos[s] = uint32(i)
			i = j
		}
	}
	c.kv[2*i] = 0
}

// lookup returns the slot index of line, or -1, through the level's
// production structure: the exact index on L1, a directory probe
// filtered to this level's field on outer levels.
func (c *cache) lookup(line uint64) int {
	if c.dir == nil {
		return c.findExact(line)
	}
	return int((c.dir.get(line)>>c.levelShift)&dirSlotMask) - 1
}

// find returns the slot of line, or -1, by the verification-twin dense
// tag scan. An invalid tag ends the scan early because valid ways
// always form a prefix of the set: installs fill the lowest-index
// invalid way and lines are never invalidated individually (only
// invalidateAll).
func (c *cache) find(line uint64) int {
	base := int(line&c.setMask) * c.ways
	want := c.tagOf(line)
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			return base + w
		}
		if tag == 0 {
			return -1
		}
	}
	return -1
}

// probe returns the hit slot of line (or -1) and the victim slot an
// install into line's set would use (-1 on a hit), by the
// verification-twin scan. The victim choice is exactly the historical
// install policy: the lowest-index invalid way if one exists, else the
// way with the strictly smallest LRU stamp (ties to the lowest index).
// The LRU stamp pass runs only on a miss in a full set — the one case
// that actually evicts.
func (c *cache) probe(line uint64) (slot, victim int) {
	base := int(line&c.setMask) * c.ways
	want := c.tagOf(line)
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			return base + w, -1
		}
		if tag == 0 {
			return -1, base + w
		}
	}
	return -1, c.lruOf(base)
}

// victimOf picks the install victim in line's set without probing for a
// hit: the lowest-index invalid way (valid ways form a prefix: installs
// fill the lowest invalid way and lines are never invalidated
// individually), else the LRU way. Identical to the victim probe()
// returns on a miss. The prefix invariant makes "set full" one load —
// the highest way's tag — so the steady-state case goes straight to the
// LRU pass without scanning for a free way that cannot exist.
func (c *cache) victimOf(line uint64) int {
	base := int(line&c.setMask) * c.ways
	if c.tags[base+c.ways-1] != 0 {
		return c.lruOf(base)
	}
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == 0 {
			return base + w
		}
	}
	return c.lruOf(base)
}

// lruOf returns the slot with the strictly smallest LRU stamp in the
// full set starting at base (ties to the lowest index).
func (c *cache) lruOf(base int) int {
	victim := base
	oldest := c.stamps[base]
	for s := base + 1; s < base+c.ways; s++ {
		if st := c.stamps[s]; st < oldest {
			oldest = st
			victim = s
		}
	}
	return victim
}

// touch records a use of slot at the given clock for LRU ordering. The
// lookup structures need no update: the line's slot does not change.
func (c *cache) touch(slot int, now uint64) {
	c.stamps[slot] = now
}

// install places line into its set, evicting the LRU way if needed, and
// returns the slot. readyAt is the cycle the fill completes (== now for
// demand fills, later for prefetch fills).
func (c *cache) install(line, now, readyAt uint64) int {
	slot := c.find(line)
	if slot < 0 {
		slot = c.victimOf(line)
	}
	c.installAt(slot, line, now, readyAt)
	return slot
}

// installAt fills a victim slot previously returned by probe/victimOf,
// keeping the level's lookup structure current: on outer levels the
// evicted line (recovered from the slot's compact tag — always in hand,
// no scan) drops this level's directory field and the incoming line
// gains it; on the exact level the victim's map entry is replaced by
// the incoming line's. The caller guarantees no install or touch hit
// this set between the victim choice and the fill, so the choice is
// still current.
func (c *cache) installAt(slot int, line, now, readyAt uint64) {
	if c.dir == nil {
		c.fillExact(slot, line, now, readyAt)
		return
	}
	c.fillSlot(slot, line, now, readyAt)
	c.dir.set(line, c.levelShift, slot)
}

// fillSlot is the outer-level installAt without the incoming line's
// directory update: the victim's field is cleared here (the evicted
// line is in hand from the slot's compact tag, read before the tag is
// overwritten), but recording the new residency is left to the
// caller. The DRAM fill paths use this to batch the
// incoming line's directory fields — one setFields probe for the whole
// fill instead of one per level. The directory is inconsistent (missing
// the new line's field) until that call, so callers must not probe it
// for this line in between.
func (c *cache) fillSlot(slot int, line, now, readyAt uint64) {
	if old := c.tags[slot]; old != 0 {
		c.dir.clear(uint64(old>>1)<<c.setShift|(line&c.setMask), c.levelShift, slot)
	}
	c.tags[slot] = c.tagOf(line)
	c.stamps[slot] = now
	c.ready[slot] = readyAt
}

// fillExact is the exact-level fill: no directory traffic at all — the
// victim leaves the map (its line recovered from the slot's compact
// tag, still hot from the victim scan) and the incoming line takes the
// slot. All the maintenance lands in the ~24 KiB map and the dense
// per-slot arrays, which stay resident in the host's own cache: L1
// churn, the hottest maintenance in the simulator, never touches the
// megabyte-scale directory.
func (c *cache) fillExact(slot int, line, now, readyAt uint64) {
	if line >= maxL1Line {
		panic("sim: line address too large for the exact L1 index")
	}
	if c.tags[slot] != 0 {
		c.delExactAt(uint64(c.pos[slot]))
	}
	c.tags[slot] = c.tagOf(line)
	c.stamps[slot] = now
	c.ready[slot] = readyAt
	c.pref[slot] = false
	c.insExact(line, slot)
}

// resetExact invalidates the exact level in O(tag bytes): the tags
// memset (2 KiB for the default L1) empties every set for the twin
// scans and victim machinery, and the generation bump turns every map
// key stale without touching them. Staleness is exact by arithmetic: a
// stored key is g'·2^47 + (x<<1|1) with x < 2^46 (fillExact's bound)
// and a lookup compares against g·2^47 + (q<<1|1) with q < 2^58 (any
// uint64 address >> lineShift) — equality forces (g-g')·2^47 ≡ (x-q)·2
// (mod 2^64), which with those bounds has no solution for g' ≠ g, so
// only current-epoch keys ever match; gen wraps through a keys memset
// before the shifted term could overflow. Stale stamps/ready/pref
// words are unreachable rather than cleared: stamps are only read by
// the LRU pass over a *full* set (all ways re-filled after the reset,
// stamps rewritten), and ready/pref only for a slot a lookup just
// resolved (valid key ⇒ re-filled after the reset). The reset-vs-fresh
// differential test holds the whole core to bit-identical behavior on
// exactly this point.
func (c *cache) resetExact() {
	c.gen++
	if c.gen == l1GenMax {
		c.gen = 0
		for i := range c.kv {
			c.kv[i] = 0
		}
	}
	c.genw = c.gen << l1GenShift
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// invalidateAll clears every line (and, on outer levels, this level's
// directory fields); whole-level invalidation for tests and twins —
// Core.Reset uses the cheaper sweepReset/resetExact combination.
func (c *cache) invalidateAll() {
	if c.dir == nil {
		c.resetExact()
		return
	}
	c.dir.clearLevel(c.levelShift)
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
		c.ready[i] = 0
	}
}

// resident reports whether line is present (regardless of fill state),
// by the verification-twin scan.
func (c *cache) resident(line uint64) bool {
	return c.find(line) >= 0
}
