package sim

// cache is one set-associative level with LRU replacement. Tags carry a
// readyAt timestamp so asynchronously prefetched lines can be installed
// immediately (creating realistic occupancy pressure) while still stalling
// accesses that arrive before the fill completes.
type cache struct {
	cfg     CacheConfig
	sets    int
	setMask uint64
	// tags[set*ways+way] holds line|1 (bit 0 = valid); 0 means invalid.
	tags []uint64
	// stamp[set*ways+way] is the last-use clock for LRU.
	stamp []uint64
	// readyAt[set*ways+way] is the cycle at which the line's fill
	// completes; accesses earlier than this stall for the remainder.
	readyAt []uint64
	// prefetched[set*ways+way] marks lines installed by a prefetch that
	// have not yet served a demand access, for PMU efficacy accounting.
	prefetched []bool
}

func newCache(cfg CacheConfig) *cache {
	sets := cfg.Sets()
	n := sets * cfg.Ways
	return &cache{
		cfg:        cfg,
		sets:       sets,
		setMask:    uint64(sets - 1),
		tags:       make([]uint64, n),
		stamp:      make([]uint64, n),
		readyAt:    make([]uint64, n),
		prefetched: make([]bool, n),
	}
}

// lookup returns the slot index of line in its set, or -1.
func (c *cache) lookup(line uint64) int {
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	want := line<<1 | 1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == want {
			return base + w
		}
	}
	return -1
}

// touch records a use of slot at the given clock for LRU ordering.
func (c *cache) touch(slot int, now uint64) {
	c.stamp[slot] = now
}

// install places line into its set, evicting the LRU way if needed, and
// returns the slot. readyAt is the cycle the fill completes (== now for
// demand fills, later for prefetch fills).
func (c *cache) install(line, now, readyAt uint64) int {
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	victim := base
	oldest := c.stamp[base]
	for w := 0; w < c.cfg.Ways; w++ {
		slot := base + w
		if c.tags[slot] == 0 {
			victim = slot
			break
		}
		if c.stamp[slot] < oldest {
			oldest = c.stamp[slot]
			victim = slot
		}
	}
	c.tags[victim] = line<<1 | 1
	c.stamp[victim] = now
	c.readyAt[victim] = readyAt
	c.prefetched[victim] = false
	return victim
}

// invalidateAll clears every line; used by Core.Reset.
func (c *cache) invalidateAll() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
		c.readyAt[i] = 0
		c.prefetched[i] = false
	}
}

// resident reports whether line is present (regardless of fill state).
func (c *cache) resident(line uint64) bool {
	return c.lookup(line) >= 0
}
