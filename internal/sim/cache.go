package sim

// cache is one set-associative level with LRU replacement. Slots carry a
// readyAt timestamp so asynchronously prefetched lines can be installed
// immediately (creating realistic occupancy pressure) while still stalling
// accesses that arrive before the fill completes.
//
// Host-side layout: tags are compact uint32s (only the line bits above
// the set index — the rest is implied by the set), so a full 16-way
// set's tags fit in one host cache line and the scan kernels walk
// contiguous memory. The per-way LRU stamp and fill bookkeeping live in
// parallel meta arrays touched only on hits, installs and the full-set
// LRU pass.
//
// Lookups go through a shortcut table probed before any scan, chosen
// per level at construction:
//
//   - exact levels (the L1): a line→slot shadow index keyed by a full
//     line hash, verified against the per-slot line number, written on
//     every install and self-healed on every scan hit. A verified
//     shadow hit is exact (slot s holds line iff lines[s] == line<<1|1,
//     validity packed into the value), so the L1 hit path and residency
//     probes — the
//     scheduler's most frequent questions — are one load-and-compare
//     with no way scan. Only shadow collisions and true misses fall to
//     the dense set scan. The shadow needs no maintenance on eviction:
//     a stale entry fails verification and is overwritten by the next
//     install or scan hit. Sized at 4× the line capacity (8 KiB for the
//     default 32 KiB L1), it stays hot in the host's own cache.
//
//   - scanned levels (L2, LLC): a dense tag scan of the line's set,
//     nothing else. A full set's compact tags fit one host cache line
//     and the scan exits early at the first invalid way, so the probe
//     costs a single host memory touch. The bigger levels see far fewer
//     probes (only L1 misses reach them), their probes are mostly cold
//     (random sets), and at their size any line-keyed shadow or per-set
//     hint table just adds a second host miss per probe — measurably
//     slower than the bare scan.
//
// Neither shortcut changes simulated behavior: a line occupies at most
// one way of its set, so however the slot is found it is the same slot
// a full scan would find, and the victim policy (lowest invalid way,
// else strictly-oldest LRU stamp) is shared.
type cache struct {
	cfg     CacheConfig
	sets    int
	ways    int
	setMask uint64
	// setShift is log2(sets): how far to shift a line to get its tag.
	setShift uint
	// tags[set*ways+way] holds tag<<1|1 (bit 0 = valid); 0 means invalid.
	tags []uint32
	// stamps[set*ways+way] is the slot's last-use clock, kept dense so
	// the full-set LRU pass walks one or two host cache lines.
	stamps []uint64
	// fill[set*ways+way] is the slot's fill bookkeeping, touched only on
	// hits and installs.
	fill []fillMeta
	// exact selects the shadow-index strategy; when false lookups scan
	// and shadow/lines stay nil.
	exact bool
	// lines[set*ways+way] holds the slot's resident line as line<<1|1
	// (0 = never installed), the verification target for shadow probes.
	// Packing validity into the value makes verification one load: a
	// never-installed slot holds 0, which no vline equals. Exact levels
	// only.
	lines []uint64
	// shadow[hash(line)] holds slot+1 (0 = unset), last-writer-wins.
	// Exact levels only.
	shadow []int32
	// shadowShift maps a Fibonacci-hashed line's top bits onto shadow.
	shadowShift uint
}

// fillMeta is the fill state of one cache slot.
type fillMeta struct {
	// readyAt is the cycle at which the line's fill completes; accesses
	// earlier than this stall for the remainder.
	readyAt uint64
	// prefetched marks lines installed by a prefetch that have not yet
	// served a demand access, for PMU efficacy accounting.
	prefetched bool
}

// fibMul is the 64-bit Fibonacci hashing multiplier used to spread line
// numbers over the shadow index.
const fibMul = 0x9e3779b97f4a7c15

func newCache(cfg CacheConfig, exact bool) *cache {
	sets := cfg.Sets()
	n := sets * cfg.Ways
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	c := &cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		setMask:  uint64(sets - 1),
		setShift: shift,
		tags:     make([]uint32, n),
		stamps:   make([]uint64, n),
		fill:     make([]fillMeta, n),
		exact:    exact,
	}
	if exact {
		size := 1
		for size < n*4 {
			size <<= 1
		}
		c.lines = make([]uint64, n)
		c.shadow = make([]int32, size)
		sshift := uint(64)
		for 1<<(64-sshift) < size {
			sshift--
		}
		c.shadowShift = sshift
	}
	return c
}

// tagOf packs line into its stored tag. Compact tags require line
// numbers below 2^31 × sets (petabytes of address space); tagOf panics
// rather than aliasing if a workload ever exceeds that.
func (c *cache) tagOf(line uint64) uint32 {
	t := line >> c.setShift
	if t >= 1<<31 {
		panic("sim: line address too large for compact cache tags")
	}
	return uint32(t)<<1 | 1
}

// lookup returns the slot index of line, or -1.
func (c *cache) lookup(line uint64) int {
	return c.find(line)
}

// find returns the slot of line, or -1. Exact levels answer shadow hits
// with one verified probe and fall to the set scan otherwise; scanned
// levels scan the set's dense tags directly. An invalid tag ends any
// scan early because valid ways always form a prefix of the set:
// installs fill the lowest-index invalid way and lines are never
// invalidated individually (only invalidateAll).
func (c *cache) find(line uint64) int {
	if c.exact {
		h := (line * fibMul) >> c.shadowShift
		if s := int(c.shadow[h]) - 1; s >= 0 && c.lines[s] == line<<1|1 {
			return s
		}
		return c.scanExact(line, h)
	}
	base := int(line&c.setMask) * c.ways
	want := c.tagOf(line)
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			return base + w
		}
		if tag == 0 {
			return -1
		}
	}
	return -1
}

// scanExact is the exact-level fallback scan after a shadow miss at
// hash position h: a dense tag scan of line's set, repairing the shadow
// entry on a hit so a collision-evicted shortcut heals itself.
func (c *cache) scanExact(line uint64, h uint64) int {
	base := int(line&c.setMask) * c.ways
	want := c.tagOf(line)
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			s := base + w
			c.shadow[h] = int32(s + 1)
			return s
		}
		if tag == 0 {
			return -1
		}
	}
	return -1
}

// probe returns the hit slot of line (or -1) and the victim slot an
// install into line's set would use (-1 on a hit). The victim choice is
// exactly the historical install policy: the lowest-index invalid way
// if one exists, else the way with the strictly smallest LRU stamp
// (ties to the lowest index). The LRU stamp pass runs only on a miss in
// a full set — the one case that actually evicts.
func (c *cache) probe(line uint64) (slot, victim int) {
	base := int(line&c.setMask) * c.ways
	if c.exact {
		h := (line * fibMul) >> c.shadowShift
		if s := int(c.shadow[h]) - 1; s >= 0 && c.lines[s] == line<<1|1 {
			return s, -1
		}
		want := c.tagOf(line)
		tags := c.tags[base : base+c.ways]
		for w, tag := range tags {
			if tag == want {
				s := base + w
				c.shadow[h] = int32(s + 1)
				return s, -1
			}
			if tag == 0 {
				// Valid ways are a prefix (see find), so no hit lies
				// beyond and this is the lowest-index invalid way.
				return -1, base + w
			}
		}
		return -1, c.lruOf(base)
	}
	want := c.tagOf(line)
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == want {
			return base + w, -1
		}
		if tag == 0 {
			return -1, base + w
		}
	}
	return -1, c.lruOf(base)
}

// victimOf picks the install victim in line's set without probing for a
// hit: the lowest-index invalid way (valid ways form a prefix: installs
// fill the lowest invalid way and lines are never invalidated
// individually), else the LRU way. Identical to the victim probe()
// returns on a miss. The prefix invariant makes "set full" one load —
// the highest way's tag — so the steady-state case goes straight to the
// LRU pass without scanning for a free way that cannot exist.
func (c *cache) victimOf(line uint64) int {
	base := int(line&c.setMask) * c.ways
	if c.tags[base+c.ways-1] != 0 {
		return c.lruOf(base)
	}
	tags := c.tags[base : base+c.ways]
	for w, tag := range tags {
		if tag == 0 {
			return base + w
		}
	}
	return c.lruOf(base)
}

// lruOf returns the slot with the strictly smallest LRU stamp in the
// full set starting at base (ties to the lowest index).
func (c *cache) lruOf(base int) int {
	victim := base
	oldest := c.stamps[base]
	for s := base + 1; s < base+c.ways; s++ {
		if st := c.stamps[s]; st < oldest {
			oldest = st
			victim = s
		}
	}
	return victim
}

// touch records a use of slot at the given clock for LRU ordering.
func (c *cache) touch(slot int, now uint64) {
	c.stamps[slot] = now
}

// install places line into its set, evicting the LRU way if needed, and
// returns the slot. readyAt is the cycle the fill completes (== now for
// demand fills, later for prefetch fills).
func (c *cache) install(line, now, readyAt uint64) int {
	slot, victim := c.probe(line)
	if slot < 0 {
		slot = victim
	}
	c.installAt(slot, line, now, readyAt)
	return slot
}

// installAt fills a victim slot previously returned by probe, keeping
// the lookup shortcut current: exact levels record the slot's new line
// and point its shadow entry here (the evicted line's entry needs no
// cleanup — it fails verification from now on). The caller guarantees
// no install or touch hit this set between the probe and the fill, so
// the victim choice is still current.
func (c *cache) installAt(slot int, line, now, readyAt uint64) {
	if c.exact {
		c.lines[slot] = line<<1 | 1
		c.shadow[(line*fibMul)>>c.shadowShift] = int32(slot + 1)
	}
	c.tags[slot] = c.tagOf(line)
	c.stamps[slot] = now
	c.fill[slot] = fillMeta{readyAt: readyAt}
}

// invalidateAll clears every line; used by Core.Reset.
func (c *cache) invalidateAll() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
		c.fill[i] = fillMeta{}
	}
	if c.exact {
		for i := range c.lines {
			c.lines[i] = 0
		}
		for i := range c.shadow {
			c.shadow[i] = 0
		}
	}
}

// resident reports whether line is present (regardless of fill state).
func (c *cache) resident(line uint64) bool {
	return c.find(line) >= 0
}
