package sim

import (
	"sync"
	"testing"
)

// TestCorePoolRecycles pins the pool mechanics: Put then Get returns
// the same core, detached from its observation hooks and reset, and
// Stats counts construction vs. reuse.
func TestCorePoolRecycles(t *testing.T) {
	p := NewCorePool(DefaultConfig())
	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	c1.SetTracer(countingTracer{})
	c1.SetAccessLog(func(MemAccess) {})
	c1.SetScanLookups(true)
	c1.Read(0x4000, 64)
	p.Put(c1)

	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("Get after Put did not recycle the pooled core")
	}
	if c2.trc != nil || c2.alog != nil || c2.scan {
		t.Fatal("recycled core kept observation hooks or scan mode")
	}
	if c2.Now() != 0 || c2.Counters() != (Counters{}) {
		t.Fatalf("recycled core not reset: clock %d, counters %+v", c2.Now(), c2.Counters())
	}
	if news, reuses := p.Stats(); news != 1 || reuses != 1 {
		t.Fatalf("Stats = (%d, %d), want (1, 1)", news, reuses)
	}
	p.Put(c2)
	p.Put(nil) // must be a no-op
}

// countingTracer is a minimal Tracer for attachment tests.
type countingTracer struct{}

func (countingTracer) Event(TraceEvent) {}

// TestCorePoolRecycledEquivalence runs a polluting workload on a pooled
// core, recycles it, and replays a fresh stream against a brand-new
// core in lockstep — the pooled path must be observationally identical.
func TestCorePoolRecycledEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	p := NewCorePool(cfg)
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range genOps(111, 6000) {
		apply(c, op)
	}
	p.Put(c)
	recycled, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lockstep(t, "pooled", recycled, fresh, genOps(222, 20000))
}

// TestCorePoolConcurrent hammers Get/Put from parallel goroutines (the
// sweep-runner usage pattern) so the race detector can see the pool's
// locking; each checked-out core does a little real work.
func TestCorePoolConcurrent(t *testing.T) {
	p := NewCorePool(DefaultConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				for l := uint64(0); l < 64; l++ {
					c.Read((uint64(g)<<20)+l*LineBytes, 8)
				}
				p.Put(c)
			}
		}(g)
	}
	wg.Wait()
	news, reuses := p.Stats()
	if news+reuses != 8*50 {
		t.Fatalf("Stats = (%d, %d), want %d total", news, reuses, 8*50)
	}
	if reuses == 0 {
		t.Fatal("pool never recycled a core")
	}
}
