package sim

import (
	"math/rand"
	"testing"
)

// newTestHierarchy builds the three levels of cfg — the exact-index L1
// plus the two outer levels sharing one residency directory — exactly
// as NewCore wires them.
func newTestHierarchy(cfg Config) (*residencyDir, []*cache) {
	dir := newResidencyDir(cfg.L2.slots() + cfg.LLC.slots())
	l1 := newExactCache(cfg.L1)
	l2 := newOuterCache(cfg.L2, dirL2Shift, dir)
	llc := newOuterCache(cfg.LLC, dirLLCShift, dir)
	dir.attach(l2, llc)
	return dir, []*cache{l1, l2, llc}
}

// TestDirectoryMatchesScan is the tiered-lookup twin fuzz: it churns a
// full three-level hierarchy through 300k randomized install/evict/
// touch/invalidate/reset operations and asserts after every one that
// the production lookup structures — the exact L1 index for the inner
// level, the outer-level residency directory for the rest — and the
// scanned dense tag arrays agree on the (level, slot) of the operated
// line; on periodic full sweeps the structures must agree
// *bidirectionally* on every resident line in the machine. Any
// divergence is a maintenance bug: an eviction that failed to clear its
// field, an install that missed its insert, a backward-shift delete
// that stranded a cluster entry, a generation bump that resurrected a
// stale line word, or an invalidation that left a field behind.
func TestDirectoryMatchesScan(t *testing.T) {
	cfg := DefaultConfig()
	dir, levels := newTestHierarchy(cfg)
	rng := rand.New(rand.NewSource(7))

	// Three times the LLC's line capacity: heavy set conflict at every
	// level and steady probe-cluster churn in the directory.
	space := uint64(cfg.LLC.slots()) * 3
	var now uint64
	for i := 0; i < 300000; i++ {
		now++
		line := rng.Uint64() % space

		// Per-op agreement on the operated line: the exact index for
		// L1, the one directory probe the miss path would issue for the
		// outer levels.
		if ds, ss := levels[0].findExact(line), levels[0].find(line); ds != ss {
			t.Fatalf("op %d line %d L1: exact index slot %d, scanned slot %d", i, line, ds, ss)
		}
		e := dir.get(line)
		for li, lvl := range levels[1:] {
			ds := int((e>>lvl.levelShift)&dirSlotMask) - 1
			if ss := lvl.find(line); ds != ss {
				t.Fatalf("op %d line %d outer level %d: directory slot %d, scanned slot %d", i, line, li+1, ds, ss)
			}
		}

		switch r := rng.Intn(1000); {
		case r == 0:
			// Rare whole-level invalidation — the O(level) maintenance
			// operation (clearLevel on outer levels, a generation bump
			// on the L1).
			levels[rng.Intn(3)].invalidateAll()
		case r == 1:
			// Rare whole-core reset, exactly as Core.Reset performs it:
			// L1 generation bump plus the directory's live-entry sweep,
			// which must leave every level empty.
			levels[0].resetExact()
			dir.sweepReset()
			for li, lvl := range levels {
				for s, tag := range lvl.tags {
					if tag != 0 {
						t.Fatalf("op %d: level %d slot %d tag %#x survived reset", i, li, s, tag)
					}
				}
			}
			if dir.live != 0 {
				t.Fatalf("op %d: %d live entries survived sweepReset", i, dir.live)
			}
		case r < 700:
			// Demand-like: touch on hit, install over the LRU victim on
			// a miss, at a random level.
			lvl := levels[rng.Intn(3)]
			if s := lvl.find(line); s >= 0 {
				lvl.touch(s, now)
			} else {
				lvl.installAt(lvl.victimOf(line), line, now, now)
			}
		default:
			// Prefetch-like: install into L1 with a future ready cycle,
			// plus outer installs when absent from both outer levels
			// (the DRAM fill path). A level is only ever installed into
			// on a miss at that level — the core never duplicates a
			// line within a set.
			if levels[1].find(line) < 0 && levels[2].find(line) < 0 {
				levels[2].installAt(levels[2].victimOf(line), line, now, now+200)
				levels[1].installAt(levels[1].victimOf(line), line, now, now+200)
			}
			if levels[0].find(line) < 0 {
				v := levels[0].victimOf(line)
				levels[0].installAt(v, line, now, now+200)
				levels[0].pref[v] = true
			}
		}

		if i%4096 == 0 {
			verifyDirectoryTwin(t, i, dir, levels[0], levels[1:])
		}
	}
	verifyDirectoryTwin(t, 300000, dir, levels[0], levels[1:])
}

// verifyDirectoryTwin cross-checks the tiered lookup structures against
// the dense tag arrays in both directions: every valid L1 slot's line
// must resolve back to that slot through the exact index, every valid
// outer slot's line must resolve through the directory, every directory
// entry's remnant and fields must point at slots holding its line, and
// the live entry count must equal the number of distinct outer-resident
// lines. l1 may be nil when only outer levels are under test.
func verifyDirectoryTwin(t *testing.T, op int, dir *residencyDir, l1 *cache, outer []*cache) {
	t.Helper()
	if l1 != nil {
		for slot, tag := range l1.tags {
			if tag == 0 {
				continue
			}
			line := l1.lineOf(slot)
			if got := l1.findExact(line); got != slot {
				t.Fatalf("op %d: L1 slot %d holds line %d but exact index says slot %d", op, slot, line, got)
			}
		}
	}
	distinct := map[uint64]struct{}{}
	for li, lvl := range outer {
		for slot, tag := range lvl.tags {
			if tag == 0 {
				continue
			}
			line := lvl.lineOf(slot)
			distinct[line] = struct{}{}
			if got := int((dir.get(line)>>lvl.levelShift)&dirSlotMask) - 1; got != slot {
				t.Fatalf("op %d: outer level %d slot %d holds line %d but directory says slot %d", op, li, slot, line, got)
			}
		}
	}
	if n := dir.entries(); n != len(distinct) || n != dir.live {
		t.Fatalf("op %d: %d directory entries (live count %d) for %d distinct outer-resident lines", op, n, dir.live, len(distinct))
	}
	tombs := 0
	for i, e := range dir.tab {
		if e == 0 {
			continue
		}
		if e&dirFieldsMask == 0 {
			if e&dirTombMark == 0 {
				t.Fatalf("op %d: directory entry at %d has no slot fields and no tombstone mark", op, i)
			}
			tombs++
			continue
		}
		line := dir.lineAt(uint64(i))
		if e>>dirRemShift != line&dirRemMask {
			t.Fatalf("op %d: directory entry at %d: remnant %#x does not match reconstructed line %d", op, i, e>>dirRemShift, line)
		}
		for li, lvl := range outer {
			s := int((e>>lvl.levelShift)&dirSlotMask) - 1
			if s < 0 {
				continue
			}
			if s >= len(lvl.tags) || lvl.tags[s] != lvl.tagOf(line) || uint64(s/lvl.ways) != line&lvl.setMask {
				t.Fatalf("op %d: directory maps line %d to outer level %d slot %d, which holds tag %#x", op, line, li, s, lvl.tags[s])
			}
		}
	}
	if tombs != dir.tombs {
		t.Fatalf("op %d: %d tombstones in the table, tomb count says %d", op, tombs, dir.tombs)
	}
	if dir.tombs > dir.tombMax {
		t.Fatalf("op %d: %d tombstones exceed the budget %d", op, dir.tombs, dir.tombMax)
	}
}

// TestDirClusterChurn fuzzes the packed directory at its sizing-limit
// load factor with deliberately aliased key remnants: tiny outer caches
// whose aggregate capacity drives the 64-entry table to one-half load,
// over an address space built from a few base lines replicated at
// multiples of 2^22 — so distinct lines share a remnant (and a set,
// differing only in tag) and a remnant match alone would constantly
// lie. Probe clusters routinely wrap the table end, backward-shift
// deletion sees every cluster shape, and the high-word-verified key
// comparison (hi) is what keeps the answers exact.
func TestDirClusterChurn(t *testing.T) {
	mk := func(name string, sets, ways int) CacheConfig {
		return CacheConfig{Name: name, SizeBytes: sets * ways * LineBytes, Ways: ways, HitLatency: 1}
	}
	l2cfg, llccfg := mk("l2", 4, 4), mk("llc", 4, 4)
	dir := newResidencyDir(l2cfg.slots() + llccfg.slots()) // 64 entries
	l2 := newOuterCache(l2cfg, dirL2Shift, dir)
	llc := newOuterCache(llccfg, dirLLCShift, dir)
	dir.attach(l2, llc)
	levels := []*cache{l2, llc}

	rng := rand.New(rand.NewSource(11))
	// 24 remnants × 4 high-bit variants: ~3x aggregate capacity, every
	// remnant aliased four ways.
	line := func() uint64 {
		return uint64(rng.Intn(24)) + uint64(rng.Intn(4))<<22
	}
	var now uint64
	for i := 0; i < 200000; i++ {
		now++
		l := line()
		switch r := rng.Intn(1000); {
		case r == 0:
			levels[rng.Intn(2)].invalidateAll()
		case r == 1:
			dir.sweepReset()
			for li, lvl := range levels {
				for s, tag := range lvl.tags {
					if tag != 0 {
						t.Fatalf("op %d: level %d slot %d tag %#x survived sweepReset", i, li, s, tag)
					}
				}
			}
		default:
			lvl := levels[rng.Intn(2)]
			if s := lvl.find(l); s >= 0 {
				lvl.touch(s, now)
			} else {
				lvl.installAt(lvl.victimOf(l), l, now, now)
			}
		}
		// Per-op: one directory probe answers both levels, against the
		// dense scans — including for this line's three remnant aliases.
		for v := uint64(0); v < 4; v++ {
			q := l&dirRemMask | v<<22
			e := dir.get(q)
			for li, lvl := range levels {
				ds := int((e>>lvl.levelShift)&dirSlotMask) - 1
				if ss := lvl.find(q); ds != ss {
					t.Fatalf("op %d line %d (alias %d): outer level %d directory slot %d, scanned slot %d", i, q, v, li, ds, ss)
				}
			}
		}
		if i%512 == 0 {
			verifyDirectoryTwin(t, i, dir, nil, levels)
		}
	}
	verifyDirectoryTwin(t, 200000, dir, nil, levels)
}

// TestProbeMatchesFindPlusVictim checks that the fused scan probe used
// by the verification-twin miss path answers exactly what separate
// find + victimOf calls would, and that each level's production lookup
// (the exact index on L1, the directory probe on outer levels) agrees.
func TestProbeMatchesFindPlusVictim(t *testing.T) {
	cfg := DefaultConfig().L1
	run := func(t *testing.T, c *cache) {
		rng := rand.New(rand.NewSource(13))
		space := uint64(c.sets*c.ways) * 2
		for i := 0; i < 100000; i++ {
			line := rng.Uint64() % space
			slot, victim := c.probe(line)
			if f := c.find(line); f != slot {
				t.Fatalf("op %d: probe slot %d, find %d", i, slot, f)
			}
			if lk := c.lookup(line); lk != slot {
				t.Fatalf("op %d: production lookup %d, probe %d", i, lk, slot)
			}
			if slot >= 0 {
				if victim != -1 {
					t.Fatalf("op %d: hit returned victim %d", i, victim)
				}
				c.touch(slot, uint64(i))
				continue
			}
			if v := c.victimOf(line); v != victim {
				t.Fatalf("op %d: probe victim %d, victimOf %d", i, victim, v)
			}
			c.installAt(victim, line, uint64(i), uint64(i))
		}
	}
	t.Run("exact", func(t *testing.T) { run(t, newExactCache(cfg)) })
	t.Run("outer", func(t *testing.T) {
		dir := newResidencyDir(cfg.slots())
		c := newOuterCache(cfg, dirL2Shift, dir)
		// Single-level directory: every entry carries only the L2
		// field, so the LLC pointer is never consulted.
		dir.attach(c, c)
		run(t, c)
	})
}
