package sim

import (
	"math/rand"
	"testing"
)

// TestExactShadowMatchesScan churns an exact (shadow-indexed) cache and
// a scanned twin through the same random find/touch/install/invalidate
// sequence and requires identical answers at every step. The two
// strategies share the set layout and victim policy, so any divergence
// is a shadow-consistency bug: a stale entry surviving verification, a
// collision not healing, or an install not updating the index.
func TestExactShadowMatchesScan(t *testing.T) {
	cfg := DefaultConfig().L1
	exact := newCache(cfg, true)
	scan := newCache(cfg, false)
	rng := rand.New(rand.NewSource(7))

	// Three times the line capacity: heavy set conflict and steady
	// shadow-slot collisions via the Fibonacci hash.
	space := uint64(cfg.Sets()*cfg.Ways) * 3
	var now uint64
	for i := 0; i < 300000; i++ {
		now++
		if rng.Intn(20000) == 0 {
			exact.invalidateAll()
			scan.invalidateAll()
			continue
		}
		line := rng.Uint64() % space
		se := exact.find(line)
		ss := scan.find(line)
		if se != ss {
			t.Fatalf("op %d line %d: exact find %d, scanned find %d", i, line, se, ss)
		}
		if exact.resident(line) != scan.resident(line) {
			t.Fatalf("op %d line %d: residency disagrees", i, line)
		}
		if se >= 0 {
			exact.touch(se, now)
			scan.touch(ss, now)
			continue
		}
		ve := exact.victimOf(line)
		vs := scan.victimOf(line)
		if ve != vs {
			t.Fatalf("op %d line %d: exact victim %d, scanned victim %d", i, line, ve, vs)
		}
		exact.installAt(ve, line, now, now)
		scan.installAt(vs, line, now, now)
	}
}

// TestProbeMatchesFindPlusVictim checks that the fused probe used by the
// miss path answers exactly what separate find + victimOf calls would.
func TestProbeMatchesFindPlusVictim(t *testing.T) {
	for _, ex := range []bool{true, false} {
		c := newCache(DefaultConfig().L1, ex)
		rng := rand.New(rand.NewSource(11))
		space := uint64(c.sets*c.ways) * 2
		for i := 0; i < 100000; i++ {
			line := rng.Uint64() % space
			slot, victim := c.probe(line)
			if f := c.find(line); f != slot {
				t.Fatalf("exact=%v op %d: probe slot %d, find %d", ex, i, slot, f)
			}
			if slot >= 0 {
				if victim != -1 {
					t.Fatalf("exact=%v op %d: hit returned victim %d", ex, i, victim)
				}
				c.touch(slot, uint64(i))
				continue
			}
			if v := c.victimOf(line); v != victim {
				t.Fatalf("exact=%v op %d: probe victim %d, victimOf %d", ex, i, victim, v)
			}
			c.installAt(victim, line, uint64(i), uint64(i))
		}
	}
}
