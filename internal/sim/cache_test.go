package sim

import (
	"math/rand"
	"testing"
)

// newTestHierarchy builds the three levels of cfg sharing one residency
// directory, exactly as NewCore wires them.
func newTestHierarchy(cfg Config) (*residencyDir, []*cache) {
	dir := newResidencyDir(cfg.L1.slots() + cfg.L2.slots() + cfg.LLC.slots())
	return dir, []*cache{
		newCache(cfg.L1, dirL1Shift, dir),
		newCache(cfg.L2, dirL2Shift, dir),
		newCache(cfg.LLC, dirLLCShift, dir),
	}
}

// TestDirectoryMatchesScan is the directory-twin fuzz: it churns a full
// three-level hierarchy through 300k randomized install/evict/touch/
// invalidate operations and asserts after every one that the unified
// residency directory and the scanned dense tag arrays agree on the
// (level, slot) of the operated line — and, on periodic full sweeps,
// that the two structures agree *bidirectionally* on every resident
// line in the machine. Any divergence is a directory-maintenance bug:
// an eviction that failed to clear its field, an install that missed
// its insert, a backward-shift delete that stranded a cluster entry, or
// an invalidateAll that left a stale level field behind.
func TestDirectoryMatchesScan(t *testing.T) {
	cfg := DefaultConfig()
	dir, levels := newTestHierarchy(cfg)
	rng := rand.New(rand.NewSource(7))

	// Three times the LLC's line capacity: heavy set conflict at every
	// level and steady probe-cluster churn in the directory.
	space := uint64(cfg.LLC.slots()) * 3
	var now uint64
	for i := 0; i < 300000; i++ {
		now++
		line := rng.Uint64() % space

		// Per-op agreement on the operated line, all three levels from
		// the one probe the hot path would issue.
		e := dir.get(line)
		for li, lvl := range levels {
			ds := int((e>>lvl.levelShift)&dirSlotMask) - 1
			if ss := lvl.find(line); ds != ss {
				t.Fatalf("op %d line %d level %d: directory slot %d, scanned slot %d", i, line, li, ds, ss)
			}
		}

		switch r := rng.Intn(1000); {
		case r == 0:
			// Rare whole-level invalidation (Core.Reset path) — the one
			// O(table) maintenance operation.
			levels[rng.Intn(3)].invalidateAll()
		case r < 700:
			// Demand-like: touch on hit, install over the LRU victim on
			// a miss, at a random level.
			lvl := levels[rng.Intn(3)]
			if s := lvl.find(line); s >= 0 {
				lvl.touch(s, now)
			} else {
				lvl.installAt(lvl.victimOf(line), line, now, now)
			}
		default:
			// Prefetch-like: install into L1 with a future ready cycle,
			// plus outer installs when absent from both outer levels
			// (the DRAM fill path). A level is only ever installed into
			// on a miss at that level — the core never duplicates a
			// line within a set.
			if levels[1].find(line) < 0 && levels[2].find(line) < 0 {
				levels[2].installAt(levels[2].victimOf(line), line, now, now+200)
				levels[1].installAt(levels[1].victimOf(line), line, now, now+200)
			}
			if levels[0].find(line) < 0 {
				v := levels[0].victimOf(line)
				levels[0].installAt(v, line, now, now+200)
				levels[0].pref[v] = true
			}
		}

		if i%4096 == 0 {
			verifyDirectoryTwin(t, i, dir, levels)
		}
	}
	verifyDirectoryTwin(t, 300000, dir, levels)
}

// verifyDirectoryTwin cross-checks the directory against the dense tag
// arrays in both directions: every valid slot's line must resolve back
// to that slot through the directory, every directory field must point
// at a slot holding its line, and the live entry count must equal the
// number of distinct resident lines.
func verifyDirectoryTwin(t *testing.T, op int, dir *residencyDir, levels []*cache) {
	t.Helper()
	distinct := map[uint64]struct{}{}
	for li, lvl := range levels {
		for slot, tag := range lvl.tags {
			if tag == 0 {
				continue
			}
			line := lvl.lineOf(slot)
			distinct[line] = struct{}{}
			if got := int((dir.get(line)>>lvl.levelShift)&dirSlotMask) - 1; got != slot {
				t.Fatalf("op %d: level %d slot %d holds line %d but directory says slot %d", op, li, slot, line, got)
			}
		}
	}
	if n := dir.entries(); n != len(distinct) {
		t.Fatalf("op %d: %d directory entries for %d distinct resident lines", op, n, len(distinct))
	}
	for i := uint64(0); i <= dir.mask; i++ {
		k := dir.tab[i*2]
		if k == 0 {
			continue
		}
		line, v := k>>1, dir.tab[i*2+1]
		if v == 0 {
			t.Fatalf("op %d: directory entry for line %d has empty value", op, line)
		}
		for li, lvl := range levels {
			s := int((v>>lvl.levelShift)&dirSlotMask) - 1
			if s < 0 {
				continue
			}
			if s >= len(lvl.tags) || lvl.tags[s] != lvl.tagOf(line) || uint64(s/lvl.ways) != line&lvl.setMask {
				t.Fatalf("op %d: directory maps line %d to level %d slot %d, which holds tag %#x", op, line, li, s, lvl.tags[s])
			}
		}
	}
}

// TestDirMatchesMapModel fuzzes the raw directory (set/clear/get/
// clearLevel/reset) against a map reference model at a high load
// factor, so probe clusters routinely wrap and backward-shift deletion
// sees every cluster shape.
func TestDirMatchesMapModel(t *testing.T) {
	d := newResidencyDir(24) // 64-entry table; keys below push load near 0.5
	model := map[uint64]uint64{}
	shifts := []uint{dirL1Shift, dirL2Shift, dirLLCShift}
	rng := rand.New(rand.NewSource(11))
	const space = 60

	for i := 0; i < 200000; i++ {
		line := rng.Uint64() % space
		shift := shifts[rng.Intn(3)]
		switch r := rng.Intn(100); {
		case r < 45:
			if len(model) < 30 || model[line] != 0 { // respect sizing: insert only below capacity
				slot := rng.Intn(dirSlotMask)
				d.set(line, shift, slot)
				model[line] = model[line]&^(dirSlotMask<<shift) | uint64(slot+1)<<shift
			}
		case r < 90:
			d.clear(line, shift)
			if v, ok := model[line]; ok {
				if v = v &^ (dirSlotMask << shift); v == 0 {
					delete(model, line)
				} else {
					model[line] = v
				}
			}
		case r < 99:
			d.clearLevel(shift)
			for k, v := range model {
				if v = v &^ (dirSlotMask << shift); v == 0 {
					delete(model, k)
				} else {
					model[k] = v
				}
			}
		default:
			d.reset()
			model = map[uint64]uint64{}
		}
		if got := d.get(line); got != model[line] {
			t.Fatalf("op %d line %d: directory %#x, model %#x", i, line, got, model[line])
		}
		if i%512 == 0 {
			if n := d.entries(); n != len(model) {
				t.Fatalf("op %d: %d entries, model has %d", i, n, len(model))
			}
			for k, v := range model {
				if got := d.get(k); got != v {
					t.Fatalf("op %d line %d: directory %#x, model %#x", i, k, got, v)
				}
			}
		}
	}
}

// TestProbeMatchesFindPlusVictim checks that the fused scan probe used
// by the verification-twin miss path answers exactly what separate
// find + victimOf calls would.
func TestProbeMatchesFindPlusVictim(t *testing.T) {
	cfg := DefaultConfig().L1
	c := newCache(cfg, dirL1Shift, newResidencyDir(cfg.slots()))
	rng := rand.New(rand.NewSource(13))
	space := uint64(c.sets*c.ways) * 2
	for i := 0; i < 100000; i++ {
		line := rng.Uint64() % space
		slot, victim := c.probe(line)
		if f := c.find(line); f != slot {
			t.Fatalf("op %d: probe slot %d, find %d", i, slot, f)
		}
		if lk := c.lookup(line); lk != slot {
			t.Fatalf("op %d: directory lookup %d, probe %d", i, lk, slot)
		}
		if slot >= 0 {
			if victim != -1 {
				t.Fatalf("op %d: hit returned victim %d", i, victim)
			}
			c.touch(slot, uint64(i))
			continue
		}
		if v := c.victimOf(line); v != victim {
			t.Fatalf("op %d: probe victim %d, victimOf %d", i, victim, v)
		}
		c.installAt(victim, line, uint64(i), uint64(i))
	}
}
