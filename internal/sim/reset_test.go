package sim

import (
	"math/rand"
	"testing"
)

// This file pins the claim Core.Reset makes: a reset core is
// observationally identical to a freshly constructed one, bit for bit.
// The generation-stamped reset deliberately leaves stale words behind
// (old lines entries, old stamps/ready values, untouched pref flags)
// and relies on them being unreachable; these tests replay randomized
// op streams on dirty-then-reset cores against fresh cores in lockstep
// and require identical clocks, counters, residency answers and access
// logs at every step.

// coreOp is one randomized public-API operation.
type coreOp struct {
	kind byte
	addr uint64
	size uint64
}

// genOps builds a deterministic op stream mixing the hot/mid/cold
// regions the scan-twin test uses, so streams exercise L1 hits, outer
// hits, DRAM fills, prefetch (including MSHR saturation), DMA fills,
// resets of the clock via stalls, and residency probes.
func genOps(seed int64, n int) []coreOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]coreOp, n)
	for i := range ops {
		var a uint64
		switch rng.Intn(3) {
		case 0:
			a = uint64(rng.Intn(16 << 10))
		case 1:
			a = 1<<22 + uint64(rng.Intn(1<<21))
		default:
			a = 1<<30 + uint64(rng.Intn(1<<28))
		}
		ops[i] = coreOp{
			kind: byte(rng.Intn(10)),
			addr: a,
			size: uint64(1 + rng.Intn(96)),
		}
	}
	return ops
}

// apply runs one op; for residency probes it returns the answer so the
// caller can compare across cores.
func apply(c *Core, op coreOp) (res bool) {
	switch op.kind {
	case 0:
		c.Stall(17)
	case 1:
		c.Compute(op.size * 3)
	case 2:
		c.TaskSwitch()
	case 3:
		c.Prefetch(op.addr, op.size)
	case 4:
		c.PrefetchLine(op.addr)
	case 5:
		c.DMAFill(op.addr, op.size)
	case 6:
		res = c.ResidentL1(op.addr, op.size)
	case 7:
		res = c.ResidentL1Line(op.addr)
	case 8:
		c.Write(op.addr, op.size)
	default:
		c.Read(op.addr, op.size)
	}
	return res
}

// dirtyCore returns a core that has run `cycles` rounds of a polluting
// workload, each followed by Reset — so its stale (supposedly
// unreachable) words carry several generations of garbage.
func dirtyCore(t *testing.T, cfg Config, seed int64, cycles int) *Core {
	t.Helper()
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cycles; i++ {
		for _, op := range genOps(seed+int64(i), 4000) {
			apply(c, op)
		}
		c.Reset()
	}
	return c
}

// lockstep replays ops on both cores, comparing clock and residency
// answers after every op and full counters periodically.
func lockstep(t *testing.T, label string, dirty, fresh *Core, ops []coreOp) {
	t.Helper()
	for i, op := range ops {
		dr := apply(dirty, op)
		fr := apply(fresh, op)
		if dr != fr {
			t.Fatalf("%s: op %d (%+v): residency answer diverged: reset-core %v, fresh %v", label, i, op, dr, fr)
		}
		if dn, fn := dirty.Now(), fresh.Now(); dn != fn {
			t.Fatalf("%s: op %d (%+v): clock diverged: reset-core %d, fresh %d", label, i, op, dn, fn)
		}
		if i%512 == 0 {
			if dc, fc := dirty.Counters(), fresh.Counters(); dc != fc {
				t.Fatalf("%s: op %d: counters diverged:\nreset-core %+v\nfresh      %+v", label, i, dc, fc)
			}
		}
	}
	if dc, fc := dirty.Counters(), fresh.Counters(); dc != fc {
		t.Fatalf("%s: final counters diverged:\nreset-core %+v\nfresh      %+v", label, dc, fc)
	}
}

// TestResetEquivalence replays a randomized op stream on a core that
// has been polluted and Reset (several times) against a fresh core,
// with the production fast paths active (no access log attached).
func TestResetEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	dirty := dirtyCore(t, cfg, 101, 3)
	fresh, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lockstep(t, "fastpath", dirty, fresh, genOps(202, 30000))
}

// TestResetEquivalenceAccessLog is the differential-replay form: both
// cores record their charged memory operations, and the two logs must
// be element-wise identical (addresses, sizes, kinds, and the cycle
// each was charged at).
func TestResetEquivalenceAccessLog(t *testing.T) {
	cfg := DefaultConfig()
	dirty := dirtyCore(t, cfg, 303, 2)
	fresh, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dlog, flog []MemAccess
	dirty.SetAccessLog(func(m MemAccess) { dlog = append(dlog, m) })
	fresh.SetAccessLog(func(m MemAccess) { flog = append(flog, m) })
	lockstep(t, "accesslog", dirty, fresh, genOps(404, 20000))
	if len(dlog) != len(flog) {
		t.Fatalf("access log length diverged: reset-core %d, fresh %d", len(dlog), len(flog))
	}
	for i := range dlog {
		if dlog[i] != flog[i] {
			t.Fatalf("access log entry %d diverged: reset-core %+v, fresh %+v", i, dlog[i], flog[i])
		}
	}
}

// TestResetEquivalenceScanTwin replays on reset cores in scan-lookup
// mode, covering the dense-scan side of the reset (zeroed tags with
// stale stamps/ready must scan identically to a fresh core's all-zero
// arrays).
func TestResetEquivalenceScanTwin(t *testing.T) {
	cfg := DefaultConfig()
	dirty := dirtyCore(t, cfg, 505, 2)
	fresh, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dirty.SetScanLookups(true)
	fresh.SetScanLookups(true)
	lockstep(t, "scantwin", dirty, fresh, genOps(606, 20000))
}

// TestResetGenerationWrap forces the L1 generation counter across its
// wrap boundary (where lines is memset and gen returns to zero) and
// requires reset-vs-fresh equivalence on both sides of it.
func TestResetGenerationWrap(t *testing.T) {
	cfg := DefaultConfig()
	dirty := dirtyCore(t, cfg, 707, 1)
	// Jump to just below the wrap, then cross it with real resets.
	dirty.l1.gen = l1GenMax - 2
	for i := 0; i < 4; i++ {
		for _, op := range genOps(808+int64(i), 2000) {
			apply(dirty, op)
		}
		dirty.Reset()
	}
	if g := dirty.l1.gen; g >= l1GenMax-2 {
		t.Fatalf("generation did not wrap: %d", g)
	}
	fresh, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lockstep(t, "genwrap", dirty, fresh, genOps(909, 20000))
}
