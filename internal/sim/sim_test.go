package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func mustCore(t *testing.T) *Core {
	t.Helper()
	c, err := NewCore(testConfig())
	if err != nil {
		t.Fatalf("NewCore: %v", err)
	}
	return c
}

// TestConfigValidate enumerates every invalid-config error path with a
// substring the error must carry, so a guard cannot silently rot into a
// different (or no) rejection. An empty want accepts the config.
func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"default ok", func(*Config) {}, ""},
		{"zero size", func(c *Config) { c.L1.SizeBytes = 0 }, "size and ways must be positive"},
		{"negative size", func(c *Config) { c.L2.SizeBytes = -4096 }, "size and ways must be positive"},
		{"zero ways", func(c *Config) { c.LLC.Ways = 0 }, "size and ways must be positive"},
		{"negative ways", func(c *Config) { c.L1.Ways = -2 }, "size and ways must be positive"},
		{"non pow2 sets", func(c *Config) { c.L1.SizeBytes = 24 << 10 }, "not a power of two"},
		{"non pow2 sets L2", func(c *Config) { c.L2.SizeBytes = 3 << 20 }, "not a power of two"},
		{"size not line multiple", func(c *Config) { c.L1.SizeBytes = 1000 }, "not a multiple of ways*line"},
		{"size not way multiple", func(c *Config) { c.LLC.SizeBytes = 2<<20 + 64 }, "not a multiple of ways*line"},
		// 256 MiB of 64 B lines is 4M slots — past the residency
		// directory's 21-bit per-level slot field.
		{"directory capacity", func(c *Config) { c.LLC.SizeBytes = 256 << 20 }, "residency directory"},
		{"zero dram", func(c *Config) { c.DRAMLatency = 0 }, "DRAM latency must be positive"},
		{"zero mshr", func(c *Config) { c.MSHRs = 0 }, "MSHR count must be positive"},
		{"negative mshr", func(c *Config) { c.MSHRs = -1 }, "MSHR count must be positive"},
		{"zero width", func(c *Config) { c.IssueWidth = 0 }, "issue width must be positive"},
		{"zero freq", func(c *Config) { c.FreqHz = 0 }, "frequency must be positive"},
		{"negative freq", func(c *Config) { c.FreqHz = -1 }, "frequency must be positive"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Validate() = %q, want substring %q", err, tt.want)
			}
			if _, err := NewCore(cfg); err == nil {
				t.Fatal("NewCore accepted the invalid config")
			}
		})
	}
}

func TestCacheConfigSets(t *testing.T) {
	cfg := CacheConfig{Name: "t", SizeBytes: 32 << 10, Ways: 8}
	if got, want := cfg.Sets(), 64; got != want {
		t.Fatalf("Sets() = %d, want %d", got, want)
	}
}

func TestColdReadHitsDRAMThenL1(t *testing.T) {
	c := mustCore(t)
	cfg := c.Config()

	c.Read(0x1000, 8)
	ctr := c.Counters()
	if ctr.LLCMisses != 1 {
		t.Fatalf("cold read LLCMisses = %d, want 1", ctr.LLCMisses)
	}
	if ctr.Cycles < cfg.DRAMLatency {
		t.Fatalf("cold read cycles = %d, want >= %d", ctr.Cycles, cfg.DRAMLatency)
	}

	before := c.Now()
	c.Read(0x1000, 8)
	ctr = c.Counters()
	if ctr.L1Hits != 1 {
		t.Fatalf("second read L1Hits = %d, want 1", ctr.L1Hits)
	}
	if got := c.Now() - before; got != cfg.L1.HitLatency {
		t.Fatalf("second read cost = %d cycles, want %d", got, cfg.L1.HitLatency)
	}
}

func TestWriteCountsSeparately(t *testing.T) {
	c := mustCore(t)
	c.Write(0x40, 4)
	ctr := c.Counters()
	if ctr.Writes != 1 || ctr.Reads != 0 {
		t.Fatalf("Writes=%d Reads=%d, want 1/0", ctr.Writes, ctr.Reads)
	}
}

func TestL1Eviction(t *testing.T) {
	c := mustCore(t)
	cfg := c.Config()
	// Fill one L1 set beyond its associativity: lines mapping to set 0
	// are spaced by sets*LineBytes.
	stride := uint64(cfg.L1.Sets() * LineBytes)
	for i := 0; i <= cfg.L1.Ways; i++ {
		c.Read(uint64(i)*stride, 1)
	}
	// The first line must have been evicted from L1 (though it may still
	// sit in L2).
	base := c.Counters()
	c.Read(0, 1)
	d := c.Counters().Sub(base)
	if d.L1Misses != 1 {
		t.Fatalf("re-read after eviction: L1Misses = %d, want 1", d.L1Misses)
	}
	if d.L2Hits != 1 {
		t.Fatalf("re-read should hit L2, got %+v", d)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	c := mustCore(t)
	cfg := c.Config()

	c.Prefetch(0x2000, 8)
	// Simulate doing other work long enough for the fill to complete.
	c.Compute(2 * cfg.DRAMLatency * cfg.IssueWidth)

	before := c.Now()
	c.Read(0x2000, 8)
	cost := c.Now() - before
	if cost != cfg.L1.HitLatency {
		t.Fatalf("post-prefetch read cost = %d, want L1 hit %d", cost, cfg.L1.HitLatency)
	}
	ctr := c.Counters()
	if ctr.PrefetchIssued != 1 || ctr.PrefetchUseful != 1 {
		t.Fatalf("prefetch counters = %+v, want issued=1 useful=1", ctr)
	}
}

func TestPrefetchLateStallsForRemainder(t *testing.T) {
	c := mustCore(t)
	cfg := c.Config()

	c.Prefetch(0x3000, 8)
	issued := c.Now()
	// Access immediately: must stall until issued-cost + DRAM fill done.
	c.Read(0x3000, 8)
	ctr := c.Counters()
	if ctr.PrefetchLate != 1 {
		t.Fatalf("PrefetchLate = %d, want 1", ctr.PrefetchLate)
	}
	want := issued + cfg.DRAMLatency + cfg.L1.HitLatency
	if c.Now() != want {
		t.Fatalf("clock after late access = %d, want %d", c.Now(), want)
	}
}

func TestPrefetchRedundant(t *testing.T) {
	c := mustCore(t)
	c.Read(0x4000, 8)
	c.Prefetch(0x4000, 8)
	if ctr := c.Counters(); ctr.PrefetchRedundant != 1 {
		t.Fatalf("PrefetchRedundant = %d, want 1", ctr.PrefetchRedundant)
	}
}

func TestMSHRLimitDropsPrefetches(t *testing.T) {
	cfg := testConfig()
	cfg.MSHRs = 2
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Prefetch(uint64(0x10000+i*4096), 1)
	}
	ctr := c.Counters()
	// Issue cost advances the clock slightly but far less than the DRAM
	// fill latency, so at most MSHRs fills can be live.
	if ctr.PrefetchIssued != 2 {
		t.Fatalf("PrefetchIssued = %d, want 2", ctr.PrefetchIssued)
	}
	if ctr.PrefetchDropped != 3 {
		t.Fatalf("PrefetchDropped = %d, want 3", ctr.PrefetchDropped)
	}
}

func TestMSHRsFreeAfterFill(t *testing.T) {
	cfg := testConfig()
	cfg.MSHRs = 1
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Prefetch(0x10000, 1)
	c.Compute(cfg.DRAMLatency * cfg.IssueWidth * 2)
	c.Prefetch(0x20000, 1)
	if ctr := c.Counters(); ctr.PrefetchIssued != 2 || ctr.PrefetchDropped != 0 {
		t.Fatalf("counters = %+v, want 2 issued 0 dropped", ctr)
	}
}

func TestBurstGapCheaperThanSeparateReads(t *testing.T) {
	c1 := mustCore(t)
	c1.Read(0x8000, 8*LineBytes) // one 8-line burst
	burst := c1.Now()

	c2 := mustCore(t)
	for i := 0; i < 8; i++ {
		c2.Read(uint64(0x8000+i*LineBytes), 1) // 8 separate accesses
	}
	separate := c2.Now()

	if burst >= separate {
		t.Fatalf("burst read (%d cycles) should be cheaper than separate reads (%d)", burst, separate)
	}
}

func TestComputeChargesByIssueWidth(t *testing.T) {
	c := mustCore(t)
	cfg := c.Config()
	c.Compute(10)
	want := (10 + cfg.IssueWidth - 1) / cfg.IssueWidth
	if c.Now() != want {
		t.Fatalf("Compute(10) advanced %d cycles, want %d", c.Now(), want)
	}
	if ctr := c.Counters(); ctr.Instructions != 10 {
		t.Fatalf("Instructions = %d, want 10", ctr.Instructions)
	}
}

func TestTaskSwitchCost(t *testing.T) {
	c := mustCore(t)
	c.TaskSwitch()
	if c.Now() != c.Config().SwitchCost {
		t.Fatalf("TaskSwitch cost = %d, want %d", c.Now(), c.Config().SwitchCost)
	}
	if ctr := c.Counters(); ctr.TaskSwitches != 1 {
		t.Fatalf("TaskSwitches = %d, want 1", ctr.TaskSwitches)
	}
}

func TestResidentL1(t *testing.T) {
	c := mustCore(t)
	if c.ResidentL1(0x9000, 64) {
		t.Fatal("cold line reported resident")
	}
	c.Read(0x9000, 64)
	if !c.ResidentL1(0x9000, 64) {
		t.Fatal("read line not resident")
	}
	if !c.ResidentL1(0x9000, 0) {
		t.Fatal("zero-size range must be trivially resident")
	}
}

func TestReset(t *testing.T) {
	c := mustCore(t)
	c.Read(0xA000, 128)
	c.Prefetch(0xB000, 64)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("clock after Reset = %d", c.Now())
	}
	if ctr := c.Counters(); ctr != (Counters{}) {
		t.Fatalf("counters after Reset = %+v", ctr)
	}
	base := c.Counters()
	c.Read(0xA000, 1)
	if d := c.Counters().Sub(base); d.LLCMisses != 1 {
		t.Fatalf("post-Reset read should be cold, got %+v", d)
	}
}

func TestCountersSubAndRates(t *testing.T) {
	a := Counters{Cycles: 100, Instructions: 150, L1Hits: 9, L1Misses: 1, L2Hits: 1}
	b := Counters{Cycles: 40, Instructions: 50, L1Hits: 4, L1Misses: 1}
	d := a.Sub(b)
	if d.Cycles != 60 || d.Instructions != 100 || d.L1Hits != 5 {
		t.Fatalf("Sub = %+v", d)
	}
	if got := a.IPC(); got != 1.5 {
		t.Fatalf("IPC = %v, want 1.5", got)
	}
	if got := a.L1HitRate(); got != 0.9 {
		t.Fatalf("L1HitRate = %v, want 0.9", got)
	}
	if (Counters{}).IPC() != 0 || (Counters{}).L1HitRate() != 0 || (Counters{}).L2HitRate() != 0 {
		t.Fatal("zero counters must report zero rates")
	}
	if len(a.String()) == 0 {
		t.Fatal("String() empty")
	}
}

func TestZeroSizeAccessIsFree(t *testing.T) {
	c := mustCore(t)
	c.Read(0x100, 0)
	c.Write(0x100, 0)
	c.Prefetch(0x100, 0)
	if c.Now() != 0 {
		t.Fatalf("zero-size ops advanced clock to %d", c.Now())
	}
}

// Property: for any access pattern, hits+misses == total accesses, the
// clock is monotone, and a repeated access is never slower than cold.
func TestAccessAccountingProperty(t *testing.T) {
	c := mustCore(t)
	prop := func(addrs []uint16, sizes []uint8) bool {
		before := c.Now()
		var n uint64
		for i, a := range addrs {
			size := uint64(1)
			if i < len(sizes) {
				size = uint64(sizes[i]%64) + 1
			}
			addr := uint64(a) * 8
			first := addr >> lineShift
			last := (addr + size - 1) >> lineShift
			n += last - first + 1
			c.Read(addr, size)
		}
		ctr := c.Counters()
		if ctr.L1Hits+ctr.L1Misses != ctr.Reads+ctr.Writes {
			return false
		}
		if ctr.L2Hits+ctr.L2Misses != ctr.L1Misses {
			return false
		}
		if ctr.LLCHits+ctr.LLCMisses != ctr.L2Misses {
			return false
		}
		return c.Now() >= before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefetching then waiting never makes a subsequent read slower
// than the same read without prefetching.
func TestPrefetchNeverHurtsLatencyProperty(t *testing.T) {
	cfg := testConfig()
	prop := func(a uint16) bool {
		addr := uint64(a) * LineBytes
		cold, err := NewCore(cfg)
		if err != nil {
			return false
		}
		cold.Read(addr, 8)
		coldCost := cold.Now()

		warm, err := NewCore(cfg)
		if err != nil {
			return false
		}
		warm.Prefetch(addr, 8)
		warm.Compute(cfg.DRAMLatency * cfg.IssueWidth)
		before := warm.Now()
		warm.Read(addr, 8)
		warmCost := warm.Now() - before
		return warmCost <= coldCost
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
