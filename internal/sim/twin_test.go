package sim

import (
	"math/rand"
	"testing"
)

// TestScanTwinCore drives two cores — one resolving lookups through the
// unified residency directory (with its inlined fast paths active), one
// routed through the historical dense tag scans — through the same
// randomized stream of public-API operations and requires identical
// counters, clocks and residency answers after every operation. This is
// the twin check with the production fast paths in play: the model-level
// differential replay attaches an access log, which disables the inlined
// L1 probes, so this test is what pins them.
func TestScanTwinCore(t *testing.T) {
	cfg := DefaultConfig()
	dc, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc.SetScanLookups(true)

	rng := rand.New(rand.NewSource(3))
	// Hot region smaller than L1 (steady hits), cold region far beyond
	// the LLC (full miss path), and a mid region for L2/LLC residency.
	hot := func() uint64 { return uint64(rng.Intn(16 << 10)) }
	mid := func() uint64 { return 1<<22 + uint64(rng.Intn(1<<21)) }
	cold := func() uint64 { return 1<<30 + uint64(rng.Intn(1<<28)) }
	addr := func() uint64 {
		switch rng.Intn(3) {
		case 0:
			return hot()
		case 1:
			return mid()
		default:
			return cold()
		}
	}

	for i := 0; i < 120000; i++ {
		a := addr()
		size := uint64(1 + rng.Intn(96))
		switch rng.Intn(20) {
		case 0:
			dc.Stall(30)
			sc.Stall(30)
		case 1:
			insts := uint64(rng.Intn(200))
			dc.Compute(insts)
			sc.Compute(insts)
		case 2:
			dc.TaskSwitch()
			sc.TaskSwitch()
		case 3, 4:
			dc.Prefetch(a, size)
			sc.Prefetch(a, size)
		case 5:
			dc.PrefetchLine(a)
			sc.PrefetchLine(a)
		case 6:
			dc.DMAFill(a, size)
			sc.DMAFill(a, size)
		case 7:
			if got, want := dc.ResidentL1(a, size), sc.ResidentL1(a, size); got != want {
				t.Fatalf("op %d: ResidentL1(%#x,%d) directory %v, scan %v", i, a, size, got, want)
			}
		case 8:
			if got, want := dc.ResidentL1Line(a), sc.ResidentL1Line(a); got != want {
				t.Fatalf("op %d: ResidentL1Line(%#x) directory %v, scan %v", i, a, got, want)
			}
		case 9:
			if rng.Intn(50) == 0 {
				dc.Reset()
				sc.Reset()
			}
		case 10, 11, 12:
			dc.Write(a, size)
			sc.Write(a, size)
		default:
			dc.Read(a, size)
			sc.Read(a, size)
		}
		if dn, sn := dc.Now(), sc.Now(); dn != sn {
			t.Fatalf("op %d: clock diverged: directory %d, scan %d", i, dn, sn)
		}
		if i%1024 == 0 {
			if dctr, sctr := dc.Counters(), sc.Counters(); dctr != sctr {
				t.Fatalf("op %d: counters diverged:\ndirectory %+v\nscan      %+v", i, dctr, sctr)
			}
		}
	}
	if dctr, sctr := dc.Counters(), sc.Counters(); dctr != sctr {
		t.Fatalf("final counters diverged:\ndirectory %+v\nscan      %+v", dctr, sctr)
	}
}
