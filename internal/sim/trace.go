package sim

// This file defines the observability hook the simulated core (and the
// layers above it: internal/model, internal/rt, internal/rtc) emit
// cycle-timestamped events through. The hook is designed around two
// invariants the golden-counters tests and the hot-path benchmarks
// enforce:
//
//   - Zero overhead when disabled: every emission site is guarded by a
//     single nil check, no event value is constructed unless a tracer
//     is attached, and the disabled path allocates nothing.
//   - Counter-neutral when enabled: a Tracer only observes. Nothing in
//     the emission path touches the clock, the caches, the MSHRs or the
//     PMU, so attaching a tracer never changes a simulated result.

// TraceKind discriminates trace events.
type TraceKind uint8

// The event kinds. Per-kind argument conventions (A, B, C of
// TraceEvent) are documented on each constant.
const (
	// TraceNone is the zero kind; never emitted.
	TraceNone TraceKind = iota
	// TraceRx is one received packet entering the runtime.
	// A = simulated buffer address, B = wire bits.
	TraceRx
	// TracePrefetchIssued is an accepted prefetch line fill.
	// A = line address, B = fill-complete cycle (readyAt).
	TracePrefetchIssued
	// TracePrefetchDropped is a prefetch rejected for want of MSHRs.
	// A = line address.
	TracePrefetchDropped
	// TracePrefetchRedundant is a prefetch for a line already in L1.
	// A = line address.
	TracePrefetchRedundant
	// TracePrefetchUseful is a demand access served by a completed
	// prefetch. A = 0.
	TracePrefetchUseful
	// TraceStall is memory stall cycles charged to the core, emitted
	// after the clock has advanced. A = stalled cycles (the stall spans
	// [Cycle-A, Cycle]), B = line address (0 for CauseFixed).
	TraceStall
	// TraceAccess is one declared state-span access charged by
	// model.Program.Step. A = span base kind (model.BaseKind),
	// B = stall cycles within the access, C = L1 misses in the high 32
	// bits and LLC misses in the low 32 bits.
	TraceAccess
	// TraceActionBegin marks the start of an NFAction execution.
	// A = action id.
	TraceActionBegin
	// TraceActionEnd marks the end of an NFAction execution (after its
	// declared writes). A = action id, B = elapsed cycles since the
	// matching TraceActionBegin.
	TraceActionEnd
	// TraceTransition is an FSM transition taken after an action.
	// A = event id, B = successor control state.
	TraceTransition
	// TraceTaskSwitch is one scheduler switch between NFTasks.
	TraceTaskSwitch
	// TraceStreamDone is a function stream running to completion.
	// A = packet buffer address (matches the TraceRx of the same
	// packet), B = wire bits.
	TraceStreamDone
	// TraceWake is a parked NFTask re-linked into the wakeup
	// scheduler's run ring. A = the fill-clock stamp (Exec.WakeAt) the
	// task was parked on, B = the effective wake key it waited for (the
	// stamp, or the earliest-MSHR horizon when the stamp was empty),
	// C = 1 when the eviction epoch moved while the task was parked
	// (the stamp was voided and the next visit re-probes residency).
	TraceWake
)

// TraceKindCount is the number of TraceKind values, for fixed-size
// per-kind tables (the flight recorder's event census, exporters).
const TraceKindCount = int(TraceWake) + 1

// String names the kind for diagnostics and exporters.
func (k TraceKind) String() string {
	switch k {
	case TraceRx:
		return "rx"
	case TracePrefetchIssued:
		return "pf-issued"
	case TracePrefetchDropped:
		return "pf-dropped"
	case TracePrefetchRedundant:
		return "pf-redundant"
	case TracePrefetchUseful:
		return "pf-useful"
	case TraceStall:
		return "stall"
	case TraceAccess:
		return "access"
	case TraceActionBegin:
		return "action-begin"
	case TraceActionEnd:
		return "action-end"
	case TraceTransition:
		return "transition"
	case TraceTaskSwitch:
		return "task-switch"
	case TraceStreamDone:
		return "stream-done"
	case TraceWake:
		return "wake"
	default:
		return "none"
	}
}

// StallCause classifies where TraceStall cycles went.
type StallCause uint8

// The stall causes.
const (
	// CauseNone marks events that are not stalls.
	CauseNone StallCause = iota
	// CauseL2 is a demand fill served by L2.
	CauseL2
	// CauseLLC is a demand fill served by the LLC.
	CauseLLC
	// CauseDRAM is a demand fill that missed every level.
	CauseDRAM
	// CausePrefetchLate is a demand access that arrived before its
	// in-flight prefetch completed and waited for the remainder.
	CausePrefetchLate
	// CauseFixed is a fixed overhead charged via Core.Stall.
	CauseFixed
	// CauseWakeWait is idle time charged via Core.StallWake: every
	// in-flight NFTask was parked on its fill clock, so the wakeup
	// scheduler forwarded the core to the earliest wakeup instead of
	// spinning probe laps.
	CauseWakeWait
)

// StallCauseCount is the number of StallCause values, for fixed-size
// per-cause tables.
const StallCauseCount = int(CauseWakeWait) + 1

// String names the cause for diagnostics and exporters.
func (c StallCause) String() string {
	switch c {
	case CauseL2:
		return "l2-fill"
	case CauseLLC:
		return "llc-fill"
	case CauseDRAM:
		return "dram-fill"
	case CausePrefetchLate:
		return "pf-late"
	case CauseFixed:
		return "fixed"
	case CauseWakeWait:
		return "wake-wait"
	default:
		return "none"
	}
}

// TraceEvent is one cycle-timestamped observation. Task and CS identify
// the NFTask slot and control state the core was stamped with at
// emission time (-1 when unknown, e.g. during batch receive).
type TraceEvent struct {
	// Cycle is the core clock at emission.
	Cycle uint64
	// A, B, C are kind-specific arguments (see TraceKind constants).
	A, B, C uint64
	// Task is the NFTask slot (see Core.SetTask).
	Task int32
	// CS is the control state (see Core.SetCS).
	CS int32
	// Kind discriminates the event.
	Kind TraceKind
	// Cause classifies TraceStall events.
	Cause StallCause
}

// Tracer receives trace events synchronously on the simulation
// goroutine. Implementations must not call back into the Core's
// mutating API (Read, Write, Prefetch, ...); read-only queries are
// safe. See internal/obs for the provided implementations.
type Tracer interface {
	Event(ev TraceEvent)
}

// SetTracer attaches t (nil detaches). Tracing is an observation-only
// facility: with a tracer attached the simulated clock, caches and PMU
// counters behave bit-identically to an untraced run.
func (c *Core) SetTracer(t Tracer) { c.trc = t }

// Tracer returns the attached tracer, or nil.
func (c *Core) Tracer() Tracer { return c.trc }

// SetTask stamps subsequent events with the given NFTask slot (-1 for
// none). Runtimes call this only while a tracer is attached.
func (c *Core) SetTask(slot int32) { c.curTask = slot }

// SetCS stamps subsequent events with the given control state (-1 for
// none). model.Program calls this only while a tracer is attached.
func (c *Core) SetCS(cs int32) { c.curCS = cs }

// Emit delivers an event stamped with the current clock, task and
// control state. It is a no-op without a tracer; callers on hot paths
// should guard with their own nil check to avoid constructing the
// arguments.
func (c *Core) Emit(kind TraceKind, cause StallCause, a, b, x uint64) {
	if c.trc == nil {
		return
	}
	c.trc.Event(TraceEvent{
		Cycle: c.clock,
		A:     a,
		B:     b,
		C:     x,
		Task:  c.curTask,
		CS:    c.curCS,
		Kind:  kind,
		Cause: cause,
	})
}
