package sim

import (
	"strings"
	"testing"
)

func TestDerivedMetrics(t *testing.T) {
	c := Counters{
		Cycles:         1000,
		Instructions:   2000,
		L1Misses:       50,
		StallCycles:    400,
		PrefetchIssued: 80,
		PrefetchUseful: 60,
	}
	if got := c.MPKI(); got != 25 {
		t.Fatalf("MPKI = %v, want 25", got)
	}
	if got := c.StallFraction(); got != 0.4 {
		t.Fatalf("StallFraction = %v, want 0.4", got)
	}
	if got := c.PrefetchAccuracy(); got != 0.75 {
		t.Fatalf("PrefetchAccuracy = %v, want 0.75", got)
	}
	// Coverage: 60 useful over 60+50 would-be misses.
	if got := c.PrefetchCoverage(); got < 0.5454 || got > 0.5455 {
		t.Fatalf("PrefetchCoverage = %v, want ~0.5455", got)
	}
}

func TestDerivedMetricsZeroSafe(t *testing.T) {
	var c Counters
	if c.MPKI() != 0 || c.StallFraction() != 0 || c.PrefetchAccuracy() != 0 || c.PrefetchCoverage() != 0 {
		t.Fatal("zero counters must yield zero derived metrics, not NaN")
	}
}

func TestCountersStringIncludesDerived(t *testing.T) {
	c := Counters{Cycles: 100, Instructions: 200, L1Misses: 10, StallCycles: 50, PrefetchIssued: 4, PrefetchUseful: 2}
	s := c.String()
	for _, frag := range []string{"mpki=", "acc=", "stall=50 (50%)"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}
