package sim

// This file defines the access log: an optional hook that observes every
// charged memory operation at the point it enters the core. Unlike the
// Tracer (which reports simulation *outcomes* — stalls, prefetch fates),
// the access log reports the *inputs*: the exact (addr, size, kind,
// cycle) sequence an executor issued. The differential-replay harness in
// internal/model uses it two ways: to prove that the compiled step-plan
// executor and the interpreted reference executor drive the core with
// byte-identical sequences, and — combined with Core.SetScanLookups —
// to prove the unified residency directory and the scanned-tag
// verification twin charge byte-identical sequences for either
// executor.
//
// Granularity: demand reads and writes are logged per Read/Write call
// (both executors issue them span-by-span), prefetches per line (the
// plan executor issues pre-resolved lines while the interpreter issues
// spans, but both decompose to the same per-line issue sequence inside
// the core). Residency queries are pure and charge nothing, so they are
// not logged.
//
// The hook is host-side only and counter-neutral, but unlike the Tracer
// it disables the L1 read/write fast path while attached (the fast path
// would bypass the logging site), so attach it only in tests.

// AccessKind discriminates logged memory operations.
type AccessKind uint8

// The access kinds.
const (
	// AccessRead is a demand read (Core.Read).
	AccessRead AccessKind = iota + 1
	// AccessWrite is a demand write (Core.Write).
	AccessWrite
	// AccessPrefetch is one prefetch line issue (Core.Prefetch and
	// Core.PrefetchLine decompose to these).
	AccessPrefetch
)

// String names the kind for diagnostics.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessPrefetch:
		return "prefetch"
	default:
		return "none"
	}
}

// MemAccess is one charged memory operation as issued to the core.
type MemAccess struct {
	// Addr and Size delimit the accessed bytes (for AccessPrefetch, the
	// full line).
	Addr, Size uint64
	// Cycle is the core clock when the operation was issued (before any
	// cycles it charges).
	Cycle uint64
	// Kind discriminates the operation.
	Kind AccessKind
}

// SetAccessLog attaches fn to receive every charged memory operation
// (nil detaches). The log observes only; it never changes a simulated
// result.
func (c *Core) SetAccessLog(fn func(MemAccess)) { c.alog = fn }
