package rt_test

import (
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// BenchmarkWorkerSteadyState measures host-side ns/packet of the
// interleaved worker on a warm 8K-flow NAT. With the traffic pool and
// the worker's batch reuse, steady state must report 0 allocs/op —
// that is the regression guard for the receive path.
func BenchmarkWorkerSteadyState(b *testing.B) {
	prog, g := buildNAT(b, 1<<13)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	as := mem.NewAddressSpace()
	w, err := rt.NewWorker(core, as, prog, rt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Run(g, 4096); err != nil { // warm caches and pools
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := w.Run(g, uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	if res.Packets != uint64(b.N) {
		b.Fatalf("processed %d packets, want %d", res.Packets, b.N)
	}
}

// BenchmarkRTCSteadyState is the same workload under the
// run-to-completion baseline, for host-cost comparison.
func BenchmarkRTCSteadyState(b *testing.B) {
	prog, g := buildNAT(b, 1<<13)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	as := mem.NewAddressSpace()
	w, err := rtc.NewWorker(core, as, prog, rtc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Run(g, 4096); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := w.Run(g, uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	if res.Packets != uint64(b.N) {
		b.Fatalf("processed %d packets, want %d", res.Packets, b.N)
	}
}
