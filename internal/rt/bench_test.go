package rt_test

import (
	"fmt"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/obs"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/rtc"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// BenchmarkWorkerSteadyState measures host-side ns/packet of the
// interleaved worker on a warm 8K-flow NAT. With the traffic pool and
// the worker's batch reuse, steady state must report 0 allocs/op —
// that is the regression guard for the receive path. The name is stable
// across commits: bench_paired.sh matches it when comparing HEAD
// against older baselines, so the scheduler variant below is a sibling
// benchmark rather than a sub-benchmark.
func BenchmarkWorkerSteadyState(b *testing.B) {
	benchWorkerSteadyState(b, rt.SchedulerRR)
}

// BenchmarkWorkerSteadyStateWakeup is the identical workload under the
// fill-clock wakeup scheduler; the delta against BenchmarkWorkerSteadyState
// is the host cost of parking versus probe laps (recorded in
// BENCH_hotpath.json wakeup_scheduler).
func BenchmarkWorkerSteadyStateWakeup(b *testing.B) {
	benchWorkerSteadyState(b, rt.SchedulerWakeup)
}

func benchWorkerSteadyState(b *testing.B, sched string) {
	prog, g := buildNAT(b, 1<<13)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	as := mem.NewAddressSpace()
	cfg := rt.DefaultConfig()
	cfg.Scheduler = sched
	w, err := rt.NewWorker(core, as, prog, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Run(g, 4096); err != nil { // warm caches and pools
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := w.Run(g, uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	if res.Packets != uint64(b.N) {
		b.Fatalf("processed %d packets, want %d", res.Packets, b.N)
	}
}

// countingTracer is the cheapest possible tracer: it measures the cost
// of the emission machinery itself rather than any consumer.
type countingTracer struct{ events uint64 }

func (c *countingTracer) Event(sim.TraceEvent) { c.events++ }

// BenchmarkWorkerSteadyStateTraced is BenchmarkWorkerSteadyState with a
// minimal tracer attached: the delta against the untraced benchmark is
// the cost of event construction and dispatch on the hot path. It must
// also stay at 0 allocs/op — TraceEvent is passed by value and no
// emission site may box or escape it.
func BenchmarkWorkerSteadyStateTraced(b *testing.B) {
	prog, g := buildNAT(b, 1<<13)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	as := mem.NewAddressSpace()
	w, err := rt.NewWorker(core, as, prog, rt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Run(g, 4096); err != nil { // warm caches and pools
		b.Fatal(err)
	}
	ct := &countingTracer{}
	core.SetTracer(ct)
	b.ReportAllocs()
	b.ResetTimer()
	res, err := w.Run(g, uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if res.Packets != uint64(b.N) {
		b.Fatalf("processed %d packets, want %d", res.Packets, b.N)
	}
	if ct.events == 0 {
		b.Fatal("tracer attached but saw no events")
	}
	b.ReportMetric(float64(ct.events)/float64(b.N), "events/pkt")
}

// TestTracerDisabledZeroAlloc pins the nil-tracer fast path: a steady
// state window with tracing disabled must not allocate at all.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	prog, g := buildNAT(t, 1<<10)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace()
	w, err := rt.NewWorker(core, as, prog, rt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(g, 4096); err != nil { // warm caches and pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := w.Run(g, 256); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced steady state allocates %.1f/run, want 0", allocs)
	}
}

// BenchmarkEngineMultiCore measures host-side scaling of the
// share-nothing engine: N goroutines each driving an independent
// simulated core over its own 4K-flow NAT, cores drawn from the
// engine's pool (the first iteration builds them, the rest recycle).
// Reported ns/op is per aggregate packet, so perfect host scaling
// keeps it flat as cores grow; the recorded ratios land in
// BENCH_hotpath.json.
// The sched=wakeup sub-benchmarks run the same fleet under the
// fill-clock wakeup scheduler; the cores=N names stay untouched so
// cross-commit paired comparisons keep matching.
func BenchmarkEngineMultiCore(b *testing.B) {
	for _, cores := range []int{1, 2, 4} {
		for _, sched := range []string{rt.SchedulerRR, rt.SchedulerWakeup} {
			name := fmt.Sprintf("cores=%d", cores)
			if sched != rt.SchedulerRR {
				name += "/sched=" + sched
			}
			benchEngineMultiCore(b, name, cores, sched)
		}
	}
}

func benchEngineMultiCore(b *testing.B, name string, cores int, sched string) {
	b.Run(name, func(b *testing.B) {
		setups := make([]rt.CoreSetup, cores)
		for i := range setups {
			setups[i] = natSetupSched(1<<12, int64(11+i), sched)
		}
		eng, err := rt.NewEngine(sim.DefaultConfig(), setups)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(4096); err != nil { // build + warm the pooled cores
			b.Fatal(err)
		}
		per := uint64(b.N)
		b.ReportAllocs()
		b.ResetTimer()
		results, err := eng.Run(per)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		var total uint64
		for _, r := range results {
			total += r.Packets
		}
		if total != per*uint64(cores) {
			b.Fatalf("processed %d packets, want %d", total, per*uint64(cores))
		}
		// Normalize to aggregate packets: flat ns/op across core
		// counts == linear host scaling.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/pkt")
	})
}

// BenchmarkRTCSteadyState is the same workload under the
// run-to-completion baseline, for host-cost comparison.
func BenchmarkRTCSteadyState(b *testing.B) {
	prog, g := buildNAT(b, 1<<13)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	as := mem.NewAddressSpace()
	w, err := rtc.NewWorker(core, as, prog, rtc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Run(g, 4096); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := w.Run(g, uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	if res.Packets != uint64(b.N) {
		b.Fatalf("processed %d packets, want %d", res.Packets, b.N)
	}
}

// BenchmarkWorkerSteadyStateFlight is BenchmarkWorkerSteadyState with
// the production flight recorder attached: the delta against the
// untraced benchmark is the full cost of always-on black-box recording
// (event construction, dispatch, and the ring store). It must stay at
// 0 allocs/op — the ring is sized once and overwrites in place.
func BenchmarkWorkerSteadyStateFlight(b *testing.B) {
	prog, g := buildNAT(b, 1<<13)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	as := mem.NewAddressSpace()
	w, err := rt.NewWorker(core, as, prog, rt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Run(g, 4096); err != nil { // warm caches and pools
		b.Fatal(err)
	}
	f := obs.NewFlightRecorder(1 << 16)
	core.SetTracer(f)
	b.ReportAllocs()
	b.ResetTimer()
	res, err := w.Run(g, uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if res.Packets != uint64(b.N) {
		b.Fatalf("processed %d packets, want %d", res.Packets, b.N)
	}
	if f.Recorded() == 0 {
		b.Fatal("flight recorder attached but saw no events")
	}
	b.ReportMetric(float64(f.Recorded())/float64(b.N), "events/pkt")
}

// TestFlightSteadyStateZeroAlloc pins the flight-recorder hot path: a
// steady-state window with the ring attached must not allocate.
func TestFlightSteadyStateZeroAlloc(t *testing.T) {
	prog, g := buildNAT(t, 1<<10)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace()
	w, err := rt.NewWorker(core, as, prog, rt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(g, 4096); err != nil { // warm caches and pools
		t.Fatal(err)
	}
	core.SetTracer(obs.NewFlightRecorder(1 << 12))
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := w.Run(g, 256); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("flight-recorded steady state allocates %.1f/run, want 0", allocs)
	}
}
