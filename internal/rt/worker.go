// Package rt is the GuNFu runtime (§V of the paper): the per-core
// worker that executes a compiled Program under the interleaved
// function-stream execution model.
//
// The worker keeps max_interleaved NFTasks in flight. Following the
// paper's Algorithm 1, each scheduler visit to a task either issues the
// prefetches for the task's next NFAction and switches away (so the
// fill overlaps other streams' work), or — when the task's P-state says
// its NFState is resident — executes the action, takes the FSM
// transition, and evaluates the fetching function for the next control
// state. Round-robin order, one core, no goroutines: the concurrency is
// memory-level parallelism inside one simulated core, exactly as in the
// paper.
package rt

import (
	"fmt"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

// Source supplies packets to a worker. Next returns nil when the
// workload is exhausted.
type Source interface {
	Next() *pkt.Packet
}

// Scheduler mode names for Config.Scheduler.
const (
	// SchedulerRR is the paper's Algorithm 1 loop: round-robin with
	// skip over the live-task ring, revisiting a missed task on the
	// very next lap. The default; its visit order — and therefore every
	// simulated event — is bit-identical to the pre-Scheduler worker.
	SchedulerRR = "rr"
	// SchedulerWakeup is the fill-clock wakeup loop: a task whose
	// P-stage probe misses is unlinked from the run ring and parked in
	// a pending min-heap keyed by Exec.WakeAt; the interleave loop
	// visits only ready tasks, re-links parked tasks whose fill clock
	// has passed (re-probing when the eviction epoch voided the stamp),
	// and when every in-flight task is pending it charges one
	// CauseWakeWait stall to the earliest wakeup instead of spinning
	// probe laps. Requires Prefetch and ResidentCheck.
	SchedulerWakeup = "wakeup"
)

// Config tunes a worker.
type Config struct {
	// Tasks is max_interleaved: the number of NFTasks kept in flight.
	Tasks int
	// Batch is the rx burst size (packets fetched per receive call).
	Batch int
	// Prefetch enables the prefetching step of Algorithm 1; disabling
	// it leaves pure round-robin interleaving (an ablation knob).
	Prefetch bool
	// ResidentCheck lets the scheduler skip the prefetch pass when the
	// P-state verification finds the spans already in L1.
	ResidentCheck bool
	// RxCost is the per-packet receive cost in instructions (driver
	// burst amortized), charged once per packet at batch receive.
	RxCost uint64
	// RingSlots is the number of rx buffer slots (wraps like a NIC
	// descriptor ring).
	RingSlots int
	// SlotBytes is the buffer slot size.
	SlotBytes uint64
	// Scheduler selects the interleave loop: SchedulerRR (also the
	// meaning of "") or SchedulerWakeup. See the constants.
	Scheduler string
}

// DefaultConfig returns the worker tuning used throughout the
// evaluation: 16 interleaved NFTasks (the paper's optimum), 32-packet
// bursts, prefetching on.
func DefaultConfig() Config {
	return Config{
		Tasks:         16,
		Batch:         32,
		Prefetch:      true,
		ResidentCheck: true,
		RxCost:        30,
		RingSlots:     512,
		SlotBytes:     2048,
		Scheduler:     SchedulerRR,
	}
}

func (c Config) validate() error {
	if c.Tasks <= 0 {
		return fmt.Errorf("rt: Tasks must be positive, got %d", c.Tasks)
	}
	if c.Batch <= 0 {
		return fmt.Errorf("rt: Batch must be positive, got %d", c.Batch)
	}
	if c.RingSlots <= 0 || c.SlotBytes == 0 {
		return fmt.Errorf("rt: ring geometry must be positive")
	}
	if c.RingSlots < c.Tasks+c.Batch {
		// A slot can be reassigned to a new rx packet while an in-flight
		// NFTask still points at it: up to Tasks packets are live in the
		// scheduler and up to Batch more are staged by receive, so the
		// ring must cover both before any sequence number wraps onto a
		// slot that is still referenced.
		return fmt.Errorf("rt: RingSlots (%d) must be >= Tasks+Batch (%d): a wrapped slot could be overwritten while an in-flight task still points at it",
			c.RingSlots, c.Tasks+c.Batch)
	}
	switch c.Scheduler {
	case "", SchedulerRR:
	case SchedulerWakeup:
		if !c.Prefetch || !c.ResidentCheck {
			// The wakeup loop parks on the stamps EnsurePrefetched
			// records; without the fused P-stage probe there is no miss
			// verdict to park on.
			return fmt.Errorf("rt: Scheduler %q requires Prefetch and ResidentCheck", c.Scheduler)
		}
	default:
		return fmt.Errorf("rt: unknown Scheduler %q (want %q or %q)", c.Scheduler, SchedulerRR, SchedulerWakeup)
	}
	return nil
}

// Result summarizes one worker run over its measurement window.
type Result struct {
	// Packets is the number of streams run to completion.
	Packets uint64
	// Bits is the total wire bits processed, for Gbps computation.
	Bits float64
	// Cycles is the simulated cycle span of the window.
	Cycles uint64
	// FreqHz echoes the core clock for throughput conversion.
	FreqHz float64
	// Counters is the PMU delta over the window.
	Counters sim.Counters
	// AccessCycles is the cycles spent charging declared state accesses.
	AccessCycles uint64
	// Parks counts NFTasks unlinked and parked on their fill clock;
	// Wakes counts re-links (equal to Parks at batch boundaries — no
	// task is left parked); WakeStalls counts the all-pending events
	// where the core stall-forwarded to the earliest wakeup. All zero
	// under SchedulerRR. These live here rather than in sim.Counters
	// because they are runtime scheduling statistics, not PMU events
	// (and sim.Counters' shape is pinned by golden fingerprints).
	Parks, Wakes, WakeStalls uint64
}

// Gbps returns the simulated throughput in gigabits per second.
func (r Result) Gbps() float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / r.FreqHz
	return r.Bits / seconds / 1e9
}

// Mpps returns the simulated throughput in million packets per second.
func (r Result) Mpps() float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / r.FreqHz
	return float64(r.Packets) / seconds / 1e6
}

// CyclesPerPacket returns the mean per-packet cost.
func (r Result) CyclesPerPacket() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Packets)
}

// MissesPerPacket returns (L1, L2, LLC) misses per packet, the paper's
// micro-architecture metrics.
func (r Result) MissesPerPacket() (l1, l2, llc float64) {
	if r.Packets == 0 {
		return 0, 0, 0
	}
	n := float64(r.Packets)
	return float64(r.Counters.L1Misses) / n, float64(r.Counters.L2Misses) / n,
		float64(r.Counters.LLCMisses) / n
}

// Worker executes a Program on one simulated core.
type Worker struct {
	core *sim.Core
	prog *model.Program
	cfg  Config
	ring *pkt.Ring
	// tasks is a contiguous value array: the scheduler walks Execs all
	// day, and adjacency keeps the visited contexts dense in the host's
	// own cache instead of chasing per-task allocations.
	tasks []model.Exec
	seq   uint64
	// batch is the reusable rx burst buffer: allocated once, refilled
	// by every receive call, so steady state allocates nothing.
	batch []*pkt.Packet
	// ringNext holds the scheduler's circular list of live task indexes,
	// rebuilt per batch. Finished tasks are unlinked so the interleave
	// loop never spins over them; the cyclic visit order of the
	// remaining tasks — and thus every simulated event — is identical to
	// round-robin-with-skip.
	ringNext []int32
	// park and wakeKey are the wakeup scheduler's pending min-heap:
	// park[:n] holds parked task indexes heap-ordered by wakeKey (the
	// task's effective fill-clock deadline), earliest at the root.
	// Unused under SchedulerRR.
	park    []int32
	wakeKey []uint64
}

// NewWorker builds a worker for prog on core, reserving the NFTask
// scratch regions and the rx ring from as.
func NewWorker(core *sim.Core, as *mem.AddressSpace, prog *model.Program, cfg Config) (*Worker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ringBase := as.Reserve(uint64(cfg.RingSlots)*cfg.SlotBytes, sim.LineBytes)
	ring, err := pkt.NewRing(ringBase, cfg.SlotBytes, cfg.RingSlots)
	if err != nil {
		return nil, fmt.Errorf("rt: %w", err)
	}
	w := &Worker{
		core:     core,
		prog:     prog,
		cfg:      cfg,
		ring:     ring,
		tasks:    make([]model.Exec, cfg.Tasks),
		batch:    make([]*pkt.Packet, 0, cfg.Batch),
		ringNext: make([]int32, cfg.Tasks),
	}
	if cfg.Scheduler == SchedulerWakeup {
		w.park = make([]int32, cfg.Tasks)
		w.wakeKey = make([]uint64, cfg.Tasks)
	}
	tempSize := uint64(prog.TempLines()) * sim.LineBytes
	for i := range w.tasks {
		w.tasks[i] = model.Exec{
			Core:     core,
			TempAddr: as.Reserve(tempSize, sim.LineBytes),
			Done:     true, // idle until a packet is loaded
		}
	}
	return w, nil
}

// Core returns the worker's simulated core.
func (w *Worker) Core() *sim.Core { return w.core }

// receive pulls up to Batch packets from src, assigning ring slots and
// modelling the DDIO fill of their header lines. The returned slice
// aliases the worker's reusable batch buffer and is only valid until
// the next receive call.
func (w *Worker) receive(src Source, limit uint64) []*pkt.Packet {
	n := w.cfg.Batch
	if limit > 0 && uint64(n) > limit {
		n = int(limit)
	}
	traced := w.core.Tracer() != nil
	if traced {
		// Receive happens outside any NFTask; clear the stamps.
		w.core.SetTask(-1)
		w.core.SetCS(-1)
	}
	batch := w.batch[:0]
	for len(batch) < n {
		p := src.Next()
		if p == nil {
			break
		}
		p.Addr = w.ring.Slot(w.seq)
		w.seq++
		hdr := uint64(len(p.Data))
		if hdr > 128 {
			hdr = 128
		}
		w.core.DMAFill(p.Addr, hdr)
		w.core.Compute(w.cfg.RxCost)
		if traced {
			w.core.Emit(sim.TraceRx, sim.CauseNone, p.Addr, uint64(p.Bits()), 0)
		}
		batch = append(batch, p)
	}
	return batch
}

// Run processes up to maxPackets packets from src (0 means until the
// source is exhausted) under Algorithm 1 and returns the windowed
// result. Counters are measured as a delta, so Run can be called again
// on a warm worker for steady-state measurements.
//
// The body below is the SchedulerRR loop, kept byte-for-byte as it was
// before the Scheduler knob existed: its visit order pins every golden
// fingerprint. SchedulerWakeup branches to runWakeup.
func (w *Worker) Run(src Source, maxPackets uint64) (Result, error) {
	if w.cfg.Scheduler == SchedulerWakeup {
		return w.runWakeup(src, maxPackets)
	}
	startCtr := w.core.Counters()
	startCycles := w.core.Now()

	var done uint64
	var bits float64
	var accessCycles uint64
	remaining := maxPackets
	// traced gates the per-visit attribution stamps; resolved once so
	// the untraced scheduler loop pays a single predictable branch.
	traced := w.core.Tracer() != nil

	for {
		batch := w.receive(src, remaining)
		if len(batch) == 0 {
			break
		}
		if remaining > 0 {
			remaining -= uint64(len(batch))
		}

		// Initialize NFTasks with the batch head and link them into the
		// scheduler ring.
		next := 0
		active := 0
		for i := range w.tasks {
			if next >= len(batch) {
				break
			}
			w.tasks[i].ResetStream(batch[next], w.prog.Start(), w.seq)
			next++
			active++
		}
		for i := 0; i < active; i++ {
			w.ringNext[i] = int32(i + 1)
		}
		w.ringNext[active-1] = 0

		// Interleave until the whole batch is processed, visiting the
		// live tasks cyclically. Tasks that finish with no packet left
		// to refill are unlinked from the ring.
		chargeSwitch := len(w.tasks) > 1 || w.cfg.Prefetch
		cur, prev := int32(0), int32(active-1)
		for active > 0 {
			if traced {
				w.core.SetTask(cur)
			}
			t := &w.tasks[cur]
			if w.cfg.Prefetch && !t.Prefetched {
				if w.cfg.ResidentCheck {
					// Fused P-state visit: one base resolution covers both
					// the residency probe and (on a miss) the prefetch
					// issue. The simulated sequence is identical to
					// ResidentCurrent followed by PrefetchCurrent. On a
					// miss EnsurePrefetched also records the fill-clock
					// wakeup stamp (Exec.WakeAt/WakeEpoch): the core's max
					// MSHR ready-cycle and the eviction epoch it was
					// stamped under, so any scheduler that revisits a
					// pending task can skip the tiered residency walk
					// until the fills have landed or the epoch moved.
					// This loop never revisits (Prefetched is set
					// unconditionally), so here the stamp is diagnostic;
					// runWakeup is the consumer that parks on it.
					if !w.prog.EnsurePrefetched(t) {
						w.core.TaskSwitch()
						prev = cur
						cur = w.ringNext[cur]
						continue
					}
				} else {
					w.prog.PrefetchCurrent(t)
					w.core.TaskSwitch()
					prev = cur
					cur = w.ringNext[cur]
					continue
				}
			}
			if err := w.prog.Step(t); err != nil {
				return Result{}, fmt.Errorf("rt: step: %w", err)
			}
			if t.Done {
				done++
				bits += t.Pkt.Bits()
				accessCycles += t.AccessCycles
				t.AccessCycles = 0
				if traced {
					w.core.Emit(sim.TraceStreamDone, sim.CauseNone, t.Pkt.Addr, uint64(t.Pkt.Bits()), 0)
				}
				if next < len(batch) {
					t.ResetStream(batch[next], w.prog.Start(), w.seq)
					next++
				} else {
					active--
					w.ringNext[prev] = w.ringNext[cur]
					if chargeSwitch {
						w.core.TaskSwitch()
					}
					cur = w.ringNext[cur]
					continue
				}
			}
			if chargeSwitch {
				w.core.TaskSwitch()
			}
			prev = cur
			cur = w.ringNext[cur]
		}
		if maxPackets > 0 && remaining == 0 {
			break
		}
	}

	return Result{
		Packets:      done,
		Bits:         bits,
		Cycles:       w.core.Now() - startCycles,
		FreqHz:       w.core.Config().FreqHz,
		Counters:     w.core.Counters().Sub(startCtr),
		AccessCycles: accessCycles,
	}, nil
}

// parkPush inserts task index idx into the pending heap of current
// size n, ordered by wakeKey (min at the root).
func (w *Worker) parkPush(n int, idx int32) {
	w.park[n] = idx
	for i := n; i > 0; {
		p := (i - 1) / 2
		if w.wakeKey[w.park[p]] <= w.wakeKey[w.park[i]] {
			break
		}
		w.park[p], w.park[i] = w.park[i], w.park[p]
		i = p
	}
}

// parkPop removes and returns the root (earliest wakeKey) of the
// pending heap of current size n.
func (w *Worker) parkPop(n int) int32 {
	root := w.park[0]
	w.park[0] = w.park[n-1]
	n--
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && w.wakeKey[w.park[r]] < w.wakeKey[w.park[l]] {
			m = r
		}
		if w.wakeKey[w.park[i]] <= w.wakeKey[w.park[m]] {
			break
		}
		w.park[i], w.park[m] = w.park[m], w.park[i]
		i = m
	}
	return root
}

// runWakeup is the SchedulerWakeup interleave loop: Algorithm 1 with
// the P-stage miss handling replaced by fill-clock parking. Where the
// round-robin loop revisits a missed task on the very next lap — and
// re-pays the tiered residency walk per lap until the fills land — this
// loop unlinks the task from the run ring and parks it in the pending
// min-heap keyed by Exec.WakeAt. A parked task is not visited again
// until the core clock passes its stamp; the wake phase then re-links
// it after the current position (FIFO among simultaneous wakes). If the
// eviction epoch moved while it was parked the stamp proved nothing, so
// the wake clears Prefetched and the next visit re-probes for real —
// at most once per park cycle (Exec.Reprobed), so progress is
// guaranteed even when streams thrash each other's lines. When every
// in-flight task is parked the loop charges one CauseWakeWait stall to
// the earliest wakeup instead of spinning probe laps.
func (w *Worker) runWakeup(src Source, maxPackets uint64) (Result, error) {
	startCtr := w.core.Counters()
	startCycles := w.core.Now()

	var done uint64
	var bits float64
	var accessCycles uint64
	var parks, wakes, wakeStalls uint64
	remaining := maxPackets
	core := w.core
	traced := core.Tracer() != nil

	for {
		batch := w.receive(src, remaining)
		if len(batch) == 0 {
			break
		}
		if remaining > 0 {
			remaining -= uint64(len(batch))
		}

		next := 0
		run := 0
		for i := range w.tasks {
			if next >= len(batch) {
				break
			}
			w.tasks[i].ResetStream(batch[next], w.prog.Start(), w.seq)
			next++
			run++
		}
		for i := 0; i < run; i++ {
			w.ringNext[i] = int32(i + 1)
		}
		w.ringNext[run-1] = 0

		parked := 0
		chargeSwitch := len(w.tasks) > 1 || w.cfg.Prefetch
		cur, prev := int32(0), int32(run-1)
		for run+parked > 0 {
			if parked > 0 {
				// Wake phase: re-link every parked task whose fill clock
				// has passed, in wake order, after the current position.
				// With nothing runnable, forward the core to the earliest
				// wakeup first — one attributed stall instead of probe
				// laps.
				now := core.Now()
				ins := cur
				for parked > 0 {
					idx := w.park[0]
					key := w.wakeKey[idx]
					if key > now {
						if run > 0 {
							break
						}
						core.StallWake(key - now)
						wakeStalls++
						now = core.Now()
					}
					w.parkPop(parked)
					parked--
					t := &w.tasks[idx]
					t.Parked = false
					wakes++
					voided := !core.StampValid(t.WakeEpoch)
					if voided && !t.Reprobed {
						// The eviction epoch moved while parked: some plan
						// line may have been displaced, so the stamp proves
						// nothing. Fall back to one real re-probe.
						t.Prefetched = false
						t.Reprobed = true
					}
					if traced {
						core.SetTask(idx)
						v := uint64(0)
						if voided {
							v = 1
						}
						core.Emit(sim.TraceWake, sim.CauseNone, t.WakeAt, key, v)
					}
					if run == 0 {
						cur, prev, ins = idx, idx, idx
						w.ringNext[idx] = idx
					} else {
						w.ringNext[idx] = w.ringNext[ins]
						w.ringNext[ins] = idx
						if ins == prev {
							prev = idx
						}
						ins = idx
					}
					run++
				}
			}

			if traced {
				core.SetTask(cur)
			}
			t := &w.tasks[cur]
			if !t.Prefetched {
				if !w.prog.EnsurePrefetched(t) {
					// P-stage miss: the fills are in flight and WakeAt
					// carries their max ready-cycle. Unlink and park; the
					// loop will not re-pay the residency walk for this
					// task before its fill clock passes. An empty stamp
					// (the issue was fully dropped for want of MSHRs, or
					// stamps are disabled core-side) parks on the
					// conservative horizon instead: the earliest in-flight
					// fill, after which MSHR capacity frees.
					core.TaskSwitch()
					key := t.WakeAt
					if key == 0 {
						key = core.EarliestMSHRReady()
					}
					w.wakeKey[cur] = key
					t.Parked = true
					w.parkPush(parked, cur)
					parked++
					parks++
					run--
					if run > 0 {
						w.ringNext[prev] = w.ringNext[cur]
						cur = w.ringNext[cur]
					}
					continue
				}
			}
			t.Reprobed = false
			if err := w.prog.Step(t); err != nil {
				return Result{}, fmt.Errorf("rt: step: %w", err)
			}
			if t.Done {
				done++
				bits += t.Pkt.Bits()
				accessCycles += t.AccessCycles
				t.AccessCycles = 0
				if traced {
					core.Emit(sim.TraceStreamDone, sim.CauseNone, t.Pkt.Addr, uint64(t.Pkt.Bits()), 0)
				}
				if next < len(batch) {
					t.ResetStream(batch[next], w.prog.Start(), w.seq)
					next++
				} else {
					run--
					if run > 0 {
						w.ringNext[prev] = w.ringNext[cur]
					}
					if chargeSwitch {
						core.TaskSwitch()
					}
					cur = w.ringNext[cur]
					continue
				}
			}
			if chargeSwitch {
				core.TaskSwitch()
			}
			prev = cur
			cur = w.ringNext[cur]
		}
		if maxPackets > 0 && remaining == 0 {
			break
		}
	}

	return Result{
		Packets:      done,
		Bits:         bits,
		Cycles:       core.Now() - startCycles,
		FreqHz:       core.Config().FreqHz,
		Counters:     core.Counters().Sub(startCtr),
		AccessCycles: accessCycles,
		Parks:        parks,
		Wakes:        wakes,
		WakeStalls:   wakeStalls,
	}, nil
}
