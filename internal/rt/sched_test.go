package rt_test

// Scheduler differential twins: the fill-clock wakeup scheduler must
// produce the same packet-level results as the round-robin loop — every
// packet processed exactly once, every action executed with the same
// Exec state, the same declared accesses charged — while only the
// schedule-dependent quantities (task switches, stall cycles, prefetch
// re-issues) may move. The harness generates randomized programs in the
// style of internal/model's differential corpus, runs the same packet
// sequence through two identically-seeded worlds (one worker per mode),
// and asserts:
//
//   - packet counts, wire bits, and demand read/write counters match;
//   - per-packet action-visit signatures (recorded by the actions
//     themselves, keyed by a packet id carried in the payload) match;
//   - instruction counters reconcile exactly once the documented
//     deltas — prefetch attempts and task-switch overhead — are
//     removed;
//   - the wakeup side parks (and wakes every park), the rr side never
//     does.
//
// A second twin pins epoch-wrap behavior: the wakeup run with the
// eviction epoch parked at the edge of uint64 wraparound must be
// bit-identical to the same run from a fresh epoch, because stamp
// voiding compares epochs for equality only.

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/gunfu-nfv/gunfu/internal/mem"
	"github.com/gunfu-nfv/gunfu/internal/model"
	"github.com/gunfu-nfv/gunfu/internal/pkt"
	"github.com/gunfu-nfv/gunfu/internal/rt"
	"github.com/gunfu-nfv/gunfu/internal/sim"
)

const (
	// schedPrograms randomized programs, schedPackets packets each.
	schedPrograms = 64
	schedPackets  = 96
)

// schedRec accumulates one world's action-visit signatures: packet id →
// rolling hash over (state, visit count, flow) at every action run.
// Schedule-invariant by construction, so the rr and wakeup maps must be
// equal.
type schedRec struct {
	m map[uint64]uint64
}

func (r *schedRec) add(id, v uint64) {
	r.m[id] = r.m[id]*1099511628211 ^ v
}

// schedSpan draws a declared span for one base kind (the model corpus
// idiom: sized to stay inside the base's storage, sometimes straddling
// line boundaries).
func schedSpan(rng *rand.Rand, base model.BaseKind, limit uint64) model.FieldRef {
	off := uint64(rng.Intn(int(limit)))
	max := limit - off
	if max > 96 {
		max = 96
	}
	size := 1 + uint64(rng.Intn(int(max)))
	return model.FieldRef{Explicit: &model.Span{Base: base, Off: off, Size: size}}
}

// buildSchedWorld generates one random program over a fresh address
// space, recording action visits into rec. Determinism contract: every
// action depends only on Exec state and the packet payload, never on
// visit timing, so both scheduler modes replay identical per-packet
// results. The start state carries no per-flow, sub-flow or dynamic
// spans (its action establishes FlowIdx/SubIdx/Cur.Addr from the packet
// id before any later state resolves those bases), and the visit budget
// lives in Exec.Key, which ResetStream clears per packet (Temp persists
// across packets in a reused task slot and would leak schedule state).
// The per-flow pool is sized past L1 so the corpus actually misses,
// parks and stall-forwards instead of running fully resident.
func buildSchedWorld(t *testing.T, rng *rand.Rand, rec *schedRec) (*mem.AddressSpace, *model.Program) {
	t.Helper()
	as := mem.NewAddressSpace()
	if rng.Intn(2) == 0 {
		as.Reserve(uint64(8+rng.Intn(48)), 8)
	}
	entrySizes := []uint64{96, 128, 256}
	perFlow, err := mem.NewPool(as, "pf", entrySizes[rng.Intn(len(entrySizes))], 1024)
	if err != nil {
		t.Fatal(err)
	}
	var subFlow *mem.Pool
	if rng.Intn(4) != 0 {
		subSizes := []uint64{48, 64, 128}
		subFlow, err = mem.NewPool(as, "sf", subSizes[rng.Intn(len(subSizes))], 256)
		if err != nil {
			t.Fatal(err)
		}
	}
	control := mem.Region{Name: "ctl", Base: as.Reserve(512, uint64(8<<rng.Intn(4))), Size: 512}
	dynSize := uint64(1 << 16)
	dynBase := as.Reserve(dynSize, 64)

	type baseLim struct {
		kind  model.BaseKind
		limit uint64
	}
	// startBases resolve without a match result; later states may touch
	// everything.
	startBases := []baseLim{
		{model.BasePacket, 64},
		{model.BaseControl, control.Size},
		{model.BaseTemp, 64},
	}
	allBases := append([]baseLim{
		{model.BasePerFlow, perFlow.EntrySize()},
		{model.BaseDynamic, 256},
	}, startBases...)
	if subFlow != nil {
		allBases = append(allBases, baseLim{model.BaseSubFlow, subFlow.EntrySize()})
	}
	randRefs := func(bases []baseLim, n int) []model.FieldRef {
		refs := make([]model.FieldRef, 0, n)
		for i := 0; i < rng.Intn(n+1); i++ {
			b := bases[rng.Intn(len(bases))]
			refs = append(refs, schedSpan(rng, b.kind, b.limit))
		}
		return refs
	}

	flows := uint64(perFlow.Count())
	subs := uint64(1)
	if subFlow != nil {
		subs = uint64(subFlow.Count())
	}
	hasSub := subFlow != nil

	b := model.NewBuilder("sched")
	b.AddModule("m", model.Binding{PerFlow: perFlow, SubFlow: subFlow, Control: control}, nil)
	e0 := b.Event("e0")
	e1 := b.Event("e1")
	nStates := 2 + rng.Intn(5)
	for i := 0; i < nStates; i++ {
		stateIdx := uint64(i)
		start := i == 0
		bases := allBases
		if start {
			bases = startBases
		}
		b.AddState("m", schedStateName(i), model.Action{
			Name:   "a" + schedStateName(i),
			Kind:   model.ActionData,
			Cost:   uint64(rng.Intn(60)),
			Reads:  randRefs(bases, 3),
			Writes: randRefs(bases, 2),
			Fn: func(e *model.Exec) model.EventID {
				if start {
					// Establish the stream identity from the payload
					// (idempotent: e0 may loop back here).
					id := binary.LittleEndian.Uint64(e.Pkt.Data)
					e.Key2 = id
					e.FlowIdx = int32(id % flows)
					if hasSub {
						e.SubIdx = int32(id % subs)
					}
				}
				e.Key++
				rec.add(e.Key2, stateIdx*131^e.Key*17^uint64(e.FlowIdx)*29)
				e.Cur.Addr = dynBase + (e.Key*2654435761+e.Key2*97+stateIdx*131)%(dynSize-512)
				h := e.Key*0x9e3779b9 + e.Key2*31 + stateIdx*7
				if e.Key <= 32 && h%4 == 0 {
					return e0
				}
				return e1
			},
		})
	}
	for i := 0; i < nStates; i++ {
		next := model.EndName
		if i+1 < nStates {
			next = "m." + schedStateName(i+1)
		}
		b.AddTransition("m."+schedStateName(i), "e1", next)
		b.AddTransition("m."+schedStateName(i), "e0", "m."+schedStateName(rng.Intn(nStates)))
	}
	b.SetStart("m." + schedStateName(0))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return as, prog
}

func schedStateName(i int) string {
	return string(rune('A' + i))
}

// schedSource feeds a fixed packet list.
type schedSource struct {
	pkts []*pkt.Packet
	i    int
}

func (s *schedSource) Next() *pkt.Packet {
	if s.i >= len(s.pkts) {
		return nil
	}
	p := s.pkts[s.i]
	s.i++
	return p
}

func schedPacketList(n int) []*pkt.Packet {
	pkts := make([]*pkt.Packet, n)
	for i := range pkts {
		data := make([]byte, 64)
		binary.LittleEndian.PutUint64(data, uint64(i)*2654435761+7)
		pkts[i] = &pkt.Packet{Data: data}
	}
	return pkts
}

// runSched replays one seeded world through a worker in the given
// scheduler mode. The world (address space, program, and therefore
// every simulated address) is rebuilt from the seed so both modes
// resolve identical layouts; configure, when non-nil, adjusts the core
// before the run (the epoch-wrap twin).
func runSched(t *testing.T, seed int64, sched string, configure func(*sim.Core)) (rt.Result, map[uint64]uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rec := &schedRec{m: make(map[uint64]uint64)}
	as, prog := buildSchedWorld(t, rng, rec)
	core, err := sim.NewCore(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(core)
	}
	cfg := rt.Config{
		Tasks: 8, Batch: 16, RingSlots: 64, SlotBytes: 2048,
		Prefetch: true, ResidentCheck: true, RxCost: 30,
		Scheduler: sched,
	}
	w, err := rt.NewWorker(core, as, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(&schedSource{pkts: schedPacketList(schedPackets)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.m
}

// TestDifferentialReplayWakeupScheduler is the rr-vs-wakeup twin over
// the randomized corpus.
func TestDifferentialReplayWakeupScheduler(t *testing.T) {
	simCfg := sim.DefaultConfig()
	switchInsts := simCfg.SwitchCost * simCfg.IssueWidth / 2
	// recon strips the schedule-dependent instruction charges: one
	// instruction per prefetch attempt (issued, dropped or redundant)
	// and switchInsts per task switch. What remains — demand line
	// touches, action costs, rx costs — is schedule-invariant.
	recon := func(r rt.Result) uint64 {
		c := r.Counters
		return c.Instructions -
			(c.PrefetchIssued + c.PrefetchDropped + c.PrefetchRedundant) -
			c.TaskSwitches*switchInsts
	}

	var totalParks, totalWakeStalls uint64
	for i := 0; i < schedPrograms; i++ {
		seed := int64(1000 + i)
		rr, rrRec := runSched(t, seed, rt.SchedulerRR, nil)
		wk, wkRec := runSched(t, seed, rt.SchedulerWakeup, nil)

		if rr.Packets != schedPackets || wk.Packets != schedPackets {
			t.Fatalf("seed %d: packets rr=%d wakeup=%d, want %d", seed, rr.Packets, wk.Packets, schedPackets)
		}
		if rr.Bits != wk.Bits {
			t.Fatalf("seed %d: bits rr=%v wakeup=%v", seed, rr.Bits, wk.Bits)
		}
		if rr.Counters.Reads != wk.Counters.Reads || rr.Counters.Writes != wk.Counters.Writes {
			t.Fatalf("seed %d: demand counters diverged: rr r=%d w=%d, wakeup r=%d w=%d",
				seed, rr.Counters.Reads, rr.Counters.Writes, wk.Counters.Reads, wk.Counters.Writes)
		}
		if len(rrRec) != len(wkRec) {
			t.Fatalf("seed %d: recorded %d packets under rr, %d under wakeup", seed, len(rrRec), len(wkRec))
		}
		for id, sig := range rrRec {
			if wkRec[id] != sig {
				t.Fatalf("seed %d: packet %#x visit signature diverged: rr %#x wakeup %#x",
					seed, id, sig, wkRec[id])
			}
		}
		if got, want := recon(rr), recon(wk); got != want {
			t.Fatalf("seed %d: instruction reconciliation failed: rr %d wakeup %d (raw rr=%+v wakeup=%+v)",
				seed, got, want, rr.Counters, wk.Counters)
		}
		if rr.Parks != 0 || rr.Wakes != 0 || rr.WakeStalls != 0 {
			t.Fatalf("seed %d: rr reported scheduler stats: %+v", seed, rr)
		}
		if wk.Parks != wk.Wakes {
			t.Fatalf("seed %d: %d parks but %d wakes (task left parked)", seed, wk.Parks, wk.Wakes)
		}
		totalParks += wk.Parks
		totalWakeStalls += wk.WakeStalls
	}
	if totalParks == 0 {
		t.Fatal("corpus never parked a task: the wakeup path was not exercised")
	}
	if totalWakeStalls == 0 {
		t.Fatal("corpus never stall-forwarded: the all-parked path was not exercised")
	}
}

// TestDifferentialReplayWakeupEpochWrap extends PR 8's epoch-wrap twin
// to the wakeup scheduler: stamp voiding compares eviction epochs for
// equality only, so a run whose epoch counter wraps through zero must
// be bit-identical — clock, counters, parks, wakes, stall-forwards and
// packet results — to the same run from a fresh epoch.
func TestDifferentialReplayWakeupEpochWrap(t *testing.T) {
	for i := 0; i < 16; i++ {
		seed := int64(5000 + i)
		fresh, freshRec := runSched(t, seed, rt.SchedulerWakeup, nil)
		wrap, wrapRec := runSched(t, seed, rt.SchedulerWakeup, func(core *sim.Core) {
			core.SetEvictionEpoch(^uint64(0) - 3)
		})
		if fresh.Cycles != wrap.Cycles || fresh.Counters != wrap.Counters {
			t.Fatalf("seed %d: epoch wrap diverged:\nfresh %+v\nwrap  %+v", seed, fresh, wrap)
		}
		if fresh.Parks != wrap.Parks || fresh.Wakes != wrap.Wakes || fresh.WakeStalls != wrap.WakeStalls {
			t.Fatalf("seed %d: scheduler stats diverged across wrap: fresh %+v wrap %+v", seed, fresh, wrap)
		}
		for id, sig := range freshRec {
			if wrapRec[id] != sig {
				t.Fatalf("seed %d: packet %#x diverged across epoch wrap", seed, id)
			}
		}
	}
}
